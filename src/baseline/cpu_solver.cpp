#include "baseline/cpu_solver.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "support/error.hpp"

namespace graphene::baseline {

HostIlu0::HostIlu0(const matrix::CsrMatrix& a) {
  GRAPHENE_CHECK(a.rows() == a.cols(), "ILU needs a square matrix");
  const std::size_t n = a.rows();
  rowPtr_.assign(a.rowPtr().begin(), a.rowPtr().end());
  col_.assign(a.colIdx().begin(), a.colIdx().end());
  val_.assign(a.values().begin(), a.values().end());
  diagIdx_.assign(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = rowPtr_[i]; k < rowPtr_[i + 1]; ++k) {
      if (static_cast<std::size_t>(col_[k]) == i) diagIdx_[i] = k;
    }
    GRAPHENE_CHECK(diagIdx_[i] != static_cast<std::size_t>(-1),
                   "ILU(0) needs a full diagonal (row ", i, ")");
  }
  // IKJ ILU(0), fill-in discarded (pattern preserved).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = rowPtr_[i]; k < rowPtr_[i + 1]; ++k) {
      const std::size_t c = static_cast<std::size_t>(col_[k]);
      if (c >= i) break;  // columns are sorted: lower part first
      const double piv = val_[k] / val_[diagIdx_[c]];
      val_[k] = piv;
      // Merge the remainder of row i with the upper part of row c.
      std::size_t k2 = diagIdx_[c] + 1;
      std::size_t k3 = k + 1;
      while (k2 < rowPtr_[c + 1] && k3 < rowPtr_[i + 1]) {
        if (col_[k2] == col_[k3]) {
          val_[k3] -= piv * val_[k2];
          ++k2;
          ++k3;
        } else if (col_[k2] < col_[k3]) {
          ++k2;
        } else {
          ++k3;
        }
      }
    }
  }
  scratch_.resize(n);
}

void HostIlu0::solve(std::span<const double> r, std::span<double> z) const {
  const std::size_t n = rows();
  GRAPHENE_CHECK(r.size() == n && z.size() == n, "ILU solve size mismatch");
  std::vector<double>& y = scratch_;
  // Forward: L y = r (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (std::size_t k = rowPtr_[i]; k < diagIdx_[i]; ++k) {
      acc -= val_[k] * y[static_cast<std::size_t>(col_[k])];
    }
    y[i] = acc;
  }
  // Backward: U z = y.
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t k = diagIdx_[i] + 1; k < rowPtr_[i + 1]; ++k) {
      acc -= val_[k] * z[static_cast<std::size_t>(col_[k])];
    }
    z[i] = acc / val_[diagIdx_[i]];
  }
}

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

HostSolveResult hostBiCgStab(const matrix::CsrMatrix& a,
                             std::span<const double> b, double tolerance,
                             std::size_t maxIterations, bool useIlu) {
  const std::size_t n = a.rows();
  GRAPHENE_CHECK(b.size() == n, "rhs size mismatch");
  HostSolveResult result;

  auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<HostIlu0> ilu;
  if (useIlu) ilu = std::make_unique<HostIlu0>(a);

  std::vector<double> x(n, 0.0), r(b.begin(), b.end()), r0 = r, p(n, 0.0),
      y(n), z(n), Ay(n, 0.0), s(n), t(n);
  const double bNormSq = dot(b, b);
  double rhoOld = bNormSq, alpha = 1.0, omega = 1.0;
  double resNormSq = bNormSq;
  const double tol2 = tolerance * tolerance * bNormSq;

  auto precond = [&](std::span<const double> in, std::span<double> out) {
    if (ilu) {
      ilu->solve(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  std::size_t iter = 0;
  while (iter < maxIterations && resNormSq > tol2) {
    const double rho = dot(r0, r);
    const double beta =
        (rhoOld != 0.0 && omega != 0.0) ? (rho / rhoOld) * (alpha / omega)
                                        : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * Ay[i]);
    }
    precond(p, y);
    a.spmv(y, Ay);
    const double denom = dot(r0, Ay);
    alpha = denom != 0.0 ? rho / denom : 0.0;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * Ay[i];
    precond(s, z);
    a.spmv(z, t);
    const double tt = dot(t, t);
    omega = tt != 0.0 ? dot(t, s) / tt : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    rhoOld = rho;
    ++iter;
    resNormSq = dot(r, r);
    result.residualHistory.push_back(
        std::sqrt(resNormSq / std::max(bNormSq, 1e-300)));
  }
  auto t1 = std::chrono::steady_clock::now();

  result.iterations = iter;
  result.converged = resNormSq <= tol2;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

HostSolveResult hostCg(const matrix::CsrMatrix& a, std::span<const double> b,
                       double tolerance, std::size_t maxIterations,
                       bool useIlu) {
  const std::size_t n = a.rows();
  GRAPHENE_CHECK(b.size() == n, "rhs size mismatch");
  HostSolveResult result;

  auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<HostIlu0> ilu;
  if (useIlu) ilu = std::make_unique<HostIlu0>(a);

  std::vector<double> x(n, 0.0), r(b.begin(), b.end()), z(n), p(n), Ap(n);
  auto precond = [&](std::span<const double> in, std::span<double> out) {
    if (ilu) {
      ilu->solve(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };
  precond(r, z);
  p = z;
  const double bNormSq = dot(b, b);
  double rz = dot(r, z);
  double resNormSq = bNormSq;
  const double tol2 = tolerance * tolerance * bNormSq;

  std::size_t iter = 0;
  while (iter < maxIterations && resNormSq > tol2) {
    a.spmv(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp == 0.0) break;
    const double alpha = rz / pAp;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    precond(r, z);
    const double rzNew = dot(r, z);
    const double beta = rz != 0.0 ? rzNew / rz : 0.0;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz = rzNew;
    ++iter;
    resNormSq = dot(r, r);
    result.residualHistory.push_back(
        std::sqrt(resNormSq / std::max(bNormSq, 1e-300)));
  }
  auto t1 = std::chrono::steady_clock::now();
  result.iterations = iter;
  result.converged = resNormSq <= tol2;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

HostSolveResult hostGaussSeidel(const matrix::CsrMatrix& a,
                                std::span<const double> b, double tolerance,
                                std::size_t maxSweeps) {
  const std::size_t n = a.rows();
  GRAPHENE_CHECK(b.size() == n, "rhs size mismatch");
  HostSolveResult result;
  auto t0 = std::chrono::steady_clock::now();

  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  std::vector<double> x(n, 0.0), r(n);
  const double bNormSq = dot(b, b);
  const double tol2 = tolerance * tolerance * bNormSq;
  double resNormSq = bNormSq;

  std::size_t sweep = 0;
  while (sweep < maxSweeps && resNormSq > tol2) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      double diag = 0.0;
      for (std::size_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k) {
        const std::size_t c = static_cast<std::size_t>(col[k]);
        if (c == i) {
          diag = val[k];
        } else {
          acc -= val[k] * x[c];
        }
      }
      GRAPHENE_CHECK(diag != 0.0, "Gauss-Seidel needs a nonzero diagonal");
      x[i] = acc / diag;
    }
    a.spmv(x, r);
    resNormSq = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = b[i] - r[i];
      resNormSq += d * d;
    }
    ++sweep;
    result.residualHistory.push_back(
        std::sqrt(resNormSq / std::max(bNormSq, 1e-300)));
  }
  auto t1 = std::chrono::steady_clock::now();
  result.iterations = sweep;
  result.converged = resNormSq <= tol2;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

double measureHostSpmvSeconds(const matrix::CsrMatrix& a, std::size_t warmup,
                              std::size_t measured) {
  std::vector<double> x(a.cols(), 1.0), y(a.rows());
  for (std::size_t i = 0; i < warmup; ++i) a.spmv(x, y);
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < measured; ++i) a.spmv(x, y);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(measured);
}

}  // namespace graphene::baseline
