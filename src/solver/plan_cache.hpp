// PlanCache — warm-pipeline reuse keyed by sparsity structure.
//
// Building a solve pipeline is the expensive part of a solve on the
// simulated IPU: partitioning, halo-region layout, DistMatrix construction
// and symbolic program emission all scale with the matrix, while
// re-*executing* an already-emitted program costs only the upload and the
// run. A service answering repeat solves against the same sparsity
// structure (time-stepping, Newton iterations, parameter sweeps) should pay
// the build once.
//
// Keys are (structure, config) fingerprint pairs:
//   structureFingerprint — FNV-1a over rowPtr/colIdx/shape, the grid
//     geometry hints and the session knobs that shape the emitted program
//     (tiles, perCellHalo). Two matrices with equal structure hashes share
//     partitions, layouts and programs.
//   configFingerprint — FNV-1a over the canonical dump of the solver JSON.
//     The emitted program is tied to the solver chain, so a different
//     config is a different plan.
//
// Value-identity is tracked separately (valuesFingerprint over the
// coefficient array): a hit with different values re-uploads via
// SolveSession::updateMatrixValues() instead of rebuilding — unless the
// caller forbids it (factorisation preconditioners bake values into their
// factors at emission time; value-only reuse would solve with stale
// factors).
//
// The cache is thread-safe and lease-based: acquire() hands an idle entry
// exclusively to one worker (several entries may exist per key when
// concurrent jobs collide), release() returns or — when the pipeline came
// back damaged, e.g. with freshly blacklisted tiles — drops it. Eviction is
// LRU over idle entries.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "matrix/generators.hpp"
#include "solver/session.hpp"
#include "support/json.hpp"

namespace graphene::solver {

/// FNV-1a over `len` bytes, chained through `seed` for multi-field hashes.
std::uint64_t fnv1aBytes(const void* data, std::size_t len,
                         std::uint64_t seed = 14695981039346656037ull);

/// Hash of everything that shapes the emitted program except coefficient
/// values: sparsity structure, shape, geometry hints and the session knobs
/// `tiles` / `perCellHalo`.
std::uint64_t structureFingerprint(const matrix::GeneratedMatrix& m,
                                   const SessionOptions& options);

/// Hash of the coefficient array alone.
std::uint64_t valuesFingerprint(const matrix::CsrMatrix& m);

/// Hash of the canonical (compact) dump of a solver JSON config.
std::uint64_t configFingerprint(const json::Value& solverConfig);

/// True when the solver chain described by `solverConfig` contains a
/// factorisation-type stage ((d)ilu, gauss-seidel) whose emitted program
/// bakes coefficient values in — value-only plan reuse is unsound for it.
bool configBakesValues(const json::Value& solverConfig);

class PlanCache {
 public:
  struct Key {
    std::uint64_t structure = 0;
    std::uint64_t config = 0;
    bool operator==(const Key& o) const {
      return structure == o.structure && config == o.config;
    }
  };

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t invalidations = 0;
    std::size_t evictions = 0;
  };

  /// What acquire() hands out. `session` is null on a miss; on a hit the
  /// caller holds the exclusive lease until release(). `valuesMatch` tells
  /// whether the cached coefficients already equal the requested values
  /// hash — when false the caller MUST updateMatrixValues() before solving
  /// (acquire() already re-stamped the entry with the new hash).
  struct Lease {
    std::shared_ptr<SolveSession> session;
    bool valuesMatch = false;
  };

  /// `capacity` bounds the number of warm pipelines kept; 0 disables
  /// caching entirely (every acquire misses, insert/release drop).
  explicit PlanCache(std::size_t capacity);

  /// Leases an idle warm pipeline for `key`, preferring one whose cached
  /// coefficients already match `valuesHash`. When only value-mismatched
  /// entries are idle: with `allowValueUpdate` the best LRU entry is
  /// re-stamped to `valuesHash` and returned with valuesMatch=false;
  /// without it (factorisation chains) the call misses.
  Lease acquire(const Key& key, std::uint64_t valuesHash,
                bool allowValueUpdate);

  /// Registers a freshly built pipeline as a leased entry for `key` (the
  /// caller keeps using it; release() returns it to the pool). May evict
  /// the LRU idle entry to stay within capacity. No-op at capacity 0.
  /// The entry is tagged with the session's resolved topology fingerprint
  /// so chip-dead verdicts can invalidate every plan built for the now-gone
  /// machine shape (see invalidateTopology).
  void insert(const Key& key, std::uint64_t valuesHash,
              std::shared_ptr<SolveSession> session);

  /// Ends a lease. `invalidate` drops the entry instead of returning it —
  /// the pipeline no longer matches its key (e.g. hard-fault recovery
  /// blacklisted tiles and repartitioned, or the solve corrupted state).
  /// Sessions never seen by insert() (cache full / capacity 0) are ignored.
  void release(const SolveSession* session, bool invalidate);

  /// Drops every idle entry under `key` (leased ones are dropped at
  /// release). Returns how many entries were invalidated.
  std::size_t invalidate(const Key& key);

  /// Drops every idle entry whose pipeline was built for the machine shape
  /// with fingerprint `topologyFp` — the chip-dead path: once a chip is
  /// gone, every plan compiled for the pre-shrink pod is stale regardless
  /// of its (structure, config) key. Leased entries are dropped at
  /// release(). Returns how many entries were invalidated.
  std::size_t invalidateTopology(std::uint64_t topologyFp);

  /// Drops every entry unconditionally. Only safe when no leases are
  /// outstanding (e.g. service shutdown after the workers joined).
  void clear();

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Key key;
    std::uint64_t valuesHash = 0;
    std::uint64_t topologyFp = 0;  // resolved machine shape at insert time
    std::shared_ptr<SolveSession> session;
    bool busy = false;
    std::uint64_t lastUsedTick = 0;
  };

  /// Caller must hold mu_. Evicts idle LRU entries until size <= capacity.
  void evictLocked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace graphene::solver
