// Execution tracing & metrics.
//
// Covers: the trace timeline is bit-identical across host thread counts;
// the Chrome trace_event export round-trips through the JSON layer; the
// sink's exact aggregates match the engine's Profile (cycles summed in the
// same order → equal, not approximately equal) and survive ring wrap; a
// fault-plan run yields one merged, ordered timeline of injected faults and
// recovery actions; Profile::operator+= merges the new straggler stats and
// the metrics registry.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "graph/engine.hpp"
#include "ipu/fault.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/trace.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Tensor;
using support::TraceEvent;
using support::TraceKind;
using support::TraceSink;

namespace {

const char* kCgJson = R"({
  "type": "cg", "maxIterations": 200, "tolerance": 1e-6
})";

/// One emitted CG solve whose program can be re-run on fresh engines.
struct TracedSetup {
  std::unique_ptr<Context> ctx;
  std::unique_ptr<DistMatrix> A;
  std::unique_ptr<Solver> solver;
  std::optional<Tensor> x, b;
  std::vector<double> rhs;

  explicit TracedSetup(const std::string& solverJson = kCgJson,
                       std::size_t tiles = 4) {
    auto g = matrix::poisson2d5(8, 8);
    ctx = std::make_unique<Context>(ipu::IpuTarget::testTarget(tiles));
    auto layout =
        partition::Partitioner(ipu::Topology::singleIpu(tiles)).layout(g);
    A = std::make_unique<DistMatrix>(g.matrix, std::move(layout));
    x.emplace(A->makeVector(DType::Float32, "x"));
    b.emplace(A->makeVector(DType::Float32, "b"));
    solver = makeSolverFromString(solverJson);
    solver->apply(*A, *x, *b);
    rhs.assign(g.matrix.rows(), 1.0);
  }

  /// Runs the program on a fresh engine with `sink` attached.
  std::unique_ptr<graph::Engine> run(TraceSink& sink,
                                     std::size_t hostThreads = 1,
                                     ipu::FaultPlan* plan = nullptr) {
    solver->clearHistory();
    auto engine = std::make_unique<graph::Engine>(ctx->graph(), hostThreads);
    engine->setTraceSink(&sink);
    if (plan != nullptr) {
      plan->reset();
      engine->setFaultPlan(plan);
    }
    A->upload(*engine);
    A->writeVector(*engine, *b, rhs);
    engine->run(ctx->program());
    return engine;
  }
};

}  // namespace

// Tile stats (min/mean/max/straggler) are computed in one serial pass in
// task order, so the timeline — timestamps, durations, straggler picks,
// iteration samples — must be byte-identical whether 1 or 8 host threads
// simulate the tiles.
TEST(TraceDeterminism, BitIdenticalAcrossHostThreads) {
  TracedSetup setup;
  TraceSink serial, parallel;
  setup.run(serial, 1);
  setup.run(parallel, 8);

  ASSERT_GT(serial.recorded(), 0u);
  ASSERT_EQ(serial.recorded(), parallel.recorded());
  auto a = serial.events();
  auto b = parallel.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "timelines diverge at event " << i << " ("
                              << support::toString(a[i].kind) << " '"
                              << a[i].name << "')";
  }
  EXPECT_EQ(serial.computeSummary().size(), parallel.computeSummary().size());
  EXPECT_DOUBLE_EQ(serial.totalCycles(), parallel.totalCycles());
}

// The sink's running aggregates sum the same per-superstep doubles in the
// same order as the engine's Profile — exact equality, not tolerance.
TEST(TraceAggregates, MatchEngineProfileExactly) {
  TracedSetup setup;
  TraceSink sink;
  auto engine = setup.run(sink);
  const ipu::Profile& prof = engine->profile();

  EXPECT_EQ(support::traceComputeCycles(sink), prof.computeCycles);
  EXPECT_DOUBLE_EQ(sink.exchangeCycles(), prof.exchangeCycles);
  EXPECT_DOUBLE_EQ(sink.syncCycles(), prof.syncCycles);
  EXPECT_EQ(sink.exchangeSupersteps(), prof.exchangeSupersteps);
  EXPECT_DOUBLE_EQ(sink.totalCycles(), prof.totalCycles());

  // The timeline ends where the engine's monotonic clock ends.
  EXPECT_DOUBLE_EQ(engine->simCycles(), prof.totalCycles());

  // Iteration samples mirror the solver's recorded history.
  EXPECT_EQ(sink.iterationCount(), setup.solver->history().size());

  // Per-superstep straggler stats landed in the profile for every traced
  // category, with consistent totals.
  for (const auto& [cat, summary] : sink.computeSummary()) {
    auto it = prof.superstepStats.find(cat);
    ASSERT_NE(it, prof.superstepStats.end()) << cat;
    EXPECT_EQ(it->second.supersteps, summary.supersteps);
    EXPECT_DOUBLE_EQ(it->second.maxCycles, summary.cycles);
    EXPECT_DOUBLE_EQ(it->second.worstCycles, summary.worstCycles);
    EXPECT_EQ(it->second.worstStragglerTile, summary.worstStragglerTile);
    EXPECT_GE(it->second.imbalance(), 1.0);
  }

  // The engine ticked the DistMatrix codelet metrics: SpMV FLOPs and halo
  // traffic are first-class counters now.
  EXPECT_GT(prof.metrics.counter("spmv.flops"), 0.0);
  EXPECT_GT(prof.metrics.counter("spmv.count"), 0.0);
  EXPECT_GT(prof.metrics.counter("halo.bytes"), 0.0);
  EXPECT_GT(prof.metrics.counter("halo.exchanges"), 0.0);
}

// A tiny ring drops old events but the aggregates stay exact: the summary
// table is computed over the full run, not the surviving window.
TEST(TraceAggregates, ExactAfterRingWrap) {
  TracedSetup setup;
  TraceSink full, tiny(64);
  setup.run(full);
  setup.run(tiny);

  ASSERT_GT(tiny.dropped(), 0u);
  EXPECT_EQ(tiny.events().size(), 64u);
  EXPECT_EQ(tiny.recorded(), full.recorded());
  EXPECT_DOUBLE_EQ(tiny.totalCycles(), full.totalCycles());
  EXPECT_EQ(support::traceComputeCycles(tiny),
            support::traceComputeCycles(full));
  EXPECT_EQ(tiny.iterationCount(), full.iterationCount());
  // The rendered tables agree on the aggregates, but the wrapped sink
  // surfaces its data loss: a "(dropped)" row that the full sink's table
  // does not have.
  const std::string tinyTable = support::traceSummaryTable(tiny).render();
  const std::string fullTable = support::traceSummaryTable(full).render();
  EXPECT_NE(tinyTable.find("(dropped)"), std::string::npos);
  EXPECT_NE(tinyTable.find(std::to_string(tiny.dropped())),
            std::string::npos);
  EXPECT_EQ(fullTable.find("(dropped)"), std::string::npos);
}

// The Chrome export is valid JSON for our own parser and round-trips
// structurally (dump → parse → dump fixed point).
TEST(TraceExport, ChromeJsonRoundTrips) {
  TracedSetup setup;
  TraceSink sink;
  setup.run(sink);

  json::Value doc = support::traceToChromeJson(sink);
  ASSERT_TRUE(doc.isObject());
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.isArray());
  EXPECT_GE(events.asArray().size(), sink.events().size());

  json::Value reparsed = json::parse(doc.dump(2));
  EXPECT_TRUE(reparsed == doc);
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

// A seeded bitflip plan under recovery-enabled CG: the trace interleaves the
// injected fault and the solver's recovery restart into one ordered
// timeline, stamped with superstep indices.
TEST(TraceFaults, MergedOrderedFaultTimeline) {
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 5,
    "faults": [
      {"type": "bitflip", "tensor": "cg_resid", "bit": 30,
       "skip": 100, "count": 1}
    ]
  })");
  TracedSetup setup;
  TraceSink sink;
  auto engine = setup.run(sink, 1, &plan);

  EXPECT_GE(sink.faultCount(), 1u);
  EXPECT_GE(sink.recoveryCount(), 1u);
  // Every profile fault-log entry was mirrored into the timeline.
  EXPECT_EQ(sink.faultCount() + sink.recoveryCount(),
            engine->profile().faultEvents.size());

  double lastStart = -1.0;
  bool sawFault = false, sawRecoveryAfterFault = false;
  for (const TraceEvent& ev : sink.events()) {
    EXPECT_GE(ev.startCycle, lastStart) << "timeline out of order at '"
                                        << ev.name << "'";
    lastStart = ev.startCycle;
    if (ev.kind == TraceKind::Fault) {
      sawFault = true;
      EXPECT_EQ(ev.name, "bitflip");
    }
    if (ev.kind == TraceKind::Recovery && sawFault) {
      sawRecoveryAfterFault = true;
      EXPECT_EQ(ev.name, "recovery:restart");
      EXPECT_GT(ev.superstep, 0u);
    }
  }
  EXPECT_TRUE(sawFault);
  EXPECT_TRUE(sawRecoveryAfterFault);

  // The restart also ticked the solver's metrics counter.
  EXPECT_GE(engine->profile().metrics.counter("cg.restarts"), 1.0);
}

// Profile::operator+= folds the new observability state: superstep stats
// add their sums and keep the globally worst superstep; metrics counters
// add, gauges take the newer value.
TEST(ProfileMerge, AccumulatesStragglerStatsAndMetrics) {
  ipu::Profile a, b;
  a.superstepStats["spmv"].record(/*superstep=*/0, /*min=*/10, /*mean=*/12,
                                  /*max=*/20, /*stragglerTile=*/3);
  b.superstepStats["spmv"].record(/*superstep=*/7, /*min=*/11, /*mean=*/13,
                                  /*max=*/50, /*stragglerTile=*/1);
  b.superstepStats["reduce"].record(/*superstep=*/8, /*min=*/1, /*mean=*/2,
                                    /*max=*/3, /*stragglerTile=*/0);
  a.metrics.addCounter("spmv.flops", 100);
  b.metrics.addCounter("spmv.flops", 50);
  a.metrics.setGauge("mem.peak", 1.0);
  b.metrics.setGauge("mem.peak", 2.0);

  a += b;
  const ipu::SuperstepStats& s = a.superstepStats.at("spmv");
  EXPECT_EQ(s.supersteps, 2u);
  EXPECT_DOUBLE_EQ(s.maxCycles, 70.0);
  EXPECT_DOUBLE_EQ(s.meanCycles, 25.0);
  EXPECT_DOUBLE_EQ(s.minCycles, 21.0);
  EXPECT_DOUBLE_EQ(s.worstCycles, 50.0);   // b's superstep was worse
  EXPECT_EQ(s.worstStragglerTile, 1u);
  EXPECT_EQ(s.worstSuperstep, 7u);
  EXPECT_EQ(a.superstepStats.count("reduce"), 1u);
  EXPECT_DOUBLE_EQ(a.metrics.counter("spmv.flops"), 150.0);
  EXPECT_DOUBLE_EQ(a.metrics.gauge("mem.peak"), 2.0);
}

// SuperstepStats::operator+= keeps the *strictly* worst superstep: on a
// tie in worstCycles the left side's straggler/superstep win, so merging
// per-attempt profiles is order-stable and deterministic.
TEST(ProfileMerge, SuperstepStatsTieKeepsLeft) {
  ipu::SuperstepStats a, b;
  a.record(/*superstep=*/2, /*min=*/5, /*mean=*/6, /*max=*/40,
           /*stragglerTile=*/7);
  b.record(/*superstep=*/9, /*min=*/5, /*mean=*/6, /*max=*/40,
           /*stragglerTile=*/1);

  ipu::SuperstepStats merged = a;
  merged += b;
  EXPECT_EQ(merged.supersteps, 2u);
  EXPECT_DOUBLE_EQ(merged.worstCycles, 40.0);
  EXPECT_EQ(merged.worstStragglerTile, 7u);  // tie → left side kept
  EXPECT_EQ(merged.worstSuperstep, 2u);

  // Strictly worse on the right does replace.
  ipu::SuperstepStats c;
  c.record(/*superstep=*/11, /*min=*/5, /*mean=*/6, /*max=*/41,
           /*stragglerTile=*/3);
  merged += c;
  EXPECT_DOUBLE_EQ(merged.worstCycles, 41.0);
  EXPECT_EQ(merged.worstStragglerTile, 3u);
  EXPECT_EQ(merged.worstSuperstep, 11u);
}

// Profile::operator+= with an empty fault log on either side and with
// categories the left has never seen: nothing is lost, nothing is
// double-counted.
TEST(ProfileMerge, EmptyFaultLogAndUnseenCategories) {
  ipu::Profile a, b;
  a.computeCycles["spmv"] = 100.0;
  a.faultEvents.push_back({"bitflip", 3, "resid", 5, 30, 0.0, ""});
  b.computeCycles["reduce"] = 7.0;  // category a has never seen
  ASSERT_TRUE(b.faultEvents.empty());

  a += b;
  EXPECT_DOUBLE_EQ(a.computeCycles.at("spmv"), 100.0);
  EXPECT_DOUBLE_EQ(a.computeCycles.at("reduce"), 7.0);
  ASSERT_EQ(a.faultEvents.size(), 1u);  // empty right adds nothing
  EXPECT_EQ(a.faultEvents[0].kind, "bitflip");

  // The mirror case: empty left absorbs the right's log verbatim.
  ipu::Profile c;
  ASSERT_TRUE(c.faultEvents.empty());
  c += a;
  ASSERT_EQ(c.faultEvents.size(), 1u);
  EXPECT_TRUE(c.faultEvents[0] == a.faultEvents[0]);
  EXPECT_DOUBLE_EQ(c.computeCycles.at("spmv"), 100.0);
  EXPECT_DOUBLE_EQ(c.computeCycles.at("reduce"), 7.0);
}

// Prometheus text exposition: names are sanitised onto the Prometheus
// charset, every family gets a TYPE line, and std::map iteration makes the
// output deterministic.
TEST(Metrics, PrometheusTextExposition) {
  support::MetricsRegistry metrics;
  metrics.addCounter("spmv.flops", 1234);
  metrics.addCounter("halo.bytes", 9);
  metrics.setGauge("mem.peak-used", 2.5);

  const std::string text = support::metricsToPrometheusText(metrics);
  EXPECT_EQ(text,
            "# TYPE graphene_halo_bytes counter\n"
            "graphene_halo_bytes 9\n"
            "# TYPE graphene_spmv_flops counter\n"
            "graphene_spmv_flops 1234\n"
            "# TYPE graphene_mem_peak_used gauge\n"
            "graphene_mem_peak_used 2.5\n");

  // Prefixless, and a name that starts with a digit gets escaped.
  support::MetricsRegistry odd;
  odd.addCounter("2fast", 1);
  const std::string oddText = support::metricsToPrometheusText(odd, "");
  EXPECT_EQ(oddText, "# TYPE _fast counter\n_fast 1\n");
}

// With no sink attached nothing is recorded and nothing breaks — the
// pay-for-what-you-use contract of every emission site.
TEST(TraceSinkApi, DetachedEngineRecordsNothing) {
  TracedSetup setup;
  graph::Engine engine(setup.ctx->graph(), 1);
  EXPECT_EQ(engine.traceSink(), nullptr);
  setup.A->upload(engine);
  setup.A->writeVector(engine, *setup.b, setup.rhs);
  engine.run(setup.ctx->program());
  EXPECT_EQ(setup.solver->result().status, SolveStatus::Converged);

  // recordIteration on a null sink is a safe no-op.
  support::recordIteration(nullptr, "cg", 1, 0.5, 0.0, 0);
}

// The registry is a shared mutable service surface: many worker threads
// tick counters while a metrics endpoint scrapes the Prometheus text. Every
// tick must land (no lost updates) and every scrape must be a consistent,
// parseable exposition — never a torn map.
TEST(Metrics, ConcurrentTicksAndPrometheusScrapes) {
  support::MetricsRegistry metrics;
  constexpr int kThreads = 4;
  constexpr int kTicks = 2000;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&metrics, t] {
      for (int i = 0; i < kTicks; ++i) {
        metrics.addCounter("service.jobs.accepted", 1);
        metrics.addCounter("worker." + std::to_string(t) + ".ticks", 1);
        metrics.setGauge("service.queue.depth", static_cast<double>(i));
      }
    });
  }
  // Scrape concurrently with the writers the whole time.
  std::size_t scrapes = 0;
  while (scrapes < 50) {
    const std::string text = support::metricsToPrometheusText(metrics);
    EXPECT_TRUE(text.empty() || text.back() == '\n');
    ++scrapes;
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(metrics.counter("service.jobs.accepted"),
            static_cast<double>(kThreads * kTicks));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(metrics.counter("worker." + std::to_string(t) + ".ticks"),
              static_cast<double>(kTicks));
  }
  // The final exposition carries every family exactly once.
  const std::string text = support::metricsToPrometheusText(metrics);
  EXPECT_NE(text.find("graphene_service_jobs_accepted 8000\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE graphene_service_queue_depth gauge"),
            std::string::npos);
}

// Job lifecycle events and job-id stamping: recordJobEvent carries the
// stable id explicitly; setJobId stamps engine/solver events that carry
// none, so interleaved jobs through one sink stay attributable.
TEST(TraceJobs, JobEventsAndStamping) {
  TraceSink sink;
  support::recordJobEvent(&sink, "job:accepted", 7, 1.0);
  support::recordJobEvent(&sink, "job:done", 7, 2.0, "converged");
  support::recordJobEvent(nullptr, "job:noop", 1, 3.0);  // safe no-op

  // A leased-pipeline phase: events recorded while the stamp is set belong
  // to job 9, even though the emission sites know nothing about jobs.
  sink.setJobId(9);
  support::recordIteration(&sink, "cg", 1, 0.5, 100.0, 4);
  sink.setJobId(SIZE_MAX);
  support::recordIteration(&sink, "cg", 2, 0.25, 200.0, 5);  // anonymous

  EXPECT_EQ(sink.jobEventCount(), 2u);
  EXPECT_EQ(sink.jobsSeen(), (std::set<std::size_t>{7, 9}));

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceKind::Job);
  EXPECT_EQ(events[0].jobId, 7u);
  EXPECT_EQ(events[1].detail, "converged");
  EXPECT_EQ(events[2].jobId, 9u);
  EXPECT_EQ(events[3].jobId, SIZE_MAX);  // un-stamped stays anonymous

  // clear() resets the events and aggregates but keeps the configured
  // stamp semantics usable; jobsSeen is part of the run state and resets.
  sink.clear();
  EXPECT_EQ(sink.jobEventCount(), 0u);
  EXPECT_TRUE(sink.jobsSeen().empty());
}

// The Chrome export groups the merged timeline by job: each job becomes its
// own process (pid = jobId + 1, 0 for anonymous events) with a readable
// process_name, so concurrent solves render as parallel lanes.
TEST(TraceJobs, ChromeJsonGroupsByJob) {
  TraceSink sink;
  support::recordJobEvent(&sink, "job:start", 3, 1.0);
  sink.setJobId(3);
  support::recordIteration(&sink, "cg", 0, 1.0, 10.0, 0);
  sink.setJobId(12);
  support::recordIteration(&sink, "bicgstab", 0, 0.9, 10.0, 0);
  sink.setJobId(SIZE_MAX);

  const json::Value doc = support::traceToChromeJson(sink);
  const auto& events = doc.at("traceEvents").asArray();

  std::set<double> pids;
  std::map<double, std::string> processNames;
  for (const auto& ev : events) {
    const double pid = ev.at("pid").asNumber();
    pids.insert(pid);
    if (ev.at("name").asString() == "process_name") {
      processNames[pid] =
          ev.at("args").at("name").asString();
    }
  }
  // Jobs 3 and 12 → pids 4 and 13; nothing anonymous was recorded except
  // metadata for pid 0 is absent.
  EXPECT_TRUE(pids.count(4.0));
  EXPECT_TRUE(pids.count(13.0));
  EXPECT_EQ(processNames[4.0], "job 3");
  EXPECT_EQ(processNames[13.0], "job 12");

  // Stamped payload events carry the id in args too.
  bool sawStampedIteration = false;
  for (const auto& ev : events) {
    if (ev.at("name").asString() == "cg" && ev.contains("args") &&
        ev.at("args").contains("jobId")) {
      EXPECT_EQ(ev.at("args").at("jobId").asNumber(), 3.0);
      sawStampedIteration = true;
    }
  }
  EXPECT_TRUE(sawStampedIteration);

  // The summary table reports the job dimension once jobs are present.
  const std::string rendered = support::traceSummaryTable(sink).render();
  EXPECT_NE(rendered.find("(jobs)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("2 distinct jobs"), std::string::npos) << rendered;
}

// ---- Histograms --------------------------------------------------------

// The ladder places values by multiply-and-compare (no libm), so bucket
// indices are bit-deterministic across hosts: a value on a bound goes to
// that bound's bucket (le is inclusive, the Prometheus convention).
TEST(Histogram, LadderBucketPlacement) {
  support::HistogramLadder ladder{1.0, 2.0, 4};  // bounds 1 2 4 8, +Inf
  EXPECT_EQ(ladder.bucketFor(0.5), 0u);
  EXPECT_EQ(ladder.bucketFor(1.0), 0u);  // on the bound: inclusive
  EXPECT_EQ(ladder.bucketFor(1.5), 1u);
  EXPECT_EQ(ladder.bucketFor(8.0), 3u);
  EXPECT_EQ(ladder.bucketFor(8.1), 4u);  // +Inf bucket
  EXPECT_EQ(ladder.upperBound(2), 4.0);
  EXPECT_TRUE(std::isinf(ladder.upperBound(4)));
}

TEST(Histogram, ObserveSumCountAndQuantile) {
  support::Histogram h(support::HistogramLadder{1.0, 2.0, 8});
  for (double v : {0.5, 1.5, 3.0, 3.5, 6.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 114.5);
  // Quantiles interpolate within the covering bucket; q=0 sits in the
  // first non-empty one, q=1 in the last (clamped to a finite bound for
  // the +Inf bucket).
  EXPECT_GT(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 128.0);  // +Inf clamps to last bound
  EXPECT_EQ(support::Histogram{}.quantile(0.5), 0.0);  // empty → 0
}

// Merging histograms (Profile::operator+= across engine shards / pod
// chips) is integer bucket addition: the merged result is identical no
// matter how observations were distributed — the determinism contract at
// any host thread count.
TEST(Histogram, MergeIsOrderAndShardingInvariant) {
  const support::HistogramLadder ladder{1.0, 2.0, 10};
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(0.3 * i);

  support::Histogram all(ladder);
  for (double v : samples) all.observe(v);

  support::Histogram shards[8] = {
      support::Histogram(ladder), support::Histogram(ladder),
      support::Histogram(ladder), support::Histogram(ladder),
      support::Histogram(ladder), support::Histogram(ladder),
      support::Histogram(ladder), support::Histogram(ladder)};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    shards[i % 8].observe(samples[i]);
  }
  support::Histogram merged(ladder);
  for (int s = 7; s >= 0; --s) merged += shards[s];  // any order
  EXPECT_TRUE(merged == all);
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), all.quantile(0.99));
}

TEST(Metrics, RegistryHistogramsMergeAndCopy) {
  support::MetricsRegistry a, b;
  a.observe("lat", 3.0, support::HistogramLadder{1.0, 2.0, 4});
  b.observe("lat", 900.0, support::HistogramLadder{1.0, 2.0, 4});
  b.observe("other", 1.0);
  a += b;
  EXPECT_EQ(a.histogram("lat").count, 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").sum, 903.0);
  EXPECT_EQ(a.histogram("other").count, 1u);
  support::MetricsRegistry c = a;  // deep copy
  c.observe("lat", 1.0);
  EXPECT_EQ(a.histogram("lat").count, 2u);
  EXPECT_EQ(c.histogram("lat").count, 3u);
}

// Exposition-format regression: # HELP lines come from the help registry,
// histograms emit the cumulative _bucket series plus _sum/_count. Pinned
// byte-for-byte — Prometheus parsers are strict and so is this test.
TEST(Metrics, PrometheusTextWithHelpAndHistogram) {
  support::MetricsRegistry metrics;
  metrics.addCounter("jobs.done", 3);
  metrics.setHelp("jobs.done", "Terminal jobs.");
  metrics.observe("lat.ms", 0.5, support::HistogramLadder{1.0, 2.0, 3});
  metrics.observe("lat.ms", 3.0, support::HistogramLadder{1.0, 2.0, 3});
  metrics.observe("lat.ms", 100.0, support::HistogramLadder{1.0, 2.0, 3});
  metrics.setHelp("lat.ms", "Latency in milliseconds.");

  const std::string text = support::metricsToPrometheusText(metrics);
  EXPECT_EQ(text,
            "# HELP graphene_jobs_done Terminal jobs.\n"
            "# TYPE graphene_jobs_done counter\n"
            "graphene_jobs_done 3\n"
            "# HELP graphene_lat_ms Latency in milliseconds.\n"
            "# TYPE graphene_lat_ms histogram\n"
            "graphene_lat_ms_bucket{le=\"1\"} 1\n"
            "graphene_lat_ms_bucket{le=\"2\"} 1\n"
            "graphene_lat_ms_bucket{le=\"4\"} 2\n"
            "graphene_lat_ms_bucket{le=\"+Inf\"} 3\n"
            "graphene_lat_ms_sum 103.5\n"
            "graphene_lat_ms_count 3\n");
}
