// Figure 10: convergence of PBiCGStab+ILU(0) solver configurations on the
// af_shell7 stand-in (thin-shell FEM).
#include "convergence_common.hpp"

int main() {
  return graphene::bench::runConvergenceFigure(
      "Figure 10", "af_shell7", /*rows=*/4000, /*tiles=*/32,
      /*innerIterations=*/40, /*refinements=*/10, /*shiftScale=*/300.0);
}
