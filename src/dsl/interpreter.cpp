#include "dsl/interpreter.hpp"

#include <cmath>

#include "ipu/worker_pool.hpp"
#include "support/error.hpp"

namespace graphene::dsl {

using graph::promote;
using twofloat::Float2;
using twofloat::SoftDouble;

namespace {

template <typename T>
Scalar binNumeric(BinOp op, T a, T b) {
  switch (op) {
    case BinOp::Add: return Scalar(a + b);
    case BinOp::Sub: return Scalar(a - b);
    case BinOp::Mul: return Scalar(a * b);
    case BinOp::Div: return Scalar(a / b);
    case BinOp::Lt: return Scalar(a < b);
    case BinOp::Le: return Scalar(a <= b);
    case BinOp::Gt: return Scalar(a > b);
    case BinOp::Ge: return Scalar(a >= b);
    case BinOp::Eq: return Scalar(a == b);
    case BinOp::Ne: return Scalar(!(a == b));
    case BinOp::Min: return Scalar(b < a ? b : a);
    case BinOp::Max: return Scalar(a < b ? b : a);
    default: break;
  }
  GRAPHENE_UNREACHABLE("binary op not defined for this type");
}

}  // namespace

Scalar evalBinaryScalar(BinOp op, const Scalar& lhs, const Scalar& rhs) {
  DType common = promote(lhs.type(), rhs.type());
  // Logic ops work on bools without promotion.
  if (op == BinOp::And || op == BinOp::Or) {
    bool a = lhs.truthy(), b = rhs.truthy();
    return Scalar(op == BinOp::And ? (a && b) : (a || b));
  }
  if (common == DType::Bool) common = DType::Int32;  // bool arithmetic
  Scalar a = lhs.castTo(common);
  Scalar b = rhs.castTo(common);
  switch (common) {
    case DType::Int32: {
      if (op == BinOp::Mod) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer modulo by zero in codelet");
        return Scalar(a.asInt() % b.asInt());
      }
      if (op == BinOp::Div) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer division by zero in codelet");
      }
      return binNumeric<std::int32_t>(op, a.asInt(), b.asInt());
    }
    case DType::Float32:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<float>(op, a.asFloat(), b.asFloat());
    case DType::Float64:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<SoftDouble>(op, a.asSoftDouble(), b.asSoftDouble());
    case DType::DoubleWord:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<Float2>(op, a.asDoubleWord(), b.asDoubleWord());
    default:
      break;
  }
  GRAPHENE_UNREACHABLE("bad promoted type");
}

Scalar evalUnaryScalar(UnOp op, const Scalar& x) {
  switch (op) {
    case UnOp::Not:
      return Scalar(!x.truthy());
    case UnOp::Neg:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: return Scalar(-x.castTo(DType::Int32).asInt());
        case DType::Float32: return Scalar(-x.asFloat());
        case DType::Float64: return Scalar(-x.asSoftDouble());
        case DType::DoubleWord: return Scalar(-x.asDoubleWord());
      }
      break;
    case UnOp::Abs:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: {
          std::int32_t v = x.castTo(DType::Int32).asInt();
          return Scalar(v < 0 ? -v : v);
        }
        case DType::Float32: return Scalar(std::fabs(x.asFloat()));
        case DType::Float64: return Scalar(SoftDouble::abs(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::abs(x.asDoubleWord()));
      }
      break;
    case UnOp::Sqrt:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32:
        case DType::Float32:
          return Scalar(std::sqrt(x.castTo(DType::Float32).asFloat()));
        case DType::Float64: return Scalar(SoftDouble::sqrt(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::sqrt(x.asDoubleWord()));
      }
      break;
  }
  GRAPHENE_UNREACHABLE("bad unary op");
}

namespace {

ipu::Op costOpFor(BinOp op, DType t) {
  if (t == DType::Int32 || t == DType::Bool) return ipu::Op::IntArith;
  switch (op) {
    case BinOp::Add: return ipu::Op::Add;
    case BinOp::Sub: return ipu::Op::Sub;
    case BinOp::Mul: return ipu::Op::Mul;
    case BinOp::Div: return ipu::Op::Div;
    case BinOp::Mod: return ipu::Op::IntArith;
    case BinOp::And:
    case BinOp::Or: return ipu::Op::Logic;
    default: return ipu::Op::Compare;  // relational, min, max
  }
}

ipu::Op costOpFor(UnOp op) {
  switch (op) {
    case UnOp::Neg: return ipu::Op::Neg;
    case UnOp::Abs: return ipu::Op::Abs;
    case UnOp::Sqrt: return ipu::Op::Sqrt;
    case UnOp::Not: return ipu::Op::Logic;
  }
  return ipu::Op::Logic;
}

/// One interpreter run over a vertex. Cycle accounting: ops accumulate into a
/// LaneCycles block (fp/mem overlap); control flow flushes the block.
class Exec {
 public:
  Exec(const CodeletIR& ir, const ipu::CostModel& cost,
       std::size_t numWorkers, graph::VertexContext& ctx)
      : ir_(ir), cost_(cost), numWorkers_(numWorkers), ctx_(ctx),
        vars_(static_cast<std::size_t>(ir.numVars)) {}

  double run() {
    runStmts(ir_.statements);
    flush();
    return total_;
  }

 private:
  void flush() {
    total_ += lanes_.total();
    lanes_ = ipu::LaneCycles{};
  }

  void charge(ipu::Op op, DType t) { lanes_.add(cost_, op, t); }

  void chargeBranch() {
    flush();
    total_ += cost_.workerCycles(ipu::Op::Branch, DType::Int32);
  }

  Scalar eval(const ExprPtr& e) {
    GRAPHENE_DCHECK(e != nullptr, "null expression");
    switch (e->kind) {
      case Expr::Kind::Const:
        return e->constant;
      case Expr::Kind::Var:
        GRAPHENE_DCHECK(e->var >= 0 &&
                            static_cast<std::size_t>(e->var) < vars_.size(),
                        "bad var slot");
        return vars_[static_cast<std::size_t>(e->var)];
      case Expr::Kind::ArgLoad: {
        Scalar idx = eval(e->a);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Load, ctx_.argType(static_cast<std::size_t>(e->arg)));
        return ctx_.load(static_cast<std::size_t>(e->arg),
                         static_cast<std::size_t>(i));
      }
      case Expr::Kind::ArgSize:
        charge(ipu::Op::IntArith, DType::Int32);
        return Scalar(static_cast<std::int32_t>(
            ctx_.argSize(static_cast<std::size_t>(e->arg))));
      case Expr::Kind::Binary: {
        Scalar a = eval(e->a);
        Scalar b = eval(e->b);
        DType common = promote(a.type(), b.type());
        // Mixed double-word × single-word operations use the cheaper
        // DW∘FP algorithms of Joldes et al. (6–10 flops instead of 9–31):
        // price them separately instead of as full DW∘DW (§III-D).
        if (common == DType::DoubleWord && a.type() != b.type() &&
            (a.type() == DType::Float32 || b.type() == DType::Float32)) {
          double cycles = 0;
          switch (e->bop) {
            case BinOp::Add:
            case BinOp::Sub: cycles = 84.0; break;   // DWPlusFP, 10 flops
            case BinOp::Mul: cycles = 42.0; break;   // DWTimesFP3, 6 flops
            case BinOp::Div: cycles = 66.0; break;   // DWDivFP3, 10 flops
            default: cycles = 0; break;              // fall through below
          }
          if (cycles > 0) {
            lanes_.add(ipu::Lane::Fp, cycles);
            return evalBinaryScalar(e->bop, a, b);
          }
        }
        charge(costOpFor(e->bop, common), common);
        return evalBinaryScalar(e->bop, a, b);
      }
      case Expr::Kind::Unary: {
        Scalar a = eval(e->a);
        charge(costOpFor(e->uop), a.type());
        return evalUnaryScalar(e->uop, a);
      }
      case Expr::Kind::Cast: {
        Scalar a = eval(e->a);
        if (a.type() != e->type &&
            (e->type == DType::DoubleWord || e->type == DType::Float64 ||
             a.type() == DType::DoubleWord || a.type() == DType::Float64)) {
          charge(ipu::Op::Cast, e->type);
        }
        return a.castTo(e->type);
      }
      case Expr::Kind::Select: {
        Scalar c = eval(e->a);
        // Single-cycle conditional select on the IPU.
        charge(ipu::Op::Branch, DType::Int32);
        return c.truthy() ? eval(e->b) : eval(e->c);
      }
      case Expr::Kind::WorkerId:
        return Scalar(static_cast<std::int32_t>(worker_));
    }
    GRAPHENE_UNREACHABLE("bad expr kind");
  }

  void runStmts(const StmtList& stmts) {
    for (const StmtPtr& s : stmts) runStmt(*s);
  }

  void runStmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        Scalar v = eval(s.value);
        GRAPHENE_DCHECK(s.var >= 0 &&
                            static_cast<std::size_t>(s.var) < vars_.size(),
                        "bad var slot");
        vars_[static_cast<std::size_t>(s.var)] = v;
        return;
      }
      case Stmt::Kind::StoreArg: {
        Scalar idx = eval(s.index);
        Scalar v = eval(s.value);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Store, ctx_.argType(static_cast<std::size_t>(s.arg)));
        ctx_.store(static_cast<std::size_t>(s.arg),
                   static_cast<std::size_t>(i), v);
        return;
      }
      case Stmt::Kind::If: {
        Scalar c = eval(s.cond);
        chargeBranch();
        if (c.truthy()) {
          runStmts(s.body);
        } else {
          runStmts(s.elseBody);
        }
        return;
      }
      case Stmt::Kind::While: {
        int guard = 0;
        while (true) {
          Scalar c = eval(s.cond);
          chargeBranch();
          if (!c.truthy()) break;
          runStmts(s.body);
          GRAPHENE_CHECK(++guard < (1 << 26),
                         "runaway While loop in codelet");
        }
        return;
      }
      case Stmt::Kind::For: {
        runFor(s, /*parallel=*/false);
        return;
      }
      case Stmt::Kind::ParFor: {
        runFor(s, /*parallel=*/true);
        return;
      }
    }
    GRAPHENE_UNREACHABLE("bad stmt kind");
  }

  void runFor(const Stmt& s, bool parallel) {
    const std::int32_t begin = eval(s.begin).castTo(DType::Int32).asInt();
    const std::int32_t end = eval(s.end).castTo(DType::Int32).asInt();
    const std::int32_t step =
        s.step ? eval(s.step).castTo(DType::Int32).asInt() : 1;
    GRAPHENE_CHECK(step > 0, "For loops require a positive step");
    GRAPHENE_DCHECK(s.var >= 0, "loop without induction variable");

    if (!parallel) {
      // Counted loops compile to the IPU's hardware-loop (rpt-style)
      // instructions: setup costs one integer op + branch, iterations carry
      // no bookkeeping overhead.
      charge(ipu::Op::IntArith, DType::Int32);
      chargeBranch();
      for (std::int32_t i = begin; i < end; i += step) {
        vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
        runStmts(s.body);
      }
      return;
    }

    // Worker-parallel loop (iputhreading): iterations are dealt round-robin
    // to the tile's workers. Functionally they run in order (iterations in a
    // level are independent by construction); the clock advances by the
    // slowest worker plus spawn/sync overhead.
    flush();
    ipu::WorkerPool pool(numWorkers_);
    pool.chargeSpawn();
    const std::size_t savedWorker = worker_;
    std::size_t w = 0;
    for (std::int32_t i = begin; i < end; i += step) {
      vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
      worker_ = w;
      const double before = total_;
      runStmts(s.body);
      flush();
      pool.addCycles(w, total_ - before);
      total_ = before;  // iteration cost moved into the pool
      w = (w + 1) % numWorkers_;
    }
    worker_ = savedWorker;
    total_ += pool.sync();
  }

  const CodeletIR& ir_;
  const ipu::CostModel& cost_;
  std::size_t numWorkers_;
  graph::VertexContext& ctx_;
  std::vector<Scalar> vars_;
  ipu::LaneCycles lanes_;
  double total_ = 0;
  std::size_t worker_ = 0;
};

}  // namespace

graph::VertexCost interpretCodelet(const CodeletIR& ir,
                                   const ipu::CostModel& cost,
                                   std::size_t numWorkers,
                                   graph::VertexContext& ctx) {
  GRAPHENE_CHECK(ctx.numArgs() == ir.numArgs,
                 "codelet arg count mismatch: vertex has ", ctx.numArgs(),
                 ", codelet expects ", ir.numArgs);
  Exec exec(ir, cost, numWorkers, ctx);
  graph::VertexCost result;
  result.workerCycles = exec.run();
  result.wholeTile = ir.usesWorkers;
  return result;
}

}  // namespace graphene::dsl
