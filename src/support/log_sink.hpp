// LogSink — a structured JSONL event stream.
//
// TraceSink answers "what happened inside one solve" with a cycle-stamped
// ring buffer; a long-running service also needs the *operational* story as
// an append-only machine-readable log: jobs accepted and finished, faults
// injected, recoveries taken, chips retired. LogSink writes one JSON object
// per line (JSONL — `jq`-able, tail -f-able), with the same stable event
// names and job ids the TraceSink timeline and the service.* counters use,
// so the three views of one incident always join on the same keys:
//
//   {"seq":17,"event":"job:retry","jobId":4,"detail":"nan-detected"}
//   {"seq":18,"event":"fault:bitflip","jobId":4,"target":"resid","bit":30}
//
// Lines are written under a mutex (one writer call = one complete line —
// concurrent workers never interleave mid-line) and flushed per event: a
// crashing process keeps everything up to its last event. `seq` is a
// monotonic per-sink counter, so a merged/post-processed log can always be
// re-ordered exactly as written.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include "support/json.hpp"

namespace graphene::support {

class LogSink {
 public:
  /// Appends to `path` (created if missing). Throws graphene::Error when
  /// the file cannot be opened.
  explicit LogSink(const std::string& path);
  /// Writes to a caller-owned stream (tests, stdout logging). The stream
  /// must outlive the sink.
  explicit LogSink(std::ostream& os);

  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  /// Emits one event line. `jobId` SIZE_MAX means "not job-scoped" and is
  /// omitted from the line; `fields` are merged into the object (they
  /// cannot override "seq"/"event"/"jobId").
  void log(const std::string& event, std::size_t jobId = SIZE_MAX,
           json::Object fields = {});

  /// Events written so far.
  std::size_t written() const;

 private:
  mutable std::mutex mu_;
  std::ofstream file_;
  std::ostream* os_ = nullptr;  // file_ or the caller's stream
  std::size_t seq_ = 0;
};

}  // namespace graphene::support
