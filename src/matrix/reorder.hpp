// Matrix reordering and spectral utilities.
//
// The paper notes that conventional architectures reorder matrices for cache
// locality while the IPU reorders for halo-exchange structure (§IV). This
// module provides the conventional side for comparison and for host
// baselines: Reverse Cuthill-McKee bandwidth reduction, plus simple spectral
// estimates (power iteration) used to report condition-number regimes of the
// synthetic stand-ins.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"

namespace graphene::matrix {

/// Reverse Cuthill-McKee ordering of a structurally symmetric matrix.
/// Returns perm with perm[old] = new; apply with CsrMatrix::permuted.
/// Components are traversed from pseudo-peripheral low-degree seeds.
std::vector<std::size_t> reverseCuthillMcKee(const CsrMatrix& a);

/// Largest eigenvalue estimate of a symmetric matrix by power iteration.
double estimateLargestEigenvalue(const CsrMatrix& a,
                                 std::size_t iterations = 60,
                                 std::uint64_t seed = 1);

/// Smallest eigenvalue estimate of an SPD matrix via inverse power iteration
/// with conjugate-gradient inner solves.
double estimateSmallestEigenvalue(const CsrMatrix& a,
                                  std::size_t iterations = 30,
                                  std::uint64_t seed = 2);

/// 2-norm condition number estimate λmax / λmin for SPD matrices.
double estimateConditionNumber(const CsrMatrix& a);

}  // namespace graphene::matrix
