// Serving solves: the SolverService quickstart / traffic generator.
//
// Where SolveSession answers one solve, SolverService answers a *stream* of
// them: worker threads, warm pipelines pooled across requests (the plan
// cache), per-job deadlines, bounded retries with graceful degradation,
// admission control and a per-matrix circuit breaker. Every submitted job
// ends in a typed verdict — the service never crashes, hangs or silently
// drops a request.
//
// Build & run:  ./example_solver_service [--jobs N] [--workers N]
//                                        [--deadline-mcycles N]
//                                        [--metrics-text] [--trace out.json]
//                                        [--serve PORT] [--hold SECONDS]
//                                        [--port-file PATH] [--poison N]
//                                        [--flight-dir DIR] [--log PATH]
//   Submits an open-loop burst of Poisson solves (a mix of two sparsity
//   structures, so the plan cache gets both cold builds and warm leases),
//   waits for every verdict, and prints a per-job summary plus the service
//   counters. --metrics-text prints the Prometheus exposition a scraper
//   would see; --trace writes the merged cross-job timeline as Chrome
//   trace_event JSON (one process lane per job id).
//
//   Live telemetry: --serve PORT starts the embedded HTTP listener
//   (PORT 0 binds an ephemeral port; --port-file writes the bound port for
//   scripts) and --hold keeps the service up after the burst so `curl` or
//   graphene-top can watch it. --poison N adds N fault-injected jobs that
//   exhaust their retries — exercising the failure counters, and, with
//   --flight-dir, the automatic black-box dumps. --log appends the JSONL
//   structured event stream.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "graphene.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  std::size_t jobs = 8;
  std::size_t poison = 0;
  std::size_t workers = 2;
  double deadlineMcycles = 500;
  bool metricsText = false;
  int servePort = -1;
  double holdSeconds = 0;
  std::string tracePath, portFile, flightDir, logPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--poison") == 0 && i + 1 < argc) {
      poison = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-mcycles") == 0 &&
               i + 1 < argc) {
      deadlineMcycles = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-text") == 0) {
      metricsText = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      servePort = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hold") == 0 && i + 1 < argc) {
      holdSeconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      portFile = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-dir") == 0 && i + 1 < argc) {
      flightDir = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      logPath = argv[++i];
    }
  }

  solver::ServiceOptions options{.workers = workers, .tiles = 16};
  options.metricsPort = servePort;
  options.flightDir = flightDir;
  options.logPath = logPath;
  solver::SolverService service(std::move(options));

  if (servePort >= 0) {
    std::printf("serving http://127.0.0.1:%u "
                "(GET /metrics /healthz /jobs /flight/<id>)\n",
                static_cast<unsigned>(service.httpPort()));
    if (!portFile.empty()) {
      std::ofstream pf(portFile);
      pf << service.httpPort() << "\n";
    }
    std::fflush(stdout);
  }

  const matrix::GeneratedMatrix structures[] = {matrix::poisson2d5(12, 12),
                                                matrix::poisson3d7(6, 6, 6)};
  const json::Value config = json::parse(
      R"({"type": "cg", "tolerance": 1e-6, "maxIterations": 300})");
  // A fault plan that flips a residual bit on every superstep: the retry
  // ladder (and the degraded final attempt) cannot save such a job, so it
  // ends failed — feeding the failure histograms and the flight dumps.
  const json::Value poisonPlan = json::parse(R"({"seed": 7, "faults": [
    {"type": "bitflip", "tensor": "resid", "bit": 30,
     "probability": 1.0, "count": 100000, "skip": 0}]})");

  // Open loop: submit everything up front, then collect the verdicts.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < jobs + poison; ++i) {
    const auto& g = structures[i % 2];
    std::vector<double> rhs(g.matrix.rows(), 1.0);
    solver::SolveJobOptions jobOptions;
    jobOptions.deadlineCycles = deadlineMcycles * 1e6;
    if (i >= jobs) jobOptions.faultPlan = poisonPlan;
    ids.push_back(service.submit(g, config, std::move(rhs),
                                 std::move(jobOptions)));
  }

  std::printf("job  status             attempts  warm  Mcycles\n");
  for (std::size_t id : ids) {
    const solver::JobResult r = service.wait(id);
    std::printf("%3zu  %-17s  %8zu  %4s  %7.2f\n", r.jobId,
                r.typedError ? "typed-error" : solver::toString(r.solve.status),
                r.attempts, r.planCacheHit ? "yes" : "no",
                r.simCycles / 1e6);
  }

  const auto stats = service.planCacheStats();
  std::printf("\nplan cache: %zu hits, %zu misses, %zu pooled pipelines\n",
              stats.hits, stats.misses, service.pooledPipelines());

  if (metricsText) std::printf("\n%s", service.metricsText().c_str());
  if (!tracePath.empty()) {
    std::ofstream out(tracePath);
    out << support::traceToChromeJson(service.traceSnapshot()).dump(2)
        << "\n";
    std::printf("wrote job timeline to %s\n", tracePath.c_str());
  }

  if (holdSeconds > 0) {
    std::printf("holding for %.0f s — scrape http://127.0.0.1:%u/metrics\n",
                holdSeconds, static_cast<unsigned>(service.httpPort()));
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(holdSeconds));
  }

  service.shutdown();
  return 0;
}
