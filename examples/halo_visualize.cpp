// Visualises the §IV reordering strategy on the paper's own example: an
// 8x8 mesh partitioned across four tiles (Figure 3).
//
// Prints the mesh with cell classifications, the separator regions with
// their involved-tile sets, the resulting per-tile memory layout of a
// solution vector, and the blockwise exchange plan.
//
// Usage: ./example_halo_visualize [meshSide=8] [tiles=4]
#include <cstdio>
#include <cstdlib>

#include "matrix/generators.hpp"
#include "partition/halo.hpp"
#include "partition/partition.hpp"

using namespace graphene;
using namespace graphene::partition;

int main(int argc, char** argv) {
  const std::size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  auto mesh = matrix::poisson2d5(side, side);
  auto layout = buildLayout(mesh.matrix,
                            partitionGrid(side, side, 1, tiles), tiles);

  std::printf("%zux%zu mesh on %zu tiles — cell classification\n", side, side,
              tiles);
  std::printf("(digit = owner tile; lowercase = interior, UPPERCASE = "
              "separator)\n\n");
  for (std::size_t y = side; y-- > 0;) {
    for (std::size_t x = 0; x < side; ++x) {
      const std::size_t cell = y * side + x;
      const std::size_t owner = layout.rowToTile[cell];
      const CellKind kind = layout.kindOf(cell, owner);
      char c = static_cast<char>((kind == CellKind::Separator ? 'A' : 'a') +
                                 static_cast<char>(owner % 26));
      std::printf(" %c", c);
    }
    std::printf("\n");
  }

  std::printf("\nseparator regions (grouped by involved-tile set):\n");
  for (const Region& r : layout.regions) {
    std::printf("  region %2zu: owner tile %zu, %2zu cells, consumers {",
                r.id, r.ownerTile, r.cells.size());
    for (std::size_t i = 0; i < r.consumerTiles.size(); ++i) {
      std::printf("%s%zu", i ? ", " : "", r.consumerTiles[i]);
    }
    std::printf("}%s\n", r.consumerTiles.size() > 1 ? "  <- broadcast" : "");
  }

  std::printf("\nper-tile memory layout of a solution vector (Fig. 3b):\n");
  for (const TileLayout& tl : layout.tiles) {
    std::printf("  tile %zu: [ %zu interior | ", tl.tile, tl.numInterior);
    for (const auto& ref : tl.separatorRegions) {
      std::printf("sep r%zu(%zu) ", ref.regionId,
                  layout.regions[ref.regionId].cells.size());
    }
    std::printf("| ");
    for (const auto& ref : tl.haloRegions) {
      std::printf("halo r%zu(%zu) ", ref.regionId,
                  layout.regions[ref.regionId].cells.size());
    }
    std::printf("]  (%zu owned + %zu halo)\n", tl.numOwned, tl.numHalo);
  }

  std::printf("\nblockwise exchange plan (%zu transfers vs %zu per-cell):\n",
              layout.transfers.size(), naivePerCellTransfers(layout).size());
  for (const HaloTransfer& tr : layout.transfers) {
    std::printf("  region %2zu: tile %zu [%zu..%zu) -> ", tr.regionId,
                tr.srcTile, tr.srcLocalOffset, tr.srcLocalOffset + tr.count);
    for (std::size_t i = 0; i < tr.dsts.size(); ++i) {
      std::printf("%stile %zu@%zu", i ? ", " : "", tr.dsts[i].tile,
                  tr.dsts[i].localOffset);
    }
    std::printf("%s\n", tr.dsts.size() > 1 ? "  (single broadcast)" : "");
  }
  return 0;
}
