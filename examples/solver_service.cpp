// Serving solves: the SolverService quickstart / traffic generator.
//
// Where SolveSession answers one solve, SolverService answers a *stream* of
// them: worker threads, warm pipelines pooled across requests (the plan
// cache), per-job deadlines, bounded retries with graceful degradation,
// admission control and a per-matrix circuit breaker. Every submitted job
// ends in a typed verdict — the service never crashes, hangs or silently
// drops a request.
//
// Build & run:  ./example_solver_service [--jobs N] [--workers N]
//                                        [--deadline-mcycles N]
//                                        [--metrics-text] [--trace out.json]
//   Submits an open-loop burst of Poisson solves (a mix of two sparsity
//   structures, so the plan cache gets both cold builds and warm leases),
//   waits for every verdict, and prints a per-job summary plus the service
//   counters. --metrics-text prints the Prometheus exposition a scraper
//   would see; --trace writes the merged cross-job timeline as Chrome
//   trace_event JSON (one process lane per job id).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graphene.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  std::size_t jobs = 8;
  std::size_t workers = 2;
  double deadlineMcycles = 500;
  bool metricsText = false;
  std::string tracePath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-mcycles") == 0 &&
               i + 1 < argc) {
      deadlineMcycles = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-text") == 0) {
      metricsText = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    }
  }

  solver::SolverService service({.workers = workers, .tiles = 16});

  const matrix::GeneratedMatrix structures[] = {matrix::poisson2d5(12, 12),
                                                matrix::poisson3d7(6, 6, 6)};
  const json::Value config = json::parse(
      R"({"type": "cg", "tolerance": 1e-6, "maxIterations": 300})");

  // Open loop: submit everything up front, then collect the verdicts.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < jobs; ++i) {
    const auto& g = structures[i % 2];
    std::vector<double> rhs(g.matrix.rows(), 1.0);
    ids.push_back(service.submit(
        g, config, std::move(rhs),
        {.deadlineCycles = deadlineMcycles * 1e6}));
  }

  std::printf("job  status             attempts  warm  Mcycles\n");
  for (std::size_t id : ids) {
    const solver::JobResult r = service.wait(id);
    std::printf("%3zu  %-17s  %8zu  %4s  %7.2f\n", r.jobId,
                r.typedError ? "typed-error" : solver::toString(r.solve.status),
                r.attempts, r.planCacheHit ? "yes" : "no",
                r.simCycles / 1e6);
  }

  const auto stats = service.planCacheStats();
  std::printf("\nplan cache: %zu hits, %zu misses, %zu pooled pipelines\n",
              stats.hits, stats.misses, service.pooledPipelines());

  if (metricsText) std::printf("\n%s", service.metricsText().c_str());
  if (!tracePath.empty()) {
    std::ofstream out(tracePath);
    out << support::traceToChromeJson(service.traceSnapshot()).dump(2)
        << "\n";
    std::printf("wrote job timeline to %s\n", tracePath.c_str());
  }

  service.shutdown();
  return 0;
}
