// SolverService — a robust, concurrent front-end over SolveSession.
//
// SolveSession makes one solve easy; a long-running process answering solve
// requests needs the machinery *around* the solves: worker threads, warm
// pipelines shared across requests, deadlines that actually stop a runaway
// solve, bounded retries for transient faults, admission control so the
// simulated SRAM pool is not oversubscribed, and a circuit breaker so a
// matrix that keeps killing solves stops consuming the budget of everyone
// else. The service extends the repo's converge-or-fail-typed invariant to
// serving: every submitted job ends in a SolveStatus verdict (the service
// verdicts DeadlineExceeded / Cancelled / AdmissionRejected / CircuitOpen
// included) or a typed error message — never a crash, hang or silent drop.
//
//   SolverService service({.workers = 4});
//   auto id = service.submit(matrix, config, rhs, {.deadlineCycles = 5e8});
//   JobResult r = service.wait(id);   // r.solve.status, r.x, r.planCacheHit
//
// The pieces:
//   * Engine pooling / plan cache (plan_cache.hpp): pipelines are cached by
//     (structure, solver-config) fingerprint. A repeat solve leases a warm
//     pipeline — partitioning and program emission are skipped; when only
//     the coefficients changed they are refreshed in place
//     (updateMatrixValues) unless the chain bakes values into factors.
//     Entries are invalidated when a solve comes back with blacklisted
//     tiles (the cached program no longer matches the machine).
//   * Deadlines & cancellation: per-job budgets in simulated cycles
//     (deterministic) and/or wall seconds, enforced through the engine's
//     cooperative cancel check — overshoot is bounded by one superstep.
//   * Retry with backoff: transient verdicts (NanDetected, Breakdown,
//     Diverged, CorruptionDetected) and typed errors are retried up to
//     retry.maxRetries times with exponential backoff + deterministic
//     jitter.
//   * Graceful degradation: the final retry may run a degraded
//     configuration — relaxed tolerance, CG swapped for the more robust
//     BiCGStab, per-cell halo batching — before the job fails hard.
//   * Admission control: jobs whose SRAM estimate can never fit are
//     rejected at submit; jobs that fit but not *now* queue until running
//     charge frees up. Queue depth is bounded.
//   * Circuit breaker: per structure fingerprint; after
//     breaker.failuresToOpen consecutive hard failures the matrix is
//     quarantined for breaker.openForJobs submissions, then exactly one
//     probe job is let through (half-open) — others are rejected until the
//     probe's verdict lands.
//
// Observability: service counters (service.jobs.*, service.plan_cache.*)
// and latency/iteration histograms (service.latency.*, service.retries,
// service.queue_wait_ms) live in a thread-safe MetricsRegistry exported by
// metricsToPrometheusText; job lifecycle events (accepted/start/retry/done,
// stamped with the stable job id) land in the service TraceSink for a
// merged cross-job timeline, in the JSONL structured log (logPath) and in
// the per-job flight recorder — all under the same names, drawn from the
// job_events table below. With metricsPort >= 0 an embedded HTTP listener
// serves GET /metrics, /healthz, /jobs and /flight/<id> live, race-free
// against in-flight solves; failed jobs dump their flight record as a
// JSONL black-box artifact into flightDir automatically.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "matrix/generators.hpp"
#include "solver/flight_recorder.hpp"
#include "solver/plan_cache.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"
#include "support/http_server.hpp"
#include "support/json.hpp"
#include "support/log_sink.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

/// One job-lifecycle event: the stable name stamped on the TraceSink
/// timeline / structured log, paired with the metrics counter the event
/// bumps. This table is the single source of truth for the names — the
/// three views of an incident (trace timeline, JSONL log, Prometheus
/// counters) always join on them. `trace == nullptr` marks counter-only
/// events (no timeline line); `counter == nullptr` marks trace-only ones.
struct JobEvent {
  const char* trace;    // TraceSink / LogSink event name
  const char* counter;  // MetricsRegistry counter bumped by 1
};

namespace job_events {
inline constexpr JobEvent kAccepted{"job:accepted", "service.jobs.accepted"};
inline constexpr JobEvent kRejected{"job:rejected", "service.jobs.rejected"};
inline constexpr JobEvent kCircuitOpen{"job:circuit-open",
                                       "service.jobs.rejected"};
inline constexpr JobEvent kCircuitOpened{"job:circuit-opened", nullptr};
inline constexpr JobEvent kStart{"job:start", nullptr};
inline constexpr JobEvent kDone{"job:done", nullptr};
inline constexpr JobEvent kCancelRequested{"job:cancel-requested", nullptr};
inline constexpr JobEvent kRetry{"job:retry", "service.jobs.retried"};
inline constexpr JobEvent kDegradedAttempt{"job:degraded", nullptr};
inline constexpr JobEvent kBuildFailed{"job:build-failed", nullptr};
inline constexpr JobEvent kCacheRefreshFailed{"job:cache-refresh-failed",
                                              "service.plan_cache.invalidations"};
inline constexpr JobEvent kInternalError{"job:internal-error",
                                         "service.jobs.failed"};
inline constexpr JobEvent kTopologyShrink{"job:topology-shrink",
                                          "service.topology.shrinks"};
inline constexpr JobEvent kFlightDumped{"job:flight-dumped", nullptr};
// Counter-only terminal/bookkeeping events.
inline constexpr JobEvent kCancelled{nullptr, "service.jobs.cancelled"};
inline constexpr JobEvent kDeadlineExceeded{nullptr,
                                            "service.jobs.deadline_exceeded"};
inline constexpr JobEvent kCompleted{nullptr, "service.jobs.completed"};
inline constexpr JobEvent kFailed{nullptr, "service.jobs.failed"};
inline constexpr JobEvent kDegraded{nullptr, "service.jobs.degraded"};
inline constexpr JobEvent kPlanHit{nullptr, "service.plan_cache.hits"};
inline constexpr JobEvent kPlanMiss{nullptr, "service.plan_cache.misses"};
inline constexpr JobEvent kPlanInvalidated{nullptr,
                                           "service.plan_cache.invalidations"};
}  // namespace job_events

struct RetryPolicy {
  /// Re-attempts after the first try (0 = fail on first verdict).
  std::size_t maxRetries = 2;
  /// Exponential backoff between attempts: min(base * factor^i, max) wall
  /// milliseconds, plus up to `jitter` of itself as deterministic jitter.
  double backoffBaseMs = 1.0;
  double backoffFactor = 2.0;  // must be >= 1
  double backoffMaxMs = 20.0;
  double jitter = 0.1;  // fraction of the backoff, in [0, 1)
};

struct AdmissionPolicy {
  /// Jobs allowed to wait in the queue; a submit beyond this is rejected
  /// with AdmissionRejected instead of growing the backlog unboundedly.
  std::size_t maxQueueDepth = 64;
  /// Total simulated-SRAM budget concurrently running jobs may hold
  /// (estimate: peak per-tile ledger bytes × tiles; first-contact jobs use
  /// a storage-based estimate). 0 = no SRAM gating.
  std::size_t sramPoolBytes = 0;
  /// Usable fraction of the pool, in (0, 1]. A job estimated above
  /// headroom × pool can never run and is rejected at submit; one that fits
  /// but not right now queues until running jobs release their charge.
  double headroom = 0.9;
};

struct CircuitBreakerPolicy {
  /// Consecutive hard failures (transient verdicts / typed errors, retries
  /// exhausted) of one structure fingerprint before its circuit opens.
  std::size_t failuresToOpen = 3;
  /// Submissions rejected with CircuitOpen while open; the next job after
  /// that runs as the single half-open probe (success closes the circuit,
  /// failure re-opens it for another openForJobs submissions). While the
  /// probe is in flight, further jobs for the structure are rejected with
  /// CircuitOpen — exactly one job tests the water at a time.
  std::size_t openForJobs = 8;
};

struct DegradationPolicy {
  /// Master switch for the degraded final attempt.
  bool enabled = true;
  /// Multiplies every positive solver tolerance on the degraded attempt
  /// (>= 1; a relaxed target is better than no answer).
  double toleranceRelaxFactor = 10.0;
  /// Swap a top-level CG for BiCGStab on the degraded attempt (more robust
  /// to the nonsymmetric perturbations faults introduce).
  bool cgToBicgstab = true;
  /// Degraded attempt exchanges halos per cell — many small transfers
  /// instead of few blockwise ones, so a degraded link or flaky exchange
  /// path carries less payload per transfer.
  bool perCellHalo = true;
};

struct ServiceOptions {
  std::size_t workers = 2;
  /// Simulated-IPU geometry of every pipeline the service builds.
  std::size_t tiles = 32;
  /// Explicit machine shape (chips x tiles, link model) for every pipeline;
  /// overrides `tiles` and GRAPHENE_TEST_POD. JSON spelling:
  ///   "topology": {"ipus": 4, "tilesPerIpu": 16}
  std::optional<ipu::Topology> topology = std::nullopt;
  /// Host threads per engine (0 = Engine's default resolution). Workers
  /// multiply this — keep workers × hostThreads near the core count.
  std::size_t hostThreads = 0;
  /// Warm pipelines kept across jobs (0 disables the plan cache).
  std::size_t planCacheCapacity = 8;
  /// Default per-job deadline in simulated cycles (0 = none). Deterministic:
  /// the same job hits it at the same superstep on every run.
  double defaultDeadlineCycles = 0;
  /// Default per-job wall-clock deadline in seconds (0 = none).
  double defaultDeadlineSeconds = 0;
  /// Ring capacity of each pipeline's TraceSink; 0 disables engine-level
  /// tracing (the service's own job timeline is always on).
  std::size_t traceCapacity = support::TraceSink::kDefaultCapacity;
  /// Terminal job results retained for wait(): once more than this many
  /// jobs are terminal, the oldest results (including their solution
  /// vectors) are released in completion order, bounding the service's
  /// memory at steady state. wait() on a released id is an error naming
  /// this knob. 0 = retain everything (a long-running server will grow
  /// without bound).
  std::size_t maxRetainedResults = 1024;
  /// TCP port for the embedded HTTP telemetry listener (127.0.0.1 only):
  /// GET /metrics (Prometheus text), /healthz, /jobs, /flight/<id>.
  /// -1 disables it; 0 binds an ephemeral port (read it back via
  /// httpPort()).
  int metricsPort = -1;
  /// Sealed flight records retained for the last N terminal jobs
  /// (GET /flight/<id>); 0 disables retention (failed jobs still dump
  /// when flightDir is set).
  std::size_t flightRecorderJobs = 16;
  /// Per-job flight-recorder event ring capacity.
  std::size_t flightEventCapacity = 256;
  /// Directory for automatic black-box dumps (flight-job<id>.jsonl) of
  /// failed jobs; "" disables dumping. The directory must exist.
  std::string flightDir;
  /// Path of the JSONL structured event log (appended); "" disables it.
  std::string logPath;
  RetryPolicy retry;
  AdmissionPolicy admission;
  CircuitBreakerPolicy breaker;
  DegradationPolicy degradation;
};

/// Builds ServiceOptions from JSON, strictly validated in the solver-config
/// style: unknown keys and wrong JSON types are errors naming the offending
/// key and listing the valid ones; range violations name the key and the
/// valid range. Accepted shape (all keys optional):
///   {"workers": 4, "tiles": 32, "hostThreads": 0, "planCacheCapacity": 8,
///    "defaultDeadlineCycles": 0, "defaultDeadlineSeconds": 0,
///    "traceCapacity": 65536, "maxRetainedResults": 1024,
///    "metricsPort": -1, "flightRecorderJobs": 16,
///    "flightEventCapacity": 256, "flightDir": "", "logPath": "",
///    "retry": {"maxRetries": 2, "backoffBaseMs": 1, "backoffFactor": 2,
///              "backoffMaxMs": 20, "jitter": 0.1},
///    "admission": {"maxQueueDepth": 64, "sramPoolBytes": 0,
///                  "headroom": 0.9},
///    "breaker": {"failuresToOpen": 3, "openForJobs": 8},
///    "degradation": {"enabled": true, "toleranceRelaxFactor": 10,
///                    "cgToBicgstab": true, "perCellHalo": true}}
ServiceOptions serviceOptionsFromJson(const json::Value& config);

struct SolveJobOptions {
  /// Simulated-cycle deadline; < 0 uses the service default, 0 disables.
  double deadlineCycles = -1;
  /// Wall-clock deadline in seconds; < 0 uses the service default,
  /// 0 disables.
  double deadlineSeconds = -1;
  /// Optional fault-injection plan for this job (chaos soaks).
  std::optional<json::Value> faultPlan;
};

/// The terminal outcome of a job. Exactly one of these is true for every
/// submitted job: solve.status is a verdict, or typedError is set with the
/// error text in message. Both are first-class, testable outcomes.
struct JobResult {
  std::size_t jobId = SIZE_MAX;
  SolveResult solve;     // status NotRun when typedError is set
  std::vector<double> x;
  /// A graphene::Error escaped the final attempt (e.g. hard-fault recovery
  /// budget exhausted) — an allowed, *typed* failure mode.
  bool typedError = false;
  std::string message;   // error text / rejection reason / degradation note
  std::size_t attempts = 0;    // solve attempts actually executed
  bool degraded = false;       // final result came from a degraded config
  bool planCacheHit = false;   // last attempt leased a warm pipeline
  double simCycles = 0;        // simulated cycles across all attempts
  double wallSeconds = 0;      // wall time from accept to terminal verdict
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});
  ~SolverService();  // shutdown()s if the caller did not
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues a solve job. Returns its stable job id immediately; the job
  /// is already terminal (AdmissionRejected) when admission control refused
  /// it — wait() still returns its typed result. Submitting after
  /// shutdown() is an error.
  std::size_t submit(const matrix::GeneratedMatrix& m,
                     const json::Value& solverConfig,
                     std::vector<double> rhs, SolveJobOptions jobOptions = {});

  /// Blocks until the job is terminal and returns its result. Each job's
  /// result may be waited on from any thread, any number of times, while it
  /// is retained — the service keeps the last maxRetainedResults terminal
  /// results and releases older ones (waiting on a released id is an
  /// error).
  JobResult wait(std::size_t jobId);

  /// submit + wait.
  JobResult solve(const matrix::GeneratedMatrix& m,
                  const json::Value& solverConfig, std::vector<double> rhs,
                  SolveJobOptions jobOptions = {});

  /// Requests cooperative cancellation. A queued job is cancelled before it
  /// starts; a running one stops after its current superstep. Returns false
  /// when the job is unknown or already terminal.
  bool cancel(std::size_t jobId);

  /// Drains the queue, joins the workers and drops the pooled pipelines.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Thread-safe service counters (service.jobs.*, service.plan_cache.*).
  const support::MetricsRegistry& metrics() const { return metrics_; }
  /// Prometheus text exposition of metrics() — safe to call concurrently
  /// with running jobs.
  std::string metricsText() const {
    return support::metricsToPrometheusText(metrics_);
  }

  /// Consistent copy of the service's job-lifecycle timeline (events are
  /// stamped with job ids; see recordJobEvent).
  support::TraceSink traceSnapshot() const;

  /// Port of the embedded HTTP listener (0 when metricsPort is -1). With
  /// metricsPort = 0 this is the ephemeral port the kernel assigned.
  std::uint16_t httpPort() const { return http_.port(); }
  /// The /healthz document: topology fingerprint and alive shape, queue
  /// depth, breaker states, job tallies. Safe against in-flight solves.
  json::Value healthJson() const;
  /// The /jobs document: every retained job (queued, running, terminal)
  /// with its phase and verdict, ascending by id.
  json::Value jobsJson() const;
  /// Per-job black boxes (GET /flight/<id> serves flightRecordToJsonl of
  /// these records).
  const FlightRecorder& flightRecorder() const { return flight_; }
  /// The structured JSONL event log (nullptr when logPath is "").
  support::LogSink* logSink() const { return log_.get(); }

  PlanCache::Stats planCacheStats() const { return cache_.stats(); }
  /// Warm pipelines currently pooled (0 after shutdown()).
  std::size_t pooledPipelines() const { return cache_.size(); }
  const ServiceOptions& options() const { return options_; }

  /// The machine shape pipelines are currently built for: the constructor's
  /// resolved topology (explicit `topology` > GRAPHENE_TEST_POD > plain
  /// `tiles`), minus any chips retired by chip-dead verdicts since. Its
  /// deadIpus() / fingerprint() expose the elastic-shrink state.
  ipu::Topology resolvedTopology() const;

 private:
  struct Job {
    std::size_t id = SIZE_MAX;
    matrix::GeneratedMatrix m;
    json::Value solverConfig;
    std::vector<double> rhs;
    SolveJobOptions jobOptions;
    std::size_t sramCharge = 0;
    std::chrono::steady_clock::time_point acceptedAt;
  };

  struct JobState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::atomic<bool> cancelRequested{false};
    JobResult result;
    /// Where the job is in its lifecycle ("queued" / "running" /
    /// "done"), for /jobs. Guarded by mu.
    const char* phase = "queued";
    /// Identity fields for the flight record, written once in submit()
    /// (before the job is visible to workers) and read at seal time.
    std::uint64_t structureFp = 0;
    std::uint64_t configFp = 0;
    std::uint64_t topologyFp = 0;
    std::string solverConfigDump;
    std::chrono::steady_clock::time_point acceptedAt;
  };

  struct Breaker {
    std::size_t consecutiveFailures = 0;
    std::size_t openRemaining = 0;  // submissions still quarantined
    bool halfOpen = false;          // next job runs as the probe
    bool probeInFlight = false;     // the probe is running: admit no others
  };

  void workerLoop();
  JobResult runJob(Job& job, const std::shared_ptr<JobState>& state);
  void finishJob(const std::shared_ptr<JobState>& state, JobResult result);
  std::size_t estimateSramCharge(const matrix::GeneratedMatrix& m,
                                 std::uint64_t structureHash);
  /// The one emission point for lifecycle events: bumps the event's
  /// counter, stamps its trace line (service timeline + the job's flight
  /// ring) and appends the structured-log line — all under the same name
  /// from the job_events table.
  void recordJob(const JobEvent& event, std::size_t jobId,
                 const std::string& detail = "");
  void observeTerminal(const JobResult& result);
  support::HttpServer::Response handleHttp(const std::string& path);

  ServiceOptions options_;
  /// Derived in the ctor with the topology resolved eagerly; mutated (under
  /// mu_) only by the chip-dead shrink path in runJob. Workers snapshot it
  /// per attempt.
  SessionOptions sessionOptions_;
  PlanCache cache_;
  support::MetricsRegistry metrics_;

  mutable std::mutex traceMu_;
  support::TraceSink trace_;
  std::uint64_t traceSeq_ = 0;

  FlightRecorder flight_;
  std::unique_ptr<support::LogSink> log_;
  support::HttpServer http_;

  mutable std::mutex mu_;  // queue, job table, breakers, SRAM accounting,
                           // sessionOptions_ (topology shrink)
  std::condition_variable queueCv_;    // workers wait for jobs
  std::condition_variable chargeCv_;   // workers wait for SRAM charge
  std::deque<Job> queue_;
  std::map<std::size_t, std::shared_ptr<JobState>> jobs_;
  std::deque<std::size_t> doneIds_;  // terminal jobs in completion order
  std::map<std::uint64_t, Breaker> breakers_;
  std::map<std::uint64_t, std::size_t> knownSramPeak_;  // by structure hash
  std::size_t runningCharge_ = 0;
  std::size_t nextJobId_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace graphene::solver
