// Level-Set Scheduling (paper §V-A; Anderson & Saad, Saltz).
//
// Sequential solvers like Gauss-Seidel and the (D)ILU substitutions update
// row i using already-updated values of earlier rows. The dependency DAG
// (nodes = rows, edges = strictly-triangular entries) is clustered into
// levels: all rows in a level depend only on previous levels and can be
// processed concurrently by the tile's six worker threads. Processing levels
// in order reproduces the sequential result bit-for-bit, hence the same
// convergence rate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/csr.hpp"

namespace graphene::levelset {

struct LevelSchedule {
  /// Rows sorted by level (ascending row id within each level).
  std::vector<std::int32_t> order;
  /// Level l spans order[levelPtr[l] .. levelPtr[l+1]).
  std::vector<std::int32_t> levelPtr;

  std::size_t numLevels() const {
    return levelPtr.empty() ? 0 : levelPtr.size() - 1;
  }

  std::size_t numRows() const { return order.size(); }

  /// Average rows per level — the parallelism the schedule exposes. The
  /// paper observes this usually saturates the 6 workers of a tile but
  /// would starve the thousands of threads of a GPU.
  double avgParallelism() const {
    return numLevels() == 0 ? 0.0
                            : static_cast<double>(numRows()) /
                                  static_cast<double>(numLevels());
  }

  std::size_t maxLevelSize() const {
    std::size_t m = 0;
    for (std::size_t l = 0; l + 1 < levelPtr.size(); ++l) {
      m = std::max(m, static_cast<std::size_t>(levelPtr[l + 1] - levelPtr[l]));
    }
    return m;
  }
};

/// Builds levels for a dependency structure given in CSR form over `n` local
/// rows. For `lower == true` the dependencies of row r are its entries with
/// column < r (forward substitution order); otherwise entries with column > r
/// (backward substitution order). Entries outside [0, n) are ignored, which
/// lets callers pass halo-referencing structures directly.
LevelSchedule buildLevels(std::span<const std::size_t> rowPtr,
                          std::span<const std::int32_t> colIdx, std::size_t n,
                          bool lower);

/// Forward (lower-triangular) levels of a matrix.
LevelSchedule buildForwardLevels(const matrix::CsrMatrix& a);

/// Backward (upper-triangular) levels of a matrix.
LevelSchedule buildBackwardLevels(const matrix::CsrMatrix& a);

}  // namespace graphene::levelset
