// Host-parallel tile execution must be invisible to the simulated machine.
//
// The engine may simulate the tiles of a compute superstep on any number of
// host threads; tiles are independent between BSP syncs, so every observable
// — tensor bytes, cycle profile, superstep counts, fault logs — must be
// bit-identical to the serial schedule. These tests run the same solves at
// numHostThreads 1 and 8 (through full CG RepeatWhile loops with host
// convergence callbacks, with and without an attached fault plan) and assert
// exactly that. The compiled-codelet fast paths get the same treatment:
// bulk span kernels vs the generic statement walk must agree bit-for-bit in
// both results and charged cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "dsl/interpreter.hpp"
#include "graph/engine.hpp"
#include "ipu/fault.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Tensor;

namespace {

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

struct SolveObservables {
  std::vector<double> x;
  ipu::Profile profile;
};

/// Builds a fresh graph for `solverJson` on A x = b and executes it with the
/// given host thread count (fresh context per run: host callbacks close over
/// per-solver state, so engines must not share a program).
SolveObservables runSolve(const matrix::GeneratedMatrix& g, std::size_t tiles,
                          const std::string& solverJson,
                          std::size_t hostThreads, ipu::FaultPlan* plan,
                          bool fusion = true) {
  Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout =
      partition::Partitioner(ipu::Topology::singleIpu(tiles)).layout(g);
  DistMatrix A(g.matrix, std::move(layout));
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor b = A.makeVector(DType::Float32, "b");
  auto solver = makeSolverFromString(solverJson);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph(), hostThreads);
  EXPECT_EQ(engine.numHostThreads(), hostThreads);
  engine.setSuperstepFusion(fusion);
  if (plan != nullptr) {
    plan->reset();
    engine.setFaultPlan(plan);
  }
  A.upload(engine);
  auto bHost = randomVector(g.matrix.rows(), 42);
  for (double& v : bHost) v = static_cast<double>(static_cast<float>(v));
  A.writeVector(engine, b, bHost);
  engine.run(ctx.program());

  SolveObservables out;
  out.x = A.readVector(engine, x);
  out.profile = engine.profile();
  return out;
}

/// Field-by-field exact comparison (doubles compared with ==: the runs must
/// charge literally the same cycles, not merely close ones).
void expectProfilesIdentical(const ipu::Profile& a, const ipu::Profile& b) {
  EXPECT_EQ(a.computeCycles.size(), b.computeCycles.size());
  for (const auto& [category, cycles] : a.computeCycles) {
    auto it = b.computeCycles.find(category);
    ASSERT_NE(it, b.computeCycles.end()) << "missing category " << category;
    EXPECT_EQ(cycles, it->second) << "cycles differ in " << category;
  }
  EXPECT_EQ(a.exchangeCycles, b.exchangeCycles);
  EXPECT_EQ(a.syncCycles, b.syncCycles);
  EXPECT_EQ(a.computeSupersteps, b.computeSupersteps);
  EXPECT_EQ(a.exchangeSupersteps, b.exchangeSupersteps);
  EXPECT_EQ(a.exchangeInstructions, b.exchangeInstructions);
  EXPECT_EQ(a.exchangedBytes, b.exchangedBytes);
  EXPECT_EQ(a.verticesExecuted, b.verticesExecuted);
  ASSERT_EQ(a.faultEvents.size(), b.faultEvents.size());
  for (std::size_t i = 0; i < a.faultEvents.size(); ++i) {
    EXPECT_TRUE(a.faultEvents[i] == b.faultEvents[i])
        << "fault event " << i << " differs: " << a.faultEvents[i].kind
        << " vs " << b.faultEvents[i].kind;
  }
}

const char* kCgJson = R"({
  "type": "cg", "maxIterations": 200, "tolerance": 1e-6,
  "preconditioner": {"type": "jacobi", "iterations": 2}
})";

}  // namespace

TEST(ParallelEngine, BitIdenticalToSerial) {
  auto g = matrix::poisson2d5(24, 24);
  SolveObservables serial = runSolve(g, 8, kCgJson, 1, nullptr);
  SolveObservables parallel = runSolve(g, 8, kCgJson, 8, nullptr);

  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_EQ(serial.x[i], parallel.x[i]) << "element " << i;
  }
  expectProfilesIdentical(serial.profile, parallel.profile);
  EXPECT_GT(serial.profile.verticesExecuted, 0u);
}

TEST(ParallelEngine, BitIdenticalWithFaultPlanAttached) {
  auto g = matrix::poisson2d5(20, 20);
  // A stall (lands on the critical path of one superstep) plus bit flips in
  // the CG residual (forces the self-healing restart path): the recovery
  // timeline itself must not depend on the host schedule.
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 11,
    "faults": [
      {"type": "stall", "tile": 1, "cycles": 5000, "superstep": 7},
      {"type": "bitflip", "tensor": "cg_resid", "bit": 30, "count": 2,
       "skip": 30}
    ]
  })");
  SolveObservables serial = runSolve(g, 8, kCgJson, 1, &plan);
  SolveObservables parallel = runSolve(g, 8, kCgJson, 8, &plan);

  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_EQ(serial.x[i], parallel.x[i]) << "element " << i;
  }
  expectProfilesIdentical(serial.profile, parallel.profile);
  EXPECT_FALSE(serial.profile.faultEvents.empty());
}

TEST(ParallelEngine, FastPathMatchesGenericWalk) {
  auto g = matrix::poisson2d5(16, 16);
  // Force both modes explicitly so the A/B holds even when the whole suite
  // runs under GRAPHENE_NO_FASTPATH=1 (the CI oracle job).
  const bool envFastPaths = dsl::codeletFastPathsEnabled();
  dsl::setCodeletFastPaths(true);
  SolveObservables fast = runSolve(g, 4, kCgJson, 1, nullptr);
  dsl::setCodeletFastPaths(false);
  SolveObservables generic = runSolve(g, 4, kCgJson, 1, nullptr);
  dsl::setCodeletFastPaths(envFastPaths);

  ASSERT_EQ(fast.x.size(), generic.x.size());
  for (std::size_t i = 0; i < fast.x.size(); ++i) {
    EXPECT_EQ(fast.x[i], generic.x[i]) << "element " << i;
  }
  expectProfilesIdentical(fast.profile, generic.profile);
}

TEST(ParallelEngine, MixedPrecisionBitIdenticalToSerial) {
  auto g = matrix::poisson2d5(16, 16);
  const char* mpirJson = R"({
    "type": "mpir", "extendedType": "doubleword",
    "maxRefinements": 4, "tolerance": 1e-12,
    "inner": {"type": "cg", "maxIterations": 10, "tolerance": 0}
  })";
  SolveObservables serial = runSolve(g, 8, mpirJson, 1, nullptr);
  SolveObservables parallel = runSolve(g, 8, mpirJson, 8, nullptr);

  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_EQ(serial.x[i], parallel.x[i]) << "element " << i;
  }
  expectProfilesIdentical(serial.profile, parallel.profile);
}

// ---------------------------------------------------------------------------
// Superstep fusion A/B: fusing adjacent compute supersteps into one host
// dispatch must be invisible — same solution bits, same Profile totals — on
// full solver programs, serial and host-parallel, with and without the
// fallback triggers (fault plan) attached.
// ---------------------------------------------------------------------------

TEST(SuperstepFusion, SolveBitIdenticalFusedVsUnfused) {
  auto g = matrix::poisson2d5(24, 24);
  SolveObservables unfused = runSolve(g, 8, kCgJson, 1, nullptr, false);
  SolveObservables fused = runSolve(g, 8, kCgJson, 1, nullptr, true);

  ASSERT_EQ(unfused.x.size(), fused.x.size());
  for (std::size_t i = 0; i < unfused.x.size(); ++i) {
    EXPECT_EQ(unfused.x[i], fused.x[i]) << "element " << i;
  }
  expectProfilesIdentical(unfused.profile, fused.profile);
}

TEST(SuperstepFusion, ParallelFusedMatchesSerialUnfused) {
  // The strongest cross-check: 8 host threads + fusion vs 1 thread without,
  // in one comparison — any schedule dependence in either layer shows up.
  auto g = matrix::poisson2d5(24, 24);
  SolveObservables serial = runSolve(g, 8, kCgJson, 1, nullptr, false);
  SolveObservables parallel = runSolve(g, 8, kCgJson, 8, nullptr, true);

  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_EQ(serial.x[i], parallel.x[i]) << "element " << i;
  }
  expectProfilesIdentical(serial.profile, parallel.profile);
}

TEST(SuperstepFusion, FaultPlanForcesFallbackAndStaysIdentical) {
  // With a fault plan attached the engine must run fused members as plain
  // supersteps so hooks fire at the exact unfused instants; the observable
  // recovery timeline therefore cannot depend on the fusion setting.
  auto g = matrix::poisson2d5(20, 20);
  auto makePlan = [] {
    return ipu::FaultPlan::fromJsonText(R"({
      "seed": 11,
      "faults": [
        {"type": "stall", "tile": 1, "cycles": 5000, "superstep": 7},
        {"type": "bitflip", "tensor": "cg_resid", "bit": 30, "count": 2,
         "skip": 30}
      ]
    })");
  };
  ipu::FaultPlan planA = makePlan();
  ipu::FaultPlan planB = makePlan();
  SolveObservables unfused = runSolve(g, 8, kCgJson, 1, &planA, false);
  SolveObservables fused = runSolve(g, 8, kCgJson, 8, &planB, true);

  ASSERT_EQ(unfused.x.size(), fused.x.size());
  for (std::size_t i = 0; i < unfused.x.size(); ++i) {
    EXPECT_EQ(unfused.x[i], fused.x[i]) << "element " << i;
  }
  expectProfilesIdentical(unfused.profile, fused.profile);
  EXPECT_FALSE(fused.profile.faultEvents.empty());
}

TEST(SuperstepFusion, MixedPrecisionFusedVsUnfused) {
  auto g = matrix::poisson2d5(16, 16);
  const char* mpirJson = R"({
    "type": "mpir", "extendedType": "doubleword",
    "maxRefinements": 4, "tolerance": 1e-12,
    "inner": {"type": "cg", "maxIterations": 10, "tolerance": 0}
  })";
  SolveObservables unfused = runSolve(g, 8, mpirJson, 1, nullptr, false);
  SolveObservables fused = runSolve(g, 8, mpirJson, 8, nullptr, true);

  ASSERT_EQ(unfused.x.size(), fused.x.size());
  for (std::size_t i = 0; i < unfused.x.size(); ++i) {
    EXPECT_EQ(unfused.x[i], fused.x[i]) << "element " << i;
  }
  expectProfilesIdentical(unfused.profile, fused.profile);
}

// ---------------------------------------------------------------------------
// support::ThreadPool unit behaviour.
// ---------------------------------------------------------------------------

TEST(HostThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.numThreads(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (int round = 0; round < 20; ++round) {
    for (auto& h : hits) h.store(0);
    pool.parallelFor(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

TEST(HostThreadPool, SingleThreadRunsInline) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.numThreads(), 1u);
  std::vector<std::size_t> order;
  pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(HostThreadPool, RethrowsFirstItemError) {
  support::ThreadPool pool(3);
  EXPECT_THROW(pool.parallelFor(64,
                                [&](std::size_t i) {
                                  if (i % 7 == 3) {
                                    throw std::runtime_error("item failed");
                                  }
                                }),
               std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<int> count{0};
  pool.parallelFor(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}
