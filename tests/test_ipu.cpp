// Unit tests for the IPU machine model: cost tables, exchange pricing,
// worker pool, memory ledger, target arithmetic.
#include <gtest/gtest.h>

#include "ipu/cost_model.hpp"
#include "ipu/exchange.hpp"
#include "ipu/memory.hpp"
#include "ipu/target.hpp"
#include "ipu/worker_pool.hpp"
#include "support/error.hpp"

using namespace graphene;
using namespace graphene::ipu;

TEST(Target, TileToIpuMapping) {
  IpuTarget t;
  t.tilesPerIpu = 4;
  t.numIpus = 3;
  EXPECT_EQ(t.totalTiles(), 12u);
  EXPECT_EQ(t.ipuOfTile(0), 0u);
  EXPECT_EQ(t.ipuOfTile(3), 0u);
  EXPECT_EQ(t.ipuOfTile(4), 1u);
  EXPECT_EQ(t.ipuOfTile(11), 2u);
}

TEST(Target, SecondsFromCycles) {
  IpuTarget t;
  t.clockHz = 1.325e9;
  EXPECT_DOUBLE_EQ(t.secondsFromCycles(1.325e9), 1.0);
  EXPECT_NEAR(t.secondsFromCycles(1325.0), 1e-6, 1e-12);
}

TEST(CostModelTable, MatchesPaperTableI) {
  CostModel cost;
  // Native float32: one issue slot (6 cycles).
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Add, DType::Float32), 6.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Mul, DType::Float32), 6.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Div, DType::Float32), 6.0);
  // Double-word (Joldes): Table I.
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Add, DType::DoubleWord), 132.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Mul, DType::DoubleWord), 162.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Div, DType::DoubleWord), 240.0);
  // Emulated float64: Table I.
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Add, DType::Float64), 1080.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Mul, DType::Float64), 1260.0);
  EXPECT_DOUBLE_EQ(cost.workerCycles(Op::Div, DType::Float64), 2520.0);
}

TEST(CostModelTable, FastPolicyIsCheaper) {
  CostModel accurate;
  CostModel fast;
  fast.dwPolicy = twofloat::Policy::Fast;
  for (Op op : {Op::Add, Op::Mul, Op::Div}) {
    EXPECT_LT(fast.workerCycles(op, DType::DoubleWord),
              accurate.workerCycles(op, DType::DoubleWord));
  }
}

TEST(CostModelTable, LaneAssignment) {
  EXPECT_EQ(CostModel::lane(Op::Add), Lane::Fp);
  EXPECT_EQ(CostModel::lane(Op::Load), Lane::Mem);
  EXPECT_EQ(CostModel::lane(Op::Store), Lane::Mem);
  EXPECT_EQ(CostModel::lane(Op::IntArith), Lane::Mem);
  EXPECT_EQ(CostModel::lane(Op::Branch), Lane::Ctrl);
}

TEST(LaneCyclesModel, DualIssueOverlap) {
  CostModel cost;
  LaneCycles lanes;
  lanes.add(Lane::Fp, 60);
  lanes.add(Lane::Mem, 40);
  lanes.add(Lane::Ctrl, 10);
  // max(fp, mem) + ctrl.
  EXPECT_DOUBLE_EQ(lanes.total(), 70.0);
  lanes.add(Lane::Mem, 50);  // mem now 90 > fp 60
  EXPECT_DOUBLE_EQ(lanes.total(), 100.0);
}

TEST(WorkerPoolModel, SyncAdvancesToSlowest) {
  WorkerPool pool(6);
  pool.addCycles(0, 100);
  pool.addCycles(3, 250);
  EXPECT_DOUBLE_EQ(pool.elapsed(), 250.0);
  // Utilisation reflects the imbalance (measured before the barrier, which
  // by definition levels all worker clocks).
  EXPECT_LT(pool.utilisation(), 1.0);
  double afterSync = pool.sync();
  EXPECT_DOUBLE_EQ(afterSync, 250.0 + WorkerPool::kSyncCycles);
  EXPECT_DOUBLE_EQ(pool.elapsed(), afterSync);
}

TEST(WorkerPoolModel, BalancedLoadHasHighUtilisation) {
  WorkerPool pool(6);
  for (std::size_t w = 0; w < 6; ++w) pool.addCycles(w, 600);
  EXPECT_DOUBLE_EQ(pool.utilisation(), 1.0);
  EXPECT_DOUBLE_EQ(pool.totalWork(), 3600.0);
}

TEST(MemoryLedger, EnforcesBudget) {
  IpuTarget t = IpuTarget::testTarget(2);
  t.sramBytesPerTile = 1000;
  TileMemoryLedger ledger(t);
  ledger.allocate(0, 600, "a");
  ledger.allocate(0, 400, "b");  // exactly full
  EXPECT_EQ(ledger.used(0), 1000u);
  EXPECT_THROW(ledger.allocate(0, 1, "c"), ResourceError);
  // Other tiles are unaffected.
  ledger.allocate(1, 1000, "d");
  EXPECT_EQ(ledger.peakUsed(), 1000u);
  ledger.release(0, 600);
  ledger.allocate(0, 500, "e");
  EXPECT_EQ(ledger.used(0), 900u);
  EXPECT_THROW(ledger.release(0, 10000), Error);
}

// ---------------------------------------------------------------------------
// Exchange pricing
// ---------------------------------------------------------------------------

TEST(ExchangePricing, EmptyIsFree) {
  IpuTarget t = IpuTarget::testTarget(4);
  auto stats = priceExchange(t, {});
  EXPECT_DOUBLE_EQ(stats.cycles, 0.0);
  EXPECT_EQ(stats.instructions, 0u);
}

TEST(ExchangePricing, BroadcastCountsOneSend) {
  IpuTarget t = IpuTarget::testTarget(8);
  Transfer broadcast{0, {1, 2, 3, 4}, 1024};
  Transfer fourSends1{0, {1}, 1024};
  Transfer fourSends2{0, {2}, 1024};
  Transfer fourSends3{0, {3}, 1024};
  Transfer fourSends4{0, {4}, 1024};
  auto bc = priceExchange(t, {broadcast});
  auto sep = priceExchange(t, {fourSends1, fourSends2, fourSends3, fourSends4});
  EXPECT_EQ(bc.instructions, 1u);
  EXPECT_EQ(sep.instructions, 4u);
  // Broadcast sends the payload once: 4x less source serialisation.
  EXPECT_LT(bc.cycles, sep.cycles);
  EXPECT_EQ(bc.totalBytes, 1024u);
  EXPECT_EQ(sep.totalBytes, 4096u);
}

TEST(ExchangePricing, SelfCopyIsLocal) {
  IpuTarget t = IpuTarget::testTarget(4);
  Transfer self{2, {2}, 4096};
  auto stats = priceExchange(t, {self});
  EXPECT_EQ(stats.instructions, 0u);
  EXPECT_EQ(stats.totalBytes, 0u);
}

TEST(ExchangePricing, BottleneckIsBusiestTile) {
  IpuTarget t = IpuTarget::testTarget(8);
  // Tile 0 sends 4 kB; tiles 1..4 send 1 kB each, all concurrently.
  std::vector<Transfer> transfers = {
      {0, {5}, 4096}, {1, {5}, 0}, {1, {6}, 1024}, {2, {6}, 1024},
      {3, {7}, 1024}, {4, {7}, 1024}};
  auto stats = priceExchange(t, transfers);
  // Send side: tile0 = 4096 / 4 B/cycle = 1024 cycles dominates receive
  // side (tile5: 4096/16 = 256).
  EXPECT_GT(stats.cycles, 1024.0);
  EXPECT_LT(stats.cycles, 1024.0 + t.syncCyclesOnChip + 10 * t.exchangeInstrCycles + 1);
}

TEST(ExchangePricing, InterIpuPaysLinkAndGlobalSync) {
  IpuTarget t = IpuTarget::testTarget(4, 2);  // 2 IPUs x 4 tiles
  Transfer onChip{0, {1}, 4096};
  Transfer crossChip{0, {5}, 4096};
  auto local = priceExchange(t, {onChip});
  auto remote = priceExchange(t, {crossChip});
  EXPECT_FALSE(local.crossesIpus);
  EXPECT_TRUE(remote.crossesIpus);
  EXPECT_EQ(remote.interIpuBytes, 4096u);
  EXPECT_GT(remote.cycles, local.cycles);
}

TEST(ExchangePricing, BroadcastToTwoIpusPaysLinkOncePerIpu) {
  IpuTarget t = IpuTarget::testTarget(4, 3);
  // Broadcast from tile 0 to one tile on each other IPU.
  Transfer tr{0, {4, 5, 8}, 1 << 20};
  auto stats = priceExchange(t, {tr});
  // Link bytes: once to IPU1, once to IPU2 (fan-out on the remote side).
  EXPECT_EQ(stats.interIpuBytes, 2u << 20);
}

TEST(ExchangePricing, RejectsOutOfRangeTiles) {
  IpuTarget t = IpuTarget::testTarget(2);
  EXPECT_THROW(priceExchange(t, {Transfer{5, {0}, 16}}), Error);
  EXPECT_THROW(priceExchange(t, {Transfer{0, {9}, 16}}), Error);
}

// ---------------------------------------------------------------------------
// Two-level exchange pricing (intra-IPU fabric vs IPU-Link lanes)
// ---------------------------------------------------------------------------

TEST(TwoLevelExchange, SingleChipHasNoInterCycles) {
  IpuTarget t = IpuTarget::testTarget(8);
  std::vector<Transfer> transfers = {{0, {1, 2}, 4096}, {3, {7}, 2048}};
  auto stats = priceExchange(t, transfers);
  EXPECT_DOUBLE_EQ(stats.interCycles, 0.0);
  EXPECT_EQ(stats.interIpuBytes, 0u);
  EXPECT_EQ(stats.interIpuMessages, 0u);
  // Total = on-chip sync + intra fabric phase, nothing else.
  EXPECT_DOUBLE_EQ(stats.cycles, t.syncCyclesOnChip + stats.intraCycles);
}

TEST(TwoLevelExchange, SplitSumsToTotalMinusSync) {
  IpuTarget t = IpuTarget::testTarget(4, 2);
  std::vector<Transfer> transfers = {
      {0, {1}, 8192}, {0, {5}, 4096}, {2, {6, 7}, 1024}};
  auto stats = priceExchange(t, transfers);
  EXPECT_GT(stats.intraCycles, 0.0);
  EXPECT_GT(stats.interCycles, 0.0);
  EXPECT_DOUBLE_EQ(stats.cycles,
                   t.syncCyclesGlobal + stats.intraCycles + stats.interCycles);
}

TEST(TwoLevelExchange, HaloAggregationCoalescesPairMessages) {
  // Ten small messages from IPU0 tiles to IPU1 tiles: aggregated they ride
  // one link transfer (one latency charge); unaggregated each pays it.
  IpuTarget agg = IpuTarget::testTarget(4, 2);
  IpuTarget raw = agg;
  raw.aggregateInterIpuHalo = false;
  std::vector<Transfer> transfers;
  for (std::size_t i = 0; i < 10; ++i) {
    transfers.push_back({i % 4, {4 + (i % 4)}, 64});
  }
  auto a = priceExchange(agg, transfers);
  auto r = priceExchange(raw, transfers);
  EXPECT_EQ(a.interIpuMessages, 1u);
  EXPECT_EQ(r.interIpuMessages, 10u);
  EXPECT_EQ(a.interIpuBytes, r.interIpuBytes);  // payload is unchanged
  // 9 saved latency charges on the link phase.
  EXPECT_NEAR(r.interCycles - a.interCycles, 9 * agg.linkLatencyCycles, 1e-6);
  EXPECT_LT(a.cycles, r.cycles);
}

TEST(TwoLevelExchange, AggregationIsPerOrderedIpuPair) {
  // IPU0 -> IPU1 and IPU0 -> IPU2 are distinct lanes: two transfers even
  // with aggregation on; the reverse direction is its own message too.
  IpuTarget t = IpuTarget::testTarget(2, 3);
  std::vector<Transfer> transfers = {
      {0, {2}, 128}, {1, {3}, 128},   // IPU0 -> IPU1 (coalesced)
      {0, {4}, 128},                  // IPU0 -> IPU2
      {2, {0}, 128}};                 // IPU1 -> IPU0
  auto stats = priceExchange(t, transfers);
  EXPECT_EQ(stats.interIpuMessages, 3u);
  EXPECT_EQ(stats.interIpuBytes, 4u * 128u);
}

TEST(TwoLevelExchange, LaneCongestionSerialisesExcessPairs) {
  // One source chip talking to `linksPerIpu` peers streams concurrently;
  // talking to 2x as many serialises two pair-streams per lane.
  IpuTarget t = IpuTarget::testTarget(1, 21);  // 1 tile/chip, 21 chips
  t.linksPerIpu = 10;
  const std::size_t bytes = 1 << 16;
  std::vector<Transfer> ten, twenty;
  for (std::size_t i = 1; i <= 20; ++i) {
    if (i <= 10) ten.push_back({0, {i}, bytes});
    twenty.push_back({0, {i}, bytes});
  }
  auto fits = priceExchange(t, ten);
  auto spills = priceExchange(t, twenty);
  const double pairCycles =
      t.linkLatencyCycles + static_cast<double>(bytes) / t.linkBytesPerCycle();
  // 10 pairs on 10 lanes: the phase is one pair's cycles.
  EXPECT_NEAR(fits.interCycles, pairCycles, 1e-6);
  // 20 pairs on 10 lanes: each lane carries two streams back to back.
  EXPECT_NEAR(spills.interCycles, 2 * pairCycles, 1e-6);
}

TEST(TwoLevelExchange, InterIpuBytesChargedOncePerDestinationIpu) {
  // A broadcast with three destinations on the same remote chip ships the
  // payload over the link once; the gateway fans out on the remote fabric.
  IpuTarget t = IpuTarget::testTarget(4, 2);
  Transfer tr{0, {5, 6, 7}, 4096};
  auto stats = priceExchange(t, {tr});
  EXPECT_EQ(stats.interIpuBytes, 4096u);
  EXPECT_EQ(stats.interIpuMessages, 1u);
}
