// Ablation (§IV): blockwise region exchange vs per-cell (Burchard-style)
// exchange. The reordering strategy's payoff is (1) far fewer communication
// instructions — smaller compiler-generated communication programs — and
// (2) broadcast transfers on the all-to-all fabric.
#include <cstdio>

#include "bench_common.hpp"
#include "ipu/exchange.hpp"
#include "partition/halo.hpp"

using namespace graphene;

namespace {

ipu::ExchangeStats price(const ipu::IpuTarget& target,
                         const std::vector<partition::HaloTransfer>& plan) {
  std::vector<ipu::Transfer> transfers;
  transfers.reserve(plan.size());
  for (const partition::HaloTransfer& t : plan) {
    ipu::Transfer tr;
    tr.srcTile = t.srcTile;
    tr.bytes = t.count * sizeof(float);
    for (const auto& d : t.dsts) tr.dstTiles.push_back(d.tile);
    transfers.push_back(std::move(tr));
  }
  return ipu::priceExchange(target, transfers);
}

}  // namespace

int main() {
  bench::printHeader("Ablation — blockwise halo exchange vs per-cell",
                     "the §IV reordering enables blockwise broadcasts and "
                     "small communication programs");

  struct Case {
    const char* name;
    matrix::GeneratedMatrix g;
    std::size_t tiles;
  };
  Case cases[] = {
      {"poisson3d 32^3", matrix::poisson3d7(32, 32, 32), 64},
      {"poisson2d 96^2", matrix::poisson2d5(96, 96), 64},
      {"geo_1438-like", matrix::geoLike(30000), 64},
      {"g3_circuit-like", matrix::g3CircuitLike(30000), 64},
  };

  TextTable t({"matrix", "regions", "sep cells", "block instrs",
               "percell instrs", "block cycles", "percell cycles",
               "speedup"});
  bool allFaster = true;
  for (Case& c : cases) {
    ipu::IpuTarget target = ipu::IpuTarget::testTarget(c.tiles);
    partition::Partitioner part(ipu::Topology::singleIpu(c.tiles));
    auto layout = part.layout(c.g);
    auto blockStats = price(target, layout.transfers);
    auto cellStats = price(target, partition::naivePerCellTransfers(layout));
    double speedup = cellStats.cycles / blockStats.cycles;
    allFaster &= speedup > 1.0;
    t.addRow({c.name, std::to_string(layout.regions.size()),
              std::to_string(layout.numSeparatorCells()),
              std::to_string(blockStats.instructions),
              std::to_string(cellStats.instructions),
              formatSig(blockStats.cycles, 4),
              formatSig(cellStats.cycles, 4), formatSig(speedup, 3) + "x"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("check: blockwise plan needs fewer instructions and cycles on "
              "every matrix: %s\n",
              allFaster ? "PASS" : "FAIL");
  return allFaster ? 0 : 1;
}
