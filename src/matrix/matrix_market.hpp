// MatrixMarket coordinate-format IO.
//
// The paper evaluates on matrices from the SuiteSparse collection [31],
// which ships in MatrixMarket format. Supported here: `matrix coordinate
// real|integer|pattern general|symmetric`. Symmetric files are expanded to
// full storage on read.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.hpp"

namespace graphene::matrix {

/// Parses a MatrixMarket stream. Throws graphene::ParseError on malformed
/// input.
CsrMatrix readMatrixMarket(std::istream& in);

/// Reads a .mtx file from disk.
CsrMatrix readMatrixMarketFile(const std::string& path);

/// Writes in `matrix coordinate real general` format (1-based indices).
void writeMatrixMarket(const CsrMatrix& a, std::ostream& out);

void writeMatrixMarketFile(const CsrMatrix& a, const std::string& path);

}  // namespace graphene::matrix
