// Validated, user-facing description of the machine shape: how many IPUs,
// how many tiles each, and how the chips are linked.
//
// `Topology` replaces ad-hoc poking of raw `IpuTarget` fields (and the old
// `partitionAuto(m, tiles)` convention of "tiles" meaning "one big IPU").
// It is a small value type with named builders:
//
//   auto solo = Topology::singleIpu(64);                 // one chip
//   auto pod  = Topology::pod(4, 16);                    // 4 IPUs x 16 tiles
//   auto m2k  = Topology::pod(16, 1472, LinkModel::mk2());
//
// A Topology always yields a fully-populated `IpuTarget` via `target()`, so
// the cycle model, Graph and Engine need no new plumbing; and it carries a
// stable fingerprint so plan caches can key compiled pipelines on the shape
// they were built for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ipu/target.hpp"

namespace graphene::ipu {

/// IPU-Link interconnect parameters for a pod. Defaults follow public Mk2 /
/// IPU-POD specifications (64 GB/s per link direction, 10 links per chip,
/// ~0.5 us latency).
struct LinkModel {
  double bytesPerSecond = 64e9;
  double latencyCycles = 600.0;
  std::size_t linksPerIpu = 10;
  /// Coalesce all cross-IPU messages between an IPU pair into one link
  /// transfer per superstep (halo aggregation).
  bool aggregateHalo = true;

  static LinkModel mk2() { return LinkModel{}; }

  bool operator==(const LinkModel& o) const {
    return bytesPerSecond == o.bytesPerSecond &&
           latencyCycles == o.latencyCycles && linksPerIpu == o.linksPerIpu &&
           aggregateHalo == o.aggregateHalo;
  }
  bool operator!=(const LinkModel& o) const { return !(*this == o); }
};

class Topology {
 public:
  /// Default: one full Mk2 chip.
  Topology();

  /// One chip with `tiles` tiles (the shape every pre-pod entry point used).
  static Topology singleIpu(std::size_t tiles);

  /// A pod of `ipus` chips x `tilesPerIpu` tiles, linked per `link`.
  static Topology pod(std::size_t ipus, std::size_t tilesPerIpu,
                      LinkModel link = LinkModel{});

  /// Adopts an existing target verbatim (shim for code that already built an
  /// IpuTarget by hand); link parameters are read back off the target.
  static Topology fromTarget(const IpuTarget& target);

  std::size_t numIpus() const { return target_.numIpus; }
  std::size_t tilesPerIpu() const { return target_.tilesPerIpu; }
  std::size_t totalTiles() const { return target_.totalTiles(); }
  bool isPod() const { return target_.numIpus > 1; }

  /// The elastic-shrink view: the same machine shape with some chips marked
  /// dead. Tile and chip numbering stay stable (so fault rules, blacklists
  /// and traces keep meaning across a shrink); partitioning, control-tile
  /// selection and link re-routing skip the dead set. The dead set is part
  /// of the fingerprint: a plan built for the full pod must never be
  /// replayed on the shrunken one.
  Topology withoutIpus(const std::vector<std::size_t>& dead) const;
  const std::vector<std::size_t>& deadIpus() const { return deadIpus_; }
  bool ipuAlive(std::size_t ipu) const;
  std::size_t numAliveIpus() const { return target_.numIpus - deadIpus_.size(); }
  std::size_t numAliveTiles() const {
    return target_.totalTiles() - deadIpus_.size() * target_.tilesPerIpu;
  }

  /// The fully-populated machine description consumed by Context/Graph and
  /// the cycle model.
  const IpuTarget& target() const { return target_; }

  /// Escape hatch for tests that shrink SRAM, change clocks, etc. Shape and
  /// link fields should be set through the builders instead.
  IpuTarget& mutableTarget() { return target_; }

  LinkModel link() const;

  /// Stable FNV-1a fingerprint over the machine shape and link model. Plan
  /// caches mix this into structure fingerprints: a pipeline compiled for
  /// 1x64 must never be replayed on 4x16.
  std::uint64_t fingerprint() const;

  /// Human-readable shape, e.g. "4 IPU x 16 tiles".
  std::string describe() const;

  bool operator==(const Topology& o) const;
  bool operator!=(const Topology& o) const { return !(*this == o); }

 private:
  explicit Topology(IpuTarget target) : target_(target) {}
  IpuTarget target_;
  std::vector<std::size_t> deadIpus_;  // sorted, unique, < numIpus
};

}  // namespace graphene::ipu

namespace graphene {
// The ISSUE-facing spelling: graphene::Topology.
using Topology = ipu::Topology;
using LinkModel = ipu::LinkModel;
}  // namespace graphene
