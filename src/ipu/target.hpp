// Description of the simulated IPU system (a Graphcore Mk2 "M2000"-style
// machine and pods built from it).
//
// Every quantity that the cycle model needs is collected here so that scaling
// experiments can sweep tile counts, and so the substitution for real
// hardware is explicit and auditable. Defaults follow the paper (§II-A) and
// public Mk2 specifications.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/error.hpp"

namespace graphene::ipu {

struct IpuTarget {
  /// Number of tiles on one IPU chip. Mk2: 1,472. Benchmarks on this small
  /// host typically use a scaled-down value; every bench prints it.
  std::size_t tilesPerIpu = 1472;

  /// Number of interconnected IPU chips (a POD16 has 16).
  std::size_t numIpus = 1;

  /// Local SRAM per tile in bytes. Mk2: 624 KiB (~612 kB in the paper).
  std::size_t sramBytesPerTile = 624 * 1024;

  /// Hardware worker threads per tile; all six must be used for full
  /// utilisation (§II-A).
  std::size_t workersPerTile = 6;

  /// Tile clock. Mk2: 1.325 GHz, constant (execution is cycle-deterministic).
  double clockHz = 1.325e9;

  /// Issue granularity: one worker issues an instruction every `workerIssue`
  /// tile cycles (the 6-stage pipeline is time-multiplexed round-robin).
  std::size_t workerIssueCycles = 6;

  /// On-chip exchange: bytes one tile can push into the fabric per tile
  /// cycle (Mk2 exchange bus: 32 bits/cycle per tile outbound).
  double exchangeSendBytesPerCycle = 4.0;

  /// On-chip exchange: bytes one tile can accept per tile cycle (receive
  /// side is wider than send on Mk2).
  double exchangeRecvBytesPerCycle = 16.0;

  /// Cycles of overhead per transfer instruction in a tile's communication
  /// program. Fewer, larger (blockwise) transfers amortise this — the point
  /// of the paper's reordering strategy (§IV).
  double exchangeInstrCycles = 12.0;

  /// BSP synchronisation cost for an on-chip superstep barrier.
  double syncCyclesOnChip = 150.0;

  /// BSP synchronisation cost when the superstep spans multiple IPUs
  /// (IPU-Link sync is microsecond-scale).
  double syncCyclesGlobal = 2000.0;

  /// IPU-Link bandwidth per direction between a pair of IPUs, bytes/second.
  double linkBytesPerSecond = 64e9;

  /// Fixed per-message cost of a link transfer (gateway turnaround + flit
  /// setup; IPU-Link latency is ~0.5 µs, i.e. hundreds of tile cycles).
  /// Aggregating halo messages amortises this, which is why the pod-aware
  /// partitioner coalesces all traffic between an IPU pair per superstep.
  double linkLatencyCycles = 600.0;

  /// Number of IPU-Link lanes one chip can drive concurrently (Mk2: 10).
  /// When a superstep talks to more peers than this, link transfers
  /// serialise onto the available lanes.
  std::size_t linksPerIpu = 10;

  /// Coalesce all cross-IPU messages between an ordered IPU pair into one
  /// link transfer per superstep (one latency charge per pair instead of
  /// one per message). The pod-aware layout enables this by construction.
  bool aggregateInterIpuHalo = true;

  std::size_t totalTiles() const { return tilesPerIpu * numIpus; }

  /// IPU index that owns a global tile id.
  std::size_t ipuOfTile(std::size_t tile) const {
    GRAPHENE_DCHECK(tile < totalTiles(), "tile out of range");
    return tile / tilesPerIpu;
  }

  double secondsFromCycles(double cycles) const { return cycles / clockHz; }

  double linkBytesPerCycle() const { return linkBytesPerSecond / clockHz; }

  /// A scaled-down target for unit tests: few tiles, small SRAM.
  static IpuTarget testTarget(std::size_t tiles = 8, std::size_t ipus = 1) {
    IpuTarget t;
    t.tilesPerIpu = tiles;
    t.numIpus = ipus;
    return t;
  }
};

}  // namespace graphene::ipu
