// ILU(0) and DILU preconditioners (§V-E).
//
// Both the factorisation and the substitution run on the device,
// parallelised with Level-Set Scheduling across the six workers of each
// tile. The factorisation keeps the owned-block sparsity pattern (fill-in
// discarded, halo couplings disregarded).
#include <cmath>

#include "levelset/levelset.hpp"
#include "solver/solvers.hpp"

namespace graphene::solver {

using dsl::Context;
using dsl::ExecuteOnTiles;
using dsl::Expression;
using dsl::For;
using dsl::If;
using dsl::ParallelFor;
using dsl::Select;
using dsl::Value;
using dsl::While;

void IluSolver::setup(DistMatrix& a) {
  Context& ctx = Context::current();
  const std::size_t nTiles = ctx.target().totalTiles();

  // Host-side: filtered per-tile structure — owned columns only, diagonal
  // included, ascending column order (block-Jacobi ILU pattern).
  std::vector<std::size_t> valSizes(nTiles, 0), rowPtrSizes(nTiles, 0),
      ownedSizes(nTiles, 0), fwdOrderSizes(nTiles, 0), fwdPtrSizes(nTiles, 0),
      bwdPtrSizes(nTiles, 0);
  std::vector<float> valHost, mirrorHost;
  std::vector<std::int32_t> colHost, rowPtrHost, diagIdxHost, fwdOrderHost,
      fwdPtrHost, bwdOrderHost, bwdPtrHost;

  for (std::size_t t = 0; t < nTiles; ++t) {
    const DistMatrix::TileLocal& local = a.tileLocal()[t];
    const std::size_t n = local.numOwned;
    if (n == 0) continue;
    std::vector<std::size_t> frp(n + 1, 0);
    std::vector<std::int32_t> fcol;
    std::vector<float> fval, fmirror;
    std::vector<std::int32_t> fdiag(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = local.rowPtr[i]; k < local.rowPtr[i + 1]; ++k) {
        const std::int32_t c = local.col[k];
        if (static_cast<std::size_t>(c) >= n) continue;  // halo coupling
        if (c == static_cast<std::int32_t>(i)) {
          fdiag[i] = static_cast<std::int32_t>(fcol.size());
        }
        fcol.push_back(c);
        fval.push_back(static_cast<float>(local.val[k]));
        // DILU needs a(c, i): look it up in row c of the local structure.
        double mirror = 0.0;
        for (std::size_t k2 = local.rowPtr[static_cast<std::size_t>(c)];
             k2 < local.rowPtr[static_cast<std::size_t>(c) + 1]; ++k2) {
          if (local.col[k2] == static_cast<std::int32_t>(i)) {
            mirror = local.val[k2];
            break;
          }
        }
        fmirror.push_back(static_cast<float>(mirror));
      }
      frp[i + 1] = fcol.size();
      GRAPHENE_CHECK(fdiag[i] >= 0, "ILU needs a diagonal entry in every row");
    }
    // Level schedules on the filtered pattern.
    auto fwd = levelset::buildLevels(frp, fcol, n, /*lower=*/true);
    auto bwd = levelset::buildLevels(frp, fcol, n, /*lower=*/false);

    valSizes[t] = fval.size();
    rowPtrSizes[t] = frp.size();
    ownedSizes[t] = n;
    fwdOrderSizes[t] = n;
    fwdPtrSizes[t] = fwd.levelPtr.size();
    bwdPtrSizes[t] = bwd.levelPtr.size();

    valHost.insert(valHost.end(), fval.begin(), fval.end());
    mirrorHost.insert(mirrorHost.end(), fmirror.begin(), fmirror.end());
    colHost.insert(colHost.end(), fcol.begin(), fcol.end());
    for (std::size_t p : frp) rowPtrHost.push_back(static_cast<std::int32_t>(p));
    diagIdxHost.insert(diagIdxHost.end(), fdiag.begin(), fdiag.end());
    fwdOrderHost.insert(fwdOrderHost.end(), fwd.order.begin(), fwd.order.end());
    fwdPtrHost.insert(fwdPtrHost.end(), fwd.levelPtr.begin(),
                      fwd.levelPtr.end());
    bwdOrderHost.insert(bwdOrderHost.end(), bwd.order.begin(), bwd.order.end());
    bwdPtrHost.insert(bwdPtrHost.end(), bwd.levelPtr.begin(),
                      bwd.levelPtr.end());
  }

  fVal_.emplace(DType::Float32, graph::TileMapping::ragged(valSizes),
                ctx.freshName("ilu_val"));
  fCol_.emplace(DType::Int32, graph::TileMapping::ragged(valSizes),
                ctx.freshName("ilu_col"));
  fRowPtr_.emplace(DType::Int32, graph::TileMapping::ragged(rowPtrSizes),
                   ctx.freshName("ilu_rowptr"));
  diagIdx_.emplace(DType::Int32, graph::TileMapping::ragged(ownedSizes),
                   ctx.freshName("ilu_diagidx"));
  fwdOrder_.emplace(DType::Int32, graph::TileMapping::ragged(fwdOrderSizes),
                    ctx.freshName("ilu_fwdorder"));
  fwdPtr_.emplace(DType::Int32, graph::TileMapping::ragged(fwdPtrSizes),
                  ctx.freshName("ilu_fwdptr"));
  bwdOrder_.emplace(DType::Int32, graph::TileMapping::ragged(fwdOrderSizes),
                    ctx.freshName("ilu_bwdorder"));
  bwdPtr_.emplace(DType::Int32, graph::TileMapping::ragged(bwdPtrSizes),
                  ctx.freshName("ilu_bwdptr"));
  scratchY_ = a.makeVector(DType::Float32, ctx.freshName("ilu_y"));
  if (variant_ == Variant::Dilu) {
    mirrorVal_.emplace(DType::Float32, graph::TileMapping::ragged(valSizes),
                       ctx.freshName("dilu_mirror"));
    dtilde_ = a.makeVector(DType::Float32, ctx.freshName("dilu_d"));
  }

  // Upload structure + initial values at execution time.
  {
    graph::TensorId valId = fVal_->id(), colId = fCol_->id(),
                    rpId = fRowPtr_->id(), diId = diagIdx_->id(),
                    foId = fwdOrder_->id(), fpId = fwdPtr_->id(),
                    boId = bwdOrder_->id(), bpId = bwdPtr_->id();
    std::optional<graph::TensorId> mirrorId;
    if (mirrorVal_) mirrorId = mirrorVal_->id();
    dsl::HostCall([=](graph::Engine& e) {
      e.writeTensor<float>(valId, valHost);
      e.writeTensor<std::int32_t>(colId, colHost);
      e.writeTensor<std::int32_t>(rpId, rowPtrHost);
      e.writeTensor<std::int32_t>(diId, diagIdxHost);
      e.writeTensor<std::int32_t>(foId, fwdOrderHost);
      e.writeTensor<std::int32_t>(fpId, fwdPtrHost);
      e.writeTensor<std::int32_t>(boId, bwdOrderHost);
      e.writeTensor<std::int32_t>(bpId, bwdPtrHost);
      if (mirrorId) e.writeTensor<float>(*mirrorId, mirrorHost);
    });
  }

  // Factorisation (device, level-scheduled).
  if (variant_ == Variant::Ilu0) {
    // In-place IKJ ILU(0): for each row i (in level order), divide its lower
    // entries by the pivot and update the remainder of the row against the
    // pivot row, restricted to the existing pattern.
    ExecuteOnTiles(
        {*fVal_, *fCol_, *fRowPtr_, *diagIdx_, *fwdOrder_, *fwdPtr_},
        [&](std::vector<Value>& args) {
          Value fv = args[0], fc = args[1], rp = args[2], di = args[3],
                order = args[4], lvl = args[5];
          For(0, lvl.size() - 1, 1, [&](Value l) {
            ParallelFor(lvl[l], lvl[l + 1], [&](Value idx) {
              Value i = order[idx];
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c < i, [&] {
                  Value piv = Value(fv[k]) / Value(fv[di[c]]);
                  fv[k] = piv;
                  // Merge row c's upper part with the rest of row i.
                  Value k2 = Value(di[c]) + 1;
                  Value k3 = k + 1;
                  Value rowCEnd = rp[c + 1];
                  Value rowIEnd = rp[i + 1];
                  While([&] { return k2 < rowCEnd && k3 < rowIEnd; }, [&] {
                    Value c2 = fc[k2];
                    Value c3 = fc[k3];
                    If(c2 == c3,
                       [&] {
                         fv[k3] = Value(fv[k3]) - piv * Value(fv[k2]);
                         k2 = k2 + 1;
                         k3 = k3 + 1;
                       },
                       [&] {
                         If(c2 < c3, [&] { k2 = k2 + 1; },
                            [&] { k3 = k3 + 1; });
                       });
                  });
                });
              });
            });
          });
        },
        "ilu_factorize", a.activeTiles());
  } else {
    // DILU: only the modified diagonal d̃ is computed:
    //   d̃_i = a_ii − Σ_{c<i} a_ic · a_ci / d̃_c.
    ExecuteOnTiles(
        {*dtilde_, *fVal_, *fCol_, *fRowPtr_, *diagIdx_, *mirrorVal_,
         *fwdOrder_, *fwdPtr_},
        [&](std::vector<Value>& args) {
          Value d = args[0], fv = args[1], fc = args[2], rp = args[3],
                di = args[4], mv = args[5], order = args[6], lvl = args[7];
          For(0, lvl.size() - 1, 1, [&](Value l) {
            ParallelFor(lvl[l], lvl[l + 1], [&](Value idx) {
              Value i = order[idx];
              Value acc = fv[di[i]];
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c < i, [&] {
                  acc = acc - Value(fv[k]) * Value(mv[k]) / Value(d[c]);
                });
              });
              d[i] = acc;
            });
          });
        },
        "ilu_factorize", a.activeTiles());
  }
}

void IluSolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  ensureSetup(a);
  Tensor& y = *scratchY_;
  if (variant_ == Variant::Ilu0) {
    // Forward substitution L y = r (unit diagonal), then backward U z = y.
    ExecuteOnTiles(
        {z, r, y, *fVal_, *fCol_, *fRowPtr_, *diagIdx_, *fwdOrder_, *fwdPtr_,
         *bwdOrder_, *bwdPtr_},
        [&](std::vector<Value>& args) {
          Value zv = args[0], rv = args[1], yv = args[2], fv = args[3],
                fc = args[4], rp = args[5], di = args[6], fo = args[7],
                fp = args[8], bo = args[9], bp = args[10];
          For(0, fp.size() - 1, 1, [&](Value l) {
            ParallelFor(fp[l], fp[l + 1], [&](Value idx) {
              Value i = fo[idx];
              Value acc = rv[i];
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c < i, [&] { acc = acc - Value(fv[k]) * Value(yv[c]); });
              });
              yv[i] = acc;
            });
          });
          For(0, bp.size() - 1, 1, [&](Value l) {
            ParallelFor(bp[l], bp[l + 1], [&](Value idx) {
              Value i = bo[idx];
              Value acc = yv[i];
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c > i, [&] { acc = acc - Value(fv[k]) * Value(zv[c]); });
              });
              zv[i] = acc / Value(fv[di[i]]);
            });
          });
        },
        "ilu_solve", a.activeTiles());
  } else {
    // DILU: (E + L) w = r with w scaled by d̃, then (E + U) z = E w.
    ExecuteOnTiles(
        {z, r, y, *fVal_, *fCol_, *fRowPtr_, *dtilde_, *fwdOrder_, *fwdPtr_,
         *bwdOrder_, *bwdPtr_},
        [&](std::vector<Value>& args) {
          Value zv = args[0], rv = args[1], yv = args[2], fv = args[3],
                fc = args[4], rp = args[5], d = args[6], fo = args[7],
                fp = args[8], bo = args[9], bp = args[10];
          For(0, fp.size() - 1, 1, [&](Value l) {
            ParallelFor(fp[l], fp[l + 1], [&](Value idx) {
              Value i = fo[idx];
              Value acc = rv[i];
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c < i, [&] { acc = acc - Value(fv[k]) * Value(yv[c]); });
              });
              yv[i] = acc / Value(d[i]);
            });
          });
          For(0, bp.size() - 1, 1, [&](Value l) {
            ParallelFor(bp[l], bp[l + 1], [&](Value idx) {
              Value i = bo[idx];
              Value acc = Value(0.0f);
              For(rp[i], rp[i + 1], 1, [&](Value k) {
                Value c = fc[k];
                If(c > i, [&] { acc = acc + Value(fv[k]) * Value(zv[c]); });
              });
              zv[i] = Value(yv[i]) - acc / Value(d[i]);
            });
          });
        },
        "ilu_solve", a.activeTiles());
  }
}

}  // namespace graphene::solver
