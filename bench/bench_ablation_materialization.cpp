// Ablation (§III-C): lazy vs eager expression materialisation. Delaying
// materialisation fuses the whole expression tree into one codelet, which
// (1) lets common work be optimised together and avoids intermediate tensor
// traffic, and (2) shrinks the dataflow graph / execution schedule (fewer
// vertices and program steps — the paper's graph-compile-time concern).
#include <cstdio>

#include "bench_common.hpp"

using namespace graphene;

namespace {

struct Outcome {
  double cycles;
  std::size_t programSteps;
  std::size_t computeSets;
};

Outcome run(bool fused) {
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(16);
  dsl::Context ctx(target);
  const std::size_t n = 60000;
  dsl::Tensor a(dsl::DType::Float32, n, "a");
  dsl::Tensor b(dsl::DType::Float32, n, "b");
  dsl::Tensor c(dsl::DType::Float32, n, "c");
  dsl::Tensor out(dsl::DType::Float32, n, "out");
  using dsl::Expression;
  if (fused) {
    // One fused codelet: out = a*2 + b*c - a/(c+3)
    out = Expression(a) * 2.0f + Expression(b) * Expression(c) -
          Expression(a) / (Expression(c) + 3.0f);
  } else {
    // Eager: every operation materialises an intermediate tensor.
    dsl::Tensor t1 = Expression(a) * 2.0f;
    dsl::Tensor t2 = Expression(b) * Expression(c);
    dsl::Tensor t3 = Expression(c) + 3.0f;
    dsl::Tensor t4 = Expression(a) / Expression(t3);
    dsl::Tensor t5 = Expression(t1) + Expression(t2);
    out = Expression(t5) - Expression(t4);
  }
  Outcome o{};
  o.programSteps = ctx.program()->stepCount();
  o.computeSets = ctx.graph().numComputeSets();
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  o.cycles = engine.profile().totalCycles();
  return o;
}

}  // namespace

int main() {
  bench::printHeader("Ablation — lazy vs eager materialisation",
                     "fused expression codelets: fewer program steps, fewer "
                     "cycles (paper §III-C)");
  Outcome fused = run(true);
  Outcome eager = run(false);

  TextTable t({"strategy", "program steps", "compute sets", "cycles"});
  t.addRow({"lazy (fused)", std::to_string(fused.programSteps),
            std::to_string(fused.computeSets), formatSig(fused.cycles, 5)});
  t.addRow({"eager (per-op)", std::to_string(eager.programSteps),
            std::to_string(eager.computeSets), formatSig(eager.cycles, 5)});
  std::printf("%s\n", t.render().c_str());
  std::printf("speedup from fusion: %.2fx, schedule shrink: %.2fx\n",
              eager.cycles / fused.cycles,
              static_cast<double>(eager.programSteps) /
                  static_cast<double>(fused.programSteps));
  bool pass = fused.cycles < eager.cycles &&
              fused.programSteps < eager.programSteps;
  std::printf("check: fusion reduces both cycles and schedule size: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
