// Two-level BSP exchange-phase cycle model: the IPU's on-chip all-to-all
// fabric, plus serialized IPU-Link lanes between chips.
//
// Communication programs are generated before execution (graph compile time)
// and are cycle-precise (§II-A). This model prices one exchange superstep
// given its list of transfers:
//
//   cycles = sync
//            + intra: instrOverhead * (busiest tile's transfer count)
//                     + max over tiles of send/recv serialisation
//            + inter: per ordered (srcIpu, dstIpu) pair, a link transfer of
//                     latency + bytes/linkBandwidth; pairs sharing a chip's
//                     link lanes serialise when the pair count exceeds
//                     `linksPerIpu` (congestion), and the slowest chip sets
//                     the phase duration.
//
// With `aggregateInterIpuHalo` (the default, and what the pod-aware layout
// produces) all messages between an IPU pair coalesce into ONE link transfer
// per superstep — one latency charge per pair; otherwise every crossing
// message pays latency individually.
//
// A broadcast — one separator region consumed by several neighbour tiles — is
// a *single* send (§IV: "broadcast to all neighbors in a single blockwise
// transfer"); only the receivers each pay the receive cost. Over links the
// payload crosses once per *destination IPU* (the gateway fans out on the
// remote chip).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ipu/target.hpp"
#include "support/error.hpp"

namespace graphene::support {
class TileTrafficMatrix;
}

namespace graphene::ipu {

/// One blockwise transfer in an exchange program: `bytes` sent from
/// `srcTile` to every tile in `dstTiles` (broadcast when > 1).
struct Transfer {
  std::size_t srcTile = 0;
  std::vector<std::size_t> dstTiles;
  std::size_t bytes = 0;
};

/// Typed failure for a link graph that re-routing cannot bridge: an ordered
/// IPU pair has its direct link severed and no surviving intermediate chip
/// offers an alive two-hop route. The exchange cannot be priced, let alone
/// executed — the caller must fail the solve typed, not hang.
class LinkPartitionedError : public graphene::Error {
 public:
  using graphene::Error::Error;
};

/// Permanent IPU-Link fabric faults in effect for one exchange superstep.
/// `deadPairs` are ordered (srcIpu, dstIpu) links that are severed;
/// `degraded` multiplies the cost of an ordered pair's link transfers.
/// `deadIpus` lists chips that must not be used as re-route intermediates
/// (a dying chip cannot relay traffic) — traffic to/from those chips is
/// still priced on its direct links, so the watchdog escalation path keeps
/// observing the chip until recovery excludes it.
struct LinkFaults {
  std::vector<std::pair<std::size_t, std::size_t>> deadPairs;
  struct Degrade {
    std::size_t fromIpu = 0;
    std::size_t toIpu = 0;
    double factor = 1.0;
  };
  std::vector<Degrade> degraded;
  std::vector<std::size_t> deadIpus;

  bool empty() const {
    return deadPairs.empty() && degraded.empty() && deadIpus.empty();
  }
  bool isDead(std::size_t fromIpu, std::size_t toIpu) const {
    for (const auto& p : deadPairs) {
      if (p.first == fromIpu && p.second == toIpu) return true;
    }
    return false;
  }
  bool ipuDead(std::size_t ipu) const {
    for (std::size_t d : deadIpus) {
      if (d == ipu) return true;
    }
    return false;
  }
  /// Combined degradation factor for one ordered link (1.0 when healthy).
  double factor(std::size_t fromIpu, std::size_t toIpu) const {
    double f = 1.0;
    for (const auto& d : degraded) {
      if (d.fromIpu == fromIpu && d.toIpu == toIpu) f *= d.factor;
    }
    return f;
  }
};

/// Static description of a compiled exchange program.
struct ExchangeStats {
  double cycles = 0;            // modelled duration of the exchange superstep
  double intraCycles = 0;       // on-chip fabric share (instr overhead + wire)
  double interCycles = 0;       // IPU-Link share (latency + link serialisation)
  std::size_t instructions = 0; // total transfer instructions (program size)
  std::size_t totalBytes = 0;   // payload bytes pushed into the fabric
  std::size_t interIpuBytes = 0; // bytes crossing links, once per dst IPU
  std::size_t interIpuMessages = 0; // link transfers charged (after aggregation)
  bool crossesIpus = false;
};

/// Prices an exchange superstep. Transfers whose source and destination are
/// the same tile are local copies (no fabric traffic, memcpy-rate on tile).
/// When `traffic` is non-null, every fabric transfer is also recorded into
/// the tile×tile traffic matrix (broadcast payload split integer-exactly
/// over the remote destinations, matching `totalBytes` accounting).
///
/// When `linkFaults` is non-null, severed ordered pairs re-route through the
/// lowest-numbered surviving intermediate chip — both hops are charged and
/// take part in lane congestion like any other stream — degraded pairs
/// multiply their link cost, and a pair with no surviving route raises
/// LinkPartitionedError.
ExchangeStats priceExchange(const IpuTarget& target,
                            const std::vector<Transfer>& transfers,
                            support::TileTrafficMatrix* traffic = nullptr,
                            const LinkFaults* linkFaults = nullptr);

}  // namespace graphene::ipu
