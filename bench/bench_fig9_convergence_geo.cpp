// Figure 9: convergence of PBiCGStab+ILU(0) solver configurations on the
// Geo_1438 stand-in (strongly heterogeneous 3-D FEM).
#include "convergence_common.hpp"

int main() {
  return graphene::bench::runConvergenceFigure(
      "Figure 9", "geo_1438", /*rows=*/4000, /*tiles=*/32,
      /*innerIterations=*/40, /*refinements=*/10, /*shiftScale=*/300.0);
}
