// Fault injection and solver self-healing on the simulated IPU.
//
// Attaches a seeded, JSON-configured fault plan to the engine and solves the
// same MPIR system clean and under fire: one corrupted extended-precision
// residual halo exchange (refinement step 2) plus one corrupted float32 halo
// transfer in the middle of an inner BiCGStab solve. The solvers' guards
// detect the damage — MPIR rolls back to the last good iterate and
// re-refines, the inner solver re-seeds from its checkpoint — and the solve
// still converges. The full fault/repair timeline lands in the profile's
// structured fault log, printed at the end.
//
// Usage: ./example_fault_recovery [rows=1200] [tiles=8]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/engine.hpp"
#include "ipu/fault.hpp"
#include "matrix/generators.hpp"
#include "partition/partition.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;

namespace {

constexpr const char* kSolverJson =
    R"({"type":"mpir","extendedType":"doubleword",
        "maxRefinements":20,"tolerance":1e-11,
        "inner":{"type":"bicgstab","maxIterations":30,"tolerance":0,
                 "preconditioner":{"type":"ilu"}}})";

struct Outcome {
  solver::SolveResult result;
  ipu::Profile profile;
  // Discovered on the clean run: the extended-precision residual halo tensor
  // and how many point-to-point transfers one halo exchange performs. A
  // fault plan can use these to pin a corruption to one specific exchange.
  std::string extHaloName;
  std::size_t transfersPerExchange = 0;
};

Outcome solveWith(const matrix::GeneratedMatrix& problem, std::size_t tiles,
                  ipu::FaultPlan* plan) {
  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::buildLayout(
      problem.matrix, partition::partitionAuto(problem, tiles), tiles);
  const std::size_t perExchange = layout.transfers.size();
  solver::DistMatrix A(problem.matrix, std::move(layout));
  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");
  auto solver = solver::makeSolverFromString(kSolverJson);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  if (plan != nullptr) {
    plan->reset();
    engine.setFaultPlan(plan);
  }
  A.upload(engine);
  Rng rng(2024);
  std::vector<double> rhs(problem.matrix.rows());
  for (double& v : rhs) {
    v = static_cast<double>(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());

  Outcome out;
  out.result = solver->result();
  out.profile = engine.profile();
  out.transfersPerExchange = perExchange;
  for (std::size_t i = 0; i < ctx.graph().numTensors(); ++i) {
    const auto& info = ctx.graph().tensor(static_cast<graph::TensorId>(i));
    if (info.dtype == dsl::DType::DoubleWord &&
        info.name.rfind("halo", 0) == 0) {
      out.extHaloName = info.name;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
  const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  auto problem = matrix::g3CircuitLike(rows);
  std::printf("matrix: %s, %zu rows, %zu nnz, %zu simulated tiles\n\n",
              problem.name.c_str(), problem.matrix.rows(),
              problem.matrix.nnz(), tiles);

  Outcome clean = solveWith(problem, tiles, nullptr);

  // The fault plan, built from what the clean run told us about the program:
  //  - one flipped bit in the DoubleWord residual halo of refinement step 2
  //    (skip = 2 exchanges' worth of transfers into that tensor's traffic);
  //  - one corrupted float32 halo transfer deep inside an inner BiCGStab
  //    solve. Everything is seeded: rerunning this binary reproduces the
  //    exact same fault sequence, byte for byte.
  std::string planJson = R"({
    "seed": 42,
    "faults": [
      {"type": "exchange-corrupt", "tensor": ")" +
                         clean.extHaloName + R"(", "bit": 30,
       "skip": )" + std::to_string(2 * clean.transfersPerExchange) +
                         R"(, "count": 1},
      {"type": "exchange-corrupt", "tensor": "halo", "bit": 30,
       "skip": 10000, "count": 1}
    ]
  })";
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(planJson);
  Outcome faulted = solveWith(problem, tiles, &plan);

  std::printf("%-18s %-16s %14s %10s %10s\n", "run", "status",
              "rel. residual", "restarts", "rollbacks");
  std::printf("%-18s %-16s %14.3e %10zu %10zu\n", "clean",
              solver::toString(clean.result.status), clean.result.finalResidual,
              clean.result.restarts, clean.result.rollbacks);
  std::printf("%-18s %-16s %14.3e %10zu %10zu\n", "under faults",
              solver::toString(faulted.result.status),
              faulted.result.finalResidual, faulted.result.restarts,
              faulted.result.rollbacks);

  std::printf("\nfault log (%zu events):\n%s",
              faulted.profile.faultEvents.size(),
              ipu::formatFaultEvents(faulted.profile.faultEvents).c_str());
  std::printf(
      "\nEvery injected fault and every recovery action appears above in"
      "\nexecution order; with the same seed the log is reproduced exactly.\n");
  return 0;
}
