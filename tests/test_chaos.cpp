// Chaos campaigns: randomized fault plans against the full recovery stack.
//
// Covers: the grand campaign (dozens of seeded campaigns across CG /
// BiCGStab / MPIR and 2-D / 3-D matrices, mixing transient and hard faults
// — every one must converge-for-real or fail typed, and every fault log
// must round-trip through JSON); ABFT catching *finite* SpMV corruption a
// NaN guard can't see; a dead tile surviving via blacklist + live remap
// with the recovery visible in the fault log, the trace timeline and the
// resilience.* metrics; remap decisions and fault logs being byte-identical
// at any host thread count; and a persistent-corruption campaign ending in
// the typed CorruptionDetected verdict.
#include <gtest/gtest.h>

#include "chaos_common.hpp"

using namespace graphene;
using namespace chaos;

namespace {

std::string describe(const json::Value& plan) { return plan.dump(); }

bool logContains(const std::vector<ipu::FaultEvent>& log,
                 const std::string& kind) {
  for (const auto& e : log) {
    if (e.kind == kind) return true;
  }
  return false;
}

}  // namespace

// The flagship: many seeded campaigns, every solver, mixed fault classes.
// GRAPHENE_CHAOS_CAMPAIGNS overrides the count (CI caps the sanitizer run).
TEST(Chaos, GrandCampaign) {
  const std::size_t campaigns = campaignCount(51);
  const matrix::GeneratedMatrix m2 = matrix::poisson2d5(10, 10);
  const matrix::GeneratedMatrix m3 = matrix::poisson3d7(5, 5, 5);
  const char* solvers[] = {"cg", "bicgstab", "mpir"};

  std::size_t hardFaultCampaigns = 0, converged = 0;
  for (std::size_t i = 0; i < campaigns; ++i) {
    const std::string solver = solvers[i % 3];
    const matrix::GeneratedMatrix& g = (i % 2 == 0) ? m2 : m3;
    const bool allowHard = (i % 2 == 1);
    const json::Value plan = randomPlan(i, 8, allowHard);
    if (allowHard) ++hardFaultCampaigns;

    Outcome o = runCampaign(g, solver, i, plan, 8);
    EXPECT_TRUE(holdsInvariant(o))
        << "campaign " << i << " (" << solver << " on " << g.name
        << "), plan: " << describe(plan);
    if (!o.typedError) {
      // The structured fault log survives a JSON round-trip exactly.
      EXPECT_EQ(ipu::faultEventsFromJson(ipu::faultEventsToJson(o.faultLog)),
                o.faultLog)
          << "campaign " << i;
      if (o.status == solver::SolveStatus::Converged) ++converged;
    }
  }
  // The harness isn't vacuous: hard faults were actually in play, and the
  // recovery machinery rescued a decent share of the campaigns.
  EXPECT_GE(hardFaultCampaigns, campaigns / 3);
  EXPECT_GE(converged, campaigns / 4);
}

// ABFT is off by default and literally free when off: no "abft" compute
// category ever appears, and enabling it changes the solve's cost but not
// its answer (the checksum path never writes solver state).
TEST(Chaos, AbftIsFreeWhenDisabledAndInertWhenClean) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  const std::vector<double> rhs(g.matrix.rows(), 1.0);
  auto run = [&](const char* robustness) {
    solver::SolveSession session({.tiles = 4});
    session.load(g).configure(
        std::string(R"({"type": "cg", "maxIterations": 200,
                        "tolerance": 1e-6)") +
        robustness + "}");
    auto result = session.solve(rhs);
    const auto& cycles = session.profile().computeCycles;
    return std::tuple(result.x, cycles.count("abft") > 0,
                      session.profile().totalCycles());
  };

  auto [xOff, abftOff, cyclesOff] = run("");
  auto [xOn, abftOn, cyclesOn] =
      run(R"(, "robustness": {"abft": true, "abftTolerance": 1e-3})");

  EXPECT_FALSE(abftOff) << "abft compute sets emitted while disabled";
  EXPECT_TRUE(abftOn);
  EXPECT_GT(cyclesOn, cyclesOff);  // the checksum supersteps are priced
  EXPECT_EQ(xOff, xOn);            // ...but never touch the solution
}

// A finite bit flip in the SpMV result is invisible to NaN guards — only
// the ABFT checksum sees it. Scan the flip's superstep over the early solve
// so several land in the vulnerable window between the SpMV supersteps and
// the checksum check; every run must keep the invariant and at least one
// must be caught by ABFT specifically.
TEST(Chaos, AbftCatchesFiniteSpmvCorruption) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  std::size_t caught = 0;
  for (std::size_t superstep = 16; superstep <= 48; ++superstep) {
    json::Object f;
    f["type"] = "bitflip";
    f["tensor"] = "cg_Ap";
    f["bit"] = 22.0;  // top mantissa bit: large but finite corruption
    f["probability"] = 1.0;
    f["count"] = 1.0;
    f["superstep"] = static_cast<double>(superstep);
    json::Object plan;
    plan["seed"] = static_cast<double>(superstep);
    plan["faults"] = json::Value(json::Array{json::Value(f)});

    Outcome o = runCampaign(g, "cg", superstep, json::Value(plan), 4);
    EXPECT_TRUE(holdsInvariant(o)) << "flip at superstep " << superstep;
    ASSERT_FALSE(o.typedError) << o.errorMessage;
    if (o.abftMismatches > 0) {
      ++caught;
      EXPECT_TRUE(logContains(o.faultLog, "abft-mismatch"))
          << "counter ticked but no abft-mismatch event at superstep "
          << superstep;
    }
  }
  EXPECT_GE(caught, 1u) << "no scanned flip position was caught by ABFT";
}

// A tile dies mid-solve: the watchdog confirms it, the session blacklists
// it, repartitions over the survivors, migrates the iterate and converges.
// The whole recovery is observable — fault log, trace timeline, metrics.
TEST(Chaos, TileDeadSurvivesViaBlacklistAndRemap) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);
  solver::SolveSession session({.tiles = 8});
  session.load(g)
      .configure(R"({"type": "cg", "maxIterations": 200, "tolerance": 1e-6,
                     "robustness": {"maxRestarts": 2, "checkpointEvery": 8}})")
      .withFaultPlan(json::parse(R"({
        "seed": 5,
        "faults": [{"type": "tile-dead", "tile": 2, "superstep": 30}]
      })"));
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto result = session.solve(rhs);

  EXPECT_EQ(result.solve.status, solver::SolveStatus::Converged)
      << solver::toString(result.solve.status);
  ASSERT_EQ(session.blacklistedTiles().size(), 1u);
  EXPECT_EQ(session.blacklistedTiles()[0], 2u);

  // The recovery ladder is in the fault log...
  const auto& log = session.profile().faultEvents;
  EXPECT_TRUE(logContains(log, "tile-dead"));          // the injected fault
  EXPECT_TRUE(logContains(log, "watchdog-trip"));      // detection
  EXPECT_TRUE(logContains(log, "health:tile-dead"));   // confirmation
  EXPECT_TRUE(logContains(log, "recovery:blacklist")); // recovery
  EXPECT_TRUE(logContains(log, "recovery:remap"));
  // ...in the trace timeline...
  EXPECT_GE(session.trace().recoveryCount(), 2u);
  // ...and in the metrics.
  EXPECT_EQ(session.profile().metrics.counter("resilience.remaps"), 1.0);
  EXPECT_EQ(session.profile().metrics.counter("resilience.blacklisted"), 1.0);

  // No row of the remapped layout lives on the dead tile.
  for (std::size_t t : session.matrix().layout().rowToTile) {
    EXPECT_NE(t, 2u);
  }

  // And x actually solves the system.
  std::vector<double> ax(rhs.size(), 0.0);
  g.matrix.spmv(result.x, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], rhs[i], 1e-3);
  }
}

// The watchdog observes per-tile cycles from the engine's *serial*
// reduction pass, so trips, confirmations, blacklist and remap decisions —
// and hence the fault log and the solution — cannot depend on how many
// host threads simulate the tiles.
TEST(Chaos, RemapDecisionsAreHostThreadCountInvariant) {
  const matrix::GeneratedMatrix g = matrix::poisson3d7(5, 5, 5);
  const json::Value plan = json::parse(R"({
    "seed": 11,
    "faults": [
      {"type": "tile-dead", "tile": 5, "superstep": 25},
      {"type": "bitflip", "tensor": "cg_resid", "bit": 20, "count": 1,
       "superstep": 12},
      {"type": "link-degraded", "tile": 1, "factor": 3.0, "superstep": 8}
    ]
  })");

  Outcome one = runCampaign(g, "cg", 11, plan, 8, /*hostThreads=*/1);
  Outcome three = runCampaign(g, "cg", 11, plan, 8, /*hostThreads=*/3);

  ASSERT_FALSE(one.typedError) << one.errorMessage;
  ASSERT_FALSE(three.typedError) << three.errorMessage;
  EXPECT_EQ(one.status, three.status);
  EXPECT_EQ(one.faultLog, three.faultLog);  // byte-identical fault log
  EXPECT_EQ(one.x, three.x);                // bit-identical solution
  EXPECT_EQ(one.remaps, three.remaps);
}

// Persistently dead SRAM under the SpMV result: every checksum check fails,
// the restart budget drains, and the verdict is the *typed*
// CorruptionDetected — not a crash, not a silent wrong answer.
TEST(Chaos, PersistentCorruptionEndsTyped) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  const json::Value plan = json::parse(R"({
    "seed": 3,
    "faults": [{"type": "sram-region-dead", "tensor": "cg_Ap",
                "elements": 4, "superstep": 10}]
  })");
  Outcome o = runCampaign(g, "cg", 3, plan, 4);
  EXPECT_TRUE(holdsInvariant(o));
  ASSERT_FALSE(o.typedError) << o.errorMessage;
  EXPECT_NE(o.status, solver::SolveStatus::Converged);
}
