// JSON-driven solver factory (§V: "The solver hierarchy and associated
// parameters are easily configured through a JSON file").
#include "solver/solvers.hpp"
#include "support/error.hpp"

namespace graphene::solver {

namespace {

DType parseExtendedType(const std::string& s) {
  if (s == "doubleword" || s == "dw") return DType::DoubleWord;
  if (s == "float64" || s == "double" || s == "dp") return DType::Float64;
  if (s == "float32" || s == "float" || s == "none") return DType::Float32;
  GRAPHENE_CHECK(false, "unknown extended type '", s, "'");
  return DType::Float32;
}

}  // namespace

RobustnessOptions parseRobustness(const json::Value& config) {
  RobustnessOptions opts;
  if (!config.isObject() || !config.contains("robustness")) return opts;
  const json::Value& r = config.at("robustness");
  GRAPHENE_CHECK(r.isObject(), "'robustness' must be a JSON object");
  opts.maxRestarts = static_cast<std::size_t>(
      r.getOr("maxRestarts", static_cast<std::int64_t>(opts.maxRestarts)));
  opts.divergenceFactor = r.getOr("divergenceFactor", opts.divergenceFactor);
  opts.breakdownTolerance =
      r.getOr("breakdownTolerance", opts.breakdownTolerance);
  opts.checkpointEvery = static_cast<std::size_t>(r.getOr(
      "checkpointEvery", static_cast<std::int64_t>(opts.checkpointEvery)));
  opts.maxRollbacks = static_cast<std::size_t>(
      r.getOr("maxRollbacks", static_cast<std::int64_t>(opts.maxRollbacks)));
  opts.residualGrowthFactor =
      r.getOr("residualGrowthFactor", opts.residualGrowthFactor);
  GRAPHENE_CHECK(opts.divergenceFactor > 0.0,
                 "robustness.divergenceFactor must be positive");
  GRAPHENE_CHECK(opts.breakdownTolerance >= 0.0,
                 "robustness.breakdownTolerance must be non-negative");
  GRAPHENE_CHECK(opts.residualGrowthFactor > 1.0,
                 "robustness.residualGrowthFactor must exceed 1");
  return opts;
}

std::unique_ptr<Solver> makeSolver(const json::Value& config) {
  GRAPHENE_CHECK(config.isObject(), "solver config must be a JSON object");
  const std::string type = config.at("type").asString();

  if (type == "identity" || type == "none") {
    return std::make_unique<IdentitySolver>();
  }
  if (type == "jacobi") {
    return std::make_unique<JacobiSolver>(
        static_cast<std::size_t>(config.getOr("iterations", 3)),
        static_cast<float>(config.getOr("omega", 1.0)));
  }
  if (type == "gauss-seidel" || type == "gaussseidel" || type == "gs") {
    return std::make_unique<GaussSeidelSolver>(
        static_cast<std::size_t>(config.getOr("sweeps", 1)),
        config.getOr("tolerance", 0.0),
        static_cast<std::size_t>(config.getOr("maxIterations", 1000)));
  }
  if (type == "ilu") {
    return std::make_unique<IluSolver>(IluSolver::Variant::Ilu0);
  }
  if (type == "dilu") {
    return std::make_unique<IluSolver>(IluSolver::Variant::Dilu);
  }
  if (type == "richardson") {
    return std::make_unique<RichardsonSolver>(
        static_cast<std::size_t>(config.getOr("iterations", 10)),
        static_cast<float>(config.getOr("omega", 0.5)));
  }
  if (type == "bicgstab" || type == "cg") {
    std::unique_ptr<Solver> precond;
    if (config.contains("preconditioner")) {
      precond = makeSolver(config.at("preconditioner"));
    } else {
      precond = std::make_unique<IdentitySolver>();
    }
    const auto maxIterations =
        static_cast<std::size_t>(config.getOr("maxIterations", 1000));
    const double tolerance = config.getOr("tolerance", 1e-9);
    if (type == "cg") {
      return std::make_unique<CgSolver>(maxIterations, tolerance,
                                        std::move(precond),
                                        parseRobustness(config));
    }
    return std::make_unique<BiCgStabSolver>(maxIterations, tolerance,
                                            std::move(precond),
                                            parseRobustness(config));
  }
  if (type == "mpir" || type == "ir") {
    GRAPHENE_CHECK(config.contains("inner"),
                   "mpir solver needs an 'inner' solver config");
    return std::make_unique<MpirSolver>(
        parseExtendedType(config.getOr("extendedType",
                                       std::string("doubleword"))),
        static_cast<std::size_t>(config.getOr("maxRefinements", 20)),
        config.getOr("tolerance", 1e-13), makeSolver(config.at("inner")),
        parseRobustness(config));
  }
  GRAPHENE_CHECK(false, "unknown solver type '", type, "'");
  return nullptr;
}

std::unique_ptr<Solver> makeSolverFromString(const std::string& jsonText) {
  return makeSolver(json::parse(jsonText));
}

}  // namespace graphene::solver
