#include "ipu/topology.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace graphene::ipu {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnvDouble(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return fnv1a(h, bits);
}

}  // namespace

Topology::Topology() : target_(IpuTarget{}) {}

Topology Topology::singleIpu(std::size_t tiles) {
  GRAPHENE_CHECK(tiles >= 1, "Topology::singleIpu: need at least one tile");
  IpuTarget t;
  t.tilesPerIpu = tiles;
  t.numIpus = 1;
  return Topology(t);
}

Topology Topology::pod(std::size_t ipus, std::size_t tilesPerIpu,
                       LinkModel link) {
  GRAPHENE_CHECK(ipus >= 1, "Topology::pod: need at least one IPU");
  GRAPHENE_CHECK(tilesPerIpu >= 1, "Topology::pod: need at least one tile per IPU");
  GRAPHENE_CHECK(link.bytesPerSecond > 0, "Topology::pod: link bandwidth must be positive");
  GRAPHENE_CHECK(link.latencyCycles >= 0, "Topology::pod: link latency must be non-negative");
  GRAPHENE_CHECK(link.linksPerIpu >= 1, "Topology::pod: need at least one link lane");
  IpuTarget t;
  t.tilesPerIpu = tilesPerIpu;
  t.numIpus = ipus;
  t.linkBytesPerSecond = link.bytesPerSecond;
  t.linkLatencyCycles = link.latencyCycles;
  t.linksPerIpu = link.linksPerIpu;
  t.aggregateInterIpuHalo = link.aggregateHalo;
  return Topology(t);
}

Topology Topology::fromTarget(const IpuTarget& target) {
  GRAPHENE_CHECK(target.tilesPerIpu >= 1 && target.numIpus >= 1,
                 "Topology::fromTarget: degenerate target shape");
  return Topology(target);
}

Topology Topology::withoutIpus(const std::vector<std::size_t>& dead) const {
  Topology out = *this;
  for (std::size_t ipu : dead) {
    GRAPHENE_CHECK(ipu < target_.numIpus, "Topology::withoutIpus: chip ", ipu,
                   " out of range for ", describe());
    out.deadIpus_.push_back(ipu);
  }
  std::sort(out.deadIpus_.begin(), out.deadIpus_.end());
  out.deadIpus_.erase(
      std::unique(out.deadIpus_.begin(), out.deadIpus_.end()),
      out.deadIpus_.end());
  GRAPHENE_CHECK(out.deadIpus_.size() < target_.numIpus,
                 "Topology::withoutIpus: cannot shrink away every chip of ",
                 describe());
  return out;
}

bool Topology::ipuAlive(std::size_t ipu) const {
  return ipu < target_.numIpus &&
         !std::binary_search(deadIpus_.begin(), deadIpus_.end(), ipu);
}

LinkModel Topology::link() const {
  LinkModel l;
  l.bytesPerSecond = target_.linkBytesPerSecond;
  l.latencyCycles = target_.linkLatencyCycles;
  l.linksPerIpu = target_.linksPerIpu;
  l.aggregateHalo = target_.aggregateInterIpuHalo;
  return l;
}

std::uint64_t Topology::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, target_.numIpus);
  h = fnv1a(h, target_.tilesPerIpu);
  h = fnvDouble(h, target_.linkBytesPerSecond);
  h = fnvDouble(h, target_.linkLatencyCycles);
  h = fnv1a(h, target_.linksPerIpu);
  h = fnv1a(h, target_.aggregateInterIpuHalo ? 1 : 0);
  h = fnv1a(h, deadIpus_.size());
  for (std::size_t ipu : deadIpus_) h = fnv1a(h, ipu + 1);
  return h;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << target_.numIpus << " IPU x " << target_.tilesPerIpu << " tiles";
  if (!deadIpus_.empty()) {
    os << " (chips down:";
    for (std::size_t ipu : deadIpus_) os << " " << ipu;
    os << ")";
  }
  return os.str();
}

bool Topology::operator==(const Topology& o) const {
  return target_.numIpus == o.target_.numIpus &&
         target_.tilesPerIpu == o.target_.tilesPerIpu && link() == o.link() &&
         deadIpus_ == o.deadIpus_;
}

}  // namespace graphene::ipu
