// Per-tile SRAM accounting.
//
// Each tile's 612 kB SRAM is exclusively accessible by its core (§II-A);
// every tensor region mapped to a tile consumes part of that budget. The
// ledger enforces the budget at graph-construction time — the simulated
// equivalent of Poplar's out-of-memory compile error.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ipu/target.hpp"
#include "support/error.hpp"

namespace graphene::ipu {

class TileMemoryLedger {
 public:
  explicit TileMemoryLedger(const IpuTarget& target)
      : budget_(target.sramBytesPerTile),
        used_(target.totalTiles(), 0),
        highWater_(target.totalTiles(), 0) {}

  /// Reserves `bytes` on `tile`; throws ResourceError when the tile SRAM
  /// budget would be exceeded.
  void allocate(std::size_t tile, std::size_t bytes, const std::string& what) {
    GRAPHENE_CHECK(tile < used_.size(), "tile out of range");
    if (used_[tile] + bytes > budget_) {
      throw ResourceError("tile " + std::to_string(tile) +
                          " SRAM exceeded allocating " +
                          std::to_string(bytes) + " B for '" + what +
                          "' (used " + std::to_string(used_[tile]) + " of " +
                          std::to_string(budget_) + " B)");
    }
    used_[tile] += bytes;
    if (used_[tile] > highWater_[tile]) highWater_[tile] = used_[tile];
  }

  void release(std::size_t tile, std::size_t bytes) {
    GRAPHENE_CHECK(tile < used_.size(), "tile out of range");
    GRAPHENE_CHECK(bytes <= used_[tile], "releasing more than allocated");
    used_[tile] -= bytes;
  }

  std::size_t used(std::size_t tile) const {
    GRAPHENE_CHECK(tile < used_.size(), "tile out of range");
    return used_[tile];
  }

  /// Highest occupancy `tile` ever reached (release never lowers it) — the
  /// number that decides whether a plan fits, even if memory was freed later.
  std::size_t highWater(std::size_t tile) const {
    GRAPHENE_CHECK(tile < highWater_.size(), "tile out of range");
    return highWater_[tile];
  }

  std::size_t budget() const { return budget_; }

  /// Largest per-tile usage — the tile that limits problem size.
  std::size_t peakUsed() const {
    std::size_t peak = 0;
    for (std::size_t u : used_) peak = std::max(peak, u);
    return peak;
  }

 private:
  std::size_t budget_;
  std::vector<std::size_t> used_;
  std::vector<std::size_t> highWater_;
};

}  // namespace graphene::ipu
