// SolveSession facade and the strictly validated solver-config factory.
//
// Covers: the load → configure → solve flow (result, history, trace and
// profile all populated); calls out of order fail with messages naming the
// missing step; repeated solves on one session are independent; unknown or
// ill-typed config keys are rejected naming the offending key and listing
// the valid ones (both makeSolver and makeSolverFromString); the
// preconditioner() chain walk.
#include <gtest/gtest.h>

#include <cmath>

#include "graphene.hpp"

using namespace graphene;
using namespace graphene::solver;

namespace {

/// EXPECT_THROW with a message-content check.
template <typename Fn>
std::string messageOf(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST(SolveSession, OneStopSolveFlow) {
  SolveSession session({.tiles = 4});
  session.load(matrix::poisson2d5(8, 8)).configure(R"({
    "type": "cg", "tolerance": 1e-6, "maxIterations": 200
  })");
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto result = session.solve(rhs);

  EXPECT_EQ(result.solve.status, SolveStatus::Converged);
  EXPECT_EQ(result.x.size(), rhs.size());
  EXPECT_FALSE(result.history.empty());
  EXPECT_GT(result.simulatedSeconds, 0.0);
  EXPECT_LT(result.solve.finalResidual, 1e-5);

  // Observability comes along for free: the trace saw every iteration and
  // the profile has per-category cycles.
  EXPECT_EQ(session.trace().iterationCount(), result.history.size());
  EXPECT_EQ(support::traceComputeCycles(session.trace()),
            session.profile().computeCycles);
  EXPECT_TRUE(session.traceChromeJson().isObject());

  // x actually solves the system (checked on the host in double).
  const auto& A = matrix::poisson2d5(8, 8).matrix;
  std::vector<double> ax(A.rows());
  A.spmv(result.x, ax);
  double maxErr = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    maxErr = std::max(maxErr, std::abs(ax[i] - rhs[i]));
  }
  EXPECT_LT(maxErr, 1e-3);
}

TEST(SolveSession, RepeatedSolvesAreIndependent) {
  SolveSession session({.tiles = 4});
  session.load(matrix::poisson2d5(8, 8)).configure(R"({
    "type": "cg", "tolerance": 1e-6, "maxIterations": 200
  })");
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto first = session.solve(rhs);
  auto second = session.solve(rhs);

  // Same program, fresh engine: bit-identical outcome, history not
  // accumulated across solves, trace re-armed.
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.history.size(), second.history.size());
  EXPECT_EQ(session.trace().iterationCount(), second.history.size());
}

TEST(SolveSession, OrderingErrorsNameTheMissingStep) {
  {
    SolveSession s;
    std::vector<double> rhs(10, 1.0);
    EXPECT_NE(messageOf([&] { s.solve(rhs); }).find("load()"),
              std::string::npos);
    EXPECT_NE(messageOf([&] { s.matrix(); }).find("load()"),
              std::string::npos);
    EXPECT_NE(messageOf([&] { s.solver(); }).find("configure()"),
              std::string::npos);
    EXPECT_NE(messageOf([&] { s.profile(); }).find("solve()"),
              std::string::npos);
  }
  {
    SolveSession s({.tiles = 4});
    s.load(matrix::poisson2d5(8, 8));
    std::vector<double> rhs(s.matrix().rows(), 1.0);
    EXPECT_NE(messageOf([&] { s.solve(rhs); }).find("configure()"),
              std::string::npos);
    EXPECT_THROW(s.load(matrix::poisson2d5(8, 8)), Error);  // only once
    // Wrong-sized rhs is caught before anything runs.
    s.configure(R"({"type": "cg"})");
    std::vector<double> bad(3, 1.0);
    EXPECT_NE(messageOf([&] { s.solve(bad); }).find("rows"),
              std::string::npos);
  }
}

TEST(ConfigValidation, UnknownKeyNamesItAndListsValidOnes) {
  const char* text = R"({"type": "cg", "tolerence": 1e-6})";
  std::string msg = messageOf([&] { makeSolverFromString(text); });
  EXPECT_NE(msg.find("tolerence"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tolerance"), std::string::npos) << msg;     // listed
  EXPECT_NE(msg.find("maxIterations"), std::string::npos) << msg; // listed

  // Same through the pre-parsed entry point.
  json::Object cfg;
  cfg["type"] = "jacobi";
  cfg["sweeps"] = 2;  // gauss-seidel key, not a jacobi key
  std::string msg2 = messageOf([&] { makeSolver(json::Value(cfg)); });
  EXPECT_NE(msg2.find("sweeps"), std::string::npos) << msg2;
  EXPECT_NE(msg2.find("iterations"), std::string::npos) << msg2;
}

TEST(ConfigValidation, WrongTypeNamesTheKey) {
  std::string msg = messageOf(
      [&] { makeSolverFromString(R"({"type": "cg", "tolerance": "tight"})"); });
  EXPECT_NE(msg.find("tolerance"), std::string::npos) << msg;
  EXPECT_NE(msg.find("number"), std::string::npos) << msg;

  // Nested configs are validated too (preconditioner of a cg).
  std::string nested = messageOf([&] {
    makeSolverFromString(
        R"({"type": "cg", "preconditioner": {"type": "ilu", "fill": 2}})");
  });
  EXPECT_NE(nested.find("fill"), std::string::npos) << nested;

  // Robustness sub-keys as well.
  std::string rob = messageOf([&] {
    makeSolverFromString(
        R"({"type": "cg", "robustness": {"maxRestart": 1}})");
  });
  EXPECT_NE(rob.find("maxRestart"), std::string::npos) << rob;
  EXPECT_NE(rob.find("maxRestarts"), std::string::npos) << rob;
}

TEST(ConfigValidation, MissingOrUnknownTypeListsValidTypes) {
  std::string noType = messageOf([&] { makeSolverFromString(R"({})"); });
  EXPECT_NE(noType.find("type"), std::string::npos) << noType;
  EXPECT_NE(noType.find("bicgstab"), std::string::npos) << noType;

  std::string badType =
      messageOf([&] { makeSolverFromString(R"({"type": "sor"})"); });
  EXPECT_NE(badType.find("sor"), std::string::npos) << badType;
  EXPECT_NE(badType.find("gauss-seidel"), std::string::npos) << badType;
}

TEST(ConfigValidation, ValidConfigsStillBuild) {
  // Every solver type with its full key set parses and builds.
  EXPECT_NE(makeSolverFromString(R"({
    "type": "mpir", "extendedType": "doubleword", "maxRefinements": 5,
    "tolerance": 1e-10,
    "inner": {"type": "bicgstab", "maxIterations": 10, "tolerance": 0,
              "preconditioner": {"type": "dilu"},
              "robustness": {"maxRestarts": 1, "checkpointEvery": 4}},
    "robustness": {"maxRollbacks": 2, "residualGrowthFactor": 50}
  })"),
            nullptr);
  EXPECT_NE(makeSolverFromString(
                R"({"type": "gauss-seidel", "sweeps": 2, "tolerance": 1e-4,
                    "maxIterations": 50})"),
            nullptr);
  EXPECT_NE(makeSolverFromString(
                R"({"type": "richardson", "iterations": 3, "omega": 0.9})"),
            nullptr);
  EXPECT_NE(makeSolverFromString(R"({"type": "identity"})"), nullptr);
}

TEST(SolverChain, PreconditionerWalk) {
  auto mpir = makeSolverFromString(R"({
    "type": "mpir", "maxRefinements": 2, "tolerance": 1e-10,
    "inner": {"type": "bicgstab", "maxIterations": 5, "tolerance": 0,
              "preconditioner": {"type": "ilu"}}
  })");
  EXPECT_EQ(mpir->chainName(), "mpir+bicgstab+ilu");
  ASSERT_NE(mpir->preconditioner(), nullptr);
  EXPECT_EQ(mpir->preconditioner()->name(), "bicgstab");
  EXPECT_EQ(mpir->preconditioner()->preconditioner()->name(), "ilu");

  // Leaf solvers end the chain with the default nullptr.
  auto ilu = makeSolverFromString(R"({"type": "ilu"})");
  EXPECT_EQ(ilu->preconditioner(), nullptr);
  EXPECT_EQ(ilu->chainName(), "ilu");
}
