// Tests for sparse matrix containers, IO and generators.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::matrix;

TEST(Csr, FromTripletsSortsAndMergesDuplicates) {
  std::vector<Triplet> trips = {
      {1, 1, 2.0}, {0, 0, 1.0}, {1, 0, 3.0}, {1, 1, 4.0},  // dup (1,1)
  };
  CsrMatrix a = CsrMatrix::fromTriplets(2, 2, trips);
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

TEST(Csr, DropsExplicitZeroSums) {
  std::vector<Triplet> trips = {{0, 1, 2.0}, {0, 1, -2.0}, {0, 0, 1.0}};
  CsrMatrix a = CsrMatrix::fromTriplets(1, 2, trips);
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(Csr, SpmvMatchesDense) {
  Rng rng(7);
  const std::size_t n = 40;
  std::vector<Triplet> trips;
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (int k = 0; k < 300; ++k) {
    std::size_t r = rng.nextBelow(n), c = rng.nextBelow(n);
    double v = rng.uniform(-2, 2);
    trips.push_back({r, c, v});
    dense[r][c] += v;
  }
  CsrMatrix a = CsrMatrix::fromTriplets(n, n, trips);
  std::vector<double> x(n), y(n), yRef(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-1, 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) yRef[r] += dense[r][c] * x[c];
  }
  a.spmv(x, y);
  for (std::size_t r = 0; r < n; ++r) EXPECT_NEAR(y[r], yRef[r], 1e-12);
}

TEST(Csr, PermutedPreservesEntries) {
  auto g = poisson2d5(5, 4);
  const CsrMatrix& a = g.matrix;
  std::vector<std::size_t> perm(a.rows());
  // Reverse permutation.
  for (std::size_t i = 0; i < a.rows(); ++i) perm[i] = a.rows() - 1 - i;
  CsrMatrix b = a.permuted(perm);
  EXPECT_EQ(b.nnz(), a.nnz());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(b.at(perm[r], perm[c]), a.at(r, c));
    }
  }
}

TEST(Csr, TransposeOfSymmetricIsIdentical) {
  auto g = poisson3d7(5, 4, 3);
  CsrMatrix t = g.matrix.transposed();
  EXPECT_EQ(t.nnz(), g.matrix.nnz());
  for (std::size_t r = 0; r < g.matrix.rows(); ++r) {
    for (std::size_t k = g.matrix.rowPtr()[r]; k < g.matrix.rowPtr()[r + 1];
         ++k) {
      std::size_t c = static_cast<std::size_t>(g.matrix.colIdx()[k]);
      EXPECT_DOUBLE_EQ(t.at(c, r), g.matrix.values()[k]);
    }
  }
}

TEST(ModifiedCrsFormat, RoundTripsAndSavesDiagonalIndices) {
  auto g = poisson3d7(6, 6, 6);
  ModifiedCrs m = ModifiedCrs::fromCsr(g.matrix);
  EXPECT_EQ(m.nnz(), g.matrix.nnz());
  // Off-diagonal storage avoids n column indices (§II-C memory saving).
  EXPECT_EQ(m.colIdx().size(), g.matrix.nnz() - g.matrix.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_DOUBLE_EQ(m.diagonal()[r], 6.0);
  }
  CsrMatrix back = m.toCsr();
  EXPECT_EQ(back.nnz(), g.matrix.nnz());
  for (std::size_t r = 0; r < back.rows(); ++r) {
    for (std::size_t c = 0; c < back.cols(); ++c) {
      EXPECT_DOUBLE_EQ(back.at(r, c), g.matrix.at(r, c));
    }
  }
}

TEST(ModifiedCrsFormat, SpmvMatchesCsr) {
  auto g = afShellLike(2000);
  ModifiedCrs m = ModifiedCrs::fromCsr(g.matrix);
  Rng rng(9);
  std::vector<double> x(g.matrix.rows()), y1(x.size()), y2(x.size());
  for (double& v : x) v = rng.uniform(-1, 1);
  g.matrix.spmv(x, y1);
  m.spmv(x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(ModifiedCrsFormat, RejectsZeroDiagonal) {
  CsrMatrix a = CsrMatrix::fromTriplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0},
                                               {1, 0, 3.0}});
  EXPECT_THROW(ModifiedCrs::fromCsr(a), Error);
}

TEST(MatrixMarket, RoundTrip) {
  auto g = poisson2d5(7, 6);
  std::ostringstream out;
  writeMatrixMarket(g.matrix, out);
  std::istringstream in(out.str());
  CsrMatrix back = readMatrixMarket(in);
  EXPECT_EQ(back.rows(), g.matrix.rows());
  EXPECT_EQ(back.nnz(), g.matrix.nnz());
  for (std::size_t r = 0; r < back.rows(); ++r) {
    for (std::size_t c = 0; c < back.cols(); ++c) {
      EXPECT_DOUBLE_EQ(back.at(r, c), g.matrix.at(r, c));
    }
  }
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  CsrMatrix a = readMatrixMarket(in);
  EXPECT_EQ(a.nnz(), 5u);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.isSymmetric());
}

TEST(MatrixMarket, PatternFilesGetUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  CsrMatrix a = readMatrixMarket(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  auto tryParse = [](const std::string& s) {
    std::istringstream in(s);
    readMatrixMarket(in);
  };
  EXPECT_THROW(tryParse(""), Error);
  EXPECT_THROW(tryParse("%%NotMatrixMarket matrix coordinate real general\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix array real general\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "3 1 1.0\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 2\n"
                        "1 1 1.0\n"),
               Error);  // truncated
}

TEST(MatrixMarket, ErrorsNameTheOffendingLine) {
  auto parseError = [](const std::string& s) -> std::string {
    std::istringstream in(s);
    try {
      readMatrixMarket(in);
    } catch (const ParseError& e) {
      return e.what();
    }
    return "";
  };
  // Out-of-range index on data line 3 (1-based line 3 of the stream).
  std::string msg = parseError(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(3, 1)"), std::string::npos) << msg;
  // Malformed size line is line 2.
  msg = parseError(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 two 1\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(MatrixMarket, RejectsTrailingTokensAndNonFiniteValues) {
  auto tryParse = [](const std::string& s) {
    std::istringstream in(s);
    readMatrixMarket(in);
  };
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1 extra\n"
                        "1 1 1.0\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "1 1 1.0 junk\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "1 1 nan\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "1 1 inf\n"),
               ParseError);
  // Negative or missing sizes.
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "-2 2 1\n"),
               ParseError);
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "0 0 3\n"
                        "1 1 1.0\n"),
               ParseError);
  // Zero-based indices must be rejected (MatrixMarket is 1-based).
  EXPECT_THROW(tryParse("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "0 1 1.0\n"),
               ParseError);
}

TEST(MatrixMarket, CorruptFileFixtureIsRejectedWithClearError) {
  // A deliberately corrupted on-disk fixture: header claims 4 entries but
  // the third has an out-of-range column index.
  const std::string path = "corrupt_fixture.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "% synthetic corruption fixture\n"
        << "3 3 4\n"
        << "1 1 4.0\n"
        << "2 2 4.0\n"
        << "2 9 -1.0\n"
        << "3 3 4.0\n";
  }
  try {
    readMatrixMarketFile(path);
    FAIL() << "corrupt fixture accepted";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(2, 9)"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
  EXPECT_THROW(readMatrixMarketFile("does_not_exist.mtx"), Error);
}

// ---------------------------------------------------------------------------
// Generators: every benchmark matrix must be SPD-shaped (symmetric, full
// nonzero diagonal, diagonally dominant) like the paper's Table II set.
// ---------------------------------------------------------------------------

class GeneratorProperties
    : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorProperties, SymmetricPositiveDefiniteShape) {
  auto g = makeBenchmarkMatrix(GetParam(), 3000);
  const CsrMatrix& a = g.matrix;
  EXPECT_GE(a.rows(), 1500u);
  EXPECT_TRUE(a.isSymmetric(1e-10)) << g.name;
  EXPECT_TRUE(a.hasFullDiagonal()) << g.name;
  // Weak diagonal dominance with positive diagonal ⇒ SPD for these
  // Laplacian-based constructions.
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double diag = 0.0, off = 0.0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      if (static_cast<std::size_t>(col[k]) == r) {
        diag = val[k];
      } else {
        off += std::abs(val[k]);
      }
    }
    ASSERT_GT(diag, 0.0);
    ASSERT_GE(diag + 1e-9 * diag, off) << "row " << r << " of " << g.name;
  }
}

TEST_P(GeneratorProperties, DeterministicForFixedSeed) {
  auto a = makeBenchmarkMatrix(GetParam(), 2000);
  auto b = makeBenchmarkMatrix(GetParam(), 2000);
  ASSERT_EQ(a.matrix.nnz(), b.matrix.nnz());
  for (std::size_t k = 0; k < a.matrix.nnz(); ++k) {
    ASSERT_EQ(a.matrix.values()[k], b.matrix.values()[k]);
    ASSERT_EQ(a.matrix.colIdx()[k], b.matrix.colIdx()[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(BenchmarkMatrices, GeneratorProperties,
                         ::testing::Values("g3_circuit", "af_shell7",
                                           "geo_1438", "hook_1498"));

TEST(Generators, PoissonMatchesTextbookStencil) {
  auto g = poisson3d7(4, 4, 4);
  const CsrMatrix& a = g.matrix;
  EXPECT_EQ(a.rows(), 64u);
  // Interior point: 6 on diagonal, -1 to all six neighbours.
  // Node (1,1,1) has index 1 + 4 + 16 = 21.
  EXPECT_DOUBLE_EQ(a.at(21, 21), 6.0);
  EXPECT_DOUBLE_EQ(a.at(21, 20), -1.0);
  EXPECT_DOUBLE_EQ(a.at(21, 22), -1.0);
  EXPECT_DOUBLE_EQ(a.at(21, 17), -1.0);
  EXPECT_DOUBLE_EQ(a.at(21, 25), -1.0);
  EXPECT_DOUBLE_EQ(a.at(21, 5), -1.0);
  EXPECT_DOUBLE_EQ(a.at(21, 37), -1.0);
  EXPECT_EQ(a.rowNnz(21), 7u);
  // Corner: 3 neighbours.
  EXPECT_EQ(a.rowNnz(0), 4u);
  EXPECT_TRUE(a.isSymmetric());
}

TEST(Generators, NnzPerRowMatchesStructuralClass) {
  // Match the paper's Table II structure classes: G3_circuit ~4.8 nnz/row,
  // af_shell7 ~35, Geo_1438 ~44, Hook_1498 ~40.
  auto stats = [](const char* name) {
    return computeStats(makeBenchmarkMatrix(name, 20000).matrix);
  };
  auto g3 = stats("g3_circuit");
  EXPECT_GT(g3.avgNnzPerRow, 3.5);
  EXPECT_LT(g3.avgNnzPerRow, 6.5);
  auto shell = stats("af_shell7");
  EXPECT_GT(shell.avgNnzPerRow, 18.0);
  EXPECT_LT(shell.avgNnzPerRow, 40.0);
  auto geo = stats("geo_1438");
  EXPECT_GT(geo.avgNnzPerRow, 18.0);
  EXPECT_LT(geo.avgNnzPerRow, 45.0);
  auto hook = stats("hook_1498");
  EXPECT_GT(hook.avgNnzPerRow, 18.0);
  EXPECT_LT(hook.avgNnzPerRow, 45.0);
}
