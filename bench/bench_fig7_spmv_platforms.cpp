// Figure 7 (+ Tables II/III context): SpMV execution time on IPU vs CPU vs
// GPU for the four evaluation matrices.
//
// Scale handling (DESIGN.md §1): the simulated pod has fewer tiles than a
// real POD, but a BSP SpMV's duration is set by the *per-tile* work — so the
// stand-in matrix is sized to the same rows/tile as the real machine
// (Table II rows / 5888 tiles) and the simulated time is additionally
// normalised to the paper matrix's nnz/row. The CPU/GPU rooflines are
// evaluated at the full Table II sizes. A *measured* host SpMV on the
// stand-in is printed as a sanity reference only.
//
// Paper result: IPU beats GPU 13–19x and CPU 55–150x (§VI-D.1).
#include <cstdio>

#include "baseline/cpu_solver.hpp"
#include "baseline/platform.hpp"
#include "bench_common.hpp"

using namespace graphene;

int main() {
  bench::printHeader("Figure 7 — SpMV across platforms",
                     "IPU outperforms GPU 13-19x and CPU 55-150x on SpMV "
                     "(paper Fig. 7)");

  struct Case {
    const char* name;
    std::size_t paperRows;
    std::size_t paperNnz;  // Table II
  };
  const Case cases[] = {{"g3_circuit", 1600000, 7700000},
                        {"af_shell7", 500000, 17600000},
                        {"geo_1438", 1400000, 63100000},
                        {"hook_1498", 1500000, 60900000}};
  const std::size_t realTiles = 5888;  // one M2000 (Table III)
  const std::size_t tilesPerIpu = 64, ipus = 4;
  const std::size_t simTiles = tilesPerIpu * ipus;

  std::printf("simulated M2000: %zu tiles (real: %zu); stand-ins sized to "
              "the real rows/tile\n\n",
              simTiles, realTiles);

  TextTable stats({"matrix (stand-in)", "sim rows", "sim nnz", "nnz/row",
                   "paper rows", "paper nnz"});
  TextTable times({"matrix", "IPU (sim)", "GPU (model)", "CPU (model)",
                   "IPU vs GPU", "IPU vs CPU"});
  TextTable energy({"matrix", "IPU mJ", "GPU mJ", "CPU mJ"});

  bool gpuBandOk = true, cpuBandOk = true;
  for (const Case& c : cases) {
    const std::size_t rowsPerTile = c.paperRows / realTiles;
    auto g = matrix::makeBenchmarkMatrix(c.name, rowsPerTile * simTiles);
    auto st = matrix::computeStats(g.matrix);
    stats.addRow({g.name, std::to_string(st.rows), std::to_string(st.nnz),
                  formatSig(st.avgNnzPerRow, 3), std::to_string(c.paperRows),
                  std::to_string(c.paperNnz)});

    // IPU: simulate one SpMV at matched rows/tile; normalise to the paper's
    // nnz/row (our stand-ins are structurally similar but sparser for the
    // FEM cubes).
    ipu::IpuTarget target;
    target.tilesPerIpu = tilesPerIpu;
    target.numIpus = ipus;
    bench::DistSystem s = bench::makeSystem(g, target);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor y = s.A->makeVector(dsl::DType::Float32, "y");
    s.A->spmv(y, x);
    auto xh = bench::randomRhs(g.matrix.rows());
    auto prof = bench::runProgram(s, s.ctx->program(), xh, x);
    const double nnzNorm =
        (static_cast<double>(c.paperNnz) / static_cast<double>(c.paperRows)) /
        st.avgNnzPerRow;
    const double ipuSec =
        target.secondsFromCycles(prof.totalComputeCycles() * nnzNorm +
                                 prof.exchangeCycles + prof.syncCycles);

    const double gpuSec =
        baseline::spmvSeconds(baseline::h100Sxm(), c.paperRows, c.paperNnz);
    const double cpuSec =
        baseline::spmvSeconds(baseline::xeon8470q(), c.paperRows, c.paperNnz);

    times.addRow({g.name, formatTime(ipuSec), formatTime(gpuSec),
                  formatTime(cpuSec), formatSig(gpuSec / ipuSec, 3) + "x",
                  formatSig(cpuSec / ipuSec, 3) + "x"});
    energy.addRow(
        {g.name,
         formatSig(1e3 * baseline::energyJoules(baseline::m2000(), ipuSec), 3),
         formatSig(1e3 * baseline::energyJoules(baseline::h100Sxm(), gpuSec), 3),
         formatSig(1e3 * baseline::energyJoules(baseline::xeon8470q(), cpuSec),
                   3)});

    if (gpuSec / ipuSec < 4 || gpuSec / ipuSec > 60) gpuBandOk = false;
    if (cpuSec / ipuSec < 30 || cpuSec / ipuSec > 400) cpuBandOk = false;
  }

  std::printf("matrix stand-ins (Table II role):\n%s\n",
              stats.render().c_str());
  std::printf("SpMV times (full Table II scale):\n%s\n",
              times.render().c_str());
  std::printf("energy per SpMV (Table III power figures):\n%s\n",
              energy.render().c_str());
  std::printf("paper bands: IPU/GPU 13-19x, IPU/CPU 55-150x\n");
  std::printf("check: IPU faster than GPU by a similar order (4-60x): %s\n",
              gpuBandOk ? "PASS" : "FAIL");
  std::printf("check: IPU faster than CPU by 1-2 orders (30-400x): %s\n",
              cpuBandOk ? "PASS" : "FAIL");
  return gpuBandOk && cpuBandOk ? 0 : 1;
}
