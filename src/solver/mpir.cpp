// (Mixed-Precision) Iterative Refinement (§V-B).
#include <cmath>

#include "solver/solvers.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void MpirSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  inner_->ensureSetup(a);

  // Extended-precision state (step 1 and 3 operate here).
  Tensor bExt = a.makeVector(extType_, "mpir_b");
  bExt = Expression(b).cast(extType_);
  xExt_ = a.makeVector(extType_, "mpir_x");
  Tensor& xExt = *xExt_;
  {
    // Zero-initialise via a cast of the zeroed working solution.
    x = Expression(0.0f);
    xExt = Expression(x).cast(extType_);
  }
  Tensor rExt = a.makeVector(extType_, "mpir_r");
  Tensor rWork = a.makeVector(DType::Float32, "mpir_rwork");
  Tensor c = a.makeVector(DType::Float32, "mpir_c");

  // ‖b‖² in extended precision for the true relative residual.
  Tensor bNormSq = Tensor(Dot(Expression(bExt), Expression(bExt)));
  Tensor resNormSq = Tensor::scalar(extType_, "mpir_resnormsq");
  resNormSq = Expression(bNormSq);
  Tensor m = Tensor::scalar(DType::Int32, "mpir_m");
  m = Expression(0);

  auto trueHist = trueHistory_;
  Solver* innerRaw = inner_.get();
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();

  const double tol2 = tolerance_ * tolerance_;
  Expression keepGoing =
      Expression(m) < static_cast<int>(maxRefinements_) &&
      Expression(resNormSq).cast(DType::Float64) >
          (Expression(bNormSq) * Expression::constant(graph::Scalar(
                                     static_cast<float>(tol2))))
              .cast(DType::Float64);

  dsl::While(keepGoing, [&] {
    // Step 1: r(m) = b − A x(m), extended precision.
    a.residualExt(rExt, bExt, xExt);
    resNormSq = Dot(Expression(rExt), Expression(rExt));
    dsl::HostCall([trueHist, innerRaw, resId, bId](graph::Engine& e) {
      double rr = e.readScalar(resId).toHostDouble();
      double bb = e.readScalar(bId).toHostDouble();
      trueHist->push_back({innerRaw->history().size(),
                           std::sqrt(std::abs(rr) / std::max(bb, 1e-300))});
    });
    // Step 2: solve A c = r(m) in working precision.
    {
      dsl::Expression narrow = Expression(rExt).cast(DType::Float32);
      narrow.materializeInto(rWork, "extended_precision");
    }
    inner_->apply(a, c, rWork);
    // Step 3: x(m+1) = x(m) + c, extended precision.
    {
      dsl::Expression update =
          Expression(xExt) + Expression(c).cast(extType_);
      update.materializeInto(xExt, "extended_precision");
    }
    m = Expression(m) + 1;
  });

  // The working-precision output is the rounded extended solution.
  x = Expression(xExt).cast(DType::Float32);
}

}  // namespace graphene::solver
