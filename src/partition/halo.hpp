// Halo-region analysis and the paper's matrix reordering strategy (§IV).
//
// Cells (matrix rows) are classified per tile as interior, separator (owned
// but required by neighbours) or halo (owned by neighbours but required
// here). Separator cells with identical *involved-tile sets* form a region;
// the same cell order is used in the separator region and in every
// corresponding halo region, so one blockwise broadcast per region updates
// all copies — no per-cell transfers, no local reordering.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"

namespace graphene::partition {

enum class CellKind { Interior, Separator, Halo };

/// A separator region: the largest group of cells owned by one tile and
/// required by exactly the same set of neighbouring tiles.
struct Region {
  std::size_t id = 0;
  std::size_t ownerTile = 0;
  std::vector<std::size_t> consumerTiles;  // sorted, excludes the owner
  std::vector<std::size_t> cells;          // global row ids, consistent order
};

/// The memory layout of one tile's share of a solution vector (paper
/// Fig. 3b): [ interior | separator regions | halo regions ].
struct TileLayout {
  std::size_t tile = 0;

  /// local index → global row id, covering owned cells then halo copies.
  std::vector<std::size_t> localToGlobal;

  std::size_t numInterior = 0;
  std::size_t numOwned = 0;  // interior + separator cells
  std::size_t numHalo = 0;

  struct RegionRef {
    std::size_t regionId = 0;
    std::size_t localOffset = 0;
  };
  std::vector<RegionRef> separatorRegions;  // owned by this tile
  std::vector<RegionRef> haloRegions;       // consumed from neighbours

  std::size_t localSize() const { return numOwned + numHalo; }
};

/// One blockwise halo transfer: a separator region broadcast from its owner
/// to the halo buffers of all consumer tiles.
struct HaloTransfer {
  std::size_t regionId = 0;
  std::size_t srcTile = 0;
  std::size_t srcLocalOffset = 0;
  std::size_t count = 0;
  struct Dst {
    std::size_t tile = 0;
    std::size_t localOffset = 0;
  };
  std::vector<Dst> dsts;
};

struct DistributedLayout {
  std::size_t numTiles = 0;
  std::vector<std::size_t> rowToTile;
  std::vector<Region> regions;
  std::vector<TileLayout> tiles;
  std::vector<HaloTransfer> transfers;  // blockwise plan: one per region

  /// global row id → local index among its owner tile's owned cells.
  std::vector<std::size_t> globalToLocalOwned;

  std::size_t numSeparatorCells() const {
    std::size_t n = 0;
    for (const Region& r : regions) n += r.cells.size();
    return n;
  }

  std::size_t numHaloCopies() const {
    std::size_t n = 0;
    for (const Region& r : regions) {
      n += r.cells.size() * r.consumerTiles.size();
    }
    return n;
  }

  /// The §IV matrix permutation: rows grouped by tile, interior first, then
  /// separator regions. perm[oldGlobal] = newGlobal.
  std::vector<std::size_t> reorderingPermutation() const;

  CellKind kindOf(std::size_t globalRow, std::size_t onTile) const;
};

/// Builds regions, layouts and the blockwise exchange plan from a matrix and
/// a row→tile assignment. Consumers of row r are the tiles owning rows with
/// a structural entry in column r (computed via the transpose, so
/// nonsymmetric matrices are handled correctly).
DistributedLayout buildLayout(const matrix::CsrMatrix& a,
                              std::vector<std::size_t> rowToTile,
                              std::size_t numTiles);

/// Burchard-style baseline plan for the ablation benchmark: one transfer per
/// separator *cell* instead of per region (what the compiler would emit
/// without the consistent-ordering reordering strategy).
std::vector<HaloTransfer> naivePerCellTransfers(const DistributedLayout& layout);

}  // namespace graphene::partition
