// FlightRecorder — the per-job "black box" of the serving layer.
//
// When a solve job dies in production the postmortem questions are always
// the same: what did the job's timeline look like, which faults fired,
// what did the watchdog see, and which exact configuration was it running?
// Scrolling a service-wide trace ring for that is hopeless once thousands
// of jobs have flowed through it — the ring has long wrapped. The flight
// recorder instead keeps a small bounded buffer *per job* while it runs
// (its lifecycle events, its solver/fault/recovery trace events, the fault
// log and health report of each attempt) and retains the sealed record for
// the last N terminal jobs.
//
// On a failed job the service dumps the record automatically as a JSONL
// artifact (one self-describing object per line — the aviation black box,
// not the whole fleet's radar): a `job` header line with verdict, attempts
// and fingerprints, one `trace` line per buffered event, one `fault` line
// per fault-log entry, and a `health` line with the watchdog report.
// `GET /flight/<id>` serves the same JSONL for any retained job, failed or
// not.
//
// All methods are thread-safe; per-job event buffers are rings (capacity
// `eventCapacity`, oldest dropped, a counter keeps the loss honest), so a
// pathological job cannot grow the recorder without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ipu/profile.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

/// Everything retained about one job. Sealed (verdict set) when the job
/// reaches a terminal state.
struct FlightRecord {
  std::size_t jobId = SIZE_MAX;
  std::string verdict;     // SolveStatus string or "typed-error"
  std::string message;     // error text / rejection reason
  std::size_t attempts = 0;
  bool degraded = false;
  double simCycles = 0;
  double wallSeconds = 0;
  std::uint64_t structureFingerprint = 0;
  std::uint64_t configFingerprint = 0;
  std::uint64_t topologyFingerprint = 0;
  std::string solverConfig;  // canonical compact dump

  /// Buffered timeline: service lifecycle events plus the solver-level
  /// iteration/fault/recovery events of every attempt, oldest first.
  /// Bounded — `droppedEvents` counts what the ring overwrote.
  std::vector<support::TraceEvent> events;
  std::size_t droppedEvents = 0;

  /// Structured fault log of the final attempt (faults injected and
  /// recovery actions taken, execution order).
  std::vector<ipu::FaultEvent> faultLog;
  /// Watchdog health report of the final attempt ({} when none ran).
  json::Value healthReport;
};

class FlightRecorder {
 public:
  /// Keeps sealed records of the last `retainJobs` terminal jobs; each
  /// job's event buffer holds the last `eventCapacity` events.
  explicit FlightRecorder(std::size_t retainJobs = 16,
                          std::size_t eventCapacity = 256);

  /// Opens the in-flight buffer of a job (called at submit). Idempotent.
  void open(std::size_t jobId);

  /// Appends a timeline event to the job's ring. Unknown/never-opened jobs
  /// are ignored — emission sites stay unconditional.
  void record(std::size_t jobId, const support::TraceEvent& event);

  /// Folds one solve attempt's artifacts in: solver/fault/recovery trace
  /// events go through the ring; the fault log and health report replace
  /// the previous attempt's (the final attempt is the one a postmortem
  /// wants, and every attempt's *events* are already in the ring).
  void recordAttempt(std::size_t jobId,
                     const std::vector<support::TraceEvent>& traceEvents,
                     std::vector<ipu::FaultEvent> faultLog,
                     json::Value healthReport);

  /// Seals the record with its terminal header fields and moves it to the
  /// retained ring (evicting the oldest sealed record beyond the
  /// retention). Returns the sealed record — still valid with retention 0,
  /// so a dump-on-failure works even when nothing is retained.
  FlightRecord seal(std::size_t jobId, FlightRecord header);

  /// Copy of a retained (sealed) or in-flight record.
  std::optional<FlightRecord> record(std::size_t jobId) const;
  /// Ids with a retained sealed record, oldest first.
  std::vector<std::size_t> sealedJobs() const;

  std::size_t retainJobs() const { return retainJobs_; }
  std::size_t eventCapacity() const { return eventCapacity_; }

 private:
  struct Buffer {
    FlightRecord record;
    std::size_t ringStart = 0;  // next overwrite position once full
    bool sealed = false;
  };

  mutable std::mutex mu_;
  std::size_t retainJobs_;
  std::size_t eventCapacity_;
  std::map<std::size_t, Buffer> jobs_;
  std::deque<std::size_t> sealedOrder_;
};

/// Serialises a record as the JSONL black-box artifact (see the header
/// comment for the line schema). Deterministic: same record, same bytes.
std::string flightRecordToJsonl(const FlightRecord& record);

/// Writes the artifact as `<dir>/flight-job<id>.jsonl` (dir must exist).
/// Returns the path written. Throws graphene::Error on I/O failure.
std::string dumpFlightRecord(const FlightRecord& record,
                             const std::string& dir);

}  // namespace graphene::solver
