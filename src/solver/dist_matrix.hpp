// DistMatrix — a sparse matrix distributed across the tiles of the simulated
// IPU, in the framework's modified-CRS device format (§II-C) with the §IV
// halo-region layout.
//
// Per tile it holds: the dense diagonal of its owned rows, the off-diagonal
// CRS arrays with *local* column indices into [owned | halo] space, and the
// blockwise halo-exchange plan. SpMV and the extended-precision residual of
// the MPIR method are emitted as CodeDSL codelets using all six workers.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dsl/tensor.hpp"
#include "graph/engine.hpp"
#include "matrix/csr.hpp"
#include "partition/halo.hpp"

namespace graphene::solver {

using dsl::DType;
using dsl::Tensor;

class DistMatrix {
 public:
  /// Builds device structures from a host matrix and a row→tile layout.
  /// Requires an active dsl::Context.
  DistMatrix(const matrix::CsrMatrix& a, partition::DistributedLayout layout);

  const partition::DistributedLayout& layout() const { return layout_; }
  std::size_t rows() const { return layout_.rowToTile.size(); }

  /// Tiles that own at least one row (vertices are only placed there).
  const std::vector<std::size_t>& activeTiles() const { return activeTiles_; }

  /// The per-tile owned-row mapping shared by all solver vectors.
  const graph::TileMapping& ownedMapping() const { return ownedMapping_; }

  /// Creates a vector with the owned-row mapping.
  Tensor makeVector(DType type = DType::Float32,
                    const std::string& name = "") const;

  /// Emits the blockwise halo exchange: separator regions of `v` are
  /// broadcast into this matrix's halo buffer for v's dtype.
  void haloExchange(const Tensor& v);

  /// Emits y = A·v. `exchange=false` skips the halo update (the scaling
  /// benches measure compute-only this way; values in the halo buffer are
  /// then whatever the last exchange left).
  void spmv(Tensor& y, const Tensor& v, bool exchange = true,
            const std::string& category = "spmv");

  /// Emits r = b − A·x with x, b, r all in an extended type (DoubleWord or
  /// Float64); matrix coefficients stay float32 (MPIR step 1, §V-B).
  void residualExt(Tensor& r, const Tensor& b, const Tensor& x);

  /// Uploads the matrix coefficients (must run before the program).
  void upload(graph::Engine& engine) const;

  /// Host→device write of a vector in *global row order* (any dtype).
  void writeVector(graph::Engine& engine, const Tensor& v,
                   std::span<const double> globalValues) const;

  /// Device→host read of a vector back to global row order.
  std::vector<double> readVector(graph::Engine& engine, const Tensor& v) const;

  /// Host-side local structure of one tile's owned submatrix (full rows
  /// including the diagonal, local column indices into [owned | halo]).
  /// Used by the (D)ILU and Gauss-Seidel builders.
  struct TileLocal {
    std::size_t numOwned = 0;
    std::size_t numHalo = 0;
    std::vector<std::size_t> rowPtr;   // numOwned + 1
    std::vector<std::int32_t> col;     // local indices, ascending per row
    std::vector<double> val;
  };
  const std::vector<TileLocal>& tileLocal() const { return tileLocal_; }

  /// Device tensors (for custom codelets).
  Tensor& diagonal() { return *diag_; }
  Tensor& offVal() { return *offVal_; }
  Tensor& offCol() { return *offCol_; }
  Tensor& offRowPtr() { return *offRowPtr_; }
  /// Per row: offset into the off-diagonal arrays where the halo-referencing
  /// entries begin. Local column indices are sorted, and halo copies live
  /// *after* the owned cells (§IV layout), so every row splits into an
  /// owned-column run followed by a halo run — the generated codelets loop
  /// over each run without per-entry branching.
  Tensor& haloSplit() { return *offSplit_; }
  Tensor& haloBuffer(DType type);

  /// Exchange-plan statistics (ablation bench): transfers in the blockwise
  /// plan vs the per-cell baseline.
  std::size_t numBlockwiseTransfers() const { return layout_.transfers.size(); }

 private:
  partition::DistributedLayout layout_;
  graph::TileMapping ownedMapping_;
  graph::TileMapping haloMapping_;
  std::vector<std::size_t> activeTiles_;
  std::vector<std::size_t> ownedFlatOffset_;  // per tile, into owned tensors

  std::vector<TileLocal> tileLocal_;

  // Device tensors (optional: constructed in ctor; pointers keep Tensor
  // default-constructible-free).
  std::optional<Tensor> diag_, offVal_, offCol_, offRowPtr_, offSplit_;
  std::map<DType, Tensor> haloBuffers_;

  // Host staging for upload().
  std::vector<float> diagHost_, valHost_;
  std::vector<std::int32_t> colHost_, rowPtrHost_, splitHost_;
};

}  // namespace graphene::solver
