#include "dsl/interpreter.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ipu/worker_pool.hpp"
#include "support/error.hpp"

namespace graphene::dsl {

using graph::promote;
using twofloat::Float2;
using twofloat::SoftDouble;

namespace {

template <typename T>
Scalar binNumeric(BinOp op, T a, T b) {
  switch (op) {
    case BinOp::Add: return Scalar(a + b);
    case BinOp::Sub: return Scalar(a - b);
    case BinOp::Mul: return Scalar(a * b);
    case BinOp::Div: return Scalar(a / b);
    case BinOp::Lt: return Scalar(a < b);
    case BinOp::Le: return Scalar(a <= b);
    case BinOp::Gt: return Scalar(a > b);
    case BinOp::Ge: return Scalar(a >= b);
    case BinOp::Eq: return Scalar(a == b);
    case BinOp::Ne: return Scalar(!(a == b));
    case BinOp::Min: return Scalar(b < a ? b : a);
    case BinOp::Max: return Scalar(a < b ? b : a);
    default: break;
  }
  GRAPHENE_UNREACHABLE("binary op not defined for this type");
}

}  // namespace

Scalar evalBinaryScalar(BinOp op, const Scalar& lhs, const Scalar& rhs) {
  DType common = promote(lhs.type(), rhs.type());
  // Logic ops work on bools without promotion.
  if (op == BinOp::And || op == BinOp::Or) {
    bool a = lhs.truthy(), b = rhs.truthy();
    return Scalar(op == BinOp::And ? (a && b) : (a || b));
  }
  if (common == DType::Bool) common = DType::Int32;  // bool arithmetic
  Scalar a = lhs.castTo(common);
  Scalar b = rhs.castTo(common);
  switch (common) {
    case DType::Int32: {
      if (op == BinOp::Mod) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer modulo by zero in codelet");
        return Scalar(a.asInt() % b.asInt());
      }
      if (op == BinOp::Div) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer division by zero in codelet");
      }
      return binNumeric<std::int32_t>(op, a.asInt(), b.asInt());
    }
    case DType::Float32:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<float>(op, a.asFloat(), b.asFloat());
    case DType::Float64:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<SoftDouble>(op, a.asSoftDouble(), b.asSoftDouble());
    case DType::DoubleWord:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<Float2>(op, a.asDoubleWord(), b.asDoubleWord());
    default:
      break;
  }
  GRAPHENE_UNREACHABLE("bad promoted type");
}

Scalar evalUnaryScalar(UnOp op, const Scalar& x) {
  switch (op) {
    case UnOp::Not:
      return Scalar(!x.truthy());
    case UnOp::Neg:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: return Scalar(-x.castTo(DType::Int32).asInt());
        case DType::Float32: return Scalar(-x.asFloat());
        case DType::Float64: return Scalar(-x.asSoftDouble());
        case DType::DoubleWord: return Scalar(-x.asDoubleWord());
      }
      break;
    case UnOp::Abs:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: {
          std::int32_t v = x.castTo(DType::Int32).asInt();
          return Scalar(v < 0 ? -v : v);
        }
        case DType::Float32: return Scalar(std::fabs(x.asFloat()));
        case DType::Float64: return Scalar(SoftDouble::abs(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::abs(x.asDoubleWord()));
      }
      break;
    case UnOp::Sqrt:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32:
        case DType::Float32:
          return Scalar(std::sqrt(x.castTo(DType::Float32).asFloat()));
        case DType::Float64: return Scalar(SoftDouble::sqrt(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::sqrt(x.asDoubleWord()));
      }
      break;
  }
  GRAPHENE_UNREACHABLE("bad unary op");
}

// ---------------------------------------------------------------------------
// Flattening: shared_ptr statement trees → index-linked arrays.
// ---------------------------------------------------------------------------

namespace {

class Flattener {
 public:
  explicit Flattener(FlatCodelet& out) : out_(out) {}

  std::int32_t expr(const ExprPtr& e) {
    if (!e) return -1;
    FlatExpr fe;
    fe.kind = e->kind;
    fe.type = e->type;
    fe.constant = e->constant;
    fe.var = e->var;
    fe.arg = e->arg;
    fe.bop = e->bop;
    fe.uop = e->uop;
    fe.a = expr(e->a);
    fe.b = expr(e->b);
    fe.c = expr(e->c);
    out_.exprs.push_back(fe);
    return static_cast<std::int32_t>(out_.exprs.size()) - 1;
  }

  std::int32_t list(const StmtList& stmts) {
    std::vector<std::int32_t> ids;
    ids.reserve(stmts.size());
    for (const StmtPtr& s : stmts) ids.push_back(stmt(*s));
    out_.lists.push_back(std::move(ids));
    return static_cast<std::int32_t>(out_.lists.size()) - 1;
  }

  std::int32_t stmt(const Stmt& s) {
    FlatStmt fs;
    fs.kind = s.kind;
    fs.var = s.var;
    fs.arg = s.arg;
    fs.index = expr(s.index);
    fs.value = expr(s.value);
    fs.cond = expr(s.cond);
    fs.begin = expr(s.begin);
    fs.end = expr(s.end);
    fs.step = expr(s.step);
    const bool hasBody = s.kind == Stmt::Kind::If || s.kind == Stmt::Kind::While ||
                         s.kind == Stmt::Kind::For || s.kind == Stmt::Kind::ParFor;
    fs.body = hasBody ? list(s.body) : -1;
    fs.elseBody = s.kind == Stmt::Kind::If ? list(s.elseBody) : -1;
    out_.stmts.push_back(fs);
    return static_cast<std::int32_t>(out_.stmts.size()) - 1;
  }

 private:
  FlatCodelet& out_;
};

}  // namespace

FlatCodelet flattenCodelet(const CodeletIR& ir) {
  FlatCodelet out;
  out.numVars = ir.numVars;
  out.usesWorkers = ir.usesWorkers;
  out.numArgs = ir.numArgs;
  Flattener f(out);
  out.root = f.list(ir.statements);
  return out;
}

// ---------------------------------------------------------------------------
// Loop kernels: counted For loops whose bodies are straight-line Float32 /
// Int32 arithmetic are lowered once into a tiny register program ("ops"),
// optionally specialised further into one of the named span kernels. Per-
// iteration cycle charges are priced at compile time from the same cost
// tables the generic walk consults — and every priced constant is an integral
// double, so `n * perIteration` equals n repeated additions exactly and the
// bulk charge is bit-identical to the generic walk's.
// ---------------------------------------------------------------------------

namespace {

ipu::Op costOpFor(BinOp op, DType t) {
  if (t == DType::Int32 || t == DType::Bool) return ipu::Op::IntArith;
  switch (op) {
    case BinOp::Add: return ipu::Op::Add;
    case BinOp::Sub: return ipu::Op::Sub;
    case BinOp::Mul: return ipu::Op::Mul;
    case BinOp::Div: return ipu::Op::Div;
    case BinOp::Mod: return ipu::Op::IntArith;
    case BinOp::And:
    case BinOp::Or: return ipu::Op::Logic;
    default: return ipu::Op::Compare;  // relational, min, max
  }
}

ipu::Op costOpFor(UnOp op) {
  switch (op) {
    case UnOp::Neg: return ipu::Op::Neg;
    case UnOp::Abs: return ipu::Op::Abs;
    case UnOp::Sqrt: return ipu::Op::Sqrt;
    case UnOp::Not: return ipu::Op::Logic;
  }
  return ipu::Op::Logic;
}

struct LoopOp {
  enum class K : std::uint8_t {
    FConst, FMov, FLoad, FStore,
    FAdd, FSub, FMul, FDiv, FMin, FMax,
    FNeg, FAbs, FSqrt, FFromInt,
    IConst, IMov, ILoad,
    IAdd, ISub, IMul, IMin, IMax,
    INeg, IAbs, IFromFloat,
  };
  K k{};
  std::int16_t dst = -1, a = -1, b = -1;
  std::int16_t arg = -1;
  float fimm = 0;
  std::int32_t iimm = 0;
};

/// Recognised whole-loop span kernels (all Float32, unit step): the shapes
/// the solvers' elementwise maps and reductions trace.
struct NamedLoop {
  enum class P : std::uint8_t { None, Copy, Scale, AddVec, Axpy, DotPartial };
  P p = P::None;
  std::int16_t dstArg = -1, aArg = -1, bArg = -1;
  bool sIsConst = false;
  float sConst = 0;
  std::int32_t sVar = -1;
  bool sFirst = false;    // scale factor is the left multiplicand
  bool loadFirst = true;  // axpy: the plain load is the left addend
  bool isSub = false;     // top-level op is Sub
  std::int32_t accVar = -1;
  bool accFirst = true;   // dot: acc is the left addend
  bool dotSingle = false; // acc += a[i] instead of acc += a[i]*b[i]
};

struct LoopKernel {
  static constexpr std::size_t kMaxRegs = 64;
  static constexpr std::size_t kMaxArgs = 16;

  std::vector<LoopOp> ops;
  // Once-per-entry register seeds.
  std::vector<std::pair<std::int16_t, std::int16_t>> sizeSeeds;  // (reg, arg)
  std::int16_t workerReg = -1;
  std::vector<std::pair<std::int32_t, std::int16_t>> seedFloat;  // (var, reg)
  std::vector<std::pair<std::int32_t, std::int16_t>> seedInt;
  // Vars assigned in the body, written back after the last iteration.
  std::vector<std::pair<std::int32_t, std::int16_t>> writeFloat;
  std::vector<std::pair<std::int32_t, std::int16_t>> writeInt;
  // Runtime dtype guards (trace-time types must hold at run time or the
  // kernel is skipped for that execution).
  std::vector<std::int16_t> floatArgs, intArgs;
  int numFloatRegs = 0, numIntRegs = 0;
  // Per-iteration lane charges (priced at compile time).
  double iterFp = 0, iterMem = 0, iterCtrl = 0;
  NamedLoop named;
};

/// Compiles one For statement's body into a LoopKernel, or nothing if the
/// body leaves the supported subset (nested control flow, bools, comparisons,
/// integer division, extended-precision types, …). Bailing is never an error:
/// the generic walk runs the loop instead.
class LoopCompiler {
 public:
  LoopCompiler(const FlatCodelet& flat, const ipu::CostModel& cost)
      : flat_(flat), cost_(cost) {}

  std::optional<LoopKernel> compile(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    if (fs.var < 0 || fs.body < 0) return std::nullopt;
    k_ = LoopKernel{};
    iter_ = ipu::LaneCycles{};
    homes_.clear();
    loopVar_ = fs.var;
    // Int register 0 is the induction variable.
    k_.numIntRegs = 1;
    try {
      for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(fs.body)]) {
        compileStmt(flat_.stmts[static_cast<std::size_t>(sid)]);
      }
    } catch (const Bail&) {
      return std::nullopt;
    }
    k_.iterFp = iter_.fp();
    k_.iterMem = iter_.mem();
    k_.iterCtrl = iter_.ctrl();
    matchNamed(forId);
    return std::move(k_);
  }

 private:
  struct Bail {};
  struct Val {
    std::int16_t reg;
    bool isFloat;
  };
  struct Home {
    std::int16_t reg;
    bool isFloat;
    bool assigned = false;
  };

  [[noreturn]] static void bail() { throw Bail{}; }

  std::int16_t newFloat() {
    if (k_.numFloatRegs >= static_cast<int>(LoopKernel::kMaxRegs)) bail();
    return static_cast<std::int16_t>(k_.numFloatRegs++);
  }
  std::int16_t newInt() {
    if (k_.numIntRegs >= static_cast<int>(LoopKernel::kMaxRegs)) bail();
    return static_cast<std::int16_t>(k_.numIntRegs++);
  }

  void emit(LoopOp::K kk, std::int16_t dst, std::int16_t a = -1,
            std::int16_t b = -1, std::int16_t arg = -1) {
    LoopOp op;
    op.k = kk;
    op.dst = dst;
    op.a = a;
    op.b = b;
    op.arg = arg;
    k_.ops.push_back(op);
  }

  void chargeIter(ipu::Op op, DType t) { iter_.add(cost_, op, t); }

  std::int16_t guardArg(std::int32_t arg, bool isFloat) {
    if (arg < 0 || arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs)) bail();
    auto& list = isFloat ? k_.floatArgs : k_.intArgs;
    const auto a16 = static_cast<std::int16_t>(arg);
    if (std::find(list.begin(), list.end(), a16) == list.end()) list.push_back(a16);
    return a16;
  }

  std::int16_t toInt(Val v) {
    if (!v.isFloat) return v.reg;
    const std::int16_t dst = newInt();
    emit(LoopOp::K::IFromFloat, dst, v.reg);  // matches Scalar::castTo(Int32)
    return dst;
  }

  std::int16_t toFloat(Val v) {
    if (v.isFloat) return v.reg;
    const std::int16_t dst = newFloat();
    emit(LoopOp::K::FFromInt, dst, v.reg);  // matches Scalar::castTo(Float32)
    return dst;
  }

  Val compileExpr(std::int32_t id) {
    if (id < 0) bail();
    const FlatExpr& e = flat_.exprs[static_cast<std::size_t>(id)];
    switch (e.kind) {
      case Expr::Kind::Const: {
        if (e.constant.type() == DType::Float32) {
          const std::int16_t dst = newFloat();
          LoopOp op;
          op.k = LoopOp::K::FConst;
          op.dst = dst;
          op.fimm = e.constant.asFloat();
          k_.ops.push_back(op);
          return {dst, true};
        }
        if (e.constant.type() == DType::Int32) {
          const std::int16_t dst = newInt();
          LoopOp op;
          op.k = LoopOp::K::IConst;
          op.dst = dst;
          op.iimm = e.constant.asInt();
          k_.ops.push_back(op);
          return {dst, false};
        }
        bail();
      }
      case Expr::Kind::Var: {
        if (e.var == loopVar_) return {0, false};
        auto it = homes_.find(e.var);
        if (it != homes_.end()) return {it->second.reg, it->second.isFloat};
        // First touch is a read: the var is loop-carried or loop-invariant;
        // seed its home register from the interpreter's var slot on entry.
        bool isFloat;
        if (e.type == DType::Float32) {
          isFloat = true;
        } else if (e.type == DType::Int32) {
          isFloat = false;
        } else {
          bail();
        }
        const std::int16_t reg = isFloat ? newFloat() : newInt();
        (isFloat ? k_.seedFloat : k_.seedInt).emplace_back(e.var, reg);
        homes_.emplace(e.var, Home{reg, isFloat, false});
        return {reg, isFloat};
      }
      case Expr::Kind::ArgLoad: {
        const std::int16_t idx = toInt(compileExpr(e.a));
        if (e.type == DType::Float32) {
          const std::int16_t arg = guardArg(e.arg, /*isFloat=*/true);
          chargeIter(ipu::Op::Load, DType::Float32);
          const std::int16_t dst = newFloat();
          emit(LoopOp::K::FLoad, dst, idx, -1, arg);
          return {dst, true};
        }
        if (e.type == DType::Int32) {
          const std::int16_t arg = guardArg(e.arg, /*isFloat=*/false);
          chargeIter(ipu::Op::Load, DType::Int32);
          const std::int16_t dst = newInt();
          emit(LoopOp::K::ILoad, dst, idx, -1, arg);
          return {dst, false};
        }
        bail();
      }
      case Expr::Kind::ArgSize: {
        if (e.arg < 0 || e.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs))
          bail();
        const std::int16_t dst = newInt();
        k_.sizeSeeds.emplace_back(dst, static_cast<std::int16_t>(e.arg));
        chargeIter(ipu::Op::IntArith, DType::Int32);
        return {dst, false};
      }
      case Expr::Kind::WorkerId: {
        if (k_.workerReg < 0) k_.workerReg = newInt();
        return {k_.workerReg, false};
      }
      case Expr::Kind::Binary: {
        switch (e.bop) {
          case BinOp::Add: case BinOp::Sub: case BinOp::Mul: case BinOp::Div:
          case BinOp::Min: case BinOp::Max:
            break;
          default:
            bail();  // comparisons/logic produce bools; Mod needs checks
        }
        const Val a = compileExpr(e.a);
        const Val b = compileExpr(e.b);
        if (!a.isFloat && !b.isFloat) {
          if (e.bop == BinOp::Div) bail();  // zero check in generic walk
          chargeIter(ipu::Op::IntArith, DType::Int32);
          const std::int16_t dst = newInt();
          LoopOp::K kk;
          switch (e.bop) {
            case BinOp::Add: kk = LoopOp::K::IAdd; break;
            case BinOp::Sub: kk = LoopOp::K::ISub; break;
            case BinOp::Mul: kk = LoopOp::K::IMul; break;
            case BinOp::Min: kk = LoopOp::K::IMin; break;
            default: kk = LoopOp::K::IMax; break;
          }
          emit(kk, dst, a.reg, b.reg);
          return {dst, false};
        }
        // Promotion to Float32 (casts inside evalBinaryScalar are uncharged).
        const std::int16_t fa = toFloat(a);
        const std::int16_t fb = toFloat(b);
        chargeIter(costOpFor(e.bop, DType::Float32), DType::Float32);
        const std::int16_t dst = newFloat();
        LoopOp::K kk;
        switch (e.bop) {
          case BinOp::Add: kk = LoopOp::K::FAdd; break;
          case BinOp::Sub: kk = LoopOp::K::FSub; break;
          case BinOp::Mul: kk = LoopOp::K::FMul; break;
          case BinOp::Div: kk = LoopOp::K::FDiv; break;
          case BinOp::Min: kk = LoopOp::K::FMin; break;
          default: kk = LoopOp::K::FMax; break;
        }
        emit(kk, dst, fa, fb);
        return {dst, true};
      }
      case Expr::Kind::Unary: {
        if (e.uop == UnOp::Not) bail();
        const Val a = compileExpr(e.a);
        const DType at = a.isFloat ? DType::Float32 : DType::Int32;
        chargeIter(costOpFor(e.uop), at);
        if (e.uop == UnOp::Sqrt) {
          const std::int16_t fa = toFloat(a);  // generic casts ints to f32
          const std::int16_t dst = newFloat();
          emit(LoopOp::K::FSqrt, dst, fa);
          return {dst, true};
        }
        const std::int16_t dst = a.isFloat ? newFloat() : newInt();
        emit(a.isFloat
                 ? (e.uop == UnOp::Neg ? LoopOp::K::FNeg : LoopOp::K::FAbs)
                 : (e.uop == UnOp::Neg ? LoopOp::K::INeg : LoopOp::K::IAbs),
             dst, a.reg);
        return {dst, a.isFloat};
      }
      case Expr::Kind::Cast: {
        const Val a = compileExpr(e.a);
        // Only same-width casts are uncharged and representable here;
        // double-word / float64 targets bail (they would also be charged).
        if (e.type == DType::Float32) return {toFloat(a), true};
        if (e.type == DType::Int32) return {toInt(a), false};
        bail();
      }
      case Expr::Kind::Select:
        bail();  // data-dependent evaluation order
    }
    GRAPHENE_UNREACHABLE("bad expr kind");
  }

  void compileStmt(const FlatStmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        if (s.var == loopVar_) bail();  // rewriting the induction variable
        const Val v = compileExpr(s.value);
        auto it = homes_.find(s.var);
        if (it == homes_.end()) {
          const std::int16_t reg = v.isFloat ? newFloat() : newInt();
          it = homes_.emplace(s.var, Home{reg, v.isFloat, false}).first;
        }
        Home& h = it->second;
        if (h.isFloat != v.isFloat) bail();  // var changes type across loop
        emit(v.isFloat ? LoopOp::K::FMov : LoopOp::K::IMov, h.reg, v.reg);
        if (!h.assigned) {
          h.assigned = true;
          (h.isFloat ? k_.writeFloat : k_.writeInt).emplace_back(s.var, h.reg);
        }
        return;
      }
      case Stmt::Kind::StoreArg: {
        const std::int16_t idx = toInt(compileExpr(s.index));
        const std::int16_t val = toFloat(compileExpr(s.value));
        // Only Float32 destinations: integer spans are read-only views and
        // extended types have no raw span at all.
        const std::int16_t arg = guardArg(s.arg, /*isFloat=*/true);
        chargeIter(ipu::Op::Store, DType::Float32);
        emit(LoopOp::K::FStore, -1, idx, val, arg);
        return;
      }
      case Stmt::Kind::If:
      case Stmt::Kind::While:
      case Stmt::Kind::For:
      case Stmt::Kind::ParFor:
        bail();  // nested control flow stays on the generic walk
    }
    GRAPHENE_UNREACHABLE("bad stmt kind");
  }

  // ---- named-pattern recognition ----------------------------------------

  const FlatExpr& resolve(std::int32_t id,
                          const std::unordered_map<int, std::int32_t>& env) {
    const FlatExpr* e = &flat_.exprs[static_cast<std::size_t>(id)];
    while (e->kind == Expr::Kind::Var) {
      auto it = env.find(e->var);
      if (it == env.end()) break;
      e = &flat_.exprs[static_cast<std::size_t>(it->second)];
    }
    return *e;
  }

  bool isLoopIndex(std::int32_t id,
                   const std::unordered_map<int, std::int32_t>& env) {
    const FlatExpr& e = resolve(id, env);
    return e.kind == Expr::Kind::Var && e.var == loopVar_;
  }

  /// Matches a resolved expression as `args[A][loopVar]` with A Float32.
  bool isLoad(const FlatExpr& e,
              const std::unordered_map<int, std::int32_t>& env,
              std::int16_t& outArg) {
    if (e.kind != Expr::Kind::ArgLoad || e.type != DType::Float32) return false;
    if (!isLoopIndex(e.a, env)) return false;
    outArg = static_cast<std::int16_t>(e.arg);
    return true;
  }

  /// Matches a loop-invariant Float32 scalar: a literal, or a var the body
  /// never assigns (e.g. a hoisted broadcast operand).
  bool isScalar(const FlatExpr& e, const std::unordered_set<int>& assigned,
                NamedLoop& nm) {
    if (e.kind == Expr::Kind::Const && e.constant.type() == DType::Float32) {
      nm.sIsConst = true;
      nm.sConst = e.constant.asFloat();
      return true;
    }
    if (e.kind == Expr::Kind::Var && e.type == DType::Float32 &&
        e.var != loopVar_ && assigned.count(e.var) == 0) {
      nm.sVar = e.var;
      return true;
    }
    return false;
  }

  /// Collects every var id read by statements outside this For's body (the
  /// For's own bound expressions count as outside).
  std::unordered_set<int> varsReadOutside(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    std::unordered_set<std::int32_t> bodyStmts;
    for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(fs.body)]) {
      bodyStmts.insert(sid);  // body is straight-line: no nested stmts
    }
    std::unordered_set<int> reads;
    std::function<void(std::int32_t)> walkExpr = [&](std::int32_t id) {
      if (id < 0) return;
      const FlatExpr& e = flat_.exprs[static_cast<std::size_t>(id)];
      if (e.kind == Expr::Kind::Var) reads.insert(e.var);
      walkExpr(e.a);
      walkExpr(e.b);
      walkExpr(e.c);
    };
    for (std::int32_t sid = 0;
         sid < static_cast<std::int32_t>(flat_.stmts.size()); ++sid) {
      if (bodyStmts.count(sid) != 0) continue;
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(sid)];
      walkExpr(s.index);
      walkExpr(s.value);
      walkExpr(s.cond);
      walkExpr(s.begin);
      walkExpr(s.end);
      walkExpr(s.step);
    }
    return reads;
  }

  void matchNamed(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    const auto& body = flat_.lists[static_cast<std::size_t>(fs.body)];
    if (body.empty()) return;
    // Unit step only (absent or literal 1).
    if (fs.step >= 0) {
      const FlatExpr& st = flat_.exprs[static_cast<std::size_t>(fs.step)];
      if (st.kind != Expr::Kind::Const || st.constant.type() != DType::Int32 ||
          st.constant.asInt() != 1) {
        return;
      }
    }
    // All statements but the last must be single-assignment temps.
    std::unordered_map<int, std::int32_t> env;
    std::unordered_set<int> assigned;
    for (std::size_t i = 0; i + 1 < body.size(); ++i) {
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(body[i])];
      if (s.kind != Stmt::Kind::Assign) return;
      if (!env.emplace(s.var, s.value).second) return;  // shadowed def
      assigned.insert(s.var);
    }
    const FlatStmt& last = flat_.stmts[static_cast<std::size_t>(body.back())];

    NamedLoop nm;
    if (last.kind == Stmt::Kind::StoreArg) {
      if (last.arg < 0 ||
          last.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs) ||
          !isLoopIndex(last.index, env)) {
        return;
      }
      nm.dstArg = static_cast<std::int16_t>(last.arg);
      const FlatExpr& v = resolve(last.value, env);
      if (isLoad(v, env, nm.aArg)) {
        nm.p = NamedLoop::P::Copy;
      } else if (v.kind == Expr::Kind::Binary && v.bop == BinOp::Mul) {
        const FlatExpr& l = resolve(v.a, env);
        const FlatExpr& r = resolve(v.b, env);
        if (isScalar(l, assigned, nm) && isLoad(r, env, nm.aArg)) {
          nm.p = NamedLoop::P::Scale;
          nm.sFirst = true;
        } else if (isLoad(l, env, nm.aArg) && isScalar(r, assigned, nm)) {
          nm.p = NamedLoop::P::Scale;
          nm.sFirst = false;
        } else {
          return;
        }
      } else if (v.kind == Expr::Kind::Binary &&
                 (v.bop == BinOp::Add || v.bop == BinOp::Sub)) {
        nm.isSub = v.bop == BinOp::Sub;
        const FlatExpr& l = resolve(v.a, env);
        const FlatExpr& r = resolve(v.b, env);
        auto asMul = [&](const FlatExpr& e, std::int16_t& arg) {
          if (e.kind != Expr::Kind::Binary || e.bop != BinOp::Mul) return false;
          const FlatExpr& ml = resolve(e.a, env);
          const FlatExpr& mr = resolve(e.b, env);
          if (isScalar(ml, assigned, nm) && isLoad(mr, env, arg)) {
            nm.sFirst = true;
            return true;
          }
          if (isLoad(ml, env, arg) && isScalar(mr, assigned, nm)) {
            nm.sFirst = false;
            return true;
          }
          return false;
        };
        if (isLoad(l, env, nm.aArg) && asMul(r, nm.bArg)) {
          nm.p = NamedLoop::P::Axpy;
          nm.loadFirst = true;
        } else if (asMul(l, nm.bArg) && isLoad(r, env, nm.aArg)) {
          nm.p = NamedLoop::P::Axpy;
          nm.loadFirst = false;
        } else if (isLoad(l, env, nm.aArg) && isLoad(r, env, nm.bArg)) {
          nm.p = NamedLoop::P::AddVec;
        } else {
          return;
        }
      } else {
        return;
      }
    } else if (last.kind == Stmt::Kind::Assign) {
      // Reduction partial: acc = acc + X, acc assigned nowhere else.
      if (assigned.count(last.var) != 0) return;
      const FlatExpr& v = resolve(last.value, env);
      if (v.kind != Expr::Kind::Binary || v.bop != BinOp::Add) return;
      const FlatExpr& l = resolve(v.a, env);
      const FlatExpr& r = resolve(v.b, env);
      auto isAcc = [&](const FlatExpr& e) {
        return e.kind == Expr::Kind::Var && e.var == last.var &&
               e.type == DType::Float32;
      };
      const FlatExpr* x = nullptr;
      if (isAcc(l)) {
        nm.accFirst = true;
        x = &r;
      } else if (isAcc(r)) {
        nm.accFirst = false;
        x = &l;
      } else {
        return;
      }
      nm.accVar = last.var;
      if (isLoad(*x, env, nm.aArg)) {
        nm.dotSingle = true;
      } else if (x->kind == Expr::Kind::Binary && x->bop == BinOp::Mul &&
                 isLoad(resolve(x->a, env), env, nm.aArg) &&
                 isLoad(resolve(x->b, env), env, nm.bArg)) {
        nm.dotSingle = false;
      } else {
        return;
      }
      nm.p = NamedLoop::P::DotPartial;
      assigned.insert(last.var);  // counts as assigned for the outside scan
    } else {
      return;
    }

    // The named kernels do not materialise the per-iteration temps, so no
    // statement outside the loop may read them (the accumulator and the
    // induction variable are restored explicitly and are exempt).
    std::unordered_set<int> outside = varsReadOutside(forId);
    for (int v : assigned) {
      if (v == nm.accVar) continue;
      if (outside.count(v) != 0) return;
    }
    k_.named = nm;
  }

  const FlatCodelet& flat_;
  const ipu::CostModel& cost_;
  LoopKernel k_;
  ipu::LaneCycles iter_;
  std::unordered_map<int, Home> homes_;
  int loopVar_ = -1;
};

}  // namespace

// ---------------------------------------------------------------------------
// CompiledCodelet + flat executor.
// ---------------------------------------------------------------------------

class CompiledCodelet {
 public:
  FlatCodelet flat;
  std::vector<LoopKernel> kernels;
  ipu::CostModel cost;
  std::size_t numWorkers = 6;
};

namespace {

std::atomic<bool> g_fastPaths{[] {
  const char* e = std::getenv("GRAPHENE_NO_FASTPATH");
  return !(e != nullptr && e[0] != '\0' && e[0] != '0');
}()};

/// One execution of a compiled codelet over a vertex. Cycle accounting is
/// identical to the original tree-walking interpreter: ops accumulate into a
/// LaneCycles block (fp/mem overlap); control flow flushes the block.
class FlatExec {
 public:
  FlatExec(const CompiledCodelet& cc, graph::VertexContext& ctx)
      : cc_(cc), ctx_(ctx),
        vars_(static_cast<std::size_t>(cc.flat.numVars)),
        fastPaths_(g_fastPaths.load(std::memory_order_relaxed)) {}

  double run() {
    runList(cc_.flat.root);
    flush();
    return total_;
  }

 private:
  void flush() {
    total_ += lanes_.total();
    lanes_ = ipu::LaneCycles{};
  }

  void charge(ipu::Op op, DType t) { lanes_.add(cc_.cost, op, t); }

  void chargeBranch() {
    flush();
    total_ += cc_.cost.workerCycles(ipu::Op::Branch, DType::Int32);
  }

  const FlatExpr& expr(std::int32_t id) const {
    return cc_.flat.exprs[static_cast<std::size_t>(id)];
  }

  Scalar eval(std::int32_t id) {
    GRAPHENE_DCHECK(id >= 0, "null expression");
    const FlatExpr& e = expr(id);
    switch (e.kind) {
      case Expr::Kind::Const:
        return e.constant;
      case Expr::Kind::Var:
        GRAPHENE_DCHECK(e.var >= 0 &&
                            static_cast<std::size_t>(e.var) < vars_.size(),
                        "bad var slot");
        return vars_[static_cast<std::size_t>(e.var)];
      case Expr::Kind::ArgLoad: {
        Scalar idx = eval(e.a);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Load, ctx_.argType(static_cast<std::size_t>(e.arg)));
        return ctx_.load(static_cast<std::size_t>(e.arg),
                         static_cast<std::size_t>(i));
      }
      case Expr::Kind::ArgSize:
        charge(ipu::Op::IntArith, DType::Int32);
        return Scalar(static_cast<std::int32_t>(
            ctx_.argSize(static_cast<std::size_t>(e.arg))));
      case Expr::Kind::Binary: {
        Scalar a = eval(e.a);
        Scalar b = eval(e.b);
        DType common = promote(a.type(), b.type());
        // Mixed double-word × single-word operations use the cheaper
        // DW∘FP algorithms of Joldes et al. (6–10 flops instead of 9–31):
        // price them separately instead of as full DW∘DW (§III-D).
        if (common == DType::DoubleWord && a.type() != b.type() &&
            (a.type() == DType::Float32 || b.type() == DType::Float32)) {
          double cycles = 0;
          switch (e.bop) {
            case BinOp::Add:
            case BinOp::Sub: cycles = 84.0; break;   // DWPlusFP, 10 flops
            case BinOp::Mul: cycles = 42.0; break;   // DWTimesFP3, 6 flops
            case BinOp::Div: cycles = 66.0; break;   // DWDivFP3, 10 flops
            default: cycles = 0; break;              // fall through below
          }
          if (cycles > 0) {
            lanes_.add(ipu::Lane::Fp, cycles);
            return evalBinaryScalar(e.bop, a, b);
          }
        }
        charge(costOpFor(e.bop, common), common);
        return evalBinaryScalar(e.bop, a, b);
      }
      case Expr::Kind::Unary: {
        Scalar a = eval(e.a);
        charge(costOpFor(e.uop), a.type());
        return evalUnaryScalar(e.uop, a);
      }
      case Expr::Kind::Cast: {
        Scalar a = eval(e.a);
        if (a.type() != e.type &&
            (e.type == DType::DoubleWord || e.type == DType::Float64 ||
             a.type() == DType::DoubleWord || a.type() == DType::Float64)) {
          charge(ipu::Op::Cast, e.type);
        }
        return a.castTo(e.type);
      }
      case Expr::Kind::Select: {
        Scalar c = eval(e.a);
        // Single-cycle conditional select on the IPU.
        charge(ipu::Op::Branch, DType::Int32);
        return c.truthy() ? eval(e.b) : eval(e.c);
      }
      case Expr::Kind::WorkerId:
        return Scalar(static_cast<std::int32_t>(worker_));
    }
    GRAPHENE_UNREACHABLE("bad expr kind");
  }

  void runList(std::int32_t listId) {
    if (listId < 0) return;
    for (std::int32_t sid : cc_.flat.lists[static_cast<std::size_t>(listId)]) {
      runStmt(cc_.flat.stmts[static_cast<std::size_t>(sid)]);
    }
  }

  void runStmt(const FlatStmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        Scalar v = eval(s.value);
        GRAPHENE_DCHECK(s.var >= 0 &&
                            static_cast<std::size_t>(s.var) < vars_.size(),
                        "bad var slot");
        vars_[static_cast<std::size_t>(s.var)] = v;
        return;
      }
      case Stmt::Kind::StoreArg: {
        Scalar idx = eval(s.index);
        Scalar v = eval(s.value);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Store, ctx_.argType(static_cast<std::size_t>(s.arg)));
        ctx_.store(static_cast<std::size_t>(s.arg),
                   static_cast<std::size_t>(i), v);
        return;
      }
      case Stmt::Kind::If: {
        Scalar c = eval(s.cond);
        chargeBranch();
        if (c.truthy()) {
          runList(s.body);
        } else {
          runList(s.elseBody);
        }
        return;
      }
      case Stmt::Kind::While: {
        int guard = 0;
        while (true) {
          Scalar c = eval(s.cond);
          chargeBranch();
          if (!c.truthy()) break;
          runList(s.body);
          GRAPHENE_CHECK(++guard < (1 << 26), "runaway While loop in codelet");
        }
        return;
      }
      case Stmt::Kind::For: {
        runFor(s, /*parallel=*/false);
        return;
      }
      case Stmt::Kind::ParFor: {
        runFor(s, /*parallel=*/true);
        return;
      }
    }
    GRAPHENE_UNREACHABLE("bad stmt kind");
  }

  void runFor(const FlatStmt& s, bool parallel) {
    const std::int32_t begin = eval(s.begin).castTo(DType::Int32).asInt();
    const std::int32_t end = eval(s.end).castTo(DType::Int32).asInt();
    const std::int32_t step =
        s.step >= 0 ? eval(s.step).castTo(DType::Int32).asInt() : 1;
    GRAPHENE_CHECK(step > 0, "For loops require a positive step");
    GRAPHENE_DCHECK(s.var >= 0, "loop without induction variable");

    if (!parallel) {
      // Counted loops compile to the IPU's hardware-loop (rpt-style)
      // instructions: setup costs one integer op + branch, iterations carry
      // no bookkeeping overhead.
      charge(ipu::Op::IntArith, DType::Int32);
      chargeBranch();
      if (s.fastLoop >= 0 && fastPaths_ &&
          runFastLoop(cc_.kernels[static_cast<std::size_t>(s.fastLoop)], s,
                      begin, end, step)) {
        return;
      }
      for (std::int32_t i = begin; i < end; i += step) {
        vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
        runList(s.body);
      }
      return;
    }

    // Worker-parallel loop (iputhreading): iterations are dealt round-robin
    // to the tile's workers. Functionally they run in order (iterations in a
    // level are independent by construction); the clock advances by the
    // slowest worker plus spawn/sync overhead.
    flush();
    ipu::WorkerPool pool(cc_.numWorkers);
    pool.chargeSpawn();
    const std::size_t savedWorker = worker_;
    std::size_t w = 0;
    for (std::int32_t i = begin; i < end; i += step) {
      vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
      worker_ = w;
      const double before = total_;
      runList(s.body);
      flush();
      pool.addCycles(w, total_ - before);
      total_ = before;  // iteration cost moved into the pool
      w = (w + 1) % cc_.numWorkers;
    }
    worker_ = savedWorker;
    total_ += pool.sync();
  }

  /// Runs a compiled loop kernel for [begin, end) step `step`. Returns false
  /// when a runtime guard fails (the generic walk then runs the loop; both
  /// paths are exact, the kernel is only faster).
  bool runFastLoop(const LoopKernel& k, const FlatStmt& s, std::int32_t begin,
                   std::int32_t end, std::int32_t step) {
    for (std::int16_t a : k.floatArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Float32)
        return false;
    }
    for (std::int16_t a : k.intArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Int32)
        return false;
    }
    for (const auto& [v, reg] : k.seedFloat) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Float32)
        return false;
    }
    for (const auto& [v, reg] : k.seedInt) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Int32)
        return false;
    }
    if (begin >= end) return true;  // zero iterations: setup charges only

    // Bulk cycle charge: every priced constant is an integral double, so
    // n × perIteration is exactly the sum the generic walk accumulates.
    const double n = static_cast<double>(
        (static_cast<std::int64_t>(end) - begin + step - 1) / step);
    lanes_.add(ipu::Lane::Fp, n * k.iterFp);
    lanes_.add(ipu::Lane::Mem, n * k.iterMem);
    lanes_.add(ipu::Lane::Ctrl, n * k.iterCtrl);

    std::array<std::span<float>, LoopKernel::kMaxArgs> fsp;
    std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs> isp;
    for (std::int16_t a : k.floatArgs) {
      fsp[static_cast<std::size_t>(a)] =
          ctx_.floatSpan(static_cast<std::size_t>(a));
    }
    for (std::int16_t a : k.intArgs) {
      isp[static_cast<std::size_t>(a)] =
          ctx_.intSpan(static_cast<std::size_t>(a));
    }

    const NamedLoop& nm = k.named;
    if (nm.p != NamedLoop::P::None && step == 1 && begin >= 0 &&
        namedBoundsOk(nm, fsp, end)) {
      runNamed(nm, fsp, begin, end);
      vars_[static_cast<std::size_t>(s.var)] = Scalar(end - 1);
      return true;
    }

    // Register VM fallback: same ops, same order, per element.
    std::array<float, LoopKernel::kMaxRegs> fr{};
    std::array<std::int32_t, LoopKernel::kMaxRegs> ir{};
    for (const auto& [reg, arg] : k.sizeSeeds) {
      ir[static_cast<std::size_t>(reg)] = static_cast<std::int32_t>(
          ctx_.argSize(static_cast<std::size_t>(arg)));
    }
    if (k.workerReg >= 0) {
      ir[static_cast<std::size_t>(k.workerReg)] =
          static_cast<std::int32_t>(worker_);
    }
    for (const auto& [v, reg] : k.seedFloat) {
      fr[static_cast<std::size_t>(reg)] =
          vars_[static_cast<std::size_t>(v)].asFloat();
    }
    for (const auto& [v, reg] : k.seedInt) {
      ir[static_cast<std::size_t>(reg)] =
          vars_[static_cast<std::size_t>(v)].asInt();
    }
    std::int32_t last = begin;
    for (std::int32_t iv = begin; iv < end; iv += step) {
      ir[0] = iv;
      last = iv;
      for (const LoopOp& op : k.ops) {
        switch (op.k) {
          case LoopOp::K::FConst: fr[op.dst] = op.fimm; break;
          case LoopOp::K::FMov: fr[op.dst] = fr[op.a]; break;
          case LoopOp::K::FLoad: {
            const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
            const auto ix = static_cast<std::uint32_t>(ir[op.a]);
            GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
            fr[op.dst] = sp[ix];
            break;
          }
          case LoopOp::K::FStore: {
            const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
            const auto ix = static_cast<std::uint32_t>(ir[op.a]);
            GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
            sp[ix] = fr[op.b];
            break;
          }
          case LoopOp::K::FAdd: fr[op.dst] = fr[op.a] + fr[op.b]; break;
          case LoopOp::K::FSub: fr[op.dst] = fr[op.a] - fr[op.b]; break;
          case LoopOp::K::FMul: fr[op.dst] = fr[op.a] * fr[op.b]; break;
          case LoopOp::K::FDiv: fr[op.dst] = fr[op.a] / fr[op.b]; break;
          case LoopOp::K::FMin: {
            const float a = fr[op.a], b = fr[op.b];
            fr[op.dst] = b < a ? b : a;  // matches binNumeric Min
            break;
          }
          case LoopOp::K::FMax: {
            const float a = fr[op.a], b = fr[op.b];
            fr[op.dst] = a < b ? b : a;  // matches binNumeric Max
            break;
          }
          case LoopOp::K::FNeg: fr[op.dst] = -fr[op.a]; break;
          case LoopOp::K::FAbs: fr[op.dst] = std::fabs(fr[op.a]); break;
          case LoopOp::K::FSqrt: fr[op.dst] = std::sqrt(fr[op.a]); break;
          case LoopOp::K::FFromInt:
            fr[op.dst] = static_cast<float>(ir[op.a]);
            break;
          case LoopOp::K::IConst: ir[op.dst] = op.iimm; break;
          case LoopOp::K::IMov: ir[op.dst] = ir[op.a]; break;
          case LoopOp::K::ILoad: {
            const auto& sp = isp[static_cast<std::size_t>(op.arg)];
            const auto ix = static_cast<std::uint32_t>(ir[op.a]);
            GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
            ir[op.dst] = sp[ix];
            break;
          }
          case LoopOp::K::IAdd: ir[op.dst] = ir[op.a] + ir[op.b]; break;
          case LoopOp::K::ISub: ir[op.dst] = ir[op.a] - ir[op.b]; break;
          case LoopOp::K::IMul: ir[op.dst] = ir[op.a] * ir[op.b]; break;
          case LoopOp::K::IMin: {
            const std::int32_t a = ir[op.a], b = ir[op.b];
            ir[op.dst] = b < a ? b : a;
            break;
          }
          case LoopOp::K::IMax: {
            const std::int32_t a = ir[op.a], b = ir[op.b];
            ir[op.dst] = a < b ? b : a;
            break;
          }
          case LoopOp::K::INeg: ir[op.dst] = -ir[op.a]; break;
          case LoopOp::K::IAbs: {
            const std::int32_t v = ir[op.a];
            ir[op.dst] = v < 0 ? -v : v;
            break;
          }
          case LoopOp::K::IFromFloat:
            ir[op.dst] = static_cast<std::int32_t>(fr[op.a]);
            break;
        }
      }
    }
    vars_[static_cast<std::size_t>(s.var)] = Scalar(last);
    for (const auto& [v, reg] : k.writeFloat) {
      vars_[static_cast<std::size_t>(v)] =
          Scalar(fr[static_cast<std::size_t>(reg)]);
    }
    for (const auto& [v, reg] : k.writeInt) {
      vars_[static_cast<std::size_t>(v)] =
          Scalar(ir[static_cast<std::size_t>(reg)]);
    }
    return true;
  }

  bool namedBoundsOk(
      const NamedLoop& nm,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      std::int32_t end) const {
    const auto e = static_cast<std::size_t>(end);
    auto ok = [&](std::int16_t arg) {
      return arg < 0 || e <= fsp[static_cast<std::size_t>(arg)].size();
    };
    return ok(nm.dstArg) && ok(nm.aArg) && ok(nm.bArg);
  }

  void runNamed(const NamedLoop& nm,
                const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
                std::int32_t begin, std::int32_t end) {
    auto span = [&](std::int16_t arg) {
      return fsp[static_cast<std::size_t>(arg)];
    };
    const float sv =
        nm.sIsConst
            ? nm.sConst
            : (nm.sVar >= 0
                   ? vars_[static_cast<std::size_t>(nm.sVar)].asFloat()
                   : 0.0f);
    switch (nm.p) {
      case NamedLoop::P::Copy: {
        auto d = span(nm.dstArg);
        auto a = span(nm.aArg);
        for (std::int32_t i = begin; i < end; ++i) d[i] = a[i];
        return;
      }
      case NamedLoop::P::Scale: {
        auto d = span(nm.dstArg);
        auto a = span(nm.aArg);
        if (nm.sFirst) {
          for (std::int32_t i = begin; i < end; ++i) d[i] = sv * a[i];
        } else {
          for (std::int32_t i = begin; i < end; ++i) d[i] = a[i] * sv;
        }
        return;
      }
      case NamedLoop::P::AddVec: {
        auto d = span(nm.dstArg);
        auto a = span(nm.aArg);
        auto b = span(nm.bArg);
        if (nm.isSub) {
          for (std::int32_t i = begin; i < end; ++i) d[i] = a[i] - b[i];
        } else {
          for (std::int32_t i = begin; i < end; ++i) d[i] = a[i] + b[i];
        }
        return;
      }
      case NamedLoop::P::Axpy: {
        auto d = span(nm.dstArg);
        auto a = span(nm.aArg);
        auto b = span(nm.bArg);
        for (std::int32_t i = begin; i < end; ++i) {
          const float m = nm.sFirst ? sv * b[i] : b[i] * sv;
          d[i] = nm.loadFirst ? (nm.isSub ? a[i] - m : a[i] + m)
                              : (nm.isSub ? m - a[i] : m + a[i]);
        }
        return;
      }
      case NamedLoop::P::DotPartial: {
        auto a = span(nm.aArg);
        float acc = vars_[static_cast<std::size_t>(nm.accVar)].asFloat();
        if (nm.dotSingle) {
          for (std::int32_t i = begin; i < end; ++i) {
            acc = nm.accFirst ? acc + a[i] : a[i] + acc;
          }
        } else {
          auto b = span(nm.bArg);
          for (std::int32_t i = begin; i < end; ++i) {
            const float m = a[i] * b[i];
            acc = nm.accFirst ? acc + m : m + acc;
          }
        }
        vars_[static_cast<std::size_t>(nm.accVar)] = Scalar(acc);
        return;
      }
      case NamedLoop::P::None:
        return;
    }
  }

  const CompiledCodelet& cc_;
  graph::VertexContext& ctx_;
  std::vector<Scalar> vars_;
  ipu::LaneCycles lanes_;
  double total_ = 0;
  std::size_t worker_ = 0;
  bool fastPaths_ = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

void setCodeletFastPaths(bool enabled) {
  g_fastPaths.store(enabled, std::memory_order_relaxed);
}

bool codeletFastPathsEnabled() {
  return g_fastPaths.load(std::memory_order_relaxed);
}

CompiledCodeletPtr compileCodelet(const CodeletIR& ir,
                                  const ipu::CostModel& cost,
                                  std::size_t numWorkers) {
  auto cc = std::make_shared<CompiledCodelet>();
  cc->flat = flattenCodelet(ir);
  cc->cost = cost;
  cc->numWorkers = numWorkers;
  // Kernels are always compiled; whether they run is decided per execution
  // (setCodeletFastPaths), so the generic/fast A-B comparison can use the
  // same graph.
  LoopCompiler lc(cc->flat, cc->cost);
  for (std::size_t sid = 0; sid < cc->flat.stmts.size(); ++sid) {
    FlatStmt& s = cc->flat.stmts[sid];
    if (s.kind != Stmt::Kind::For) continue;
    if (auto kernel = lc.compile(static_cast<std::int32_t>(sid))) {
      s.fastLoop = static_cast<std::int32_t>(cc->kernels.size());
      cc->kernels.push_back(std::move(*kernel));
    }
  }
  return cc;
}

graph::VertexCost runCompiled(const CompiledCodelet& codelet,
                              graph::VertexContext& ctx) {
  GRAPHENE_CHECK(ctx.numArgs() == codelet.flat.numArgs,
                 "codelet arg count mismatch: vertex has ", ctx.numArgs(),
                 ", codelet expects ", codelet.flat.numArgs);
  FlatExec exec(codelet, ctx);
  graph::VertexCost result;
  result.workerCycles = exec.run();
  result.wholeTile = codelet.flat.usesWorkers;
  return result;
}

graph::Codelet makeCodelet(std::string name, CodeletIR ir,
                           const ipu::CostModel& cost,
                           std::size_t numWorkers) {
  CompiledCodeletPtr cc = compileCodelet(ir, cost, numWorkers);
  return graph::Codelet{std::move(name),
                        [cc = std::move(cc)](graph::VertexContext& vc) {
                          return runCompiled(*cc, vc);
                        }};
}

graph::VertexCost interpretCodelet(const CodeletIR& ir,
                                   const ipu::CostModel& cost,
                                   std::size_t numWorkers,
                                   graph::VertexContext& ctx) {
  CompiledCodeletPtr cc = compileCodelet(ir, cost, numWorkers);
  return runCompiled(*cc, ctx);
}

}  // namespace graphene::dsl
