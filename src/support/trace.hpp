// Execution tracing & metrics — the observability layer of the simulator.
//
// The paper's whole evaluation (§VI) rests on Poplar's profiling feature;
// aggregate counters (ipu::Profile) answer "how many cycles", but not *when*
// they were spent, which tile was the straggler of a superstep, or how a
// fault event lines up with a residual spike. A TraceSink records a merged
// timeline of everything the engine and the solver layer do:
//
//   ComputeSuperstep  one BSP compute superstep (per compute-set category,
//                     with per-tile cycle min/mean/max + the straggler tile)
//   Sync              the on-chip BSP sync ending a compute superstep
//   ExchangeSuperstep one exchange superstep (cycles + bytes on the wire)
//   Iteration         one solver iteration / refinement (residual attached)
//   Fault             an injected hardware fault (bitflip, drop, stall, ...)
//   Recovery          a solver recovery action (restart / rollback)
//
// Pay-for-what-you-use: nothing in this header runs unless a sink is
// attached to the engine — every emission site is a single null-pointer
// test. The sink itself is a fixed-capacity ring buffer (old events are
// overwritten, a drop counter keeps the bookkeeping honest) plus exact
// running aggregates that survive ring wrap, so summary tables are always
// computed over the *full* run even when the timeline is truncated.
//
// Two exporters serialise a trace (trace.cpp):
//   traceToChromeJson()  Chrome trace_event JSON — load the file in
//                        chrome://tracing or Perfetto; one row per compute
//                        category, one per solver, plus exchange/sync/fault
//                        rows and a residual counter track.
//   traceSummaryTable()  per-category cycle breakdown (the paper's Table IV
//                        directly from a trace, no ad-hoc Profile math).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table.hpp"

namespace graphene::support {

enum class TraceKind : std::uint8_t {
  ComputeSuperstep,
  ExchangeSuperstep,
  Sync,
  Iteration,
  Fault,
  Recovery,
  Job,  // solve-job lifecycle (accepted/start/retry/done — SolverService)
};

const char* toString(TraceKind kind);

/// One timeline event. `startCycle` is the engine's monotonic simulated
/// clock; durations are simulated cycles (zero for instantaneous events).
struct TraceEvent {
  TraceKind kind = TraceKind::ComputeSuperstep;
  std::string name;  // compute-set category / solver name / fault kind
  double startCycle = 0;
  double durationCycles = 0;
  std::size_t superstep = 0;  // compute- or exchange-superstep index

  /// Stable id of the solve job this event belongs to; SIZE_MAX when the
  /// trace covers a single anonymous solve. Pooled service workers stamp it
  /// (TraceSink::setJobId) so interleaved concurrent solves merge into an
  /// unambiguous timeline — exporters group rows by job.
  std::size_t jobId = SIZE_MAX;

  // ComputeSuperstep: per-tile cycle distribution across the active tiles.
  double tileMin = 0;
  double tileMean = 0;
  double tileMax = 0;
  std::size_t stragglerTile = SIZE_MAX;  // tile that set the critical path
  std::size_t activeTiles = 0;

  // ExchangeSuperstep
  std::size_t bytes = 0;

  // Iteration
  std::size_t iteration = 0;
  double residual = -1.0;  // < 0 when the solver does not measure one

  std::string detail;

  bool operator==(const TraceEvent& o) const;
};

/// Fixed exponential bucket ladder of a Histogram: bucket i covers values
/// up to firstBound * growth^i (i in [0, bucketCount)), plus a final +Inf
/// overflow bucket. The ladder is part of a histogram's identity: merges
/// require identical ladders, and bucket placement is a deterministic
/// compare loop against multiplied-out bounds — no libm, so the same value
/// lands in the same bucket on every host and at any thread count.
struct HistogramLadder {
  double firstBound = 1.0;
  double growth = 2.0;
  std::size_t bucketCount = 40;

  bool operator==(const HistogramLadder& o) const {
    return firstBound == o.firstBound && growth == o.growth &&
           bucketCount == o.bucketCount;
  }

  /// Upper bound (inclusive, Prometheus `le`) of bucket i; +Inf for the
  /// overflow bucket i == bucketCount.
  double upperBound(std::size_t i) const;
  /// Index of the bucket `value` falls into (the +Inf bucket included).
  std::size_t bucketFor(double value) const;
};

/// A fixed-ladder histogram: per-bucket observation counts plus the exact
/// sum and count (the Prometheus _bucket/_sum/_count triple). Merging adds
/// bucket counts (integers — exact) and sums; with a deterministic merge
/// order the result is bit-identical at any host thread count, which is
/// what Profile::operator+= provides.
struct Histogram {
  HistogramLadder ladder;
  /// ladder.bucketCount + 1 entries; the last is the +Inf overflow bucket.
  /// Non-cumulative (exposition accumulates on the way out).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;

  explicit Histogram(HistogramLadder l = {})
      : ladder(l), buckets(l.bucketCount + 1, 0) {}

  void observe(double value);
  /// Merge; the ladders must match (checked).
  Histogram& operator+=(const Histogram& o);

  /// Quantile estimate from the bucket counts, Prometheus-style: find the
  /// bucket holding the q-th observation, interpolate linearly inside it.
  /// Observations in the +Inf bucket clamp to the last finite bound; an
  /// empty histogram reports 0.
  double quantile(double q) const;

  bool operator==(const Histogram& o) const {
    return ladder == o.ladder && buckets == o.buckets && count == o.count &&
           sum == o.sum;
  }
};

/// Named counters, gauges and histograms that engine, codelets and solvers
/// can tick (SpMV FLOPs, halo bytes, restart counts, job latency
/// distributions). Counters accumulate; gauges keep their last written
/// value; histograms bucket every observation on a fixed exponential
/// ladder.
///
/// Mutations and point reads are thread-safe (internally locked): a solver
/// service ticks one shared registry from every pooled worker thread while
/// a metrics endpoint scrapes it. The bulk accessors counters()/gauges()
/// return references without locking — they are for single-threaded
/// consumers (profiles, tests); concurrent scrapers take snapshot() or use
/// metricsToPrometheusText, which snapshots internally.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& o);
  MetricsRegistry& operator=(const MetricsRegistry& o);

  void addCounter(const std::string& name, double delta);
  void setGauge(const std::string& name, double value);
  /// Buckets `value` into the named histogram. The ladder is applied on the
  /// histogram's first touch only (it is part of the histogram's identity
  /// from then on — a later observe with a different ladder keeps the
  /// original one).
  void observe(const std::string& name, double value,
               const HistogramLadder& ladder = {});

  /// Optional per-metric help text, emitted as a Prometheus `# HELP` line
  /// by metricsToPrometheusText. Help is documentation, not data: merges
  /// and copies carry it, clear() drops it with everything else.
  void setHelp(const std::string& name, const std::string& text);

  /// Value of a counter/gauge, 0 when never touched.
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Locked copy of a histogram; an empty default-ladder histogram when
  /// never observed.
  Histogram histogram(const std::string& name) const;

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::string>& help() const { return help_; }

  /// Consistent locked copy — the safe way to read a registry other threads
  /// are still writing to.
  MetricsRegistry snapshot() const { return *this; }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Merge for Profile::operator+=: counters add, gauges take the
  /// right-hand (newer) value, histograms merge bucket-wise (ladders must
  /// match), help takes the right-hand text.
  MetricsRegistry& operator+=(const MetricsRegistry& o);

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

/// Prometheus text exposition (version 0.0.4) of a registry: counters as
/// `counter`, gauges as `gauge`, histograms as `histogram` with the
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, names
/// sanitised to the Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*, every
/// other character becomes '_') and prefixed with `prefix` (itself
/// sanitised; pass "" for none). Metrics with registered help text get a
/// `# HELP` line before their `# TYPE`. Output is sorted by metric name
/// within each kind — deterministic, scrape-ready.
std::string metricsToPrometheusText(const MetricsRegistry& metrics,
                                    const std::string& prefix = "graphene");

/// Ring-buffered event sink with exact running aggregates.
class TraceSink {
 public:
  /// Per-compute-category aggregate, updated on every record() — exact for
  /// the whole run even after the ring has wrapped.
  struct CategorySummary {
    std::size_t supersteps = 0;
    double cycles = 0;      // summed superstep durations (critical path)
    double tileMeanCycles = 0;  // summed per-superstep mean over tiles
    double tileMinCycles = 0;   // summed per-superstep min over tiles
    /// Worst single superstep of this category and its straggler tile.
    double worstCycles = 0;
    std::size_t worstStragglerTile = SIZE_MAX;
  };

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  void record(TraceEvent event);

  /// Stamps every subsequently recorded event that carries no job id of its
  /// own with `id` (SIZE_MAX turns stamping off). A service worker sets this
  /// when it leases a pooled pipeline for a job, so engine- and solver-level
  /// events land in the merged timeline attributed to the right job even
  /// when several jobs interleave through the same sink over time.
  void setJobId(std::size_t id) { jobId_ = id; }
  std::size_t jobId() const { return jobId_; }

  /// Events still in the ring, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t recorded() const { return recorded_; }
  std::size_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }

  /// Restores the sink to empty (aggregates included).
  void clear();

  // -- exact aggregates ------------------------------------------------------
  const std::map<std::string, CategorySummary>& computeSummary() const {
    return computeSummary_;
  }
  double exchangeCycles() const { return exchangeCycles_; }
  double syncCycles() const { return syncCycles_; }
  std::size_t exchangeSupersteps() const { return exchangeSupersteps_; }
  std::size_t exchangedBytes() const { return exchangedBytes_; }
  std::size_t faultCount() const { return faultCount_; }
  std::size_t recoveryCount() const { return recoveryCount_; }
  std::size_t iterationCount() const { return iterationCount_; }
  std::size_t jobEventCount() const { return jobEventCount_; }
  /// Distinct job ids seen across the whole run (exact, survives ring
  /// wrap). Empty for a single anonymous solve.
  const std::set<std::size_t>& jobsSeen() const { return jobsSeen_; }
  double totalComputeCycles() const;
  double totalCycles() const {
    return totalComputeCycles() + exchangeCycles_ + syncCycles_;
  }

 private:
  std::size_t capacity_;
  std::size_t recorded_ = 0;
  std::size_t jobId_ = SIZE_MAX;
  std::vector<TraceEvent> ring_;

  std::map<std::string, CategorySummary> computeSummary_;
  double exchangeCycles_ = 0;
  double syncCycles_ = 0;
  std::size_t exchangeSupersteps_ = 0;
  std::size_t exchangedBytes_ = 0;
  std::size_t faultCount_ = 0;
  std::size_t recoveryCount_ = 0;
  std::size_t iterationCount_ = 0;
  std::size_t jobEventCount_ = 0;
  std::set<std::size_t> jobsSeen_;
};

/// Records a solver iteration/refinement sample. No-op on a null sink, so
/// host convergence callbacks can call it unconditionally.
void recordIteration(TraceSink* sink, const std::string& solver,
                     std::size_t iteration, double residual, double cycle,
                     std::size_t superstep);

/// Records a solve-job lifecycle event ("job:accepted", "job:start",
/// "job:retry", "job:done", ...) attributed to `jobId`. `sequence` orders
/// events on the service's merged timeline (service events have no shared
/// simulated clock — concurrent engines each run their own). No-op on a
/// null sink.
void recordJobEvent(TraceSink* sink, const std::string& name,
                    std::size_t jobId, double sequence,
                    const std::string& detail = "");

/// Serialises the sink's timeline as Chrome trace_event JSON (the
/// "traceEvents" array format understood by chrome://tracing and Perfetto).
/// Cycles map to microseconds 1:1 — the UI's time axis reads as cycles.
json::Value traceToChromeJson(const TraceSink& sink);

/// Per-category cycle breakdown from the sink's exact aggregates: category,
/// supersteps, cycles, share of total, mean-tile cycles, BSP imbalance
/// (critical path / mean) and the worst straggler tile. Exchange and sync
/// get their own rows; when the ring has wrapped, a final "(dropped)" row
/// reports how many timeline events were overwritten (the aggregate rows
/// above it remain exact). This reproduces the paper's Table IV directly
/// from a trace.
TextTable traceSummaryTable(const TraceSink& sink);

/// Compute cycles per category from the exact aggregates — matches
/// Profile::computeCycles of the traced engine bit-for-bit (same values
/// summed in the same order).
std::map<std::string, double> traceComputeCycles(const TraceSink& sink);

}  // namespace graphene::support
