#include "graph/compiler.hpp"

namespace graphene::graph {

namespace {

void analyze(const ProgramPtr& p, ProgramStats& stats) {
  if (!p) return;
  ++stats.totalSteps;
  switch (p->kind) {
    case Program::Kind::Sequence:
      ++stats.sequenceSteps;
      for (const auto& c : p->children) analyze(c, stats);
      break;
    case Program::Kind::Execute:
      ++stats.executeSteps;
      break;
    case Program::Kind::Copy:
      ++stats.copySteps;
      stats.copySegments += p->copies.size();
      break;
    case Program::Kind::Repeat:
      ++stats.repeatSteps;
      analyze(p->body, stats);
      break;
    case Program::Kind::RepeatWhile:
      ++stats.whileSteps;
      analyze(p->condProgram, stats);
      analyze(p->body, stats);
      break;
    case Program::Kind::If:
      ++stats.ifSteps;
      analyze(p->condProgram, stats);
      analyze(p->thenBody, stats);
      analyze(p->elseBody, stats);
      break;
    case Program::Kind::HostCall:
      ++stats.hostCallSteps;
      break;
  }
}

/// Structure-preserving rewrite: applies `rewriteSequence` to every Sequence
/// node bottom-up.
template <typename Fn>
ProgramPtr rewrite(const ProgramPtr& p, const Fn& rewriteSequence) {
  if (!p) return nullptr;
  auto out = std::make_shared<Program>(*p);
  switch (p->kind) {
    case Program::Kind::Sequence: {
      out->children.clear();
      for (const auto& c : p->children) {
        out->children.push_back(rewrite(c, rewriteSequence));
      }
      rewriteSequence(*out);
      break;
    }
    case Program::Kind::Repeat:
      out->body = rewrite(p->body, rewriteSequence);
      break;
    case Program::Kind::RepeatWhile:
      out->condProgram = rewrite(p->condProgram, rewriteSequence);
      out->body = rewrite(p->body, rewriteSequence);
      break;
    case Program::Kind::If:
      out->condProgram = rewrite(p->condProgram, rewriteSequence);
      out->thenBody = rewrite(p->thenBody, rewriteSequence);
      out->elseBody = rewrite(p->elseBody, rewriteSequence);
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

ProgramStats analyzeProgram(const ProgramPtr& program) {
  ProgramStats stats;
  analyze(program, stats);
  return stats;
}

ProgramPtr coalesceCopies(const ProgramPtr& program) {
  return rewrite(program, [](Program& seq) {
    std::vector<ProgramPtr> merged;
    for (const ProgramPtr& child : seq.children) {
      if (child && child->kind == Program::Kind::Copy && !merged.empty() &&
          merged.back()->kind == Program::Kind::Copy) {
        // Merge into the previous Copy: one exchange superstep instead of
        // two (saves a BSP sync and overlaps the transfers).
        auto combined = std::make_shared<Program>(*merged.back());
        combined->copies.insert(combined->copies.end(),
                                child->copies.begin(), child->copies.end());
        merged.back() = combined;
      } else {
        merged.push_back(child);
      }
    }
    seq.children = std::move(merged);
  });
}

ProgramPtr flattenSequences(const ProgramPtr& program) {
  return rewrite(program, [](Program& seq) {
    std::vector<ProgramPtr> flat;
    for (const ProgramPtr& child : seq.children) {
      if (child && child->kind == Program::Kind::Sequence) {
        flat.insert(flat.end(), child->children.begin(),
                    child->children.end());
      } else {
        flat.push_back(child);
      }
    }
    seq.children = std::move(flat);
  });
}

}  // namespace graphene::graph
