// Pipelined Preconditioned Conjugate Gradient (Ghysels & Vanroose,
// "Hiding global synchronization latency in the preconditioned Conjugate
// Gradient algorithm", Parallel Computing 40, 2014).
//
// Classic PCG needs three inner products per iteration — (p,Ap), (r,z) and
// the convergence check (r,r) — at three different points of the recurrence,
// so every iteration pays three global reduction round-trips. On a pod each
// round-trip crosses the IPU-Links twice (gather + broadcast); for small
// systems those fixed latencies dominate and strong scaling collapses.
//
// PIPECG rearranges the recurrences so all inner products are computable at
// the SAME point, from vectors already available:
//
//   gamma = (r, u)    delta = (w, u)    rr = (r, r)
//
// with u = M^-1 r and w = A u maintained as iterates. The three reductions
// merge into ONE joint reduction (dsl::ReduceMany), and the next iteration's
// preconditioner apply m = M^-1 w and matrix product n = A m are emitted
// inside the reduction's latency window — the BSP cost model prices the
// overlap region between the reduction's gather and its final combine, which
// is exactly where those compute supersteps land. The scalar recurrences
//
//   beta = gamma / gamma_old        alpha = gamma / (delta - beta gamma / alpha_old)
//   z = n + beta z;  q = m + beta q;  s = w + beta s;  p = u + beta p
//   x += alpha p;  r -= alpha s;  u -= alpha q;  w -= alpha z
//
// reproduce PCG's iterates in exact arithmetic (float32 rounding makes the
// trajectories drift by at most an iteration or so near the tolerance).
//
// The robustness envelope mirrors CgSolver: host residual guard with
// NaN/divergence detection, checkpoint/restart (a restart raises the `fresh`
// flag, which re-enters the first-iteration recurrence with beta = 0), an
// independently emitted duplicate of (r,r) under ABFT, and post-loop true
// residual verification.
#include <cmath>

#include "solver/solvers.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void PipelinedCgSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  precond_->ensureSetup(a);
  if (robust_.abft) a.enableAbft(robust_.abftTolerance);
  dsl::Context::current().graph().setReduceMode(reduction_);

  // Initial iterates: r0 = b (x0 = 0), u0 = M^-1 r0, w0 = A u0.
  x = Expression(0.0f);
  Tensor r = a.makeVector(DType::Float32, "pcg_r");
  r = Expression(b);
  Tensor u = a.makeVector(DType::Float32, "pcg_u");
  precond_->apply(a, u, r);
  Tensor w = a.makeVector(DType::Float32, "pcg_w");
  a.spmv(w, u);
  // Pipeline iterates: m = M^-1 w, n = A m, and the four direction vectors.
  Tensor m = a.makeVector(DType::Float32, "pcg_m");
  Tensor n = a.makeVector(DType::Float32, "pcg_n");
  Tensor z = a.makeVector(DType::Float32, "pcg_z");
  z = Expression(0.0f);
  Tensor q = a.makeVector(DType::Float32, "pcg_q");
  q = Expression(0.0f);
  Tensor s = a.makeVector(DType::Float32, "pcg_s");
  s = Expression(0.0f);
  Tensor p = a.makeVector(DType::Float32, "pcg_p");
  p = Expression(0.0f);

  Tensor bNormSq = Dot(b, b);
  Tensor gammaOld = Tensor::scalar(DType::Float32, "pcg_gamma_old");
  gammaOld = Expression(1.0f);
  Tensor alphaOld = Tensor::scalar(DType::Float32, "pcg_alpha_old");
  alphaOld = Expression(1.0f);
  Tensor alpha = Tensor::scalar(DType::Float32, "pcg_alpha");
  Tensor beta = Tensor::scalar(DType::Float32, "pcg_beta");
  Tensor denom = Tensor::scalar(DType::Float32, "pcg_denom");
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "pcg_iter");
  iter = Expression(0);
  // `fresh` selects the first-iteration recurrence (beta = 0, directions
  // seeded from the current iterates). Raised initially and by restarts.
  Tensor fresh = Tensor::scalar(DType::Int32, "pcg_fresh");
  fresh = Expression(1);

  // Self-healing state, as in CgSolver.
  Tensor ok = Tensor::scalar(DType::Int32, "pcg_ok");
  ok = Expression(1);
  Tensor restart = Tensor::scalar(DType::Int32, "pcg_restart");
  restart = Expression(0);
  const bool recovery = robust_.maxRestarts > 0 && robust_.checkpointEvery > 0;
  std::optional<Tensor> xCkpt;
  if (recovery) {
    xCkpt.emplace(a.makeVector(DType::Float32, "pcg_ckpt"));
    *xCkpt = Expression(x);
  }
  stateId_ = recovery ? xCkpt->id() : x.id();
  // ABFT: the duplicate of (r,r) stays a SEPARATE reduction tree (its own
  // partial compute set and gather) rather than a fourth joint output —
  // riding the joint reduction's exchange would make corruption of that
  // exchange hit original and duplicate identically, hiding it.
  std::optional<Tensor> resDup;
  if (robust_.abft) {
    resDup.emplace(Tensor::scalar(DType::Float32, "pcg_rrdup"));
  }

  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  auto resPtr = result_;
  // Stagnation guard: silent finite corruption (below the divergence
  // threshold, missed by ABFT timing) leaves the direction recurrences
  // incoherent — the residual then oscillates around a plateau forever.
  // Residual replacement keeps it honest but cannot restore conjugacy, so
  // the host guard also tracks the best residual: no halving of it within
  // the window (while still above tolerance) means the Krylov process is
  // stuck, and a checkpoint restart (fresh directions) is the only cure.
  constexpr std::size_t kStagnationWindow = 32;
  struct GuardState {
    double bestRel = 1.0;
    std::size_t bestIt = 0;
  };
  auto guardState = std::make_shared<GuardState>();
  const RobustnessOptions opts = robust_;
  const double tolerance = tolerance_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();
  graph::TensorId okId = ok.id(), restartId = restart.id(),
                  iterId = iter.id();
  graph::TensorId abftId =
      robust_.abft ? a.abftFlagId() : graph::kInvalidTensor;
  graph::TensorId dupId = robust_.abft ? resDup->id() : graph::kInvalidTensor;

  dsl::HostCall([resPtr, guardState](graph::Engine&) {
    *resPtr = SolveResult{};
    resPtr->status = SolveStatus::Running;
    *guardState = GuardState{};
  });

  Expression keepGoing =
      tolerance_ > 0.0
          ? Expression(iter) < static_cast<int>(maxIterations_) &&
                Expression(resNormSq) > Expression(tol2) * Expression(bNormSq)
          : Expression(iter) < static_cast<int>(maxIterations_);

  dsl::While(keepGoing && Expression(ok) > Expression(0), [&] {
    if (recovery) {
      // Host-requested restart: re-seed from the checkpoint, rebuild every
      // pipeline iterate from scratch, and re-enter the fresh path so the
      // direction vectors are re-seeded (beta = 0).
      dsl::If(Expression(restart) > Expression(0), [&] {
        x = Expression(*xCkpt);
        a.spmv(n, x);
        r = Expression(b) - Expression(n);
        precond_->apply(a, u, r);
        a.spmv(w, u);
        resNormSq = Dot(r, r);
        fresh = Expression(1);
        restart = Expression(0);
      });
    }

    if (replaceEvery_ > 0) {
      // Residual replacement (Cools, Yetkin, Agullo, Giraud & Vanroose,
      // SIAM J. Matrix Anal. 2018): the pipelined recurrences for r, u, w
      // and the auxiliary vectors amplify local rounding error, which in
      // float32 stalls the attainable accuracy well above classic CG's.
      // Periodically recompute every drifted iterate from its definition —
      // r = b - A x, u = M^-1 r, w = A u, s = A p, q = M^-1 s, z = A q —
      // keeping the search direction p, so convergence continues where the
      // recurrences left off instead of restarting.
      dsl::If(Expression(iter) > Expression(0) &&
                  Expression(iter) % static_cast<int>(replaceEvery_) ==
                      Expression(0) &&
                  Expression(fresh) == Expression(0),
              [&] {
                a.spmv(n, x);
                r = Expression(b) - Expression(n);
                precond_->apply(a, u, r);
                a.spmv(w, u);
                a.spmv(s, p);
                precond_->apply(a, q, s);
                a.spmv(z, q);
                resNormSq = Dot(r, r);
              });
    }

    // The heart of PIPECG: one joint reduction for gamma = (r,u),
    // delta = (w,u) and rr = (r,r); the preconditioner apply and SpMV of
    // m/n execute inside its latency window.
    auto red = dsl::ReduceMany(
        {Expression(r) * Expression(u), Expression(w) * Expression(u),
         Expression(r) * Expression(r)},
        dsl::ReduceKind::Sum, [&] {
          precond_->apply(a, m, w);
          a.spmv(n, m);
        });
    Tensor& gamma = red[0];
    Tensor& delta = red[1];
    resNormSq = Expression(red[2]);
    if (robust_.abft) *resDup = Dot(r, r);

    // Scalar recurrences, breakdown-guarded like CgSolver: a vanishing
    // denominator yields alpha/beta = 0 (stall) instead of NaN, and the
    // host guard then takes over.
    beta = dsl::Select(
        Expression(fresh) > Expression(0), Expression(0.0f),
        dsl::Select(Abs(Expression(gammaOld)) > Expression(0.0f),
                    Expression(gamma) / Expression(gammaOld),
                    Expression(0.0f)));
    denom = Expression(delta) -
            Expression(beta) *
                dsl::Select(Abs(Expression(alphaOld)) > Expression(0.0f),
                            Expression(gamma) / Expression(alphaOld),
                            Expression(0.0f));
    alpha = dsl::Select(Abs(Expression(denom)) > Expression(0.0f),
                        Expression(gamma) / Expression(denom),
                        Expression(0.0f));

    // Vector recurrences. With fresh (beta = 0) these seed z = n, q = m,
    // s = w, p = u — the classic first CG step.
    z = Expression(n) + Expression(beta) * Expression(z);
    q = Expression(m) + Expression(beta) * Expression(q);
    s = Expression(w) + Expression(beta) * Expression(s);
    p = Expression(u) + Expression(beta) * Expression(p);
    x = Expression(x) + Expression(alpha) * Expression(p);
    r = Expression(r) - Expression(alpha) * Expression(s);
    u = Expression(u) - Expression(alpha) * Expression(q);
    w = Expression(w) - Expression(alpha) * Expression(z);

    gammaOld = Expression(gamma);
    alphaOld = Expression(alpha);
    fresh = Expression(0);
    iter = Expression(iter) + 1;
    if (recovery) {
      dsl::If(Expression(iter) %
                      static_cast<int>(robust_.checkpointEvery) ==
                  Expression(0),
              [&] { *xCkpt = Expression(x); });
    }

    // Host guard: identical contract to CgSolver's (NaN/divergence =>
    // restart or typed outcome; ABFT flag + duplicate reduction verdict).
    dsl::HostCall([histPtr, resPtr, opts, recovery, tolerance, guardState,
                   resId, bId, okId, restartId, iterId, abftId,
                   dupId](graph::Engine& e) {
      const double rr = e.readScalar(resId).toHostDouble();
      const double bb = e.readScalar(bId).toHostDouble();
      const auto it =
          static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
      const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
      const bool bad = !std::isfinite(rr) || rel > opts.divergenceFactor;
      bool abftBad = false;
      if (!bad && abftId != graph::kInvalidTensor) {
        const double flag = e.readScalar(abftId).toHostDouble();
        const double dup = e.readScalar(dupId).toHostDouble();
        abftBad = !(flag <= opts.abftTolerance) || dup != rr;
      }
      bool stagnated = false;
      if (!bad && !abftBad) {
        if (rel < 0.5 * guardState->bestRel) {
          guardState->bestRel = rel;
          guardState->bestIt = it;
        }
        stagnated = recovery && tolerance > 0.0 &&
                    it > guardState->bestIt + kStagnationWindow &&
                    resPtr->restarts < opts.maxRestarts;
      }
      if (!bad && !abftBad && !stagnated) {
        histPtr->push_back({histPtr->size() + 1, rel});
        resPtr->iterations = it;
        resPtr->finalResidual = rel;
        support::recordIteration(e.traceSink(), "pipelined-cg",
                                 histPtr->size(), rel, e.simCycles(),
                                 e.profile().computeSupersteps);
        return;
      }
      if (abftBad) {
        e.profile().metrics.addCounter("resilience.abft.mismatches", 1);
        e.profile().faultEvents.push_back(
            {"abft-mismatch", e.profile().computeSupersteps, "pipelined-cg",
             it, -1, 0.0, "checksum defect above tolerance"});
        e.writeScalar(abftId, graph::Scalar(0.0f));
      }
      if (recovery && resPtr->restarts < opts.maxRestarts) {
        ++resPtr->restarts;
        e.profile().metrics.addCounter("cg.restarts", 1);
        e.writeScalar(restartId, graph::Scalar(std::int32_t(1)));
        // Repair the condition scalar so the While loop survives the NaN.
        e.writeScalar(resId, graph::Scalar(static_cast<float>(bb)));
        // Re-arm the stagnation window from the restart point.
        guardState->bestIt = it;
        e.profile().faultEvents.push_back(
            {"recovery:restart", e.profile().computeSupersteps,
             "pipelined-cg", it, -1, 0.0,
             bad ? (!std::isfinite(rr)
                        ? "nan residual; re-seeding from checkpoint"
                        : "diverged; re-seeding from checkpoint")
                 : (stagnated
                        ? "stagnated residual; re-seeding from checkpoint"
                        : "abft mismatch; re-seeding from checkpoint")});
      } else {
        resPtr->status = bad ? (std::isfinite(rr) ? SolveStatus::Diverged
                                                  : SolveStatus::NanDetected)
                             : SolveStatus::CorruptionDetected;
        resPtr->iterations = it;
        e.writeScalar(okId, graph::Scalar(std::int32_t(0)));
      }
    });
  });

  // Post-loop verification (ABFT only): re-measure the true residual.
  graph::TensorId verId = graph::kInvalidTensor;
  std::optional<Tensor> verNormSq;
  if (robust_.abft && tolerance_ > 0.0) {
    a.spmv(n, x);
    Tensor vr = a.makeVector(DType::Float32, "pcg_verify");
    vr = Expression(b) - Expression(n);
    verNormSq.emplace(Dot(vr, vr));
    verId = verNormSq->id();
  }

  dsl::HostCall([resPtr, resId, bId, iterId, verId,
                 tolerance](graph::Engine& e) {
    if (resPtr->status != SolveStatus::Running) return;
    const double rr = e.readScalar(resId).toHostDouble();
    const double bb = e.readScalar(bId).toHostDouble();
    const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
    resPtr->iterations =
        static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
    if (std::isfinite(rel)) resPtr->finalResidual = rel;
    resPtr->status = tolerance > 0.0 && rel <= tolerance
                         ? SolveStatus::Converged
                         : SolveStatus::MaxIterations;
    if (resPtr->status == SolveStatus::Converged &&
        verId != graph::kInvalidTensor) {
      const double vv = e.readScalar(verId).toHostDouble();
      const double vrel = std::sqrt(std::abs(vv) / std::max(bb, 1e-300));
      if (!(vrel <= 50.0 * tolerance)) {
        resPtr->status = SolveStatus::CorruptionDetected;
        resPtr->finalResidual = vrel;
      }
    }
  });
}

}  // namespace graphene::solver
