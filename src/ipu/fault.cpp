#include "ipu/fault.hpp"

#include <sstream>

#include "support/error.hpp"

namespace graphene::ipu {

namespace {

FaultPlan::Rule::Kind parseKind(const std::string& s) {
  using Kind = FaultPlan::Rule::Kind;
  if (s == "bitflip" || s == "bit-flip") return Kind::BitFlip;
  if (s == "stuck-zero" || s == "zero") return Kind::StuckZero;
  if (s == "exchange-drop" || s == "drop") return Kind::ExchangeDrop;
  if (s == "exchange-corrupt" || s == "corrupt") return Kind::ExchangeCorrupt;
  if (s == "stall") return Kind::Stall;
  throw ParseError("unknown fault type '" + s + "'");
}

const char* kindName(FaultPlan::Rule::Kind kind) {
  using Kind = FaultPlan::Rule::Kind;
  switch (kind) {
    case Kind::BitFlip: return "bitflip";
    case Kind::StuckZero: return "stuck-zero";
    case Kind::ExchangeDrop: return "exchange-drop";
    case Kind::ExchangeCorrupt: return "exchange-corrupt";
    case Kind::Stall: return "stall";
  }
  GRAPHENE_UNREACHABLE("bad fault kind");
}

}  // namespace

FaultPlan FaultPlan::fromJson(const json::Value& config) {
  GRAPHENE_CHECK(config.isObject(), "fault plan must be a JSON object");
  FaultPlan plan;
  plan.seed_ = static_cast<std::uint64_t>(
      config.getOr("seed", std::int64_t(0x9E3779B97F4A7C15ull)));
  plan.rng_ = Rng(plan.seed_);
  if (!config.contains("faults")) return plan;
  for (const json::Value& f : config.at("faults").asArray()) {
    GRAPHENE_CHECK(f.isObject(), "each fault rule must be a JSON object");
    Rule r;
    r.kind = parseKind(f.at("type").asString());
    r.tensor = f.getOr("tensor", std::string());
    r.superstep = f.getOr("superstep", std::int64_t(-1));
    r.probability = f.getOr("probability", 1.0);
    GRAPHENE_CHECK(r.probability >= 0.0 && r.probability <= 1.0,
                   "fault probability must be in [0, 1], got ", r.probability);
    r.element = f.getOr("element", std::int64_t(-1));
    r.bit = static_cast<int>(f.getOr("bit", std::int64_t(-1)));
    r.tile = static_cast<std::size_t>(f.getOr("tile", std::int64_t(0)));
    r.stallCycles = f.getOr("cycles", 0.0);
    r.skip = static_cast<std::size_t>(f.getOr("skip", std::int64_t(0)));
    const std::int64_t count =
        f.getOr("count", std::int64_t(-1));
    r.count = count < 0 ? SIZE_MAX : static_cast<std::size_t>(count);
    if (r.kind == Rule::Kind::Stall) {
      GRAPHENE_CHECK(r.stallCycles > 0,
                     "stall fault needs positive 'cycles'");
    }
    plan.rules_.push_back(r);
  }
  return plan;
}

FaultPlan FaultPlan::fromJsonText(const std::string& text) {
  return fromJson(json::parse(text));
}

void FaultPlan::reset() {
  rng_ = Rng(seed_);
  states_.clear();
  injected_ = 0;
  pendingCorruptBit_ = -1;
}

bool FaultPlan::fires(const Rule& rule, RuleState& state, std::int64_t index) {
  if (rule.superstep >= 0 && rule.superstep != index) return false;
  if (state.injected >= rule.count) return false;
  if (rule.probability < 1.0 && rng_.nextDouble() >= rule.probability) {
    return false;
  }
  if (state.skipped < rule.skip) {
    ++state.skipped;
    return false;
  }
  return true;
}

const std::vector<std::size_t>& FaultPlan::matchingTensors(
    const Rule& rule, RuleState& state, FaultSurface& surface) {
  const std::size_t n = surface.numTensors();
  if (state.matchedAt != n) {
    state.matches.clear();
    for (std::size_t t = 0; t < n; ++t) {
      if (rule.tensor.empty() ||
          surface.tensorName(t).find(rule.tensor) != std::string::npos) {
        state.matches.push_back(t);
      }
    }
    state.matchedAt = n;
  }
  return state.matches;
}

double FaultPlan::afterComputeSuperstep(std::size_t index,
                                        FaultSurface& surface) {
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(index);
  double extraCycles = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    RuleState& state = states_[i];
    switch (rule.kind) {
      case Rule::Kind::BitFlip:
      case Rule::Kind::StuckZero: {
        // Fast pre-checks before consuming randomness.
        if (rule.superstep >= 0 && rule.superstep != idx) break;
        if (state.injected >= rule.count) break;
        const auto& matches = matchingTensors(rule, state, surface);
        if (matches.empty()) break;
        if (!fires(rule, state, idx)) break;
        const std::size_t tensor =
            matches.size() == 1 ? matches[0]
                                : matches[rng_.nextBelow(matches.size())];
        const std::size_t elems = surface.tensorElements(tensor);
        if (elems == 0) break;
        const std::size_t element =
            rule.element >= 0
                ? static_cast<std::size_t>(rule.element) % elems
                : rng_.nextBelow(elems);
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = surface.tensorName(tensor);
        ev.element = element;
        if (rule.kind == Rule::Kind::BitFlip) {
          ev.bit = rule.bit >= 0 ? rule.bit
                                 : static_cast<int>(rng_.nextBelow(32));
          surface.flipBit(tensor, element, static_cast<unsigned>(ev.bit));
        } else {
          surface.zeroElement(tensor, element);
        }
        surface.profile().faultEvents.push_back(std::move(ev));
        ++state.injected;
        ++injected_;
        break;
      }
      case Rule::Kind::Stall: {
        if (!fires(rule, state, idx)) break;
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = "tile " + std::to_string(rule.tile);
        ev.cycles = rule.stallCycles;
        surface.profile().faultEvents.push_back(std::move(ev));
        extraCycles += rule.stallCycles;
        ++state.injected;
        ++injected_;
        break;
      }
      case Rule::Kind::ExchangeDrop:
      case Rule::Kind::ExchangeCorrupt:
        break;  // exchange hooks only
    }
  }
  return extraCycles;
}

TransferFate FaultPlan::onTransfer(std::size_t exchangeIndex,
                                   std::size_t transferIndex,
                                   std::size_t dstTensor,
                                   FaultSurface& surface) {
  (void)transferIndex;
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(exchangeIndex);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Rule::Kind::ExchangeDrop &&
        rule.kind != Rule::Kind::ExchangeCorrupt) {
      continue;
    }
    RuleState& state = states_[i];
    if (rule.superstep >= 0 && rule.superstep != idx) continue;
    if (state.injected >= rule.count) continue;
    if (!rule.tensor.empty() &&
        surface.tensorName(dstTensor).find(rule.tensor) ==
            std::string::npos) {
      continue;
    }
    if (!fires(rule, state, idx)) continue;
    ++state.injected;
    ++injected_;
    if (rule.kind == Rule::Kind::ExchangeDrop) {
      FaultEvent ev;
      ev.kind = kindName(rule.kind);
      ev.superstep = exchangeIndex;
      ev.target = surface.tensorName(dstTensor);
      ev.detail = "transfer payload lost in flight";
      surface.profile().faultEvents.push_back(std::move(ev));
      return TransferFate::Drop;
    }
    pendingCorruptBit_ = rule.bit;
    return TransferFate::Corrupt;
  }
  return TransferFate::Deliver;
}

void FaultPlan::corruptDelivered(std::size_t exchangeIndex,
                                 std::size_t dstTensor, std::size_t dstFlat,
                                 std::size_t count, FaultSurface& surface) {
  GRAPHENE_CHECK(count > 0, "cannot corrupt an empty transfer");
  // The bit choice was fixed when the Corrupt verdict fell; the element
  // within the delivered range is drawn from the plan RNG.
  const int bit = pendingCorruptBit_;
  pendingCorruptBit_ = -1;
  FaultEvent ev;
  ev.kind = "exchange-corrupt";
  ev.superstep = exchangeIndex;
  ev.target = surface.tensorName(dstTensor);
  ev.element = dstFlat + rng_.nextBelow(count);
  ev.bit = bit >= 0 ? bit : static_cast<int>(rng_.nextBelow(32));
  ev.detail = "transfer payload damaged in flight";
  surface.flipBit(dstTensor, ev.element, static_cast<unsigned>(ev.bit));
  surface.profile().faultEvents.push_back(std::move(ev));
}

json::Value faultEventsToJson(const std::vector<FaultEvent>& events) {
  json::Array out;
  out.reserve(events.size());
  for (const FaultEvent& ev : events) {
    json::Object o;
    o["kind"] = ev.kind;
    o["superstep"] = ev.superstep;
    o["target"] = ev.target;
    o["element"] = ev.element;
    if (ev.bit >= 0) o["bit"] = ev.bit;
    if (ev.cycles > 0) o["cycles"] = ev.cycles;
    if (!ev.detail.empty()) o["detail"] = ev.detail;
    out.push_back(json::Value(std::move(o)));
  }
  return json::Value(std::move(out));
}

std::string formatFaultEvents(const std::vector<FaultEvent>& events) {
  std::ostringstream oss;
  for (const FaultEvent& ev : events) {
    oss << "[superstep " << ev.superstep << "] " << ev.kind << " on "
        << ev.target;
    if (ev.bit >= 0) {
      oss << " (element " << ev.element << ", bit " << ev.bit << ")";
    }
    if (ev.cycles > 0) oss << " (+" << ev.cycles << " cycles)";
    if (!ev.detail.empty()) oss << " — " << ev.detail;
    oss << "\n";
  }
  return oss.str();
}

}  // namespace graphene::ipu
