// Quickstart: the paper's Figure 1 example.
//
// CodeDSL fills a tensor with the Leibniz sequence from each tile's local
// perspective; TensorDSL reduces it and scales by four, yielding π. Shows
// the two DSLs working hand-in-hand, host IO, and the cycle profile.
//
// Build & run:  ./example_quickstart
#include <cstdio>

#include "dsl/tensor.hpp"
#include "graph/engine.hpp"

using namespace graphene;
using namespace graphene::dsl;

int main() {
  // A small simulated IPU: 16 tiles, 6 workers each.
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(/*tiles=*/16);
  Context ctx(target);

  // Create a TensorDSL tensor distributed over all tiles.
  const std::size_t n = 100000;
  Tensor x(DType::Float32, n, "x");

  // Each tile needs its global start offset to compute its share of the
  // sequence (CodeDSL is tile-centric: it sees only local elements).
  Tensor offsets(DType::Int32,
                 graph::TileMapping::replicated(target.totalTiles()),
                 "offsets");

  // Fill the tensor with the Leibniz sequence using CodeDSL.
  Execute({x, offsets}, [](Value xv, Value off) {
    Value base = off[0];
    For(0, xv.size(), 1, [&](Value i) {
      Value g = base + i;  // global element index
      xv[i] = Select(g % 2 == 0, 1.0f, -1.0f) /
              (2.0f * g.cast(DType::Float32) + 1.0f);
    });
  });

  // Calculate pi from the Leibniz sequence using TensorDSL.
  Tensor pi = Expression(x).reduce() * 4.0f;

  If(Abs(Expression(pi) - 3.141f) < 0.001f,
     [&] { Print("We found pi!", pi); },
     [&] { Print("Not quite pi:", pi); });

  // Execute on the simulated IPU.
  graph::Engine engine(ctx.graph());
  const auto& info = ctx.graph().tensor(x.id());
  std::size_t offset = 0;
  for (std::size_t t = 0; t < target.totalTiles(); ++t) {
    engine.storeElement(offsets.id(), t,
                        graph::Scalar(static_cast<std::int32_t>(offset)));
    offset += info.mapping.sizePerTile[t];
  }
  engine.run(ctx.program());

  const double piValue = engine.readScalar(pi.id()).toHostDouble();
  const auto& prof = engine.profile();
  std::printf("pi           = %.6f\n", piValue);
  std::printf("cycles       = %.0f (compute %.0f, exchange %.0f, sync %.0f)\n",
              prof.totalCycles(), prof.totalComputeCycles(),
              prof.exchangeCycles, prof.syncCycles);
  std::printf("time on IPU  = %.2f us (simulated, %zu tiles)\n",
              1e6 * engine.elapsedSeconds(), target.totalTiles());
  return piValue > 3.140 && piValue < 3.143 ? 0 : 1;
}
