#include "matrix/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace graphene::matrix {

std::vector<std::size_t> reverseCuthillMcKee(const CsrMatrix& a) {
  GRAPHENE_CHECK(a.rows() == a.cols(), "RCM needs a square matrix");
  const std::size_t n = a.rows();
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto degree = [&](std::size_t r) { return rowPtr[r + 1] - rowPtr[r]; };

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);

  // Process every connected component from its minimum-degree seed.
  std::vector<std::size_t> byDegree(n);
  for (std::size_t i = 0; i < n; ++i) byDegree[i] = i;
  std::sort(byDegree.begin(), byDegree.end(),
            [&](std::size_t x, std::size_t y) { return degree(x) < degree(y); });

  std::vector<std::size_t> neighbours;
  for (std::size_t seedIdx = 0; seedIdx < n; ++seedIdx) {
    const std::size_t seed = byDegree[seedIdx];
    if (visited[seed]) continue;
    std::queue<std::size_t> frontier;
    frontier.push(seed);
    visited[seed] = true;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      order.push_back(u);
      neighbours.clear();
      for (std::size_t k = rowPtr[u]; k < rowPtr[u + 1]; ++k) {
        const std::size_t v = static_cast<std::size_t>(col[k]);
        if (v != u && !visited[v]) {
          visited[v] = true;
          neighbours.push_back(v);
        }
      }
      // Cuthill-McKee visits neighbours in ascending degree order.
      std::sort(neighbours.begin(), neighbours.end(),
                [&](std::size_t x, std::size_t y) {
                  return degree(x) < degree(y);
                });
      for (std::size_t v : neighbours) frontier.push(v);
    }
  }
  GRAPHENE_CHECK(order.size() == n, "RCM traversal lost vertices");

  // Reverse, and convert visit order → permutation (perm[old] = new).
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[order[i]] = n - 1 - i;
  }
  return perm;
}

namespace {

double norm(std::span<const double> v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

void normalise(std::span<double> v) {
  double s = norm(v);
  if (s == 0) return;
  for (double& x : v) x /= s;
}

/// Unpreconditioned CG solve to moderate accuracy (inner solver of the
/// inverse power iteration).
void cgSolve(const CsrMatrix& a, std::span<const double> b,
             std::span<double> x, std::size_t maxIter, double tol) {
  const std::size_t n = a.rows();
  std::vector<double> r(b.begin(), b.end()), p = r, Ap(n);
  std::fill(x.begin(), x.end(), 0.0);
  double rr = 0;
  for (double v : r) rr += v * v;
  const double stop = tol * tol * rr;
  for (std::size_t it = 0; it < maxIter && rr > stop && rr > 0; ++it) {
    a.spmv(p, Ap);
    double pAp = 0;
    for (std::size_t i = 0; i < n; ++i) pAp += p[i] * Ap[i];
    if (pAp <= 0) break;
    const double alpha = rr / pAp;
    double rrNew = 0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
      rrNew += r[i] * r[i];
    }
    const double beta = rrNew / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rrNew;
  }
}

}  // namespace

double estimateLargestEigenvalue(const CsrMatrix& a, std::size_t iterations,
                                 std::uint64_t seed) {
  const std::size_t n = a.rows();
  Rng rng(seed);
  std::vector<double> v(n), Av(n);
  for (double& x : v) x = rng.uniform(-1, 1);
  normalise(v);
  double lambda = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    a.spmv(v, Av);
    lambda = 0;
    for (std::size_t i = 0; i < n; ++i) lambda += v[i] * Av[i];
    normalise(Av);
    std::swap(v, Av);
  }
  return lambda;
}

double estimateSmallestEigenvalue(const CsrMatrix& a, std::size_t iterations,
                                  std::uint64_t seed) {
  const std::size_t n = a.rows();
  Rng rng(seed);
  std::vector<double> v(n), w(n);
  for (double& x : v) x = rng.uniform(-1, 1);
  normalise(v);
  double mu = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    cgSolve(a, v, w, 200, 1e-8);
    // Rayleigh quotient of A at the (normalised) inverse iterate.
    double wNorm = norm(w);
    if (wNorm == 0) break;
    for (double& x : w) x /= wNorm;
    std::vector<double> Aw(n);
    a.spmv(w, Aw);
    mu = 0;
    for (std::size_t i = 0; i < n; ++i) mu += w[i] * Aw[i];
    std::swap(v, w);
  }
  return mu;
}

double estimateConditionNumber(const CsrMatrix& a) {
  const double hi = estimateLargestEigenvalue(a);
  const double lo = estimateSmallestEigenvalue(a);
  GRAPHENE_CHECK(lo > 0, "condition estimate needs an SPD matrix");
  return hi / lo;
}

}  // namespace graphene::matrix
