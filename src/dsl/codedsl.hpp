// CodeDSL — the tile-centric codelet description language (paper §III).
//
// Algorithms written in CodeDSL run from the perspective of one tile and can
// only access the parts of tensors mapped to the executing tile. The language
// is embedded in C++ and dynamically typed: `Value` wraps an expression of
// any element type, and control functions (For / If / While) trace their
// lambda bodies into the codelet IR.
//
// Every named Value is a mutable codelet variable: constructing or assigning
// one emits an Assign statement, so updates inside traced loops behave like
// the generated C code would.
#pragma once

#include <functional>

#include "dsl/codedsl_ir.hpp"

namespace graphene::dsl {

/// Collects the IR of one codelet while its C++ description runs (trace /
/// symbolic execution). Exactly one builder is active per thread at a time.
class CodeletBuilder {
 public:
  CodeletBuilder();
  ~CodeletBuilder();
  CodeletBuilder(const CodeletBuilder&) = delete;
  CodeletBuilder& operator=(const CodeletBuilder&) = delete;

  static CodeletBuilder& current();
  static bool active();

  int newVar();
  void emit(StmtPtr stmt);
  void pushBody(StmtList* body);
  void popBody();
  void markUsesWorkers();
  void setNumArgs(std::size_t n) { ir_.numArgs = n; }

  /// Finalises and returns the codelet IR.
  CodeletIR finish();

 private:
  CodeletIR ir_;
  std::vector<StmtList*> bodyStack_;
};

class Value;

/// Proxy for `x[i]`: readable as a Value, assignable to emit a store.
class ElementRef {
 public:
  ElementRef(int arg, ExprPtr index, DType type)
      : arg_(arg), index_(std::move(index)), type_(type) {}

  /// Store: x[i] = value.
  ElementRef& operator=(const Value& value);
  ElementRef& operator=(const ElementRef& other);

  /// Load: used wherever a Value is expected.
  operator Value() const;  // NOLINT(google-explicit-constructor)

  ExprPtr loadExpr() const;

 private:
  int arg_;
  ExprPtr index_;
  DType type_;
};

/// A dynamically typed CodeDSL value. Plain construction/assignment emits
/// variable statements; tensor-argument handles additionally support
/// indexing and size().
class Value {
 public:
  // Literals.
  Value(int v);                 // NOLINT(google-explicit-constructor)
  Value(float v);               // NOLINT(google-explicit-constructor)
  Value(double v);              // NOLINT: stored as float32 (device native)
  Value(bool v);                // NOLINT(google-explicit-constructor)
  Value(graph::Scalar v);       // NOLINT: any element type

  /// Copying creates a new codelet variable initialised from the source.
  Value(const Value& other);
  Value& operator=(const Value& other);
  Value(const ElementRef& ref);  // NOLINT(google-explicit-constructor)

  /// Wraps a raw expression as an unnamed temporary (no variable emitted).
  /// Internal use only — temporaries cannot be assigned to.
  static Value temporary(ExprPtr expr);

  /// Declares a fresh codelet variable initialised with `expr` and returns
  /// it. All operator results go through this (three-address form), which
  /// keeps values assignable despite C++17 guaranteed copy elision.
  static Value named(ExprPtr expr);

  /// Creates a tensor-argument handle (used by Execute).
  static Value argument(int argIndex, DType type);

  /// Tensor-argument indexing: x[i].
  ElementRef operator[](const Value& index) const;

  /// Tensor-argument local size: x.size().
  Value size() const;

  /// Explicit type conversion, e.g. v.cast(DType::DoubleWord).
  Value cast(DType type) const;

  DType type() const;
  ExprPtr expr() const;
  bool isArgument() const { return argIndex_ >= 0; }
  int argIndex() const { return argIndex_; }

 private:
  Value() = default;
  ExprPtr expr_;       // how to read this value
  int varId_ = -1;     // variable slot when this is a named value
  int argIndex_ = -1;  // codelet argument index when this is a tensor handle
};

// Arithmetic / comparison operators (each overload also accepts literals via
// Value's implicit constructors).
Value operator+(const Value& a, const Value& b);
Value operator-(const Value& a, const Value& b);
Value operator*(const Value& a, const Value& b);
Value operator/(const Value& a, const Value& b);
Value operator%(const Value& a, const Value& b);
Value operator<(const Value& a, const Value& b);
Value operator<=(const Value& a, const Value& b);
Value operator>(const Value& a, const Value& b);
Value operator>=(const Value& a, const Value& b);
Value operator==(const Value& a, const Value& b);
Value operator!=(const Value& a, const Value& b);
Value operator&&(const Value& a, const Value& b);
Value operator||(const Value& a, const Value& b);
Value operator-(const Value& a);
Value operator!(const Value& a);

Value Min(const Value& a, const Value& b);
Value Max(const Value& a, const Value& b);
Value Abs(const Value& a);
Value Sqrt(const Value& a);

/// Lazy operand for Select: unlike a Value (which is evaluated where it is
/// constructed), an ElementRef passed here stays inside the select expression
/// and is only loaded when its branch is taken — so guarded indexing like
/// Select(c < n, owned[c], halo[c - n]) never performs the untaken load.
class SelectOperand {
 public:
  SelectOperand(const Value& v) : expr_(v.expr()) {}           // NOLINT
  SelectOperand(const ElementRef& r) : expr_(r.loadExpr()) {}  // NOLINT
  SelectOperand(int v);                                        // NOLINT
  SelectOperand(float v);                                      // NOLINT
  SelectOperand(double v);                                     // NOLINT
  const ExprPtr& expr() const { return expr_; }

 private:
  ExprPtr expr_;
};

/// Conditional select (the DSL's replacement for the ternary operator).
/// Only the chosen operand is evaluated.
Value Select(const Value& cond, const SelectOperand& ifTrue,
             const SelectOperand& ifFalse);
/// Id of the executing worker thread (0 .. numWorkers-1).
Value WorkerId();

/// for (i = begin; i < end; i += step) body(i)
void For(const Value& begin, const Value& end, const Value& step,
         const std::function<void(Value)>& body);

/// Worker-parallel for: iterations are distributed across the tile's six
/// worker threads (iputhreading model) and synchronised afterwards. The body
/// must not carry loop-to-loop dependencies.
void ParallelFor(const Value& begin, const Value& end,
                 const std::function<void(Value)>& body);

/// if (cond) { then() } else { otherwise() }
void If(const Value& cond, const std::function<void()>& then,
        const std::function<void()>& otherwise = {});

/// while (cond()) { body() } — the condition is a generator lambda because
/// values are traced eagerly: it is traced once before the loop and once at
/// the end of the body, so it is genuinely re-evaluated every iteration.
void While(const std::function<Value()>& cond,
           const std::function<void()>& body);

}  // namespace graphene::dsl
