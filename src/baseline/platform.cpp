#include "baseline/platform.hpp"

#include <algorithm>

namespace graphene::baseline {

PlatformSpec xeon8470q() {
  PlatformSpec p;
  p.name = "Xeon 8470Q";
  p.memBandwidth = 307e9;
  p.peakFlops = 2.3e12;
  p.tdpWatts = 350;
  p.launchSeconds = 4e-6;  // MPI collective per solver step
  p.triSolveBwFraction = 0.35;
  return p;
}

PlatformSpec h100Sxm() {
  PlatformSpec p;
  p.name = "H100 SXM";
  p.memBandwidth = 3.35e12;
  p.peakFlops = 34e12;
  p.tdpWatts = 700;
  p.launchSeconds = 3e-6;  // kernel launch latency
  p.triSolveBwFraction = 0.6;
  p.perLevelLaunch = true;  // cuSPARSE tri-solve: one kernel per level
  return p;
}

PlatformSpec m2000() {
  PlatformSpec p;
  p.name = "M2000 (4x Mk2 IPU)";
  p.memBandwidth = 47.5e12;  // aggregate tile SRAM bandwidth
  p.peakFlops = 11e12;       // FP32 (no FP64 hardware)
  p.tdpWatts = 420;          // measured IPU-only draw (§VI-A)
  return p;
}

double spmvSeconds(const PlatformSpec& p, std::size_t rows, std::size_t nnz) {
  const double bytes = 12.0 * static_cast<double>(nnz) +
                       20.0 * static_cast<double>(rows);
  const double flops = 2.0 * static_cast<double>(nnz);
  return std::max(bytes / p.memBandwidth, flops / p.peakFlops) +
         p.launchSeconds;
}

double triSolveSeconds(const PlatformSpec& p, std::size_t rows,
                       std::size_t nnz, std::size_t levels) {
  // Each sweep touches ~half the off-diagonal entries plus the solution and
  // rhs vectors.
  const double bytes = 12.0 * static_cast<double>(nnz) / 2.0 +
                       24.0 * static_cast<double>(rows);
  const double bwTime = bytes / (p.memBandwidth * p.triSolveBwFraction);
  // Only accelerators pay a launch per level-set level; a CPU sweeps the
  // levels inside one loop nest.
  const double launchTime =
      p.perLevelLaunch
          ? p.launchSeconds * static_cast<double>(std::max<std::size_t>(levels, 1))
          : p.launchSeconds;
  return bwTime + launchTime;
}

double bicgstabIterationSeconds(const PlatformSpec& p, std::size_t rows,
                                std::size_t nnz, std::size_t levels,
                                bool withIlu) {
  const double spmv = spmvSeconds(p, rows, nnz);
  // AXPY-type op: 3 vectors × 8 B; dot: 2 vectors × 8 B + a reduction step.
  const double axpy =
      24.0 * static_cast<double>(rows) / p.memBandwidth + p.launchSeconds;
  const double dotOp =
      16.0 * static_cast<double>(rows) / p.memBandwidth + 2 * p.launchSeconds;
  double total = 2 * spmv + 6 * axpy + 4 * dotOp;
  if (withIlu) {
    // Two preconditioner applies per iteration, two triangular sweeps each.
    total += 4 * triSolveSeconds(p, rows, nnz, levels);
  }
  return total;
}

double energyJoules(const PlatformSpec& p, double seconds) {
  return p.tdpWatts * seconds;
}

}  // namespace graphene::baseline
