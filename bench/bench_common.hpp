// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (§VI) at a scale that fits this host; it prints the sizes it
// used, the series/rows of the original, and the qualitative check the
// figure supports. EXPERIMENTS.md records paper-vs-measured for all of them.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/engine.hpp"
#include "ipu/topology.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace graphene::bench {

/// A distributed system ready to run: context + matrix + engine.
struct DistSystem {
  std::unique_ptr<dsl::Context> ctx;
  std::unique_ptr<solver::DistMatrix> A;
  std::unique_ptr<graph::Engine> engine;
};

/// Builds context/layout/matrix for `g` on `topo` via the pod-aware
/// Partitioner. Emit programs via the context before creating more;
/// upload() happens in runProgram.
inline DistSystem makeSystem(const matrix::GeneratedMatrix& g,
                             const ipu::Topology& topo) {
  DistSystem s;
  s.ctx = std::make_unique<dsl::Context>(topo.target());
  partition::Partitioner part(topo);
  s.A = std::make_unique<solver::DistMatrix>(g.matrix, part.layout(g));
  return s;
}

/// Legacy entry point: a raw target is wrapped into its Topology.
inline DistSystem makeSystem(const matrix::GeneratedMatrix& g,
                             const ipu::IpuTarget& target) {
  return makeSystem(g, ipu::Topology::fromTarget(target));
}

/// Runs `program` once on a fresh engine and returns the profile. An
/// optional trace sink captures the execution timeline alongside.
inline ipu::Profile runProgram(DistSystem& s, const graph::ProgramPtr& program,
                               std::span<const double> x,
                               const dsl::Tensor& xTensor,
                               support::TraceSink* trace = nullptr) {
  s.engine = std::make_unique<graph::Engine>(s.ctx->graph());
  if (trace != nullptr) s.engine->setTraceSink(trace);
  s.A->upload(*s.engine);
  if (!x.empty()) s.A->writeVector(*s.engine, xTensor, x);
  s.engine->run(program);
  return s.engine->profile();
}

inline std::vector<double> randomRhs(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> v(n);
  // Snap through float32: the device system is single precision.
  for (double& x : v) {
    x = static_cast<double>(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return v;
}

inline void printHeader(const std::string& title, const std::string& paper) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper.c_str());
  std::printf("==========================================================\n");
}

}  // namespace graphene::bench
