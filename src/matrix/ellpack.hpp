// ELLPACK and Sliced ELLPACK (SELL) sparse formats (§II-C).
//
// The paper discusses these vector-friendly formats (ITPACKV's ELLPACK and
// Bell & Garland's SELL) and argues that the IPU's cache-less design and
// narrow vector units make their benefit small, leaving them as future work.
// This implementation explores exactly that trade-off: both formats with
// conversions, SpMV kernels, and padding/footprint statistics, compared
// against CSR in `bench_ablation_formats`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/csr.hpp"

namespace graphene::matrix {

/// ELLPACK: every row padded to the longest row; column-major storage so
/// consecutive lanes (rows) read consecutive memory — ideal for wide SIMD,
/// wasteful when row lengths vary.
class EllpackMatrix {
 public:
  static EllpackMatrix fromCsr(const CsrMatrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t rowWidth() const { return width_; }
  std::size_t nnz() const { return nnz_; }

  /// Stored entries including padding.
  std::size_t paddedEntries() const { return rows_ * width_; }

  /// Padding overhead: padded / nnz.
  double paddingFactor() const {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(paddedEntries()) /
                           static_cast<double>(nnz_);
  }

  /// Bytes of value + index storage.
  std::size_t footprintBytes() const { return paddedEntries() * (8 + 4); }

  /// y = A * x.
  void spmv(std::span<const double> x, std::span<double> y) const;

  CsrMatrix toCsr() const;

 private:
  std::size_t rows_ = 0, cols_ = 0, width_ = 0, nnz_ = 0;
  // Column-major: entry (r, j) at val_[j * rows_ + r]. Padded columns use
  // index 0 with value 0 (safe to multiply).
  std::vector<double> val_;
  std::vector<std::int32_t> col_;
};

/// Sliced ELLPACK: rows are grouped into slices of height C; each slice is
/// padded only to its own longest row, recovering most of ELLPACK's
/// vectorisability at a fraction of the padding.
class SellMatrix {
 public:
  static SellMatrix fromCsr(const CsrMatrix& a, std::size_t sliceHeight = 8);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t sliceHeight() const { return c_; }
  std::size_t numSlices() const { return sliceWidth_.size(); }
  std::size_t nnz() const { return nnz_; }

  std::size_t paddedEntries() const { return val_.size(); }

  double paddingFactor() const {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(paddedEntries()) /
                           static_cast<double>(nnz_);
  }

  std::size_t footprintBytes() const { return paddedEntries() * (8 + 4); }

  /// y = A * x.
  void spmv(std::span<const double> x, std::span<double> y) const;

  CsrMatrix toCsr() const;

 private:
  std::size_t rows_ = 0, cols_ = 0, c_ = 0, nnz_ = 0;
  std::vector<std::size_t> sliceOffset_;  // into val_/col_, per slice
  std::vector<std::size_t> sliceWidth_;   // padded width per slice
  // Within a slice: column-major over its C rows.
  std::vector<double> val_;
  std::vector<std::int32_t> col_;
};

}  // namespace graphene::matrix
