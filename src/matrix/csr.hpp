// Sparse matrix containers: canonical CSR and the paper's modified CRS.
//
// The framework's device format (§II-C) stores the diagonal separately in a
// dense array and keeps only off-diagonal entries in the CRS structure,
// saving the diagonal's column indices and giving solvers like Gauss-Seidel
// direct access to a_ii. Host-side analysis and baselines use plain CSR in
// double precision.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace graphene::matrix {

struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed Sparse Row matrix (double precision, host side).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> rowPtr,
            std::vector<std::int32_t> col, std::vector<double> val);

  /// Builds from (possibly unsorted, possibly duplicated) triplets;
  /// duplicates are summed.
  static CsrMatrix fromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  std::span<const std::size_t> rowPtr() const { return rowPtr_; }
  std::span<const std::int32_t> colIdx() const { return col_; }
  std::span<const double> values() const { return val_; }
  std::span<double> values() { return val_; }

  /// Number of entries in one row.
  std::size_t rowNnz(std::size_t r) const {
    return rowPtr_[r + 1] - rowPtr_[r];
  }

  /// Reads A(r, c); zero if not stored.
  double at(std::size_t r, std::size_t c) const;

  /// y = A * x (double precision reference).
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Structural + numerical symmetry within `tol` (relative).
  bool isSymmetric(double tol = 1e-12) const;

  /// True when every diagonal entry is present and nonzero.
  bool hasFullDiagonal() const;

  /// Max |r - c| over stored entries.
  std::size_t bandwidth() const;

  /// Applies a symmetric permutation: B(newI, newJ) = A(oldI, oldJ), where
  /// perm[oldI] = newI.
  CsrMatrix permuted(std::span<const std::size_t> perm) const;

  /// Transpose.
  CsrMatrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::int32_t> col_;
  std::vector<double> val_;
};

/// Modified CRS (§II-C): dense diagonal + off-diagonal CRS.
class ModifiedCrs {
 public:
  ModifiedCrs() = default;

  /// Splits a CSR matrix; every diagonal entry must exist and be nonzero.
  static ModifiedCrs fromCsr(const CsrMatrix& a);

  CsrMatrix toCsr() const;

  std::size_t rows() const { return diag_.size(); }
  std::size_t nnz() const { return val_.size() + diag_.size(); }

  std::span<const double> diagonal() const { return diag_; }
  std::span<const std::size_t> rowPtr() const { return rowPtr_; }
  std::span<const std::int32_t> colIdx() const { return col_; }
  std::span<const double> values() const { return val_; }

  /// y = A * x.
  void spmv(std::span<const double> x, std::span<double> y) const;

 private:
  std::vector<double> diag_;
  std::vector<std::size_t> rowPtr_;  // off-diagonal entries only
  std::vector<std::int32_t> col_;
  std::vector<double> val_;
};

/// Summary statistics printed by benches (Table II columns).
struct MatrixStats {
  std::size_t rows = 0;
  std::size_t nnz = 0;
  double avgNnzPerRow = 0;
  std::size_t bandwidth = 0;
  bool symmetric = false;
  bool fullDiagonal = false;
};

MatrixStats computeStats(const CsrMatrix& a);

}  // namespace graphene::matrix
