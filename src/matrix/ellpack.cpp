#include "matrix/ellpack.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace graphene::matrix {

EllpackMatrix EllpackMatrix::fromCsr(const CsrMatrix& a) {
  EllpackMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.nnz_ = a.nnz();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    m.width_ = std::max(m.width_, a.rowNnz(r));
  }
  m.val_.assign(m.rows_ * m.width_, 0.0);
  m.col_.assign(m.rows_ * m.width_, 0);
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t j = 0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k, ++j) {
      m.val_[j * m.rows_ + r] = val[k];
      m.col_[j * m.rows_ + r] = col[k];
    }
  }
  return m;
}

void EllpackMatrix::spmv(std::span<const double> x,
                         std::span<double> y) const {
  GRAPHENE_CHECK(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  // Column-of-entries major loop: streaming access over val_/col_, the
  // pattern wide-SIMD machines vectorise across rows.
  for (std::size_t j = 0; j < width_; ++j) {
    const double* v = val_.data() + j * rows_;
    const std::int32_t* c = col_.data() + j * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      y[r] += v[r] * x[static_cast<std::size_t>(c[r])];
    }
  }
}

CsrMatrix EllpackMatrix::toCsr() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < width_; ++j) {
      double v = val_[j * rows_ + r];
      if (v != 0.0) {
        trips.push_back(
            Triplet{r, static_cast<std::size_t>(col_[j * rows_ + r]), v});
      }
    }
  }
  return CsrMatrix::fromTriplets(rows_, cols_, std::move(trips));
}

SellMatrix SellMatrix::fromCsr(const CsrMatrix& a, std::size_t sliceHeight) {
  GRAPHENE_CHECK(sliceHeight > 0, "slice height must be positive");
  SellMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.c_ = sliceHeight;
  m.nnz_ = a.nnz();
  const std::size_t numSlices = (a.rows() + sliceHeight - 1) / sliceHeight;
  m.sliceOffset_.resize(numSlices);
  m.sliceWidth_.resize(numSlices);
  std::size_t total = 0;
  for (std::size_t s = 0; s < numSlices; ++s) {
    std::size_t width = 0;
    for (std::size_t i = 0; i < sliceHeight; ++i) {
      std::size_t r = s * sliceHeight + i;
      if (r < a.rows()) width = std::max(width, a.rowNnz(r));
    }
    m.sliceOffset_[s] = total;
    m.sliceWidth_[s] = width;
    total += width * sliceHeight;
  }
  m.val_.assign(total, 0.0);
  m.col_.assign(total, 0);
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  for (std::size_t s = 0; s < numSlices; ++s) {
    for (std::size_t i = 0; i < sliceHeight; ++i) {
      std::size_t r = s * sliceHeight + i;
      if (r >= a.rows()) continue;
      std::size_t j = 0;
      for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k, ++j) {
        std::size_t idx = m.sliceOffset_[s] + j * sliceHeight + i;
        m.val_[idx] = val[k];
        m.col_[idx] = col[k];
      }
    }
  }
  return m;
}

void SellMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  GRAPHENE_CHECK(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t s = 0; s < sliceWidth_.size(); ++s) {
    const std::size_t base = s * c_;
    const std::size_t lanes = std::min(c_, rows_ - base);
    for (std::size_t j = 0; j < sliceWidth_[s]; ++j) {
      const double* v = val_.data() + sliceOffset_[s] + j * c_;
      const std::int32_t* c = col_.data() + sliceOffset_[s] + j * c_;
      for (std::size_t i = 0; i < lanes; ++i) {
        y[base + i] += v[i] * x[static_cast<std::size_t>(c[i])];
      }
    }
  }
}

CsrMatrix SellMatrix::toCsr() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz_);
  for (std::size_t s = 0; s < sliceWidth_.size(); ++s) {
    const std::size_t base = s * c_;
    for (std::size_t i = 0; i < c_ && base + i < rows_; ++i) {
      for (std::size_t j = 0; j < sliceWidth_[s]; ++j) {
        std::size_t idx = sliceOffset_[s] + j * c_ + i;
        if (val_[idx] != 0.0) {
          trips.push_back(Triplet{base + i,
                                  static_cast<std::size_t>(col_[idx]),
                                  val_[idx]});
        }
      }
    }
  }
  return CsrMatrix::fromTriplets(rows_, cols_, std::move(trips));
}

}  // namespace graphene::matrix
