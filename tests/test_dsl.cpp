// End-to-end tests of CodeDSL + TensorDSL on the simulated IPU.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/tensor.hpp"
#include "graph/engine.hpp"

using namespace graphene;
using namespace graphene::dsl;

namespace {

ipu::IpuTarget smallTarget(std::size_t tiles = 8) {
  return ipu::IpuTarget::testTarget(tiles);
}

}  // namespace

TEST(TensorDsl, ElementwiseAddAndScale) {
  Context ctx(smallTarget());
  Tensor a(DType::Float32, 100, "a");
  Tensor b(DType::Float32, 100, "b");
  Tensor c(DType::Float32, 100, "c");
  c = a * 2.0f + b;

  graph::Engine engine(ctx.graph());
  std::vector<float> av(100), bv(100);
  for (int i = 0; i < 100; ++i) {
    av[static_cast<std::size_t>(i)] = static_cast<float>(i);
    bv[static_cast<std::size_t>(i)] = 0.5f;
  }
  engine.writeTensor<float>(a.id(), av);
  engine.writeTensor<float>(b.id(), bv);
  engine.run(ctx.program());

  auto cv = engine.readTensor<float>(c.id());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(cv[static_cast<std::size_t>(i)],
                    2.0f * static_cast<float>(i) + 0.5f);
  }
}

TEST(TensorDsl, ScalarBroadcasting) {
  Context ctx(smallTarget());
  Tensor v(DType::Float32, 64, "v");
  Tensor alpha = Tensor::scalar(DType::Float32, "alpha");
  Tensor out(DType::Float32, 64, "out");
  out = v * alpha + 1.0f;

  graph::Engine engine(ctx.graph());
  std::vector<float> vv(64, 3.0f);
  engine.writeTensor<float>(v.id(), vv);
  engine.writeScalar(alpha.id(), graph::Scalar(2.5f));
  engine.run(ctx.program());

  auto ov = engine.readTensor<float>(out.id());
  for (float x : ov) EXPECT_FLOAT_EQ(x, 3.0f * 2.5f + 1.0f);
}

TEST(TensorDsl, ReduceSumsAcrossTiles) {
  Context ctx(smallTarget(4));
  Tensor v(DType::Float32, 1000, "v");
  Tensor total = Expression(v).reduce();

  graph::Engine engine(ctx.graph());
  std::vector<float> vv(1000, 1.0f);
  engine.writeTensor<float>(v.id(), vv);
  engine.run(ctx.program());
  EXPECT_FLOAT_EQ(static_cast<float>(engine.readScalar(total.id()).asFloat()),
                  1000.0f);
}

TEST(TensorDsl, DotProductOfExpression) {
  Context ctx(smallTarget(4));
  Tensor a(DType::Float32, 256, "a");
  Tensor b(DType::Float32, 256, "b");
  Tensor dot = Dot(a, b);

  graph::Engine engine(ctx.graph());
  std::vector<float> av(256), bv(256);
  double expect = 0;
  for (int i = 0; i < 256; ++i) {
    av[static_cast<std::size_t>(i)] = static_cast<float>(i % 7) * 0.25f;
    bv[static_cast<std::size_t>(i)] = static_cast<float>(i % 3) - 1.0f;
    expect += static_cast<double>(av[static_cast<std::size_t>(i)]) *
              bv[static_cast<std::size_t>(i)];
  }
  engine.writeTensor<float>(a.id(), av);
  engine.writeTensor<float>(b.id(), bv);
  engine.run(ctx.program());
  EXPECT_NEAR(engine.readScalar(dot.id()).toHostDouble(), expect, 1e-3);
}

TEST(CodeDsl, LeibnizPiFromThePaper) {
  // The paper's Figure 1 example: fill x with the Leibniz sequence via
  // CodeDSL, reduce and scale via TensorDSL.
  Context ctx(smallTarget(4));
  Tensor x(DType::Float32, 10000, "x");
  Execute({x}, [](Value xv) {
    For(0, xv.size(), 1, [&](Value i) {
      // Global element index = local index — per-tile offset handled below:
      // the sequence is position-dependent, so we use a per-tile offset
      // tensor in the distributed variant; here each tile's local fill is
      // validated against itself via the offset-free variant:
      xv[i] = Select(i % 2 == 0, 1.0f, -1.0f) / (2.0f * i.cast(DType::Float32) + 1.0f);
    });
  });
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  auto xs = engine.readTensor<float>(x.id());
  // Validate per-tile local sequences.
  const auto& info = ctx.graph().tensor(x.id());
  std::size_t flat = 0;
  for (std::size_t tile = 0; tile < 4; ++tile) {
    for (std::size_t i = 0; i < info.mapping.sizePerTile[tile]; ++i, ++flat) {
      float expect = ((i % 2 == 0) ? 1.0f : -1.0f) /
                     (2.0f * static_cast<float>(i) + 1.0f);
      ASSERT_FLOAT_EQ(xs[flat], expect);
    }
  }
}

TEST(CodeDsl, WhileAndIfInsideCodelet) {
  Context ctx(smallTarget(1));
  Tensor out(DType::Int32, 1, "out");
  Execute({out}, [](Value o) {
    Value n = 0;
    Value sum = 0;
    While([&] { return n < 10; }, [&] {
      If(n % 2 == 0, [&] { sum = sum + n; });
      n = n + 1;
    });
    o[0] = sum;  // 0+2+4+6+8 = 20
  });
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  EXPECT_EQ(engine.readTensor<std::int32_t>(out.id())[0], 20);
}

TEST(TensorDsl, WhileLoopCountsOnDevice) {
  Context ctx(smallTarget(2));
  Tensor iter = Tensor::scalar(DType::Int32, "iter");
  While(Expression(iter) < 7, [&] { iter = Expression(iter) + 1; });

  graph::Engine engine(ctx.graph());
  engine.writeScalar(iter.id(), graph::Scalar(std::int32_t(0)));
  engine.run(ctx.program());
  EXPECT_EQ(engine.readScalar(iter.id()).asInt(), 7);
}

TEST(TensorDsl, IfBranchesOnDevice) {
  Context ctx(smallTarget(2));
  Tensor flag = Tensor::scalar(DType::Float32, "flag");
  Tensor out = Tensor::scalar(DType::Float32, "out");
  If(Expression(flag) > 0.0f, [&] { out = Expression(1.0f); },
     [&] { out = Expression(-1.0f); });

  {
    graph::Engine engine(ctx.graph());
    engine.writeScalar(flag.id(), graph::Scalar(5.0f));
    engine.run(ctx.program());
    EXPECT_FLOAT_EQ(engine.readScalar(out.id()).asFloat(), 1.0f);
  }
  {
    graph::Engine engine(ctx.graph());
    engine.writeScalar(flag.id(), graph::Scalar(-5.0f));
    engine.run(ctx.program());
    EXPECT_FLOAT_EQ(engine.readScalar(out.id()).asFloat(), -1.0f);
  }
}

TEST(TensorDsl, RepeatRunsFixedCount) {
  Context ctx(smallTarget(2));
  Tensor acc = Tensor::scalar(DType::Float32, "acc");
  Repeat(5, [&] { acc = Expression(acc) + 2.0f; });
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  EXPECT_FLOAT_EQ(engine.readScalar(acc.id()).asFloat(), 10.0f);
}

TEST(TensorDsl, DeepCopySemantics) {
  Context ctx(smallTarget(2));
  Tensor a(DType::Float32, 16, "a");
  // Fill a with 1.0.
  a = Expression(1.0f) + 0.0f * Expression(a);
  Tensor b = a;          // deep copy
  a = Expression(a) + 1.0f;  // must not affect b
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  auto av = engine.readTensor<float>(a.id());
  auto bv = engine.readTensor<float>(b.id());
  for (float x : av) EXPECT_FLOAT_EQ(x, 2.0f);
  for (float x : bv) EXPECT_FLOAT_EQ(x, 1.0f);
}

TEST(TensorDsl, DoubleWordElementwisePrecision) {
  Context ctx(smallTarget(2));
  Tensor a(DType::DoubleWord, 32, "a");
  Tensor b(DType::DoubleWord, 32, "b");
  Tensor c(DType::DoubleWord, 32, "c");
  c = Expression(a) + Expression(b);

  graph::Engine engine(ctx.graph());
  std::vector<twofloat::Float2> av(32), bv(32);
  for (int i = 0; i < 32; ++i) {
    av[static_cast<std::size_t>(i)] = twofloat::Float2::fromWide(1.0 + 1e-9 * i);
    bv[static_cast<std::size_t>(i)] = twofloat::Float2::fromWide(2e-9);
  }
  engine.writeTensor<twofloat::Float2>(a.id(), av);
  engine.writeTensor<twofloat::Float2>(b.id(), bv);
  engine.run(ctx.program());
  auto cv = engine.readTensor<twofloat::Float2>(c.id());
  for (int i = 0; i < 32; ++i) {
    // Far below float32 resolution — only double-word keeps this.
    EXPECT_NEAR(cv[static_cast<std::size_t>(i)].toWide(),
                1.0 + 1e-9 * i + 2e-9, 1e-13);
  }
}

TEST(TensorDsl, Float64EmulatedElementwise) {
  Context ctx(smallTarget(2));
  Tensor a(DType::Float64, 16, "a");
  Tensor c(DType::Float64, 16, "c");
  c = Expression(a) * Expression(a);

  graph::Engine engine(ctx.graph());
  std::vector<twofloat::SoftDouble> av(16);
  for (int i = 0; i < 16; ++i) {
    av[static_cast<std::size_t>(i)] =
        twofloat::SoftDouble::fromDouble(1.0 + 1e-12 * i);
  }
  engine.writeTensor<twofloat::SoftDouble>(a.id(), av);
  engine.run(ctx.program());
  auto cv = engine.readTensor<twofloat::SoftDouble>(c.id());
  for (int i = 0; i < 16; ++i) {
    double x = 1.0 + 1e-12 * i;
    EXPECT_EQ(cv[static_cast<std::size_t>(i)].toDouble(), x * x);
  }
}

TEST(TensorDsl, CyclesAreDeterministicAndPositive) {
  auto runOnce = [] {
    Context ctx(smallTarget(4));
    Tensor a(DType::Float32, 128, "a");
    Tensor b(DType::Float32, 128, "b");
    Tensor c(DType::Float32, 128, "c");
    c = Expression(a) * 3.0f + Expression(b);
    [[maybe_unused]] Tensor d = Dot(c, c);
    graph::Engine engine(ctx.graph());
    engine.run(ctx.program());
    return engine.profile().totalCycles();
  };
  double c1 = runOnce();
  double c2 = runOnce();
  EXPECT_GT(c1, 0.0);
  EXPECT_EQ(c1, c2);  // the IPU is cycle-deterministic (§VI-A)
}

TEST(TensorDsl, ProfileCategoriesAreAttributed) {
  Context ctx(smallTarget(4));
  Tensor a(DType::Float32, 64, "a");
  Tensor b(DType::Float32, 64, "b");
  b = Expression(a) + 1.0f;
  [[maybe_unused]] Tensor s = Expression(b).reduce();
  graph::Engine engine(ctx.graph());
  engine.run(ctx.program());
  const auto& prof = engine.profile();
  EXPECT_GT(prof.computeCycles.at("elementwise"), 0.0);
  EXPECT_GT(prof.computeCycles.at("reduce"), 0.0);
  EXPECT_GT(prof.exchangeCycles, 0.0);  // reduce gathers + broadcasts
}

TEST(CodeDsl, ParallelForUsesWorkers) {
  // The same work split over 6 workers must be ~6x faster than sequential.
  auto run = [](bool parallel) {
    Context ctx(smallTarget(1));
    Tensor v(DType::Float32, 600, "v");
    Execute({v}, [&](Value t) {
      if (parallel) {
        ParallelFor(0, t.size(), [&](Value i) { t[i] = i * 2.0f; });
      } else {
        For(0, t.size(), 1, [&](Value i) { t[i] = i * 2.0f; });
      }
    });
    graph::Engine engine(ctx.graph());
    engine.run(ctx.program());
    auto vals = engine.readTensor<float>(v.id());
    for (int i = 0; i < 600; ++i) {
      EXPECT_FLOAT_EQ(vals[static_cast<std::size_t>(i)], 2.0f * i);
    }
    return engine.profile().totalComputeCycles();
  };
  double seq = run(false);
  double par = run(true);
  // Six workers plus cheaper per-iteration bookkeeping in the parallel
  // variant: between 4x and 12x.
  EXPECT_GT(seq / par, 4.0);
  EXPECT_LT(seq / par, 12.0);
}

TEST(TensorDsl, SramBudgetEnforced) {
  ipu::IpuTarget tiny = smallTarget(2);
  tiny.sramBytesPerTile = 1024;
  Context ctx(tiny);
  EXPECT_THROW(Tensor(DType::Float32, 10000, "too_big"), ResourceError);
}

TEST(TensorDsl, MappingMismatchRejected) {
  Context ctx(smallTarget(4));
  Tensor a(DType::Float32, 100, "a");
  Tensor b(DType::Float32, graph::TileMapping::ragged({70, 10, 10, 10}), "b");
  Tensor c(DType::Float32, 100, "c");
  EXPECT_THROW(c = Expression(a) + Expression(b), Error);
}

TEST(TensorDsl, LazyMaterializationFusesIntoOneStep) {
  // a*2 + b - 1 must become a single Execute step (one fused codelet), not
  // three (§III-C).
  Context ctx(smallTarget(2));
  Tensor a(DType::Float32, 32, "a");
  Tensor b(DType::Float32, 32, "b");
  Tensor c(DType::Float32, 32, "c");
  std::size_t before = ctx.program()->children.size();
  c = Expression(a) * 2.0f + Expression(b) - 1.0f;
  std::size_t after = ctx.program()->children.size();
  EXPECT_EQ(after - before, 1u);
}

TEST(TensorDsl, ReduceKinds) {
  Context ctx(smallTarget(4));
  Tensor v(DType::Float32, 64, "v");
  Tensor sum = Expression(v).reduce(ReduceKind::Sum);
  Tensor mx = Expression(v).reduce(ReduceKind::Max);
  Tensor mn = Expression(v).reduce(ReduceKind::Min);
  Tensor inf = NormInf(Expression(v));
  graph::Engine engine(ctx.graph());
  std::vector<float> vals(64);
  for (int i = 0; i < 64; ++i) {
    vals[static_cast<std::size_t>(i)] = static_cast<float>((i * 37) % 101) - 50.0f;
  }
  engine.writeTensor<float>(v.id(), vals);
  engine.run(ctx.program());
  float expectSum = 0, expectMax = -1e30f, expectMin = 1e30f, expectInf = 0;
  for (float x : vals) {
    expectSum += x;
    expectMax = std::max(expectMax, x);
    expectMin = std::min(expectMin, x);
    expectInf = std::max(expectInf, std::abs(x));
  }
  EXPECT_NEAR(engine.readScalar(sum.id()).asFloat(), expectSum, 1e-3);
  EXPECT_FLOAT_EQ(engine.readScalar(mx.id()).asFloat(), expectMax);
  EXPECT_FLOAT_EQ(engine.readScalar(mn.id()).asFloat(), expectMin);
  EXPECT_FLOAT_EQ(engine.readScalar(inf.id()).asFloat(), expectInf);
}

TEST(TensorDsl, MaxReduceWithAllNegativeValues) {
  // The accumulator is seeded from the first element, not from zero, so an
  // all-negative vector reduces correctly.
  Context ctx(smallTarget(2));
  Tensor v(DType::Float32, 16, "v");
  Tensor mx = Expression(v).reduce(ReduceKind::Max);
  graph::Engine engine(ctx.graph());
  std::vector<float> vals(16);
  for (int i = 0; i < 16; ++i) vals[static_cast<std::size_t>(i)] = -5.0f - i;
  engine.writeTensor<float>(v.id(), vals);
  engine.run(ctx.program());
  EXPECT_FLOAT_EQ(engine.readScalar(mx.id()).asFloat(), -5.0f);
}
