// Deterministic fault injection for the simulated IPU.
//
// Real fabrics misbehave: tile SRAM takes single-event upsets, exchange
// transfers arrive corrupted or not at all, and a tile can fall behind its
// BSP peers. The simulator must be able to reproduce such behaviour *exactly*
// — a fault plan is seeded, and two runs of the same program under the same
// plan inject byte-identical faults — so that the solver layer's recovery
// paths (restart, checkpoint/rollback) are testable.
//
// A FaultPlan is configured from JSON (the same mechanism that configures
// the solver hierarchy) and attached to a graph::Engine via setFaultPlan().
// With no plan attached the engine's hooks are a single null-pointer test:
// cycle counts and results are bit-identical to a build without the
// framework. Every injected event is appended to the engine Profile's
// structured fault log.
//
// Plan document shape:
//   {
//     "seed": 42,
//     "faults": [
//       {"type": "bitflip",          // SRAM single-event upset
//        "tensor": "cg_x",           // substring match on tensor names
//        "superstep": 120,           // compute superstep; -1/absent = any
//        "element": -1,              // flat index; -1 = seeded-random
//        "bit": 30,                  // -1 = seeded-random
//        "probability": 1.0,         // per matching opportunity
//        "skip": 0,                  // skip the first N opportunities
//        "count": 1},                // at most N injections
//       {"type": "stuck-zero", "tensor": "bicg_rho"},   // SRAM stuck-at-0
//       {"type": "exchange-drop",    "tensor": "halo", "count": 1},
//       {"type": "exchange-corrupt", "tensor": "halo", "bit": 30},
//       {"type": "stall", "tile": 3, "cycles": 10000, "superstep": 5},
//       // Permanent (hard) faults — persist from the trigger superstep on:
//       {"type": "tile-dead", "tile": 3, "superstep": 40},
//       {"type": "link-degraded", "tile": 5, "factor": 8.0, "superstep": 10},
//       {"type": "sram-region-dead", "tensor": "cg_p", "element": 4,
//        "elements": 8, "superstep": 25},
//       // Pod-scale hard faults:
//       {"type": "ipu-dead", "ipu": 2, "superstep": 40},
//       {"type": "ipu-link-dead", "from": 0, "to": 1, "superstep": 12},
//       {"type": "ipu-link-degraded", "from": 1, "to": 2, "factor": 6.0,
//        "superstep": 12}
//     ]
//   }
// Exchange rules match on the *destination* tensor of a transfer and trigger
// per transfer; their "superstep" is the exchange-superstep index. Dropped
// and corrupted transfers are still priced normally — the fabric spent the
// cycles, the payload was lost or damaged in flight.
//
// Hard faults, unlike the transient rules above, ignore "probability",
// "skip" and "count": once the trigger superstep is reached (-1/absent =
// from the start) they stay active for the rest of the run. A dead tile
// stops executing its vertices (each of its compute supersteps instead
// charges "cycles", default 1e9 — what a watchdog sees as a hung tile) and
// its outgoing exchange transfers never happen; "tile-dead"'s trigger is on
// the compute-superstep clock. "link-degraded" multiplies the fabric cost of
// every exchange superstep at or after its (exchange-clock) trigger by
// "factor". "sram-region-dead" pins a region of `elements` cells starting at
// `element` (-1 = seeded-random start) to zero before every compute
// superstep — overwrites don't stick, which is what distinguishes it from a
// transient stuck-zero.
//
// The pod-scale kinds lift the same semantics one level up the hierarchy.
// "ipu-dead" kills every tile of chip "ipu" from its (compute-clock) trigger
// on: each of the chip's compute supersteps charges "cycles" (default 1e9,
// the watchdog-scale hang) and the chip's outgoing transfers are lost.
// "ipu-link-dead" severs the ordered (from, to) IPU-Link from its
// (exchange-clock) trigger — the exchange model re-routes the pair's traffic
// via a surviving chip, or raises a typed LinkPartitionedError when none
// exists. "ipu-link-degraded" multiplies the ordered pair's link cost by
// "factor" (default 4.0) instead of severing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipu/exchange.hpp"
#include "ipu/profile.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace graphene::ipu {

/// What the engine exposes to the injector. Keeps this layer independent of
/// the graph substrate: the engine adapts its tensor storage behind this
/// interface.
class FaultSurface {
 public:
  virtual ~FaultSurface() = default;

  virtual std::size_t numTensors() = 0;
  virtual std::string tensorName(std::size_t tensor) = 0;
  virtual std::size_t tensorElements(std::size_t tensor) = 0;

  /// Flips one bit of an element's raw storage (an SEU). Bit indices wrap
  /// modulo the element width.
  virtual void flipBit(std::size_t tensor, std::size_t element,
                       unsigned bit) = 0;

  /// Forces an element to zero (a stuck-at-zero cell).
  virtual void zeroElement(std::size_t tensor, std::size_t element) = 0;

  /// The profile whose fault log receives injected events.
  virtual Profile& profile() = 0;
};

/// Fate of one exchange transfer under the active plan.
enum class TransferFate { Deliver, Drop, Corrupt };

class FaultPlan {
 public:
  struct Rule {
    enum class Kind { BitFlip, StuckZero, ExchangeDrop, ExchangeCorrupt,
                      Stall, TileDead, LinkDegraded, SramRegionDead,
                      IpuDead, IpuLinkDead, IpuLinkDegraded };
    Kind kind = Kind::BitFlip;
    std::string tensor;            // substring of the target tensor's name
    std::int64_t superstep = -1;   // exact superstep trigger; -1 = any
                                   // (hard faults: trigger; -1 = from start)
    double probability = 1.0;      // per matching opportunity
    std::int64_t element = -1;     // -1 = seeded-random within the tensor
    int bit = -1;                  // -1 = seeded-random
    std::size_t tile = 0;          // stall / tile-dead / link target
    double stallCycles = 0;        // stall charge; tile-dead superstep cost
    std::size_t skip = 0;          // skip the first N matching opportunities
    std::size_t count = SIZE_MAX;  // injection budget (transient rules only)
    double factor = 1.0;           // link-degraded fabric-cost multiplier
    std::size_t regionElements = 1;  // sram-region-dead region length
    std::size_t ipu = 0;           // ipu-dead chip target
    std::size_t fromIpu = 0;       // ipu-link-* ordered pair source chip
    std::size_t toIpu = 0;         // ipu-link-* ordered pair destination chip
  };

  FaultPlan() = default;

  /// Builds a plan from a parsed JSON document (shape documented above).
  static FaultPlan fromJson(const json::Value& config);
  static FaultPlan fromJsonText(const std::string& text);

  void addRule(Rule rule) { rules_.push_back(rule); }

  bool enabled() const { return !rules_.empty(); }
  std::uint64_t seed() const { return seed_; }
  std::size_t injectedCount() const { return injected_; }

  /// Whether any rule is a permanent fault (tile-dead / link-degraded /
  /// sram-region-dead). The engine checks this once per superstep and only
  /// then consults the per-tile queries below.
  bool hasHardFaults() const;

  // -- permanent-fault queries ----------------------------------------------
  // Pure functions of the rule set (no RNG, no state): safe to call from
  // concurrent host threads simulating tiles in parallel.

  /// True when `tile` is dead at compute superstep `index`.
  bool tileDead(std::size_t tile, std::size_t index) const;

  /// Cycles a dead tile charges per compute superstep (what the BSP barrier
  /// — and a watchdog — sees while the rest of the machine waits).
  double deadTileCycles(std::size_t tile) const;

  /// Fabric-cost multiplier for exchange superstep `index` (product of the
  /// factors of every active link-degraded rule; 1.0 = healthy fabric).
  double linkFactor(std::size_t index) const;

  /// True when every tile of chip `ipu` is dead at compute superstep `index`.
  bool ipuDead(std::size_t ipu, std::size_t index) const;

  /// Cycles each tile of a dead chip charges per compute superstep.
  double deadIpuCycles(std::size_t ipu) const;

  /// The IPU-Link fabric faults active for exchange superstep
  /// `exchangeIndex`: severed / degraded ordered pairs (exchange clock) plus
  /// the chips dead at compute superstep `computeIndex`, which re-routing
  /// must not use as relays. Empty when no pod-scale rule is active.
  LinkFaults linkFaults(std::size_t exchangeIndex,
                        std::size_t computeIndex) const;

  /// Restores the plan to its just-built state (RNG re-seeded, budgets and
  /// skip counters reset) so the same plan object can drive a fresh run.
  void reset();

  // -- engine hooks ---------------------------------------------------------

  /// Called (serially) before compute superstep `index` runs, and only when
  /// hasHardFaults(). Logs one activation event per hard fault crossing its
  /// trigger and re-applies persistent SRAM-region damage so that overwrites
  /// from the previous superstep don't stick.
  void onComputeSuperstepStart(std::size_t index, FaultSurface& surface);

  /// Called (serially) once per exchange superstep when hasHardFaults():
  /// logs link-degradation activation events and returns linkFactor(index).
  double onExchangeSuperstep(std::size_t index, FaultSurface& surface);

  /// Called after compute superstep `index` completes, before its cycles are
  /// committed. Applies SRAM faults (bit flips / stuck-at-zero) and returns
  /// extra stall cycles to charge to the superstep's critical path.
  double afterComputeSuperstep(std::size_t index, FaultSurface& surface);

  /// Decides the fate of one exchange transfer destined for `dstTensor`.
  /// Drop events are logged here; a Corrupt verdict is followed by a
  /// corruptDelivered() call once the payload has landed.
  TransferFate onTransfer(std::size_t exchangeIndex,
                          std::size_t transferIndex, std::size_t dstTensor,
                          FaultSurface& surface);

  /// Flips one bit somewhere in the delivered range [dstFlat, dstFlat+count)
  /// of a transfer that onTransfer() marked Corrupt, and logs the event.
  void corruptDelivered(std::size_t exchangeIndex, std::size_t dstTensor,
                        std::size_t dstFlat, std::size_t count,
                        FaultSurface& surface);

 private:
  struct RuleState {
    std::size_t injected = 0;
    std::size_t skipped = 0;
    // Tensor-name match cache; rebuilt when the tensor count changes.
    std::vector<std::size_t> matches;
    std::size_t matchedAt = SIZE_MAX;
    // Hard faults: activation already logged, and the (tensor, start)
    // choice of a sram-region-dead rule, fixed at activation time.
    bool activated = false;
    std::size_t regionTensor = SIZE_MAX;
    std::size_t regionStart = 0;
  };

  bool fires(const Rule& rule, RuleState& state, std::int64_t index);
  const std::vector<std::size_t>& matchingTensors(const Rule& rule,
                                                  RuleState& state,
                                                  FaultSurface& surface);

  std::uint64_t seed_ = 0x9E3779B97F4A7C15ull;
  Rng rng_{seed_};
  std::vector<Rule> rules_;
  std::vector<RuleState> states_;
  std::size_t injected_ = 0;
  int pendingCorruptBit_ = -1;  // bit choice of the last Corrupt verdict
};

/// Serialises a fault log (e.g. `engine.profile().faultEvents`) to JSON.
json::Value faultEventsToJson(const std::vector<FaultEvent>& events);

/// Parses a fault log serialised by faultEventsToJson — strict (unknown or
/// ill-typed keys are errors), and an exact round-trip inverse:
/// faultEventsFromJson(faultEventsToJson(log)) == log.
std::vector<FaultEvent> faultEventsFromJson(const json::Value& doc);

/// Human-readable one-line-per-event rendering of a fault log.
std::string formatFaultEvents(const std::vector<FaultEvent>& events);

}  // namespace graphene::ipu
