// Deterministic pseudo-random number generation.
//
// All stochastic components of the framework (synthetic matrix generators,
// random right-hand sides, property tests) draw from this generator so that
// every run of every benchmark and test is bit-reproducible. We use the
// SplitMix64 generator: tiny state, excellent statistical quality for our
// purposes, and trivially seedable.
#pragma once

#include <cstdint>

namespace graphene {

/// SplitMix64 PRNG (Steele, Lea, Flood; used as the seeding generator of
/// xoshiro). Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t nextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float nextFloat() {
    return static_cast<float>(nextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t nextBelow(std::uint64_t n) {
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (0 - n) % n;
    while (true) {
      std::uint64_t r = nextU64();
      if (r >= threshold) return r % n;
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace graphene
