#include "solver/flight_recorder.hpp"

#include <algorithm>
#include <fstream>

#include "ipu/fault.hpp"
#include "support/error.hpp"

namespace graphene::solver {

namespace {

/// One trace event as a flat JSON object — only the fields its kind
/// actually uses, so the artifact stays readable.
json::Object traceEventToJson(const support::TraceEvent& ev) {
  using support::TraceKind;
  json::Object o;
  o["type"] = "trace";
  o["kind"] = std::string(support::toString(ev.kind));
  o["name"] = ev.name;
  o["startCycle"] = ev.startCycle;
  o["superstep"] = ev.superstep;
  if (ev.jobId != SIZE_MAX) o["jobId"] = ev.jobId;
  switch (ev.kind) {
    case TraceKind::ComputeSuperstep:
      o["durationCycles"] = ev.durationCycles;
      o["tileMin"] = ev.tileMin;
      o["tileMean"] = ev.tileMean;
      o["tileMax"] = ev.tileMax;
      if (ev.stragglerTile != SIZE_MAX) o["stragglerTile"] = ev.stragglerTile;
      o["activeTiles"] = ev.activeTiles;
      break;
    case TraceKind::ExchangeSuperstep:
      o["durationCycles"] = ev.durationCycles;
      o["bytes"] = ev.bytes;
      break;
    case TraceKind::Sync:
      o["durationCycles"] = ev.durationCycles;
      break;
    case TraceKind::Iteration:
      o["iteration"] = ev.iteration;
      if (ev.residual >= 0) o["residual"] = ev.residual;
      break;
    case TraceKind::Fault:
    case TraceKind::Recovery:
    case TraceKind::Job:
      break;
  }
  if (!ev.detail.empty()) o["detail"] = ev.detail;
  return o;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t retainJobs,
                               std::size_t eventCapacity)
    : retainJobs_(retainJobs),
      eventCapacity_(std::max<std::size_t>(eventCapacity, 1)) {}

void FlightRecorder::open(std::size_t jobId) {
  std::lock_guard<std::mutex> lock(mu_);
  Buffer& b = jobs_[jobId];  // idempotent: an existing buffer is kept
  b.record.jobId = jobId;
}

void FlightRecorder::record(std::size_t jobId,
                            const support::TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end() || it->second.sealed) return;
  Buffer& b = it->second;
  if (b.record.events.size() < eventCapacity_) {
    b.record.events.push_back(event);
  } else {
    b.record.events[b.ringStart] = event;
    b.ringStart = (b.ringStart + 1) % eventCapacity_;
    b.record.droppedEvents += 1;
  }
}

void FlightRecorder::recordAttempt(
    std::size_t jobId, const std::vector<support::TraceEvent>& traceEvents,
    std::vector<ipu::FaultEvent> faultLog, json::Value healthReport) {
  for (const support::TraceEvent& ev : traceEvents) record(jobId, ev);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end() || it->second.sealed) return;
  // The final attempt's fault log / health report replace earlier ones:
  // that is the attempt whose verdict the job carries, and every attempt's
  // timeline events are already in the ring above.
  it->second.record.faultLog = std::move(faultLog);
  it->second.record.healthReport = std::move(healthReport);
}

FlightRecord FlightRecorder::seal(std::size_t jobId, FlightRecord header) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end()) {
    it = jobs_.emplace(jobId, Buffer{}).first;
  }
  Buffer& b = it->second;
  if (b.sealed) return b.record;
  // Rotate the ring so the record reads oldest-first.
  if (b.ringStart > 0) {
    std::rotate(b.record.events.begin(),
                b.record.events.begin() +
                    static_cast<std::ptrdiff_t>(b.ringStart),
                b.record.events.end());
    b.ringStart = 0;
  }
  header.jobId = jobId;
  header.events = std::move(b.record.events);
  header.droppedEvents = b.record.droppedEvents;
  header.faultLog = std::move(b.record.faultLog);
  header.healthReport = std::move(b.record.healthReport);
  b.record = std::move(header);
  b.sealed = true;
  FlightRecord out = b.record;
  if (retainJobs_ == 0) {
    jobs_.erase(it);
    return out;
  }
  sealedOrder_.push_back(jobId);
  while (sealedOrder_.size() > retainJobs_) {
    jobs_.erase(sealedOrder_.front());
    sealedOrder_.pop_front();
  }
  return out;
}

std::optional<FlightRecord> FlightRecorder::record(std::size_t jobId) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return std::nullopt;
  FlightRecord copy = it->second.record;
  if (!it->second.sealed && it->second.ringStart > 0) {
    std::rotate(copy.events.begin(),
                copy.events.begin() +
                    static_cast<std::ptrdiff_t>(it->second.ringStart),
                copy.events.end());
  }
  return copy;
}

std::vector<std::size_t> FlightRecorder::sealedJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {sealedOrder_.begin(), sealedOrder_.end()};
}

std::string flightRecordToJsonl(const FlightRecord& record) {
  std::string out;
  const auto line = [&out](json::Object o) {
    out += json::Value(std::move(o)).dump();
    out += "\n";
  };

  json::Object header;
  header["type"] = "job";
  header["jobId"] = record.jobId;
  header["verdict"] = record.verdict;
  if (!record.message.empty()) header["message"] = record.message;
  header["attempts"] = record.attempts;
  header["degraded"] = record.degraded;
  header["simCycles"] = record.simCycles;
  header["wallSeconds"] = record.wallSeconds;
  header["structureFingerprint"] = std::to_string(record.structureFingerprint);
  header["configFingerprint"] = std::to_string(record.configFingerprint);
  header["topologyFingerprint"] = std::to_string(record.topologyFingerprint);
  if (!record.solverConfig.empty()) {
    header["solverConfig"] = record.solverConfig;
  }
  header["bufferedEvents"] = record.events.size();
  header["droppedEvents"] = record.droppedEvents;
  line(std::move(header));

  for (const support::TraceEvent& ev : record.events) {
    line(traceEventToJson(ev));
  }
  // Reuse the fault-log JSON schema (round-trips through
  // faultEventsFromJson), one entry per line tagged as "fault".
  const json::Value faults = ipu::faultEventsToJson(record.faultLog);
  for (const json::Value& f : faults.asArray()) {
    json::Object o = f.asObject();
    o["type"] = "fault";
    line(std::move(o));
  }
  if (record.healthReport.isObject() &&
      !record.healthReport.asObject().empty()) {
    json::Object o;
    o["type"] = "health";
    o["report"] = record.healthReport;
    line(std::move(o));
  }
  return out;
}

std::string dumpFlightRecord(const FlightRecord& record,
                             const std::string& dir) {
  GRAPHENE_CHECK(!dir.empty(), "dumpFlightRecord: empty directory");
  std::string path = dir;
  if (path.back() != '/') path += '/';
  path += "flight-job" + std::to_string(record.jobId) + ".jsonl";
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  GRAPHENE_CHECK(out.is_open(), "dumpFlightRecord: cannot write '", path,
                 "' (does the directory exist?)");
  out << flightRecordToJsonl(record);
  out.close();
  GRAPHENE_CHECK(out.good(), "dumpFlightRecord: write to '", path,
                 "' failed");
  return path;
}

}  // namespace graphene::solver
