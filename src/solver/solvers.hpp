// Concrete solvers and preconditioners of the suite (§V).
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "solver/solver.hpp"

namespace graphene::solver {

/// z = r. The "no preconditioner" element.
class IdentitySolver final : public Solver {
 public:
  std::string name() const override { return "identity"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;
};

/// Damped Jacobi: z ← z + ω D⁻¹ (r − A z), `iterations` times.
class JacobiSolver final : public Solver {
 public:
  explicit JacobiSolver(std::size_t iterations = 3, float omega = 1.0f)
      : iterations_(iterations), omega_(omega) {}
  std::string name() const override { return "jacobi"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;

 private:
  std::size_t iterations_;
  float omega_;
};

/// Gauss-Seidel (§V-D), parallelised per tile with Level-Set Scheduling
/// across the six workers; tile couplings use the last exchanged halo
/// (hybrid GS/block-Jacobi, the standard distributed formulation).
///
/// With tolerance == 0 it runs a fixed number of sweeps (smoother /
/// preconditioner mode); with tolerance > 0 it iterates until the relative
/// residual falls below it (standalone solver mode).
class GaussSeidelSolver final : public Solver {
 public:
  GaussSeidelSolver(std::size_t sweeps, double tolerance = 0.0,
                    std::size_t maxIterations = 1000)
      : sweeps_(sweeps), tolerance_(tolerance), maxIterations_(maxIterations) {}
  std::string name() const override { return "gauss-seidel"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;

 protected:
  void setup(DistMatrix& a) override;

 private:
  void emitSweep(DistMatrix& a, Tensor& z, Tensor& r);

  std::size_t sweeps_;
  double tolerance_;
  std::size_t maxIterations_;
  std::optional<Tensor> lvlOrder_, lvlPtr_;
  std::vector<std::int32_t> lvlOrderHost_, lvlPtrHost_;
};

/// ILU(0) and DILU preconditioners (§V-E). The factorisation runs on the
/// device, parallelised with Level-Set Scheduling, and keeps the original
/// sparsity pattern restricted to each tile's owned block (halo couplings
/// are disregarded — block-Jacobi ILU, whose effect on preconditioner
/// quality the paper discusses in §VI-D).
class IluSolver final : public Solver {
 public:
  enum class Variant { Ilu0, Dilu };
  explicit IluSolver(Variant variant = Variant::Ilu0) : variant_(variant) {}
  std::string name() const override {
    return variant_ == Variant::Ilu0 ? "ilu" : "dilu";
  }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;

 protected:
  void setup(DistMatrix& a) override;

 private:
  Variant variant_;
  // Filtered per-tile structure (owned columns only, diagonal included).
  std::optional<Tensor> fVal_, fCol_, fRowPtr_, diagIdx_;
  std::optional<Tensor> fwdOrder_, fwdPtr_, bwdOrder_, bwdPtr_;
  std::optional<Tensor> scratchY_;
  std::optional<Tensor> mirrorVal_;  // DILU: value of the transposed entry
  std::optional<Tensor> dtilde_;     // DILU: modified diagonal
};

/// Richardson iteration: z ← z + ω (r − A z). The simplest stationary
/// solver; mostly useful to sanity-check preconditioner-free configurations
/// and as a didactic smoother.
class RichardsonSolver final : public Solver {
 public:
  explicit RichardsonSolver(std::size_t iterations = 10, float omega = 0.5f)
      : iterations_(iterations), omega_(omega) {}
  std::string name() const override { return "richardson"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;

 private:
  std::size_t iterations_;
  float omega_;
};

/// Preconditioned Conjugate Gradient for SPD systems — the paper's Table II
/// matrices are all symmetric positive definite, making PCG the natural
/// companion to PBiCGStab in the solver suite (it does one SpMV and one
/// preconditioner apply per iteration instead of two each).
class CgSolver final : public Solver {
 public:
  CgSolver(std::size_t maxIterations, double tolerance,
           std::unique_ptr<Solver> preconditioner,
           RobustnessOptions robustness = {},
           graph::Graph::ReduceMode reduction = graph::Graph::ReduceMode::Auto)
      : maxIterations_(maxIterations), tolerance_(tolerance),
        precond_(std::move(preconditioner)), robust_(robustness),
        reduction_(reduction) {}
  std::string name() const override { return "cg"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;
  Solver* preconditioner() override { return precond_.get(); }
  graph::TensorId stateTensor() const override { return stateId_; }

 private:
  std::size_t maxIterations_;
  double tolerance_;
  std::unique_ptr<Solver> precond_;
  RobustnessOptions robust_;
  graph::Graph::ReduceMode reduction_;
  graph::TensorId stateId_ = graph::kInvalidTensor;
};

/// Pipelined Preconditioned Conjugate Gradient (Ghysels & Vanroose).
/// Numerically equivalent to PCG (same Krylov space, iterate recurrences
/// rearranged), but all three inner products of an iteration are merged into
/// ONE joint global reduction (dsl::ReduceMany), and the preconditioner
/// apply + SpMV of the next iteration are emitted inside the reduction's
/// latency-hiding window. Per iteration that is one reduction
/// gather/broadcast instead of three — on a pod, O(1) link round-trips per
/// iteration instead of three, which is where strong scaling of small
/// systems goes to die. Carries the same robustness envelope as CgSolver
/// (host residual guard, checkpoint/restart, ABFT duplicate reduction,
/// post-loop verification).
class PipelinedCgSolver final : public Solver {
 public:
  PipelinedCgSolver(
      std::size_t maxIterations, double tolerance,
      std::unique_ptr<Solver> preconditioner,
      RobustnessOptions robustness = {},
      graph::Graph::ReduceMode reduction = graph::Graph::ReduceMode::Auto,
      std::size_t residualReplaceEvery = 16)
      : maxIterations_(maxIterations), tolerance_(tolerance),
        precond_(std::move(preconditioner)), robust_(robustness),
        reduction_(reduction), replaceEvery_(residualReplaceEvery) {}
  std::string name() const override { return "pipelined-cg"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;
  Solver* preconditioner() override { return precond_.get(); }
  graph::TensorId stateTensor() const override { return stateId_; }

 private:
  std::size_t maxIterations_;
  double tolerance_;
  std::unique_ptr<Solver> precond_;
  RobustnessOptions robust_;
  graph::Graph::ReduceMode reduction_;
  /// Period of the residual-replacement step (Cools et al., SIMAX 2018):
  /// every N iterations the drifting recurrence iterates r, u, w, s, q, z
  /// are recomputed from their definitions (true residual, A p, ...) while
  /// the search direction p is kept. Restores classic CG's attainable
  /// accuracy, which the pipelined recurrences otherwise lose to local
  /// rounding-error amplification. 0 disables.
  std::size_t replaceEvery_;
  graph::TensorId stateId_ = graph::kInvalidTensor;
};

/// Preconditioned BiCGStab (§V-C, van der Vorst), following the paper's
/// Fig. 4 listing. tolerance == 0 runs exactly maxIterations iterations
/// (the inner-solver mode of the MPIR experiments).
class BiCgStabSolver final : public Solver {
 public:
  BiCgStabSolver(std::size_t maxIterations, double tolerance,
                 std::unique_ptr<Solver> preconditioner,
                 RobustnessOptions robustness = {})
      : maxIterations_(maxIterations), tolerance_(tolerance),
        precond_(std::move(preconditioner)), robust_(robustness) {}
  std::string name() const override { return "bicgstab"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;
  Solver* preconditioner() override { return precond_.get(); }
  graph::TensorId stateTensor() const override { return stateId_; }

  /// Measurement aid for the convergence figures: every `everyIterations`
  /// the *true* residual b − A·x is computed on the device in double-word
  /// precision and recorded — this is how the paper's non-MPIR curves reveal
  /// their 1e-6 stall even though the float32 recurrence keeps shrinking.
  void enableTrueResidualMonitor(std::size_t everyIterations) {
    monitorEvery_ = everyIterations;
  }
  const std::vector<IterationRecord>& trueResidualHistory() const {
    return *trueHistory_;
  }

 private:
  void emitTrueResidualMonitor(DistMatrix& a, Tensor& x, Tensor& b);

  std::size_t maxIterations_;
  double tolerance_;
  std::unique_ptr<Solver> precond_;
  RobustnessOptions robust_;
  graph::TensorId stateId_ = graph::kInvalidTensor;
  std::size_t monitorEvery_ = 0;
  std::shared_ptr<std::vector<IterationRecord>> trueHistory_ =
      std::make_shared<std::vector<IterationRecord>>();
  std::optional<Tensor> monX_, monB_, monR_, monNormSq_, monBNormSq_,
      monIter_;
};

/// (Mixed-precision) Iterative Refinement (§V-B, Moler / Langou / Buttari):
///   1. r(m) = b − A x(m)      in extended precision
///   2. solve A c = r(m)       in working precision (any inner solver)
///   3. x(m+1) = x(m) + c      in extended precision
/// extendedType selects double-word (DW), emulated float64 (DP) — or
/// Float32, which degenerates to plain IR (the paper's "IR" baseline that
/// fails to improve convergence).
class MpirSolver final : public Solver {
 public:
  MpirSolver(DType extendedType, std::size_t maxRefinements, double tolerance,
             std::unique_ptr<Solver> inner, RobustnessOptions robustness = {})
      : extType_(extendedType), maxRefinements_(maxRefinements),
        tolerance_(tolerance), inner_(std::move(inner)),
        robust_(robustness) {}
  std::string name() const override { return "mpir"; }
  void apply(DistMatrix& a, Tensor& z, Tensor& r) override;
  graph::TensorId stateTensor() const override { return stateId_; }
  Solver* inner() { return inner_.get(); }
  /// IR is preconditioned Richardson in the extended type: the inner solve
  /// plays the preconditioner role in the nested-config introspection.
  Solver* preconditioner() override { return inner_.get(); }

  /// True-residual history: one sample per refinement step, measured in the
  /// extended type (this is what Figures 9/10 plot).
  const std::vector<IterationRecord>& trueResidualHistory() const {
    return *trueHistory_;
  }

  /// The extended-precision solution (valid after execution).
  const std::optional<Tensor>& extendedSolution() const { return xExt_; }

 private:
  DType extType_;
  std::size_t maxRefinements_;
  double tolerance_;
  std::unique_ptr<Solver> inner_;
  RobustnessOptions robust_;
  graph::TensorId stateId_ = graph::kInvalidTensor;
  std::optional<Tensor> xExt_;
  std::shared_ptr<std::vector<IterationRecord>> trueHistory_ =
      std::make_shared<std::vector<IterationRecord>>();
};

}  // namespace graphene::solver
