// Shared harness for the chaos campaigns (test_chaos.cpp).
//
// A *campaign* is one seeded solve under a randomized fault plan mixing
// transient faults (bit flips, stuck cells, exchange drops/corruption,
// stalls) with permanent ones (dead tiles, degraded links, dead SRAM
// regions). The harness generates plans, runs them through SolveSession —
// the layer that owns ABFT guards, checkpoint restarts, the superstep
// watchdog and blacklist-and-remap recovery — and checks the one invariant
// chaos testing is about:
//
//   every campaign either converges to a solution that actually solves the
//   system, or fails *typed* (a SolveStatus verdict or a graphene::Error)
//   — it never crashes, never hangs, and never returns a silently-wrong
//   answer claiming convergence.
//
// Campaign count scales with GRAPHENE_CHAOS_CAMPAIGNS (CI caps it for the
// sanitizer jobs; a nightly can crank it up). Everything is seeded: the
// same campaign index always builds the same plan, rhs and decisions.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "graphene.hpp"

namespace chaos {

using namespace graphene;

/// Campaign count: GRAPHENE_CHAOS_CAMPAIGNS when set (>0), else `fallback`.
inline std::size_t campaignCount(std::size_t fallback) {
  if (const char* env = std::getenv("GRAPHENE_CHAOS_CAMPAIGNS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Solver config for a campaign. All recovery machinery on: restarts /
/// rollbacks, checkpoints and ABFT-guarded kernels. Budgets are bounded so
/// a hopeless campaign fails typed instead of spinning.
inline std::string solverConfigFor(const std::string& name) {
  if (name == "cg") {
    return R"({"type": "cg", "maxIterations": 120, "tolerance": 1e-6,
               "robustness": {"maxRestarts": 2, "checkpointEvery": 8,
                              "abft": true, "abftTolerance": 1e-3}})";
  }
  if (name == "pipelined-cg") {
    // Tolerance 1e-5: the pipelined recurrences monitor an honest
    // (residual-replaced) residual, and 1e-6 sits below the float32
    // true-residual floor of these systems.
    return R"({"type": "cg", "pipelined": true, "maxIterations": 120,
               "tolerance": 1e-5,
               "robustness": {"maxRestarts": 2, "checkpointEvery": 8,
                              "abft": true, "abftTolerance": 1e-3}})";
  }
  if (name == "bicgstab") {
    return R"({"type": "bicgstab", "maxIterations": 120, "tolerance": 1e-6,
               "robustness": {"maxRestarts": 2, "checkpointEvery": 8,
                              "abft": true, "abftTolerance": 1e-3}})";
  }
  if (name == "mpir") {
    return R"({"type": "mpir", "maxRefinements": 12, "tolerance": 1e-9,
               "inner": {"type": "cg", "maxIterations": 40, "tolerance": 0},
               "robustness": {"maxRollbacks": 3, "abft": true,
                              "abftTolerance": 1e-3}})";
  }
  GRAPHENE_CHECK(false, "unknown campaign solver '", name, "'");
  return "";
}

/// Tensor-name substrings a random rule may target. Some only exist for
/// some solvers — a rule that matches nothing is inert, which is fine (the
/// plan still exercises the matching machinery).
inline const char* randomTensorTarget(Rng& rng) {
  static const char* kTargets[] = {"resid", "_p",   "Ap",       "halo",
                                   "rho",   "session_x", "ckpt", "_r"};
  return kTargets[rng.nextBelow(sizeof(kTargets) / sizeof(kTargets[0]))];
}

/// Builds a seeded random fault plan with `transients` transient rules and,
/// when `allowHard`, up to one hard fault of each kind. Superstep triggers
/// land in the early solve so faults actually fire before convergence.
inline json::Value randomPlan(std::uint64_t seed, std::size_t tiles,
                              bool allowHard) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  json::Array faults;

  const std::size_t transients = 1 + rng.nextBelow(3);
  for (std::size_t i = 0; i < transients; ++i) {
    json::Object f;
    switch (rng.nextBelow(5)) {
      case 0:
        f["type"] = "bitflip";
        f["tensor"] = randomTensorTarget(rng);
        // Bits 12..27 keep the corruption finite (mantissa / low exponent):
        // the nastier case for detection — NaN guards won't see it.
        f["bit"] = static_cast<double>(12 + rng.nextBelow(16));
        break;
      case 1:
        f["type"] = "stuck-zero";
        f["tensor"] = randomTensorTarget(rng);
        break;
      case 2:
        f["type"] = "exchange-drop";
        f["tensor"] = "halo";
        break;
      case 3:
        f["type"] = "exchange-corrupt";
        f["tensor"] = "halo";
        f["bit"] = static_cast<double>(12 + rng.nextBelow(16));
        break;
      default:
        f["type"] = "stall";
        f["tile"] = static_cast<double>(rng.nextBelow(tiles));
        f["cycles"] = static_cast<double>(1000 + rng.nextBelow(20000));
        break;
    }
    if (f.count("tile") == 0) {
      f["probability"] = 0.25 + 0.75 * rng.nextDouble();
      f["count"] = static_cast<double>(1 + rng.nextBelow(3));
      f["skip"] = static_cast<double>(rng.nextBelow(4));
    }
    faults.push_back(json::Value(f));
  }

  if (allowHard) {
    if (rng.nextBelow(2) == 0) {
      json::Object f;
      f["type"] = "tile-dead";
      f["tile"] = static_cast<double>(rng.nextBelow(tiles));
      f["superstep"] = static_cast<double>(10 + rng.nextBelow(60));
      faults.push_back(json::Value(f));
    }
    if (rng.nextBelow(3) == 0) {
      json::Object f;
      f["type"] = "link-degraded";
      f["tile"] = static_cast<double>(rng.nextBelow(tiles));
      f["factor"] = 2.0 + rng.nextDouble() * 6.0;
      f["superstep"] = static_cast<double>(rng.nextBelow(40));
      faults.push_back(json::Value(f));
    }
    if (rng.nextBelow(3) == 0) {
      json::Object f;
      f["type"] = "sram-region-dead";
      f["tensor"] = randomTensorTarget(rng);
      f["elements"] = static_cast<double>(1 + rng.nextBelow(4));
      f["superstep"] = static_cast<double>(10 + rng.nextBelow(60));
      faults.push_back(json::Value(f));
    }
  }

  json::Object plan;
  plan["seed"] = static_cast<double>(seed);
  plan["faults"] = json::Value(faults);
  return json::Value(plan);
}

/// Builds a seeded random *pod* fault plan: one pod-scale hard fault
/// (rotating chip-dead / severed link / degraded link by seed), optionally
/// with a transient riding along. Triggers land in the early solve.
inline json::Value randomPodPlan(std::uint64_t seed, std::size_t ipus) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 7);
  json::Array faults;
  if (rng.nextBelow(2) == 0) {
    json::Object f;
    f["type"] = "bitflip";
    f["tensor"] = randomTensorTarget(rng);
    f["bit"] = static_cast<double>(12 + rng.nextBelow(16));
    f["probability"] = 0.5;
    f["count"] = 1.0;
    faults.push_back(json::Value(f));
  }
  switch (seed % 3) {
    case 0: {  // whole-chip loss mid-solve → elastic topology shrink
      json::Object f;
      f["type"] = "ipu-dead";
      f["ipu"] = static_cast<double>(rng.nextBelow(ipus));
      f["superstep"] = static_cast<double>(10 + rng.nextBelow(40));
      faults.push_back(json::Value(f));
      break;
    }
    case 1: {  // severed ordered link → two-hop re-route
      const std::size_t from = rng.nextBelow(ipus);
      std::size_t to = rng.nextBelow(ipus - 1);
      if (to >= from) ++to;
      json::Object f;
      f["type"] = "ipu-link-dead";
      f["from"] = static_cast<double>(from);
      f["to"] = static_cast<double>(to);
      f["superstep"] = static_cast<double>(rng.nextBelow(30));
      faults.push_back(json::Value(f));
      break;
    }
    default: {  // degraded link → per-pair cost multiplier
      const std::size_t from = rng.nextBelow(ipus);
      std::size_t to = rng.nextBelow(ipus - 1);
      if (to >= from) ++to;
      json::Object f;
      f["type"] = "ipu-link-degraded";
      f["from"] = static_cast<double>(from);
      f["to"] = static_cast<double>(to);
      f["factor"] = 2.0 + rng.nextDouble() * 6.0;
      f["superstep"] = static_cast<double>(rng.nextBelow(30));
      faults.push_back(json::Value(f));
      break;
    }
  }
  json::Object plan;
  plan["seed"] = static_cast<double>(seed);
  plan["faults"] = json::Value(faults);
  return json::Value(plan);
}

/// Deterministic per-campaign right-hand side.
inline std::vector<double> randomRhs(std::uint64_t seed, std::size_t n) {
  Rng rng(seed * 2 + 1);
  std::vector<double> rhs(n);
  for (double& v : rhs) v = rng.uniform(-1.0, 1.0);
  return rhs;
}

/// What one campaign produced. `typedError` means a graphene::Error escaped
/// solve() — an allowed (typed) failure mode, e.g. every tile blacklisted.
struct Outcome {
  solver::SolveStatus status = solver::SolveStatus::NotRun;
  bool typedError = false;
  std::string errorMessage;
  std::vector<double> x;
  std::vector<ipu::FaultEvent> faultLog;
  double remaps = 0;
  double abftMismatches = 0;
  double hostRel = -1.0;  // relative residual of x, computed on the host
};

inline Outcome runCampaignWithOptions(const matrix::GeneratedMatrix& g,
                                      const std::string& solverName,
                                      std::uint64_t seed,
                                      const json::Value& plan,
                                      solver::SessionOptions opts) {
  solver::SolveSession session(std::move(opts));
  session.load(g).configure(solverConfigFor(solverName)).withFaultPlan(plan);
  const std::vector<double> rhs = randomRhs(seed, session.matrix().rows());

  Outcome out;
  try {
    auto result = session.solve(rhs);
    out.status = result.solve.status;
    out.x = result.x;
    out.faultLog = session.profile().faultEvents;
    out.remaps = session.profile().metrics.counter("resilience.remaps");
    out.abftMismatches =
        session.profile().metrics.counter("resilience.abft.mismatches");
    std::vector<double> ax(rhs.size(), 0.0);
    g.matrix.spmv(result.x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const double d = rhs[i] - ax[i];
      num += d * d;
      den += rhs[i] * rhs[i];
    }
    out.hostRel = std::sqrt(num / std::max(den, 1e-300));
  } catch (const Error& e) {
    out.typedError = true;
    out.errorMessage = e.what();
  }
  return out;
}

inline Outcome runCampaign(const matrix::GeneratedMatrix& g,
                           const std::string& solverName, std::uint64_t seed,
                           const json::Value& plan, std::size_t tiles,
                           std::size_t hostThreads = 0) {
  return runCampaignWithOptions(g, solverName, seed, plan,
                                {.tiles = tiles,
                                 .hostThreads = hostThreads,
                                 .maxRemaps = 2});
}

/// Pod variant: same contract on an explicit machine shape (chip-dead and
/// link-dead faults need a multi-IPU topology to mean anything).
inline Outcome runPodCampaign(const matrix::GeneratedMatrix& g,
                              const std::string& solverName,
                              std::uint64_t seed, const json::Value& plan,
                              const ipu::Topology& topology,
                              std::size_t hostThreads = 0) {
  return runCampaignWithOptions(g, solverName, seed, plan,
                                {.topology = topology,
                                 .hostThreads = hostThreads,
                                 .maxRemaps = 2});
}

/// The chaos invariant: converge-for-real or fail typed.
inline ::testing::AssertionResult holdsInvariant(const Outcome& o) {
  if (o.typedError) return ::testing::AssertionSuccess();  // typed failure
  switch (o.status) {
    case solver::SolveStatus::Converged:
      break;  // checked below
    case solver::SolveStatus::MaxIterations:
    case solver::SolveStatus::Breakdown:
    case solver::SolveStatus::Diverged:
    case solver::SolveStatus::NanDetected:
    case solver::SolveStatus::CorruptionDetected:
      return ::testing::AssertionSuccess();  // typed non-convergence
    case solver::SolveStatus::DeadlineExceeded:
    case solver::SolveStatus::Cancelled:
    case solver::SolveStatus::AdmissionRejected:
    case solver::SolveStatus::CircuitOpen:
      return ::testing::AssertionSuccess();  // typed service verdict
    default:
      return ::testing::AssertionFailure()
             << "campaign ended in non-verdict status '"
             << solver::toString(o.status) << "'";
  }
  if (!(o.hostRel <= 1e-2)) {
    return ::testing::AssertionFailure()
           << "claimed convergence but host residual is " << o.hostRel
           << " — a silently-wrong answer";
  }
  for (double v : o.x) {
    if (!std::isfinite(v)) {
      return ::testing::AssertionFailure()
             << "claimed convergence with non-finite entries in x";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace chaos
