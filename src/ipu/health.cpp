#include "ipu/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace graphene::ipu {

namespace {

// std::to_string on a double prints six fixed decimals ("50000000.000000");
// cycle budgets read better in %g.
std::string formatCycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", cycles);
  return buf;
}

}  // namespace

void HealthMonitor::observeCompute(std::size_t superstep, std::size_t tile,
                                   double cycles, Profile& profile) {
  if (options_.computeCycleBudget <= 0) return;
  TileHealth& h = tiles_[tile];
  if (h.dead) return;  // already confirmed; don't spam the log
  if (cycles <= options_.computeCycleBudget) {
    h.trips = 0;  // a healthy superstep breaks the consecutive-trip chain
    return;
  }
  ++h.trips;
  ++h.totalTrips;
  ++trips_;
  h.lastTripSuperstep = superstep;
  profile.metrics.addCounter("resilience.watchdog.trips", 1);
  FaultEvent trip;
  trip.kind = "watchdog-trip";
  trip.superstep = superstep;
  trip.target = "tile " + std::to_string(tile);
  trip.cycles = cycles;
  trip.detail = "exceeded compute budget of " +
                formatCycles(options_.computeCycleBudget) + " cycles (trip " +
                std::to_string(h.trips) + "/" +
                std::to_string(options_.tripsToConfirm) + ")";
  profile.faultEvents.push_back(std::move(trip));
  if (h.trips < std::max<std::size_t>(options_.tripsToConfirm, 1)) return;

  h.dead = true;
  deadTiles_.push_back(tile);
  std::sort(deadTiles_.begin(), deadTiles_.end());
  FaultEvent dead;
  dead.kind = "health:tile-dead";
  dead.superstep = superstep;
  dead.target = "tile " + std::to_string(tile);
  dead.detail = "confirmed dead after " + std::to_string(h.trips) +
                " consecutive watchdog trips";
  profile.faultEvents.push_back(std::move(dead));
  if (options_.abortOnConfirmedDead) abortPending_ = true;

  // Chip-level escalation: enough of this tile's chip confirmed dead means
  // the chip itself is gone — one shrink verdict instead of a drawn-out
  // tile-by-tile blacklist march.
  if (options_.tilesPerIpu == 0) return;
  const std::size_t ipu = tile / options_.tilesPerIpu;
  if (std::find(deadIpus_.begin(), deadIpus_.end(), ipu) != deadIpus_.end()) {
    return;
  }
  std::size_t deadOnChip = 0;
  for (std::size_t t : deadTiles_) {
    if (t / options_.tilesPerIpu == ipu) ++deadOnChip;
  }
  const double fraction =
      std::min(1.0, std::max(options_.ipuDeadFraction, 0.0));
  // Floor of 2: a single dead tile is a tile fault however small the chip
  // — escalation needs a *pattern*. (A 1-tile chip still recovers via the
  // ordinary tile blacklist, which empties it just the same.)
  const auto needed = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(
             fraction * static_cast<double>(options_.tilesPerIpu))));
  if (deadOnChip < needed) return;
  deadIpus_.push_back(ipu);
  std::sort(deadIpus_.begin(), deadIpus_.end());
  profile.metrics.addCounter("resilience.ipu.dead", 1);
  FaultEvent chip;
  chip.kind = "health:ipu-dead";
  chip.superstep = superstep;
  chip.target = "ipu " + std::to_string(ipu);
  chip.detail = std::to_string(deadOnChip) + "/" +
                std::to_string(options_.tilesPerIpu) +
                " tiles confirmed dead — chip declared dead";
  profile.faultEvents.push_back(std::move(chip));
}

json::Value HealthMonitor::reportJson() const {
  json::Object report;
  report["computeCycleBudget"] = options_.computeCycleBudget;
  report["tripsToConfirm"] = options_.tripsToConfirm;
  report["trips"] = trips_;
  json::Array deadArr;
  for (std::size_t t : deadTiles_) deadArr.push_back(json::Value(t));
  report["deadTiles"] = json::Value(std::move(deadArr));
  if (options_.tilesPerIpu > 0) {
    report["tilesPerIpu"] = options_.tilesPerIpu;
    report["ipuDeadFraction"] = options_.ipuDeadFraction;
    json::Array deadIpusArr;
    for (std::size_t ipu : deadIpus_) deadIpusArr.push_back(json::Value(ipu));
    report["deadIpus"] = json::Value(std::move(deadIpusArr));
  }
  json::Array tilesArr;
  for (const auto& [tile, h] : tiles_) {
    if (h.totalTrips == 0) continue;
    json::Object o;
    o["tile"] = tile;
    o["trips"] = h.totalTrips;
    o["dead"] = h.dead;
    o["lastTripSuperstep"] = h.lastTripSuperstep;
    tilesArr.push_back(json::Value(std::move(o)));
  }
  report["tiles"] = json::Value(std::move(tilesArr));
  return json::Value(std::move(report));
}

void HealthMonitor::reset() {
  tiles_.clear();
  deadTiles_.clear();
  deadIpus_.clear();
  trips_ = 0;
  abortPending_ = false;
}

}  // namespace graphene::ipu
