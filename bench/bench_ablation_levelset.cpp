// Ablation (§V-A): Level-Set Scheduling across 1..6 worker threads. The
// paper's claim: the method "can often fully utilize all six worker threads
// per tile" — sweep time should shrink nearly linearly with workers.
#include <cstdio>

#include "bench_common.hpp"
#include "levelset/levelset.hpp"

using namespace graphene;

int main() {
  bench::printHeader("Ablation — level-set scheduling worker sweep",
                     "Gauss-Seidel sweep time vs worker threads per tile "
                     "(paper §V-A)");

  auto g = matrix::poisson3d7(24, 24, 24);
  const std::size_t tiles = 16;
  auto schedule = levelset::buildForwardLevels(g.matrix);
  std::printf("matrix: %zu rows, %zu nnz; global level-set: %zu levels, "
              "avg parallelism %.1f rows/level\n\n",
              g.matrix.rows(), g.matrix.nnz(), schedule.numLevels(),
              schedule.avgParallelism());

  TextTable t({"workers/tile", "sweep cycles", "speedup vs 1",
               "ideal"});
  double base = 0;
  std::vector<double> speedups;
  for (std::size_t workers = 1; workers <= 6; ++workers) {
    ipu::IpuTarget target = ipu::IpuTarget::testTarget(tiles);
    target.workersPerTile = workers;
    bench::DistSystem s = bench::makeSystem(g, target);
    dsl::Tensor z = s.A->makeVector(dsl::DType::Float32, "z");
    dsl::Tensor r = s.A->makeVector(dsl::DType::Float32, "r");
    auto solver = solver::makeSolverFromString(
        R"({"type":"gauss-seidel","sweeps":4})");
    solver->apply(*s.A, z, r);
    auto rhs = bench::randomRhs(g.matrix.rows(), 3);
    auto prof = bench::runProgram(s, s.ctx->program(), rhs, r);
    double cycles = prof.computeCycles.at("gauss_seidel");
    if (workers == 1) base = cycles;
    speedups.push_back(base / cycles);
    t.addRow({std::to_string(workers), formatSig(cycles, 5),
              formatSig(base / cycles, 3) + "x",
              std::to_string(workers) + "x"});
  }
  std::printf("%s\n", t.render().c_str());
  bool pass = speedups.back() > 4.0;  // >2/3 of the ideal 6x
  std::printf("check: 6 workers give >4x over 1 worker (level widths keep "
              "all workers busy): %s (%.2fx)\n",
              pass ? "PASS" : "FAIL", speedups.back());
  return pass ? 0 : 1;
}
