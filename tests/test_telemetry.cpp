// The live telemetry plane — embedded HTTP endpoint, flight recorder,
// structured JSONL log.
//
// Covers: HttpServer lifecycle (ephemeral bind, handler dispatch, thrown
// handler exceptions contained as 500s, deterministic stop/restart);
// LogSink line discipline (monotonic seq, reserved keys protected from
// field overrides); the FlightRecorder ring (bounded per-job buffer,
// oldest-first wrap with an honest droppedEvents count, retention
// eviction, seal-returns-record even at retention 0) and its JSONL
// black-box artifact; the service's live endpoints (/metrics with # HELP
// and _bucket series, /healthz, /jobs, /flight/<id>, 404s); the automatic
// flight dump on failed and typed-error verdicts; concurrent scrapes
// racing a fault-injected job burst (the TSan target of this suite); and
// host-thread invariance of the latency histograms (the simulated-cycle
// ladders must be bit-identical at any host thread count — only the
// wall-clock families may differ).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphene.hpp"
#include "support/http_server.hpp"
#include "support/log_sink.hpp"

using namespace graphene;
using namespace graphene::solver;

namespace {

json::Value cgConfig() {
  return json::parse(R"({"type": "cg", "tolerance": 1e-6,
                         "maxIterations": 200})");
}

/// Corrupts the residual on every superstep — outlasts the retry budget,
/// so the job deterministically ends failed (see test_service.cpp).
json::Value poisonPlan() {
  return json::parse(R"({"seed": 7, "faults": [
    {"type": "bitflip", "tensor": "resid", "bit": 30,
     "probability": 1.0, "count": 100000, "skip": 0}]})");
}

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

/// A matrix the pipeline cannot build (zero diagonal) — the typed-error
/// path of the service.
matrix::GeneratedMatrix zeroDiagonal() {
  matrix::GeneratedMatrix bad;
  bad.name = "zero-diagonal";
  bad.matrix = matrix::CsrMatrix::fromTriplets(
      4, 4,
      {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
       {1, 2, -1.0}, {2, 1, -1.0}, {2, 3, -1.0},
       {3, 2, -1.0}, {3, 3, 2.0}});
  return bad;
}

support::TraceEvent namedEvent(const std::string& name, double seq) {
  support::TraceEvent ev;
  ev.kind = support::TraceKind::Job;
  ev.name = name;
  ev.startCycle = seq;
  return ev;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// First line of a JSONL blob, parsed.
json::Value firstLine(const std::string& jsonl) {
  return json::parse(jsonl.substr(0, jsonl.find('\n')));
}

}  // namespace

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

TEST(HttpServer, EphemeralBindServeStopRestart) {
  support::HttpServer server;
  EXPECT_EQ(server.port(), 0);
  EXPECT_FALSE(server.running());

  server.start(0, [](const std::string& path) {
    return support::HttpServer::Response{200, "text/plain", "echo:" + path};
  });
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const auto r = support::httpGet(server.port(), "/hello");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "echo:/hello");
  EXPECT_GE(server.requestsServed(), 1u);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent

  // start() after stop() opens a fresh listener (possibly a new port).
  server.start(0, [](const std::string&) {
    return support::HttpServer::Response{204, "text/plain", ""};
  });
  EXPECT_EQ(support::httpGet(server.port(), "/").status, 204);
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomesA500) {
  support::HttpServer server;
  server.start(0, [](const std::string& path) -> support::HttpServer::Response {
    if (path == "/boom") throw Error("handler exploded");
    return {404, "text/plain", "no such endpoint\n"};
  });
  const auto boom = support::httpGet(server.port(), "/boom");
  EXPECT_EQ(boom.status, 500);
  EXPECT_NE(boom.body.find("handler exploded"), std::string::npos);
  // ... and the accept thread survived to serve the next request.
  EXPECT_EQ(support::httpGet(server.port(), "/other").status, 404);
  server.stop();
}

// ---------------------------------------------------------------------------
// LogSink
// ---------------------------------------------------------------------------

TEST(LogSink, LinesAreSequencedAndReservedKeysProtected) {
  std::ostringstream os;
  support::LogSink sink(os);
  sink.log("service:start");
  sink.log("job:retry", 4, {{"detail", json::Value("nan-detected")}});
  // A field may not override the reserved keys.
  sink.log("job:done", 5,
           {{"seq", json::Value(999.0)}, {"event", json::Value("forged")},
            {"verdict", json::Value("converged")}});
  EXPECT_EQ(sink.written(), 3u);

  std::vector<json::Value> lines;
  std::istringstream in(os.str());
  for (std::string line; std::getline(in, line);) {
    lines.push_back(json::parse(line));
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("event").asString(), "service:start");
  EXPECT_FALSE(lines[0].contains("jobId"));
  EXPECT_EQ(lines[1].at("jobId").asNumber(), 4.0);
  EXPECT_EQ(lines[1].at("detail").asString(), "nan-detected");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("seq").asNumber(), static_cast<double>(i));
  }
  EXPECT_EQ(lines[2].at("event").asString(), "job:done");
  EXPECT_EQ(lines[2].at("verdict").asString(), "converged");
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingWrapsOldestFirstAndCountsDrops) {
  FlightRecorder fr(/*retainJobs=*/4, /*eventCapacity=*/4);
  fr.open(7);
  for (int i = 0; i < 10; ++i) {
    fr.record(7, namedEvent("ev" + std::to_string(i), i));
  }
  const auto rec = fr.record(7);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->events.size(), 4u);
  EXPECT_EQ(rec->droppedEvents, 6u);
  // Oldest-first after the wrap: the last four recorded survive, in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rec->events[i].name, "ev" + std::to_string(6 + i));
  }
  // Events for never-opened jobs are ignored, not fatal.
  fr.record(999, namedEvent("ghost", 0));
  EXPECT_FALSE(fr.record(999).has_value());
}

TEST(FlightRecorder, SealRetainsBoundedAndReturnsTheRecord) {
  FlightRecorder fr(/*retainJobs=*/2, /*eventCapacity=*/8);
  for (std::size_t id : {1u, 2u, 3u}) {
    fr.open(id);
    fr.record(id, namedEvent("job:start", 1));
    FlightRecord header;
    header.jobId = id;
    header.verdict = "converged";
    header.attempts = 1;
    const FlightRecord sealed = fr.seal(id, std::move(header));
    EXPECT_EQ(sealed.jobId, id);
    EXPECT_EQ(sealed.events.size(), 1u);
  }
  // Retention 2: job 1 was evicted, oldest first.
  EXPECT_EQ(fr.sealedJobs(), (std::vector<std::size_t>{2, 3}));
  EXPECT_FALSE(fr.record(1).has_value());
  ASSERT_TRUE(fr.record(3).has_value());
  EXPECT_EQ(fr.record(3)->verdict, "converged");

  // Retention 0 keeps nothing — but seal still hands the record back, so
  // a dump-on-failure works with retention disabled.
  FlightRecorder none(/*retainJobs=*/0, /*eventCapacity=*/8);
  none.open(9);
  none.record(9, namedEvent("job:start", 1));
  FlightRecord header;
  header.jobId = 9;
  header.verdict = "typed-error";
  const FlightRecord sealed = none.seal(9, std::move(header));
  EXPECT_EQ(sealed.verdict, "typed-error");
  EXPECT_EQ(sealed.events.size(), 1u);
  EXPECT_TRUE(none.sealedJobs().empty());
}

TEST(FlightRecorder, JsonlArtifactIsDeterministicAndSelfDescribing) {
  FlightRecord rec;
  rec.jobId = 12;
  rec.verdict = "nan-detected";
  rec.message = "NaN in residual";
  rec.attempts = 3;
  rec.degraded = true;
  rec.simCycles = 5e6;
  rec.structureFingerprint = 111;
  rec.configFingerprint = 222;
  rec.topologyFingerprint = 333;
  rec.solverConfig = R"({"type":"cg"})";
  rec.events.push_back(namedEvent("job:start", 1));
  rec.events.push_back(namedEvent("job:retry", 2));
  rec.droppedEvents = 5;

  const std::string jsonl = flightRecordToJsonl(rec);
  EXPECT_EQ(jsonl, flightRecordToJsonl(rec));  // same record, same bytes

  std::vector<json::Value> lines;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) {
    lines.push_back(json::parse(line));
  }
  // Header + two trace lines + health line.
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("type").asString(), "job");
  EXPECT_EQ(lines[0].at("jobId").asNumber(), 12.0);
  EXPECT_EQ(lines[0].at("verdict").asString(), "nan-detected");
  EXPECT_EQ(lines[0].at("attempts").asNumber(), 3.0);
  EXPECT_EQ(lines[0].at("droppedEvents").asNumber(), 5.0);
  EXPECT_EQ(lines[1].at("type").asString(), "trace");
  EXPECT_EQ(lines[1].at("name").asString(), "job:start");
  EXPECT_EQ(lines[2].at("name").asString(), "job:retry");

  // dumpFlightRecord writes the same bytes as flight-job<id>.jsonl.
  const std::string dir = ::testing::TempDir();
  const std::string path = dumpFlightRecord(rec, dir);
  EXPECT_NE(path.find("flight-job12.jsonl"), std::string::npos);
  EXPECT_EQ(slurp(path), jsonl);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Service endpoints
// ---------------------------------------------------------------------------

TEST(ServiceTelemetry, EndpointsServeLiveData) {
  ServiceOptions options{.workers = 2, .tiles = 4};
  options.metricsPort = 0;  // ephemeral
  options.retry = {.maxRetries = 1, .backoffBaseMs = 0.0, .backoffMaxMs = 0.0,
                   .jitter = 0.0};
  SolverService service(std::move(options));
  ASSERT_GT(service.httpPort(), 0);

  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();
  std::vector<std::size_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(service.submit(g, cgConfig(), ones(n)));
  }
  SolveJobOptions faulted;
  faulted.faultPlan = poisonPlan();
  ids.push_back(service.submit(g, cgConfig(), ones(n), std::move(faulted)));
  for (std::size_t id : ids) (void)service.wait(id);

  // /metrics: the Prometheus exposition with help and histogram series.
  const auto metrics = support::httpGet(service.httpPort(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.contentType.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("# HELP graphene_service_jobs_accepted"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("_bucket{le=\""), std::string::npos);
  EXPECT_NE(metrics.body.find(
                "graphene_service_latency_cycles_converged_count"),
            std::string::npos);

  // /healthz: topology + breaker snapshot, valid JSON.
  const auto healthz = support::httpGet(service.httpPort(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  const json::Value health = json::parse(healthz.body);
  EXPECT_EQ(health.at("status").asString(), "ok");
  EXPECT_EQ(health.at("topology").at("aliveIpus").asNumber(),
            health.at("topology").at("ipus").asNumber());

  // /jobs: one row per retained job, terminal rows carry their verdict.
  const auto jobs = support::httpGet(service.httpPort(), "/jobs");
  EXPECT_EQ(jobs.status, 200);
  const json::Value jobsDoc = json::parse(jobs.body);
  const auto& rows = jobsDoc.at("jobs").asArray();
  ASSERT_EQ(rows.size(), ids.size());
  std::size_t converged = 0, failed = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.at("phase").asString(), "done");
    const std::string verdict = row.at("verdict").asString();
    (verdict == "converged" ? converged : failed) += 1;
  }
  EXPECT_EQ(converged, 3u);
  EXPECT_EQ(failed, 1u);

  // /flight/<id>: the black-box JSONL of a retained job.
  const auto flight = support::httpGet(
      service.httpPort(), "/flight/" + std::to_string(ids.front()));
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.contentType.find("ndjson"), std::string::npos);
  const json::Value head = firstLine(flight.body);
  EXPECT_EQ(head.at("type").asString(), "job");
  EXPECT_EQ(head.at("jobId").asNumber(),
            static_cast<double>(ids.front()));
  EXPECT_EQ(head.at("verdict").asString(), "converged");

  EXPECT_EQ(support::httpGet(service.httpPort(), "/flight/999999").status,
            404);
  EXPECT_EQ(support::httpGet(service.httpPort(), "/flight/abc").status, 404);
  EXPECT_EQ(support::httpGet(service.httpPort(), "/nope").status, 404);

  // Shutdown closes the listener deterministically.
  service.shutdown();
  EXPECT_THROW(support::httpGet(service.httpPort(), "/metrics", 0.5), Error);
}

TEST(ServiceTelemetry, FailedAndTypedJobsDumpFlightArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string logPath = dir + "/telemetry-events.jsonl";
  ServiceOptions options{.workers = 1, .tiles = 4};
  options.retry = {.maxRetries = 1, .backoffBaseMs = 0.0, .backoffMaxMs = 0.0,
                   .jitter = 0.0};
  options.flightDir = dir;
  options.logPath = logPath;
  SolverService service(std::move(options));

  // A retry-exhausting fault plan → failed verdict → automatic dump.
  SolveJobOptions faulted;
  faulted.faultPlan = poisonPlan();
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t failedId =
      service.submit(g, cgConfig(), ones(g.matrix.rows()),
                     std::move(faulted));
  const JobResult failedResult = service.wait(failedId);
  ASSERT_NE(failedResult.solve.status, SolveStatus::Converged);

  const std::string failedPath =
      dir + "/flight-job" + std::to_string(failedId) + ".jsonl";
  const std::string failedJsonl = slurp(failedPath);
  ASSERT_FALSE(failedJsonl.empty()) << "no dump at " << failedPath;
  const json::Value failedHead = firstLine(failedJsonl);
  EXPECT_EQ(failedHead.at("verdict").asString(),
            std::string(toString(failedResult.solve.status)));
  EXPECT_GT(failedHead.at("attempts").asNumber(), 1.0);
  // Fingerprints are 64-bit and serialised as decimal strings (JSON
  // numbers are doubles — they would silently round).
  EXPECT_NE(failedHead.at("structureFingerprint").asString(), "0");
  // The injected faults of a poison job far outnumber the 256-event ring:
  // early lifecycle events were overwritten (the header keeps the loss
  // honest), but job:done — recorded immediately before sealing — and the
  // final attempt's fault log always survive.
  EXPECT_GT(failedHead.at("droppedEvents").asNumber(), 0.0);
  EXPECT_NE(failedJsonl.find("job:done"), std::string::npos);
  EXPECT_NE(failedJsonl.find("\"type\":\"fault\""), std::string::npos);

  // A build failure (typed error) dumps too.
  const std::size_t typedId =
      service.submit(zeroDiagonal(), cgConfig(), ones(4));
  ASSERT_TRUE(service.wait(typedId).typedError);
  const std::string typedJsonl =
      slurp(dir + "/flight-job" + std::to_string(typedId) + ".jsonl");
  ASSERT_FALSE(typedJsonl.empty());
  EXPECT_EQ(firstLine(typedJsonl).at("verdict").asString(), "typed-error");

  // A healthy job does not dump.
  const std::size_t okId = service.submit(g, cgConfig(),
                                          ones(g.matrix.rows()));
  ASSERT_EQ(service.wait(okId).solve.status, SolveStatus::Converged);
  EXPECT_TRUE(
      slurp(dir + "/flight-job" + std::to_string(okId) + ".jsonl").empty());

  service.shutdown();

  // The structured log joins on the same event names and job ids.
  const std::string log = slurp(logPath);
  EXPECT_NE(log.find("\"event\":\"service:start\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"job:flight-dumped\""), std::string::npos);
  EXPECT_NE(log.find("\"event\":\"service:shutdown\""), std::string::npos);

  std::remove(failedPath.c_str());
  std::remove((dir + "/flight-job" + std::to_string(typedId) + ".jsonl")
                  .c_str());
  std::remove(logPath.c_str());
}

// The TSan target of this suite: scrapers hammer /metrics and /jobs while
// fault-injected jobs churn through retries, degradation and failure.
TEST(ServiceTelemetry, ConcurrentScrapesRaceAFaultInjectedBurst) {
  ServiceOptions options{.workers = 2, .tiles = 4};
  options.metricsPort = 0;
  options.retry = {.maxRetries = 1, .backoffBaseMs = 0.0, .backoffMaxMs = 0.0,
                   .jitter = 0.0};
  options.breaker = {.failuresToOpen = 1000000};
  SolverService service(std::move(options));
  const std::uint16_t port = service.httpPort();

  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      const std::string path = t == 0 ? "/metrics" : t == 1 ? "/jobs"
                                                            : "/healthz";
      while (!done.load(std::memory_order_acquire)) {
        const auto r = support::httpGet(port, path);
        EXPECT_EQ(r.status, 200);
        if (path != "/metrics") (void)json::parse(r.body);
      }
    });
  }

  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();
  std::vector<std::size_t> ids;
  for (int i = 0; i < 12; ++i) {
    SolveJobOptions jobOptions;
    if (i % 3 != 0) jobOptions.faultPlan = poisonPlan();  // 8 faulted
    ids.push_back(
        service.submit(g, cgConfig(), ones(n), std::move(jobOptions)));
  }
  std::size_t converged = 0, failed = 0;
  for (std::size_t id : ids) {
    const JobResult r = service.wait(id);
    (r.solve.status == SolveStatus::Converged ? converged : failed) += 1;
  }
  done.store(true, std::memory_order_release);
  for (auto& s : scrapers) s.join();

  EXPECT_EQ(converged, 4u);
  EXPECT_EQ(failed, 8u);
  // The final exposition reflects every terminal job.
  const auto metrics = support::httpGet(port, "/metrics");
  EXPECT_NE(metrics.body.find("graphene_service_jobs_failed 8"),
            std::string::npos);
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Histogram determinism across host thread counts
// ---------------------------------------------------------------------------

TEST(ServiceTelemetry, LatencyHistogramsAreHostThreadInvariant) {
  const auto runBurst = [](std::size_t hostThreads) {
    ServiceOptions options{.workers = 2, .tiles = 4};
    options.hostThreads = hostThreads;
    options.retry = {.maxRetries = 1, .backoffBaseMs = 0.0,
                     .backoffMaxMs = 0.0, .jitter = 0.0};
    options.breaker = {.failuresToOpen = 1000000};
    SolverService service(std::move(options));
    const auto g = matrix::poisson2d5(8, 8);
    const std::size_t n = g.matrix.rows();
    std::vector<std::size_t> ids;
    for (int i = 0; i < 6; ++i) {
      SolveJobOptions jobOptions;
      if (i % 3 == 1) jobOptions.faultPlan = poisonPlan();
      ids.push_back(
          service.submit(g, cgConfig(), ones(n), std::move(jobOptions)));
    }
    for (std::size_t id : ids) (void)service.wait(id);
    return service.metrics().snapshot();
  };

  const auto one = runBurst(1);
  const auto eight = runBurst(8);

  // Every simulated-cycle ladder is bit-identical; only wall-clock
  // families (wall_ms, queue_wait) may differ across host thread counts.
  std::size_t compared = 0;
  for (const auto& [name, hist] : one.histograms()) {
    if (name.find("wall_ms") != std::string::npos) continue;
    if (name.find("queue_wait") != std::string::npos) continue;
    EXPECT_EQ(hist, eight.histogram(name)) << name;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
  EXPECT_TRUE(one.histogram("service.latency.cycles.converged").count > 0);
  EXPECT_EQ(one.counter("service.jobs.retried"),
            eight.counter("service.jobs.retried"));
}
