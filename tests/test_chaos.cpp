// Chaos campaigns: randomized fault plans against the full recovery stack.
//
// Covers: the grand campaign (dozens of seeded campaigns across CG /
// BiCGStab / MPIR and 2-D / 3-D matrices, mixing transient and hard faults
// — every one must converge-for-real or fail typed, and every fault log
// must round-trip through JSON); ABFT catching *finite* SpMV corruption a
// NaN guard can't see; a dead tile surviving via blacklist + live remap
// with the recovery visible in the fault log, the trace timeline and the
// resilience.* metrics; remap decisions and fault logs being byte-identical
// at any host thread count; and a persistent-corruption campaign ending in
// the typed CorruptionDetected verdict.
#include <gtest/gtest.h>

#include "chaos_common.hpp"

using namespace graphene;
using namespace chaos;

namespace {

std::string describe(const json::Value& plan) { return plan.dump(); }

bool logContains(const std::vector<ipu::FaultEvent>& log,
                 const std::string& kind) {
  for (const auto& e : log) {
    if (e.kind == kind) return true;
  }
  return false;
}

}  // namespace

// The flagship: many seeded campaigns, every solver, mixed fault classes.
// GRAPHENE_CHAOS_CAMPAIGNS overrides the count (CI caps the sanitizer run).
TEST(Chaos, GrandCampaign) {
  const std::size_t campaigns = campaignCount(51);
  const matrix::GeneratedMatrix m2 = matrix::poisson2d5(10, 10);
  const matrix::GeneratedMatrix m3 = matrix::poisson3d7(5, 5, 5);
  const char* solvers[] = {"cg", "bicgstab", "mpir", "pipelined-cg"};

  std::size_t hardFaultCampaigns = 0, converged = 0;
  for (std::size_t i = 0; i < campaigns; ++i) {
    const std::string solver = solvers[i % 4];
    const matrix::GeneratedMatrix& g = (i % 2 == 0) ? m2 : m3;
    const bool allowHard = (i % 2 == 1);
    const json::Value plan = randomPlan(i, 8, allowHard);
    if (allowHard) ++hardFaultCampaigns;

    Outcome o = runCampaign(g, solver, i, plan, 8);
    EXPECT_TRUE(holdsInvariant(o))
        << "campaign " << i << " (" << solver << " on " << g.name
        << "), plan: " << describe(plan);
    if (!o.typedError) {
      // The structured fault log survives a JSON round-trip exactly.
      EXPECT_EQ(ipu::faultEventsFromJson(ipu::faultEventsToJson(o.faultLog)),
                o.faultLog)
          << "campaign " << i;
      if (o.status == solver::SolveStatus::Converged) ++converged;
    }
  }
  // The harness isn't vacuous: hard faults were actually in play, and the
  // recovery machinery rescued a decent share of the campaigns.
  EXPECT_GE(hardFaultCampaigns, campaigns / 3);
  EXPECT_GE(converged, campaigns / 4);
}

// ABFT is off by default and literally free when off: no "abft" compute
// category ever appears, and enabling it changes the solve's cost but not
// its answer (the checksum path never writes solver state).
TEST(Chaos, AbftIsFreeWhenDisabledAndInertWhenClean) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  const std::vector<double> rhs(g.matrix.rows(), 1.0);
  auto run = [&](const char* robustness) {
    solver::SolveSession session({.tiles = 4});
    session.load(g).configure(
        std::string(R"({"type": "cg", "maxIterations": 200,
                        "tolerance": 1e-6)") +
        robustness + "}");
    auto result = session.solve(rhs);
    const auto& cycles = session.profile().computeCycles;
    return std::tuple(result.x, cycles.count("abft") > 0,
                      session.profile().totalCycles());
  };

  auto [xOff, abftOff, cyclesOff] = run("");
  auto [xOn, abftOn, cyclesOn] =
      run(R"(, "robustness": {"abft": true, "abftTolerance": 1e-3})");

  EXPECT_FALSE(abftOff) << "abft compute sets emitted while disabled";
  EXPECT_TRUE(abftOn);
  EXPECT_GT(cyclesOn, cyclesOff);  // the checksum supersteps are priced
  EXPECT_EQ(xOff, xOn);            // ...but never touch the solution
}

// A finite bit flip in the SpMV result is invisible to NaN guards — only
// the ABFT checksum sees it. Scan the flip's superstep over the early solve
// so several land in the vulnerable window between the SpMV supersteps and
// the checksum check; every run must keep the invariant and at least one
// must be caught by ABFT specifically.
TEST(Chaos, AbftCatchesFiniteSpmvCorruption) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  std::size_t caught = 0;
  for (std::size_t superstep = 16; superstep <= 48; ++superstep) {
    json::Object f;
    f["type"] = "bitflip";
    f["tensor"] = "cg_Ap";
    f["bit"] = 22.0;  // top mantissa bit: large but finite corruption
    f["probability"] = 1.0;
    f["count"] = 1.0;
    f["superstep"] = static_cast<double>(superstep);
    json::Object plan;
    plan["seed"] = static_cast<double>(superstep);
    plan["faults"] = json::Value(json::Array{json::Value(f)});

    Outcome o = runCampaign(g, "cg", superstep, json::Value(plan), 4);
    EXPECT_TRUE(holdsInvariant(o)) << "flip at superstep " << superstep;
    ASSERT_FALSE(o.typedError) << o.errorMessage;
    if (o.abftMismatches > 0) {
      ++caught;
      EXPECT_TRUE(logContains(o.faultLog, "abft-mismatch"))
          << "counter ticked but no abft-mismatch event at superstep "
          << superstep;
    }
  }
  EXPECT_GE(caught, 1u) << "no scanned flip position was caught by ABFT";
}

// A tile dies mid-solve: the watchdog confirms it, the session blacklists
// it, repartitions over the survivors, migrates the iterate and converges.
// The whole recovery is observable — fault log, trace timeline, metrics.
TEST(Chaos, TileDeadSurvivesViaBlacklistAndRemap) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);
  solver::SolveSession session({.tiles = 8});
  session.load(g)
      .configure(R"({"type": "cg", "maxIterations": 200, "tolerance": 1e-6,
                     "robustness": {"maxRestarts": 2, "checkpointEvery": 8}})")
      .withFaultPlan(json::parse(R"({
        "seed": 5,
        "faults": [{"type": "tile-dead", "tile": 2, "superstep": 30}]
      })"));
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto result = session.solve(rhs);

  EXPECT_EQ(result.solve.status, solver::SolveStatus::Converged)
      << solver::toString(result.solve.status);
  ASSERT_EQ(session.blacklistedTiles().size(), 1u);
  EXPECT_EQ(session.blacklistedTiles()[0], 2u);

  // The recovery ladder is in the fault log...
  const auto& log = session.profile().faultEvents;
  EXPECT_TRUE(logContains(log, "tile-dead"));          // the injected fault
  EXPECT_TRUE(logContains(log, "watchdog-trip"));      // detection
  EXPECT_TRUE(logContains(log, "health:tile-dead"));   // confirmation
  EXPECT_TRUE(logContains(log, "recovery:blacklist")); // recovery
  EXPECT_TRUE(logContains(log, "recovery:remap"));
  // ...in the trace timeline...
  EXPECT_GE(session.trace().recoveryCount(), 2u);
  // ...and in the metrics.
  EXPECT_EQ(session.profile().metrics.counter("resilience.remaps"), 1.0);
  EXPECT_EQ(session.profile().metrics.counter("resilience.blacklisted"), 1.0);

  // No row of the remapped layout lives on the dead tile.
  for (std::size_t t : session.matrix().layout().rowToTile) {
    EXPECT_NE(t, 2u);
  }

  // And x actually solves the system.
  std::vector<double> ax(rhs.size(), 0.0);
  g.matrix.spmv(result.x, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], rhs[i], 1e-3);
  }
}

// The watchdog observes per-tile cycles from the engine's *serial*
// reduction pass, so trips, confirmations, blacklist and remap decisions —
// and hence the fault log and the solution — cannot depend on how many
// host threads simulate the tiles.
TEST(Chaos, RemapDecisionsAreHostThreadCountInvariant) {
  const matrix::GeneratedMatrix g = matrix::poisson3d7(5, 5, 5);
  const json::Value plan = json::parse(R"({
    "seed": 11,
    "faults": [
      {"type": "tile-dead", "tile": 5, "superstep": 25},
      {"type": "bitflip", "tensor": "cg_resid", "bit": 20, "count": 1,
       "superstep": 12},
      {"type": "link-degraded", "tile": 1, "factor": 3.0, "superstep": 8}
    ]
  })");

  Outcome one = runCampaign(g, "cg", 11, plan, 8, /*hostThreads=*/1);
  Outcome three = runCampaign(g, "cg", 11, plan, 8, /*hostThreads=*/3);

  ASSERT_FALSE(one.typedError) << one.errorMessage;
  ASSERT_FALSE(three.typedError) << three.errorMessage;
  EXPECT_EQ(one.status, three.status);
  EXPECT_EQ(one.faultLog, three.faultLog);  // byte-identical fault log
  EXPECT_EQ(one.x, three.x);                // bit-identical solution
  EXPECT_EQ(one.remaps, three.remaps);
}

namespace {

/// The soak job mix, defined in one place so the submitter and the checks
/// agree. Every fourth job runs clean — and always on the same (matrix,
/// config) pair, so the clean jobs exercise warm plan-cache leases even in
/// short soaks; the rest carry seeded random fault plans over a rotating
/// solver / matrix mix.
bool soakJobIsClean(std::size_t i) { return i % 4 == 3; }

const matrix::GeneratedMatrix& soakMatrix(std::size_t i,
                                          const matrix::GeneratedMatrix& m2,
                                          const matrix::GeneratedMatrix& m3) {
  if (soakJobIsClean(i)) return m2;
  return (i % 2 == 0) ? m2 : m3;
}

std::string soakConfig(std::size_t i) {
  static const char* solvers[] = {"cg", "bicgstab", "mpir"};
  return solverConfigFor(soakJobIsClean(i) ? "cg" : solvers[i % 3]);
}

/// Runs one seeded soak mix through a SolverService: `jobs` concurrent
/// submissions across CG / BiCGStab / MPIR and 2-D / 3-D matrices, three in
/// four carrying a seeded random fault plan (hard faults included), all
/// under a simulated-cycle deadline. Returns the terminal results in
/// submission order.
std::vector<solver::JobResult> runServiceSoak(std::size_t jobs,
                                              std::size_t workers,
                                              std::size_t hostThreads) {
  solver::ServiceOptions serviceOpts;
  serviceOpts.workers = workers;
  serviceOpts.tiles = 8;
  serviceOpts.hostThreads = hostThreads;
  serviceOpts.retry.maxRetries = 1;
  serviceOpts.retry.backoffBaseMs = 0.0;
  serviceOpts.retry.backoffMaxMs = 0.0;
  serviceOpts.retry.jitter = 0.0;
  // The soak judges per-job verdicts: a breaker tripping on one job's
  // seeded faults would make its *neighbours'* outcomes depend on
  // completion order across workers.
  serviceOpts.breaker.failuresToOpen = 1000000;
  solver::SolverService service(serviceOpts);

  const matrix::GeneratedMatrix m2 = matrix::poisson2d5(10, 10);
  const matrix::GeneratedMatrix m3 = matrix::poisson3d7(5, 5, 5);

  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < jobs; ++i) {
    solver::SolveJobOptions opts;
    opts.deadlineCycles = 5e8;  // simulated → deterministic
    if (!soakJobIsClean(i)) {
      opts.faultPlan = randomPlan(i, 8, /*allowHard=*/i % 2 == 1);
    }
    const matrix::GeneratedMatrix& g = soakMatrix(i, m2, m3);
    ids.push_back(service.submit(g, json::parse(soakConfig(i)),
                                 randomRhs(i, g.matrix.rows()),
                                 std::move(opts)));
  }

  std::vector<solver::JobResult> results;
  results.reserve(jobs);
  for (std::size_t id : ids) results.push_back(service.wait(id));

  // Clean repeat structures leased warm pipelines, and shutdown reclaims
  // the whole engine pool.
  EXPECT_GT(service.planCacheStats().hits, 0u);
  service.shutdown();
  EXPECT_EQ(service.pooledPipelines(), 0u);
  return results;
}

/// Adapts a service JobResult to the chaos invariant (converge-for-real or
/// fail typed); `g` is the matrix the job solved.
Outcome outcomeOf(const solver::JobResult& r,
                  const matrix::GeneratedMatrix& g, std::uint64_t seed) {
  Outcome o;
  o.status = r.solve.status;
  o.typedError = r.typedError;
  o.errorMessage = r.message;
  o.x = r.x;
  if (!r.typedError && r.solve.status == solver::SolveStatus::Converged) {
    const std::vector<double> rhs = randomRhs(seed, g.matrix.rows());
    std::vector<double> ax(rhs.size(), 0.0);
    g.matrix.spmv(r.x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const double d = rhs[i] - ax[i];
      num += d * d;
      den += rhs[i] * rhs[i];
    }
    o.hostRel = std::sqrt(num / std::max(den, 1e-300));
  }
  return o;
}

}  // namespace

// The serving soak: ≥16 concurrent fault-injected jobs through the
// SolverService — every one must end in a typed verdict (service verdicts
// included) within its deadline, never a crash, hang or silent drop.
TEST(Chaos, ServiceSoakEveryJobEndsTyped) {
  const std::size_t jobs = std::max<std::size_t>(16, campaignCount(16));
  const matrix::GeneratedMatrix m2 = matrix::poisson2d5(10, 10);
  const matrix::GeneratedMatrix m3 = matrix::poisson3d7(5, 5, 5);

  const auto results = runServiceSoak(jobs, /*workers=*/4, /*hostThreads=*/0);
  ASSERT_EQ(results.size(), jobs);
  std::size_t converged = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const Outcome o = outcomeOf(results[i], soakMatrix(i, m2, m3), i);
    EXPECT_TRUE(holdsInvariant(o)) << "soak job " << i;
    // Deadlines were enforced, not just recorded: overshoot is bounded by
    // one superstep — which can cost the full dead-tile charge (1e9 cycles)
    // on the hard-fault campaigns, and is small everywhere else.
    const bool mayHitDeadTile = !soakJobIsClean(i) && i % 2 == 1;
    EXPECT_LE(results[i].simCycles, 5e8 + (mayHitDeadTile ? 1.2e9 : 2.5e7))
        << "soak job " << i;
    if (o.status == solver::SolveStatus::Converged) ++converged;
  }
  EXPECT_GE(converged, jobs / 4);  // the soak isn't all wreckage
}

// Job outcomes are independent of service scheduling: the same soak mix
// produces bit-identical per-job verdicts and solutions whatever the host
// thread count — concurrency moves wall time around, never numerics.
TEST(Chaos, ServiceSoakIsHostThreadCountInvariant) {
  const std::size_t jobs = 8;
  const auto one = runServiceSoak(jobs, /*workers=*/2, /*hostThreads=*/1);
  const auto three = runServiceSoak(jobs, /*workers=*/2, /*hostThreads=*/3);
  ASSERT_EQ(one.size(), three.size());
  for (std::size_t i = 0; i < jobs; ++i) {
    EXPECT_EQ(one[i].typedError, three[i].typedError) << "job " << i;
    EXPECT_EQ(one[i].solve.status, three[i].solve.status)
        << "job " << i << ": " << solver::toString(one[i].solve.status)
        << " vs " << solver::toString(three[i].solve.status);
    EXPECT_EQ(one[i].x, three[i].x) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Pod-scale chaos: whole-chip loss and IPU-Link faults on a 4-chip pod.

// The pod flagship: a chip dies mid-solve, the watchdog escalates its tile
// deaths to an ipu-dead verdict, the session shrinks the topology onto the
// three survivors, migrates the iterate and converges. Every rung of the
// ladder is observable.
TEST(PodChaos, IpuDeadSurvivesViaTopologyShrink) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  solver::SolveSession session({.topology = pod, .maxRemaps = 2});
  session.load(g)
      .configure(R"({"type": "cg", "maxIterations": 200, "tolerance": 1e-6,
                     "robustness": {"maxRestarts": 2, "checkpointEvery": 8}})")
      .withFaultPlan(json::parse(R"({
        "seed": 9,
        "faults": [{"type": "ipu-dead", "ipu": 1, "superstep": 30}]
      })"));
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto result = session.solve(rhs);

  EXPECT_EQ(result.solve.status, solver::SolveStatus::Converged)
      << solver::toString(result.solve.status);
  // The chip went as one verdict, not a tile-by-tile blacklist march.
  ASSERT_EQ(session.deadIpus(), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(session.blacklistedTiles().empty());
  ASSERT_TRUE(session.options().topology.has_value());
  EXPECT_EQ(session.options().topology->numAliveIpus(), 3u);
  EXPECT_NE(session.options().topology->fingerprint(), pod.fingerprint());

  // The full escalation ladder is in the fault log...
  const auto& log = session.profile().faultEvents;
  EXPECT_TRUE(logContains(log, "ipu-dead"));                // injected fault
  EXPECT_TRUE(logContains(log, "watchdog-trip"));           // detection
  EXPECT_TRUE(logContains(log, "health:tile-dead"));        // per-tile
  EXPECT_TRUE(logContains(log, "health:ipu-dead"));         // escalation
  EXPECT_TRUE(logContains(log, "recovery:ipu-blacklist"));  // shrink
  EXPECT_TRUE(logContains(log, "recovery:remap"));
  // ...in the trace timeline and the metrics.
  EXPECT_GE(session.trace().recoveryCount(), 2u);
  EXPECT_EQ(session.profile().metrics.counter("resilience.remaps"), 1.0);
  // ...and the health report carries the chip verdict.
  const json::Value health = session.healthReport();
  ASSERT_TRUE(health.asObject().count("deadIpus") > 0);
  EXPECT_EQ(health.at("deadIpus").asArray().size(), 1u);

  // No row of the shrunken layout lives on the dead chip (tiles 8..15).
  for (std::size_t t : session.matrix().layout().rowToTile) {
    EXPECT_TRUE(t < 8 || t >= 16) << "row mapped to dead chip tile " << t;
  }

  // And x actually solves the system.
  std::vector<double> ax(rhs.size(), 0.0);
  g.matrix.spmv(result.x, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], rhs[i], 1e-3);
  }
}

// The shrink decision comes out of the engine's serial reduction pass, so
// the whole chip-dead recovery — fault log, shrink, solution — is
// bit-identical at any host thread count.
TEST(PodChaos, TopologyShrinkIsHostThreadCountInvariant) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  const json::Value plan = json::parse(R"({
    "seed": 13,
    "faults": [{"type": "ipu-dead", "ipu": 2, "superstep": 25}]
  })");

  Outcome one = runPodCampaign(g, "cg", 13, plan, pod, /*hostThreads=*/1);
  Outcome three = runPodCampaign(g, "cg", 13, plan, pod, /*hostThreads=*/3);

  ASSERT_FALSE(one.typedError) << one.errorMessage;
  ASSERT_FALSE(three.typedError) << three.errorMessage;
  EXPECT_EQ(one.status, three.status);
  EXPECT_EQ(one.faultLog, three.faultLog);  // byte-identical fault log
  EXPECT_EQ(one.x, three.x);                // bit-identical solution
  EXPECT_EQ(one.remaps, three.remaps);
}

// A severed ordered link re-routes its traffic via a surviving chip: the
// payload still lands (numerics are bit-identical to the healthy pod), but
// the detour is priced — the faulted solve costs strictly more cycles.
TEST(PodChaos, IpuLinkDeadReroutesAndConverges) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  const char* config =
      R"({"type": "cg", "maxIterations": 200, "tolerance": 1e-6})";
  std::vector<double> rhs(g.matrix.rows(), 1.0);

  solver::SolveSession::Result clean;
  {  // Scoped: only one session (one DSL context) may be live at a time.
    solver::SolveSession healthy({.topology = pod});
    healthy.load(g).configure(config);
    // Empty plan: keeps the engine on the same (fault-aware) execution path
    // as the severed run, so the cycle comparison isolates the re-route cost.
    healthy.withFaultPlan(json::parse(R"({"faults": []})"));
    clean = healthy.solve(rhs);
  }

  solver::SolveSession severed({.topology = pod});
  severed.load(g).configure(config).withFaultPlan(json::parse(R"({
    "faults": [{"type": "ipu-link-dead", "from": 0, "to": 1, "superstep": 0}]
  })"));
  auto rerouted = severed.solve(rhs);

  EXPECT_EQ(clean.solve.status, solver::SolveStatus::Converged);
  EXPECT_EQ(rerouted.solve.status, solver::SolveStatus::Converged);
  EXPECT_EQ(rerouted.x, clean.x);  // the detour never touches the payload
  EXPECT_GT(rerouted.simCycles, clean.simCycles);  // ...but it is priced
  EXPECT_TRUE(
      logContains(severed.profile().faultEvents, "ipu-link-dead"));
}

// On a 2-chip pod there is no surviving chip to relay through: severing the
// only link forward is a *partition* of the link graph, and the solve ends
// in the typed LinkPartitionedError — never a hang or a silent wrong answer.
TEST(PodChaos, LinkPartitionIsTyped) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  solver::SolveSession session({.topology = ipu::Topology::pod(2, 4)});
  session.load(g)
      .configure(R"({"type": "cg", "maxIterations": 100, "tolerance": 1e-6})")
      .withFaultPlan(json::parse(R"({
        "faults": [{"type": "ipu-link-dead", "from": 0, "to": 1,
                    "superstep": 0}]
      })"));
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  EXPECT_THROW(session.solve(rhs), ipu::LinkPartitionedError);
}

// The pod grand campaign: seeded chip-dead / link-dead / link-degraded
// rotations across CG, pipelined CG and BiCGStab on a 4-chip pod. Every
// campaign converges for real or fails typed.
TEST(PodChaos, PodGrandCampaign) {
  const std::size_t campaigns = campaignCount(18);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  const matrix::GeneratedMatrix m2 = matrix::poisson2d5(10, 10);
  const matrix::GeneratedMatrix m3 = matrix::poisson3d7(5, 5, 5);
  const char* solvers[] = {"cg", "pipelined-cg", "bicgstab"};

  std::size_t converged = 0;
  for (std::size_t i = 0; i < campaigns; ++i) {
    const std::string solver = solvers[i % 3];
    const matrix::GeneratedMatrix& g = (i % 2 == 0) ? m2 : m3;
    const json::Value plan = randomPodPlan(i, pod.numIpus());

    Outcome o = runPodCampaign(g, solver, i, plan, pod);
    EXPECT_TRUE(holdsInvariant(o))
        << "pod campaign " << i << " (" << solver << " on " << g.name
        << "), plan: " << describe(plan);
    if (!o.typedError) {
      EXPECT_EQ(ipu::faultEventsFromJson(ipu::faultEventsToJson(o.faultLog)),
                o.faultLog)
          << "pod campaign " << i;
      if (o.status == solver::SolveStatus::Converged) ++converged;
    }
  }
  EXPECT_GE(converged, campaigns / 4);  // recovery rescues a decent share
}

// Persistently dead SRAM under the SpMV result: every checksum check fails,
// the restart budget drains, and the verdict is the *typed*
// CorruptionDetected — not a crash, not a silent wrong answer.
TEST(Chaos, PersistentCorruptionEndsTyped) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(8, 8);
  const json::Value plan = json::parse(R"({
    "seed": 3,
    "faults": [{"type": "sram-region-dead", "tensor": "cg_Ap",
                "elements": 4, "superstep": 10}]
  })");
  Outcome o = runCampaign(g, "cg", 3, plan, 4);
  EXPECT_TRUE(holdsInvariant(o));
  ASSERT_FALSE(o.typedError) << o.errorMessage;
  EXPECT_NE(o.status, solver::SolveStatus::Converged);
}
