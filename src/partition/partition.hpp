// Row→tile partitioning strategies.
//
// The framework distributes the matrix row-wise across all tiles (§II-B).
// For grid-derived matrices a block-grid decomposition minimises the
// surface-to-volume ratio; for unstructured matrices a BFS-grown partition
// keeps subdomains connected.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/generators.hpp"

namespace graphene::partition {

/// Contiguous row blocks of (almost) equal size.
std::vector<std::size_t> partitionLinear(std::size_t rows, std::size_t tiles);

/// Factors `tiles` into px*py*pz as close to a cube as possible
/// (px >= py >= pz, px*py*pz == tiles). Shared by the flat and the nested
/// (pod) grid decompositions.
void factorCubic(std::size_t tiles, std::size_t& px, std::size_t& py,
                 std::size_t& pz);

/// Block-grid decomposition of an nx × ny × nz grid into `tiles` cuboidal
/// subdomains (tiles is factored into px·py·pz as cubically as possible).
/// Cell (x,y,z) keeps the generator's index order: idx = (z*ny + y)*nx + x.
std::vector<std::size_t> partitionGrid(std::size_t nx, std::size_t ny,
                                       std::size_t nz, std::size_t tiles);

/// BFS-grown partition for unstructured matrices: grows connected chunks of
/// ~rows/tiles cells following the adjacency of A.
std::vector<std::size_t> partitionBfs(const matrix::CsrMatrix& a,
                                      std::size_t tiles);

/// DEPRECATED: picks grid partitioning when geometry is available, BFS
/// otherwise, treating `tiles` as one big IPU. Use
/// `partition::Partitioner(Topology::singleIpu(tiles))` instead — this shim
/// forwards there and prints a one-time deprecation warning.
std::vector<std::size_t> partitionAuto(const matrix::GeneratedMatrix& g,
                                       std::size_t tiles);

/// DEPRECATED: like partitionAuto, but never places rows on a blacklisted
/// tile. Use `Partitioner(...).setBlacklist(...)` instead; same one-time
/// warning as the overload above.
std::vector<std::size_t> partitionAuto(const matrix::GeneratedMatrix& g,
                                       std::size_t tiles,
                                       const std::vector<std::size_t>& blacklist);

/// Number of rows per tile (validation / balance statistics).
std::vector<std::size_t> partitionSizes(const std::vector<std::size_t>& rowToTile,
                                        std::size_t tiles);

}  // namespace graphene::partition
