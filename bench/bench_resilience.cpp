// Resilience-overhead bench: what fault tolerance costs, in simulated
// cycles and solver iterations.
//
// Three questions, for CG and MPIR through the full SolveSession stack:
//   1. What does ABFT checksum verification cost when nothing goes wrong?
//      (It must be zero when disabled — the clean row is the reference.)
//   2. How do cycles/iterations grow with the transient-fault rate, with
//      ABFT + checkpoint restarts cleaning up behind the flips?
//   3. What does a hard fault cost end to end — watchdog detection,
//      blacklist, repartition over the survivors, migrated resume?
//   4. What do pod-scale faults cost on a 4-chip pod — a whole chip lost
//      mid-solve (topology shrink + migrated resume) and a severed IPU
//      link (traffic re-routed via a surviving chip, detour priced)?
//
// Emits a JSON summary to stdout (saved as BENCH_RESILIENCE.json at the
// repo root) so the recovery-cost trajectory is recorded across PRs.
// Run metadata (git rev, date) comes in via `--git-rev` / `--date` argv
// flags — see bench_json.hpp; the bench itself makes no wall-clock calls.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "ipu/topology.hpp"
#include "solver/session.hpp"

namespace {

using namespace graphene;

struct Row {
  std::string solver;
  std::string scenario;
  std::string status;
  double cycles = 0;
  std::size_t iterations = 0;
  std::size_t faultEvents = 0;
  double remaps = 0;
  double abftMismatches = 0;
};

std::string solverJson(const std::string& name, bool abft) {
  const std::string robustness = abft
      ? R"("robustness": {"maxRestarts": 4, "maxRollbacks": 4,
           "checkpointEvery": 8, "abft": true, "abftTolerance": 1e-3})"
      : R"("robustness": {"maxRestarts": 4, "maxRollbacks": 4,
           "checkpointEvery": 8})";
  if (name == "cg") {
    return R"({"type": "cg", "maxIterations": 400, "tolerance": 1e-6, )" +
           robustness + "}";
  }
  return R"({"type": "mpir", "maxRefinements": 20, "tolerance": 1e-9,
             "inner": {"type": "cg", "maxIterations": 30, "tolerance": 0}, )" +
         robustness + "}";
}

/// A seeded plan with `flips` finite bit flips against the SpMV result —
/// the fault class only ABFT can see.
std::string flipPlan(std::size_t flips) {
  return R"({"seed": 21, "faults": [
      {"type": "bitflip", "tensor": "Ap", "bit": 25, "count": )" +
         std::to_string(flips) +
         R"(, "probability": 0.2, "skip": 20},
      {"type": "bitflip", "tensor": "resid", "bit": 25, "count": )" +
         std::to_string(flips) +
         R"(, "probability": 0.2, "skip": 20}]})";
}

Row run(const std::string& solverName, const std::string& scenario,
        const matrix::GeneratedMatrix& g, bool abft, const char* planJson,
        const ipu::Topology* topology = nullptr) {
  solver::SessionOptions opts{.tiles = 8, .maxRemaps = 2};
  if (topology != nullptr) opts.topology = *topology;
  solver::SolveSession session(opts);
  session.load(g).configure(solverJson(solverName, abft));
  if (planJson != nullptr) session.withFaultPlan(json::parse(planJson));
  std::vector<double> rhs = bench::randomRhs(g.matrix.rows(), 7);
  auto result = session.solve(rhs);

  Row r;
  r.solver = solverName;
  r.scenario = scenario;
  r.status = solver::toString(result.solve.status);
  r.cycles = session.profile().totalCycles();
  r.iterations = result.solve.iterations;
  r.faultEvents = session.profile().faultEvents.size();
  r.remaps = session.profile().metrics.counter("resilience.remaps");
  r.abftMismatches =
      session.profile().metrics.counter("resilience.abft.mismatches");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto g = matrix::poisson2d5(24, 24);
  std::vector<Row> rows;

  for (const char* solverName : {"cg", "mpir"}) {
    // Reference and the zero-fault ABFT overhead.
    rows.push_back(run(solverName, "clean", g, false, nullptr));
    rows.push_back(run(solverName, "abft-clean", g, true, nullptr));
    // Transient-fault-rate sweep, recovery machinery fully armed.
    for (std::size_t flips : {1, 2, 4}) {
      rows.push_back(run(solverName, "flips-" + std::to_string(flips), g,
                         true, flipPlan(flips).c_str()));
    }
    // Hard fault: one tile dies mid-solve, the session remaps around it.
    rows.push_back(run(solverName, "tile-dead", g, true,
                       R"({"seed": 21, "faults": [
                           {"type": "tile-dead", "tile": 3,
                            "superstep": 40}]})"));
  }

  // Pod-scale hard faults on a 4-chip pod (same 32 simulated tiles the
  // service CI job uses). `pod-clean` is the reference: `pod-chip-dead`
  // prices the whole escalation ladder (watchdog → ipu-dead verdict →
  // topology shrink to 3 chips → migrated resume), `pod-link-dead` prices
  // the two-hop relay detour of a severed inter-chip link.
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  for (const char* solverName : {"cg", "mpir"}) {
    rows.push_back(run(solverName, "pod-clean", g, false, nullptr, &pod));
    rows.push_back(run(solverName, "pod-chip-dead", g, false,
                       R"({"seed": 21, "faults": [
                           {"type": "ipu-dead", "ipu": 1,
                            "superstep": 40}]})",
                       &pod));
    rows.push_back(run(solverName, "pod-link-dead", g, false,
                       R"({"seed": 21, "faults": [
                           {"type": "ipu-link-dead", "from": 0, "to": 1,
                            "superstep": 0}]})",
                       &pod));
  }

  bench::BenchMeta meta = bench::parseBenchMeta(argc, argv);
  meta.tiles = 8;
  meta.hostThreads = 1;
  bench::BenchReport report("resilience", meta);
  report.setField("matrix", g.name);
  report.setField("rows", g.matrix.rows());

  double cleanCycles = 0;
  for (const Row& r : rows) {
    // Pod rows normalise against the pod's own healthy run, not the
    // single-chip clean row — the ratio isolates the fault's cost.
    if (r.scenario == "clean" || r.scenario == "pod-clean") {
      cleanCycles = r.cycles;
    }
    json::Object row;
    row["solver"] = r.solver;
    row["scenario"] = r.scenario;
    row["status"] = r.status;
    row["cycles"] = r.cycles;
    row["cyclesVsClean"] = cleanCycles > 0 ? r.cycles / cleanCycles : 0.0;
    row["iterations"] = r.iterations;
    row["faultEvents"] = r.faultEvents;
    row["remaps"] = r.remaps;
    row["abftMismatches"] = r.abftMismatches;
    report.addResult(std::move(row));
  }
  std::printf("%s\n", report.dump().c_str());
  return 0;
}
