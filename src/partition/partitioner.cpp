#include "partition/partitioner.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <queue>

#include "partition/partition.hpp"
#include "support/error.hpp"

namespace graphene::partition {

namespace {

constexpr std::size_t kNone = SIZE_MAX;

/// Largest-remainder apportionment of `n` rows over weighted slots: sizes
/// are proportional to `weights`, sum to exactly `n`, and ties break by
/// slot index (deterministic).
std::vector<std::size_t> apportion(std::size_t n,
                                   const std::vector<std::size_t>& weights) {
  std::size_t total = std::accumulate(weights.begin(), weights.end(),
                                      std::size_t{0});
  GRAPHENE_CHECK(total > 0, "apportion: no capacity left");
  std::vector<std::size_t> sizes(weights.size(), 0);
  std::vector<std::size_t> frac(weights.size(), 0);
  std::size_t given = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sizes[i] = n * weights[i] / total;
    frac[i] = (n * weights[i]) % total;
    given += sizes[i];
  }
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t k = 0; given < n; ++k) {
    // Never hand rows to a zero-weight (fully dead) slot.
    const std::size_t i = order[k % order.size()];
    if (weights[i] == 0) continue;
    ++sizes[i];
    ++given;
  }
  return sizes;
}

/// BFS-grown connected chunks over the adjacency of `a`, restricted to rows
/// where `eligible` (nullptr = all rows). Chunk `c` grows to `targets[c]`
/// rows; zero-target chunks are skipped; leftovers attach to the last
/// non-empty chunk (same clamp as partitionBfs). Writes chunk ids into
/// `chunkOfRow` (kNone elsewhere).
void bfsChunks(const matrix::CsrMatrix& a, const std::vector<char>* eligible,
               const std::vector<std::size_t>& targets,
               std::vector<std::size_t>& chunkOfRow) {
  const std::size_t n = a.rows();
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto ok = [&](std::size_t r) {
    return (eligible == nullptr || (*eligible)[r]) && chunkOfRow[r] == kNone;
  };

  std::vector<std::size_t> active;  // chunk ids with a non-zero target
  std::size_t wanted = 0;
  for (std::size_t c = 0; c < targets.size(); ++c) {
    if (targets[c] > 0) {
      active.push_back(c);
      wanted += targets[c];
    }
  }
  if (active.empty()) return;

  std::size_t pos = 0;  // index into `active`
  std::size_t count = 0;
  std::queue<std::size_t> frontier;
  std::size_t nextSeed = 0;
  for (std::size_t assigned = 0; assigned < wanted;) {
    if (frontier.empty()) {
      while (nextSeed < n && !ok(nextSeed)) ++nextSeed;
      GRAPHENE_CHECK(nextSeed < n, "BFS pod partition lost cells");
      frontier.push(nextSeed);
      chunkOfRow[nextSeed] = active[pos];
      ++count;
      ++assigned;
    }
    while (!frontier.empty() && count < targets[active[pos]]) {
      std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t k = rowPtr[u]; k < rowPtr[u + 1]; ++k) {
        std::size_t v = static_cast<std::size_t>(col[k]);
        if (ok(v) && count < targets[active[pos]]) {
          chunkOfRow[v] = active[pos];
          ++count;
          ++assigned;
          frontier.push(v);
        }
      }
    }
    if (count >= targets[active[pos]]) {
      std::queue<std::size_t>().swap(frontier);
      pos = std::min(pos + 1, active.size() - 1);
      count = 0;
    }
  }
}

/// Nested block-grid decomposition: the nx x ny x nz grid is first cut into
/// `ipus` cuboids (IPU subdomains, minimizing cut surface by cubical
/// factoring), then each subdomain is cut into `tilesPerIpu` cuboids.
/// Returns ipu * tilesPerIpu + localTile per cell, IPU-major.
std::vector<std::size_t> gridPodMap(std::size_t nx, std::size_t ny,
                                    std::size_t nz, std::size_t ipus,
                                    std::size_t tilesPerIpu) {
  // Assign the largest factor to the largest dimension (partitionGrid rule).
  auto assignFactors = [](std::size_t parts, const std::size_t dims[3],
                          std::size_t out[3]) {
    std::size_t f[3];
    factorCubic(parts, f[0], f[1], f[2]);  // descending
    std::size_t order[3] = {0, 1, 2};
    std::sort(order, order + 3,
              [&](std::size_t a, std::size_t b) { return dims[a] > dims[b]; });
    for (int i = 0; i < 3; ++i) out[order[static_cast<std::size_t>(i)]] =
        f[i];
  };

  const std::size_t dims[3] = {nx, ny, nz};
  std::size_t ipuFac[3];
  assignFactors(ipus, dims, ipuFac);

  // Boundary of IPU slab j along an axis of extent n cut in f parts: the
  // first coordinate whose block index (min(f-1, x*f/n)) reaches j.
  auto lo = [](std::size_t j, std::size_t n, std::size_t f) {
    return (j * n + f - 1) / f;  // ceil(j*n/f)
  };

  std::vector<std::size_t> rowToTile(nx * ny * nz);
  // Per-IPU tile factors depend only on the subdomain extents; cache them.
  std::vector<std::array<std::size_t, 3>> tileFacCache(ipus);
  std::vector<char> tileFacReady(ipus, 0);

  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t c[3] = {x, y, z};
        std::size_t ipuCoord[3], boxLo[3], boxExt[3];
        for (int d = 0; d < 3; ++d) {
          const std::size_t dd = static_cast<std::size_t>(d);
          ipuCoord[dd] = std::min(ipuFac[dd] - 1, c[dd] * ipuFac[dd] / dims[dd]);
          boxLo[dd] = lo(ipuCoord[dd], dims[dd], ipuFac[dd]);
          boxExt[dd] = lo(ipuCoord[dd] + 1, dims[dd], ipuFac[dd]) - boxLo[dd];
        }
        const std::size_t ipu =
            (ipuCoord[2] * ipuFac[1] + ipuCoord[1]) * ipuFac[0] + ipuCoord[0];
        if (!tileFacReady[ipu]) {
          assignFactors(tilesPerIpu, boxExt, tileFacCache[ipu].data());
          tileFacReady[ipu] = 1;
        }
        const auto& tf = tileFacCache[ipu];
        std::size_t local[3];
        for (int d = 0; d < 3; ++d) {
          const std::size_t dd = static_cast<std::size_t>(d);
          local[dd] = boxExt[dd] == 0
                          ? 0
                          : std::min(tf[dd] - 1,
                                     (c[dd] - boxLo[dd]) * tf[dd] / boxExt[dd]);
        }
        const std::size_t localTile =
            (local[2] * tf[1] + local[1]) * tf[0] + local[0];
        rowToTile[(z * ny + y) * nx + x] = ipu * tilesPerIpu + localTile;
      }
    }
  }
  return rowToTile;
}

}  // namespace

Partitioner::Partitioner(ipu::Topology topology, Strategy strategy)
    : topology_(topology), strategy_(strategy) {}

Partitioner& Partitioner::setBlacklist(std::vector<std::size_t> deadTiles) {
  const std::size_t total = topology_.totalTiles();
  for (std::size_t t : deadTiles) {
    GRAPHENE_CHECK(t < total, "blacklisted tile ", t, " out of range (", total,
                   " tiles)");
  }
  blacklist_ = std::move(deadTiles);
  return *this;
}

std::vector<std::size_t> Partitioner::map(const matrix::GeneratedMatrix& g) const {
  const ipu::IpuTarget& t = topology_.target();
  const std::size_t numIpus = t.numIpus;
  const std::size_t tilesPerIpu = t.tilesPerIpu;
  const std::size_t total = t.totalTiles();
  const std::size_t n = g.matrix.rows();

  std::vector<char> dead(total, 0);
  for (std::size_t b : blacklist_) dead[b] = 1;
  // A chip removed from the topology takes all of its tiles with it; the
  // stable tile numbering is kept so blacklists and fault rules still mean
  // the same tile after a shrink.
  for (std::size_t ipu : topology_.deadIpus()) {
    for (std::size_t l = 0; l < tilesPerIpu; ++l) dead[ipu * tilesPerIpu + l] = 1;
  }
  std::vector<std::vector<std::size_t>> survivors(numIpus);
  std::vector<std::size_t> flatSurvivors;
  for (std::size_t tile = 0; tile < total; ++tile) {
    if (!dead[tile]) {
      survivors[tile / tilesPerIpu].push_back(tile);
      flatSurvivors.push_back(tile);
    }
  }
  GRAPHENE_CHECK(!flatSurvivors.empty(),
                 "all ", total, " tiles are blacklisted — nothing to run on");

  const bool haveGeometry = g.nx > 0 && g.ny > 0 && g.nz > 0;
  Strategy s = strategy_;
  if (s == Strategy::Auto) s = haveGeometry ? Strategy::Grid : Strategy::Bfs;
  GRAPHENE_CHECK(s != Strategy::Grid || haveGeometry,
                 "Partitioner: Grid strategy needs generator geometry");

  if (s == Strategy::Linear) {
    // Contiguous row blocks over surviving tiles (IPU-major, so blocks are
    // automatically contiguous per IPU).
    std::vector<std::size_t> sizes =
        apportion(n, std::vector<std::size_t>(flatSurvivors.size(), 1));
    std::vector<std::size_t> rowToTile(n);
    std::size_t row = 0;
    for (std::size_t i = 0; i < flatSurvivors.size(); ++i) {
      for (std::size_t k = 0; k < sizes[i]; ++k)
        rowToTile[row++] = flatSurvivors[i];
    }
    return rowToTile;
  }

  if (s == Strategy::Grid) {
    // The nested grid keeps its regular shape as long as every *surviving*
    // IPU has the same number of surviving tiles (including the undamaged
    // case); rows are laid out on a virtual aliveIpus x k grid and
    // relabelled onto the surviving physical tiles. Whole-chip loss stays on
    // this path — the grid simply spans fewer chips. Asymmetric tile damage
    // falls through to BFS.
    std::vector<std::size_t> aliveIpus;
    for (std::size_t i = 0; i < numIpus; ++i) {
      if (!survivors[i].empty()) aliveIpus.push_back(i);
    }
    const std::size_t k = survivors[aliveIpus.front()].size();
    bool uniform = k > 0;
    for (std::size_t i : aliveIpus) uniform = uniform && survivors[i].size() == k;
    if (uniform) {
      std::vector<std::size_t> virt =
          aliveIpus.size() == 1
              ? partitionGrid(g.nx, g.ny, g.nz, k)
              : gridPodMap(g.nx, g.ny, g.nz, aliveIpus.size(), k);
      for (std::size_t& v : virt) v = survivors[aliveIpus[v / k]][v % k];
      return virt;
    }
    s = Strategy::Bfs;
  }

  const std::size_t numAliveIpus = numIpus - topology_.deadIpus().size();

  // BFS path: a single (surviving) chip keeps the historical flat behaviour;
  // pods split rows across IPUs first (weighted by surviving tiles, zero for
  // dead chips), then grow equal connected chunks inside each IPU.
  if (numAliveIpus == 1) {
    std::vector<std::size_t> packed = partitionBfs(g.matrix, flatSurvivors.size());
    for (std::size_t& v : packed) v = flatSurvivors[v];
    return packed;
  }

  std::vector<std::size_t> weights(numIpus);
  for (std::size_t i = 0; i < numIpus; ++i) weights[i] = survivors[i].size();
  std::vector<std::size_t> ipuRows = apportion(n, weights);

  std::vector<std::size_t> ipuOfRow(n, kNone);
  bfsChunks(g.matrix, nullptr, ipuRows, ipuOfRow);

  std::vector<std::size_t> rowToTile(n, kNone);
  for (std::size_t i = 0; i < numIpus; ++i) {
    if (ipuRows[i] == 0) continue;
    std::vector<char> mine(n, 0);
    std::size_t count = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (ipuOfRow[r] == i) {
        mine[r] = 1;
        ++count;
      }
    }
    if (count == 0) continue;
    std::vector<std::size_t> tileRows =
        apportion(count, std::vector<std::size_t>(survivors[i].size(), 1));
    std::vector<std::size_t> localChunk(n, kNone);
    bfsChunks(g.matrix, &mine, tileRows, localChunk);
    for (std::size_t r = 0; r < n; ++r) {
      if (localChunk[r] != kNone) rowToTile[r] = survivors[i][localChunk[r]];
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    GRAPHENE_CHECK(rowToTile[r] != kNone, "pod partition lost row ", r);
  }
  return rowToTile;
}

DistributedLayout Partitioner::layout(const matrix::GeneratedMatrix& g) const {
  return buildLayout(g.matrix, map(g), topology_.totalTiles());
}

std::size_t interIpuCut(const matrix::CsrMatrix& a,
                        const std::vector<std::size_t>& rowToTile,
                        const ipu::Topology& topology) {
  const ipu::IpuTarget& t = topology.target();
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  std::size_t cut = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::size_t ipuI = t.ipuOfTile(rowToTile[i]);
    for (std::size_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k) {
      const std::size_t j = static_cast<std::size_t>(col[k]);
      if (j == i) continue;
      if (t.ipuOfTile(rowToTile[j]) != ipuI) ++cut;
    }
  }
  return cut;
}

}  // namespace graphene::partition
