// Codelets and vertices — the compute side of the dataflow graph.
//
// A codelet is "an individual computational operation, similar to a CUDA
// kernel, programmed in C++" (§II-A). In this simulation a codelet carries an
// opaque run function (produced by CodeDSL from its statement IR) that
// executes the computation against the vertex's tensor slices and returns the
// worker cycles it consumed under the cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/scalar.hpp"
#include "graph/tensor.hpp"

namespace graphene::graph {

class Engine;

using CodeletId = std::uint32_t;
using ComputeSetId = std::uint32_t;

/// A tile-local window of a tensor, passed to a codelet as an argument.
struct TensorSlice {
  TensorId tensor = kInvalidTensor;
  std::size_t tile = 0;   // region owner; must equal the vertex's tile
  std::size_t begin = 0;  // element offset within the tile's region
  std::size_t count = 0;  // elements visible to the codelet
};

/// Cost result of running one vertex.
struct VertexCost {
  /// Worker-visible cycles consumed.
  double workerCycles = 0;
  /// True when the codelet internally manages all six workers (level-set
  /// supervisor codelets): its cycles then occupy the whole tile.
  bool wholeTile = false;
};

/// Runtime interface handed to a codelet: access to its argument slices.
/// All indices are relative to the slice, enforcing tile-locality.
class VertexContext {
 public:
  virtual ~VertexContext() = default;
  virtual std::size_t numArgs() const = 0;
  virtual std::size_t argSize(std::size_t arg) const = 0;
  virtual ipu::DType argType(std::size_t arg) const = 0;
  virtual Scalar load(std::size_t arg, std::size_t index) const = 0;
  virtual void store(std::size_t arg, std::size_t index,
                     const Scalar& value) = 0;
  /// Fast typed view of an argument slice (dtype must match T).
  virtual std::span<float> floatSpan(std::size_t arg) = 0;
  virtual std::span<const std::int32_t> intSpan(std::size_t arg) const = 0;
};

struct Codelet {
  std::string name;
  /// Executes the codelet against one vertex's argument slices.
  ///
  /// Thread-safety contract: the engine invokes `run` for vertices on
  /// different tiles from concurrent host threads. The callable must
  /// therefore be stateless with respect to the invocation — any captured
  /// state (e.g. a compiled codelet) must be immutable, with all per-run
  /// state living on the caller's stack or in the VertexContext. Distinct
  /// invocations never share a VertexContext, and their argument slices
  /// reference disjoint storage regions (slices are tile-local).
  std::function<VertexCost(VertexContext&)> run;
};

/// One codelet instance placed on one tile with bound tensor slices.
struct Vertex {
  CodeletId codelet = 0;
  std::size_t tile = 0;
  std::vector<TensorSlice> args;
};

/// Vertices that may execute in parallel, separated from neighbours by BSP
/// syncs. `category` labels profile attribution (Table IV breakdown).
struct ComputeSet {
  std::string category;
  std::vector<Vertex> vertices;
  /// Counters ticked into Profile::metrics each time this compute set
  /// executes (e.g. {"spmv.flops", 2·nnz}). Usually empty.
  std::vector<std::pair<std::string, double>> perExecMetrics;
};

}  // namespace graphene::graph
