// Shared JSON schema for every bench_* emitter.
//
// Before this helper each bench printf-built its own JSON with its own key
// set; the saved BENCH_*.json snapshots could not be compared or machine-
// read uniformly. Every bench now emits the same envelope:
//
//   {
//     "bench": "<name>",
//     "schemaVersion": 2,
//     "meta": {"gitRev", "date", "tiles", "hostThreads", ...},
//     ... bench-specific top-level fields ...
//     "results": [ {row}, {row}, ... ]
//   }
//
// Run metadata that would otherwise need a wall clock or a subprocess (git
// rev, date) is passed in via argv (`--git-rev <sha> --date <iso8601>`) —
// benches make no wall-clock or environment calls in measurement paths, so
// a bench binary's output is a pure function of its inputs.
#pragma once

#include <cstring>
#include <string>
#include <utility>

#include "support/json.hpp"

namespace graphene::bench {

/// Run metadata attached to every bench report.
struct BenchMeta {
  std::string gitRev = "unknown";  // --git-rev <sha>
  std::string date = "unknown";    // --date <iso8601>
  std::size_t tiles = 0;           // simulated tiles (0 = varies per row)
  std::size_t hostThreads = 0;     // host threads (0 = varies per row)
};

/// Picks `--git-rev` / `--date` out of argv (unknown flags are ignored so
/// benches can keep their own arguments).
inline BenchMeta parseBenchMeta(int argc, char** argv) {
  BenchMeta meta;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--git-rev") == 0) meta.gitRev = argv[i + 1];
    if (std::strcmp(argv[i], "--date") == 0) meta.date = argv[i + 1];
  }
  return meta;
}

/// Accumulates result rows and renders the shared envelope.
class BenchReport {
 public:
  static constexpr int kSchemaVersion = 2;

  BenchReport(std::string name, BenchMeta meta)
      : name_(std::move(name)), meta_(std::move(meta)) {}

  /// Extra bench-specific top-level metadata (matrix name, sweep axis, ...).
  void setField(const std::string& key, json::Value value) {
    fields_[key] = std::move(value);
  }

  void addResult(json::Object row) { results_.emplace_back(std::move(row)); }

  std::string dump(int indent = 2) const {
    json::Object doc;
    doc["bench"] = name_;
    doc["schemaVersion"] = kSchemaVersion;
    json::Object meta;
    meta["gitRev"] = meta_.gitRev;
    meta["date"] = meta_.date;
    meta["tiles"] = meta_.tiles;
    meta["hostThreads"] = meta_.hostThreads;
    doc["meta"] = std::move(meta);
    for (const auto& [key, value] : fields_) doc[key] = value;
    doc["results"] = results_;
    return json::Value(std::move(doc)).dump(indent);
  }

 private:
  std::string name_;
  BenchMeta meta_;
  json::Object fields_;
  json::Array results_;
};

}  // namespace graphene::bench
