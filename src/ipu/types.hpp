// Element data types and abstract operations of the simulated IPU.
//
// The DSLs are dynamically typed (paper §III): every DSL value carries one of
// these types at symbolic-execution time. FLOAT64 is software-emulated
// (SoftDouble) and DOUBLEWORD is the TwoFloat double-word type — the IPU has
// no native double precision (§III-D).
#pragma once

#include <cstddef>
#include <string>

namespace graphene::ipu {

enum class DType {
  Bool,
  Int32,
  Float32,
  Float64,     // software-emulated IEEE binary64
  DoubleWord,  // two-float double-word value (hi, lo)
};

/// Size in bytes of one element in tile SRAM.
constexpr std::size_t sizeOf(DType t) {
  switch (t) {
    case DType::Bool: return 1;
    case DType::Int32: return 4;
    case DType::Float32: return 4;
    case DType::Float64: return 8;
    case DType::DoubleWord: return 8;  // two float32 words
  }
  return 0;
}

constexpr bool isFloating(DType t) {
  return t == DType::Float32 || t == DType::Float64 || t == DType::DoubleWord;
}

const char* dtypeName(DType t);

/// Abstract operations the cycle model prices. These correspond to worker
/// instructions (or short instruction sequences for the extended-precision
/// types) on the simulated tile.
enum class Op {
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Abs,
  Sqrt,
  Compare,  // any relational operator
  Logic,    // and/or/not on bools
  IntArith, // integer add/sub/mul, index arithmetic
  Load,     // tile-local SRAM load
  Store,    // tile-local SRAM store
  Branch,   // conditional branch (single-cycle on IPU)
  Cast,     // dtype conversion
};

const char* opName(Op op);

}  // namespace graphene::ipu
