#include "dsl/context.hpp"

#include "support/error.hpp"

namespace graphene::dsl {

namespace {
thread_local Context* g_currentContext = nullptr;
}

Context::Context(ipu::IpuTarget target) : graph_(target) {
  GRAPHENE_CHECK(g_currentContext == nullptr,
                 "only one DSL context may be active at a time");
  g_currentContext = this;
  root_ = graph::Program::sequence();
  stack_.push_back(root_);
}

Context::~Context() {
  // Only clear the slot if this context is the one bound on the destroying
  // thread: a pooled pipeline may be destroyed (cache eviction, service
  // teardown) from a thread that never bound it, and must not clobber that
  // thread's own active context.
  if (g_currentContext == this) g_currentContext = nullptr;
}

void Context::bind() {
  GRAPHENE_CHECK(g_currentContext == nullptr || g_currentContext == this,
                 "cannot bind DSL context: this thread already has another "
                 "active context");
  g_currentContext = this;
}

void Context::unbind() {
  if (g_currentContext == this) g_currentContext = nullptr;
}

Context& Context::current() {
  GRAPHENE_CHECK(g_currentContext != nullptr,
                 "TensorDSL used without an active Context");
  return *g_currentContext;
}

bool Context::active() { return g_currentContext != nullptr; }

void Context::emit(graph::ProgramPtr step) {
  GRAPHENE_DCHECK(!stack_.empty(), "control-flow stack empty");
  stack_.back()->children.push_back(std::move(step));
}

graph::ProgramPtr Context::pushSequence() {
  auto seq = graph::Program::sequence();
  stack_.push_back(seq);
  return seq;
}

graph::ProgramPtr Context::popSequence() {
  GRAPHENE_CHECK(stack_.size() > 1, "control-flow stack underflow");
  auto top = stack_.back();
  stack_.pop_back();
  return top;
}

std::string Context::freshName(const std::string& prefix) {
  return prefix + "_" + std::to_string(nameCounter_++);
}

}  // namespace graphene::dsl
