#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <queue>

#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace graphene::partition {

std::vector<std::size_t> partitionLinear(std::size_t rows,
                                         std::size_t tiles) {
  GRAPHENE_CHECK(tiles > 0, "need at least one tile");
  std::vector<std::size_t> rowToTile(rows);
  const std::size_t base = rows / tiles, rem = rows % tiles;
  std::size_t row = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    std::size_t count = base + (t < rem ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) rowToTile[row++] = t;
  }
  return rowToTile;
}

namespace {

/// Factors `tiles` into px*py*pz as close to a cube as possible, with
/// px >= py >= pz and px*py*pz == tiles.
void factor3(std::size_t tiles, std::size_t& px, std::size_t& py,
             std::size_t& pz) {
  px = tiles;
  py = pz = 1;
  double best = 1e300;
  for (std::size_t a = 1; a * a * a <= tiles * tiles * tiles; ++a) {
    if (tiles % a) continue;
    for (std::size_t b = a; a * b * b <= tiles * tiles; ++b) {
      if ((tiles / a) % b) continue;
      std::size_t c = tiles / (a * b);
      if (c < b) continue;
      // Score: spread of the three factors (smaller = more cubical).
      double score = static_cast<double>(c) / static_cast<double>(a);
      if (score < best) {
        best = score;
        px = c;
        py = b;
        pz = a;
      }
    }
  }
}

}  // namespace

void factorCubic(std::size_t tiles, std::size_t& px, std::size_t& py,
                 std::size_t& pz) {
  factor3(tiles, px, py, pz);
}

std::vector<std::size_t> partitionGrid(std::size_t nx, std::size_t ny,
                                       std::size_t nz, std::size_t tiles) {
  GRAPHENE_CHECK(tiles > 0 && nx > 0 && ny > 0 && nz > 0, "bad grid/tiles");
  std::size_t px, py, pz;
  factor3(tiles, px, py, pz);
  // Assign the largest factor to the largest grid dimension.
  std::size_t dims[3] = {nx, ny, nz};
  std::size_t facs[3] = {px, py, pz};  // descending
  std::size_t order[3] = {0, 1, 2};
  std::sort(order, order + 3,
            [&](std::size_t a, std::size_t b) { return dims[a] > dims[b]; });
  std::size_t fx = 1, fy = 1, fz = 1;
  std::size_t* assigned[3] = {&fx, &fy, &fz};
  for (int i = 0; i < 3; ++i) *assigned[order[static_cast<std::size_t>(i)]] = facs[i];

  std::vector<std::size_t> rowToTile(nx * ny * nz);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t tx = std::min(fx - 1, x * fx / nx);
        const std::size_t ty = std::min(fy - 1, y * fy / ny);
        const std::size_t tz = std::min(fz - 1, z * fz / nz);
        rowToTile[(z * ny + y) * nx + x] = (tz * fy + ty) * fx + tx;
      }
    }
  }
  return rowToTile;
}

std::vector<std::size_t> partitionBfs(const matrix::CsrMatrix& a,
                                      std::size_t tiles) {
  GRAPHENE_CHECK(tiles > 0, "need at least one tile");
  const std::size_t n = a.rows();
  std::vector<std::size_t> rowToTile(n, tiles);  // `tiles` = unassigned
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();

  const std::size_t targetSize = (n + tiles - 1) / tiles;
  std::size_t currentTile = 0;
  std::size_t currentCount = 0;
  std::queue<std::size_t> frontier;
  std::size_t nextSeed = 0;

  for (std::size_t assigned = 0; assigned < n;) {
    if (frontier.empty()) {
      while (nextSeed < n && rowToTile[nextSeed] != tiles) ++nextSeed;
      GRAPHENE_CHECK(nextSeed < n, "BFS partition lost cells");
      frontier.push(nextSeed);
      rowToTile[nextSeed] = currentTile;
      ++currentCount;
      ++assigned;
    }
    while (!frontier.empty() && currentCount < targetSize) {
      std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t k = rowPtr[u]; k < rowPtr[u + 1]; ++k) {
        std::size_t v = static_cast<std::size_t>(col[k]);
        if (rowToTile[v] == tiles && currentCount < targetSize) {
          rowToTile[v] = currentTile;
          ++currentCount;
          ++assigned;
          frontier.push(v);
        }
      }
    }
    if (currentCount >= targetSize) {
      // Leftover frontier cells belong to the next tile's search space.
      std::queue<std::size_t>().swap(frontier);
      currentTile = std::min(currentTile + 1, tiles - 1);
      currentCount = 0;
    }
  }
  return rowToTile;
}

namespace {

void warnPartitionAutoDeprecated() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::fprintf(stderr,
                 "graphene: warning: partitionAuto() is deprecated; construct "
                 "a partition::Partitioner over an ipu::Topology instead "
                 "(this warning is printed once)\n");
  });
}

}  // namespace

std::vector<std::size_t> partitionAuto(const matrix::GeneratedMatrix& g,
                                       std::size_t tiles) {
  warnPartitionAutoDeprecated();
  return Partitioner(ipu::Topology::singleIpu(tiles)).map(g);
}

std::vector<std::size_t> partitionAuto(
    const matrix::GeneratedMatrix& g, std::size_t tiles,
    const std::vector<std::size_t>& blacklist) {
  warnPartitionAutoDeprecated();
  Partitioner p(ipu::Topology::singleIpu(tiles));
  p.setBlacklist(blacklist);
  return p.map(g);
}

std::vector<std::size_t> partitionSizes(
    const std::vector<std::size_t>& rowToTile, std::size_t tiles) {
  std::vector<std::size_t> sizes(tiles, 0);
  for (std::size_t t : rowToTile) {
    GRAPHENE_CHECK(t < tiles, "row assigned to invalid tile");
    ++sizes[t];
  }
  return sizes;
}

}  // namespace graphene::partition
