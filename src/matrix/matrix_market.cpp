#include "matrix/matrix_market.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace graphene::matrix {

namespace {

/// Throws ParseError with a 1-based line number — corrupt files name the
/// exact offending line, not just the first symptom downstream.
[[noreturn]] void parseFail(std::size_t lineNo, const std::string& what,
                            const std::string& line = {}) {
  std::ostringstream oss;
  oss << "MatrixMarket line " << lineNo << ": " << what;
  if (!line.empty()) oss << " (got: \"" << line << "\")";
  throw ParseError(oss.str());
}

/// A size/entry line must be fully consumed: trailing junk ("3 3 4 garbage")
/// is a corrupt file, not something to silently ignore.
bool hasTrailingTokens(std::istringstream& s) {
  std::string rest;
  return static_cast<bool>(s >> rest);
}

}  // namespace

CsrMatrix readMatrixMarket(std::istream& in) {
  std::string line;
  std::size_t lineNo = 0;
  if (!std::getline(in, line)) throw ParseError("empty MatrixMarket stream");
  ++lineNo;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    parseFail(lineNo, "missing %%MatrixMarket banner", line);
  }
  if (object != "matrix" || format != "coordinate") {
    parseFail(lineNo, "only 'matrix coordinate' MatrixMarket files supported",
              line);
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    parseFail(lineNo, "unsupported field type '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    parseFail(lineNo, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments.
  do {
    if (!std::getline(in, line)) {
      parseFail(lineNo, "truncated header: no size line");
    }
    ++lineNo;
  } while (!line.empty() && line[0] == '%');

  std::istringstream sizes(line);
  long long rows = -1, cols = -1, entries = -1;
  sizes >> rows >> cols >> entries;
  if (sizes.fail() || rows < 0 || cols < 0 || entries < 0) {
    parseFail(lineNo, "malformed size line, expected 'rows cols nnz'", line);
  }
  if (hasTrailingTokens(sizes)) {
    parseFail(lineNo, "trailing tokens after 'rows cols nnz'", line);
  }
  if ((rows == 0 || cols == 0) && entries > 0) {
    parseFail(lineNo, "empty matrix cannot have entries", line);
  }

  std::vector<Triplet> trips;
  trips.reserve(symmetric ? 2 * static_cast<std::size_t>(entries)
                          : static_cast<std::size_t>(entries));
  for (long long i = 0; i < entries; ++i) {
    if (!std::getline(in, line)) {
      parseFail(lineNo, "truncated data: entry " + std::to_string(i + 1) +
                            " of " + std::to_string(entries) + " missing");
    }
    ++lineNo;
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (!pattern) es >> v;
    if (es.fail()) parseFail(lineNo, "malformed entry", line);
    if (hasTrailingTokens(es)) {
      parseFail(lineNo, "trailing tokens after entry", line);
    }
    if (r < 1 || c < 1 || r > rows || c > cols) {
      parseFail(lineNo,
                "index (" + std::to_string(r) + ", " + std::to_string(c) +
                    ") outside " + std::to_string(rows) + "x" +
                    std::to_string(cols) + " matrix (1-based)",
                line);
    }
    if (!std::isfinite(v)) {
      parseFail(lineNo, "non-finite value", line);
    }
    const std::size_t r0 = static_cast<std::size_t>(r - 1);
    const std::size_t c0 = static_cast<std::size_t>(c - 1);
    trips.push_back(Triplet{r0, c0, v});
    if (symmetric && r != c) trips.push_back(Triplet{c0, r0, v});
  }
  return CsrMatrix::fromTriplets(static_cast<std::size_t>(rows),
                                 static_cast<std::size_t>(cols),
                                 std::move(trips));
}

CsrMatrix readMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  GRAPHENE_CHECK(in.good(), "cannot open MatrixMarket file '", path, "'");
  return readMatrixMarket(in);
}

void writeMatrixMarket(const CsrMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  out.precision(17);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      out << (r + 1) << " " << (col[k] + 1) << " " << val[k] << "\n";
    }
  }
}

void writeMatrixMarketFile(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  GRAPHENE_CHECK(out.good(), "cannot open '", path, "' for writing");
  writeMatrixMarket(a, out);
}

}  // namespace graphene::matrix
