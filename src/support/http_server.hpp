// Minimal embedded HTTP/1.1 server — the live telemetry endpoint.
//
// A long-running SolverService wants its Prometheus metrics *scraped*, not
// dumped once at exit: Prometheus, curl and graphene-top all speak plain
// HTTP GET. No third-party HTTP dependency is available offline, so this is
// the subset a scrape needs and nothing more: a blocking IPv4 listener on
// 127.0.0.1, one connection served at a time, GET only, Connection: close.
// That is deliberately boring — a scrape is a handful of requests per
// second, and a serial accept loop cannot reorder, interleave or starve
// anything the TSan service job would have to reason about.
//
//   support::HttpServer server;
//   server.start(0 /* ephemeral */, [](const std::string& path) {
//     return support::HttpServer::Response{200, "text/plain", "ok\n"};
//   });
//   ... server.port() is bound now ...
//   server.stop();  // deterministic: joins the accept thread
//
// The handler runs on the accept thread; it must be thread-safe against
// whatever state it reads (the service handlers snapshot under their own
// locks). httpGet() is the matching one-shot client used by graphene-top
// and the tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace graphene::support {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Maps a request path ("/metrics", "/flight/7") to a response. Thrown
  /// exceptions become a 500 with the error text in the body — an endpoint
  /// bug must not kill the accept thread.
  using Handler = std::function<Response(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer();  // stop()s
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read it
  /// back via port()) and starts the accept thread. Errors (port in use,
  /// no sockets) throw graphene::Error. start() after start() is an error;
  /// start() after stop() opens a fresh listener.
  void start(std::uint16_t port, Handler handler);

  /// The bound port; 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Closes the listener and joins the accept thread. In-flight requests
  /// finish first (the accept loop re-checks the stop flag between
  /// connections); idempotent.
  void stop();

  /// Requests served since start() (diagnostics/tests).
  std::size_t requestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void acceptLoop();

  Handler handler_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> requests_{0};
  std::thread thread_;
};

/// One-shot blocking HTTP GET against 127.0.0.1:`port`. Returns the parsed
/// status and body; throws graphene::Error on connection failure or a
/// malformed response. `timeoutSeconds` bounds the whole exchange.
HttpServer::Response httpGet(std::uint16_t port, const std::string& path,
                             double timeoutSeconds = 5.0);

}  // namespace graphene::support
