// Figure 6: weak scaling of one SpMV — the grid grows with the pod so every
// tile keeps the same number of rows; ideal weak scaling means constant
// time, and the halo-exchange time stays flat because the all-to-all fabric
// exchanges all separator regions simultaneously (§VI-B).
//
// Paper: 58 M to 890 M nnz on 1..16 IPUs; here scaled down (sizes printed).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace graphene;

int main() {
  bench::printHeader("Figure 6 — SpMV weak scaling",
                     "constant time per SpMV at constant rows/tile "
                     "(paper Fig. 6)");

  const std::size_t tilesPerIpu = 64;
  const std::size_t rowsPerTile = 1000;
  const std::size_t ipuCounts[] = {1, 2, 4, 8, 16};

  std::printf("%zu tiles per simulated IPU, ~%zu rows per tile\n\n",
              tilesPerIpu, rowsPerTile);

  TextTable t({"IPUs", "grid", "nnz", "total time", "compute time",
               "halo+sync time"});
  std::vector<double> totals, halos;
  for (std::size_t ipus : ipuCounts) {
    const double targetRows =
        static_cast<double>(rowsPerTile * tilesPerIpu * ipus);
    const std::size_t side =
        static_cast<std::size_t>(std::round(std::cbrt(targetRows)));
    auto g = matrix::poisson3d7(side, side, side);

    ipu::IpuTarget target;
    target.tilesPerIpu = tilesPerIpu;
    target.numIpus = ipus;
    bench::DistSystem s = bench::makeSystem(g, target);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor y = s.A->makeVector(dsl::DType::Float32, "y");
    s.A->spmv(y, x);
    auto xh = bench::randomRhs(g.matrix.rows());
    auto prof = bench::runProgram(s, s.ctx->program(), xh, x);

    const double total = target.secondsFromCycles(prof.totalCycles());
    const double compute =
        target.secondsFromCycles(prof.totalComputeCycles());
    const double halo =
        target.secondsFromCycles(prof.exchangeCycles + prof.syncCycles);
    totals.push_back(total);
    halos.push_back(halo);
    t.addRow({std::to_string(ipus),
              std::to_string(side) + "^3",
              std::to_string(g.matrix.nnz()), formatTime(total),
              formatTime(compute), formatTime(halo)});
  }
  std::printf("%s\n", t.render().c_str());

  // Ideal weak scaling: total time roughly flat 1 → 16 IPUs.
  double drift = totals.back() / totals.front();
  std::printf("check: total time at 16 IPUs within 1.35x of 1 IPU "
              "(ideal weak scaling): %s (%.2fx)\n",
              drift < 1.35 ? "PASS" : "FAIL", drift);
  // The 1→2 IPU step adds the one-time global (IPU-Link) sync; within the
  // multi-IPU regime the exchange time must stay flat even though the total
  // communication volume grows linearly (§VI-B).
  double haloDrift = halos.back() / std::max(halos[1], 1e-12);
  std::printf("check: halo exchange time stays flat from 2 to 16 IPUs "
              "(all-to-all fabric): %s (%.2fx)\n",
              haloDrift < 1.3 ? "PASS" : "FAIL", haloDrift);
  return 0;
}
