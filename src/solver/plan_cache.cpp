#include "solver/plan_cache.hpp"

#include <algorithm>

namespace graphene::solver {

std::uint64_t fnv1aBytes(const void* data, std::size_t len,
                         std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::uint64_t hashSizeT(std::uint64_t h, std::size_t v) {
  const auto x = static_cast<std::uint64_t>(v);
  return fnv1aBytes(&x, sizeof x, h);
}

}  // namespace

std::uint64_t structureFingerprint(const matrix::GeneratedMatrix& m,
                                   const SessionOptions& options) {
  const matrix::CsrMatrix& a = m.matrix;
  std::uint64_t h = 14695981039346656037ull;
  h = hashSizeT(h, a.rows());
  h = hashSizeT(h, a.cols());
  h = hashSizeT(h, a.nnz());
  h = fnv1aBytes(a.rowPtr().data(), a.rowPtr().size_bytes(), h);
  h = fnv1aBytes(a.colIdx().data(), a.colIdx().size_bytes(), h);
  // Geometry hints pick grid vs BFS partitioning — structurally identical
  // matrices with different hints produce different layouts and programs.
  h = hashSizeT(h, m.nx);
  h = hashSizeT(h, m.ny);
  h = hashSizeT(h, m.nz);
  h = hashSizeT(h, options.tiles);
  h = hashSizeT(h, options.perCellHalo ? 1 : 0);
  // The machine shape (chips x tiles, link model) changes the partition,
  // the emitted exchange programs and the cycle pricing: a pipeline compiled
  // for 1x64 must never be replayed on a 4x16 pod. Hash the *resolved*
  // topology so the explicit-topology, GRAPHENE_TEST_POD and plain-tiles
  // spellings of the same shape share cache entries.
  h = hashSizeT(h, static_cast<std::size_t>(
                       resolveSessionTopology(options).fingerprint()));
  return h;
}

std::uint64_t valuesFingerprint(const matrix::CsrMatrix& m) {
  return fnv1aBytes(m.values().data(), m.values().size_bytes());
}

std::uint64_t configFingerprint(const json::Value& solverConfig) {
  const std::string dump = solverConfig.dump();
  return fnv1aBytes(dump.data(), dump.size());
}

bool configBakesValues(const json::Value& solverConfig) {
  if (!solverConfig.isObject()) return false;
  if (solverConfig.contains("type") && solverConfig.at("type").isString()) {
    const std::string& type = solverConfig.at("type").asString();
    if (type == "ilu" || type == "dilu" || type == "gauss-seidel" ||
        type == "gaussseidel" || type == "gs") {
      return true;
    }
  }
  // Nested stages sit under these keys (see makeSolver()).
  for (const char* nested : {"preconditioner", "inner"}) {
    if (solverConfig.contains(nested) &&
        configBakesValues(solverConfig.at(nested))) {
      return true;
    }
  }
  return false;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

PlanCache::Lease PlanCache::acquire(const Key& key, std::uint64_t valuesHash,
                                    bool allowValueUpdate) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* exact = nullptr;
  Entry* stale = nullptr;  // idle, right key, wrong values
  for (Entry& e : entries_) {
    if (e.busy || !(e.key == key)) continue;
    if (e.valuesHash == valuesHash) {
      // Prefer the most recently used exact match (warmest pipeline).
      if (exact == nullptr || e.lastUsedTick > exact->lastUsedTick) exact = &e;
    } else if (stale == nullptr || e.lastUsedTick > stale->lastUsedTick) {
      stale = &e;
    }
  }
  Entry* pick = exact != nullptr ? exact
                : allowValueUpdate ? stale
                                   : nullptr;
  if (pick == nullptr) {
    stats_.misses += 1;
    return {};
  }
  pick->busy = true;
  pick->lastUsedTick = ++tick_;
  pick->valuesHash = valuesHash;  // caller updates values when it differed
  stats_.hits += 1;
  return {pick->session, pick == exact};
}

void PlanCache::insert(const Key& key, std::uint64_t valuesHash,
                       std::shared_ptr<SolveSession> session) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.key = key;
  e.valuesHash = valuesHash;
  e.topologyFp =
      session->options().topology ? session->options().topology->fingerprint()
                                  : 0;
  e.session = std::move(session);
  e.busy = true;  // the builder keeps the lease
  e.lastUsedTick = ++tick_;
  entries_.push_back(std::move(e));
  evictLocked();
}

void PlanCache::release(const SolveSession* session, bool invalidate) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].session.get() != session) continue;
    if (invalidate) {
      stats_.invalidations += 1;
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      entries_[i].busy = false;
      entries_[i].lastUsedTick = ++tick_;
    }
    return;
  }
  // Not cached (capacity 0 or evicted while leased is impossible — busy
  // entries are never evicted — so this is the never-inserted case).
}

std::size_t PlanCache::invalidate(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (!entries_[i].busy && entries_[i].key == key) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      dropped += 1;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

std::size_t PlanCache::invalidateTopology(std::uint64_t topologyFp) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (!entries_[i].busy && entries_[i].topologyFp == topologyFp) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      dropped += 1;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::evictLocked() {
  while (entries_.size() > capacity_) {
    std::size_t lru = SIZE_MAX;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].busy) continue;
      if (lru == SIZE_MAX ||
          entries_[i].lastUsedTick < entries_[lru].lastUsedTick) {
        lru = i;
      }
    }
    // Every entry leased: tolerate transient over-capacity rather than
    // yanking a pipeline out from under a running solve.
    if (lru == SIZE_MAX) return;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(lru));
    stats_.evictions += 1;
  }
}

}  // namespace graphene::solver
