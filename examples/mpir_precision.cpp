// Precision study: what the IPU's missing double-precision hardware costs,
// and how MPIR + double-word arithmetic recovers it (§III-D, §V-B, §VI-C).
//
// Solves the same system four ways — no refinement, plain float32 IR,
// MPIR with double-word, MPIR with emulated float64 — and prints the
// reachable relative residual and simulated time of each.
//
// Usage: ./example_mpir_precision [rows=4000] [tiles=16]
#include <cstdio>
#include <cstdlib>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;

namespace {

struct Outcome {
  double residual;
  double seconds;
};

Outcome solveWith(const matrix::GeneratedMatrix& problem, std::size_t tiles,
                  const std::string& config) {
  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::Partitioner(ipu::Topology::singleIpu(tiles))
                    .layout(problem);
  solver::DistMatrix A(problem.matrix, std::move(layout));
  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");
  auto solver = solver::makeSolverFromString(config);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  Rng rng(2024);
  // The device stores float32 coefficients, so the reference system is the
  // float32-cast one (see DESIGN.md).
  std::vector<double> rhs(problem.matrix.rows());
  for (double& v : rhs) {
    v = static_cast<double>(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());

  Outcome out{};
  out.seconds = engine.elapsedSeconds();
  // Uniform metric for all configurations: the *true* relative residual of
  // the read-back solution, computed on the host in double precision.
  // (Recurrence residuals drift below the truth in float32 — the reason the
  // paper's non-MPIR curves stall even though the recurrence keeps falling.)
  std::vector<double> xHost;
  if (auto* mpir = dynamic_cast<solver::MpirSolver*>(solver.get());
      mpir && mpir->extendedSolution()) {
    xHost = A.readVector(engine, *mpir->extendedSolution());
  } else {
    xHost = A.readVector(engine, x);
  }
  matrix::CsrMatrix a32 = matrix::CsrMatrix(
      problem.matrix.rows(), problem.matrix.cols(),
      {problem.matrix.rowPtr().begin(), problem.matrix.rowPtr().end()},
      {problem.matrix.colIdx().begin(), problem.matrix.colIdx().end()},
      [&] {
        std::vector<double> v(problem.matrix.values().begin(),
                              problem.matrix.values().end());
        for (double& w : v) w = static_cast<double>(static_cast<float>(w));
        return v;
      }());
  std::vector<double> Ax(xHost.size());
  a32.spmv(xHost, Ax);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) {
    num += (rhs[i] - Ax[i]) * (rhs[i] - Ax[i]);
    den += rhs[i] * rhs[i];
  }
  out.residual = std::sqrt(num / den);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  auto problem = matrix::afShellLike(rows);
  std::printf("matrix: %s, %zu rows, %zu nnz, %zu simulated tiles\n\n",
              problem.name.c_str(), problem.matrix.rows(),
              problem.matrix.nnz(), tiles);

  const char* inner =
      R"("inner":{"type":"bicgstab","maxIterations":40,"tolerance":0,
                  "preconditioner":{"type":"ilu"}})";
  struct Config {
    const char* label;
    std::string json;
  };
  const Config configs[] = {
      {"PBiCGStab (no IR)",
       R"({"type":"bicgstab","maxIterations":400,"tolerance":1e-15,
           "preconditioner":{"type":"ilu"}})"},
      {"IR (float32)",
       std::string(R"({"type":"mpir","extendedType":"float32",)") +
           R"("maxRefinements":10,"tolerance":1e-15,)" + inner + "}"},
      {"MPIR double-word",
       std::string(R"({"type":"mpir","extendedType":"doubleword",)") +
           R"("maxRefinements":10,"tolerance":1e-13,)" + inner + "}"},
      {"MPIR emulated f64",
       std::string(R"({"type":"mpir","extendedType":"float64",)") +
           R"("maxRefinements":10,"tolerance":1e-15,)" + inner + "}"},
  };

  std::printf("%-22s %16s %14s\n", "configuration", "rel. residual",
              "sim. time");
  for (const Config& c : configs) {
    Outcome out = solveWith(problem, tiles, c.json);
    std::printf("%-22s %16.3e %11.2f ms\n", c.label, out.residual,
                1e3 * out.seconds);
  }
  std::printf(
      "\nNon-refined and float32-IR configurations stall near the single-"
      "\nprecision floor of this system; MPIR with double-word reaches"
      "\n~1e-12 and with emulated float64 ~1e-13 — the paper's Figures 9/10"
      "\nbehaviour (stall at 1e-6 vs 1e-13/1e-15 there).\n");
  return 0;
}
