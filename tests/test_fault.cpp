// Deterministic fault injection and solver self-healing.
//
// Covers: seeded fault plans are byte-for-byte reproducible; an engine with
// no (or an empty) plan is bit-identical to one without the framework; SRAM
// bit flips trigger CG's restart path; a stuck-at-zero rho surfaces as
// SolveStatus::Breakdown; a corrupted MPIR residual exchange rolls back to
// the last good iterate and re-converges — with the whole fault/repair
// timeline in the profile's fault log.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/engine.hpp"
#include "ipu/fault.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Expression;
using dsl::Tensor;

namespace {

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

struct FaultedSolve {
  std::vector<double> x;                       // read-back solution
  double trueRelResidual = -1.0;               // host-side double check
  std::vector<IterationRecord> history;
  SolveResult result;
  ipu::Profile profile;
  std::size_t haloTransfersPerExchange = 0;    // layout transfer count
};

bool logContains(const ipu::Profile& profile, const std::string& kind) {
  for (const ipu::FaultEvent& ev : profile.faultEvents) {
    if (ev.kind == kind) return true;
  }
  return false;
}

/// Emits and executes `solverJson` on A x = b for the given generated
/// matrix, optionally under a fault plan. The plan is reset() first so the
/// same object can drive repeated, identical runs.
FaultedSolve runFaultedSolve(const matrix::GeneratedMatrix& g,
                             std::size_t tiles, const std::string& solverJson,
                             ipu::FaultPlan* plan) {
  Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout =
      partition::Partitioner(ipu::Topology::singleIpu(tiles)).layout(g);
  FaultedSolve out;
  out.haloTransfersPerExchange = layout.transfers.size();
  DistMatrix A(g.matrix, std::move(layout));
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor b = A.makeVector(DType::Float32, "b");
  auto solver = makeSolverFromString(solverJson);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  if (plan != nullptr) {
    plan->reset();
    engine.setFaultPlan(plan);
  }
  A.upload(engine);
  auto bHost = randomVector(g.matrix.rows(), 42);
  for (double& v : bHost) v = static_cast<double>(static_cast<float>(v));
  A.writeVector(engine, b, bHost);
  engine.run(ctx.program());

  out.x = A.readVector(engine, x);
  std::vector<double> Ax(out.x.size());
  g.matrix.spmv(out.x, Ax);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) {
    num += (bHost[i] - Ax[i]) * (bHost[i] - Ax[i]);
    den += bHost[i] * bHost[i];
  }
  out.trueRelResidual = std::sqrt(num / den);
  out.history = solver->history();
  out.result = solver->result();
  out.profile = engine.profile();
  return out;
}

const char* kCgJson = R"({
  "type": "cg", "maxIterations": 500, "tolerance": 1e-6
})";

}  // namespace

TEST(FaultPlanJson, ParsesAllRuleKinds) {
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 7,
    "faults": [
      {"type": "bitflip", "tensor": "cg_resid", "bit": 30, "count": 1},
      {"type": "stuck-zero", "tensor": "bicg_rho"},
      {"type": "exchange-drop", "tensor": "halo", "count": 2},
      {"type": "exchange-corrupt", "tensor": "halo", "bit": 12},
      {"type": "stall", "tile": 3, "cycles": 10000, "superstep": 5}
    ]
  })");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_EQ(plan.injectedCount(), 0u);
}

TEST(FaultPlanJson, RejectsUnknownType) {
  EXPECT_THROW(ipu::FaultPlan::fromJsonText(
                   R"({"faults": [{"type": "gamma-ray"}]})"),
               ParseError);
}

TEST(FaultPlanJson, RejectsBadProbability) {
  EXPECT_THROW(
      ipu::FaultPlan::fromJsonText(
          R"({"faults": [{"type": "bitflip", "probability": 1.5}]})"),
      Error);
}

TEST(FaultPlanJson, RejectsZeroCycleStall) {
  EXPECT_THROW(ipu::FaultPlan::fromJsonText(
                   R"({"faults": [{"type": "stall", "tile": 0}]})"),
               Error);
}

TEST(FaultPlanJson, ParsesHardFaultKinds) {
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [
      {"type": "tile-dead", "tile": 2, "superstep": 30},
      {"type": "link-degraded", "tile": 5, "factor": 3.5, "superstep": 10},
      {"type": "sram-region-dead", "tensor": "cg_Ap", "elements": 4,
       "superstep": 8}
    ]
  })");
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.hasHardFaults());
  EXPECT_TRUE(plan.tileDead(2, 30));
  EXPECT_FALSE(plan.tileDead(2, 29));  // permanent *from* the trigger on
  EXPECT_TRUE(plan.tileDead(2, 1000));
  EXPECT_DOUBLE_EQ(plan.linkFactor(10), 3.5);
  EXPECT_DOUBLE_EQ(plan.linkFactor(9), 1.0);
}

// Strict validation: a hard-fault rule with a key that belongs to a
// different kind is rejected, and the error names both the offending key
// and the keys that *are* valid for that kind.
TEST(FaultPlanJson, RejectsForeignKeyOnHardFaultRule) {
  try {
    ipu::FaultPlan::fromJsonText(
        R"({"faults": [{"type": "tile-dead", "tile": 1, "factor": 2.0}]})");
    FAIL() << "expected a validation error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("factor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tile-dead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("superstep"), std::string::npos) << msg;  // valid set
  }
}

TEST(FaultPlanJson, RejectsTensorTargetOnLinkDegraded) {
  EXPECT_THROW(
      ipu::FaultPlan::fromJsonText(
          R"({"faults": [{"type": "link-degraded", "tile": 0, "factor": 2,
                          "tensor": "halo"}]})"),
      Error);
}

TEST(FaultPlanJson, ParsesPodFaultKinds) {
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [
      {"type": "ipu-dead", "ipu": 2, "superstep": 40},
      {"type": "ipu-link-dead", "from": 0, "to": 1, "superstep": 12},
      {"type": "ipu-link-degraded", "from": 1, "to": 2, "factor": 6.0,
       "superstep": 12}
    ]
  })");
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.hasHardFaults());
  // ipu-dead triggers on the compute clock and is permanent from there on.
  EXPECT_TRUE(plan.ipuDead(2, 40));
  EXPECT_FALSE(plan.ipuDead(2, 39));
  EXPECT_TRUE(plan.ipuDead(2, 1000));
  EXPECT_FALSE(plan.ipuDead(1, 40));  // only the named chip dies
  EXPECT_DOUBLE_EQ(plan.deadIpuCycles(2), 1e9);  // watchdog-scale default

  // Link kinds trigger on the exchange clock; the dead chip rides along on
  // the compute clock (re-routing must not relay through it).
  ipu::LinkFaults before = plan.linkFaults(/*exchangeIndex=*/11,
                                           /*computeIndex=*/39);
  EXPECT_TRUE(before.empty());
  ipu::LinkFaults after = plan.linkFaults(/*exchangeIndex=*/12,
                                          /*computeIndex=*/40);
  EXPECT_FALSE(after.empty());
  EXPECT_TRUE(after.isDead(0, 1));
  EXPECT_FALSE(after.isDead(1, 0));  // ordered pair: reverse link survives
  EXPECT_DOUBLE_EQ(after.factor(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(after.factor(2, 1), 1.0);
  EXPECT_TRUE(after.ipuDead(2));
  EXPECT_FALSE(after.ipuDead(0));
}

// The unknown-type rejection names the full valid set — including the
// pod-scale kinds — from the single shared constant.
TEST(FaultPlanJson, UnknownTypeNamesPodKindsInValidSet) {
  try {
    ipu::FaultPlan::fromJsonText(R"({"faults": [{"type": "gamma-ray"}]})");
    FAIL() << "expected a parse error";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gamma-ray"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ipu-dead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ipu-link-dead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ipu-link-degraded"), std::string::npos) << msg;
  }
}

// Strict per-kind key validation for the pod kinds: a foreign key is
// rejected with a message naming the offending key and the valid set.
TEST(FaultPlanJson, RejectsForeignKeyOnPodRule) {
  try {
    ipu::FaultPlan::fromJsonText(
        R"({"faults": [{"type": "ipu-dead", "ipu": 1, "tile": 3}]})");
    FAIL() << "expected a validation error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tile"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ipu-dead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("superstep"), std::string::npos) << msg;  // valid set
  }
  try {
    ipu::FaultPlan::fromJsonText(
        R"({"faults": [{"type": "ipu-link-dead", "from": 0, "to": 1,
                        "factor": 2.0}]})");
    FAIL() << "expected a validation error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    // Severing has no cost knob: "factor" belongs to ipu-link-degraded.
    EXPECT_NE(msg.find("factor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ipu-link-dead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from"), std::string::npos) << msg;  // valid set
  }
}

TEST(FaultPlanJson, RejectsMalformedPodRules) {
  // ipu-dead must name its chip.
  try {
    ipu::FaultPlan::fromJsonText(
        R"({"faults": [{"type": "ipu-dead", "superstep": 4}]})");
    FAIL() << "expected a validation error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'ipu'"), std::string::npos)
        << e.what();
  }
  // Link kinds need the full ordered pair...
  EXPECT_THROW(ipu::FaultPlan::fromJsonText(
                   R"({"faults": [{"type": "ipu-link-dead", "from": 0}]})"),
               Error);
  // ... with two distinct endpoints ...
  try {
    ipu::FaultPlan::fromJsonText(
        R"({"faults": [{"type": "ipu-link-degraded", "from": 1, "to": 1}]})");
    FAIL() << "expected a validation error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no link to itself"),
              std::string::npos)
        << e.what();
  }
  // ... and a degradation factor that actually degrades.
  EXPECT_THROW(
      ipu::FaultPlan::fromJsonText(
          R"({"faults": [{"type": "ipu-link-degraded", "from": 0, "to": 1,
                          "factor": 0.5}]})"),
      Error);
}

// An engine without a plan and one with an *empty* plan attached must be
// bit-identical: same cycles, same supersteps, same history, same solution.
TEST(FaultInjection, DetachedAndEmptyPlanAreBitIdentical) {
  auto g = matrix::poisson2d5(8, 8);
  FaultedSolve clean = runFaultedSolve(g, 4, kCgJson, nullptr);
  ipu::FaultPlan empty;
  FaultedSolve withPlan = runFaultedSolve(g, 4, kCgJson, &empty);

  EXPECT_EQ(clean.profile.computeCycles, withPlan.profile.computeCycles);
  EXPECT_EQ(clean.profile.exchangeCycles, withPlan.profile.exchangeCycles);
  EXPECT_EQ(clean.profile.syncCycles, withPlan.profile.syncCycles);
  EXPECT_EQ(clean.profile.computeSupersteps,
            withPlan.profile.computeSupersteps);
  EXPECT_EQ(clean.profile.exchangeSupersteps,
            withPlan.profile.exchangeSupersteps);
  EXPECT_TRUE(withPlan.profile.faultEvents.empty());
  ASSERT_EQ(clean.history.size(), withPlan.history.size());
  for (std::size_t i = 0; i < clean.history.size(); ++i) {
    EXPECT_EQ(clean.history[i].residual, withPlan.history[i].residual);
  }
  EXPECT_EQ(clean.x, withPlan.x);
}

// Two runs under the same seeded plan inject byte-identical faults: the
// fault logs compare equal event by event and the solves are bit-identical.
TEST(FaultInjection, SeededPlansAreReproducible) {
  auto g = matrix::poisson2d5(8, 8);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 123,
    "faults": [
      {"type": "bitflip", "tensor": "cg_", "probability": 0.02, "count": 3}
    ]
  })");
  FaultedSolve a = runFaultedSolve(g, 4, kCgJson, &plan);
  FaultedSolve b = runFaultedSolve(g, 4, kCgJson, &plan);

  ASSERT_FALSE(a.profile.faultEvents.empty());
  ASSERT_EQ(a.profile.faultEvents.size(), b.profile.faultEvents.size());
  for (std::size_t i = 0; i < a.profile.faultEvents.size(); ++i) {
    EXPECT_TRUE(a.profile.faultEvents[i] == b.profile.faultEvents[i])
        << "fault logs diverge at event " << i;
  }
  EXPECT_EQ(a.x, b.x);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].residual, b.history[i].residual);
  }
}

// A different seed draws different faults (with overwhelming probability for
// random-element flips on a 64-element vector).
TEST(FaultInjection, DifferentSeedDrawsDifferentFaults) {
  auto g = matrix::poisson2d5(8, 8);
  const char* ruleJson = R"({
    "seed": %SEED%,
    "faults": [
      {"type": "bitflip", "tensor": "cg_resid", "skip": 40, "count": 3}
    ]
  })";
  auto withSeed = [&](const std::string& seed) {
    std::string text(ruleJson);
    text.replace(text.find("%SEED%"), 6, seed);
    return ipu::FaultPlan::fromJsonText(text);
  };
  ipu::FaultPlan p1 = withSeed("1");
  ipu::FaultPlan p2 = withSeed("2");
  FaultedSolve a = runFaultedSolve(g, 4, kCgJson, &p1);
  FaultedSolve b = runFaultedSolve(g, 4, kCgJson, &p2);
  ASSERT_FALSE(a.profile.faultEvents.empty());
  ASSERT_FALSE(b.profile.faultEvents.empty());
  bool anyDifferent = a.profile.faultEvents.size() !=
                      b.profile.faultEvents.size();
  for (std::size_t i = 0;
       !anyDifferent &&
       i < a.profile.faultEvents.size(); ++i) {
    anyDifferent = !(a.profile.faultEvents[i] == b.profile.faultEvents[i]);
  }
  EXPECT_TRUE(anyDifferent);
}

// A stalled tile delays the BSP barrier: exactly the stall cycles join the
// critical path, and nothing else changes.
TEST(FaultInjection, StallChargesExtraCycles) {
  auto g = matrix::poisson2d5(8, 8);
  FaultedSolve clean = runFaultedSolve(g, 4, kCgJson, nullptr);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [{"type": "stall", "tile": 1, "cycles": 12345, "superstep": 3}]
  })");
  FaultedSolve stalled = runFaultedSolve(g, 4, kCgJson, &plan);

  EXPECT_TRUE(logContains(stalled.profile, "stall"));
  EXPECT_DOUBLE_EQ(stalled.profile.totalComputeCycles(),
                   clean.profile.totalComputeCycles() + 12345.0);
  EXPECT_EQ(clean.x, stalled.x);  // a stall delays, it does not corrupt
}

// Dropped transfers are still priced — the fabric spent the cycles even
// though the payload never landed.
TEST(FaultInjection, DroppedTransferIsStillPriced) {
  auto g = matrix::poisson2d5(8, 8);

  auto runSpmv = [&](ipu::FaultPlan* plan) {
    Context ctx(ipu::IpuTarget::testTarget(4));
    auto layout =
        partition::Partitioner(ipu::Topology::singleIpu(4)).layout(g);
    DistMatrix A(g.matrix, std::move(layout));
    Tensor v = A.makeVector(DType::Float32, "v");
    Tensor y = A.makeVector(DType::Float32, "y");
    A.spmv(y, v);
    graph::Engine engine(ctx.graph());
    if (plan != nullptr) {
      plan->reset();
      engine.setFaultPlan(plan);
    }
    A.upload(engine);
    A.writeVector(engine, v, randomVector(g.matrix.rows(), 7));
    engine.run(ctx.program());
    return std::make_pair(engine.profile(), A.readVector(engine, y));
  };

  auto [cleanProfile, cleanY] = runSpmv(nullptr);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [{"type": "exchange-drop", "tensor": "halo", "count": 1}]
  })");
  auto [dropProfile, dropY] = runSpmv(&plan);

  EXPECT_TRUE(logContains(dropProfile, "exchange-drop"));
  EXPECT_EQ(cleanProfile.exchangeCycles, dropProfile.exchangeCycles);
  EXPECT_EQ(cleanProfile.exchangedBytes, dropProfile.exchangedBytes);
  EXPECT_EQ(cleanProfile.exchangeInstructions,
            dropProfile.exchangeInstructions);
  EXPECT_NE(cleanY, dropY);  // the halo payload never arrived
}

// An SRAM bit flip in CG's residual vector mid-solve blows the recurrence
// up; the host guard catches it, restarts from the checkpoint, and the solve
// still converges — with both the fault and the recovery in the log.
TEST(SolverRecovery, CgRestartsAfterResidualBitFlip) {
  auto g = matrix::poisson2d5(8, 8);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 5,
    "faults": [
      {"type": "bitflip", "tensor": "cg_resid", "bit": 30,
       "skip": 100, "count": 1}
    ]
  })");
  FaultedSolve faulted = runFaultedSolve(g, 4, kCgJson, &plan);

  EXPECT_TRUE(logContains(faulted.profile, "bitflip"));
  EXPECT_TRUE(logContains(faulted.profile, "recovery:restart"));
  EXPECT_GE(faulted.result.restarts, 1u);
  EXPECT_EQ(faulted.result.status, SolveStatus::Converged);
  EXPECT_LT(faulted.trueRelResidual, 1e-4);
  for (const IterationRecord& rec : faulted.history) {
    EXPECT_TRUE(std::isfinite(rec.residual));
  }
}

// A stuck-at-zero cell under BiCGStab's rho scalar collapses the recurrence;
// with recovery off this must surface as SolveStatus::Breakdown — and the
// history must stay clean, not fill with NaN garbage.
TEST(SolverRecovery, BiCgStabRhoBreakdownIsTyped) {
  auto g = matrix::poisson2d5(8, 8);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [{"type": "stuck-zero", "tensor": "bicg_rho", "skip": 60}]
  })");
  const char* json = R"({
    "type": "bicgstab", "maxIterations": 300, "tolerance": 1e-6,
    "robustness": {"maxRestarts": 0}
  })";
  FaultedSolve faulted = runFaultedSolve(g, 4, json, &plan);

  EXPECT_EQ(faulted.result.status, SolveStatus::Breakdown);
  EXPECT_TRUE(logContains(faulted.profile, "stuck-zero"));
  for (const IterationRecord& rec : faulted.history) {
    EXPECT_TRUE(std::isfinite(rec.residual)) << "NaN leaked into history";
  }
}

// With the restart budget available, a corrupted residual is recovered
// from: BiCGStab re-anchors its shadow residual and converges. Unlike CG,
// BiCGStab fully rewrites its residual every iteration (rA = sA - omega*tA
// reads sA/tA, not rA), so a single flip can land in a dead window and be
// silently erased -- the rule therefore flips one bit per superstep across
// a whole iteration (~15 supersteps), guaranteeing at least one corruption
// is live when the host guard samples ||r||^2.
TEST(SolverRecovery, BiCgStabRestartsAfterTransientBreakdown) {
  auto g = matrix::poisson2d5(8, 8);
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "faults": [
      {"type": "bitflip", "tensor": "bicg_resid", "bit": 30,
       "skip": 120, "count": 15}
    ]
  })");
  const char* json = R"({
    "type": "bicgstab", "maxIterations": 300, "tolerance": 1e-6
  })";
  FaultedSolve faulted = runFaultedSolve(g, 4, json, &plan);

  EXPECT_TRUE(logContains(faulted.profile, "bitflip"));
  EXPECT_TRUE(logContains(faulted.profile, "recovery:restart"));
  EXPECT_EQ(faulted.result.status, SolveStatus::Converged);
  EXPECT_LT(faulted.trueRelResidual, 1e-4);
}

// Acceptance scenario: a seeded plan corrupts one MPIR residual exchange
// (the extended-precision halo transfer of refinement step 1). The guard
// sees the residual jump, rolls back to the last good iterate, re-refines,
// and the solve converges — fault and recovery both visible in the log.
TEST(SolverRecovery, MpirRollsBackCorruptedResidualExchange) {
  auto g = matrix::poisson2d5(8, 8);
  const char* json = R"({
    "type": "mpir", "extendedType": "doubleword",
    "maxRefinements": 20, "tolerance": 1e-10,
    "inner": {"type": "bicgstab", "maxIterations": 40, "tolerance": 0}
  })";

  // Discover the layout's transfers-per-exchange so the corruption lands on
  // refinement 1's residual exchange (refinement 0 starts from x = 0, where
  // a corrupted halo is indistinguishable from a legitimate first residual).
  FaultedSolve probe = runFaultedSolve(g, 4, json, nullptr);
  ASSERT_EQ(probe.result.status, SolveStatus::Converged);
  ASSERT_GT(probe.haloTransfersPerExchange, 0u);

  // The extended residual is exchanged through the DoubleWord halo buffer;
  // the float32 halo of the inner solver is a different tensor, so matching
  // "halo" + skipping one exchange's worth of transfers pins the corruption
  // to the extended path only if we match the right buffer. The DoubleWord
  // halo is created first (residualExt runs before the inner solver), so its
  // transfers are the first `haloTransfersPerExchange` matches per step.
  std::string planJson = R"({
    "seed": 9,
    "faults": [
      {"type": "exchange-corrupt", "tensor": "EXTHALO", "bit": 30,
       "skip": SKIP, "count": 1}
    ]
  })";

  // Find the DoubleWord halo tensor's exact name by emitting the program
  // once more and scanning the graph.
  std::string extHaloName;
  {
    Context ctx(ipu::IpuTarget::testTarget(4));
    auto layout =
        partition::Partitioner(ipu::Topology::singleIpu(4)).layout(g);
    DistMatrix A(g.matrix, std::move(layout));
    Tensor x = A.makeVector(DType::Float32, "x");
    Tensor b = A.makeVector(DType::Float32, "b");
    auto solver = makeSolverFromString(json);
    solver->apply(A, x, b);
    for (std::size_t i = 0; i < ctx.graph().numTensors(); ++i) {
      const auto& info = ctx.graph().tensor(static_cast<graph::TensorId>(i));
      if (info.dtype == DType::DoubleWord &&
          info.name.rfind("halo", 0) == 0) {
        extHaloName = info.name;
      }
    }
  }
  ASSERT_FALSE(extHaloName.empty()) << "no extended halo tensor found";
  planJson.replace(planJson.find("EXTHALO"), 7, extHaloName);
  planJson.replace(planJson.find("SKIP"), 4,
                   std::to_string(probe.haloTransfersPerExchange));
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(planJson);

  FaultedSolve faulted = runFaultedSolve(g, 4, json, &plan);
  EXPECT_TRUE(logContains(faulted.profile, "exchange-corrupt"));
  EXPECT_TRUE(logContains(faulted.profile, "recovery:rollback"));
  EXPECT_GE(faulted.result.rollbacks, 1u);
  EXPECT_EQ(faulted.result.status, SolveStatus::Converged);
  EXPECT_LE(faulted.result.finalResidual, 1e-10);
}

// The persistent-corruption case: every residual exchange is corrupted, the
// backoff budget runs out, and MPIR reports a typed failure instead of
// looping forever or returning garbage.
TEST(SolverRecovery, MpirExhaustsRollbackBudgetUnderPersistentFaults) {
  auto g = matrix::poisson2d5(8, 8);
  const char* json = R"({
    "type": "mpir", "extendedType": "doubleword",
    "maxRefinements": 20, "tolerance": 1e-10,
    "inner": {"type": "bicgstab", "maxIterations": 40, "tolerance": 0}
  })";
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(R"({
    "seed": 11,
    "faults": [{"type": "bitflip", "tensor": "mpir_x", "bit": 28,
                "probability": 0.5}]
  })");
  FaultedSolve faulted = runFaultedSolve(g, 4, json, &plan);
  EXPECT_NE(faulted.result.status, SolveStatus::NotRun);
  EXPECT_NE(faulted.result.status, SolveStatus::Running);
  // Persistent corruption either exhausts the budget (typed failure) or, if
  // every flip lands on already-insignificant bits, still converges. Either
  // way: no NaN in the refinement history.
  for (const IterationRecord& rec : faulted.history) {
    EXPECT_TRUE(std::isfinite(rec.residual));
  }
}

TEST(EngineGuards, ReadScalarFiniteThrowsOnNaN) {
  Context ctx(ipu::IpuTarget::testTarget(2));
  Tensor s = Tensor::scalar(DType::Float32, "probe");
  graph::Engine engine(ctx.graph());
  engine.writeScalar(s.id(), graph::Scalar(std::nanf("")));
  EXPECT_THROW(engine.readScalarFinite(s.id()), NumericalError);
  engine.writeScalar(s.id(), graph::Scalar(1.5f));
  EXPECT_FLOAT_EQ(engine.readScalarFinite(s.id()).asFloat(), 1.5f);
}

TEST(FaultLog, SerialisesToJsonAndText) {
  std::vector<ipu::FaultEvent> events;
  events.push_back({"bitflip", 12, "cg_resid", 3, 30, 0.0, "seu"});
  events.push_back({"stall", 5, "tile 3", 0, -1, 10000.0, ""});
  json::Value v = ipu::faultEventsToJson(events);
  ASSERT_TRUE(v.isArray());
  EXPECT_EQ(v.asArray().size(), 2u);
  std::string text = ipu::formatFaultEvents(events);
  EXPECT_NE(text.find("bitflip"), std::string::npos);
  EXPECT_NE(text.find("cg_resid"), std::string::npos);
  EXPECT_NE(text.find("stall"), std::string::npos);
}

// Every event kind the framework emits — transient injections, hard faults,
// watchdog verdicts and recovery actions — survives the JSON round trip
// field-for-field. This is what lets a chaos campaign's fault log be
// archived and diffed byte-for-byte.
TEST(FaultLog, RoundTripsThroughJsonExactly) {
  std::vector<ipu::FaultEvent> events;
  events.push_back({"bitflip", 12, "cg_resid", 3, 30, 0.0, "seu"});
  events.push_back({"exchange-drop", 19, "halo", 7, -1, 0.0, ""});
  events.push_back({"tile-dead", 56, "tile 0", 0, -1, 1e9, "hard fault"});
  events.push_back({"link-degraded", 23, "tile 5", 0, -1, 0.0, "x2.74"});
  events.push_back({"sram-region-dead", 10, "cg_Ap", 4, -1, 0.0, ""});
  events.push_back({"watchdog-trip", 57, "tile 0", 0, -1, 1e9, ""});
  events.push_back(
      {"health:tile-dead", 58, "tile 0", 0, -1, 0.0, "2 consecutive trips"});
  events.push_back({"recovery:blacklist", 58, "tile 0", 0, -1, 0.0,
                    "tile excluded from the partition"});
  events.push_back({"recovery:remap", 58, "session", 1, -1, 0.0,
                    "repartitioned over 7 surviving tiles"});
  events.push_back({"abft-mismatch", 44, "cg", 0, -1, 0.0, "rel 5.4e-3"});
  events.push_back({"ipu-dead", 40, "ipu 2", 0, -1, 1e9,
                    "permanent: every tile of the chip stops executing"});
  events.push_back({"ipu-link-dead", 12, "link 0->1", 0, -1, 0.0,
                    "permanent: link severed; traffic re-routes"});
  events.push_back({"ipu-link-degraded", 12, "link 1->2", 0, -1, 0.0,
                    "permanent: link cost x6.0"});
  events.push_back({"health:ipu-dead", 61, "ipu 2", 0, -1, 0.0,
                    "4/8 tiles confirmed dead — chip declared dead"});
  events.push_back({"recovery:ipu-blacklist", 61, "ipu 2", 0, -1, 0.0,
                    "chip excluded from the topology"});

  const std::vector<ipu::FaultEvent> back =
      ipu::faultEventsFromJson(ipu::faultEventsToJson(events));
  EXPECT_EQ(back, events);

  // And a second hop is a fixed point (dump → parse → dump is stable).
  const std::string once = ipu::faultEventsToJson(events).dump();
  const std::string twice =
      ipu::faultEventsToJson(ipu::faultEventsFromJson(json::parse(once)))
          .dump();
  EXPECT_EQ(once, twice);
}
