// The execution schedule: a tree of program steps.
//
// Poplar programs execute compute sets, copy tensors, and perform control
// flow (§II-A). TensorDSL's control-flow stack (§III-B) builds exactly this
// tree during symbolic execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/codelet.hpp"
#include "graph/tensor.hpp"

namespace graphene::graph {

struct Program;
using ProgramPtr = std::shared_ptr<Program>;

/// One blockwise copy: `count` contiguous elements starting at `srcBegin` in
/// `srcTile`'s region of `src`, delivered to every destination (broadcast
/// when there are several). Consistent intra-region ordering (§IV) is what
/// makes a single segment per region pair possible.
struct CopySegment {
  TensorId src = kInvalidTensor;
  std::size_t srcTile = 0;
  std::size_t srcBegin = 0;
  TensorId dst = kInvalidTensor;
  struct Destination {
    std::size_t tile = 0;
    std::size_t begin = 0;
  };
  std::vector<Destination> dsts;
  std::size_t count = 0;
};

struct Program {
  enum class Kind {
    Sequence,      // children in order
    Execute,       // one compute set (a BSP compute superstep)
    ExecuteFused,  // a run of compute supersteps with no exchange between
    Copy,          // an exchange superstep made of blockwise segments
    Repeat,        // fixed-count loop
    RepeatWhile,   // run cond-program, test condTensor, run body, repeat
    If,            // run cond-program once, branch on condTensor
    HostCall,      // CPU callback (progress reporting, host IO)
  };

  Kind kind = Kind::Sequence;

  // Sequence
  std::vector<ProgramPtr> children;

  // Execute
  ComputeSetId computeSet = 0;

  // ExecuteFused: the member compute sets, in program order. Produced by
  // graph::fuseSupersteps — semantically identical to running each member as
  // its own Execute step (each still commits its own superstep to the
  // profile); the engine may simulate a tile's work for all members
  // back-to-back because tiles only touch tile-local memory between
  // exchanges.
  std::vector<ComputeSetId> fusedSets;

  // Copy
  std::vector<CopySegment> copies;
  /// Counters ticked into Profile::metrics each time this copy executes
  /// (e.g. {"halo.bytes", wire bytes}). Usually empty.
  std::vector<std::pair<std::string, double>> copyMetrics;

  // Repeat
  std::size_t repeatCount = 0;
  ProgramPtr body;

  // RepeatWhile / If: `condProgram` computes the condition into `condTensor`
  // (a replicated scalar); element 0 decides.
  ProgramPtr condProgram;
  TensorId condTensor = kInvalidTensor;
  ProgramPtr thenBody;
  ProgramPtr elseBody;

  // HostCall
  std::function<void(Engine&)> hostFn;

  // -- factories ------------------------------------------------------------
  static ProgramPtr sequence() {
    auto p = std::make_shared<Program>();
    p->kind = Kind::Sequence;
    return p;
  }
  static ProgramPtr execute(ComputeSetId cs) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::Execute;
    p->computeSet = cs;
    return p;
  }
  static ProgramPtr executeFused(std::vector<ComputeSetId> sets) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::ExecuteFused;
    p->fusedSets = std::move(sets);
    return p;
  }
  static ProgramPtr copy(std::vector<CopySegment> segments) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::Copy;
    p->copies = std::move(segments);
    return p;
  }
  static ProgramPtr repeat(std::size_t n, ProgramPtr body) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::Repeat;
    p->repeatCount = n;
    p->body = std::move(body);
    return p;
  }
  static ProgramPtr repeatWhile(ProgramPtr condProgram, TensorId condTensor,
                                ProgramPtr body) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::RepeatWhile;
    p->condProgram = std::move(condProgram);
    p->condTensor = condTensor;
    p->body = std::move(body);
    return p;
  }
  static ProgramPtr branch(ProgramPtr condProgram, TensorId condTensor,
                           ProgramPtr thenBody, ProgramPtr elseBody) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::If;
    p->condProgram = std::move(condProgram);
    p->condTensor = condTensor;
    p->thenBody = std::move(thenBody);
    p->elseBody = std::move(elseBody);
    return p;
  }
  static ProgramPtr hostCall(std::function<void(Engine&)> fn) {
    auto p = std::make_shared<Program>();
    p->kind = Kind::HostCall;
    p->hostFn = std::move(fn);
    return p;
  }

  /// Number of program steps in the tree (schedule size metric; the paper
  /// §III-C reduces this via lazy materialisation).
  std::size_t stepCount() const {
    std::size_t n = 1;
    for (const auto& c : children) n += c ? c->stepCount() : 0;
    if (body) n += body->stepCount();
    if (condProgram) n += condProgram->stepCount();
    if (thenBody) n += thenBody->stepCount();
    if (elseBody) n += elseBody->stepCount();
    return n;
  }
};

}  // namespace graphene::graph
