// End-to-end solver tests on the simulated IPU: distributed SpMV, halo
// exchange, preconditioners, PBiCGStab and MPIR.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Expression;
using dsl::Tensor;

namespace {

DistMatrix makeDistMatrix(const matrix::GeneratedMatrix& g,
                          std::size_t tiles) {
  auto layout =
      partition::Partitioner(ipu::Topology::singleIpu(tiles)).layout(g);
  return DistMatrix(g.matrix, std::move(layout));
}

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Runs `solverJson` on A x = b; returns the true relative residual computed
/// on the host in double precision from the read-back solution.
struct SolveResult {
  double trueRelResidual;
  std::vector<IterationRecord> history;
  std::vector<IterationRecord> trueHistory;  // MPIR only
  double extRelResidual = -1.0;              // MPIR only (extended x)
};

SolveResult runSolve(const matrix::GeneratedMatrix& g, std::size_t tiles,
                     const std::string& solverJson, std::uint64_t seed = 42) {
  Context ctx(ipu::IpuTarget::testTarget(tiles));
  DistMatrix A = makeDistMatrix(g, tiles);
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor b = A.makeVector(DType::Float32, "b");
  auto solver = makeSolverFromString(solverJson);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  auto bHost = randomVector(g.matrix.rows(), seed);
  // The device stores float32 coefficients; the reference residual below
  // must be computed against the system the device actually solves.
  for (double& v : bHost) v = static_cast<double>(static_cast<float>(v));
  A.writeVector(engine, b, bHost);
  engine.run(ctx.program());

  SolveResult result{};
  std::vector<double> xHost;
  auto* mpir = dynamic_cast<MpirSolver*>(solver.get());
  if (mpir && mpir->extendedSolution()) {
    xHost = A.readVector(engine, *mpir->extendedSolution());
    result.trueHistory = mpir->trueResidualHistory();
  } else {
    xHost = A.readVector(engine, x);
  }
  std::vector<double> Ax(xHost.size());
  g.matrix.spmv(xHost, Ax);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) {
    num += (bHost[i] - Ax[i]) * (bHost[i] - Ax[i]);
    den += bHost[i] * bHost[i];
  }
  result.trueRelResidual = std::sqrt(num / den);
  result.history = solver->history();
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Distributed SpMV
// ---------------------------------------------------------------------------

struct SpmvCase {
  const char* name;
  matrix::GeneratedMatrix (*make)();
  std::size_t tiles;
};

matrix::GeneratedMatrix spmvPoisson2d() { return matrix::poisson2d5(13, 11); }
matrix::GeneratedMatrix spmvPoisson3d() { return matrix::poisson3d7(6, 5, 7); }
matrix::GeneratedMatrix spmvCircuit() { return matrix::g3CircuitLike(900); }
matrix::GeneratedMatrix spmvShell() { return matrix::afShellLike(700); }

class DistributedSpmv : public ::testing::TestWithParam<SpmvCase> {};

TEST_P(DistributedSpmv, MatchesHostCsrWithinFloat32) {
  const SpmvCase& c = GetParam();
  auto g = c.make();
  Context ctx(ipu::IpuTarget::testTarget(c.tiles));
  DistMatrix A = makeDistMatrix(g, c.tiles);
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor y = A.makeVector(DType::Float32, "y");
  A.spmv(y, x);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  auto xHost = randomVector(g.matrix.rows(), 7);
  A.writeVector(engine, x, xHost);
  engine.run(ctx.program());

  auto yGot = A.readVector(engine, y);
  std::vector<double> yRef(xHost.size());
  g.matrix.spmv(xHost, yRef);
  double scale = 0;
  for (double v : yRef) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < yRef.size(); ++i) {
    EXPECT_NEAR(yGot[i], yRef[i], 1e-5 * std::max(scale, 1.0))
        << c.name << " row " << i;
  }
  // Exchange happened: with >1 tile there must be halo traffic.
  if (c.tiles > 1) {
    EXPECT_GT(engine.profile().exchangedBytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistributedSpmv,
    ::testing::Values(SpmvCase{"poisson2d_4t", &spmvPoisson2d, 4},
                      SpmvCase{"poisson2d_1t", &spmvPoisson2d, 1},
                      SpmvCase{"poisson3d_8t", &spmvPoisson3d, 8},
                      SpmvCase{"circuit_6t", &spmvCircuit, 6},
                      SpmvCase{"shell_5t", &spmvShell, 5}),
    [](const ::testing::TestParamInfo<SpmvCase>& info) {
      return info.param.name;
    });

TEST(DistributedSpmv, ExtendedResidualIsExtendedPrecise) {
  // r = b − A·x in double-word must resolve differences far below float32.
  auto g = matrix::poisson2d5(8, 8);
  Context ctx(ipu::IpuTarget::testTarget(4));
  DistMatrix A = makeDistMatrix(g, 4);
  Tensor x = A.makeVector(DType::DoubleWord, "x");
  Tensor b = A.makeVector(DType::DoubleWord, "b");
  Tensor r = A.makeVector(DType::DoubleWord, "r");
  A.residualExt(r, b, x);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  auto xHost = randomVector(g.matrix.rows(), 3);
  // b = A x + 1e-9 — the residual must be ~1e-9, invisible to float32.
  std::vector<double> bHost(xHost.size());
  g.matrix.spmv(xHost, bHost);
  for (double& v : bHost) v += 1e-9;
  A.writeVector(engine, x, xHost);
  A.writeVector(engine, b, bHost);
  engine.run(ctx.program());

  auto rGot = A.readVector(engine, r);
  for (double v : rGot) {
    EXPECT_NEAR(v, 1e-9, 2e-10);
  }
}

// ---------------------------------------------------------------------------
// Solvers
// ---------------------------------------------------------------------------

TEST(Solvers, JacobiReducesResidual) {
  auto g = matrix::poisson2d5(10, 10);
  auto res = runSolve(g, 4, R"({"type":"jacobi","iterations":200})");
  EXPECT_LT(res.trueRelResidual, 0.5);  // Jacobi is slow but must progress
}

TEST(Solvers, GaussSeidelConvergesOnPoisson) {
  auto g = matrix::poisson2d5(12, 12);
  auto res = runSolve(
      g, 4, R"({"type":"gauss-seidel","sweeps":1,"tolerance":1e-5,
               "maxIterations":2000})");
  EXPECT_LT(res.trueRelResidual, 1e-4);
  EXPECT_FALSE(res.history.empty());
  // Residual history must be decreasing overall.
  EXPECT_LT(res.history.back().residual, res.history.front().residual);
}

TEST(Solvers, BiCgStabUnpreconditionedConverges) {
  auto g = matrix::poisson2d5(16, 16);
  auto res = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":400,"tolerance":1e-6})");
  EXPECT_LT(res.trueRelResidual, 1e-4);
}

TEST(Solvers, IluPreconditioningAcceleratesBiCgStab) {
  auto g = matrix::poisson2d5(16, 16);
  auto plain = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-5})");
  auto ilu = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-5,
                "preconditioner":{"type":"ilu"}})");
  EXPECT_LT(ilu.trueRelResidual, 1e-4);
  EXPECT_LT(ilu.history.size(), plain.history.size())
      << "ILU(0) must reduce the iteration count";
}

TEST(Solvers, DiluPreconditioningWorks) {
  auto g = matrix::poisson2d5(16, 16);
  auto plain = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-5})");
  auto dilu = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-5,
                "preconditioner":{"type":"dilu"}})");
  EXPECT_LT(dilu.trueRelResidual, 1e-4);
  EXPECT_LT(dilu.history.size(), plain.history.size());
}

TEST(Solvers, GaussSeidelAsPreconditioner) {
  auto g = matrix::poisson2d5(16, 16);
  auto gs = runSolve(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-5,
                "preconditioner":{"type":"gauss-seidel","sweeps":2}})");
  EXPECT_LT(gs.trueRelResidual, 1e-4);
}

TEST(Solvers, SingleTileMatchesMultiTileIterationCounts) {
  // The distributed solver must behave like a solver (not diverge) at
  // several decompositions; iteration counts may differ (block-Jacobi
  // preconditioning) but all must converge.
  auto g = matrix::poisson2d5(16, 16);
  for (std::size_t tiles : {1u, 2u, 8u}) {
    auto res = runSolve(
        g, tiles, R"({"type":"bicgstab","maxIterations":600,"tolerance":1e-5,
                     "preconditioner":{"type":"ilu"}})");
    EXPECT_LT(res.trueRelResidual, 1e-4) << tiles << " tiles";
  }
}

// ---------------------------------------------------------------------------
// MPIR (§V-B / §VI-C)
// ---------------------------------------------------------------------------

TEST(Mpir, DoubleWordReachesBeyondFloat32) {
  auto g = matrix::poisson2d5(12, 12);
  auto res = runSolve(
      g, 4,
      R"({"type":"mpir","extendedType":"doubleword","maxRefinements":25,
          "tolerance":1e-12,
          "inner":{"type":"bicgstab","maxIterations":25,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  // The extended solution must be far below the float32 stall (~1e-6).
  EXPECT_LT(res.trueRelResidual, 1e-10);
}

TEST(Mpir, SoftDoubleReachesEvenFurther) {
  auto g = matrix::poisson2d5(12, 12);
  auto res = runSolve(
      g, 4,
      R"({"type":"mpir","extendedType":"float64","maxRefinements":25,
          "tolerance":1e-14,
          "inner":{"type":"bicgstab","maxIterations":25,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  EXPECT_LT(res.trueRelResidual, 1e-12);
}

TEST(Mpir, PlainFloat32RefinementStalls) {
  // extendedType float32 = the paper's "IR" configuration: no precision
  // gain, the true residual stalls near single precision.
  auto g = matrix::poisson2d5(12, 12);
  auto res = runSolve(
      g, 4,
      R"({"type":"mpir","extendedType":"float32","maxRefinements":25,
          "tolerance":1e-12,
          "inner":{"type":"bicgstab","maxIterations":25,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  EXPECT_GT(res.trueRelResidual, 1e-9);  // cannot reach double-word depths
  EXPECT_LT(res.trueRelResidual, 1e-3);  // but float32 level is reached
}

TEST(Mpir, TrueResidualHistoryIsRecorded) {
  auto g = matrix::poisson2d5(10, 10);
  auto res = runSolve(
      g, 4,
      R"({"type":"mpir","extendedType":"doubleword","maxRefinements":8,
          "tolerance":1e-12,
          "inner":{"type":"bicgstab","maxIterations":20,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  ASSERT_GE(res.trueHistory.size(), 2u);
  EXPECT_LT(res.trueHistory.back().residual,
            res.trueHistory.front().residual);
}

// ---------------------------------------------------------------------------
// Config factory
// ---------------------------------------------------------------------------

TEST(SolverConfig, RejectsUnknownTypes) {
  EXPECT_THROW(makeSolverFromString(R"({"type":"qr"})"), Error);
  EXPECT_THROW(makeSolverFromString(R"({"noType":1})"), Error);
  EXPECT_THROW(makeSolverFromString(R"({"type":"mpir"})"), Error);  // no inner
  EXPECT_THROW(
      makeSolverFromString(
          R"({"type":"mpir","extendedType":"quad","inner":{"type":"ilu"}})"),
      Error);
}

TEST(SolverConfig, BuildsNestedHierarchies) {
  auto s = makeSolverFromString(
      R"({"type":"mpir","inner":
           {"type":"bicgstab","preconditioner":
             {"type":"bicgstab","maxIterations":3,"tolerance":0,
              "preconditioner":{"type":"jacobi"}}}})");
  EXPECT_EQ(s->name(), "mpir");
  auto* mpir = dynamic_cast<MpirSolver*>(s.get());
  ASSERT_NE(mpir, nullptr);
  EXPECT_EQ(mpir->inner()->name(), "bicgstab");
  auto* bicg = dynamic_cast<BiCgStabSolver*>(mpir->inner());
  ASSERT_NE(bicg, nullptr);
  EXPECT_EQ(bicg->preconditioner()->name(), "bicgstab");
}

TEST(DistMatrixIo, VectorRoundTripPreservesGlobalOrder) {
  auto g = matrix::poisson3d7(6, 6, 6);
  Context ctx(ipu::IpuTarget::testTarget(8));
  DistMatrix A = makeDistMatrix(g, 8);
  Tensor v = A.makeVector(DType::Float32, "v");
  graph::Engine engine(ctx.graph());
  std::vector<double> data(g.matrix.rows());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i) * 0.5;
  }
  A.writeVector(engine, v, data);
  auto back = A.readVector(engine, v);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], data[i]) << "row " << i;
  }
}

TEST(DistMatrixIo, ExtendedVectorRoundTripKeepsPrecision) {
  auto g = matrix::poisson2d5(8, 8);
  Context ctx(ipu::IpuTarget::testTarget(4));
  DistMatrix A = makeDistMatrix(g, 4);
  Tensor v = A.makeVector(DType::DoubleWord, "v");
  graph::Engine engine(ctx.graph());
  std::vector<double> data(g.matrix.rows());
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 1.0 + 1e-12 * i;
  A.writeVector(engine, v, data);
  auto back = A.readVector(engine, v);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i], data[i], 1e-14);
  }
}

TEST(DistMatrixIo, SpmvWithoutExchangeUsesStaleHalo) {
  // exchange=false must reuse whatever the halo buffer last held (the
  // compute-only mode of the scaling benches) — verified by running once
  // with exchange, changing x, and running without.
  auto g = matrix::poisson2d5(8, 8);
  Context ctx(ipu::IpuTarget::testTarget(4));
  DistMatrix A = makeDistMatrix(g, 4);
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor y1 = A.makeVector(DType::Float32, "y1");
  Tensor y2 = A.makeVector(DType::Float32, "y2");
  A.spmv(y1, x, /*exchange=*/true);
  A.spmv(y2, x, /*exchange=*/false);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  std::vector<double> xv(g.matrix.rows(), 1.0);
  A.writeVector(engine, x, xv);
  engine.run(ctx.program());
  // Same x for both: stale halo equals fresh halo here, results identical.
  EXPECT_EQ(A.readVector(engine, y1), A.readVector(engine, y2));
}

TEST(DistMatrixIo, RejectsWrongMappings) {
  auto g = matrix::poisson2d5(6, 6);
  Context ctx(ipu::IpuTarget::testTarget(4));
  DistMatrix A = makeDistMatrix(g, 4);
  // One element short: a genuinely different mapping from the owned one.
  Tensor wrong(DType::Float32, g.matrix.rows() - 1, "wrong");
  graph::Engine engine(ctx.graph());
  std::vector<double> data(g.matrix.rows(), 0.0);
  EXPECT_THROW(A.haloExchange(wrong), Error);
  EXPECT_THROW(A.writeVector(engine, wrong, data), Error);
  std::vector<double> tooShort(3);
  Tensor ok = A.makeVector(DType::Float32, "ok");
  EXPECT_THROW(A.writeVector(engine, ok, tooShort), Error);
}

TEST(DistMatrixIo, HaloSplitSeparatesOwnedFromHaloColumns) {
  auto g = matrix::poisson2d5(8, 8);
  Context ctx(ipu::IpuTarget::testTarget(4));
  DistMatrix A = makeDistMatrix(g, 4);
  // Structural invariant behind the two-run SpMV codelet: within every row,
  // all owned-column entries precede all halo entries.
  for (const auto& local : A.tileLocal()) {
    for (std::size_t i = 0; i < local.numOwned; ++i) {
      bool seenHalo = false;
      for (std::size_t k = local.rowPtr[i]; k < local.rowPtr[i + 1]; ++k) {
        bool isHalo =
            static_cast<std::size_t>(local.col[k]) >= local.numOwned;
        if (seenHalo) {
          EXPECT_TRUE(isHalo) << "row " << i;
        }
        seenHalo |= isHalo;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structured solve outcomes (SolveStatus / SolveResult)
// ---------------------------------------------------------------------------

namespace {

/// Like runSolve, but keeps the solver alive so result() can be inspected.
std::unique_ptr<Solver> solveAndKeep(const matrix::GeneratedMatrix& g,
                                     std::size_t tiles,
                                     const std::string& solverJson,
                                     bool execute = true) {
  Context ctx(ipu::IpuTarget::testTarget(tiles));
  DistMatrix A = makeDistMatrix(g, tiles);
  Tensor x = A.makeVector(DType::Float32, "x");
  Tensor b = A.makeVector(DType::Float32, "b");
  auto solver = makeSolverFromString(solverJson);
  solver->apply(A, x, b);
  if (!execute) return solver;
  graph::Engine engine(ctx.graph());
  A.upload(engine);
  A.writeVector(engine, b, randomVector(g.matrix.rows(), 42));
  engine.run(ctx.program());
  return solver;
}

}  // namespace

TEST(SolveStatusReporting, NotRunBeforeExecution) {
  auto g = matrix::poisson2d5(8, 8);
  auto solver = solveAndKeep(
      g, 4, R"({"type":"cg","maxIterations":50,"tolerance":1e-6})",
      /*execute=*/false);
  EXPECT_EQ(solver->result().status, SolveStatus::NotRun);
}

TEST(SolveStatusReporting, CgReportsConverged) {
  auto g = matrix::poisson2d5(8, 8);
  auto solver = solveAndKeep(
      g, 4, R"({"type":"cg","maxIterations":500,"tolerance":1e-6})");
  const solver::SolveResult& r = solver->result();
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GE(r.finalResidual, 0.0);
  EXPECT_LE(r.finalResidual, 1e-6);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_EQ(std::string(toString(r.status)), "converged");
}

TEST(SolveStatusReporting, BiCgStabReportsConverged) {
  auto g = matrix::poisson2d5(8, 8);
  auto solver = solveAndKeep(
      g, 4, R"({"type":"bicgstab","maxIterations":500,"tolerance":1e-6})");
  EXPECT_EQ(solver->result().status, SolveStatus::Converged);
}

TEST(SolveStatusReporting, ExhaustedBudgetReportsMaxIterations) {
  auto g = matrix::poisson2d5(12, 12);
  auto solver = solveAndKeep(
      g, 4, R"({"type":"cg","maxIterations":3,"tolerance":1e-12})");
  const solver::SolveResult& r = solver->result();
  EXPECT_EQ(r.status, SolveStatus::MaxIterations);
  EXPECT_EQ(r.iterations, 3u);
  EXPECT_GT(r.finalResidual, 1e-12);
}

TEST(SolveStatusReporting, MpirReportsConverged) {
  auto g = matrix::poisson2d5(10, 10);
  auto solver = solveAndKeep(
      g, 4,
      R"({"type":"mpir","extendedType":"doubleword","maxRefinements":25,
          "tolerance":1e-11,
          "inner":{"type":"bicgstab","maxIterations":25,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  const solver::SolveResult& r = solver->result();
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_LE(r.finalResidual, 1e-11);
  EXPECT_EQ(r.rollbacks, 0u);  // clean run: no recovery taken
}

TEST(SolveStatusReporting, RobustnessOptionsParseFromJson) {
  RobustnessOptions defaults = parseRobustness(json::parse(R"({})"));
  EXPECT_EQ(defaults.maxRestarts, 2u);
  EXPECT_EQ(defaults.checkpointEvery, 8u);
  EXPECT_EQ(defaults.maxRollbacks, 3u);

  RobustnessOptions custom = parseRobustness(json::parse(R"({
    "robustness": {"maxRestarts": 5, "checkpointEvery": 4,
                   "maxRollbacks": 7, "divergenceFactor": 1e6,
                   "breakdownTolerance": 1e-20,
                   "residualGrowthFactor": 50.0}
  })"));
  EXPECT_EQ(custom.maxRestarts, 5u);
  EXPECT_EQ(custom.checkpointEvery, 4u);
  EXPECT_EQ(custom.maxRollbacks, 7u);
  EXPECT_DOUBLE_EQ(custom.divergenceFactor, 1e6);
  EXPECT_DOUBLE_EQ(custom.breakdownTolerance, 1e-20);
  EXPECT_DOUBLE_EQ(custom.residualGrowthFactor, 50.0);

  EXPECT_THROW(parseRobustness(json::parse(
                   R"({"robustness": {"residualGrowthFactor": 0.5}})")),
               Error);
}
