#include "partition/halo.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace graphene::partition {

DistributedLayout buildLayout(const matrix::CsrMatrix& a,
                              std::vector<std::size_t> rowToTile,
                              std::size_t numTiles) {
  const std::size_t n = a.rows();
  GRAPHENE_CHECK(a.rows() == a.cols(), "layout needs a square matrix");
  GRAPHENE_CHECK(rowToTile.size() == n, "rowToTile size mismatch");
  for (std::size_t t : rowToTile) {
    GRAPHENE_CHECK(t < numTiles, "row assigned to invalid tile");
  }

  DistributedLayout layout;
  layout.numTiles = numTiles;
  layout.rowToTile = std::move(rowToTile);

  // Step 1 (paper): identify separator cells and the neighbouring tiles
  // requiring their values. Consumers of column c are owners of rows that
  // reference c — a transpose-direction pass.
  std::vector<std::vector<std::size_t>> consumers(n);
  {
    auto rowPtr = a.rowPtr();
    auto col = a.colIdx();
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t rt = layout.rowToTile[r];
      for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
        const std::size_t c = static_cast<std::size_t>(col[k]);
        if (layout.rowToTile[c] != rt) consumers[c].push_back(rt);
      }
    }
    for (auto& v : consumers) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  }

  // Step 2: group separator cells with identical consumer sets into regions.
  // Keyed by (owner, consumer set); cells are appended in ascending global
  // order, which establishes the consistent ordering (step 4) for free.
  std::map<std::pair<std::size_t, std::vector<std::size_t>>, std::size_t>
      regionIndex;
  for (std::size_t r = 0; r < n; ++r) {
    if (consumers[r].empty()) continue;
    auto key = std::make_pair(layout.rowToTile[r], consumers[r]);
    auto [it, inserted] = regionIndex.try_emplace(key, layout.regions.size());
    if (inserted) {
      Region region;
      region.id = layout.regions.size();
      region.ownerTile = layout.rowToTile[r];
      region.consumerTiles = consumers[r];
      layout.regions.push_back(std::move(region));
    }
    layout.regions[it->second].cells.push_back(r);
  }

  // Step 3+4: per-tile layouts. Owned part: interior cells ascending, then
  // this tile's separator regions (by region id). Halo part: consumed
  // regions (by region id), each keeping the owner's cell order.
  layout.tiles.resize(numTiles);
  layout.globalToLocalOwned.assign(n, 0);
  std::vector<std::vector<std::size_t>> ownedSeparatorRegions(numTiles);
  std::vector<std::vector<std::size_t>> consumedRegions(numTiles);
  for (const Region& region : layout.regions) {
    ownedSeparatorRegions[region.ownerTile].push_back(region.id);
    for (std::size_t t : region.consumerTiles) {
      consumedRegions[t].push_back(region.id);
    }
  }

  for (std::size_t t = 0; t < numTiles; ++t) {
    TileLayout& tl = layout.tiles[t];
    tl.tile = t;
    // Interior cells ascending.
    for (std::size_t r = 0; r < n; ++r) {
      if (layout.rowToTile[r] == t && consumers[r].empty()) {
        layout.globalToLocalOwned[r] = tl.localToGlobal.size();
        tl.localToGlobal.push_back(r);
      }
    }
    tl.numInterior = tl.localToGlobal.size();
    // Separator regions.
    for (std::size_t rid : ownedSeparatorRegions[t]) {
      const Region& region = layout.regions[rid];
      tl.separatorRegions.push_back({rid, tl.localToGlobal.size()});
      for (std::size_t r : region.cells) {
        layout.globalToLocalOwned[r] = tl.localToGlobal.size();
        tl.localToGlobal.push_back(r);
      }
    }
    tl.numOwned = tl.localToGlobal.size();
    // Halo regions, same cell order as the source separator region.
    for (std::size_t rid : consumedRegions[t]) {
      const Region& region = layout.regions[rid];
      tl.haloRegions.push_back({rid, tl.localToGlobal.size()});
      for (std::size_t r : region.cells) tl.localToGlobal.push_back(r);
    }
    tl.numHalo = tl.localToGlobal.size() - tl.numOwned;
  }

  // Blockwise exchange plan: one broadcast per region.
  layout.transfers.reserve(layout.regions.size());
  for (const Region& region : layout.regions) {
    HaloTransfer tr;
    tr.regionId = region.id;
    tr.srcTile = region.ownerTile;
    tr.count = region.cells.size();
    // Source offset: find the region in the owner's separator list.
    for (const TileLayout::RegionRef& ref :
         layout.tiles[region.ownerTile].separatorRegions) {
      if (ref.regionId == region.id) {
        tr.srcLocalOffset = ref.localOffset;
        break;
      }
    }
    for (std::size_t t : region.consumerTiles) {
      for (const TileLayout::RegionRef& ref : layout.tiles[t].haloRegions) {
        if (ref.regionId == region.id) {
          tr.dsts.push_back({t, ref.localOffset});
          break;
        }
      }
    }
    GRAPHENE_CHECK(tr.dsts.size() == region.consumerTiles.size(),
                   "halo region missing on a consumer tile");
    layout.transfers.push_back(std::move(tr));
  }

  return layout;
}

std::vector<std::size_t> DistributedLayout::reorderingPermutation() const {
  std::vector<std::size_t> perm(rowToTile.size());
  std::size_t next = 0;
  for (const TileLayout& tl : tiles) {
    for (std::size_t i = 0; i < tl.numOwned; ++i) {
      perm[tl.localToGlobal[i]] = next++;
    }
  }
  GRAPHENE_CHECK(next == rowToTile.size(), "permutation incomplete");
  return perm;
}

CellKind DistributedLayout::kindOf(std::size_t globalRow,
                                   std::size_t onTile) const {
  GRAPHENE_CHECK(globalRow < rowToTile.size(), "row out of range");
  const std::size_t owner = rowToTile[globalRow];
  if (owner != onTile) return CellKind::Halo;
  const TileLayout& tl = tiles[onTile];
  const std::size_t local = globalToLocalOwned[globalRow];
  return local < tl.numInterior ? CellKind::Interior : CellKind::Separator;
}

std::vector<HaloTransfer> naivePerCellTransfers(
    const DistributedLayout& layout) {
  std::vector<HaloTransfer> out;
  out.reserve(layout.numSeparatorCells());
  for (const HaloTransfer& tr : layout.transfers) {
    for (std::size_t i = 0; i < tr.count; ++i) {
      HaloTransfer cell;
      cell.regionId = tr.regionId;
      cell.srcTile = tr.srcTile;
      cell.srcLocalOffset = tr.srcLocalOffset + i;
      cell.count = 1;
      for (const HaloTransfer::Dst& d : tr.dsts) {
        cell.dsts.push_back({d.tile, d.localOffset + i});
      }
      out.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace graphene::partition
