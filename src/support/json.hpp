// Minimal, self-contained JSON parser and writer.
//
// The solver hierarchy in this framework is configured through JSON documents
// (paper §V: "The solver hierarchy and associated parameters are easily
// configured through a JSON file"). No third-party JSON dependency is
// available offline, so we implement the subset we need: objects, arrays,
// strings, numbers, booleans and null, with full escape handling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace graphene::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys ordered, which gives deterministic serialisation.
using Object = std::map<std::string, Value>;

/// A dynamically typed JSON value.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::size_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool isBool() const { return std::holds_alternative<bool>(data_); }
  bool isNumber() const { return std::holds_alternative<double>(data_); }
  bool isString() const { return std::holds_alternative<std::string>(data_); }
  bool isArray() const { return std::holds_alternative<Array>(data_); }
  bool isObject() const { return std::holds_alternative<Object>(data_); }

  bool asBool() const;
  double asNumber() const;
  std::int64_t asInt() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;
  Array& asArray();
  Object& asObject();

  /// Object field access; throws if this is not an object or the key is
  /// missing.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Object field access with a default when the key is absent.
  bool getOr(const std::string& key, bool def) const;
  double getOr(const std::string& key, double def) const;
  std::int64_t getOr(const std::string& key, std::int64_t def) const;
  int getOr(const std::string& key, int def) const;
  std::string getOr(const std::string& key, const std::string& def) const;

  /// Serialises this value. `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document. Throws graphene::ParseError on malformed
/// input (including trailing garbage).
Value parse(std::string_view text);

}  // namespace graphene::json
