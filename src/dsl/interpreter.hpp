// Interpreter for traced CodeDSL codelets.
//
// Executes the statement IR against a vertex's tensor slices with genuine
// arithmetic (float32 / SoftDouble / double-word), while accumulating worker
// cycles under the IPU cost model — including the two-pipeline dual issue
// (max(fp, mem) per statement) and the iputhreading worker model for ParFor.
#pragma once

#include "dsl/codedsl_ir.hpp"
#include "graph/codelet.hpp"
#include "ipu/cost_model.hpp"

namespace graphene::dsl {

/// Executes `ir` against `ctx`; returns the modelled vertex cost.
graph::VertexCost interpretCodelet(const CodeletIR& ir,
                                   const ipu::CostModel& cost,
                                   std::size_t numWorkers,
                                   graph::VertexContext& ctx);

/// Evaluates a binary operation on dynamically typed scalars with numeric
/// promotion. Exposed for unit tests.
Scalar evalBinaryScalar(BinOp op, const Scalar& lhs, const Scalar& rhs);

/// Evaluates a unary operation. Exposed for unit tests.
Scalar evalUnaryScalar(UnOp op, const Scalar& operand);

}  // namespace graphene::dsl
