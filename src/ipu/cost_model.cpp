#include "ipu/cost_model.hpp"

#include "support/error.hpp"

namespace graphene::ipu {

const char* dtypeName(DType t) {
  switch (t) {
    case DType::Bool: return "bool";
    case DType::Int32: return "int32";
    case DType::Float32: return "float32";
    case DType::Float64: return "float64";
    case DType::DoubleWord: return "doubleword";
  }
  return "?";
}

const char* opName(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Neg: return "neg";
    case Op::Abs: return "abs";
    case Op::Sqrt: return "sqrt";
    case Op::Compare: return "compare";
    case Op::Logic: return "logic";
    case Op::IntArith: return "intarith";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::Branch: return "branch";
    case Op::Cast: return "cast";
  }
  return "?";
}

namespace {

/// Table I cycle counts for the extended-precision types, Joldes policy.
double doubleWordCycles(Op op, twofloat::Policy policy) {
  // Accurate (Joldes): paper Table I. Fast (Lange-Rump): priced from the
  // flop ratio of the two arithmetic families at 6 cycles/flop plus the same
  // fixed overhead share.
  const auto acc = twofloat::flopCounts(twofloat::Policy::Accurate);
  const auto fast = twofloat::flopCounts(twofloat::Policy::Fast);
  auto scale = [&](double accurateCycles, int accFlops, int fastFlops) {
    if (policy == twofloat::Policy::Accurate) return accurateCycles;
    return accurateCycles * static_cast<double>(fastFlops) /
           static_cast<double>(accFlops);
  };
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Neg:
      return op == Op::Neg ? 12.0
                           : scale(132.0, acc.addDwDw, fast.addDwDw);
    case Op::Mul: return scale(162.0, acc.mulDwDw, fast.mulDwDw);
    case Op::Div: return scale(240.0, acc.divDwDw, fast.divDwDw);
    case Op::Abs: return 12.0;
    case Op::Sqrt: return 360.0;  // ~sqrt + one refinement step
    case Op::Compare: return 12.0;
    case Op::Cast: return 12.0;
    default: break;
  }
  GRAPHENE_UNREACHABLE("unpriced double-word op");
}

/// Table I cycle counts for software-emulated binary64 (compiler-rt style).
double float64Cycles(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Sub: return 1080.0;
    case Op::Mul: return 1260.0;
    case Op::Div: return 2520.0;
    case Op::Neg: return 12.0;   // sign-bit flip
    case Op::Abs: return 12.0;   // sign-bit clear
    case Op::Sqrt: return 9000.0;
    case Op::Compare: return 60.0;
    case Op::Cast: return 60.0;
    default: break;
  }
  GRAPHENE_UNREACHABLE("unpriced float64 op");
}

}  // namespace

double CostModel::workerCycles(Op op, DType t) const {
  switch (op) {
    case Op::Load:
    case Op::Store:
      // The tile's 64-bit load/store paths move two 32-bit words per issue
      // slot (the 2-element vector accesses of §II-C); 8-byte types need a
      // full slot.
      return sizeOf(t) > 4 ? issue : issue / 2;
    case Op::Branch:
      // Single-cycle branch latency (§II-C), but it still occupies the
      // worker's issue slot.
      return issue;
    case Op::IntArith:
    case Op::Logic:
      return issue;
    default:
      break;
  }
  switch (t) {
    case DType::Bool:
    case DType::Int32:
      return issue;
    case DType::Float32:
      // All priced float32 ops are single instructions (Table I); sqrt and
      // div are not vectorisable but still pipelined scalar ops.
      return op == Op::Sqrt ? 6 * issue : issue;
    case DType::DoubleWord:
      return doubleWordCycles(op, dwPolicy);
    case DType::Float64:
      return float64Cycles(op);
  }
  GRAPHENE_UNREACHABLE("unpriced op/type combination");
}

Lane CostModel::lane(Op op) {
  switch (op) {
    case Op::Load:
    case Op::Store:
    case Op::IntArith:
    case Op::Logic:
      return Lane::Mem;
    case Op::Branch:
      return Lane::Ctrl;
    default:
      return Lane::Fp;
  }
}

}  // namespace graphene::ipu
