// Ablation (§III-D): Joldes et al. (accurate) vs Lange & Rump (fast)
// double-word arithmetic — speed vs precision. The paper chooses the slower
// Joldes algorithms for MPIR because "numerical stability [is] crucial for
// overall solver performance".
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ipu/cost_model.hpp"
#include "twofloat/twofloat.hpp"

using namespace graphene;
namespace tf = graphene::twofloat;

int main() {
  bench::printHeader("Ablation — Joldes vs Lange-Rump double-word",
                     "fast arithmetic saves cycles but loses digits under "
                     "accumulation (paper §III-D)");

  // Cycle costs from the cost model under both policies.
  ipu::CostModel accurate;
  accurate.dwPolicy = tf::Policy::Accurate;
  ipu::CostModel fast;
  fast.dwPolicy = tf::Policy::Fast;
  using ipu::DType;
  using ipu::Op;
  TextTable cycles({"op", "Joldes (cycles)", "Lange-Rump (cycles)", "saving"});
  for (auto [name, op] : {std::pair{"add", Op::Add}, {"mul", Op::Mul},
                          {"div", Op::Div}}) {
    double a = accurate.workerCycles(op, DType::DoubleWord);
    double f = fast.workerCycles(op, DType::DoubleWord);
    cycles.addRow({name, formatSig(a, 4), formatSig(f, 4),
                   formatSig(100 * (1 - f / a), 3) + "%"});
  }
  std::printf("%s\n", cycles.render().c_str());

  // Precision under long alternating-sign accumulation (the IR residual
  // pattern): accurate keeps ~double-word digits, fast loses digits.
  Rng rng(31337);
  long double reference = 0;
  tf::Float2 acc{};
  tf::FastFloat2 fastAcc{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.uniform(-1.0, 1.0);
    reference += static_cast<long double>(v);
    acc = acc + tf::Float2::fromWide(v);
    fastAcc = fastAcc + tf::FastFloat2::fromWide(v);
  }
  double accErr = std::abs(acc.toWide() - static_cast<double>(reference));
  double fastErr =
      std::abs(fastAcc.toWide() - static_cast<double>(reference));
  double accDigits = -std::log10(accErr + 1e-300);
  double fastDigits = -std::log10(fastErr + 1e-300);
  std::printf("accumulation of %d alternating-sign terms:\n", n);
  std::printf("  Joldes     abs error %.3e (%.1f digits)\n", accErr,
              accDigits);
  std::printf("  Lange-Rump abs error %.3e (%.1f digits)\n", fastErr,
              fastDigits);

  bool fasterButLooser = fast.workerCycles(Op::Add, DType::DoubleWord) <
                             accurate.workerCycles(Op::Add, DType::DoubleWord) &&
                         accErr <= fastErr;
  std::printf("\ncheck: fast policy is cheaper per op but never more "
              "accurate: %s\n",
              fasterButLooser ? "PASS" : "FAIL");
  return fasterButLooser ? 0 : 1;
}
