// Persistent host thread pool for data-parallel loops over independent work
// items (the engine uses it to run one simulated tile per item).
//
// Design constraints, in order: (1) determinism — the pool only *schedules*;
// callers must guarantee items touch disjoint state, so results cannot depend
// on interleaving; (2) no per-dispatch allocation — threads are spawned once
// and parked on a condition variable between jobs; (3) exceptions thrown by
// items are captured and rethrown on the calling thread (first one wins), so
// error behaviour matches a serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphene::support {

class ThreadPool {
 public:
  /// A pool of `numThreads` total execution lanes. The calling thread
  /// participates in every parallelFor, so only numThreads-1 workers are
  /// spawned; numThreads <= 1 spawns nothing and parallelFor degenerates to
  /// a plain loop.
  explicit ThreadPool(std::size_t numThreads) {
    const std::size_t helpers = numThreads > 1 ? numThreads - 1 : 0;
    workers_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t numThreads() const { return workers_.size() + 1; }

  /// Runs fn(0..n-1), each index exactly once, across the pool. Blocks until
  /// all indices are done. Indices are claimed dynamically (atomic counter),
  /// so the assignment of index to thread is nondeterministic — items must
  /// not share mutable state. Not reentrant: do not call parallelFor from
  /// inside an item.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker can linger in drainJob briefly after the previous job's last
    // item finished; publishing a new job under it would let it claim stale
    // indices. Wait for full quiescence first (normally instant).
    idle_.wait(lock, [this] { return active_ == 0; });
    fn_ = &fn;
    limit_ = n;
    next_.store(0, std::memory_order_relaxed);
    pending_.store(n, std::memory_order_relaxed);
    ++generation_;
    lock.unlock();
    wake_.notify_all();
    drainJob();
    lock.lock();
    done_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    fn_ = nullptr;
    if (firstError_) {
      std::exception_ptr e = firstError_;
      firstError_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        ++active_;
      }
      drainJob();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_ == 0) idle_.notify_one();
      }
    }
  }

  /// Claims indices until the job is exhausted. Runs on workers and on the
  /// thread that called parallelFor.
  void drainJob() {
    const std::function<void(std::size_t)>* fn = fn_;
    const std::size_t limit = limit_;
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_) firstError_ = std::current_exception();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;  // workers: new job or shutdown
  std::condition_variable done_;  // caller: all items of the job finished
  std::condition_variable idle_;  // caller: all workers parked again
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;

  // Current job (fn_/limit_ published under mutex_ together with
  // generation_; workers read them only after observing the new generation
  // under the same mutex).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t limit_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> pending_{0};
  std::exception_ptr firstError_;
};

}  // namespace graphene::support
