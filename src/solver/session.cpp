// SolveSession implementation: owns the Context → layout → DistMatrix →
// Solver → Engine choreography so callers don't have to.
#include "solver/session.hpp"

#include "dsl/context.hpp"
#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partition.hpp"
#include "support/error.hpp"

namespace graphene::solver {

SolveSession::SolveSession(SessionOptions options)
    : options_(options), trace_(std::max<std::size_t>(options.traceCapacity, 1)) {
  GRAPHENE_CHECK(options_.tiles > 0, "SessionOptions.tiles must be positive");
}

SolveSession::~SolveSession() = default;

SolveSession& SolveSession::load(const matrix::GeneratedMatrix& m) {
  GRAPHENE_CHECK(!A_, "SolveSession::load() may only be called once");
  ctx_ = std::make_unique<dsl::Context>(
      ipu::IpuTarget::testTarget(options_.tiles));
  auto layout = partition::buildLayout(
      m.matrix, partition::partitionAuto(m, options_.tiles), options_.tiles);
  A_ = std::make_unique<DistMatrix>(m.matrix, std::move(layout));
  return *this;
}

SolveSession& SolveSession::load(const matrix::CsrMatrix& m) {
  matrix::GeneratedMatrix g;  // no geometry hints → BFS partitioning
  g.matrix = m;
  g.name = "csr";
  return load(g);
}

SolveSession& SolveSession::configure(const json::Value& solverConfig) {
  GRAPHENE_CHECK(!emitted_,
                 "SolveSession::configure() after solve(): the emitted "
                 "program is tied to the previous solver");
  solver_ = makeSolver(solverConfig);
  return *this;
}

SolveSession& SolveSession::configure(const std::string& solverJsonText) {
  return configure(json::parse(solverJsonText));
}

SolveSession& SolveSession::withFaultPlan(const json::Value& planConfig) {
  faultPlan_ = ipu::FaultPlan::fromJson(planConfig);
  return *this;
}

SolveSession::Result SolveSession::solve(std::span<const double> rhs) {
  GRAPHENE_CHECK(A_, "SolveSession::solve() before load(): no matrix");
  GRAPHENE_CHECK(solver_,
                 "SolveSession::solve() before configure(): no solver");
  GRAPHENE_CHECK(rhs.size() == A_->rows(), "rhs has ", rhs.size(),
                 " entries but the matrix has ", A_->rows(), " rows");

  if (!emitted_) {
    x_.emplace(A_->makeVector(DType::Float32, "session_x"));
    b_.emplace(A_->makeVector(DType::Float32, "session_b"));
    solver_->apply(*A_, *x_, *b_);
    emitted_ = true;
  }

  solver_->clearHistory();
  trace_.clear();
  engine_ = std::make_unique<graph::Engine>(ctx_->graph(),
                                            options_.hostThreads);
  if (options_.traceCapacity > 0) engine_->setTraceSink(&trace_);
  if (faultPlan_) engine_->setFaultPlan(&*faultPlan_);
  A_->upload(*engine_);
  A_->writeVector(*engine_, *b_, rhs);
  engine_->run(ctx_->program());

  Result r;
  r.solve = solver_->result();
  r.x = A_->readVector(*engine_, *x_);
  r.history = solver_->history();
  r.simulatedSeconds = engine_->elapsedSeconds();
  return r;
}

const ipu::Profile& SolveSession::profile() const {
  GRAPHENE_CHECK(engine_, "SolveSession::profile() before solve()");
  return engine_->profile();
}

Solver& SolveSession::solver() {
  GRAPHENE_CHECK(solver_, "SolveSession::solver() before configure()");
  return *solver_;
}

DistMatrix& SolveSession::matrix() {
  GRAPHENE_CHECK(A_, "SolveSession::matrix() before load()");
  return *A_;
}

graph::Engine& SolveSession::engine() {
  GRAPHENE_CHECK(engine_, "SolveSession::engine() before solve()");
  return *engine_;
}

}  // namespace graphene::solver
