// TWOFLOAT — double-word arithmetic in C++ (reproduction of the paper's
// open-sourced TwoFloat library, reference [11]).
//
// A double-word number represents a real value as the unevaluated sum of two
// floating-point numbers (hi, lo) with |lo| <= ulp(hi)/2. The pair carries
// roughly twice the precision of the base type while keeping its range.
//
// Two arithmetic families are provided, selected by `Policy`:
//   - Policy::Accurate — the tight, normalised algorithms of
//     JOLDES, MULLER, POPESCU (ACM TOMS 44(2), 2017). 20–34 flops per op.
//     Used by the MPIR method (the paper prioritises numerical stability).
//   - Policy::Fast — the faithful-rounding algorithms in the style of
//     LANGE & RUMP (ACM TOMS 46(3), 2020), which omit normalisation steps.
//     7–25 flops per op; error grows with consecutive operations.
//
// The template works for any IEEE base type; all constants (Dekker splitter)
// are computed at compile time. `DoubleWord<float>` gives ~13–14 decimal
// digits with float range; `DoubleWord<double>` gives ~31 digits.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "twofloat/eft.hpp"

namespace graphene::twofloat {

enum class Policy {
  Accurate,  // Joldes et al. — normalised, tight error bounds
  Fast,      // Lange & Rump style — fewer flops, faithful rounding
};

template <typename T, Policy P = Policy::Accurate>
struct DoubleWord {
  static_assert(std::is_floating_point_v<T>);

  T hi = T(0);
  T lo = T(0);

  constexpr DoubleWord() = default;
  constexpr DoubleWord(T h) : hi(h), lo(T(0)) {}
  constexpr DoubleWord(T h, T l) : hi(h), lo(l) {}

  /// Builds a double-word value from a wider type by splitting off the
  /// leading base-type part (exact when `d` is representable as hi+lo).
  static DoubleWord fromWide(double d) {
    T h = static_cast<T>(d);
    T l = static_cast<T>(d - static_cast<double>(h));
    return {h, l};
  }

  /// Recombines into the wider host type (used for verification only; on the
  /// IPU no such wider type exists).
  double toWide() const {
    return static_cast<double>(hi) + static_cast<double>(lo);
  }

  bool isFinite() const { return std::isfinite(hi) && std::isfinite(lo); }
};

// ---------------------------------------------------------------------------
// Addition
// ---------------------------------------------------------------------------

/// DW + FP. Accurate: Joldes Alg. 4 (AccurateDWPlusFP), 10 flops, relative
/// error <= 2 u^2.
template <typename T>
inline DoubleWord<T, Policy::Accurate> addDwFp(
    DoubleWord<T, Policy::Accurate> x, T y) {
  Eft<T> s = twoSum(x.hi, y);
  T v = x.lo + s.error;
  Eft<T> z = fastTwoSum(s.value, v);
  return {z.value, z.error};
}

/// DW + DW. Accurate: Joldes Alg. 6 (AccurateDWPlusDW), 20 flops, relative
/// error <= 3 u^2 / (1 - 4u).
template <typename T>
inline DoubleWord<T, Policy::Accurate> addDwDw(
    DoubleWord<T, Policy::Accurate> x, DoubleWord<T, Policy::Accurate> y) {
  Eft<T> s = twoSum(x.hi, y.hi);
  Eft<T> t = twoSum(x.lo, y.lo);
  T c = s.error + t.value;
  Eft<T> v = fastTwoSum(s.value, c);
  T w = t.error + v.error;
  Eft<T> z = fastTwoSum(v.value, w);
  return {z.value, z.error};
}

/// DW + DW. Fast: sloppy addition (Joldes Alg. 5 / Lange-Rump style),
/// 11 flops. The error bound does not hold for opposite-sign operands of
/// similar magnitude.
template <typename T>
inline DoubleWord<T, Policy::Fast> addDwDw(DoubleWord<T, Policy::Fast> x,
                                           DoubleWord<T, Policy::Fast> y) {
  Eft<T> s = twoSum(x.hi, y.hi);
  T v = x.lo + y.lo;
  T w = s.error + v;
  Eft<T> z = fastTwoSum(s.value, w);
  return {z.value, z.error};
}

/// DW + FP. Fast variant: 7 flops.
template <typename T>
inline DoubleWord<T, Policy::Fast> addDwFp(DoubleWord<T, Policy::Fast> x,
                                           T y) {
  Eft<T> s = twoSum(x.hi, y);
  T w = s.error + x.lo;
  Eft<T> z = fastTwoSum(s.value, w);
  return {z.value, z.error};
}

// ---------------------------------------------------------------------------
// Multiplication
// ---------------------------------------------------------------------------

/// DW × FP. Accurate: Joldes Alg. 9 (DWTimesFP3, FMA), 6 flops, error <= 2u^2.
template <typename T, Policy P>
inline DoubleWord<T, P> mulDwFp(DoubleWord<T, P> x, T y) {
  Eft<T> c = twoProd(x.hi, y);
  T cl3 = std::fma(x.lo, y, c.error);
  Eft<T> z = fastTwoSum(c.value, cl3);
  return {z.value, z.error};
}

/// DW × DW. Accurate: Joldes Alg. 12 (DWTimesDW3, FMA), 9 flops, error
/// <= 4 u^2.
template <typename T>
inline DoubleWord<T, Policy::Accurate> mulDwDw(
    DoubleWord<T, Policy::Accurate> x, DoubleWord<T, Policy::Accurate> y) {
  Eft<T> c = twoProd(x.hi, y.hi);
  T tl0 = x.lo * y.lo;
  T tl1 = std::fma(x.hi, y.lo, tl0);
  T cl2 = std::fma(x.lo, y.hi, tl1);
  T cl3 = c.error + cl2;
  Eft<T> z = fastTwoSum(c.value, cl3);
  return {z.value, z.error};
}

/// DW × DW. Fast: Joldes Alg. 11 (DWTimesDW2) — drops the xl*yl term,
/// 8 flops, error <= 5 u^2.
template <typename T>
inline DoubleWord<T, Policy::Fast> mulDwDw(DoubleWord<T, Policy::Fast> x,
                                           DoubleWord<T, Policy::Fast> y) {
  Eft<T> c = twoProd(x.hi, y.hi);
  T tl = std::fma(x.hi, y.lo, x.lo * y.hi);
  T cl2 = c.error + tl;
  Eft<T> z = fastTwoSum(c.value, cl2);
  return {z.value, z.error};
}

// ---------------------------------------------------------------------------
// Division
// ---------------------------------------------------------------------------

/// DW ÷ FP. Joldes Alg. 15 (DWDivFP3), 10 flops, error <= 3 u^2.
template <typename T, Policy P>
inline DoubleWord<T, P> divDwFp(DoubleWord<T, P> x, T y) {
  T th = x.hi / y;
  Eft<T> p = twoProd(th, y);
  T dh = x.hi - p.value;
  T dt = dh - p.error;
  T d = dt + x.lo;
  T tl = d / y;
  Eft<T> z = fastTwoSum(th, tl);
  return {z.value, z.error};
}

/// DW ÷ DW. Accurate: Joldes Alg. 18 (DWDivDW3) — Newton-Raphson reciprocal
/// refinement, ~31 flops, error <= 9.8 u^2.
template <typename T>
inline DoubleWord<T, Policy::Accurate> divDwDw(
    DoubleWord<T, Policy::Accurate> x, DoubleWord<T, Policy::Accurate> y) {
  using DW = DoubleWord<T, Policy::Accurate>;
  T th = T(1) / y.hi;
  T rh = std::fma(-y.hi, th, T(1));
  T rl = -(y.lo * th);
  Eft<T> e = fastTwoSum(rh, rl);
  DW delta = mulDwFp(DW{e.value, e.error}, th);
  DW m = addDwFp(delta, th);
  return mulDwDw(x, m);
}

/// DW ÷ DW. Fast: Joldes Alg. 17 (DWDivDW2) — long-division style, 24 flops,
/// error <= 15 u^2 + 56 u^3.
template <typename T>
inline DoubleWord<T, Policy::Fast> divDwDw(DoubleWord<T, Policy::Fast> x,
                                           DoubleWord<T, Policy::Fast> y) {
  T th = x.hi / y.hi;
  DoubleWord<T, Policy::Fast> r =
      addDwDw(x, mulDwFp(DoubleWord<T, Policy::Fast>{-y.hi, -y.lo}, th));
  T tl = r.hi / y.hi;
  Eft<T> z = fastTwoSum(th, tl);
  return {z.value, z.error};
}

// ---------------------------------------------------------------------------
// Negation / subtraction / operators
// ---------------------------------------------------------------------------

template <typename T, Policy P>
constexpr DoubleWord<T, P> negate(DoubleWord<T, P> x) {
  return {-x.hi, -x.lo};
}

template <typename T, Policy P>
inline DoubleWord<T, P> operator+(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return addDwDw(a, b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator-(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return addDwDw(a, negate(b));
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator*(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return mulDwDw(a, b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator/(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return divDwDw(a, b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator+(DoubleWord<T, P> a, T b) {
  return addDwFp(a, b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator-(DoubleWord<T, P> a, T b) {
  return addDwFp(a, -b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator*(DoubleWord<T, P> a, T b) {
  return mulDwFp(a, b);
}
template <typename T, Policy P>
inline DoubleWord<T, P> operator/(DoubleWord<T, P> a, T b) {
  return divDwFp(a, b);
}
template <typename T, Policy P>
constexpr DoubleWord<T, P> operator-(DoubleWord<T, P> a) {
  return negate(a);
}

/// Exact comparison of the represented values (hi is normalised, so
/// lexicographic comparison on (hi, lo) is value order).
template <typename T, Policy P>
constexpr bool operator==(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return a.hi == b.hi && a.lo == b.lo;
}
template <typename T, Policy P>
constexpr bool operator<(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo);
}
template <typename T, Policy P>
constexpr bool operator>(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return b < a;
}
template <typename T, Policy P>
constexpr bool operator<=(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return !(b < a);
}
template <typename T, Policy P>
constexpr bool operator>=(DoubleWord<T, P> a, DoubleWord<T, P> b) {
  return !(a < b);
}

/// Absolute value.
template <typename T, Policy P>
constexpr DoubleWord<T, P> abs(DoubleWord<T, P> x) {
  return x.hi < T(0) || (x.hi == T(0) && x.lo < T(0)) ? negate(x) : x;
}

/// sqrt via one Newton step on the base-type estimate (Karp-Markstein style);
/// needed by vector norms in extended precision.
template <typename T, Policy P>
inline DoubleWord<T, P> sqrt(DoubleWord<T, P> x) {
  if (x.hi == T(0) && x.lo == T(0)) return {T(0), T(0)};
  T s = std::sqrt(x.hi);
  // r = x - s^2 computed exactly, then correction r / (2s).
  Eft<T> p = twoProd(s, s);
  DoubleWord<T, P> r = addDwDw(x, DoubleWord<T, P>{-p.value, -p.error});
  T corr = r.hi / (T(2) * s);
  Eft<T> z = fastTwoSum(s, corr);
  return {z.value, z.error};
}

/// Convenience aliases matching the paper's usage: double-word over float32.
using Float2 = DoubleWord<float, Policy::Accurate>;
using FastFloat2 = DoubleWord<float, Policy::Fast>;

/// Flop counts per operation, used by the IPU cycle model and documented in
/// the paper (§III-D: Joldes 20–34 flops, Lange-Rump 7–25 flops).
struct FlopCounts {
  int addDwDw;
  int mulDwDw;
  int divDwDw;
};
constexpr FlopCounts flopCounts(Policy p) {
  return p == Policy::Accurate ? FlopCounts{20, 9, 31} : FlopCounts{11, 8, 24};
}

}  // namespace graphene::twofloat
