// Gauss-Seidel with Level-Set Scheduling (§V-A, §V-D).
#include <cmath>

#include "levelset/levelset.hpp"
#include "solver/solvers.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

using dsl::Context;
using dsl::Dot;
using dsl::ExecuteOnTiles;
using dsl::Expression;
using dsl::For;
using dsl::ParallelFor;
using dsl::Select;
using dsl::Tensor;
using dsl::Value;

void GaussSeidelSolver::setup(DistMatrix& a) {
  Context& ctx = Context::current();
  const std::size_t nTiles = ctx.target().totalTiles();
  std::vector<std::size_t> orderSizes(nTiles, 0), ptrSizes(nTiles, 0);
  std::vector<std::vector<std::int32_t>> orders(nTiles), ptrs(nTiles);
  for (std::size_t t = 0; t < nTiles; ++t) {
    const DistMatrix::TileLocal& local = a.tileLocal()[t];
    if (local.numOwned == 0) continue;
    // Dependencies: strictly-lower entries among *owned* columns; halo
    // references carry no intra-sweep ordering (they use the last exchange).
    auto sched = levelset::buildLevels(local.rowPtr, local.col,
                                       local.numOwned, /*lower=*/true);
    orders[t] = sched.order;
    ptrs[t] = sched.levelPtr;
    orderSizes[t] = orders[t].size();
    ptrSizes[t] = ptrs[t].size();
  }
  lvlOrder_.emplace(DType::Int32, graph::TileMapping::ragged(orderSizes),
                    ctx.freshName("gs_order"));
  lvlPtr_.emplace(DType::Int32, graph::TileMapping::ragged(ptrSizes),
                  ctx.freshName("gs_lvlptr"));
  for (std::size_t t = 0; t < nTiles; ++t) {
    lvlOrderHost_.insert(lvlOrderHost_.end(), orders[t].begin(),
                         orders[t].end());
    lvlPtrHost_.insert(lvlPtrHost_.end(), ptrs[t].begin(), ptrs[t].end());
  }
  // Upload the schedule before execution begins.
  std::vector<std::int32_t> orderHost = lvlOrderHost_;
  std::vector<std::int32_t> ptrHost = lvlPtrHost_;
  graph::TensorId orderId = lvlOrder_->id();
  graph::TensorId ptrId = lvlPtr_->id();
  dsl::HostCall([orderHost, ptrHost, orderId, ptrId](graph::Engine& e) {
    e.writeTensor<std::int32_t>(orderId, orderHost);
    e.writeTensor<std::int32_t>(ptrId, ptrHost);
  });
}

void GaussSeidelSolver::emitSweep(DistMatrix& a, Tensor& z, Tensor& r) {
  a.haloExchange(z);
  Tensor& halo = a.haloBuffer(DType::Float32);
  ExecuteOnTiles(
      {z, r, halo, a.diagonal(), a.offVal(), a.offCol(), a.offRowPtr(),
       a.haloSplit(), *lvlOrder_, *lvlPtr_},
      [&](std::vector<Value>& args) {
        Value zv = args[0], rv = args[1], hv = args[2], dv = args[3],
              av = args[4], cv = args[5], rp = args[6], sp = args[7],
              order = args[8], lvl = args[9];
        Value numOwned = zv.size();
        // One worker-parallel region per level, synchronised in between —
        // the single-compute-set iputhreading pattern (§V-A).
        For(0, lvl.size() - 1, 1, [&](Value l) {
          ParallelFor(lvl[l], lvl[l + 1], [&](Value idx) {
            Value row = order[idx];
            Value acc = rv[row];
            For(rp[row], sp[row], 1, [&](Value k) {
              acc = acc - Value(av[k]) * Value(zv[cv[k]]);
            });
            For(sp[row], rp[row + 1], 1, [&](Value k) {
              acc = acc - Value(av[k]) * Value(hv[Value(cv[k]) - numOwned]);
            });
            zv[row] = acc / Value(dv[row]);
          });
        });
      },
      "gauss_seidel", a.activeTiles());
}

void GaussSeidelSolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  ensureSetup(a);
  z = Expression(0.0f);
  if (tolerance_ <= 0.0) {
    // Smoother / preconditioner mode: fixed sweep count.
    dsl::Repeat(sweeps_, [&] { emitSweep(a, z, r); });
    return;
  }
  // Standalone solver mode: sweep until the relative residual converges.
  Tensor res = a.makeVector(DType::Float32, "gs_res");
  Tensor bNormSq = Dot(r, r);
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "gs_iter");
  iter = Expression(0);
  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  auto resPtr = result_;
  const double tolerance = tolerance_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();
  graph::TensorId iterId = iter.id();
  dsl::HostCall([resPtr](graph::Engine&) {
    *resPtr = SolveResult{};
    resPtr->status = SolveStatus::Running;
  });
  dsl::While(
      Expression(iter) < static_cast<int>(maxIterations_) &&
          Expression(resNormSq) > Expression(tol2) * Expression(bNormSq),
      [&] {
        for (std::size_t s = 0; s < sweeps_; ++s) emitSweep(a, z, r);
        a.spmv(res, z);
        res = Expression(r) - Expression(res);
        resNormSq = Dot(res, res);
        iter = Expression(iter) + 1;
        dsl::HostCall([histPtr, resPtr, resId, bId](graph::Engine& e) {
          double rr = e.readScalar(resId).toHostDouble();
          double bb = e.readScalar(bId).toHostDouble();
          double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
          // Keep the history free of NaN/Inf garbage: a non-finite residual
          // becomes a typed outcome instead of a bogus sample.
          if (!std::isfinite(rel)) {
            resPtr->status = SolveStatus::NanDetected;
            return;
          }
          histPtr->push_back({histPtr->size() + 1, rel});
          resPtr->finalResidual = rel;
          support::recordIteration(e.traceSink(), "gauss-seidel",
                                   histPtr->size(), rel, e.simCycles(),
                                   e.profile().computeSupersteps);
        });
      });
  dsl::HostCall([resPtr, resId, bId, iterId, tolerance](graph::Engine& e) {
    if (resPtr->status != SolveStatus::Running) return;
    const double rr = e.readScalar(resId).toHostDouble();
    const double bb = e.readScalar(bId).toHostDouble();
    const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
    resPtr->iterations =
        static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
    if (std::isfinite(rel)) resPtr->finalResidual = rel;
    resPtr->status = rel <= tolerance ? SolveStatus::Converged
                                      : SolveStatus::MaxIterations;
  });
}

}  // namespace graphene::solver
