// Table I: the floating-point types supported by the DSL — decimal digits of
// precision and worker-cycle counts of add/mul/div on the (simulated) IPU.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ipu/cost_model.hpp"
#include "twofloat/softdouble.hpp"
#include "twofloat/twofloat.hpp"

using namespace graphene;
namespace tf = graphene::twofloat;

namespace {

/// Measures worst-case decimal digits over random operations by comparing
/// against host long-double arithmetic.
template <typename Op>
double measureDigits(Op op, double lo, double hi, std::uint64_t seed) {
  Rng rng(seed);
  double worst = 1e9;
  for (int i = 0; i < 20000; ++i) {
    double a = rng.uniform(lo, hi);
    double b = rng.uniform(lo, hi);
    if (std::abs(b) < 1e-6) continue;
    auto [got, expect] = op(a, b);
    double rel = std::abs((got - expect) / (expect == 0 ? 1 : expect));
    if (rel > 0) worst = std::min(worst, -std::log10(rel));
  }
  return worst;
}

}  // namespace

int main() {
  bench::printHeader("Table I — extended-precision types",
                     "cycle counts & decimal digits of float32 / double-word "
                     "/ emulated float64 (paper Table I)");

  // Decimal digits, measured.
  double digitsF32 = measureDigits(
      [](double a, double b) {
        float r = static_cast<float>(a) * static_cast<float>(b);
        return std::pair<double, double>(static_cast<double>(r), a * b);
      },
      0.5, 2.0, 1);
  double digitsDw = measureDigits(
      [](double a, double b) {
        auto r = tf::Float2::fromWide(a) * tf::Float2::fromWide(b);
        return std::pair<double, double>(r.toWide(), a * b);
      },
      0.5, 2.0, 2);
  double digitsF64 = measureDigits(
      [](double a, double b) {
        auto r = tf::SoftDouble::fromDouble(a) * tf::SoftDouble::fromDouble(b);
        // Compare against long double so float64's own digits resolve.
        long double e = static_cast<long double>(a) * b;
        return std::pair<double, double>(
            r.toDouble(), static_cast<double>(e));
      },
      0.5, 2.0, 3);

  // Cycle counts from the calibrated cost model.
  ipu::CostModel cost;
  using ipu::DType;
  using ipu::Op;
  TextTable t({"Operation", "Single-Precision", "Double-Word",
               "Double-Precision"});
  t.addRow({"Algorithm", "native", "Joldes et al.", "soft-float"});
  t.addRow({"Decimal digits (measured)", formatSig(digitsF32, 3),
            formatSig(digitsDw, 3), formatSig(digitsF64, 3)});
  auto row = [&](const char* name, Op op) {
    t.addRow({name, formatSig(cost.workerCycles(op, DType::Float32), 4),
              formatSig(cost.workerCycles(op, DType::DoubleWord), 4),
              formatSig(cost.workerCycles(op, DType::Float64), 4)});
  };
  row("Addition (cycles)", Op::Add);
  row("Multiplication (cycles)", Op::Mul);
  row("Division (cycles)", Op::Div);
  std::printf("%s\n", t.render().c_str());

  std::printf("paper: f32 7.2 digits / 6 cy; DW 13.3-14.0 digits / "
              "132-240 cy; f64 16 digits / ~1080-2520 cy\n");
  std::printf("check: DW ~2x digits of f32 at ~8-20x cycle cost; emulated "
              "f64 another ~2-3 digits at ~8-10x DW cost: %s\n",
              (digitsDw > 1.8 * digitsF32 && digitsF64 > digitsDw) ? "PASS"
                                                                   : "FAIL");
  return 0;
}
