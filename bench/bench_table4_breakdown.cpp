// Table IV: relative computation time of the parts of the
// MPIR+PBiCGStab+ILU(0) solver on G3_circuit, for double-word and emulated
// float64 extended precision. The BiCGStab performs 10 iterations before
// each IR step (paper §VI-C).
//
// Expectation (paper): ILU solve dominates (75%/66%), SpMV 7%/6%,
// Reduce 12%/11%, Elementwise 4%/3%, Extended-Precision Ops 2%/14%.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace graphene;

namespace {

struct Breakdown {
  std::map<std::string, double> rows;
  bool traceMatchesProfile = false;  // trace-derived cycles == Profile's
};

Breakdown runBreakdown(const matrix::GeneratedMatrix& g,
                       const std::string& extType) {
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(64);
  bench::DistSystem s = bench::makeSystem(g, target);
  dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = s.A->makeVector(dsl::DType::Float32, "b");
  auto solver = solver::makeSolverFromString(
      R"({"type":"mpir","extendedType":")" + extType +
      R"(","maxRefinements":10,"tolerance":1e-12,
          "inner":{"type":"bicgstab","maxIterations":10,"tolerance":0,
                   "preconditioner":{"type":"ilu"}}})");
  solver->apply(*s.A, x, b);
  auto rhs = bench::randomRhs(g.matrix.rows(), 5);
  support::TraceSink trace;
  auto prof = bench::runProgram(s, s.ctx->program(), rhs, b, &trace);

  // The breakdown is computed from the execution *trace*; the Profile's
  // per-category counters only serve as the cross-check below. Both sum the
  // same per-superstep critical-path cycles in the same order, so the match
  // is exact, not approximate.
  std::map<std::string, double> cycles = support::traceComputeCycles(trace);
  bool match = cycles == prof.computeCycles;

  Breakdown out;
  out.traceMatchesProfile = match;
  double total = 0;
  for (const auto& [cat, c] : cycles) total += c;
  auto pct = [&](double v) { return 100.0 * v / total; };
  auto get = [&](const char* c) {
    auto it = cycles.find(c);
    return it == cycles.end() ? 0.0 : it->second;
  };
  out.rows["ILU(0) Solve"] = pct(get("ilu_solve") + get("ilu_factorize"));
  out.rows["SpMV"] = pct(get("spmv"));
  out.rows["Reduce"] = pct(get("reduce"));
  out.rows["Elementwise Ops"] = pct(get("elementwise") + get("condition") +
                                    get("gauss_seidel") + get("codedsl"));
  out.rows["Extended-Precision Ops"] = pct(get("extended_precision"));
  return out;
}

}  // namespace

int main() {
  bench::printHeader("Table IV — MPIR solver time breakdown",
                     "relative cost of solver parts, DW vs DP extended "
                     "precision (paper Table IV)");

  auto g = matrix::makeBenchmarkMatrix("g3_circuit", 24000);
  std::printf("stand-in: %s, %zu rows, %zu nnz; 10 BiCGStab iterations per "
              "IR step\n\n",
              g.name.c_str(), g.matrix.rows(), g.matrix.nnz());

  auto dwRun = runBreakdown(g, "doubleword");
  auto dpRun = runBreakdown(g, "float64");
  const auto& dw = dwRun.rows;
  const auto& dp = dpRun.rows;

  TextTable t({"Operation", "Double-Word", "Double-Precision", "paper DW",
               "paper DP"});
  const std::map<std::string, std::pair<int, int>> paper = {
      {"ILU(0) Solve", {75, 66}},  {"SpMV", {7, 6}},
      {"Reduce", {12, 11}},        {"Elementwise Ops", {4, 3}},
      {"Extended-Precision Ops", {2, 14}}};
  for (const auto& [row, ref] : paper) {
    t.addRow({row, formatSig(dw.at(row), 3) + "%",
              formatSig(dp.at(row), 3) + "%", std::to_string(ref.first) + "%",
              std::to_string(ref.second) + "%"});
  }
  std::printf("%s\n", t.render().c_str());

  // Note: the paper's 75% ILU share reflects G3_circuit's deep local
  // dependency chains (poor worker utilisation in the level-set solve); our
  // synthetic stand-in has shallower levels, so work shifts toward SpMV and
  // reductions. The claims the table *supports* (§VI-C) are checked below.
  double innerDw = dw.at("ILU(0) Solve") + dw.at("SpMV") + dw.at("Reduce") +
                   dw.at("Elementwise Ops");
  bool innerDominates = innerDw > 85.0;
  bool extSmallDw = dw.at("Extended-Precision Ops") < 10;
  bool extGrowsDp =
      dp.at("Extended-Precision Ops") > dw.at("Extended-Precision Ops") * 2;
  std::printf("check: the working-precision inner solver dominates "
              "(>85%% of cycles, paper: 98%%): %s (%.1f%%)\n",
              innerDominates ? "PASS" : "FAIL", innerDw);
  std::printf("check: double-word extended ops are cheap (<10%%, paper 2%%): "
              "%s\n",
              extSmallDw ? "PASS" : "FAIL");
  std::printf("check: soft-float64 extended ops cost several times more "
              "than double-word (paper 14%% vs 2%%): %s\n",
              extGrowsDp ? "PASS" : "FAIL");
  bool traceMatches = dwRun.traceMatchesProfile && dpRun.traceMatchesProfile;
  std::printf("check: trace-derived per-category cycles match the Profile "
              "exactly: %s\n",
              traceMatches ? "PASS" : "FAIL");
  return innerDominates && extSmallDw && extGrowsDp && traceMatches ? 0 : 1;
}
