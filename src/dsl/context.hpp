// The DSL context: owns the dataflow graph being constructed and the
// control-flow stack that TensorDSL uses to build the execution schedule
// (paper §III-B).
//
// Exactly one Context is active per thread; Tensor/Expression operations
// find it implicitly, which is what gives the DSL its mathematical-notation
// look (no graph handle threading through user code).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/program.hpp"
#include "ipu/target.hpp"

namespace graphene::dsl {

class Context {
 public:
  explicit Context(ipu::IpuTarget target);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  static Context& current();
  static bool active();

  /// Re-binds this context as the calling thread's active context. A context
  /// is bound to its creating thread by the constructor; a pooled pipeline
  /// (e.g. a plan-cache entry leased by a solver-service worker) calls this
  /// when a *different* thread takes ownership. Errors if the calling thread
  /// already has another context bound — ownership is exclusive.
  void bind();

  /// Releases this context from the calling thread's thread-local slot (a
  /// no-op if it is not the one bound here). Call before handing the context
  /// to another thread; destruction of an unbound context is always safe.
  void unbind();

  graph::Graph& graph() { return graph_; }
  const ipu::IpuTarget& target() const { return graph_.target(); }

  /// Appends a step to the program sequence at the top of the control-flow
  /// stack ("the program step at the top of the stack always represents the
  /// current state of the symbolically executed program").
  void emit(graph::ProgramPtr step);

  /// Pushes a fresh sequence; subsequent emits land in it.
  graph::ProgramPtr pushSequence();

  /// Pops the top sequence and returns it.
  graph::ProgramPtr popSequence();

  /// The root program collecting everything emitted at the top level.
  const graph::ProgramPtr& program() const { return root_; }

  /// Generates a unique tensor/codelet name with the given prefix.
  std::string freshName(const std::string& prefix);

 private:
  graph::Graph graph_;
  graph::ProgramPtr root_;
  std::vector<graph::ProgramPtr> stack_;
  std::size_t nameCounter_ = 0;
};

}  // namespace graphene::dsl
