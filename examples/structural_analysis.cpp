// Structural-analysis scenario: an elasticity-style system (the Hook_1498
// class from the paper's Table II) solved with preconditioned Conjugate
// Gradient — the paper's second motivating domain next to CFD.
//
// Also demonstrates the host-side analysis toolbox: spectral condition
// estimation, RCM bandwidth reduction, and the level-set parallelism profile
// that decides how well (D)ILU parallelises on the six workers.
//
// Usage: ./example_structural_analysis [rows=6000] [tiles=32]
#include <cstdio>
#include <cstdlib>

#include "graph/engine.hpp"
#include "levelset/levelset.hpp"
#include "matrix/generators.hpp"
#include "matrix/reorder.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;
  const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;

  auto problem = matrix::hookLike(rows, 4, /*shiftScale=*/100.0);
  auto stats = matrix::computeStats(problem.matrix);
  std::printf("structure: %s, %zu DOFs, %zu nnz (%.1f nnz/row)\n",
              problem.name.c_str(), stats.rows, stats.nnz,
              stats.avgNnzPerRow);

  // Host-side analysis.
  std::printf("estimated condition number: %.3g\n",
              matrix::estimateConditionNumber(problem.matrix));
  auto rcm = matrix::reverseCuthillMcKee(problem.matrix);
  auto reordered = problem.matrix.permuted(rcm);
  std::printf("bandwidth: natural %zu, after RCM %zu\n",
              problem.matrix.bandwidth(), reordered.bandwidth());
  auto levels = levelset::buildForwardLevels(problem.matrix);
  std::printf("level-set schedule: %zu levels, avg parallelism %.1f "
              "rows/level\n\n",
              levels.numLevels(), levels.avgParallelism());

  // Device solve with PCG + ILU(0).
  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::Partitioner(ipu::Topology::singleIpu(tiles))
                    .layout(problem);
  solver::DistMatrix A(problem.matrix, std::move(layout));
  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");
  auto solver = solver::makeSolverFromString(R"({
    "type": "cg", "maxIterations": 500, "tolerance": 1e-6,
    "preconditioner": {"type": "ilu"}
  })");
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  // Load case: unit force at one end of the hook.
  std::vector<double> force(problem.matrix.rows(), 0.0);
  for (std::size_t i = 0; i < problem.nx; ++i) force[i] = 1.0;
  A.writeVector(engine, b, force);
  engine.run(ctx.program());

  const auto& hist = solver->history();
  if (hist.empty()) {
    std::printf("solver recorded no iterations\n");
    return 1;
  }
  std::printf("PCG+ILU(0) converged to %.3e in %zu iterations "
              "(simulated %.2f ms on %zu tiles)\n",
              hist.back().residual, hist.size(),
              1e3 * engine.elapsedSeconds(), tiles);
  auto displacement = A.readVector(engine, x);
  double maxDisp = 0;
  for (double d : displacement) maxDisp = std::max(maxDisp, std::abs(d));
  std::printf("max displacement: %.4g\n", maxDisp);
  return hist.back().residual < 1e-4 ? 0 : 1;
}
