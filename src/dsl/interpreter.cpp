#include "dsl/interpreter.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

// The named span kernels dispatch on runtime aliasing so the hot disjoint
// case can promise no-alias to the auto-vectorizer (the build keeps
// -ffp-contract=off, so vectorized lanes stay bit-identical to the scalar
// walk: elementwise float ops, no FMA contraction, no reassociation).
#if defined(__GNUC__) || defined(__clang__)
#define GRAPHENE_RESTRICT __restrict__
#else
#define GRAPHENE_RESTRICT
#endif

#include "ipu/worker_pool.hpp"
#include "support/error.hpp"

namespace graphene::dsl {

using graph::promote;
using twofloat::Float2;
using twofloat::SoftDouble;

namespace {

template <typename T>
Scalar binNumeric(BinOp op, T a, T b) {
  switch (op) {
    case BinOp::Add: return Scalar(a + b);
    case BinOp::Sub: return Scalar(a - b);
    case BinOp::Mul: return Scalar(a * b);
    case BinOp::Div: return Scalar(a / b);
    case BinOp::Lt: return Scalar(a < b);
    case BinOp::Le: return Scalar(a <= b);
    case BinOp::Gt: return Scalar(a > b);
    case BinOp::Ge: return Scalar(a >= b);
    case BinOp::Eq: return Scalar(a == b);
    case BinOp::Ne: return Scalar(!(a == b));
    case BinOp::Min: return Scalar(b < a ? b : a);
    case BinOp::Max: return Scalar(a < b ? b : a);
    default: break;
  }
  GRAPHENE_UNREACHABLE("binary op not defined for this type");
}

}  // namespace

Scalar evalBinaryScalar(BinOp op, const Scalar& lhs, const Scalar& rhs) {
  DType common = promote(lhs.type(), rhs.type());
  // Logic ops work on bools without promotion.
  if (op == BinOp::And || op == BinOp::Or) {
    bool a = lhs.truthy(), b = rhs.truthy();
    return Scalar(op == BinOp::And ? (a && b) : (a || b));
  }
  if (common == DType::Bool) common = DType::Int32;  // bool arithmetic
  Scalar a = lhs.castTo(common);
  Scalar b = rhs.castTo(common);
  switch (common) {
    case DType::Int32: {
      if (op == BinOp::Mod) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer modulo by zero in codelet");
        return Scalar(a.asInt() % b.asInt());
      }
      if (op == BinOp::Div) {
        GRAPHENE_CHECK(b.asInt() != 0, "integer division by zero in codelet");
      }
      return binNumeric<std::int32_t>(op, a.asInt(), b.asInt());
    }
    case DType::Float32:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<float>(op, a.asFloat(), b.asFloat());
    case DType::Float64:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<SoftDouble>(op, a.asSoftDouble(), b.asSoftDouble());
    case DType::DoubleWord:
      GRAPHENE_CHECK(op != BinOp::Mod, "modulo needs integer operands");
      return binNumeric<Float2>(op, a.asDoubleWord(), b.asDoubleWord());
    default:
      break;
  }
  GRAPHENE_UNREACHABLE("bad promoted type");
}

Scalar evalUnaryScalar(UnOp op, const Scalar& x) {
  switch (op) {
    case UnOp::Not:
      return Scalar(!x.truthy());
    case UnOp::Neg:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: return Scalar(-x.castTo(DType::Int32).asInt());
        case DType::Float32: return Scalar(-x.asFloat());
        case DType::Float64: return Scalar(-x.asSoftDouble());
        case DType::DoubleWord: return Scalar(-x.asDoubleWord());
      }
      break;
    case UnOp::Abs:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32: {
          std::int32_t v = x.castTo(DType::Int32).asInt();
          return Scalar(v < 0 ? -v : v);
        }
        case DType::Float32: return Scalar(std::fabs(x.asFloat()));
        case DType::Float64: return Scalar(SoftDouble::abs(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::abs(x.asDoubleWord()));
      }
      break;
    case UnOp::Sqrt:
      switch (x.type()) {
        case DType::Bool:
        case DType::Int32:
        case DType::Float32:
          return Scalar(std::sqrt(x.castTo(DType::Float32).asFloat()));
        case DType::Float64: return Scalar(SoftDouble::sqrt(x.asSoftDouble()));
        case DType::DoubleWord: return Scalar(twofloat::sqrt(x.asDoubleWord()));
      }
      break;
  }
  GRAPHENE_UNREACHABLE("bad unary op");
}

// ---------------------------------------------------------------------------
// Flattening: shared_ptr statement trees → index-linked arrays.
// ---------------------------------------------------------------------------

namespace {

class Flattener {
 public:
  explicit Flattener(FlatCodelet& out) : out_(out) {}

  std::int32_t expr(const ExprPtr& e) {
    if (!e) return -1;
    FlatExpr fe;
    fe.kind = e->kind;
    fe.type = e->type;
    fe.constant = e->constant;
    fe.var = e->var;
    fe.arg = e->arg;
    fe.bop = e->bop;
    fe.uop = e->uop;
    fe.a = expr(e->a);
    fe.b = expr(e->b);
    fe.c = expr(e->c);
    out_.exprs.push_back(fe);
    return static_cast<std::int32_t>(out_.exprs.size()) - 1;
  }

  std::int32_t list(const StmtList& stmts) {
    std::vector<std::int32_t> ids;
    ids.reserve(stmts.size());
    for (const StmtPtr& s : stmts) ids.push_back(stmt(*s));
    out_.lists.push_back(std::move(ids));
    return static_cast<std::int32_t>(out_.lists.size()) - 1;
  }

  std::int32_t stmt(const Stmt& s) {
    FlatStmt fs;
    fs.kind = s.kind;
    fs.var = s.var;
    fs.arg = s.arg;
    fs.index = expr(s.index);
    fs.value = expr(s.value);
    fs.cond = expr(s.cond);
    fs.begin = expr(s.begin);
    fs.end = expr(s.end);
    fs.step = expr(s.step);
    const bool hasBody = s.kind == Stmt::Kind::If || s.kind == Stmt::Kind::While ||
                         s.kind == Stmt::Kind::For || s.kind == Stmt::Kind::ParFor;
    fs.body = hasBody ? list(s.body) : -1;
    fs.elseBody = s.kind == Stmt::Kind::If ? list(s.elseBody) : -1;
    out_.stmts.push_back(fs);
    return static_cast<std::int32_t>(out_.stmts.size()) - 1;
  }

 private:
  FlatCodelet& out_;
};

}  // namespace

FlatCodelet flattenCodelet(const CodeletIR& ir) {
  FlatCodelet out;
  out.numVars = ir.numVars;
  out.usesWorkers = ir.usesWorkers;
  out.numArgs = ir.numArgs;
  Flattener f(out);
  out.root = f.list(ir.statements);
  return out;
}

// ---------------------------------------------------------------------------
// Loop kernels: counted For loops whose bodies are straight-line Float32 /
// Int32 arithmetic are lowered once into a tiny register program ("ops"),
// optionally specialised further into one of the named span kernels. Per-
// iteration cycle charges are priced at compile time from the same cost
// tables the generic walk consults — and every priced constant is an integral
// double, so `n * perIteration` equals n repeated additions exactly and the
// bulk charge is bit-identical to the generic walk's.
// ---------------------------------------------------------------------------

namespace {

ipu::Op costOpFor(BinOp op, DType t) {
  if (t == DType::Int32 || t == DType::Bool) return ipu::Op::IntArith;
  switch (op) {
    case BinOp::Add: return ipu::Op::Add;
    case BinOp::Sub: return ipu::Op::Sub;
    case BinOp::Mul: return ipu::Op::Mul;
    case BinOp::Div: return ipu::Op::Div;
    case BinOp::Mod: return ipu::Op::IntArith;
    case BinOp::And:
    case BinOp::Or: return ipu::Op::Logic;
    default: return ipu::Op::Compare;  // relational, min, max
  }
}

ipu::Op costOpFor(UnOp op) {
  switch (op) {
    case UnOp::Neg: return ipu::Op::Neg;
    case UnOp::Abs: return ipu::Op::Abs;
    case UnOp::Sqrt: return ipu::Op::Sqrt;
    case UnOp::Not: return ipu::Op::Logic;
  }
  return ipu::Op::Logic;
}

struct LoopOp {
  enum class K : std::uint8_t {
    FConst, FMov, FLoad, FStore,
    FAdd, FSub, FMul, FDiv, FMin, FMax,
    FNeg, FAbs, FSqrt, FFromInt,
    IConst, IMov, ILoad,
    IAdd, ISub, IMul, IMin, IMax,
    INeg, IAbs, IFromFloat,
    // Parallel-row kernels only: a nested counted unit-step loop.
    // LBegin: dst = induction reg, a = begin reg, b = end reg, arg = loop
    // ordinal (trip-count slot), iimm = pc of the matching LEnd.
    // LEnd: a = induction reg, iimm = pc of the matching LBegin.
    LBegin, LEnd,
  };
  K k{};
  std::int16_t dst = -1, a = -1, b = -1;
  std::int16_t arg = -1;
  float fimm = 0;
  std::int32_t iimm = 0;
  // Load/store index register proven equal to the induction value at this op
  // (analyzeBlockable dataflow): the blocked VM may use a contiguous,
  // pre-bounds-checked span access for it.
  bool ew = false;
};

/// Recognised whole-loop span kernels (all Float32, unit step): the shapes
/// the solvers' elementwise maps and reductions trace.
struct NamedLoop {
  enum class P : std::uint8_t { None, Copy, Scale, AddVec, Axpy, DotPartial };
  P p = P::None;
  std::int16_t dstArg = -1, aArg = -1, bArg = -1;
  bool sIsConst = false;
  float sConst = 0;
  std::int32_t sVar = -1;
  bool sFirst = false;    // scale factor is the left multiplicand
  bool loadFirst = true;  // axpy: the plain load is the left addend
  bool isSub = false;     // top-level op is Sub
  std::int32_t accVar = -1;
  bool accFirst = true;   // dot: acc is the left addend
  bool dotSingle = false; // acc += a[i] instead of acc += a[i]*b[i]
};

/// Recognised whole-row parallel kernel: the two-run CSR SpMV row shape
/// DistMatrix::spmv traces (owned-column run, then halo run):
///   acc = d[r] * x[r]
///   for k in [rp[r], sp[r]):    acc = acc + a[k] * x[c[k]]
///   for k in [sp[r], rp[r+1]):  acc = acc + a[k] * h[c[k] - owned]
///   y[r] = acc
/// Rows run as a native scalar loop (same float ops in the same order, so
/// bit-identical); the last row still runs through the register VM so the
/// kernel's var write-backs stay exact.
struct CsrRow {
  bool valid = false;
  std::int16_t yArg = -1, dArg = -1, xArg = -1, aArg = -1, hArg = -1;
  std::int16_t cArg = -1, rpArg = -1, spArg = -1;
  std::int32_t ownedVar = -1;  // outer var holding the owned-row count
};

struct LoopKernel {
  static constexpr std::size_t kMaxRegs = 64;
  static constexpr std::size_t kMaxArgs = 16;
  static constexpr std::size_t kMaxNested = 8;

  /// One straight-line charge block (lanes totalled as max(fp,mem)+ctrl).
  struct Seg {
    double fp = 0, mem = 0, ctrl = 0;
  };

  std::vector<LoopOp> ops;
  // Once-per-entry register seeds.
  std::vector<std::pair<std::int16_t, std::int16_t>> sizeSeeds;  // (reg, arg)
  std::int16_t workerReg = -1;
  std::vector<std::pair<std::int32_t, std::int16_t>> seedFloat;  // (var, reg)
  std::vector<std::pair<std::int32_t, std::int16_t>> seedInt;
  // Vars assigned in the body, written back after the last iteration.
  std::vector<std::pair<std::int32_t, std::int16_t>> writeFloat;
  std::vector<std::pair<std::int32_t, std::int16_t>> writeInt;
  // Runtime dtype guards (trace-time types must hold at run time or the
  // kernel is skipped for that execution).
  std::vector<std::int16_t> floatArgs, intArgs;
  int numFloatRegs = 0, numIntRegs = 0;
  // Per-iteration lane charges (priced at compile time).
  double iterFp = 0, iterMem = 0, iterCtrl = 0;
  NamedLoop named;
  // Parallel (ParFor) row kernels: the whole row body is one register
  // program with nested counted loops encoded as LBegin/LEnd jumps. The
  // generic walk flushes its lane block at every nested loop-entry branch, so
  // a row costs Σ_k max(fp_k, mem_k) + ctrl_k over L+1 blocks — block k
  // holding segs[k] plus trips[k-1] iterations of nested[k-1] — plus one
  // branch per nested loop. Every priced constant is an integral double, so
  // the polynomial equals the walk's per-op accumulation exactly.
  bool isPar = false;
  std::vector<Seg> segs;    // L+1 straight-line blocks
  std::vector<Seg> nested;  // per-iteration lanes of each nested loop
  double branchCost = 0;
  CsrRow csr;
  // Block-vectorizable kernels (serial loops and flat ParFor rows): no
  // register is loop-carried (read before its first write while also
  // written), so elements are independent
  // and can run in lanes of kBlock with each op applied lane-wise — the same
  // scalar operations in the same per-element order, hence bit-identical.
  // Aliasing between stored and loaded spans is re-checked at run time
  // (blockedAliasOk); args flagged elementwiseOnly are only ever indexed by
  // the induction variable.
  static constexpr std::int32_t kBlock = 16;
  struct ArgUse {
    std::int16_t arg = -1;
    bool elementwiseOnly = true;   // every access at the element's own index
    bool anyElementwise = false;   // at least one such access (needs bounds
                                   // pre-check: ew ops skip per-lane checks)
  };
  bool blockable = false;
  std::vector<ArgUse> loadFloat, storeFloat, loadInt;
};

/// Decides whether a serial kernel can run block-vectorized and classifies
/// its float-arg accesses (see LoopKernel::blockable). The induction register
/// (int 0) is reset by the driver every element and is exempt.
void analyzeBlockable(LoopKernel& k) {
  k.blockable = false;
  constexpr std::size_t R = LoopKernel::kMaxRegs;
  std::array<bool, R> fWritten{}, iWritten{};
  std::array<bool, R> fCarried{}, iCarried{};
  std::array<bool, R> fReadEarly{}, iReadEarly{};
  auto readF = [&](std::int16_t r) {
    if (r >= 0 && !fWritten[static_cast<std::size_t>(r)])
      fReadEarly[static_cast<std::size_t>(r)] = true;
  };
  auto readI = [&](std::int16_t r) {
    if (r > 0 && !iWritten[static_cast<std::size_t>(r)])
      iReadEarly[static_cast<std::size_t>(r)] = true;
  };
  auto writeF = [&](std::int16_t r) {
    if (r >= 0) fWritten[static_cast<std::size_t>(r)] = true;
  };
  bool ivWritten = false;
  auto writeI = [&](std::int16_t r) {
    if (r > 0) iWritten[static_cast<std::size_t>(r)] = true;
    if (r == 0) ivWritten = true;  // induction reg must stay driver-owned
  };
  // Forward dataflow over the straight-line body: which int registers hold
  // exactly the induction value right now. The DSL traces body-local Value
  // copies as IMov chains off reg 0, so indices are rarely reg 0 itself.
  std::array<bool, R> isIv{};
  isIv[0] = true;
  std::unordered_map<std::int16_t, LoopKernel::ArgUse> loads, stores,
      intLoads;
  auto access = [&](std::unordered_map<std::int16_t, LoopKernel::ArgUse>& m,
                    std::int16_t arg, bool elementwise) {
    LoopKernel::ArgUse& u = m[arg];
    u.arg = arg;
    if (elementwise) {
      u.anyElementwise = true;
    } else {
      u.elementwiseOnly = false;
    }
  };
  using K = LoopOp::K;
  for (LoopOp& op : k.ops) {
    switch (op.k) {
      case K::FConst: writeF(op.dst); break;
      case K::FMov: case K::FNeg: case K::FAbs: case K::FSqrt:
        readF(op.a); writeF(op.dst); break;
      case K::FLoad:
        readI(op.a); writeF(op.dst);
        op.ew = isIv[static_cast<std::size_t>(op.a)];
        access(loads, op.arg, op.ew);
        break;
      case K::FStore:
        readI(op.a); readF(op.b);
        op.ew = isIv[static_cast<std::size_t>(op.a)];
        access(stores, op.arg, op.ew);
        break;
      case K::FAdd: case K::FSub: case K::FMul: case K::FDiv:
      case K::FMin: case K::FMax:
        readF(op.a); readF(op.b); writeF(op.dst); break;
      case K::FFromInt: readI(op.a); writeF(op.dst); break;
      case K::IConst:
        writeI(op.dst);
        if (op.dst > 0) isIv[static_cast<std::size_t>(op.dst)] = false;
        break;
      case K::IMov:
        readI(op.a); writeI(op.dst);
        if (op.dst > 0) {
          isIv[static_cast<std::size_t>(op.dst)] =
              isIv[static_cast<std::size_t>(op.a)];
        }
        break;
      case K::INeg: case K::IAbs:
        readI(op.a); writeI(op.dst);
        if (op.dst > 0) isIv[static_cast<std::size_t>(op.dst)] = false;
        break;
      case K::ILoad:
        readI(op.a); writeI(op.dst);
        op.ew = isIv[static_cast<std::size_t>(op.a)];
        access(intLoads, op.arg, op.ew);
        if (op.dst > 0) isIv[static_cast<std::size_t>(op.dst)] = false;
        break;
      case K::IAdd: case K::ISub: case K::IMul: case K::IMin: case K::IMax:
        readI(op.a); readI(op.b); writeI(op.dst);
        if (op.dst > 0) isIv[static_cast<std::size_t>(op.dst)] = false;
        break;
      case K::IFromFloat:
        readF(op.a); writeI(op.dst);
        if (op.dst > 0) isIv[static_cast<std::size_t>(op.dst)] = false;
        break;
      case K::LBegin: case K::LEnd:
        return;  // nested loops: parallel kernels only, never blockable
    }
  }
  if (ivWritten) return;
  for (std::size_t r = 0; r < R; ++r) {
    if ((fReadEarly[r] && fWritten[r]) || (iReadEarly[r] && iWritten[r])) {
      return;  // loop-carried register
    }
  }
  // Stores must be at the element's own index: lane j of a blocked store
  // then touches exactly the index element iv+j touches in the scalar walk,
  // so write order per address is preserved. A scattered store could let two
  // ops' lanes collide in a different order than the scalar schedule.
  for (const auto& [arg, su] : stores) {
    if (!su.elementwiseOnly) return;
    auto lit = loads.find(arg);
    if (lit == loads.end()) continue;
    // Same span loaded and stored: each lane may only see its own element.
    if (!lit->second.elementwiseOnly) return;
  }
  for (const auto& [arg, u] : loads) k.loadFloat.push_back(u);
  for (const auto& [arg, u] : stores) k.storeFloat.push_back(u);
  for (const auto& [arg, u] : intLoads) k.loadInt.push_back(u);
  k.blockable = true;
}

/// Compiles one For statement's body into a LoopKernel, or nothing if the
/// body leaves the supported subset (nested control flow, bools, comparisons,
/// integer division, extended-precision types, …). Bailing is never an error:
/// the generic walk runs the loop instead.
class LoopCompiler {
 public:
  LoopCompiler(const FlatCodelet& flat, const ipu::CostModel& cost)
      : flat_(flat), cost_(cost) {}

  std::optional<LoopKernel> compile(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    if (fs.var < 0 || fs.body < 0) return std::nullopt;
    k_ = LoopKernel{};
    iter_ = ipu::LaneCycles{};
    homes_.clear();
    constInts_.clear();
    loopVar_ = fs.var;
    // Int register 0 is the induction variable.
    k_.numIntRegs = 1;
    try {
      for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(fs.body)]) {
        compileStmt(flat_.stmts[static_cast<std::size_t>(sid)]);
      }
    } catch (const Bail&) {
      return std::nullopt;
    }
    k_.iterFp = iter_.fp();
    k_.iterMem = iter_.mem();
    k_.iterCtrl = iter_.ctrl();
    matchNamed(forId);
    analyzeBlockable(k_);
    return std::move(k_);
  }

  /// Compiles a whole ParFor row body — straight-line code plus single-level
  /// counted unit-step For loops — into one parallel kernel. Bailing is never
  /// an error: the generic worker-pool walk runs the loop instead.
  std::optional<LoopKernel> compilePar(std::int32_t parForId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(parForId)];
    if (fs.var < 0 || fs.body < 0) return std::nullopt;
    k_ = LoopKernel{};
    iter_ = ipu::LaneCycles{};
    homes_.clear();
    constInts_.clear();
    retired_.clear();
    nestedVars_.clear();
    segLanes_.assign(1, ipu::LaneCycles{});
    nestedLanes_.clear();
    loopVar_ = fs.var;
    parMode_ = true;
    inNested_ = false;
    k_.isPar = true;
    k_.numIntRegs = 1;  // int register 0 is the row index
    bool ok = true;
    try {
      for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(fs.body)]) {
        compileStmt(flat_.stmts[static_cast<std::size_t>(sid)]);
      }
    } catch (const Bail&) {
      ok = false;
    }
    parMode_ = false;
    inNested_ = false;
    if (!ok) return std::nullopt;
    // Nested induction variables do not survive the kernel: nothing outside
    // the row body may read them.
    const std::unordered_set<int> outside = varsReadOutside(parForId);
    for (int v : nestedVars_) {
      if (outside.count(v) != 0) return std::nullopt;
    }
    for (const ipu::LaneCycles& l : segLanes_) {
      k_.segs.push_back({l.fp(), l.mem(), l.ctrl()});
    }
    for (const ipu::LaneCycles& l : nestedLanes_) {
      k_.nested.push_back({l.fp(), l.mem(), l.ctrl()});
    }
    k_.branchCost = cost_.workerCycles(ipu::Op::Branch, DType::Int32);
    if (k_.nested.size() == 2) matchCsrRow(parForId);
    analyzeBlockable(k_);
    return std::move(k_);
  }

 private:
  struct Bail {};
  struct Val {
    std::int16_t reg;
    bool isFloat;
  };
  struct Home {
    std::int16_t reg;
    bool isFloat;
    bool assigned = false;
    // Nested-loop ordinal whose body created this home via an Assign, or -1.
    // A var first defined inside a loop that may run zero iterations has no
    // defined value outside that loop, so reads elsewhere must bail.
    std::int16_t definedLoop = -1;
  };

  [[noreturn]] static void bail() { throw Bail{}; }

  std::int16_t newFloat() {
    if (k_.numFloatRegs >= static_cast<int>(LoopKernel::kMaxRegs)) bail();
    return static_cast<std::int16_t>(k_.numFloatRegs++);
  }
  std::int16_t newInt() {
    if (k_.numIntRegs >= static_cast<int>(LoopKernel::kMaxRegs)) bail();
    return static_cast<std::int16_t>(k_.numIntRegs++);
  }

  void emit(LoopOp::K kk, std::int16_t dst, std::int16_t a = -1,
            std::int16_t b = -1, std::int16_t arg = -1) {
    LoopOp op;
    op.k = kk;
    op.dst = dst;
    op.a = a;
    op.b = b;
    op.arg = arg;
    k_.ops.push_back(op);
  }

  void chargeIter(ipu::Op op, DType t) {
    if (parMode_) {
      (inNested_ ? nestedLanes_[curNested_] : segLanes_.back())
          .add(cost_, op, t);
    } else {
      iter_.add(cost_, op, t);
    }
  }

  std::int16_t guardArg(std::int32_t arg, bool isFloat) {
    if (arg < 0 || arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs)) bail();
    auto& list = isFloat ? k_.floatArgs : k_.intArgs;
    const auto a16 = static_cast<std::int16_t>(arg);
    if (std::find(list.begin(), list.end(), a16) == list.end()) list.push_back(a16);
    return a16;
  }

  std::int16_t toInt(Val v) {
    if (!v.isFloat) return v.reg;
    const std::int16_t dst = newInt();
    emit(LoopOp::K::IFromFloat, dst, v.reg);  // matches Scalar::castTo(Int32)
    return dst;
  }

  std::int16_t toFloat(Val v) {
    if (v.isFloat) return v.reg;
    const std::int16_t dst = newFloat();
    emit(LoopOp::K::FFromInt, dst, v.reg);  // matches Scalar::castTo(Float32)
    return dst;
  }

  Val compileExpr(std::int32_t id) {
    if (id < 0) bail();
    const FlatExpr& e = flat_.exprs[static_cast<std::size_t>(id)];
    switch (e.kind) {
      case Expr::Kind::Const: {
        if (e.constant.type() == DType::Float32) {
          const std::int16_t dst = newFloat();
          LoopOp op;
          op.k = LoopOp::K::FConst;
          op.dst = dst;
          op.fimm = e.constant.asFloat();
          k_.ops.push_back(op);
          return {dst, true};
        }
        if (e.constant.type() == DType::Int32) {
          const std::int16_t dst = newInt();
          LoopOp op;
          op.k = LoopOp::K::IConst;
          op.dst = dst;
          op.iimm = e.constant.asInt();
          k_.ops.push_back(op);
          return {dst, false};
        }
        bail();
      }
      case Expr::Kind::Var: {
        if (parMode_) {
          if (inNested_ && e.var == nestedVar_) return {nestedIvReg_, false};
          if (retired_.count(e.var) != 0) bail();
        }
        if (e.var == loopVar_) return {0, false};
        auto it = homes_.find(e.var);
        if (it != homes_.end()) {
          // A home first defined inside a nested loop only holds a value
          // while that loop's body runs (the loop may zero-trip).
          const Home& h = it->second;
          if (h.definedLoop >= 0 &&
              (!inNested_ ||
               static_cast<std::size_t>(h.definedLoop) != curNested_)) {
            bail();
          }
          return {h.reg, h.isFloat};
        }
        // First touch is a read: the var is loop-carried or loop-invariant;
        // seed its home register from the interpreter's var slot on entry.
        bool isFloat;
        if (e.type == DType::Float32) {
          isFloat = true;
        } else if (e.type == DType::Int32) {
          isFloat = false;
        } else {
          bail();
        }
        const std::int16_t reg = isFloat ? newFloat() : newInt();
        (isFloat ? k_.seedFloat : k_.seedInt).emplace_back(e.var, reg);
        homes_.emplace(e.var, Home{reg, isFloat, false});
        return {reg, isFloat};
      }
      case Expr::Kind::ArgLoad: {
        const std::int16_t idx = toInt(compileExpr(e.a));
        if (e.type == DType::Float32) {
          const std::int16_t arg = guardArg(e.arg, /*isFloat=*/true);
          chargeIter(ipu::Op::Load, DType::Float32);
          const std::int16_t dst = newFloat();
          emit(LoopOp::K::FLoad, dst, idx, -1, arg);
          return {dst, true};
        }
        if (e.type == DType::Int32) {
          const std::int16_t arg = guardArg(e.arg, /*isFloat=*/false);
          chargeIter(ipu::Op::Load, DType::Int32);
          const std::int16_t dst = newInt();
          emit(LoopOp::K::ILoad, dst, idx, -1, arg);
          return {dst, false};
        }
        bail();
      }
      case Expr::Kind::ArgSize: {
        if (e.arg < 0 || e.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs))
          bail();
        const std::int16_t dst = newInt();
        k_.sizeSeeds.emplace_back(dst, static_cast<std::int16_t>(e.arg));
        chargeIter(ipu::Op::IntArith, DType::Int32);
        return {dst, false};
      }
      case Expr::Kind::WorkerId: {
        if (k_.workerReg < 0) k_.workerReg = newInt();
        return {k_.workerReg, false};
      }
      case Expr::Kind::Binary: {
        switch (e.bop) {
          case BinOp::Add: case BinOp::Sub: case BinOp::Mul: case BinOp::Div:
          case BinOp::Min: case BinOp::Max:
            break;
          default:
            bail();  // comparisons/logic produce bools; Mod needs checks
        }
        const Val a = compileExpr(e.a);
        const Val b = compileExpr(e.b);
        if (!a.isFloat && !b.isFloat) {
          if (e.bop == BinOp::Div) bail();  // zero check in generic walk
          chargeIter(ipu::Op::IntArith, DType::Int32);
          const std::int16_t dst = newInt();
          LoopOp::K kk;
          switch (e.bop) {
            case BinOp::Add: kk = LoopOp::K::IAdd; break;
            case BinOp::Sub: kk = LoopOp::K::ISub; break;
            case BinOp::Mul: kk = LoopOp::K::IMul; break;
            case BinOp::Min: kk = LoopOp::K::IMin; break;
            default: kk = LoopOp::K::IMax; break;
          }
          emit(kk, dst, a.reg, b.reg);
          return {dst, false};
        }
        // Promotion to Float32 (casts inside evalBinaryScalar are uncharged).
        const std::int16_t fa = toFloat(a);
        const std::int16_t fb = toFloat(b);
        chargeIter(costOpFor(e.bop, DType::Float32), DType::Float32);
        const std::int16_t dst = newFloat();
        LoopOp::K kk;
        switch (e.bop) {
          case BinOp::Add: kk = LoopOp::K::FAdd; break;
          case BinOp::Sub: kk = LoopOp::K::FSub; break;
          case BinOp::Mul: kk = LoopOp::K::FMul; break;
          case BinOp::Div: kk = LoopOp::K::FDiv; break;
          case BinOp::Min: kk = LoopOp::K::FMin; break;
          default: kk = LoopOp::K::FMax; break;
        }
        emit(kk, dst, fa, fb);
        return {dst, true};
      }
      case Expr::Kind::Unary: {
        if (e.uop == UnOp::Not) bail();
        const Val a = compileExpr(e.a);
        const DType at = a.isFloat ? DType::Float32 : DType::Int32;
        chargeIter(costOpFor(e.uop), at);
        if (e.uop == UnOp::Sqrt) {
          const std::int16_t fa = toFloat(a);  // generic casts ints to f32
          const std::int16_t dst = newFloat();
          emit(LoopOp::K::FSqrt, dst, fa);
          return {dst, true};
        }
        const std::int16_t dst = a.isFloat ? newFloat() : newInt();
        emit(a.isFloat
                 ? (e.uop == UnOp::Neg ? LoopOp::K::FNeg : LoopOp::K::FAbs)
                 : (e.uop == UnOp::Neg ? LoopOp::K::INeg : LoopOp::K::IAbs),
             dst, a.reg);
        return {dst, a.isFloat};
      }
      case Expr::Kind::Cast: {
        const Val a = compileExpr(e.a);
        // Only same-width casts are uncharged and representable here;
        // double-word / float64 targets bail (they would also be charged).
        if (e.type == DType::Float32) return {toFloat(a), true};
        if (e.type == DType::Int32) return {toInt(a), false};
        bail();
      }
      case Expr::Kind::Select:
        bail();  // data-dependent evaluation order
    }
    GRAPHENE_UNREACHABLE("bad expr kind");
  }

  void compileStmt(const FlatStmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        if (s.var == loopVar_) bail();  // rewriting the induction variable
        if (parMode_ && (retired_.count(s.var) != 0 ||
                         (inNested_ && s.var == nestedVar_))) {
          bail();
        }
        const Val v = compileExpr(s.value);
        auto it = homes_.find(s.var);
        if (it == homes_.end()) {
          const std::int16_t reg = v.isFloat ? newFloat() : newInt();
          Home h{reg, v.isFloat, false};
          if (parMode_ && inNested_) {
            h.definedLoop = static_cast<std::int16_t>(curNested_);
          }
          it = homes_.emplace(s.var, h).first;
        }
        Home& h = it->second;
        if (h.isFloat != v.isFloat) bail();  // var changes type across loop
        emit(v.isFloat ? LoopOp::K::FMov : LoopOp::K::IMov, h.reg, v.reg);
        if (!h.assigned) {
          h.assigned = true;
          (h.isFloat ? k_.writeFloat : k_.writeInt).emplace_back(s.var, h.reg);
        }
        // Literal ints trace as var assignments (Value(int) declares a var),
        // so nested-loop step resolution needs the var → constant map. An
        // assignment inside a nested loop is conditional (the loop may run
        // zero iterations), so it only ever invalidates.
        const FlatExpr& ve = flat_.exprs[static_cast<std::size_t>(s.value)];
        if (!inNested_ && ve.kind == Expr::Kind::Const &&
            ve.constant.type() == DType::Int32) {
          constInts_[s.var] = ve.constant.asInt();
        } else {
          constInts_.erase(s.var);
        }
        return;
      }
      case Stmt::Kind::StoreArg: {
        const std::int16_t idx = toInt(compileExpr(s.index));
        const std::int16_t val = toFloat(compileExpr(s.value));
        // Only Float32 destinations: integer spans are read-only views and
        // extended types have no raw span at all.
        const std::int16_t arg = guardArg(s.arg, /*isFloat=*/true);
        chargeIter(ipu::Op::Store, DType::Float32);
        emit(LoopOp::K::FStore, -1, idx, val, arg);
        return;
      }
      case Stmt::Kind::For: {
        // A parallel row body may contain one level of serial counted loops;
        // everywhere else nested control flow stays on the generic walk.
        if (!parMode_ || inNested_) bail();
        compileNestedFor(s);
        return;
      }
      case Stmt::Kind::If:
      case Stmt::Kind::While:
      case Stmt::Kind::ParFor:
        bail();  // nested control flow stays on the generic walk
    }
    GRAPHENE_UNREACHABLE("bad stmt kind");
  }

  /// Lowers a serial unit-step For inside a ParFor row. The header's bound
  /// evaluation and setup charges land in the current segment — exactly where
  /// the generic walk accumulates them before its loop-entry branch flush —
  /// then the body's per-iteration charges open a fresh lane block.
  void compileNestedFor(const FlatStmt& s) {
    if (s.var < 0 || s.body < 0) bail();
    if (s.var == loopVar_ || homes_.count(s.var) != 0 ||
        retired_.count(s.var) != 0) {
      bail();
    }
    if (s.step >= 0) {
      // The step may be a literal Const or a read of a var holding a known
      // integer constant (DSL int literals trace as var assignments).
      const FlatExpr& st = flat_.exprs[static_cast<std::size_t>(s.step)];
      std::int32_t stepVal = 0;
      if (st.kind == Expr::Kind::Const && st.constant.type() == DType::Int32) {
        stepVal = st.constant.asInt();
      } else if (st.kind == Expr::Kind::Var) {
        auto cit = constInts_.find(st.var);
        if (cit == constInts_.end()) bail();
        stepVal = cit->second;
      } else {
        bail();
      }
      if (stepVal != 1) bail();
    }
    if (nestedLanes_.size() >= LoopKernel::kMaxNested) bail();
    const std::int16_t beginReg = toInt(compileExpr(s.begin));
    const std::int16_t endReg = toInt(compileExpr(s.end));
    chargeIter(ipu::Op::IntArith, DType::Int32);  // loop setup, pre-branch
    const auto loopIdx = static_cast<std::int16_t>(nestedLanes_.size());
    nestedLanes_.emplace_back();
    const std::int16_t iv = newInt();
    const auto beginPc = static_cast<std::int32_t>(k_.ops.size());
    emit(LoopOp::K::LBegin, iv, beginReg, endReg, loopIdx);
    inNested_ = true;
    curNested_ = static_cast<std::size_t>(loopIdx);
    nestedVar_ = s.var;
    nestedIvReg_ = iv;
    for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(s.body)]) {
      compileStmt(flat_.stmts[static_cast<std::size_t>(sid)]);
    }
    inNested_ = false;
    nestedVar_ = -1;
    LoopOp endOp;
    endOp.k = LoopOp::K::LEnd;
    endOp.a = iv;
    endOp.iimm = beginPc;
    k_.ops.push_back(endOp);
    k_.ops[static_cast<std::size_t>(beginPc)].iimm =
        static_cast<std::int32_t>(k_.ops.size()) - 1;
    retired_.insert(s.var);
    nestedVars_.push_back(s.var);
    segLanes_.emplace_back();
  }

  // ---- named-pattern recognition ----------------------------------------

  const FlatExpr& resolve(std::int32_t id,
                          const std::unordered_map<int, std::int32_t>& env) {
    const FlatExpr* e = &flat_.exprs[static_cast<std::size_t>(id)];
    while (e->kind == Expr::Kind::Var) {
      auto it = env.find(e->var);
      if (it == env.end()) break;
      e = &flat_.exprs[static_cast<std::size_t>(it->second)];
    }
    return *e;
  }

  bool isLoopIndex(std::int32_t id,
                   const std::unordered_map<int, std::int32_t>& env) {
    const FlatExpr& e = resolve(id, env);
    return e.kind == Expr::Kind::Var && e.var == loopVar_;
  }

  /// Matches a resolved expression as `args[A][loopVar]` with A Float32.
  bool isLoad(const FlatExpr& e,
              const std::unordered_map<int, std::int32_t>& env,
              std::int16_t& outArg) {
    if (e.kind != Expr::Kind::ArgLoad || e.type != DType::Float32) return false;
    if (!isLoopIndex(e.a, env)) return false;
    outArg = static_cast<std::int16_t>(e.arg);
    return true;
  }

  /// Matches a loop-invariant Float32 scalar: a literal, or a var the body
  /// never assigns (e.g. a hoisted broadcast operand).
  bool isScalar(const FlatExpr& e, const std::unordered_set<int>& assigned,
                NamedLoop& nm) {
    if (e.kind == Expr::Kind::Const && e.constant.type() == DType::Float32) {
      nm.sIsConst = true;
      nm.sConst = e.constant.asFloat();
      return true;
    }
    if (e.kind == Expr::Kind::Var && e.type == DType::Float32 &&
        e.var != loopVar_ && assigned.count(e.var) == 0) {
      nm.sVar = e.var;
      return true;
    }
    return false;
  }

  /// Collects every var id read by statements outside this For's body (the
  /// For's own bound expressions count as outside).
  void collectBodyStmts(std::int32_t listId,
                        std::unordered_set<std::int32_t>& out) {
    if (listId < 0) return;
    for (std::int32_t sid : flat_.lists[static_cast<std::size_t>(listId)]) {
      out.insert(sid);
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(sid)];
      collectBodyStmts(s.body, out);
      collectBodyStmts(s.elseBody, out);
    }
  }

  std::unordered_set<int> varsReadOutside(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    std::unordered_set<std::int32_t> bodyStmts;
    collectBodyStmts(fs.body, bodyStmts);
    std::unordered_set<int> reads;
    std::function<void(std::int32_t)> walkExpr = [&](std::int32_t id) {
      if (id < 0) return;
      const FlatExpr& e = flat_.exprs[static_cast<std::size_t>(id)];
      if (e.kind == Expr::Kind::Var) reads.insert(e.var);
      walkExpr(e.a);
      walkExpr(e.b);
      walkExpr(e.c);
    };
    for (std::int32_t sid = 0;
         sid < static_cast<std::int32_t>(flat_.stmts.size()); ++sid) {
      if (bodyStmts.count(sid) != 0) continue;
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(sid)];
      walkExpr(s.index);
      walkExpr(s.value);
      walkExpr(s.cond);
      walkExpr(s.begin);
      walkExpr(s.end);
      walkExpr(s.step);
    }
    return reads;
  }

  void matchNamed(std::int32_t forId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(forId)];
    const auto& body = flat_.lists[static_cast<std::size_t>(fs.body)];
    if (body.empty()) return;
    // Unit step only. DSL literals trace as var reads (Value(int) declares a
    // var), so the step is usually a Var here — that's fine: the runtime
    // dispatch re-checks step == 1 before using the named kernel and falls
    // back to the VM otherwise. Only a *known* non-unit constant can never
    // pass that gate, so only that case disables matching.
    if (fs.step >= 0) {
      const FlatExpr& st = flat_.exprs[static_cast<std::size_t>(fs.step)];
      if (st.kind == Expr::Kind::Const &&
          (st.constant.type() != DType::Int32 || st.constant.asInt() != 1)) {
        return;
      }
    }
    // All statements but the last must be single-assignment temps.
    std::unordered_map<int, std::int32_t> env;
    std::unordered_set<int> assigned;
    for (std::size_t i = 0; i + 1 < body.size(); ++i) {
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(body[i])];
      if (s.kind != Stmt::Kind::Assign) return;
      if (!env.emplace(s.var, s.value).second) return;  // shadowed def
      assigned.insert(s.var);
    }
    const FlatStmt& last = flat_.stmts[static_cast<std::size_t>(body.back())];

    NamedLoop nm;
    if (last.kind == Stmt::Kind::StoreArg) {
      if (last.arg < 0 ||
          last.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs) ||
          !isLoopIndex(last.index, env)) {
        return;
      }
      nm.dstArg = static_cast<std::int16_t>(last.arg);
      const FlatExpr& v = resolve(last.value, env);
      if (isLoad(v, env, nm.aArg)) {
        nm.p = NamedLoop::P::Copy;
      } else if (v.kind == Expr::Kind::Binary && v.bop == BinOp::Mul) {
        const FlatExpr& l = resolve(v.a, env);
        const FlatExpr& r = resolve(v.b, env);
        if (isScalar(l, assigned, nm) && isLoad(r, env, nm.aArg)) {
          nm.p = NamedLoop::P::Scale;
          nm.sFirst = true;
        } else if (isLoad(l, env, nm.aArg) && isScalar(r, assigned, nm)) {
          nm.p = NamedLoop::P::Scale;
          nm.sFirst = false;
        } else {
          return;
        }
      } else if (v.kind == Expr::Kind::Binary &&
                 (v.bop == BinOp::Add || v.bop == BinOp::Sub)) {
        nm.isSub = v.bop == BinOp::Sub;
        const FlatExpr& l = resolve(v.a, env);
        const FlatExpr& r = resolve(v.b, env);
        auto asMul = [&](const FlatExpr& e, std::int16_t& arg) {
          if (e.kind != Expr::Kind::Binary || e.bop != BinOp::Mul) return false;
          const FlatExpr& ml = resolve(e.a, env);
          const FlatExpr& mr = resolve(e.b, env);
          if (isScalar(ml, assigned, nm) && isLoad(mr, env, arg)) {
            nm.sFirst = true;
            return true;
          }
          if (isLoad(ml, env, arg) && isScalar(mr, assigned, nm)) {
            nm.sFirst = false;
            return true;
          }
          return false;
        };
        if (isLoad(l, env, nm.aArg) && asMul(r, nm.bArg)) {
          nm.p = NamedLoop::P::Axpy;
          nm.loadFirst = true;
        } else if (asMul(l, nm.bArg) && isLoad(r, env, nm.aArg)) {
          nm.p = NamedLoop::P::Axpy;
          nm.loadFirst = false;
        } else if (isLoad(l, env, nm.aArg) && isLoad(r, env, nm.bArg)) {
          nm.p = NamedLoop::P::AddVec;
        } else {
          return;
        }
      } else {
        return;
      }
    } else if (last.kind == Stmt::Kind::Assign) {
      // Reduction partial: acc = acc + X, acc assigned nowhere else.
      if (assigned.count(last.var) != 0) return;
      const FlatExpr& v = resolve(last.value, env);
      if (v.kind != Expr::Kind::Binary || v.bop != BinOp::Add) return;
      const FlatExpr& l = resolve(v.a, env);
      const FlatExpr& r = resolve(v.b, env);
      auto isAcc = [&](const FlatExpr& e) {
        return e.kind == Expr::Kind::Var && e.var == last.var &&
               e.type == DType::Float32;
      };
      const FlatExpr* x = nullptr;
      if (isAcc(l)) {
        nm.accFirst = true;
        x = &r;
      } else if (isAcc(r)) {
        nm.accFirst = false;
        x = &l;
      } else {
        return;
      }
      nm.accVar = last.var;
      if (isLoad(*x, env, nm.aArg)) {
        nm.dotSingle = true;
      } else if (x->kind == Expr::Kind::Binary && x->bop == BinOp::Mul &&
                 isLoad(resolve(x->a, env), env, nm.aArg) &&
                 isLoad(resolve(x->b, env), env, nm.bArg)) {
        nm.dotSingle = false;
      } else {
        return;
      }
      nm.p = NamedLoop::P::DotPartial;
      assigned.insert(last.var);  // counts as assigned for the outside scan
    } else {
      return;
    }

    // The named kernels do not materialise the per-iteration temps, so no
    // statement outside the loop may read them (the accumulator and the
    // induction variable are restored explicitly and are exempt).
    std::unordered_set<int> outside = varsReadOutside(forId);
    for (int v : assigned) {
      if (v == nm.accVar) continue;
      if (outside.count(v) != 0) return;
    }
    k_.named = nm;
  }

  /// Matches `e` (already resolved) as `args[A][idxVar]` of element type `t`.
  bool isIdxLoad(const FlatExpr& e, int idxVar, DType t,
                 const std::unordered_map<int, std::int32_t>& env,
                 std::int16_t& outArg) {
    if (e.kind != Expr::Kind::ArgLoad || e.type != t) return false;
    if (e.arg < 0 || e.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs))
      return false;
    const FlatExpr& ix = resolve(e.a, env);
    if (ix.kind != Expr::Kind::Var || ix.var != idxVar) return false;
    outArg = static_cast<std::int16_t>(e.arg);
    return true;
  }

  /// Recognises the two-run CSR SpMV row body (see CsrRow). Matching is
  /// structural over the flat IR with temps resolved through their defining
  /// assignments, so the literal-int vars the DSL traces are looked through.
  /// Everything the match does not pin (dead temps, write-backs) stays exact
  /// because the executor still runs the final row through the register VM.
  void matchCsrRow(std::int32_t parForId) {
    const FlatStmt& fs = flat_.stmts[static_cast<std::size_t>(parForId)];
    const auto& body = flat_.lists[static_cast<std::size_t>(fs.body)];
    if (body.size() < 4) return;

    // Shape scan: top level is single-assignment temps, two Fors, and a
    // trailing StoreArg.
    std::unordered_map<int, std::int32_t> env;
    const FlatStmt* fors[2] = {nullptr, nullptr};
    std::size_t forPos[2] = {0, 0};
    const FlatStmt* store = nullptr;
    std::unordered_map<int, std::size_t> assignPos;
    for (std::size_t i = 0; i < body.size(); ++i) {
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(body[i])];
      if (s.kind == Stmt::Kind::Assign) {
        if (i + 1 == body.size()) return;
        if (!env.emplace(s.var, s.value).second) return;
        assignPos.emplace(s.var, i);
      } else if (s.kind == Stmt::Kind::For) {
        if (fors[1] != nullptr) return;
        const std::size_t slot = fors[0] == nullptr ? 0 : 1;
        fors[slot] = &s;
        forPos[slot] = i;
      } else if (s.kind == Stmt::Kind::StoreArg && i + 1 == body.size()) {
        store = &s;
      } else {
        return;
      }
    }
    if (fors[1] == nullptr || store == nullptr) return;

    // Every var assigned anywhere in the row body (loop bodies included):
    // the owned-count operand must not be one, since the native rows read it
    // once from the interpreter's var slot.
    std::unordered_set<std::int32_t> bodyStmts;
    collectBodyStmts(fs.body, bodyStmts);
    std::unordered_set<int> assignedAnywhere;
    for (std::int32_t sid : bodyStmts) {
      const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(sid)];
      if (s.kind == Stmt::Kind::Assign) assignedAnywhere.insert(s.var);
    }

    CsrRow m;
    // y[r] = acc — the store value must be a direct read of the accumulator.
    const FlatExpr& sv = flat_.exprs[static_cast<std::size_t>(store->value)];
    if (sv.kind != Expr::Kind::Var || sv.type != DType::Float32) return;
    const int accVar = sv.var;
    {
      const FlatExpr& ix = resolve(store->index, env);
      if (ix.kind != Expr::Kind::Var || ix.var != loopVar_) return;
    }
    if (store->arg < 0 ||
        store->arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs)) {
      return;
    }
    m.yArg = static_cast<std::int16_t>(store->arg);

    // acc = d[r] * x[r], initialised before the first loop (otherwise the
    // loop bodies would fold onto a seeded value, not this product).
    auto accIt = env.find(accVar);
    auto accPosIt = assignPos.find(accVar);
    if (accIt == env.end() || accPosIt == assignPos.end()) return;
    if (accPosIt->second > forPos[0]) return;
    const std::int32_t accInit = accIt->second;
    // Resolution must not look through the accumulator itself.
    env.erase(accVar);
    {
      const FlatExpr& init = flat_.exprs[static_cast<std::size_t>(accInit)];
      if (init.kind != Expr::Kind::Binary || init.bop != BinOp::Mul) return;
      if (!isIdxLoad(resolve(init.a, env), loopVar_, DType::Float32, env,
                     m.dArg) ||
          !isIdxLoad(resolve(init.b, env), loopVar_, DType::Float32, env,
                     m.xArg)) {
        return;
      }
    }

    // Loop bounds: [rp[r], sp[r]) then [sp[r], rp[r+1]), both unit step.
    auto unitStep = [&](const FlatStmt& f) {
      if (f.step < 0) return true;
      const FlatExpr& st = resolve(f.step, env);
      return st.kind == Expr::Kind::Const &&
             st.constant.type() == DType::Int32 && st.constant.asInt() == 1;
    };
    std::int16_t spAgain = -1, rpAgain = -1;
    if (!unitStep(*fors[0]) || !unitStep(*fors[1])) return;
    if (!isIdxLoad(resolve(fors[0]->begin, env), loopVar_, DType::Int32, env,
                   m.rpArg) ||
        !isIdxLoad(resolve(fors[0]->end, env), loopVar_, DType::Int32, env,
                   m.spArg) ||
        !isIdxLoad(resolve(fors[1]->begin, env), loopVar_, DType::Int32, env,
                   spAgain) ||
        spAgain != m.spArg) {
      return;
    }
    {
      // rp[r + 1]
      const FlatExpr& e = resolve(fors[1]->end, env);
      if (e.kind != Expr::Kind::ArgLoad || e.type != DType::Int32) return;
      if (e.arg != m.rpArg) return;
      const FlatExpr& ix = resolve(e.a, env);
      if (ix.kind != Expr::Kind::Binary || ix.bop != BinOp::Add) return;
      const FlatExpr& l = resolve(ix.a, env);
      const FlatExpr& r = resolve(ix.b, env);
      if (l.kind != Expr::Kind::Var || l.var != loopVar_) return;
      if (r.kind != Expr::Kind::Const || r.constant.type() != DType::Int32 ||
          r.constant.asInt() != 1) {
        return;
      }
    }

    // Loop bodies: temps + `acc = acc + a[k] * <gather>`.
    auto matchBody = [&](const FlatStmt& f, bool halo) {
      if (f.body < 0) return false;
      const auto& list = flat_.lists[static_cast<std::size_t>(f.body)];
      if (list.empty()) return false;
      std::unordered_map<int, std::int32_t> envB = env;
      for (std::size_t i = 0; i + 1 < list.size(); ++i) {
        const FlatStmt& s = flat_.stmts[static_cast<std::size_t>(list[i])];
        if (s.kind != Stmt::Kind::Assign || s.var == accVar) return false;
        if (!envB.emplace(s.var, s.value).second) return false;
      }
      const FlatStmt& upd =
          flat_.stmts[static_cast<std::size_t>(list.back())];
      if (upd.kind != Stmt::Kind::Assign || upd.var != accVar) return false;
      const FlatExpr& v = resolve(upd.value, envB);
      if (v.kind != Expr::Kind::Binary || v.bop != BinOp::Add) return false;
      const FlatExpr& l = resolve(v.a, envB);
      if (l.kind != Expr::Kind::Var || l.var != accVar) return false;
      const FlatExpr& mul = resolve(v.b, envB);
      if (mul.kind != Expr::Kind::Binary || mul.bop != BinOp::Mul)
        return false;
      std::int16_t aArg = -1, cArg = -1;
      if (!isIdxLoad(resolve(mul.a, envB), f.var, DType::Float32, envB, aArg))
        return false;
      const FlatExpr& gather = resolve(mul.b, envB);
      if (gather.kind != Expr::Kind::ArgLoad ||
          gather.type != DType::Float32) {
        return false;
      }
      const FlatExpr& gix = resolve(gather.a, envB);
      if (!halo) {
        // x[c[k]]
        if (gather.arg != m.xArg) return false;
        if (!isIdxLoad(gix, f.var, DType::Int32, envB, cArg)) return false;
        m.aArg = aArg;
        m.cArg = cArg;
      } else {
        // h[c[k] - owned]
        if (gather.arg < 0 ||
            gather.arg >= static_cast<std::int32_t>(LoopKernel::kMaxArgs)) {
          return false;
        }
        m.hArg = static_cast<std::int16_t>(gather.arg);
        if (gix.kind != Expr::Kind::Binary || gix.bop != BinOp::Sub)
          return false;
        if (!isIdxLoad(resolve(gix.a, envB), f.var, DType::Int32, envB, cArg))
          return false;
        if (cArg != m.cArg || aArg != m.aArg) return false;
        const FlatExpr& owned = resolve(gix.b, envB);
        if (owned.kind != Expr::Kind::Var || owned.type != DType::Int32 ||
            owned.var == loopVar_ || owned.var == f.var ||
            assignedAnywhere.count(owned.var) != 0) {
          return false;
        }
        m.ownedVar = owned.var;
      }
      return true;
    };
    if (!matchBody(*fors[0], /*halo=*/false) ||
        !matchBody(*fors[1], /*halo=*/true)) {
      return;
    }
    m.valid = true;
    k_.csr = m;
  }

  const FlatCodelet& flat_;
  const ipu::CostModel& cost_;
  LoopKernel k_;
  ipu::LaneCycles iter_;
  std::unordered_map<int, Home> homes_;
  int loopVar_ = -1;
  // Parallel (ParFor) mode state.
  bool parMode_ = false;
  bool inNested_ = false;
  std::size_t curNested_ = 0;
  int nestedVar_ = -1;
  std::int16_t nestedIvReg_ = -1;
  std::vector<ipu::LaneCycles> segLanes_;
  std::vector<ipu::LaneCycles> nestedLanes_;
  std::unordered_set<int> retired_;
  // Vars currently holding a known integer constant (program order).
  std::unordered_map<int, std::int32_t> constInts_;
  std::vector<int> nestedVars_;
};

}  // namespace

// ---------------------------------------------------------------------------
// CompiledCodelet + flat executor.
// ---------------------------------------------------------------------------

class CompiledCodelet {
 public:
  FlatCodelet flat;
  std::vector<LoopKernel> kernels;
  ipu::CostModel cost;
  std::size_t numWorkers = 6;

  // Whole-codelet cycle polynomial: when the root is a sequence of counted
  // unit-step For loops with compiled kernels and Const/ArgSize bounds, the
  // per-vertex cost is a closed form in the trip counts, evaluated once per
  // execution instead of accumulated per op (the walk then runs with lane
  // charging suppressed). GRAPHENE_VERIFY_CYCLES=1 runs the charged walk too
  // and asserts exact equality.
  struct Bound {
    bool isArgSize = false;
    std::int32_t value = 0;  // constant, or the arg index for ArgSize
  };
  struct StaticLoop {
    Bound begin, end;
    double iterFp = 0, iterMem = 0, iterCtrl = 0;
  };
  struct StaticCost {
    bool valid = false;
    std::vector<LoopKernel::Seg> segs;  // loops.size()+1 blocks
    std::vector<StaticLoop> loops;
    double branchCost = 0;
    // Union of the loop kernels' runtime dtype guards: if these hold, every
    // loop takes its bulk path and the polynomial is exact.
    std::vector<std::int16_t> floatArgs, intArgs;
  };
  StaticCost staticCost;
};

namespace {

std::atomic<bool> g_fastPaths{[] {
  const char* e = std::getenv("GRAPHENE_NO_FASTPATH");
  return !(e != nullptr && e[0] != '\0' && e[0] != '0');
}()};

std::atomic<bool> g_verifyCycles{[] {
  const char* e = std::getenv("GRAPHENE_VERIFY_CYCLES");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}()};

/// One execution of a compiled codelet over a vertex. Cycle accounting is
/// identical to the original tree-walking interpreter: ops accumulate into a
/// LaneCycles block (fp/mem overlap); control flow flushes the block.
class FlatExec {
 public:
  FlatExec(const CompiledCodelet& cc, graph::VertexContext& ctx,
           bool charging = true)
      : cc_(cc), ctx_(ctx),
        vars_(static_cast<std::size_t>(cc.flat.numVars)),
        fastPaths_(g_fastPaths.load(std::memory_order_relaxed)),
        charging_(charging) {}

  double run() {
    runList(cc_.flat.root);
    flush();
    return total_;
  }

 private:
  void flush() {
    total_ += lanes_.total();
    lanes_ = ipu::LaneCycles{};
  }

  void charge(ipu::Op op, DType t) {
    if (charging_) lanes_.add(cc_.cost, op, t);
  }

  void chargeBranch() {
    flush();
    if (charging_) {
      total_ += cc_.cost.workerCycles(ipu::Op::Branch, DType::Int32);
    }
  }

  const FlatExpr& expr(std::int32_t id) const {
    return cc_.flat.exprs[static_cast<std::size_t>(id)];
  }

  Scalar eval(std::int32_t id) {
    GRAPHENE_DCHECK(id >= 0, "null expression");
    const FlatExpr& e = expr(id);
    switch (e.kind) {
      case Expr::Kind::Const:
        return e.constant;
      case Expr::Kind::Var:
        GRAPHENE_DCHECK(e.var >= 0 &&
                            static_cast<std::size_t>(e.var) < vars_.size(),
                        "bad var slot");
        return vars_[static_cast<std::size_t>(e.var)];
      case Expr::Kind::ArgLoad: {
        Scalar idx = eval(e.a);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Load, ctx_.argType(static_cast<std::size_t>(e.arg)));
        return ctx_.load(static_cast<std::size_t>(e.arg),
                         static_cast<std::size_t>(i));
      }
      case Expr::Kind::ArgSize:
        charge(ipu::Op::IntArith, DType::Int32);
        return Scalar(static_cast<std::int32_t>(
            ctx_.argSize(static_cast<std::size_t>(e.arg))));
      case Expr::Kind::Binary: {
        Scalar a = eval(e.a);
        Scalar b = eval(e.b);
        DType common = promote(a.type(), b.type());
        // Mixed double-word × single-word operations use the cheaper
        // DW∘FP algorithms of Joldes et al. (6–10 flops instead of 9–31):
        // price them separately instead of as full DW∘DW (§III-D).
        if (common == DType::DoubleWord && a.type() != b.type() &&
            (a.type() == DType::Float32 || b.type() == DType::Float32)) {
          double cycles = 0;
          switch (e.bop) {
            case BinOp::Add:
            case BinOp::Sub: cycles = 84.0; break;   // DWPlusFP, 10 flops
            case BinOp::Mul: cycles = 42.0; break;   // DWTimesFP3, 6 flops
            case BinOp::Div: cycles = 66.0; break;   // DWDivFP3, 10 flops
            default: cycles = 0; break;              // fall through below
          }
          if (cycles > 0) {
            if (charging_) lanes_.add(ipu::Lane::Fp, cycles);
            return evalBinaryScalar(e.bop, a, b);
          }
        }
        charge(costOpFor(e.bop, common), common);
        return evalBinaryScalar(e.bop, a, b);
      }
      case Expr::Kind::Unary: {
        Scalar a = eval(e.a);
        charge(costOpFor(e.uop), a.type());
        return evalUnaryScalar(e.uop, a);
      }
      case Expr::Kind::Cast: {
        Scalar a = eval(e.a);
        if (a.type() != e.type &&
            (e.type == DType::DoubleWord || e.type == DType::Float64 ||
             a.type() == DType::DoubleWord || a.type() == DType::Float64)) {
          charge(ipu::Op::Cast, e.type);
        }
        return a.castTo(e.type);
      }
      case Expr::Kind::Select: {
        Scalar c = eval(e.a);
        // Single-cycle conditional select on the IPU.
        charge(ipu::Op::Branch, DType::Int32);
        return c.truthy() ? eval(e.b) : eval(e.c);
      }
      case Expr::Kind::WorkerId:
        return Scalar(static_cast<std::int32_t>(worker_));
    }
    GRAPHENE_UNREACHABLE("bad expr kind");
  }

  void runList(std::int32_t listId) {
    if (listId < 0) return;
    for (std::int32_t sid : cc_.flat.lists[static_cast<std::size_t>(listId)]) {
      runStmt(cc_.flat.stmts[static_cast<std::size_t>(sid)]);
    }
  }

  void runStmt(const FlatStmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        Scalar v = eval(s.value);
        GRAPHENE_DCHECK(s.var >= 0 &&
                            static_cast<std::size_t>(s.var) < vars_.size(),
                        "bad var slot");
        vars_[static_cast<std::size_t>(s.var)] = v;
        return;
      }
      case Stmt::Kind::StoreArg: {
        Scalar idx = eval(s.index);
        Scalar v = eval(s.value);
        const std::int32_t i = idx.castTo(DType::Int32).asInt();
        GRAPHENE_CHECK(i >= 0, "negative tensor index in codelet");
        charge(ipu::Op::Store, ctx_.argType(static_cast<std::size_t>(s.arg)));
        ctx_.store(static_cast<std::size_t>(s.arg),
                   static_cast<std::size_t>(i), v);
        return;
      }
      case Stmt::Kind::If: {
        Scalar c = eval(s.cond);
        chargeBranch();
        if (c.truthy()) {
          runList(s.body);
        } else {
          runList(s.elseBody);
        }
        return;
      }
      case Stmt::Kind::While: {
        int guard = 0;
        while (true) {
          Scalar c = eval(s.cond);
          chargeBranch();
          if (!c.truthy()) break;
          runList(s.body);
          GRAPHENE_CHECK(++guard < (1 << 26), "runaway While loop in codelet");
        }
        return;
      }
      case Stmt::Kind::For: {
        runFor(s, /*parallel=*/false);
        return;
      }
      case Stmt::Kind::ParFor: {
        runFor(s, /*parallel=*/true);
        return;
      }
    }
    GRAPHENE_UNREACHABLE("bad stmt kind");
  }

  void runFor(const FlatStmt& s, bool parallel) {
    const std::int32_t begin = eval(s.begin).castTo(DType::Int32).asInt();
    const std::int32_t end = eval(s.end).castTo(DType::Int32).asInt();
    const std::int32_t step =
        s.step >= 0 ? eval(s.step).castTo(DType::Int32).asInt() : 1;
    GRAPHENE_CHECK(step > 0, "For loops require a positive step");
    GRAPHENE_DCHECK(s.var >= 0, "loop without induction variable");

    if (!parallel) {
      // Counted loops compile to the IPU's hardware-loop (rpt-style)
      // instructions: setup costs one integer op + branch, iterations carry
      // no bookkeeping overhead.
      charge(ipu::Op::IntArith, DType::Int32);
      chargeBranch();
      if (s.fastLoop >= 0 && fastPaths_ &&
          runFastLoop(cc_.kernels[static_cast<std::size_t>(s.fastLoop)], s,
                      begin, end, step)) {
        return;
      }
      for (std::int32_t i = begin; i < end; i += step) {
        vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
        runList(s.body);
      }
      return;
    }

    // Worker-parallel loop (iputhreading): iterations are dealt round-robin
    // to the tile's workers. Functionally they run in order (iterations in a
    // level are independent by construction); the clock advances by the
    // slowest worker plus spawn/sync overhead.
    flush();
    if (s.fastLoop >= 0 && fastPaths_) {
      const LoopKernel& k =
          cc_.kernels[static_cast<std::size_t>(s.fastLoop)];
      if (k.isPar && runParLoop(k, s, begin, end, step)) return;
    }
    ipu::WorkerPool pool(cc_.numWorkers);
    pool.chargeSpawn();
    const std::size_t savedWorker = worker_;
    std::size_t w = 0;
    for (std::int32_t i = begin; i < end; i += step) {
      vars_[static_cast<std::size_t>(s.var)] = Scalar(i);
      worker_ = w;
      const double before = total_;
      runList(s.body);
      flush();
      pool.addCycles(w, total_ - before);
      total_ = before;  // iteration cost moved into the pool
      w = (w + 1) % cc_.numWorkers;
    }
    worker_ = savedWorker;
    total_ += pool.sync();
  }

  /// Runs a compiled loop kernel for [begin, end) step `step`. Returns false
  /// when a runtime guard fails (the generic walk then runs the loop; both
  /// paths are exact, the kernel is only faster).
  bool runFastLoop(const LoopKernel& k, const FlatStmt& s, std::int32_t begin,
                   std::int32_t end, std::int32_t step) {
    for (std::int16_t a : k.floatArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Float32)
        return false;
    }
    for (std::int16_t a : k.intArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Int32)
        return false;
    }
    for (const auto& [v, reg] : k.seedFloat) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Float32)
        return false;
    }
    for (const auto& [v, reg] : k.seedInt) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Int32)
        return false;
    }
    if (begin >= end) return true;  // zero iterations: setup charges only

    // Bulk cycle charge: every priced constant is an integral double, so
    // n × perIteration is exactly the sum the generic walk accumulates.
    const double n = static_cast<double>(
        (static_cast<std::int64_t>(end) - begin + step - 1) / step);
    if (charging_) {
      lanes_.add(ipu::Lane::Fp, n * k.iterFp);
      lanes_.add(ipu::Lane::Mem, n * k.iterMem);
      lanes_.add(ipu::Lane::Ctrl, n * k.iterCtrl);
    }

    std::array<std::span<float>, LoopKernel::kMaxArgs> fsp;
    std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs> isp;
    for (std::int16_t a : k.floatArgs) {
      fsp[static_cast<std::size_t>(a)] =
          ctx_.floatSpan(static_cast<std::size_t>(a));
    }
    for (std::int16_t a : k.intArgs) {
      isp[static_cast<std::size_t>(a)] =
          ctx_.intSpan(static_cast<std::size_t>(a));
    }

    const NamedLoop& nm = k.named;
    if (nm.p != NamedLoop::P::None && step == 1 && begin >= 0 &&
        namedBoundsOk(nm, fsp, end)) {
      runNamed(nm, fsp, begin, end);
      vars_[static_cast<std::size_t>(s.var)] = Scalar(end - 1);
      return true;
    }

    // Register VM fallback: same ops, same order, per element.
    std::array<float, LoopKernel::kMaxRegs> fr{};
    std::array<std::int32_t, LoopKernel::kMaxRegs> ir{};
    for (const auto& [reg, arg] : k.sizeSeeds) {
      ir[static_cast<std::size_t>(reg)] = static_cast<std::int32_t>(
          ctx_.argSize(static_cast<std::size_t>(arg)));
    }
    if (k.workerReg >= 0) {
      ir[static_cast<std::size_t>(k.workerReg)] =
          static_cast<std::int32_t>(worker_);
    }
    for (const auto& [v, reg] : k.seedFloat) {
      fr[static_cast<std::size_t>(reg)] =
          vars_[static_cast<std::size_t>(v)].asFloat();
    }
    for (const auto& [v, reg] : k.seedInt) {
      ir[static_cast<std::size_t>(reg)] =
          vars_[static_cast<std::size_t>(v)].asInt();
    }
    std::array<std::int32_t, LoopKernel::kMaxNested> trips{};
    // Block-vectorized front: full blocks of kBlock independent elements run
    // lane-wise (same scalar ops, same per-element order — bit-identical),
    // then the scalar VM finishes the tail. At least one element always goes
    // through the scalar VM so the home-register writebacks below observe
    // exactly the final element's state.
    std::int32_t scalarBegin = begin;
    if (k.blockable && step == 1 && begin >= 0 && end - begin > 2 &&
        blockedRangeOk(k, fsp, isp, end)) {
      scalarBegin = runBlockedFront(k, fsp, isp, fr, ir, begin, end);
    }
    std::int32_t last = begin;
    for (std::int32_t iv = scalarBegin; iv < end; iv += step) {
      ir[0] = iv;
      last = iv;
      runRowOps(k, fsp, isp, fr, ir, trips);
    }
    vars_[static_cast<std::size_t>(s.var)] = Scalar(last);
    for (const auto& [v, reg] : k.writeFloat) {
      vars_[static_cast<std::size_t>(v)] =
          Scalar(fr[static_cast<std::size_t>(reg)]);
    }
    for (const auto& [v, reg] : k.writeInt) {
      vars_[static_cast<std::size_t>(v)] =
          Scalar(ir[static_cast<std::size_t>(reg)]);
    }
    return true;
  }

  /// Run-time guard for the blocked VM: every elementwise span must cover
  /// [0, end), and no stored span may alias a span it doesn't share
  /// elementwise access with. Two args bound to the identical span are safe
  /// when both only touch the element's own index (lane j touches only
  /// iv+j); anything overlapping otherwise falls back to the scalar VM.
  static bool blockedRangeOk(
      const LoopKernel& k,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      const std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs>&
          isp,
      std::int32_t end) {
    const auto n = static_cast<std::size_t>(end);
    for (const LoopKernel::ArgUse& u : k.loadFloat) {
      if (u.anyElementwise &&
          fsp[static_cast<std::size_t>(u.arg)].size() < n) {
        return false;
      }
    }
    for (const LoopKernel::ArgUse& u : k.loadInt) {
      if (u.anyElementwise &&
          isp[static_cast<std::size_t>(u.arg)].size() < n) {
        return false;
      }
    }
    for (const LoopKernel::ArgUse& u : k.storeFloat) {
      if (fsp[static_cast<std::size_t>(u.arg)].size() < n) return false;
    }
    auto overlapUnsafe = [&](const LoopKernel::ArgUse& a,
                             const LoopKernel::ArgUse& b) {
      if (a.arg == b.arg) return false;  // same span: checked at compile time
      const auto& sa = fsp[static_cast<std::size_t>(a.arg)];
      const auto& sb = fsp[static_cast<std::size_t>(b.arg)];
      if (sa.data() == sb.data() && sa.size() == sb.size()) {
        return !(a.elementwiseOnly && b.elementwiseOnly);
      }
      return sa.data() < sb.data() + sb.size() &&
             sb.data() < sa.data() + sa.size();
    };
    for (const LoopKernel::ArgUse& su : k.storeFloat) {
      for (const LoopKernel::ArgUse& lu : k.loadFloat) {
        if (overlapUnsafe(su, lu)) return false;
      }
      for (const LoopKernel::ArgUse& ou : k.storeFloat) {
        if (overlapUnsafe(su, ou)) return false;
      }
    }
    return true;
  }

  /// Runs as much of [begin, end) as possible through runBlockedRange,
  /// stepping the lane width down 16 → 8 → 4 → 2 while always leaving at
  /// least one element for the scalar VM (whose register state feeds the
  /// home-variable writebacks). Returns where the scalar tail starts.
  static std::int32_t runBlockedFront(
      const LoopKernel& k,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      const std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs>&
          isp,
      const std::array<float, LoopKernel::kMaxRegs>& fr,
      const std::array<std::int32_t, LoopKernel::kMaxRegs>& ir,
      std::int32_t begin, std::int32_t end) {
    std::int32_t iv = begin;
    if (end - 1 - iv >= 16) {
      const std::int32_t n = ((end - 1 - iv) / 16) * 16;
      runBlockedRange<16>(k, fsp, isp, fr, ir, iv, iv + n);
      iv += n;
    }
    if (end - 1 - iv >= 8) {
      runBlockedRange<8>(k, fsp, isp, fr, ir, iv, iv + 8);
      iv += 8;
    }
    if (end - 1 - iv >= 4) {
      runBlockedRange<4>(k, fsp, isp, fr, ir, iv, iv + 4);
      iv += 4;
    }
    if (end - 1 - iv >= 2) {
      runBlockedRange<2>(k, fsp, isp, fr, ir, iv, iv + 2);
      iv += 2;
    }
    return iv;
  }

  /// Runs [begin, endB) of a blockable kernel in lanes of B.
  /// Each op applies its scalar operation to every lane in increasing lane
  /// order before the next op runs; with no loop-carried registers and only
  /// elementwise stores (analyzeBlockable) plus non-aliased spans
  /// (blockedRangeOk), every element sees exactly the scalar VM's operation
  /// sequence on exactly the scalar VM's values — bit-identical results.
  /// Caller guarantees endB - begin is a positive multiple of B.
  template <std::int32_t B>
  static void runBlockedRange(
      const LoopKernel& k,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      const std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs>&
          isp,
      const std::array<float, LoopKernel::kMaxRegs>& fr,
      const std::array<std::int32_t, LoopKernel::kMaxRegs>& ir,
      std::int32_t begin, std::int32_t endB) {
    alignas(64) float fb[LoopKernel::kMaxRegs][B];
    alignas(64) std::int32_t ib[LoopKernel::kMaxRegs][B];
    // Seed registers are loop-invariant (no carried regs): splat once.
    for (int r = 0; r < k.numFloatRegs; ++r) {
      for (std::int32_t j = 0; j < B; ++j) fb[r][j] = fr[static_cast<std::size_t>(r)];
    }
    for (int r = 0; r < k.numIntRegs; ++r) {
      for (std::int32_t j = 0; j < B; ++j) ib[r][j] = ir[static_cast<std::size_t>(r)];
    }
    using K = LoopOp::K;
    for (std::int32_t iv = begin; iv < endB; iv += B) {
      for (std::int32_t j = 0; j < B; ++j) ib[0][j] = iv + j;
      for (const LoopOp& op : k.ops) {
        switch (op.k) {
          case K::FConst: {
            float* d = fb[op.dst];
            for (std::int32_t j = 0; j < B; ++j) d[j] = op.fimm;
            break;
          }
          case K::FMov: {
            float* d = fb[op.dst];
            const float* a = fb[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j];
            break;
          }
          case K::FLoad: {
            const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
            float* d = fb[op.dst];
            if (op.ew) {
              // Index proven equal to iv: bounds pre-checked, contiguous.
              const float* GRAPHENE_RESTRICT p = sp.data() + iv;
              for (std::int32_t j = 0; j < B; ++j) d[j] = p[j];
            } else {
              const std::int32_t* x = ib[op.a];
              for (std::int32_t j = 0; j < B; ++j) {
                const auto ix = static_cast<std::uint32_t>(x[j]);
                GRAPHENE_CHECK(ix < sp.size(),
                               "tensor index out of range in codelet");
                d[j] = sp[ix];
              }
            }
            break;
          }
          case K::FStore: {
            // analyzeBlockable only admits elementwise stores (op.ew).
            const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
            float* GRAPHENE_RESTRICT p = sp.data() + iv;
            const float* s = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) p[j] = s[j];
            break;
          }
          case K::FAdd: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] + b[j];
            break;
          }
          case K::FSub: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] - b[j];
            break;
          }
          case K::FMul: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] * b[j];
            break;
          }
          case K::FDiv: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] / b[j];
            break;
          }
          case K::FMin: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = b[j] < a[j] ? b[j] : a[j];  // matches binNumeric Min
            }
            break;
          }
          case K::FMax: {
            float* d = fb[op.dst];
            const float *a = fb[op.a], *b = fb[op.b];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = a[j] < b[j] ? b[j] : a[j];  // matches binNumeric Max
            }
            break;
          }
          case K::FNeg: {
            float* d = fb[op.dst];
            const float* a = fb[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = -a[j];
            break;
          }
          case K::FAbs: {
            float* d = fb[op.dst];
            const float* a = fb[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = std::fabs(a[j]);
            break;
          }
          case K::FSqrt: {
            float* d = fb[op.dst];
            const float* a = fb[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = std::sqrt(a[j]);
            break;
          }
          case K::FFromInt: {
            float* d = fb[op.dst];
            const std::int32_t* a = ib[op.a];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = static_cast<float>(a[j]);
            }
            break;
          }
          case K::IConst: {
            std::int32_t* d = ib[op.dst];
            for (std::int32_t j = 0; j < B; ++j) d[j] = op.iimm;
            break;
          }
          case K::IMov: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t* a = ib[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j];
            break;
          }
          case K::ILoad: {
            const auto& sp = isp[static_cast<std::size_t>(op.arg)];
            std::int32_t* d = ib[op.dst];
            if (op.ew) {
              const std::int32_t* GRAPHENE_RESTRICT p = sp.data() + iv;
              for (std::int32_t j = 0; j < B; ++j) d[j] = p[j];
            } else {
              const std::int32_t* x = ib[op.a];
              for (std::int32_t j = 0; j < B; ++j) {
                const auto ix = static_cast<std::uint32_t>(x[j]);
                GRAPHENE_CHECK(ix < sp.size(),
                               "tensor index out of range in codelet");
                d[j] = sp[ix];
              }
            }
            break;
          }
          case K::IAdd: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t *a = ib[op.a], *b = ib[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] + b[j];
            break;
          }
          case K::ISub: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t *a = ib[op.a], *b = ib[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] - b[j];
            break;
          }
          case K::IMul: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t *a = ib[op.a], *b = ib[op.b];
            for (std::int32_t j = 0; j < B; ++j) d[j] = a[j] * b[j];
            break;
          }
          case K::IMin: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t *a = ib[op.a], *b = ib[op.b];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = b[j] < a[j] ? b[j] : a[j];
            }
            break;
          }
          case K::IMax: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t *a = ib[op.a], *b = ib[op.b];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = a[j] < b[j] ? b[j] : a[j];
            }
            break;
          }
          case K::INeg: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t* a = ib[op.a];
            for (std::int32_t j = 0; j < B; ++j) d[j] = -a[j];
            break;
          }
          case K::IAbs: {
            std::int32_t* d = ib[op.dst];
            const std::int32_t* a = ib[op.a];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = a[j] < 0 ? -a[j] : a[j];
            }
            break;
          }
          case K::IFromFloat: {
            std::int32_t* d = ib[op.dst];
            const float* a = fb[op.a];
            for (std::int32_t j = 0; j < B; ++j) {
              d[j] = static_cast<std::int32_t>(a[j]);
            }
            break;
          }
          case K::LBegin:
          case K::LEnd:
            break;  // analyzeBlockable never admits loop ops
        }
      }
    }
  }

  /// Executes one pass over a kernel's ops: a linear walk with LBegin/LEnd
  /// implementing nested counted loops (parallel row kernels; serial kernels
  /// contain no loop ops and degenerate to a straight run). Records each
  /// nested loop's trip count into `trips` for the cost polynomial.
  static void runRowOps(
      const LoopKernel& k,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      const std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs>&
          isp,
      std::array<float, LoopKernel::kMaxRegs>& fr,
      std::array<std::int32_t, LoopKernel::kMaxRegs>& ir,
      std::array<std::int32_t, LoopKernel::kMaxNested>& trips) {
    // Only one loop is ever active (single-level nesting), so one live trip
    // counter suffices.
    std::int32_t trip = 0;
    const std::size_t nops = k.ops.size();
    for (std::size_t pc = 0; pc < nops; ++pc) {
      const LoopOp& op = k.ops[pc];
      switch (op.k) {
        case LoopOp::K::FConst: fr[op.dst] = op.fimm; break;
        case LoopOp::K::FMov: fr[op.dst] = fr[op.a]; break;
        case LoopOp::K::FLoad: {
          const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
          const auto ix = static_cast<std::uint32_t>(ir[op.a]);
          GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
          fr[op.dst] = sp[ix];
          break;
        }
        case LoopOp::K::FStore: {
          const auto& sp = fsp[static_cast<std::size_t>(op.arg)];
          const auto ix = static_cast<std::uint32_t>(ir[op.a]);
          GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
          sp[ix] = fr[op.b];
          break;
        }
        case LoopOp::K::FAdd: fr[op.dst] = fr[op.a] + fr[op.b]; break;
        case LoopOp::K::FSub: fr[op.dst] = fr[op.a] - fr[op.b]; break;
        case LoopOp::K::FMul: fr[op.dst] = fr[op.a] * fr[op.b]; break;
        case LoopOp::K::FDiv: fr[op.dst] = fr[op.a] / fr[op.b]; break;
        case LoopOp::K::FMin: {
          const float a = fr[op.a], b = fr[op.b];
          fr[op.dst] = b < a ? b : a;  // matches binNumeric Min
          break;
        }
        case LoopOp::K::FMax: {
          const float a = fr[op.a], b = fr[op.b];
          fr[op.dst] = a < b ? b : a;  // matches binNumeric Max
          break;
        }
        case LoopOp::K::FNeg: fr[op.dst] = -fr[op.a]; break;
        case LoopOp::K::FAbs: fr[op.dst] = std::fabs(fr[op.a]); break;
        case LoopOp::K::FSqrt: fr[op.dst] = std::sqrt(fr[op.a]); break;
        case LoopOp::K::FFromInt:
          fr[op.dst] = static_cast<float>(ir[op.a]);
          break;
        case LoopOp::K::IConst: ir[op.dst] = op.iimm; break;
        case LoopOp::K::IMov: ir[op.dst] = ir[op.a]; break;
        case LoopOp::K::ILoad: {
          const auto& sp = isp[static_cast<std::size_t>(op.arg)];
          const auto ix = static_cast<std::uint32_t>(ir[op.a]);
          GRAPHENE_CHECK(ix < sp.size(), "tensor index out of range in codelet");
          ir[op.dst] = sp[ix];
          break;
        }
        case LoopOp::K::IAdd: ir[op.dst] = ir[op.a] + ir[op.b]; break;
        case LoopOp::K::ISub: ir[op.dst] = ir[op.a] - ir[op.b]; break;
        case LoopOp::K::IMul: ir[op.dst] = ir[op.a] * ir[op.b]; break;
        case LoopOp::K::IMin: {
          const std::int32_t a = ir[op.a], b = ir[op.b];
          ir[op.dst] = b < a ? b : a;
          break;
        }
        case LoopOp::K::IMax: {
          const std::int32_t a = ir[op.a], b = ir[op.b];
          ir[op.dst] = a < b ? b : a;
          break;
        }
        case LoopOp::K::INeg: ir[op.dst] = -ir[op.a]; break;
        case LoopOp::K::IAbs: {
          const std::int32_t v = ir[op.a];
          ir[op.dst] = v < 0 ? -v : v;
          break;
        }
        case LoopOp::K::IFromFloat:
          ir[op.dst] = static_cast<std::int32_t>(fr[op.a]);
          break;
        case LoopOp::K::LBegin: {
          const std::int32_t b = ir[op.a], e = ir[op.b];
          const std::int32_t n = e > b ? e - b : 0;
          trips[static_cast<std::size_t>(op.arg)] = n;
          if (n == 0) {
            // Jump to the LEnd; ++pc then steps past it.
            pc = static_cast<std::size_t>(op.iimm);
            break;
          }
          trip = n;
          ir[op.dst] = b;
          break;
        }
        case LoopOp::K::LEnd:
          if (--trip > 0) {
            ++ir[op.a];
            // Jump to the LBegin; ++pc re-enters the body without re-running
            // the loop initialisation.
            pc = static_cast<std::size_t>(op.iimm);
          }
          break;
      }
    }
  }

  /// Runs a compiled ParFor kernel: rows are dealt round-robin to a worker
  /// pool exactly like the generic walk, but each row executes as one
  /// register program and its cycle cost comes from the kernel's
  /// segment/loop polynomial instead of per-op lane accumulation. The caller
  /// has evaluated the bounds and flushed. Returns false when a runtime
  /// guard fails (the generic pool walk then runs; both are exact).
  bool runParLoop(const LoopKernel& k, const FlatStmt& s, std::int32_t begin,
                  std::int32_t end, std::int32_t step) {
    for (std::int16_t a : k.floatArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Float32)
        return false;
    }
    for (std::int16_t a : k.intArgs) {
      if (ctx_.argType(static_cast<std::size_t>(a)) != DType::Int32)
        return false;
    }
    for (const auto& [v, reg] : k.seedFloat) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Float32)
        return false;
    }
    for (const auto& [v, reg] : k.seedInt) {
      if (vars_[static_cast<std::size_t>(v)].type() != DType::Int32)
        return false;
    }

    ipu::WorkerPool pool(cc_.numWorkers);
    pool.chargeSpawn();
    if (begin < end) {
      std::array<std::span<float>, LoopKernel::kMaxArgs> fsp;
      std::array<std::span<const std::int32_t>, LoopKernel::kMaxArgs> isp;
      for (std::int16_t a : k.floatArgs) {
        fsp[static_cast<std::size_t>(a)] =
            ctx_.floatSpan(static_cast<std::size_t>(a));
      }
      for (std::int16_t a : k.intArgs) {
        isp[static_cast<std::size_t>(a)] =
            ctx_.intSpan(static_cast<std::size_t>(a));
      }
      std::array<float, LoopKernel::kMaxRegs> fr{};
      std::array<std::int32_t, LoopKernel::kMaxRegs> ir{};
      std::array<std::int32_t, LoopKernel::kMaxNested> trips{};
      for (const auto& [reg, arg] : k.sizeSeeds) {
        ir[static_cast<std::size_t>(reg)] = static_cast<std::int32_t>(
            ctx_.argSize(static_cast<std::size_t>(arg)));
      }
      for (const auto& [v, reg] : k.seedFloat) {
        fr[static_cast<std::size_t>(reg)] =
            vars_[static_cast<std::size_t>(v)].asFloat();
      }
      for (const auto& [v, reg] : k.seedInt) {
        ir[static_cast<std::size_t>(reg)] =
            vars_[static_cast<std::size_t>(v)].asInt();
      }
      // Native CSR rows: all but the last row run as a plain scalar loop
      // (identical float ops in identical order); the last row goes through
      // the register VM so every home register write-back stays exact.
      const CsrRow& csr = k.csr;
      const bool native = csr.valid && step == 1;
      const float* dp = nullptr;
      const float* xp = nullptr;
      const float* ap = nullptr;
      const float* hp = nullptr;
      float* yp = nullptr;
      const std::int32_t* cp = nullptr;
      const std::int32_t* rpp = nullptr;
      const std::int32_t* spp = nullptr;
      std::int32_t owned = 0;
      if (native) {
        dp = fsp[static_cast<std::size_t>(csr.dArg)].data();
        xp = fsp[static_cast<std::size_t>(csr.xArg)].data();
        ap = fsp[static_cast<std::size_t>(csr.aArg)].data();
        hp = fsp[static_cast<std::size_t>(csr.hArg)].data();
        yp = fsp[static_cast<std::size_t>(csr.yArg)].data();
        cp = isp[static_cast<std::size_t>(csr.cArg)].data();
        rpp = isp[static_cast<std::size_t>(csr.rpArg)].data();
        spp = isp[static_cast<std::size_t>(csr.spArg)].data();
        owned = vars_[static_cast<std::size_t>(csr.ownedVar)].asInt();
      }
      const std::size_t numLoops = k.nested.size();
      std::size_t w = 0;
      std::int32_t scalarBegin = begin;
      // Block-vectorized front for flat row bodies (no nested loops, no
      // worker-index reads): full blocks of kBlock rows run lane-wise with
      // the scalar ops in the scalar order — bit-identical. Rows are charged
      // to workers in closed form: with no nested loops the row cost is a
      // trip-free integral constant, so count × cost equals the per-row sum
      // exactly, and the round-robin rotation gives worker wi
      // ⌈(n - wi) / numWorkers⌉ rows. At least one row always runs through
      // the scalar VM so home-register writebacks observe the final row.
      if (k.blockable && !native && step == 1 && begin >= 0 &&
          k.workerReg < 0 && end - begin > 2 &&
          blockedRangeOk(k, fsp, isp, end)) {
        const std::int32_t endB =
            runBlockedFront(k, fsp, isp, fr, ir, begin, end);
        const double rowCost =
            (k.segs[0].fp > k.segs[0].mem ? k.segs[0].fp : k.segs[0].mem) +
            k.segs[0].ctrl;
        const std::int64_t nb = endB - begin;
        const auto W = static_cast<std::int64_t>(cc_.numWorkers);
        for (std::int64_t wi = 0; wi < W; ++wi) {
          const std::int64_t c = nb / W + (wi < nb % W ? 1 : 0);
          if (c > 0) {
            pool.addCycles(static_cast<std::size_t>(wi),
                           static_cast<double>(c) * rowCost);
          }
        }
        w = static_cast<std::size_t>(nb % W);
        scalarBegin = endB;
      }
      std::int32_t last = begin;
      for (std::int32_t iv = scalarBegin; iv < end; iv += step) {
        ir[0] = iv;
        last = iv;
        if (k.workerReg >= 0) {
          ir[static_cast<std::size_t>(k.workerReg)] =
              static_cast<std::int32_t>(w);
        }
        if (native && iv + 1 < end) {
          const auto r = static_cast<std::size_t>(iv);
          float acc = dp[r] * xp[r];
          const std::int32_t b1 = rpp[r], e1 = spp[r], e2 = rpp[r + 1];
          for (std::int32_t kk = b1; kk < e1; ++kk) {
            acc = acc + ap[kk] * xp[cp[kk]];
          }
          for (std::int32_t kk = e1; kk < e2; ++kk) {
            acc = acc + ap[kk] * hp[cp[kk] - owned];
          }
          yp[r] = acc;
          trips[0] = e1 > b1 ? e1 - b1 : 0;
          trips[1] = e2 > e1 ? e2 - e1 : 0;
        } else {
          runRowOps(k, fsp, isp, fr, ir, trips);
        }
        double rowCost = 0;
        for (std::size_t b = 0; b <= numLoops; ++b) {
          double fp = k.segs[b].fp, mem = k.segs[b].mem, ctrl = k.segs[b].ctrl;
          if (b > 0) {
            const double n = trips[b - 1];
            fp += n * k.nested[b - 1].fp;
            mem += n * k.nested[b - 1].mem;
            ctrl += n * k.nested[b - 1].ctrl;
          }
          rowCost += (fp > mem ? fp : mem) + ctrl;
        }
        rowCost += static_cast<double>(numLoops) * k.branchCost;
        pool.addCycles(w, rowCost);
        w = (w + 1) % cc_.numWorkers;
      }
      vars_[static_cast<std::size_t>(s.var)] = Scalar(last);
      for (const auto& [v, reg] : k.writeFloat) {
        vars_[static_cast<std::size_t>(v)] =
            Scalar(fr[static_cast<std::size_t>(reg)]);
      }
      for (const auto& [v, reg] : k.writeInt) {
        vars_[static_cast<std::size_t>(v)] =
            Scalar(ir[static_cast<std::size_t>(reg)]);
      }
    }
    total_ += pool.sync();
    return true;
  }

  bool namedBoundsOk(
      const NamedLoop& nm,
      const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
      std::int32_t end) const {
    const auto e = static_cast<std::size_t>(end);
    auto ok = [&](std::int16_t arg) {
      return arg < 0 || e <= fsp[static_cast<std::size_t>(arg)].size();
    };
    return ok(nm.dstArg) && ok(nm.aArg) && ok(nm.bArg);
  }

  /// True when [a, a+n) and [b, b+n) cannot overlap (std::less_equal gives a
  /// total order even for pointers into unrelated allocations).
  static bool spansDisjoint(const float* a, const float* b, std::size_t n) {
    return std::less_equal<const float*>{}(a + n, b) ||
           std::less_equal<const float*>{}(b + n, a);
  }

  void runNamed(const NamedLoop& nm,
                const std::array<std::span<float>, LoopKernel::kMaxArgs>& fsp,
                std::int32_t begin, std::int32_t end) {
    auto span = [&](std::int16_t arg) {
      return fsp[static_cast<std::size_t>(arg)];
    };
    const float sv =
        nm.sIsConst
            ? nm.sConst
            : (nm.sVar >= 0
                   ? vars_[static_cast<std::size_t>(nm.sVar)].asFloat()
                   : 0.0f);
    const std::size_t n = static_cast<std::size_t>(end - begin);
    switch (nm.p) {
      case NamedLoop::P::Copy: {
        float* dp = span(nm.dstArg).data() + begin;
        const float* ap = span(nm.aArg).data() + begin;
        if (dp == ap) return;  // self-copy: the forward walk is the identity
        if (spansDisjoint(dp, ap, n)) {
          std::memcpy(dp, ap, n * sizeof(float));  // raw bits, bit-exact
        } else {
          for (std::size_t i = 0; i < n; ++i) dp[i] = ap[i];
        }
        return;
      }
      case NamedLoop::P::Scale: {
        float* dp = span(nm.dstArg).data() + begin;
        const float* ap = span(nm.aArg).data() + begin;
        if (spansDisjoint(dp, ap, n)) {
          float* GRAPHENE_RESTRICT dr = dp;
          if (nm.sFirst) {
            for (std::size_t i = 0; i < n; ++i) dr[i] = sv * ap[i];
          } else {
            for (std::size_t i = 0; i < n; ++i) dr[i] = ap[i] * sv;
          }
        } else if (nm.sFirst) {
          for (std::size_t i = 0; i < n; ++i) dp[i] = sv * ap[i];
        } else {
          for (std::size_t i = 0; i < n; ++i) dp[i] = ap[i] * sv;
        }
        return;
      }
      case NamedLoop::P::AddVec: {
        float* dp = span(nm.dstArg).data() + begin;
        const float* ap = span(nm.aArg).data() + begin;
        const float* bp = span(nm.bArg).data() + begin;
        if (spansDisjoint(dp, ap, n) && spansDisjoint(dp, bp, n)) {
          float* GRAPHENE_RESTRICT dr = dp;
          if (nm.isSub) {
            for (std::size_t i = 0; i < n; ++i) dr[i] = ap[i] - bp[i];
          } else {
            for (std::size_t i = 0; i < n; ++i) dr[i] = ap[i] + bp[i];
          }
        } else if (nm.isSub) {
          for (std::size_t i = 0; i < n; ++i) dp[i] = ap[i] - bp[i];
        } else {
          for (std::size_t i = 0; i < n; ++i) dp[i] = ap[i] + bp[i];
        }
        return;
      }
      case NamedLoop::P::Axpy: {
        float* dp = span(nm.dstArg).data() + begin;
        const float* ap = span(nm.aArg).data() + begin;
        const float* bp = span(nm.bArg).data() + begin;
        if (spansDisjoint(dp, ap, n) && spansDisjoint(dp, bp, n)) {
          float* GRAPHENE_RESTRICT dr = dp;
          for (std::size_t i = 0; i < n; ++i) {
            const float m = nm.sFirst ? sv * bp[i] : bp[i] * sv;
            dr[i] = nm.loadFirst ? (nm.isSub ? ap[i] - m : ap[i] + m)
                                 : (nm.isSub ? m - ap[i] : m + ap[i]);
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            const float m = nm.sFirst ? sv * bp[i] : bp[i] * sv;
            dp[i] = nm.loadFirst ? (nm.isSub ? ap[i] - m : ap[i] + m)
                                 : (nm.isSub ? m - ap[i] : m + ap[i]);
          }
        }
        return;
      }
      case NamedLoop::P::DotPartial: {
        auto a = span(nm.aArg);
        float acc = vars_[static_cast<std::size_t>(nm.accVar)].asFloat();
        if (nm.dotSingle) {
          for (std::int32_t i = begin; i < end; ++i) {
            acc = nm.accFirst ? acc + a[i] : a[i] + acc;
          }
        } else {
          auto b = span(nm.bArg);
          for (std::int32_t i = begin; i < end; ++i) {
            const float m = a[i] * b[i];
            acc = nm.accFirst ? acc + m : m + acc;
          }
        }
        vars_[static_cast<std::size_t>(nm.accVar)] = Scalar(acc);
        return;
      }
      case NamedLoop::P::None:
        return;
    }
  }

  const CompiledCodelet& cc_;
  graph::VertexContext& ctx_;
  std::vector<Scalar> vars_;
  ipu::LaneCycles lanes_;
  double total_ = 0;
  std::size_t worker_ = 0;
  bool fastPaths_ = true;
  bool charging_ = true;
};

/// Builds the whole-codelet cycle polynomial, leaving staticCost.valid false
/// when the codelet leaves the supported shape (anything but counted
/// unit-step root For loops with kernels and Const/ArgSize bounds).
bool staticBound(const FlatCodelet& flat, std::int32_t id,
                 CompiledCodelet::Bound& out) {
  if (id < 0) return false;
  const FlatExpr& e = flat.exprs[static_cast<std::size_t>(id)];
  if (e.kind == Expr::Kind::Const && e.constant.type() == DType::Int32) {
    out.isArgSize = false;
    out.value = e.constant.asInt();
    return true;
  }
  if (e.kind == Expr::Kind::ArgSize && e.arg >= 0) {
    out.isArgSize = true;
    out.value = e.arg;
    return true;
  }
  return false;
}

void buildStaticCost(CompiledCodelet& cc) {
  CompiledCodelet::StaticCost& sc = cc.staticCost;
  const FlatCodelet& flat = cc.flat;
  if (flat.root < 0) return;
  const auto& root = flat.lists[static_cast<std::size_t>(flat.root)];
  if (root.empty()) return;
  ipu::LaneCycles seg;
  std::vector<ipu::LaneCycles> segs;
  auto addGuard = [](std::vector<std::int16_t>& list, std::int16_t a) {
    if (std::find(list.begin(), list.end(), a) == list.end())
      list.push_back(a);
  };
  for (std::int32_t sid : root) {
    const FlatStmt& s = flat.stmts[static_cast<std::size_t>(sid)];
    if (s.kind != Stmt::Kind::For || s.fastLoop < 0) return;
    const LoopKernel& k = cc.kernels[static_cast<std::size_t>(s.fastLoop)];
    if (k.isPar) return;
    // Seeded kernels read interpreter vars whose runtime types cannot be
    // guarded here (and an unset var has no defined value at the root).
    if (!k.seedFloat.empty() || !k.seedInt.empty()) return;
    CompiledCodelet::StaticLoop sl;
    if (!staticBound(flat, s.begin, sl.begin)) return;
    if (!staticBound(flat, s.end, sl.end)) return;
    if (s.step >= 0) {
      const FlatExpr& st = flat.exprs[static_cast<std::size_t>(s.step)];
      if (st.kind != Expr::Kind::Const ||
          st.constant.type() != DType::Int32 || st.constant.asInt() != 1) {
        return;
      }
    }
    // Header charges land in the block before the loop-entry branch flush:
    // each ArgSize bound charges one integer op when evaluated, plus the
    // loop's own setup op.
    if (sl.begin.isArgSize) seg.add(cc.cost, ipu::Op::IntArith, DType::Int32);
    if (sl.end.isArgSize) seg.add(cc.cost, ipu::Op::IntArith, DType::Int32);
    seg.add(cc.cost, ipu::Op::IntArith, DType::Int32);
    segs.push_back(seg);
    seg = ipu::LaneCycles{};
    sl.iterFp = k.iterFp;
    sl.iterMem = k.iterMem;
    sl.iterCtrl = k.iterCtrl;
    sc.loops.push_back(std::move(sl));
    for (std::int16_t a : k.floatArgs) addGuard(sc.floatArgs, a);
    for (std::int16_t a : k.intArgs) addGuard(sc.intArgs, a);
  }
  segs.push_back(seg);  // trailing block, flushed at the end of run()
  for (const ipu::LaneCycles& l : segs) {
    sc.segs.push_back({l.fp(), l.mem(), l.ctrl()});
  }
  sc.branchCost = cc.cost.workerCycles(ipu::Op::Branch, DType::Int32);
  sc.valid = true;
}

/// Evaluates the polynomial against a vertex's actual arg sizes.
double staticCostEval(const CompiledCodelet::StaticCost& sc,
                      graph::VertexContext& ctx) {
  auto bound = [&](const CompiledCodelet::Bound& b) {
    return b.isArgSize ? static_cast<std::int32_t>(
                             ctx.argSize(static_cast<std::size_t>(b.value)))
                       : b.value;
  };
  double total = 0;
  const std::size_t numLoops = sc.loops.size();
  for (std::size_t k = 0; k <= numLoops; ++k) {
    double fp = sc.segs[k].fp, mem = sc.segs[k].mem, ctrl = sc.segs[k].ctrl;
    if (k > 0) {
      const CompiledCodelet::StaticLoop& l = sc.loops[k - 1];
      const std::int32_t b = bound(l.begin), e = bound(l.end);
      const double n = e > b ? static_cast<double>(e - b) : 0.0;
      fp += n * l.iterFp;
      mem += n * l.iterMem;
      ctrl += n * l.iterCtrl;
    }
    total += (fp > mem ? fp : mem) + ctrl;
  }
  total += static_cast<double>(numLoops) * sc.branchCost;
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

void setCodeletFastPaths(bool enabled) {
  g_fastPaths.store(enabled, std::memory_order_relaxed);
}

bool codeletFastPathsEnabled() {
  return g_fastPaths.load(std::memory_order_relaxed);
}

void setCodeletCycleVerification(bool enabled) {
  g_verifyCycles.store(enabled, std::memory_order_relaxed);
}

bool codeletCycleVerificationEnabled() {
  return g_verifyCycles.load(std::memory_order_relaxed);
}

CompiledCodeletPtr compileCodelet(const CodeletIR& ir,
                                  const ipu::CostModel& cost,
                                  std::size_t numWorkers) {
  auto cc = std::make_shared<CompiledCodelet>();
  cc->flat = flattenCodelet(ir);
  cc->cost = cost;
  cc->numWorkers = numWorkers;
  // Kernels are always compiled; whether they run is decided per execution
  // (setCodeletFastPaths), so the generic/fast A-B comparison can use the
  // same graph.
  LoopCompiler lc(cc->flat, cc->cost);
  for (std::size_t sid = 0; sid < cc->flat.stmts.size(); ++sid) {
    FlatStmt& s = cc->flat.stmts[sid];
    if (s.kind == Stmt::Kind::For) {
      if (auto kernel = lc.compile(static_cast<std::int32_t>(sid))) {
        s.fastLoop = static_cast<std::int32_t>(cc->kernels.size());
        cc->kernels.push_back(std::move(*kernel));
      }
    } else if (s.kind == Stmt::Kind::ParFor) {
      if (auto kernel = lc.compilePar(static_cast<std::int32_t>(sid))) {
        s.fastLoop = static_cast<std::int32_t>(cc->kernels.size());
        cc->kernels.push_back(std::move(*kernel));
      }
    }
  }
  buildStaticCost(*cc);
  return cc;
}

graph::VertexCost runCompiled(const CompiledCodelet& codelet,
                              graph::VertexContext& ctx) {
  GRAPHENE_CHECK(ctx.numArgs() == codelet.flat.numArgs,
                 "codelet arg count mismatch: vertex has ", ctx.numArgs(),
                 ", codelet expects ", codelet.flat.numArgs);
  graph::VertexCost result;
  result.wholeTile = codelet.flat.usesWorkers;
  const CompiledCodelet::StaticCost& sc = codelet.staticCost;
  if (sc.valid && g_fastPaths.load(std::memory_order_relaxed)) {
    bool guarded = true;
    for (std::int16_t a : sc.floatArgs) {
      if (ctx.argType(static_cast<std::size_t>(a)) != DType::Float32) {
        guarded = false;
        break;
      }
    }
    if (guarded) {
      for (std::int16_t a : sc.intArgs) {
        if (ctx.argType(static_cast<std::size_t>(a)) != DType::Int32) {
          guarded = false;
          break;
        }
      }
    }
    if (guarded) {
      const double cost = staticCostEval(sc, ctx);
      const bool verify = g_verifyCycles.load(std::memory_order_relaxed);
      FlatExec exec(codelet, ctx, /*charging=*/verify);
      const double walked = exec.run();
      if (verify) {
        GRAPHENE_CHECK(walked == cost,
                       "static cycle polynomial mismatch: per-op walk ",
                       walked, ", polynomial ", cost);
      }
      result.workerCycles = cost;
      return result;
    }
  }
  FlatExec exec(codelet, ctx);
  result.workerCycles = exec.run();
  return result;
}

graph::Codelet makeCodelet(std::string name, CodeletIR ir,
                           const ipu::CostModel& cost,
                           std::size_t numWorkers) {
  CompiledCodeletPtr cc = compileCodelet(ir, cost, numWorkers);
  // Compile-time diagnostics: which loops got a VM kernel, which of those are
  // block-vectorizable or matched a named bulk kernel. Costs nothing when the
  // env var is unset; invaluable when a hot loop silently drops to the walk.
  if (std::getenv("GRAPHENE_DUMP_COMPILE") != nullptr) {
    std::size_t loops = 0, fast = 0;
    for (const FlatStmt& s : cc->flat.stmts) {
      if (s.kind == Stmt::Kind::For || s.kind == Stmt::Kind::ParFor) {
        ++loops;
        if (s.fastLoop >= 0) ++fast;
      }
    }
    std::fprintf(stderr, "[compile] %s: loops=%zu fast=%zu static=%d\n",
                 name.c_str(), loops, fast, cc->staticCost.valid ? 1 : 0);
    for (const LoopKernel& k : cc->kernels) {
      std::fprintf(stderr,
                   "  kernel: par=%d ops=%zu csr=%d blockable=%d named=%d\n",
                   k.isPar ? 1 : 0, k.ops.size(), k.csr.valid ? 1 : 0,
                   k.blockable ? 1 : 0, static_cast<int>(k.named.p));
    }
  }
  return graph::Codelet{std::move(name),
                        [cc = std::move(cc)](graph::VertexContext& vc) {
                          return runCompiled(*cc, vc);
                        }};
}

graph::VertexCost interpretCodelet(const CodeletIR& ir,
                                   const ipu::CostModel& cost,
                                   std::size_t numWorkers,
                                   graph::VertexContext& ctx) {
  CompiledCodeletPtr cc = compileCodelet(ir, cost, numWorkers);
  return runCompiled(*cc, ctx);
}

}  // namespace graphene::dsl
