// Tests for partitioning and the §IV halo-region reordering strategy.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "matrix/generators.hpp"
#include "partition/halo.hpp"
#include "partition/partition.hpp"
#include "partition/partitioner.hpp"

using namespace graphene;
using namespace graphene::partition;

TEST(Partition, LinearIsBalancedAndContiguous) {
  auto p = partitionLinear(103, 8);
  auto sizes = partitionSizes(p, 8);
  for (std::size_t s : sizes) {
    EXPECT_GE(s, 12u);
    EXPECT_LE(s, 13u);
  }
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_GE(p[i], p[i - 1]);
}

TEST(Partition, GridCoversAllTilesEvenly) {
  auto p = partitionGrid(16, 16, 16, 8);
  auto sizes = partitionSizes(p, 8);
  for (std::size_t s : sizes) EXPECT_EQ(s, 512u);  // 8x8x8 blocks
}

TEST(Partition, GridHandlesNonCubicFactorisations) {
  auto p = partitionGrid(20, 10, 5, 6);
  auto sizes = partitionSizes(p, 6);
  std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  EXPECT_EQ(total, 1000u);
  for (std::size_t s : sizes) {
    EXPECT_GT(s, 0u);
    EXPECT_LT(s, 400u);  // roughly balanced
  }
}

TEST(Partition, BfsAssignsEveryRowToValidTile) {
  auto g = matrix::g3CircuitLike(3000);
  auto p = partitionBfs(g.matrix, 7);
  auto sizes = partitionSizes(p, 7);
  std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  EXPECT_EQ(total, g.matrix.rows());
  // Balance within 2x of the average.
  double avg = static_cast<double>(total) / 7.0;
  for (std::size_t s : sizes) {
    EXPECT_GT(static_cast<double>(s), 0.3 * avg);
    EXPECT_LT(static_cast<double>(s), 2.0 * avg);
  }
}

// ---------------------------------------------------------------------------
// Halo layout invariants (property-checked over several matrices/partitions)
// ---------------------------------------------------------------------------

struct LayoutCase {
  const char* name;
  matrix::GeneratedMatrix (*make)();
  std::size_t tiles;
};

matrix::GeneratedMatrix mesh8x8() { return matrix::poisson2d5(8, 8); }
matrix::GeneratedMatrix mesh3d() { return matrix::poisson3d7(8, 8, 8); }
matrix::GeneratedMatrix circuit() { return matrix::g3CircuitLike(2000); }
matrix::GeneratedMatrix shell() { return matrix::afShellLike(1500); }

class HaloLayoutInvariants : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(HaloLayoutInvariants, EveryCellAppearsExactlyOnceAsOwned) {
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout =
      Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  std::vector<int> seen(g.matrix.rows(), 0);
  for (const TileLayout& tl : layout.tiles) {
    for (std::size_t i = 0; i < tl.numOwned; ++i) {
      ++seen[tl.localToGlobal[i]];
      EXPECT_EQ(layout.rowToTile[tl.localToGlobal[i]], tl.tile);
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_P(HaloLayoutInvariants, HaloCopiesCoverAllRemoteReferences) {
  // Every column referenced by a row on tile t must be readable on t:
  // either owned there or present in t's halo.
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout = Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  auto rowPtr = g.matrix.rowPtr();
  auto col = g.matrix.colIdx();
  for (const TileLayout& tl : layout.tiles) {
    std::set<std::size_t> visible(tl.localToGlobal.begin(),
                                  tl.localToGlobal.end());
    for (std::size_t i = 0; i < tl.numOwned; ++i) {
      std::size_t r = tl.localToGlobal[i];
      for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
        EXPECT_TRUE(visible.count(static_cast<std::size_t>(col[k])))
            << "tile " << tl.tile << " row " << r << " needs col " << col[k];
      }
    }
  }
}

TEST_P(HaloLayoutInvariants, RegionsPartitionSeparatorCells) {
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout = Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  std::set<std::size_t> inRegions;
  for (const Region& region : layout.regions) {
    EXPECT_FALSE(region.consumerTiles.empty());
    for (std::size_t t : region.consumerTiles) {
      EXPECT_NE(t, region.ownerTile);
    }
    // Consistent ordering: ascending global ids.
    for (std::size_t i = 1; i < region.cells.size(); ++i) {
      EXPECT_LT(region.cells[i - 1], region.cells[i]);
    }
    for (std::size_t r : region.cells) {
      EXPECT_TRUE(inRegions.insert(r).second) << "cell in two regions";
      EXPECT_EQ(layout.rowToTile[r], region.ownerTile);
    }
  }
  EXPECT_EQ(inRegions.size(), layout.numSeparatorCells());
}

TEST_P(HaloLayoutInvariants, ConsistentOrderingAcrossSeparatorAndHalos) {
  // The §IV core property: the cell order inside a separator region equals
  // the cell order inside every corresponding halo region, so a blockwise
  // copy lands every value at the right local slot.
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout = Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  for (const HaloTransfer& tr : layout.transfers) {
    const Region& region = layout.regions[tr.regionId];
    const TileLayout& src = layout.tiles[tr.srcTile];
    for (std::size_t i = 0; i < tr.count; ++i) {
      EXPECT_EQ(src.localToGlobal[tr.srcLocalOffset + i], region.cells[i]);
    }
    for (const HaloTransfer::Dst& d : tr.dsts) {
      const TileLayout& dst = layout.tiles[d.tile];
      for (std::size_t i = 0; i < tr.count; ++i) {
        EXPECT_EQ(dst.localToGlobal[d.localOffset + i], region.cells[i]);
      }
    }
  }
}

TEST_P(HaloLayoutInvariants, TransfersAreBlockwiseBroadcasts) {
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout = Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  // One transfer per region, broadcast to all consumers.
  EXPECT_EQ(layout.transfers.size(), layout.regions.size());
  std::size_t cellsMoved = 0;
  for (const HaloTransfer& tr : layout.transfers) {
    cellsMoved += tr.count * tr.dsts.size();
  }
  EXPECT_EQ(cellsMoved, layout.numHaloCopies());
  // Fewer transfer instructions than the per-cell baseline.
  auto naive = naivePerCellTransfers(layout);
  EXPECT_EQ(naive.size(), layout.numSeparatorCells());
  EXPECT_LE(layout.transfers.size(), naive.size());
}

TEST_P(HaloLayoutInvariants, PermutationIsValid) {
  const LayoutCase& c = GetParam();
  auto g = c.make();
  auto layout = Partitioner(ipu::Topology::singleIpu(c.tiles)).layout(g);
  auto perm = layout.reorderingPermutation();
  std::vector<int> seen(perm.size(), 0);
  for (std::size_t p : perm) {
    ASSERT_LT(p, perm.size());
    ++seen[p];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  // Applying the permutation keeps the matrix symmetric & well-formed.
  auto b = g.matrix.permuted(perm);
  EXPECT_EQ(b.nnz(), g.matrix.nnz());
  EXPECT_TRUE(b.isSymmetric(1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HaloLayoutInvariants,
    ::testing::Values(LayoutCase{"mesh8x8_4t", &mesh8x8, 4},
                      LayoutCase{"mesh8x8_7t", &mesh8x8, 7},
                      LayoutCase{"mesh3d_8t", &mesh3d, 8},
                      LayoutCase{"mesh3d_5t", &mesh3d, 5},
                      LayoutCase{"circuit_6t", &circuit, 6},
                      LayoutCase{"shell_9t", &shell, 9}),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      return info.param.name;
    });

TEST(HaloLayout, PaperFigure3MeshExample) {
  // The paper's Fig. 3: an 8x8 mesh partitioned across four tiles. Tile 1
  // (top-right quadrant in their figure) must exchange edge regions with two
  // direct neighbours and a corner region involving all.
  auto g = matrix::poisson2d5(8, 8);
  auto layout = buildLayout(g.matrix, partitionGrid(8, 8, 1, 4), 4);

  // 4x4 blocks: 16 cells per tile.
  for (const TileLayout& tl : layout.tiles) {
    EXPECT_EQ(tl.numOwned, 16u);
    // Interior of each 4x4 block (5-point stencil): the 3x3 corner block
    // away from both cut lines ⇒ 9 interior cells.
    EXPECT_EQ(tl.numInterior, 9u);
    // Separator: 7 cells (one edge of 4 + one of 4 sharing the corner).
    EXPECT_EQ(tl.numOwned - tl.numInterior, 7u);
    // Halo: mirrored separators from the two adjacent quadrants: 4 + 4.
    EXPECT_EQ(tl.numHalo, 8u);
    // Three separator regions: the edge toward each direct neighbour (3
    // cells each) plus the cut-corner cell, which both neighbours require
    // and which therefore forms its own broadcast region.
    EXPECT_EQ(tl.separatorRegions.size(), 3u);
    // Four halo regions consumed: each neighbour's facing edge (3 cells)
    // plus each neighbour's corner region (1 cell).
    EXPECT_EQ(tl.haloRegions.size(), 4u);
  }
  // 3 regions per tile, 12 in total; the corner regions have two consumers
  // (broadcast in a single blockwise transfer — the §IV payoff).
  EXPECT_EQ(layout.regions.size(), 12u);
  std::size_t broadcast = 0;
  for (const Region& r : layout.regions) {
    if (r.consumerTiles.size() == 2) {
      EXPECT_EQ(r.cells.size(), 1u);  // the cut corner
      ++broadcast;
    }
  }
  EXPECT_EQ(broadcast, 4u);
}

TEST(HaloLayout, BroadcastRegionsAppearFor3dStencils) {
  // A 7-point stencil split along two axes creates edge cells required by
  // two neighbours — regions with multiple consumers exercised here.
  auto g = matrix::poisson3d7(8, 8, 8);
  auto layout = buildLayout(g.matrix, partitionGrid(8, 8, 8, 8), 8);
  std::size_t broadcastRegions = 0;
  for (const Region& r : layout.regions) {
    if (r.consumerTiles.size() > 1) ++broadcastRegions;
  }
  EXPECT_GT(broadcastRegions, 0u);
  // Broadcast saves sends: the blockwise plan issues fewer transfers than
  // there are (region, consumer) pairs.
  std::size_t pairs = 0;
  for (const Region& r : layout.regions) pairs += r.consumerTiles.size();
  EXPECT_LT(layout.transfers.size(), pairs);
}

TEST(HaloLayout, SingleTileHasNoHalo) {
  auto g = matrix::poisson2d5(6, 6);
  auto layout = buildLayout(g.matrix, partitionLinear(36, 1), 1);
  EXPECT_TRUE(layout.regions.empty());
  EXPECT_TRUE(layout.transfers.empty());
  EXPECT_EQ(layout.tiles[0].numOwned, 36u);
  EXPECT_EQ(layout.tiles[0].numInterior, 36u);
  EXPECT_EQ(layout.tiles[0].numHalo, 0u);
}

// ---------------------------------------------------------------------------
// Pod-aware partitioning (multi-IPU)
// ---------------------------------------------------------------------------

TEST(PodPartition, SingleIpuMatchesDeprecatedPartitionAuto) {
  // The old free function is now a shim over Partitioner; the single-chip
  // path must stay bit-compatible so existing layouts (and plan-cache
  // fingerprints) survive the port.
  for (std::size_t tiles : {4u, 7u}) {
    auto grid = matrix::poisson2d5(8, 8);
    auto circ = matrix::g3CircuitLike(1500);
    EXPECT_EQ(Partitioner(ipu::Topology::singleIpu(tiles)).map(grid),
              partitionAuto(grid, tiles));
    EXPECT_EQ(Partitioner(ipu::Topology::singleIpu(tiles)).map(circ),
              partitionAuto(circ, tiles));
  }
}

TEST(PodPartition, MapIsIpuMajorAndComplete) {
  auto g = matrix::poisson3d7(12, 12, 12);
  const ipu::Topology topo = ipu::Topology::pod(4, 8);
  auto map = Partitioner(topo).map(g);
  ASSERT_EQ(map.size(), g.matrix.rows());
  std::vector<std::size_t> rowsPerIpu(4, 0);
  for (std::size_t t : map) {
    ASSERT_LT(t, topo.totalTiles());
    ++rowsPerIpu[topo.target().ipuOfTile(t)];
  }
  // Every chip carries a share, balanced within 2x of the mean.
  const double avg = static_cast<double>(g.matrix.rows()) / 4.0;
  for (std::size_t r : rowsPerIpu) {
    EXPECT_GT(static_cast<double>(r), 0.4 * avg);
    EXPECT_LT(static_cast<double>(r), 2.0 * avg);
  }
}

TEST(PodPartition, CutSurfaceMonotoneInPodSize) {
  // More chips at fixed tiles/chip = more subdomain surface crossing links.
  auto g = matrix::poisson3d7(12, 12, 12);
  std::size_t prev = 0;
  for (std::size_t ipus : {2u, 4u, 8u}) {
    const ipu::Topology topo = ipu::Topology::pod(ipus, 16);
    auto map = Partitioner(topo).map(g);
    const std::size_t cut = interIpuCut(g.matrix, map, topo);
    EXPECT_GT(cut, 0u);
    EXPECT_GE(cut, prev);
    prev = cut;
  }
}

TEST(PodPartition, PodAwareCutNoWorseThanLinearBaseline) {
  // The hierarchical split must not cross more links than the naive
  // contiguous-blocks baseline on a structured grid.
  auto g = matrix::poisson3d7(16, 16, 16);
  const ipu::Topology topo = ipu::Topology::pod(4, 16);
  const std::size_t podCut =
      interIpuCut(g.matrix, Partitioner(topo).map(g), topo);
  const std::size_t linCut = interIpuCut(
      g.matrix, Partitioner(topo, Partitioner::Strategy::Linear).map(g),
      topo);
  EXPECT_LE(podCut, linCut);
}

TEST(PodPartition, InterIpuCutCountsOnlyCrossChipEdges) {
  // 2x2 grid, rows {0,1} on chip 0 and {2,3} on chip 1: exactly the four
  // structural entries (0,2),(2,0),(1,3),(3,1) cross the link.
  auto g = matrix::poisson2d5(2, 2);
  const ipu::Topology topo = ipu::Topology::pod(2, 1);
  const std::vector<std::size_t> map = {0, 0, 1, 1};
  EXPECT_EQ(interIpuCut(g.matrix, map, topo), 4u);
  // Everything on one chip: no cut.
  const std::vector<std::size_t> oneChip = {0, 0, 0, 0};
  EXPECT_EQ(interIpuCut(g.matrix, oneChip, topo), 0u);
}

TEST(PodPartition, BlacklistRemapsAcrossIpuBoundaries) {
  // Kill chip 1 entirely plus one tile of chip 2: rows must migrate across
  // IPU boundaries onto surviving tiles only, weighted by surviving
  // capacity, and the layout must still build.
  auto g = matrix::poisson3d7(10, 10, 10);
  const ipu::Topology topo = ipu::Topology::pod(4, 8);
  std::vector<std::size_t> dead = {8, 9, 10, 11, 12, 13, 14, 15, 17};
  Partitioner part(topo);
  part.setBlacklist(dead);
  auto map = part.map(g);
  ASSERT_EQ(map.size(), g.matrix.rows());
  std::set<std::size_t> deadSet(dead.begin(), dead.end());
  std::vector<std::size_t> rowsPerIpu(4, 0);
  for (std::size_t t : map) {
    ASSERT_LT(t, topo.totalTiles());
    EXPECT_FALSE(deadSet.count(t)) << "row placed on dead tile " << t;
    ++rowsPerIpu[topo.target().ipuOfTile(t)];
  }
  EXPECT_EQ(rowsPerIpu[1], 0u);  // the dead chip carries nothing
  // Chip 2 lost 1 of 8 tiles; it still carries rows, but fewer than the
  // intact chips.
  EXPECT_GT(rowsPerIpu[2], 0u);
  EXPECT_LT(rowsPerIpu[2], rowsPerIpu[0]);
  EXPECT_LT(rowsPerIpu[2], rowsPerIpu[3]);
  auto layout = part.layout(g);
  EXPECT_EQ(layout.tiles.size(), topo.totalTiles());
}
