// Host CPU reference solver stack (the HYPRE stand-in of §VI-A).
//
// Sequential, double-precision CSR kernels: SpMV, *global* ILU(0)
// factorisation and triangular solves, and BiCGStab. Unlike the IPU solver,
// the ILU here is computed on the whole matrix (no domain decomposition), so
// its preconditioning quality is what a single CPU node achieves — the root
// of the CPU's relatively better showing in the paper's Fig. 8 (§VI-D).
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.hpp"

namespace graphene::baseline {

/// Global ILU(0) factors stored in-place on the matrix pattern.
class HostIlu0 {
 public:
  explicit HostIlu0(const matrix::CsrMatrix& a);

  /// z = (LU)⁻¹ r : forward then backward substitution.
  void solve(std::span<const double> r, std::span<double> z) const;

  std::size_t rows() const { return diagIdx_.size(); }

 private:
  std::vector<std::size_t> rowPtr_;
  std::vector<std::int32_t> col_;
  std::vector<double> val_;
  std::vector<std::size_t> diagIdx_;
  mutable std::vector<double> scratch_;
};

struct HostSolveResult {
  std::size_t iterations = 0;
  bool converged = false;
  double seconds = 0;  // measured wall-clock on this host
  std::vector<double> residualHistory;  // relative recurrence residual
};

/// Double-precision (P)BiCGStab; `useIlu` toggles the global ILU(0)
/// preconditioner. Measured with a monotonic clock.
HostSolveResult hostBiCgStab(const matrix::CsrMatrix& a,
                             std::span<const double> b, double tolerance,
                             std::size_t maxIterations, bool useIlu);

/// Double-precision preconditioned Conjugate Gradient for SPD systems.
HostSolveResult hostCg(const matrix::CsrMatrix& a, std::span<const double> b,
                       double tolerance, std::size_t maxIterations,
                       bool useIlu);

/// Double-precision Gauss-Seidel sweeps until the relative residual drops
/// below `tolerance` (checked after every sweep).
HostSolveResult hostGaussSeidel(const matrix::CsrMatrix& a,
                                std::span<const double> b, double tolerance,
                                std::size_t maxSweeps);

/// Measures the average seconds of one CSR SpMV on this host
/// (`warmup` + `measured` repetitions, paper §VI-A methodology).
double measureHostSpmvSeconds(const matrix::CsrMatrix& a,
                              std::size_t warmup = 20,
                              std::size_t measured = 100);

}  // namespace graphene::baseline
