// SolverService implementation: the worker loop, the retry/degradation
// ladder, admission control, the circuit breaker and the plan-cache
// choreography documented in the header.
#include "solver/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "support/error.hpp"

namespace graphene::solver {

namespace {

/// What a service config key must hold (mirrors the solver-config
/// validation in config.cpp: unknown keys and wrong types are errors that
/// name the key and list the valid ones).
enum class KeyKind { Number, Object, Bool, String };

const char* toString(KeyKind kind) {
  switch (kind) {
    case KeyKind::Number: return "number";
    case KeyKind::Object: return "object";
    case KeyKind::Bool: return "boolean";
    case KeyKind::String: return "string";
  }
  return "?";
}

struct KeySpec {
  const char* key;
  KeyKind kind;
};

void validateKeys(const json::Value& config, const std::string& where,
                  std::initializer_list<KeySpec> allowed) {
  for (const auto& [key, value] : config.asObject()) {
    const KeySpec* spec = nullptr;
    for (const KeySpec& s : allowed) {
      if (key == s.key) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::string valid;
      for (const KeySpec& s : allowed) {
        if (!valid.empty()) valid += ", ";
        valid += s.key;
      }
      GRAPHENE_CHECK(false, "unknown key '", key, "' in ", where,
                     " config (valid keys: ", valid, ")");
    }
    const bool ok = spec->kind == KeyKind::Number   ? value.isNumber()
                    : spec->kind == KeyKind::Bool   ? value.isBool()
                    : spec->kind == KeyKind::String ? value.isString()
                                                    : value.isObject();
    GRAPHENE_CHECK(ok, "key '", key, "' in ", where, " config must be a ",
                   toString(spec->kind));
  }
}

/// Worst-case wall milliseconds the retry ladder can spend sleeping.
double worstCaseBackoffMs(const RetryPolicy& r) {
  double total = 0, step = r.backoffBaseMs;
  for (std::size_t i = 0; i < r.maxRetries; ++i) {
    total += std::min(step, r.backoffMaxMs) * (1.0 + r.jitter);
    step *= r.backoffFactor;
  }
  return total;
}

/// Validates every knob by name with its valid range — a bad policy should
/// fail at construction, not as a wedged queue or an instant-expiring
/// deadline at serving time.
void validateOptions(const ServiceOptions& o) {
  GRAPHENE_CHECK(o.workers >= 1, "service.workers must be >= 1 (got ",
                 o.workers, ")");
  GRAPHENE_CHECK(o.tiles >= 1, "service.tiles must be >= 1 (got ", o.tiles,
                 ")");
  GRAPHENE_CHECK(o.metricsPort >= -1 && o.metricsPort <= 65535,
                 "service.metricsPort must be -1 (disabled) or a TCP port "
                 "in [0, 65535], 0 = ephemeral (got ", o.metricsPort, ")");
  GRAPHENE_CHECK(o.flightEventCapacity >= 1,
                 "service.flightEventCapacity must be >= 1 (got ",
                 o.flightEventCapacity, ")");
  GRAPHENE_CHECK(o.defaultDeadlineCycles >= 0,
                 "service.defaultDeadlineCycles must be >= 0 cycles, 0 = no "
                 "deadline (got ", o.defaultDeadlineCycles, ")");
  GRAPHENE_CHECK(o.defaultDeadlineSeconds >= 0,
                 "service.defaultDeadlineSeconds must be >= 0 seconds, 0 = "
                 "no deadline (got ", o.defaultDeadlineSeconds, ")");
  GRAPHENE_CHECK(o.retry.backoffFactor >= 1.0,
                 "service.retry.backoffFactor must be >= 1 (got ",
                 o.retry.backoffFactor,
                 "); factors below 1 would shrink the backoff");
  GRAPHENE_CHECK(o.retry.backoffBaseMs >= 0,
                 "service.retry.backoffBaseMs must be >= 0 ms (got ",
                 o.retry.backoffBaseMs, ")");
  GRAPHENE_CHECK(o.retry.backoffMaxMs >= o.retry.backoffBaseMs,
                 "service.retry.backoffMaxMs (", o.retry.backoffMaxMs,
                 ") must be >= service.retry.backoffBaseMs (",
                 o.retry.backoffBaseMs, ")");
  GRAPHENE_CHECK(o.retry.jitter >= 0 && o.retry.jitter < 1,
                 "service.retry.jitter must be in [0, 1) (got ",
                 o.retry.jitter, ")");
  GRAPHENE_CHECK(o.admission.maxQueueDepth >= 1,
                 "service.admission.maxQueueDepth must be >= 1 (got ",
                 o.admission.maxQueueDepth, ")");
  GRAPHENE_CHECK(o.admission.headroom > 0 && o.admission.headroom <= 1,
                 "service.admission.headroom must be in (0, 1] (got ",
                 o.admission.headroom, ")");
  GRAPHENE_CHECK(o.breaker.failuresToOpen >= 1,
                 "service.breaker.failuresToOpen must be >= 1 (got ",
                 o.breaker.failuresToOpen, ")");
  GRAPHENE_CHECK(o.breaker.openForJobs >= 1,
                 "service.breaker.openForJobs must be >= 1 (got ",
                 o.breaker.openForJobs, ")");
  GRAPHENE_CHECK(o.degradation.toleranceRelaxFactor >= 1.0,
                 "service.degradation.toleranceRelaxFactor must be >= 1 "
                 "(got ", o.degradation.toleranceRelaxFactor, ")");
  if (o.defaultDeadlineSeconds > 0) {
    const double worst = worstCaseBackoffMs(o.retry);
    GRAPHENE_CHECK(
        worst < o.defaultDeadlineSeconds * 1000.0,
        "service.retry budget exceeds the deadline: ", o.retry.maxRetries,
        " retries back off up to ", worst,
        " ms worst-case, but service.defaultDeadlineSeconds is ",
        o.defaultDeadlineSeconds,
        " s — a job would spend its whole deadline sleeping; lower "
        "retry.maxRetries/backoff or raise the deadline");
  }
}

/// A verdict the retry ladder may take another shot at: transient numerical
/// damage, not a property of the problem.
bool isRetryable(SolveStatus s) {
  switch (s) {
    case SolveStatus::NanDetected:
    case SolveStatus::CorruptionDetected:
    case SolveStatus::Breakdown:
    case SolveStatus::Diverged:
      return true;
    default:
      return false;
  }
}

/// Counts toward the circuit breaker: the job ended in damage, with its
/// retry budget spent. Deadline/cancel verdicts say nothing about the
/// matrix and stay neutral.
bool isBreakerFailure(const JobResult& r) {
  return r.typedError || isRetryable(r.solve.status);
}

/// Deterministic jitter fraction in [0, 1) from (jobId, attempt).
double jitterFraction(std::size_t jobId, std::size_t attempt) {
  std::uint64_t bits[2] = {static_cast<std::uint64_t>(jobId),
                           static_cast<std::uint64_t>(attempt)};
  const std::uint64_t h = fnv1aBytes(bits, sizeof bits);
  return static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
}

/// The degraded configuration of the final attempt: relaxed tolerances and
/// (recursively) CG swapped for the more fault-robust BiCGStab.
void degradeConfigInPlace(json::Value& v, const DegradationPolicy& d) {
  if (!v.isObject()) return;
  json::Object& o = v.asObject();
  auto type = o.find("type");
  if (d.cgToBicgstab && type != o.end() && type->second.isString() &&
      type->second.asString() == "cg") {
    o["type"] = "bicgstab";
  }
  auto tol = o.find("tolerance");
  if (d.toleranceRelaxFactor > 1.0 && tol != o.end() &&
      tol->second.isNumber() && tol->second.asNumber() > 0) {
    o["tolerance"] = tol->second.asNumber() * d.toleranceRelaxFactor;
  }
  for (const char* nested : {"inner", "preconditioner"}) {
    auto it = o.find(nested);
    if (it != o.end()) degradeConfigInPlace(it->second, d);
  }
}

// Bucket ladders of the service histograms. Fixed at these values so
// exposition output and merged profiles are comparable across runs;
// powers of two keep the bounds exact in binary.
constexpr support::HistogramLadder kCyclesLadder{1024.0, 2.0, 24};
constexpr support::HistogramLadder kMsLadder{0.25, 2.0, 20};
constexpr support::HistogramLadder kIterLadder{1.0, 2.0, 16};
constexpr support::HistogramLadder kRetryLadder{1.0, 2.0, 6};

}  // namespace

ServiceOptions serviceOptionsFromJson(const json::Value& config) {
  GRAPHENE_CHECK(config.isObject(), "service config must be a JSON object");
  validateKeys(config, "service",
               {{"workers", KeyKind::Number},
                {"tiles", KeyKind::Number},
                {"topology", KeyKind::Object},
                {"hostThreads", KeyKind::Number},
                {"planCacheCapacity", KeyKind::Number},
                {"defaultDeadlineCycles", KeyKind::Number},
                {"defaultDeadlineSeconds", KeyKind::Number},
                {"traceCapacity", KeyKind::Number},
                {"maxRetainedResults", KeyKind::Number},
                {"metricsPort", KeyKind::Number},
                {"flightRecorderJobs", KeyKind::Number},
                {"flightEventCapacity", KeyKind::Number},
                {"flightDir", KeyKind::String},
                {"logPath", KeyKind::String},
                {"retry", KeyKind::Object},
                {"admission", KeyKind::Object},
                {"breaker", KeyKind::Object},
                {"degradation", KeyKind::Object}});
  ServiceOptions o;
  o.workers = static_cast<std::size_t>(
      config.getOr("workers", static_cast<std::int64_t>(o.workers)));
  o.tiles = static_cast<std::size_t>(
      config.getOr("tiles", static_cast<std::int64_t>(o.tiles)));
  if (config.contains("topology")) {
    const json::Value& t = config.at("topology");
    validateKeys(t, "service.topology",
                 {{"ipus", KeyKind::Number},
                  {"tilesPerIpu", KeyKind::Number},
                  {"linkBytesPerSecond", KeyKind::Number},
                  {"linkLatencyCycles", KeyKind::Number},
                  {"linksPerIpu", KeyKind::Number},
                  {"aggregateHalo", KeyKind::Bool}});
    ipu::LinkModel link;
    link.bytesPerSecond = t.getOr("linkBytesPerSecond", link.bytesPerSecond);
    link.latencyCycles = t.getOr("linkLatencyCycles", link.latencyCycles);
    link.linksPerIpu = static_cast<std::size_t>(
        t.getOr("linksPerIpu", static_cast<std::int64_t>(link.linksPerIpu)));
    link.aggregateHalo = t.getOr("aggregateHalo", link.aggregateHalo);
    const auto ipus = static_cast<std::size_t>(
        t.getOr("ipus", static_cast<std::int64_t>(1)));
    const auto perIpu = static_cast<std::size_t>(t.getOr(
        "tilesPerIpu", static_cast<std::int64_t>(o.tiles / std::max<std::size_t>(ipus, 1))));
    o.topology = ipu::Topology::pod(ipus, perIpu, link);
    o.tiles = o.topology->totalTiles();
  }
  o.hostThreads = static_cast<std::size_t>(
      config.getOr("hostThreads", static_cast<std::int64_t>(o.hostThreads)));
  o.planCacheCapacity = static_cast<std::size_t>(config.getOr(
      "planCacheCapacity", static_cast<std::int64_t>(o.planCacheCapacity)));
  o.defaultDeadlineCycles =
      config.getOr("defaultDeadlineCycles", o.defaultDeadlineCycles);
  o.defaultDeadlineSeconds =
      config.getOr("defaultDeadlineSeconds", o.defaultDeadlineSeconds);
  o.traceCapacity = static_cast<std::size_t>(config.getOr(
      "traceCapacity", static_cast<std::int64_t>(o.traceCapacity)));
  o.maxRetainedResults = static_cast<std::size_t>(config.getOr(
      "maxRetainedResults", static_cast<std::int64_t>(o.maxRetainedResults)));
  o.metricsPort = static_cast<int>(config.getOr(
      "metricsPort", static_cast<std::int64_t>(o.metricsPort)));
  o.flightRecorderJobs = static_cast<std::size_t>(config.getOr(
      "flightRecorderJobs", static_cast<std::int64_t>(o.flightRecorderJobs)));
  o.flightEventCapacity = static_cast<std::size_t>(config.getOr(
      "flightEventCapacity",
      static_cast<std::int64_t>(o.flightEventCapacity)));
  o.flightDir = config.getOr("flightDir", o.flightDir);
  o.logPath = config.getOr("logPath", o.logPath);
  if (config.contains("retry")) {
    const json::Value& r = config.at("retry");
    validateKeys(r, "service.retry",
                 {{"maxRetries", KeyKind::Number},
                  {"backoffBaseMs", KeyKind::Number},
                  {"backoffFactor", KeyKind::Number},
                  {"backoffMaxMs", KeyKind::Number},
                  {"jitter", KeyKind::Number}});
    o.retry.maxRetries = static_cast<std::size_t>(config.at("retry").getOr(
        "maxRetries", static_cast<std::int64_t>(o.retry.maxRetries)));
    o.retry.backoffBaseMs = r.getOr("backoffBaseMs", o.retry.backoffBaseMs);
    o.retry.backoffFactor = r.getOr("backoffFactor", o.retry.backoffFactor);
    o.retry.backoffMaxMs = r.getOr("backoffMaxMs", o.retry.backoffMaxMs);
    o.retry.jitter = r.getOr("jitter", o.retry.jitter);
  }
  if (config.contains("admission")) {
    const json::Value& a = config.at("admission");
    validateKeys(a, "service.admission",
                 {{"maxQueueDepth", KeyKind::Number},
                  {"sramPoolBytes", KeyKind::Number},
                  {"headroom", KeyKind::Number}});
    o.admission.maxQueueDepth = static_cast<std::size_t>(a.getOr(
        "maxQueueDepth", static_cast<std::int64_t>(o.admission.maxQueueDepth)));
    o.admission.sramPoolBytes = static_cast<std::size_t>(a.getOr(
        "sramPoolBytes", static_cast<std::int64_t>(o.admission.sramPoolBytes)));
    o.admission.headroom = a.getOr("headroom", o.admission.headroom);
  }
  if (config.contains("breaker")) {
    const json::Value& b = config.at("breaker");
    validateKeys(b, "service.breaker",
                 {{"failuresToOpen", KeyKind::Number},
                  {"openForJobs", KeyKind::Number}});
    o.breaker.failuresToOpen = static_cast<std::size_t>(b.getOr(
        "failuresToOpen", static_cast<std::int64_t>(o.breaker.failuresToOpen)));
    o.breaker.openForJobs = static_cast<std::size_t>(b.getOr(
        "openForJobs", static_cast<std::int64_t>(o.breaker.openForJobs)));
  }
  if (config.contains("degradation")) {
    const json::Value& d = config.at("degradation");
    validateKeys(d, "service.degradation",
                 {{"enabled", KeyKind::Bool},
                  {"toleranceRelaxFactor", KeyKind::Number},
                  {"cgToBicgstab", KeyKind::Bool},
                  {"perCellHalo", KeyKind::Bool}});
    o.degradation.enabled = d.getOr("enabled", o.degradation.enabled);
    o.degradation.toleranceRelaxFactor = d.getOr(
        "toleranceRelaxFactor", o.degradation.toleranceRelaxFactor);
    o.degradation.cgToBicgstab =
        d.getOr("cgToBicgstab", o.degradation.cgToBicgstab);
    o.degradation.perCellHalo =
        d.getOr("perCellHalo", o.degradation.perCellHalo);
  }
  validateOptions(o);
  return o;
}

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.planCacheCapacity),
      flight_(options_.flightRecorderJobs, options_.flightEventCapacity) {
  validateOptions(options_);
  if (options_.topology) options_.tiles = options_.topology->totalTiles();
  sessionOptions_.tiles = options_.tiles;
  sessionOptions_.topology = options_.topology;
  sessionOptions_.hostThreads = options_.hostThreads;
  sessionOptions_.traceCapacity = options_.traceCapacity;
  // Resolve the machine shape once (explicit topology > GRAPHENE_TEST_POD >
  // plain tiles): every pipeline the service builds targets this pod, plan
  // keys hash its fingerprint, and chip-dead verdicts shrink it in place.
  sessionOptions_.topology = resolveSessionTopology(sessionOptions_);
  sessionOptions_.tiles = sessionOptions_.topology->totalTiles();
  // Pooled pipelines serve fault-injected jobs too: give each solve a remap
  // budget that survives a couple of dead tiles instead of the facade's
  // conservative default of one.
  sessionOptions_.maxRemaps = std::max<std::size_t>(2, options_.tiles / 8);
  // # HELP text for the Prometheus exposition. Per-verdict histogram
  // families get theirs on first observation (observeTerminal).
  metrics_.setHelp("service.jobs.accepted",
                   "Jobs admitted past admission control.");
  metrics_.setHelp("service.jobs.completed", "Jobs that converged.");
  metrics_.setHelp("service.jobs.failed",
                   "Jobs that ended failed: typed error, transient verdict "
                   "with retries spent, or max-iterations.");
  metrics_.setHelp("service.jobs.rejected",
                   "Jobs refused at admission or by an open circuit "
                   "breaker.");
  metrics_.setHelp("service.queue.depth",
                   "Jobs currently waiting in the queue.");
  metrics_.setHelp("service.queue_wait_ms",
                   "Wall milliseconds a job waited in the queue before a "
                   "worker picked it up.");
  metrics_.setHelp("service.retries",
                   "Retry attempts consumed per terminal job.");
  metrics_.setHelp("service.iterations.converged",
                   "Iterations to convergence of completed jobs.");
  if (!options_.logPath.empty()) {
    log_ = std::make_unique<support::LogSink>(options_.logPath);
    json::Object f;
    f["workers"] = options_.workers;
    f["tiles"] = sessionOptions_.tiles;
    f["topologyFingerprint"] =
        std::to_string(sessionOptions_.topology->fingerprint());
    log_->log("service:start", SIZE_MAX, std::move(f));
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  // Started last: a request must never observe a half-constructed service.
  if (options_.metricsPort >= 0) {
    http_.start(static_cast<std::uint16_t>(options_.metricsPort),
                [this](const std::string& path) { return handleHttp(path); });
  }
}

ipu::Topology SolverService::resolvedTopology() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *sessionOptions_.topology;
}

SolverService::~SolverService() { shutdown(); }

void SolverService::recordJob(const JobEvent& event, std::size_t jobId,
                              const std::string& detail) {
  if (event.counter != nullptr) metrics_.addCounter(event.counter, 1);
  if (event.trace == nullptr) return;
  double seq;
  {
    std::lock_guard<std::mutex> lock(traceMu_);
    seq = static_cast<double>(++traceSeq_);
    support::recordJobEvent(&trace_, event.trace, jobId, seq, detail);
  }
  if (jobId != SIZE_MAX) {
    support::TraceEvent ev;
    ev.kind = support::TraceKind::Job;
    ev.name = event.trace;
    ev.jobId = jobId;
    ev.startCycle = seq;
    ev.detail = detail;
    flight_.record(jobId, ev);
  }
  if (log_) {
    json::Object fields;
    if (!detail.empty()) fields["detail"] = detail;
    log_->log(event.trace, jobId, std::move(fields));
  }
}

void SolverService::observeTerminal(const JobResult& result) {
  const std::string verdict =
      result.typedError ? "typed-error"
                        : std::string(toString(result.solve.status));
  const std::string cycles = "service.latency.cycles." + verdict;
  metrics_.setHelp(cycles, "Simulated cycles per terminal job, by verdict.");
  metrics_.observe(cycles, result.simCycles, kCyclesLadder);
  const std::string wall = "service.latency.wall_ms." + verdict;
  metrics_.setHelp(wall,
                   "Wall milliseconds from accept to terminal verdict, by "
                   "verdict.");
  metrics_.observe(wall, result.wallSeconds * 1000.0, kMsLadder);
  metrics_.observe(
      "service.retries",
      result.attempts > 0 ? static_cast<double>(result.attempts - 1) : 0.0,
      kRetryLadder);
  if (!result.typedError && result.solve.status == SolveStatus::Converged) {
    metrics_.observe("service.iterations.converged",
                     static_cast<double>(result.solve.iterations),
                     kIterLadder);
  }
}

json::Value SolverService::healthJson() const {
  json::Object o;
  o["status"] = "ok";
  o["workers"] = options_.workers;
  o["pooledPipelines"] = cache_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ipu::Topology& t = *sessionOptions_.topology;
    json::Object topo;
    topo["fingerprint"] = std::to_string(t.fingerprint());
    topo["ipus"] = t.numIpus();
    topo["aliveIpus"] = t.numAliveIpus();
    topo["tilesPerIpu"] = t.tilesPerIpu();
    topo["aliveTiles"] = t.numAliveTiles();
    json::Array dead;
    for (std::size_t d : t.deadIpus()) dead.push_back(json::Value(d));
    topo["deadIpus"] = std::move(dead);
    o["topology"] = std::move(topo);
    o["queueDepth"] = queue_.size();
    o["retainedJobs"] = jobs_.size();
    o["submitted"] = nextJobId_;
    o["stopping"] = stopping_;
    json::Array brs;
    for (const auto& [fp, b] : breakers_) {
      json::Object br;
      br["structureFingerprint"] = std::to_string(fp);
      br["state"] = b.openRemaining > 0 ? "open"
                    : b.halfOpen        ? "half-open"
                                        : "closed";
      br["consecutiveFailures"] = b.consecutiveFailures;
      br["openRemaining"] = b.openRemaining;
      br["probeInFlight"] = b.probeInFlight;
      brs.push_back(json::Value(std::move(br)));
    }
    o["breakers"] = std::move(brs);
  }
  return json::Value(std::move(o));
}

json::Value SolverService::jobsJson() const {
  // Two-phase snapshot, honouring the service lock order: collect the
  // states under mu_, release it, then lock each job individually — never
  // mu_ and a JobState::mu together.
  std::vector<std::pair<std::size_t, std::shared_ptr<JobState>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.assign(jobs_.begin(), jobs_.end());
  }
  json::Array arr;
  for (const auto& [id, state] : snapshot) {
    json::Object j;
    j["id"] = id;
    std::lock_guard<std::mutex> lock(state->mu);
    j["phase"] = std::string(state->phase);
    if (state->cancelRequested.load(std::memory_order_relaxed)) {
      j["cancelRequested"] = true;
    }
    if (state->done) {
      const JobResult& r = state->result;
      j["verdict"] = r.typedError ? std::string("typed-error")
                                  : std::string(toString(r.solve.status));
      if (!r.message.empty()) j["message"] = r.message;
      j["attempts"] = r.attempts;
      j["degraded"] = r.degraded;
      j["planCacheHit"] = r.planCacheHit;
      j["iterations"] = r.solve.iterations;
      j["simCycles"] = r.simCycles;
      j["wallSeconds"] = r.wallSeconds;
    }
    arr.push_back(json::Value(std::move(j)));
  }
  json::Object o;
  o["jobs"] = std::move(arr);
  return json::Value(std::move(o));
}

support::HttpServer::Response SolverService::handleHttp(
    const std::string& path) {
  support::HttpServer::Response resp;
  if (path == "/metrics") {
    resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = metricsText();
    return resp;
  }
  if (path == "/healthz") {
    resp.contentType = "application/json";
    resp.body = healthJson().dump() + "\n";
    return resp;
  }
  if (path == "/jobs") {
    resp.contentType = "application/json";
    resp.body = jobsJson().dump() + "\n";
    return resp;
  }
  const std::string flightPrefix = "/flight/";
  if (path.rfind(flightPrefix, 0) == 0) {
    const std::string idText = path.substr(flightPrefix.size());
    std::size_t id = 0;
    bool valid = !idText.empty();
    for (char c : idText) valid = valid && c >= '0' && c <= '9';
    if (valid) id = static_cast<std::size_t>(std::stoull(idText));
    std::optional<FlightRecord> record =
        valid ? flight_.record(id) : std::nullopt;
    if (!record) {
      resp.status = 404;
      resp.body = "no flight record for job '" + idText + "' (the recorder "
                  "retains the last " + std::to_string(flight_.retainJobs()) +
                  " terminal jobs)\n";
      return resp;
    }
    resp.contentType = "application/x-ndjson";
    resp.body = flightRecordToJsonl(*record);
    return resp;
  }
  resp.status = 404;
  resp.body =
      "not found; endpoints: /metrics /healthz /jobs /flight/<id>\n";
  return resp;
}

support::TraceSink SolverService::traceSnapshot() const {
  std::lock_guard<std::mutex> lock(traceMu_);
  return trace_;
}

std::size_t SolverService::estimateSramCharge(const matrix::GeneratedMatrix& m,
                                              std::uint64_t structureHash) {
  // Known structure: the real measurement from a built pipeline's
  // TileMemoryLedger (peak per-tile bytes × tiles, an upper bound on the
  // machine-wide residency). First contact: raw device storage — float
  // coefficients + int32 structure per nonzero, a handful of float vectors
  // per row — as a deliberately rough lower-bound estimate.
  auto it = knownSramPeak_.find(structureHash);
  if (it != knownSramPeak_.end()) return it->second;
  const matrix::CsrMatrix& a = m.matrix;
  return a.nnz() * (sizeof(float) + sizeof(std::int32_t)) +
         a.rows() * 12 * sizeof(float);
}

std::size_t SolverService::submit(const matrix::GeneratedMatrix& m,
                                  const json::Value& solverConfig,
                                  std::vector<double> rhs,
                                  SolveJobOptions jobOptions) {
  GRAPHENE_CHECK(m.matrix.rows() == rhs.size(), "rhs has ", rhs.size(),
                 " entries but the matrix has ", m.matrix.rows(), " rows");
  // Build the solver once up front so a malformed config fails the submit
  // with the factory's own key-naming error, not a worker thread.
  (void)makeSolver(solverConfig);

  Job job;
  job.m = m;
  job.solverConfig = solverConfig;
  job.rhs = std::move(rhs);
  job.jobOptions = std::move(jobOptions);
  job.acceptedAt = std::chrono::steady_clock::now();

  auto state = std::make_shared<JobState>();
  state->acceptedAt = job.acceptedAt;
  std::string rejection;
  std::size_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRAPHENE_CHECK(!stopping_, "SolverService::submit() after shutdown()");
    id = nextJobId_++;
    job.id = id;
    jobs_[id] = state;
    const std::uint64_t structureHash =
        structureFingerprint(m, sessionOptions_);
    // Identity fields of the flight record — written before the job is
    // visible to any worker (it is not queued yet), read at seal time.
    state->structureFp = structureHash;
    state->configFp = configFingerprint(solverConfig);
    state->topologyFp = sessionOptions_.topology->fingerprint();
    state->solverConfigDump = solverConfig.dump();
    job.sramCharge = estimateSramCharge(m, structureHash);
    const auto usable = static_cast<std::size_t>(
        options_.admission.headroom *
        static_cast<double>(options_.admission.sramPoolBytes));
    if (queue_.size() >= options_.admission.maxQueueDepth) {
      rejection = "queue depth " + std::to_string(queue_.size()) +
                  " at admission.maxQueueDepth " +
                  std::to_string(options_.admission.maxQueueDepth);
    } else if (options_.admission.sramPoolBytes > 0 &&
               job.sramCharge > usable) {
      rejection = "SRAM estimate " + std::to_string(job.sramCharge) +
                  " B exceeds usable pool " + std::to_string(usable) +
                  " B (admission.sramPoolBytes * headroom)";
    } else {
      queue_.push_back(std::move(job));
      metrics_.setGauge("service.queue.depth",
                        static_cast<double>(queue_.size()));
    }
  }
  flight_.open(id);
  if (!rejection.empty()) {
    recordJob(job_events::kRejected, id, rejection);
    JobResult r;
    r.jobId = id;
    r.solve.status = SolveStatus::AdmissionRejected;
    r.message = rejection;
    finishJob(state, std::move(r));
    return id;
  }
  recordJob(job_events::kAccepted, id);
  queueCv_.notify_one();
  return id;
}

JobResult SolverService::wait(std::size_t jobId) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(jobId);
    if (it == jobs_.end()) {
      GRAPHENE_CHECK(jobId < nextJobId_, "unknown job id ", jobId);
      GRAPHENE_CHECK(false, "job ", jobId,
                     " result already released: the service retains the "
                     "last ", options_.maxRetainedResults,
                     " terminal results (service.maxRetainedResults) — "
                     "wait() sooner or raise the retention");
    }
    state = it->second;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  return state->result;
}

JobResult SolverService::solve(const matrix::GeneratedMatrix& m,
                               const json::Value& solverConfig,
                               std::vector<double> rhs,
                               SolveJobOptions jobOptions) {
  return wait(submit(m, solverConfig, std::move(rhs), std::move(jobOptions)));
}

bool SolverService::cancel(std::size_t jobId) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(jobId);
    if (it == jobs_.end()) return false;
    state = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return false;
    state->cancelRequested.store(true, std::memory_order_relaxed);
  }
  // Wake a worker parked in the retry-backoff wait on this job's cv so the
  // cancel takes effect now, not after the full backoff interval.
  state->cv.notify_all();
  recordJob(job_events::kCancelRequested, jobId);
  return true;
}

void SolverService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  // Stop serving scrapes first: a request must never observe the service
  // mid-teardown. stop() joins the listener thread deterministically.
  http_.stop();
  queueCv_.notify_all();
  chargeCv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Reclaim the engine pool: every lease has ended (workers are joined), so
  // this drops all warm pipelines and their engines.
  cache_.clear();
  if (log_) log_->log("service:shutdown");
}

void SolverService::finishJob(const std::shared_ptr<JobState>& state,
                              JobResult result) {
  const std::size_t id = result.jobId;
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state->acceptedAt)
          .count();
  const std::string verdict =
      result.typedError ? std::string("typed-error")
                        : std::string(toString(result.solve.status));
  const std::string status =
      result.typedError ? "typed-error: " + result.message : verdict;
  observeTerminal(result);

  // Terminal header of the flight record; the job's identity fields were
  // written in submit(), before any worker could see the job.
  FlightRecord header;
  header.verdict = verdict;
  header.message = result.message;
  header.attempts = result.attempts;
  header.degraded = result.degraded;
  header.simCycles = result.simCycles;
  header.wallSeconds = result.wallSeconds;
  header.structureFingerprint = state->structureFp;
  header.configFingerprint = state->configFp;
  header.topologyFingerprint = state->topologyFp;
  header.solverConfig = state->solverConfigDump;
  const bool failed = result.typedError ||
                      isRetryable(result.solve.status) ||
                      result.solve.status == SolveStatus::MaxIterations;

  // Seal (and on failure dump) the flight record *before* publishing the
  // result: when wait() returns a failed verdict, the black-box artifact
  // is already on disk. job:done is recorded first so it lands inside the
  // sealed record.
  recordJob(job_events::kDone, id, status);
  const FlightRecord sealed = flight_.seal(id, std::move(header));
  if (failed && !options_.flightDir.empty()) {
    try {
      const std::string path = dumpFlightRecord(sealed, options_.flightDir);
      recordJob(job_events::kFlightDumped, id, path);
    } catch (const Error& e) {
      // The dump is best-effort forensics — a missing directory must not
      // turn a typed verdict into a crash.
      if (log_) {
        json::Object f;
        f["detail"] = std::string(e.what());
        log_->log("flight:dump-failed", id, std::move(f));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
    state->done = true;
    state->phase = "done";
  }
  state->cv.notify_all();
  // Bound the job table: release the oldest terminal results beyond the
  // retention window. Waiters already blocked in wait() hold the JobState
  // by shared_ptr, so they still receive this result.
  if (options_.maxRetainedResults > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    doneIds_.push_back(id);
    while (doneIds_.size() > options_.maxRetainedResults) {
      jobs_.erase(doneIds_.front());
      doneIds_.pop_front();
    }
  }
}

void SolverService::workerLoop() {
  for (;;) {
    Job job;
    std::shared_ptr<JobState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queueCv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics_.setGauge("service.queue.depth",
                        static_cast<double>(queue_.size()));
      state = jobs_.at(job.id);
    }
    metrics_.observe(
        "service.queue_wait_ms",
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job.acceptedAt)
            .count(),
        kMsLadder);

    if (state->cancelRequested.load(std::memory_order_relaxed)) {
      recordJob(job_events::kCancelled, job.id);
      JobResult r;
      r.jobId = job.id;
      r.solve.status = SolveStatus::Cancelled;
      r.message = "cancelled while queued";
      finishJob(state, std::move(r));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->phase = "running";
    }

    // SRAM admission: jobs that fit the pool but not *right now* queue here
    // until running jobs release their charge. Submit already rejected the
    // can-never-fit ones, so a lone job always passes.
    if (options_.admission.sramPoolBytes > 0) {
      const auto usable = static_cast<std::size_t>(
          options_.admission.headroom *
          static_cast<double>(options_.admission.sramPoolBytes));
      std::unique_lock<std::mutex> lock(mu_);
      chargeCv_.wait(lock, [&] {
        return stopping_ || runningCharge_ == 0 ||
               runningCharge_ + job.sramCharge <= usable;
      });
      runningCharge_ += job.sramCharge;
    }

    // Last-resort net for the converge-or-fail-typed invariant: runJob maps
    // every expected failure itself, but anything that still escapes must
    // end the job with a typed verdict — an exception leaving this loop
    // would std::terminate the process and hang every wait()er.
    JobResult result;
    try {
      result = runJob(job, state);
    } catch (const std::exception& e) {
      result = JobResult{};
      result.jobId = job.id;
      result.typedError = true;
      result.message = std::string("internal error: ") + e.what();
      recordJob(job_events::kInternalError, job.id, result.message);
    } catch (...) {
      result = JobResult{};
      result.jobId = job.id;
      result.typedError = true;
      result.message = "internal error: unknown exception";
      recordJob(job_events::kInternalError, job.id, result.message);
    }

    if (options_.admission.sramPoolBytes > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        runningCharge_ -= job.sramCharge;
      }
      chargeCv_.notify_all();
    }
    finishJob(state, std::move(result));
  }
}

JobResult SolverService::runJob(Job& job,
                                const std::shared_ptr<JobState>& state) {
  JobResult res;
  res.jobId = job.id;

  SessionOptions baseOpts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    baseOpts = sessionOptions_;
  }
  const PlanCache::Key key{structureFingerprint(job.m, baseOpts),
                           configFingerprint(job.solverConfig)};
  const std::uint64_t valuesHash = valuesFingerprint(job.m.matrix);
  const bool bakesValues = configBakesValues(job.solverConfig);

  // Circuit breaker: quarantined structures fail fast; the first job after
  // the quarantine runs as the single half-open probe — while its verdict
  // is pending, further jobs for the structure are rejected too, so exactly
  // one job at a time tests the water.
  bool probe = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Breaker& b = breakers_[key.structure];
    if (b.openRemaining > 0) {
      b.openRemaining -= 1;
      if (b.openRemaining == 0) b.halfOpen = true;
      res.solve.status = SolveStatus::CircuitOpen;
      res.message = "structure fingerprint quarantined after " +
                    std::to_string(b.consecutiveFailures) +
                    " consecutive failures";
      recordJob(job_events::kCircuitOpen, job.id, res.message);
      return res;
    }
    if (b.halfOpen) {
      if (b.probeInFlight) {
        res.solve.status = SolveStatus::CircuitOpen;
        res.message =
            "structure fingerprint half-open: probe job in flight";
        recordJob(job_events::kCircuitOpen, job.id, res.message);
        return res;
      }
      b.probeInFlight = true;
      probe = true;
    }
  }

  const double deadlineCycles = job.jobOptions.deadlineCycles < 0
                                    ? options_.defaultDeadlineCycles
                                    : job.jobOptions.deadlineCycles;
  const double deadlineSeconds = job.jobOptions.deadlineSeconds < 0
                                     ? options_.defaultDeadlineSeconds
                                     : job.jobOptions.deadlineSeconds;

  recordJob(job_events::kStart, job.id, probe ? "half-open probe" : "");
  double cyclesSoFar = 0;

  for (std::size_t attempt = 0;; ++attempt) {
    const bool lastAttempt = attempt >= options_.retry.maxRetries;
    const bool degradeThis = lastAttempt && attempt > 0 &&
                             options_.degradation.enabled;
    json::Value config = job.solverConfig;
    // Per-attempt snapshot: a chip-dead verdict from a concurrent job may
    // have shrunk the service topology between attempts — retries must
    // target the surviving pod, not the shape the job started on.
    SessionOptions sessOpts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessOpts = sessionOptions_;
    }
    const std::uint64_t attemptTopologyFp = sessOpts.topology->fingerprint();
    const PlanCache::Key attemptKey{structureFingerprint(job.m, sessOpts),
                                    key.config};
    if (degradeThis) {
      degradeConfigInPlace(config, options_.degradation);
      if (options_.degradation.perCellHalo) sessOpts.perCellHalo = true;
      recordJob(job_events::kDegradedAttempt, job.id, config.dump());
    }
    // Degraded attempts run a one-off configuration, and fault-injected
    // jobs would leave their plan attached to the pooled pipeline — both
    // build fresh and are never pooled.
    const bool useCache = options_.planCacheCapacity > 0 && !degradeThis &&
                          !job.jobOptions.faultPlan.has_value();

    std::shared_ptr<SolveSession> session;
    bool fresh = false;
    bool cacheHit = false;
    if (useCache) {
      PlanCache::Lease lease =
          cache_.acquire(attemptKey, valuesHash, !bakesValues);
      if (lease.session) {
        recordJob(job_events::kPlanHit, job.id);
        try {
          lease.session->bind();
          if (!lease.valuesMatch) {
            lease.session->updateMatrixValues(job.m.matrix);
          }
          session = lease.session;
          cacheHit = true;
        } catch (const Error& e) {
          // The value refresh rejected the leased pipeline (e.g. a
          // structure mismatch behind a fingerprint collision): drop the
          // entry and fall through to a fresh build for this matrix.
          try {
            lease.session->unbind();
          } catch (...) {
          }
          cache_.release(lease.session.get(), /*invalidate=*/true);
          recordJob(job_events::kCacheRefreshFailed, job.id, e.what());
        }
      } else {
        recordJob(job_events::kPlanMiss, job.id);
      }
    }
    if (!session) {
      try {
        session = std::make_shared<SolveSession>(sessOpts);
        session->load(job.m).configure(config);  // binds on this thread
        if (job.jobOptions.faultPlan) {
          session->withFaultPlan(*job.jobOptions.faultPlan);
        }
      } catch (const Error& e) {
        // A pipeline build failure is a deterministic property of the
        // submitted matrix / plan (e.g. a zero diagonal the modified-CRS
        // format cannot represent), not transient damage: end the job with
        // the typed error now instead of retrying a build that cannot
        // succeed. `session` still owns whatever was partially built; it is
        // destroyed (and its context unbound) on scope exit, never pooled.
        res.solve = SolveResult{};
        res.x.clear();
        res.typedError = true;
        res.message = e.what();
        res.attempts = attempt + 1;
        res.degraded = degradeThis;
        res.planCacheHit = false;
        res.simCycles = cyclesSoFar;
        recordJob(job_events::kBuildFailed, job.id, res.message);
        break;
      }
      fresh = true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Admission charges against tiles that can actually hold state — a
      // shrunken pod's dead chips contribute no SRAM.
      knownSramPeak_[attemptKey.structure] =
          session->sramPeakBytes() *
          session->options().topology->numAliveTiles();
    }

    session->traceSink().setJobId(job.id);
    const double cyclesBefore = cyclesSoFar;
    const auto acceptedAt = job.acceptedAt;
    JobState* st = state.get();
    session->setCancelCheck(
        [deadlineCycles, deadlineSeconds, cyclesBefore, acceptedAt,
         st](double solveCycles) -> const char* {
          if (st->cancelRequested.load(std::memory_order_relaxed)) {
            return "cancel-requested";
          }
          if (deadlineCycles > 0 &&
              cyclesBefore + solveCycles >= deadlineCycles) {
            return "deadline";
          }
          if (deadlineSeconds > 0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - acceptedAt;
            if (elapsed.count() >= deadlineSeconds) return "deadline";
          }
          return nullptr;
        });

    bool invalidate = false;
    bool retryable = false;
    try {
      SolveSession::Result r = session->solve(job.rhs);
      cyclesSoFar += r.simCycles;
      res.solve = r.solve;
      res.x = std::move(r.x);
      res.typedError = false;
      res.message.clear();
      retryable = isRetryable(r.solve.status);
      // A solve that blacklisted tiles repartitioned mid-flight: the cached
      // plan no longer matches the machine it was built for. (Chip loss is
      // folded in below — deadIpus is read for every exit path.)
      invalidate = !session->blacklistedTiles().empty();
    } catch (const CancelledError& ce) {
      // lastSolveCycles() includes cycles carried across hard-fault remap
      // attempts within this solve — engine().simCycles() alone would be
      // only the final engine's clock.
      cyclesSoFar += session->lastSolveCycles();
      const bool deadline = std::string(ce.reason()) == "deadline";
      res.solve = SolveResult{};
      res.solve.status =
          deadline ? SolveStatus::DeadlineExceeded : SolveStatus::Cancelled;
      res.x.clear();
      res.typedError = false;
      res.message = ce.what();
      recordJob(deadline ? job_events::kDeadlineExceeded
                         : job_events::kCancelled,
                job.id);
    } catch (const Error& e) {
      // Typed failure (e.g. hard-fault recovery budget exhausted). The
      // pipeline is suspect; retry — if budget remains — on a fresh build.
      // The failed solve's cycles (all remap attempts included) still count
      // against the job's cycle deadline.
      cyclesSoFar += session->lastSolveCycles();
      res.solve = SolveResult{};
      res.x.clear();
      res.typedError = true;
      res.message = e.what();
      invalidate = true;
      retryable = true;
    }
    session->setCancelCheck(nullptr);
    session->traceSink().setJobId(SIZE_MAX);
    session->unbind();
    // Chips this solve's watchdog escalation retired (copied out — the
    // session is pooled or destroyed below). Non-empty on any exit path
    // (converged after a shrink, typed error, even cancel mid-recovery).
    const std::vector<std::size_t> deadIpus = session->deadIpus();
    invalidate = invalidate || !deadIpus.empty();

    // Black box: fold this attempt's artifacts into the job's flight
    // record — its solver-level timeline (the events stamped with this
    // job's id; pooled sinks carry other jobs' history too), the fault log
    // and the watchdog report. Best-effort: forensics must never turn a
    // verdict into a crash.
    try {
      std::vector<support::TraceEvent> attemptEvents;
      for (const support::TraceEvent& ev : session->trace().events()) {
        if (ev.jobId == job.id) attemptEvents.push_back(ev);
      }
      flight_.recordAttempt(job.id, attemptEvents,
                            session->profile().faultEvents,
                            session->healthReport());
    } catch (...) {
    }

    res.attempts = attempt + 1;
    res.degraded = degradeThis;
    res.planCacheHit = cacheHit;
    res.simCycles = cyclesSoFar;

    if (useCache) {
      if (fresh) cache_.insert(attemptKey, valuesHash, session);
      // Also drop pipelines whose machine shape is no longer the service's:
      // a concurrent job may have shrunk the topology while this attempt
      // was in flight, making this pipeline stale even though its own solve
      // saw no fault.
      bool topologyStale = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        topologyStale =
            sessionOptions_.topology->fingerprint() != attemptTopologyFp;
      }
      const bool drop = invalidate || topologyStale;
      cache_.release(session.get(), drop);
      if (drop) recordJob(job_events::kPlanInvalidated, job.id);
    }
    session.reset();

    // Adopt the shrink: retire the dead chips from the service topology and
    // invalidate every pooled plan built for the pre-shrink shape. The
    // fingerprint guard makes the union idempotent — when another job
    // already retired these chips, the (valid) shrunken-topology plans are
    // left alone.
    if (!deadIpus.empty()) {
      bool adopted = false;
      std::uint64_t staleFp = 0;
      std::size_t droppedPlans = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        staleFp = sessionOptions_.topology->fingerprint();
        ipu::Topology shrunk =
            sessionOptions_.topology->withoutIpus(deadIpus);
        if (shrunk.fingerprint() != staleFp) {
          sessionOptions_.topology = shrunk;
          sessionOptions_.tiles = shrunk.totalTiles();
          droppedPlans = cache_.invalidateTopology(staleFp);
          adopted = true;
        }
      }
      if (adopted) {
        std::string chips;
        for (std::size_t ipu : deadIpus) {
          chips += (chips.empty() ? "" : " ") + std::to_string(ipu);
        }
        recordJob(job_events::kTopologyShrink, job.id,
                  "chip(s) " + chips + " retired; " +
                      std::to_string(droppedPlans) +
                      " stale plan(s) invalidated");
      }
    }

    const bool terminal = !retryable || lastAttempt ||
                          res.solve.status == SolveStatus::DeadlineExceeded ||
                          res.solve.status == SolveStatus::Cancelled;
    if (terminal) break;

    double backoff = options_.retry.backoffBaseMs;
    for (std::size_t i = 0; i < attempt; ++i) {
      backoff *= options_.retry.backoffFactor;
    }
    backoff = std::min(backoff, options_.retry.backoffMaxMs);
    backoff *= 1.0 + options_.retry.jitter * jitterFraction(job.id, attempt);
    if (backoff > 0) {
      // Interruptible backoff: cancel() notifies this cv, and the wait is
      // capped at the remaining wall budget — a job must not sleep past its
      // deadline or its client's cancel, then pay another pipeline build.
      auto waitFor = std::chrono::duration<double, std::milli>(backoff);
      if (deadlineSeconds > 0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - job.acceptedAt;
        const double remainingMs =
            (deadlineSeconds - elapsed.count()) * 1000.0;
        waitFor = std::min(
            waitFor,
            std::chrono::duration<double, std::milli>(
                std::max(0.0, remainingMs)));
      }
      std::unique_lock<std::mutex> slock(state->mu);
      state->cv.wait_for(slock, waitFor, [&] {
        return state->cancelRequested.load(std::memory_order_relaxed);
      });
    }
    if (state->cancelRequested.load(std::memory_order_relaxed)) {
      res.solve = SolveResult{};
      res.solve.status = SolveStatus::Cancelled;
      res.x.clear();
      res.typedError = false;
      res.message = "cancelled during retry backoff";
      recordJob(job_events::kCancelled, job.id);
      break;
    }
    const bool cycleBudgetSpent =
        deadlineCycles > 0 && cyclesSoFar >= deadlineCycles;
    bool wallBudgetSpent = false;
    if (deadlineSeconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - job.acceptedAt;
      wallBudgetSpent = elapsed.count() >= deadlineSeconds;
    }
    if (cycleBudgetSpent || wallBudgetSpent) {
      res.solve = SolveResult{};
      res.solve.status = SolveStatus::DeadlineExceeded;
      res.x.clear();
      res.typedError = false;
      res.message = cycleBudgetSpent
                        ? "cycle deadline spent before the next attempt"
                        : "wall deadline expired during retry backoff";
      recordJob(job_events::kDeadlineExceeded, job.id);
      break;
    }
    recordJob(job_events::kRetry, job.id,
              res.typedError ? res.message : toString(res.solve.status));
  }

  if (res.typedError || isRetryable(res.solve.status) ||
      res.solve.status == SolveStatus::MaxIterations) {
    recordJob(job_events::kFailed, job.id);
  } else if (res.solve.status == SolveStatus::Converged) {
    recordJob(job_events::kCompleted, job.id);
  }
  if (res.degraded) recordJob(job_events::kDegraded, job.id);

  // Circuit breaker accounting. Deadline/cancel verdicts stay neutral: they
  // say nothing about the matrix — a neutral probe just hands the half-open
  // slot to the next job for this structure.
  {
    std::lock_guard<std::mutex> lock(mu_);
    Breaker& b = breakers_[key.structure];
    if (probe) b.probeInFlight = false;
    if (isBreakerFailure(res)) {
      b.consecutiveFailures += 1;
      // A failed probe re-opens the quarantine immediately; outside
      // half-open the threshold decides.
      if (probe || b.consecutiveFailures >= options_.breaker.failuresToOpen) {
        b.halfOpen = false;
        b.openRemaining = options_.breaker.openForJobs;
        recordJob(job_events::kCircuitOpened, job.id,
                  std::to_string(b.consecutiveFailures) +
                      " consecutive failures" +
                      (probe ? " (half-open probe failed)" : ""));
      }
    } else if (res.solve.status == SolveStatus::Converged ||
               res.solve.status == SolveStatus::MaxIterations) {
      b.consecutiveFailures = 0;
      b.openRemaining = 0;
      b.halfOpen = false;
    }
  }
  return res;
}

}  // namespace graphene::solver
