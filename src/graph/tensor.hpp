// Tensor metadata: dtype plus the mapping of elements to tiles.
//
// Poplar tensors are N-dimensional with arbitrary tile mappings; for sparse
// linear algebra everything the paper needs is one-dimensional data with a
// per-tile *ragged* layout: each tile owns a contiguous region whose length
// may differ per tile (CRS arrays, halo buffers) or be equal (row-partitioned
// vectors), or be exactly one element everywhere (replicated scalars).
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "ipu/types.hpp"
#include "support/error.hpp"

namespace graphene::graph {

using TensorId = std::uint32_t;
constexpr TensorId kInvalidTensor = static_cast<TensorId>(-1);

/// How a tensor's elements are distributed over tiles.
struct TileMapping {
  /// Number of elements resident on each tile (ragged allowed).
  std::vector<std::size_t> sizePerTile;

  static TileMapping ragged(std::vector<std::size_t> sizes) {
    return TileMapping{std::move(sizes)};
  }

  /// Splits `total` elements evenly over `tiles` (remainder to low tiles) —
  /// the row-wise distribution of §II-B.
  static TileMapping linear(std::size_t total, std::size_t tiles) {
    GRAPHENE_CHECK(tiles > 0, "need at least one tile");
    std::vector<std::size_t> sizes(tiles);
    std::size_t base = total / tiles, rem = total % tiles;
    for (std::size_t t = 0; t < tiles; ++t) sizes[t] = base + (t < rem ? 1 : 0);
    return TileMapping{std::move(sizes)};
  }

  /// One element on every tile — replicated scalars.
  static TileMapping replicated(std::size_t tiles) {
    return TileMapping{std::vector<std::size_t>(tiles, 1)};
  }

  /// All elements on a single tile.
  static TileMapping onTile(std::size_t total, std::size_t tile,
                            std::size_t tiles) {
    std::vector<std::size_t> sizes(tiles, 0);
    GRAPHENE_CHECK(tile < tiles, "tile out of range");
    sizes[tile] = total;
    return TileMapping{std::move(sizes)};
  }

  std::size_t numTiles() const { return sizePerTile.size(); }

  std::size_t totalElements() const {
    return std::accumulate(sizePerTile.begin(), sizePerTile.end(),
                           std::size_t{0});
  }

  bool operator==(const TileMapping& o) const {
    return sizePerTile == o.sizePerTile;
  }
};

/// Static description of one tensor variable in the graph.
struct TensorInfo {
  std::string name;
  ipu::DType dtype = ipu::DType::Float32;
  TileMapping mapping;
  /// True when the tensor is a replicated scalar kept consistent across all
  /// tiles (TensorDSL scalars, loop conditions).
  bool replicated = false;

  std::size_t totalElements() const { return mapping.totalElements(); }

  /// Element offset of the start of `tile`'s region in the flat host view.
  std::size_t tileOffset(std::size_t tile) const {
    GRAPHENE_CHECK(tile < mapping.numTiles(), "tile out of range");
    std::size_t off = 0;
    for (std::size_t t = 0; t < tile; ++t) off += mapping.sizePerTile[t];
    return off;
  }
};

}  // namespace graphene::graph
