// Simulator throughput bench: wall-clock speed of the simulator itself
// (vertices/sec and solver iterations/sec), not simulated-device speed.
//
// Tracks the host-side execution engine across PRs: compiled execution
// plans, codelet fast paths, and host-parallel tile execution all move
// these numbers. Emits a JSON summary to stdout (saved as
// BENCH_SIMSPEED.json at the repo root) so the trajectory is recorded.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace graphene;

struct Config {
  std::string solver;
  std::size_t rows;
  std::size_t tiles;
  std::size_t iterations;  // CG iterations / MPIR refinements
};

struct Result {
  std::string solver;
  std::size_t hostThreads = 1;
  double seconds = 0;
  double verticesPerSec = 0;
  double itersPerSec = 0;
  std::size_t supersteps = 0;
};

Result runOnce(const Config& cfg, std::size_t hostThreads) {
  auto g = matrix::poisson2d5(cfg.rows, cfg.rows);
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(cfg.tiles);
  bench::DistSystem s = bench::makeSystem(g, target);
  dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = s.A->makeVector(dsl::DType::Float32, "b");

  std::unique_ptr<solver::Solver> slv;
  std::size_t iters = cfg.iterations;
  if (cfg.solver == "cg") {
    slv = std::make_unique<solver::CgSolver>(
        cfg.iterations, 0.0, std::make_unique<solver::JacobiSolver>(2));
  } else {
    slv = std::make_unique<solver::MpirSolver>(
        ipu::DType::DoubleWord, cfg.iterations, 0.0,
        std::make_unique<solver::CgSolver>(
            10, 0.0, std::make_unique<solver::IdentitySolver>()));
    iters = cfg.iterations * 10;  // inner iterations dominate
  }
  slv->apply(*s.A, x, b);

  auto rhs = bench::randomRhs(g.matrix.rows(), 7);
  s.engine = std::make_unique<graph::Engine>(s.ctx->graph(), hostThreads);
  s.A->upload(*s.engine);
  s.A->writeVector(*s.engine, b, rhs);

  auto t0 = std::chrono::steady_clock::now();
  s.engine->run(s.ctx->program());
  auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.solver = cfg.solver;
  r.hostThreads = hostThreads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.supersteps = s.engine->profile().computeSupersteps;
  r.verticesPerSec =
      static_cast<double>(s.engine->profile().verticesExecuted) / r.seconds;
  r.itersPerSec = static_cast<double>(iters) / r.seconds;
  return r;
}

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {"cg", 48, 16, 40},
      {"mpir", 48, 16, 3},
  };

  // 1 thread isolates the plan-cache + fast-path gains; the ladder up to
  // hardware_concurrency measures tile-parallel scaling (flat on 1-core
  // hosts by definition).
  std::vector<std::size_t> threadCounts = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 1;
  if (hw > 4) threadCounts.push_back(hw);

  std::printf("{\n  \"bench\": \"simspeed\",\n  \"hardwareConcurrency\": %zu,"
              "\n  \"results\": [\n",
              hw);
  bool first = true;
  for (const Config& cfg : configs) {
    for (std::size_t threads : threadCounts) {
      Result r = runOnce(cfg, threads);
      std::printf("%s    {\"solver\": \"%s\", \"hostThreads\": %zu, "
                  "\"seconds\": %.4f, \"supersteps\": %zu, "
                  "\"itersPerSec\": %.2f, \"verticesPerSec\": %.0f}",
                  first ? "" : ",\n", r.solver.c_str(), r.hostThreads,
                  r.seconds, r.supersteps, r.itersPerSec, r.verticesPerSec);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
