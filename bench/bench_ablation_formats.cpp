// Ablation (§II-C): sparse matrix formats — CSR / modified CRS vs ELLPACK
// and Sliced ELLPACK. The paper argues the vector-friendly formats would
// gain little on the IPU (no caches, narrow vector units) while costing
// padding; this bench quantifies the padding/footprint trade-off and the
// host-side SpMV behaviour of each format.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "matrix/ellpack.hpp"

using namespace graphene;

namespace {

template <typename F>
double timeSpmv(F&& spmv, std::size_t reps) {
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i) spmv();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

}  // namespace

int main() {
  bench::printHeader("Ablation — sparse formats (CSR vs ELLPACK vs SELL)",
                     "padding overheads and SpMV behaviour of the formats "
                     "discussed in §II-C");

  struct Case {
    const char* name;
    matrix::GeneratedMatrix g;
  };
  Case cases[] = {
      {"poisson3d 24^3 (regular)", matrix::poisson3d7(24, 24, 24)},
      {"g3_circuit-like (irregular)", matrix::g3CircuitLike(14000)},
      {"af_shell7-like (FEM)", matrix::afShellLike(12000)},
  };

  TextTable t({"matrix", "format", "padding", "footprint", "spmv (host)",
               "correct"});
  bool ok = true;
  for (Case& c : cases) {
    const matrix::CsrMatrix& a = c.g.matrix;
    auto ell = matrix::EllpackMatrix::fromCsr(a);
    auto sell = matrix::SellMatrix::fromCsr(a, 8);

    std::vector<double> x(a.cols()), yCsr(a.rows()), yEll(a.rows()),
        ySell(a.rows());
    Rng rng(4);
    for (double& v : x) v = rng.uniform(-1, 1);
    a.spmv(x, yCsr);
    ell.spmv(x, yEll);
    sell.spmv(x, ySell);
    bool correct = true;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      correct &= std::abs(yEll[i] - yCsr[i]) < 1e-9;
      correct &= std::abs(ySell[i] - yCsr[i]) < 1e-9;
    }
    ok &= correct;

    const std::size_t reps = 20;
    double tCsr = timeSpmv([&] { a.spmv(x, yCsr); }, reps);
    double tEll = timeSpmv([&] { ell.spmv(x, yEll); }, reps);
    double tSell = timeSpmv([&] { sell.spmv(x, ySell); }, reps);
    const std::size_t csrBytes = a.nnz() * 12 + (a.rows() + 1) * 8;

    t.addRow({c.name, "CSR", "1.00x", formatBytes(static_cast<double>(csrBytes)),
              formatTime(tCsr), "ref"});
    t.addRow({"", "ELLPACK", formatSig(ell.paddingFactor(), 3) + "x",
              formatBytes(static_cast<double>(ell.footprintBytes())),
              formatTime(tEll), correct ? "yes" : "NO"});
    t.addRow({"", "SELL-8", formatSig(sell.paddingFactor(), 3) + "x",
              formatBytes(static_cast<double>(sell.footprintBytes())),
              formatTime(tSell), correct ? "yes" : "NO"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("expectation (§II-C): SELL recovers most of ELLPACK's layout "
              "regularity at a fraction of its padding; for irregular\n"
              "matrices ELLPACK's padding explodes — on a cache-less IPU the "
              "padding cost buys nothing, supporting the paper's choice\n"
              "of (modified) CRS.\n");
  std::printf("check: all formats compute identical SpMVs: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
