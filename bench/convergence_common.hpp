// Shared implementation of the Figures 9/10 convergence experiments:
// PBiCGStab+ILU(0) in four configurations — without Iterative Refinement,
// with float32 IR, with MPIR+double-word, with MPIR+soft-float64 — true
// relative residual vs inner iteration (§VI-C).
#pragma once

#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace graphene::bench {

struct Series {
  std::string label;
  std::vector<solver::IterationRecord> samples;
};

inline Series runConvergenceConfig(const matrix::GeneratedMatrix& g,
                                   std::size_t tiles, const std::string& label,
                                   const std::string& extType,
                                   std::size_t innerIterations,
                                   std::size_t refinements) {
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(tiles);
  DistSystem s = makeSystem(g, target);
  dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = s.A->makeVector(dsl::DType::Float32, "b");

  Series series{label, {}};
  auto rhs = randomRhs(g.matrix.rows(), 99);
  if (extType == "none") {
    // "Without IR": one long PBiCGStab run; the device measures the true
    // double-word residual every few iterations.
    auto solver = solver::makeSolverFromString(
        R"({"type":"bicgstab","maxIterations":)" +
        std::to_string(innerIterations * refinements) +
        R"(,"tolerance":0,"preconditioner":{"type":"ilu"}})");
    auto* bicg = dynamic_cast<solver::BiCgStabSolver*>(solver.get());
    bicg->enableTrueResidualMonitor(
        std::max<std::size_t>(innerIterations / 5, 1));
    solver->apply(*s.A, x, b);
    runProgram(s, s.ctx->program(), rhs, b);
    series.samples = bicg->trueResidualHistory();
  } else {
    auto solver = solver::makeSolverFromString(
        R"({"type":"mpir","extendedType":")" + extType +
        R"(","maxRefinements":)" + std::to_string(refinements) +
        R"(,"tolerance":1e-15,"inner":{"type":"bicgstab","maxIterations":)" +
        std::to_string(innerIterations) +
        R"(,"tolerance":0,"preconditioner":{"type":"ilu"}}})");
    solver->apply(*s.A, x, b);
    runProgram(s, s.ctx->program(), rhs, b);
    series.samples =
        dynamic_cast<solver::MpirSolver*>(solver.get())->trueResidualHistory();
  }
  return series;
}

inline int runConvergenceFigure(const char* figure, const char* matrixName,
                                std::size_t rows, std::size_t tiles,
                                std::size_t innerIterations,
                                std::size_t refinements,
                                double shiftScale) {
  printHeader(std::string(figure) + " — solver configurations on " +
                  matrixName,
              "non-MPIR stalls near float32; MPIR-DW reaches ~1e-13, "
              "MPIR-DP ~1e-15 (paper Figs. 9/10)");
  // Size-matched conditioning (DESIGN.md §1): the scaled-down stand-in gets
  // a relaxed shift so the inner solver converges in the same iteration
  // regime as the paper's full-size runs.
  auto g = matrix::makeBenchmarkMatrix(matrixName, rows, shiftScale);
  std::printf("stand-in: %s, %zu rows, %zu nnz, %zu tiles; %zu inner "
              "iterations per refinement step\n\n",
              g.name.c_str(), g.matrix.rows(), g.matrix.nnz(), tiles,
              innerIterations);

  const Series series[] = {
      runConvergenceConfig(g, tiles, "no IR", "none", innerIterations,
                           refinements),
      runConvergenceConfig(g, tiles, "IR (float32)", "float32",
                           innerIterations, refinements),
      runConvergenceConfig(g, tiles, "MPIR double-word", "doubleword",
                           innerIterations, refinements),
      runConvergenceConfig(g, tiles, "MPIR float64", "float64",
                           innerIterations, refinements),
  };

  for (const Series& s : series) {
    std::printf("%s:\n  iter:", s.label.c_str());
    for (const auto& rec : s.samples) std::printf(" %6zu", rec.iteration);
    std::printf("\n  res :");
    for (const auto& rec : s.samples) std::printf(" %6.0e", rec.residual);
    std::printf("\n");
  }

  auto best = [](const Series& s) {
    double b = 1.0;
    for (const auto& rec : s.samples) b = std::min(b, rec.residual);
    return b;
  };
  const double noIr = best(series[0]), ir32 = best(series[1]),
               dw = best(series[2]), dp = best(series[3]);
  std::printf("\nbest residuals: no-IR %.1e | IR %.1e | MPIR-DW %.1e | "
              "MPIR-DP %.1e\n",
              noIr, ir32, dw, dp);
  bool pass = noIr > 1e-8 && ir32 > 1e-8 && dw < 1e-10 && dp < 1e-11 &&
              dp <= dw * 10;
  std::printf("check: non-MPIR configurations stall (>1e-8) while MPIR-DW "
              "reaches <1e-10 and MPIR-DP <1e-11: %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace graphene::bench
