// Host micro-benchmarks (google-benchmark) of the substrate primitives:
// TwoFloat double-word arithmetic, SoftDouble emulation, JSON parsing,
// level-set construction and the layout builder. These measure *host*
// performance of the framework itself (simulation speed), not simulated
// IPU time.
#include <benchmark/benchmark.h>

#include "levelset/levelset.hpp"
#include "matrix/generators.hpp"
#include "partition/halo.hpp"
#include "partition/partition.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "twofloat/softdouble.hpp"
#include "twofloat/twofloat.hpp"

namespace tf = graphene::twofloat;
using graphene::Rng;

static void BM_TwoFloatAddAccurate(benchmark::State& state) {
  tf::Float2 acc{};
  tf::Float2 inc = tf::Float2::fromWide(1e-7);
  for (auto _ : state) {
    acc = acc + inc;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TwoFloatAddAccurate);

static void BM_TwoFloatAddFast(benchmark::State& state) {
  tf::FastFloat2 acc{};
  tf::FastFloat2 inc = tf::FastFloat2::fromWide(1e-7);
  for (auto _ : state) {
    acc = acc + inc;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TwoFloatAddFast);

static void BM_TwoFloatMulAccurate(benchmark::State& state) {
  tf::Float2 acc = tf::Float2::fromWide(1.0);
  tf::Float2 f = tf::Float2::fromWide(1.0000001);
  for (auto _ : state) {
    acc = acc * f;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TwoFloatMulAccurate);

static void BM_SoftDoubleAdd(benchmark::State& state) {
  auto a = tf::SoftDouble::fromDouble(1.234567);
  auto b = tf::SoftDouble::fromDouble(7.654321e-3);
  for (auto _ : state) {
    a = a + b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SoftDoubleAdd);

static void BM_SoftDoubleMul(benchmark::State& state) {
  auto a = tf::SoftDouble::fromDouble(1.0000001);
  auto b = tf::SoftDouble::fromDouble(0.9999999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_SoftDoubleMul);

static void BM_JsonParseSolverConfig(benchmark::State& state) {
  const std::string doc = R"({
    "type":"mpir","extendedType":"doubleword","maxRefinements":20,
    "tolerance":1e-13,
    "inner":{"type":"bicgstab","maxIterations":100,"tolerance":0,
             "preconditioner":{"type":"ilu"}}})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphene::json::parse(doc));
  }
}
BENCHMARK(BM_JsonParseSolverConfig);

static void BM_LevelSetBuild(benchmark::State& state) {
  auto g = graphene::matrix::poisson3d7(24, 24, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graphene::levelset::buildForwardLevels(g.matrix));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.matrix.rows()));
}
BENCHMARK(BM_LevelSetBuild);

static void BM_HaloLayoutBuild(benchmark::State& state) {
  auto g = graphene::matrix::poisson3d7(24, 24, 24);
  auto part = graphene::partition::partitionGrid(24, 24, 24, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graphene::partition::buildLayout(g.matrix, part, 64));
  }
}
BENCHMARK(BM_HaloLayoutBuild);

BENCHMARK_MAIN();
