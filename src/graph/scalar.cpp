#include "graph/scalar.hpp"

#include <sstream>

namespace graphene::graph {

using twofloat::Float2;
using twofloat::SoftDouble;

Scalar Scalar::castTo(DType target) const {
  if (target == type()) return *this;
  switch (target) {
    case DType::Bool:
      return Scalar(truthy());
    case DType::Int32:
      switch (type()) {
        case DType::Bool: return Scalar(std::int32_t(asBool() ? 1 : 0));
        case DType::Float32: return Scalar(static_cast<std::int32_t>(asFloat()));
        case DType::Float64:
          return Scalar(static_cast<std::int32_t>(asSoftDouble().toDouble()));
        case DType::DoubleWord:
          return Scalar(static_cast<std::int32_t>(asDoubleWord().toWide()));
        default: break;
      }
      break;
    case DType::Float32:
      switch (type()) {
        case DType::Bool: return Scalar(asBool() ? 1.0f : 0.0f);
        case DType::Int32: return Scalar(static_cast<float>(asInt()));
        case DType::Float64: return Scalar(asSoftDouble().toFloat());
        case DType::DoubleWord: return Scalar(asDoubleWord().hi);
        default: break;
      }
      break;
    case DType::Float64:
      switch (type()) {
        case DType::Bool:
          return Scalar(SoftDouble::fromDouble(asBool() ? 1.0 : 0.0));
        case DType::Int32:
          return Scalar(SoftDouble::fromDouble(static_cast<double>(asInt())));
        case DType::Float32: return Scalar(SoftDouble::fromFloat(asFloat()));
        case DType::DoubleWord: {
          // hi + lo, both exact widenings, summed in software float64.
          Float2 dw = asDoubleWord();
          return Scalar(SoftDouble::fromFloat(dw.hi) +
                        SoftDouble::fromFloat(dw.lo));
        }
        default: break;
      }
      break;
    case DType::DoubleWord:
      switch (type()) {
        case DType::Bool: return Scalar(Float2(asBool() ? 1.0f : 0.0f));
        case DType::Int32: {
          // Ints up to 2^24 are exact in the hi word; larger ones split.
          return Scalar(Float2::fromWide(static_cast<double>(asInt())));
        }
        case DType::Float32: return Scalar(Float2(asFloat()));
        case DType::Float64:
          return Scalar(Float2::fromWide(asSoftDouble().toDouble()));
        default: break;
      }
      break;
  }
  GRAPHENE_UNREACHABLE("unhandled scalar cast");
}

Scalar Scalar::zero(DType t) {
  switch (t) {
    case DType::Bool: return Scalar(false);
    case DType::Int32: return Scalar(std::int32_t(0));
    case DType::Float32: return Scalar(0.0f);
    case DType::Float64: return Scalar(SoftDouble());
    case DType::DoubleWord: return Scalar(Float2());
  }
  GRAPHENE_UNREACHABLE("bad dtype");
}

Scalar Scalar::fromHostDouble(DType t, double d) {
  switch (t) {
    case DType::Bool: return Scalar(d != 0.0);
    case DType::Int32: return Scalar(static_cast<std::int32_t>(d));
    case DType::Float32: return Scalar(static_cast<float>(d));
    case DType::Float64: return Scalar(SoftDouble::fromDouble(d));
    case DType::DoubleWord: return Scalar(Float2::fromWide(d));
  }
  GRAPHENE_UNREACHABLE("bad dtype");
}

std::string Scalar::toString() const {
  std::ostringstream oss;
  switch (type()) {
    case DType::Bool: oss << (asBool() ? "true" : "false"); break;
    case DType::Int32: oss << asInt(); break;
    default: oss << toHostDouble(); break;
  }
  return oss.str();
}

DType promote(DType a, DType b) {
  auto rank = [](DType t) {
    switch (t) {
      case DType::Bool: return 0;
      case DType::Int32: return 1;
      case DType::Float32: return 2;
      case DType::DoubleWord: return 3;
      case DType::Float64: return 4;
    }
    return -1;
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace graphene::graph
