#include "support/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace graphene::support {

const char* toString(TraceKind kind) {
  switch (kind) {
    case TraceKind::ComputeSuperstep: return "compute";
    case TraceKind::ExchangeSuperstep: return "exchange";
    case TraceKind::Sync: return "sync";
    case TraceKind::Iteration: return "iteration";
    case TraceKind::Fault: return "fault";
    case TraceKind::Recovery: return "recovery";
    case TraceKind::Job: return "job";
  }
  return "unknown";
}

bool TraceEvent::operator==(const TraceEvent& o) const {
  return kind == o.kind && name == o.name && startCycle == o.startCycle &&
         durationCycles == o.durationCycles && superstep == o.superstep &&
         tileMin == o.tileMin && tileMean == o.tileMean &&
         tileMax == o.tileMax && stragglerTile == o.stragglerTile &&
         activeTiles == o.activeTiles && bytes == o.bytes &&
         iteration == o.iteration && residual == o.residual &&
         detail == o.detail && jobId == o.jobId;
}

double HistogramLadder::upperBound(std::size_t i) const {
  if (i >= bucketCount) return std::numeric_limits<double>::infinity();
  double bound = firstBound;
  for (std::size_t k = 0; k < i; ++k) bound *= growth;
  return bound;
}

std::size_t HistogramLadder::bucketFor(double value) const {
  // A multiply-and-compare walk instead of log(): bit-deterministic on
  // every host, and the ladders in use are a few dozen buckets at most.
  double bound = firstBound;
  for (std::size_t i = 0; i < bucketCount; ++i) {
    if (value <= bound) return i;
    bound *= growth;
  }
  return bucketCount;  // +Inf overflow bucket
}

void Histogram::observe(double value) {
  buckets[ladder.bucketFor(value)] += 1;
  count += 1;
  sum += value;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  GRAPHENE_CHECK(ladder == o.ladder,
                 "histogram merge with mismatched bucket ladders (",
                 ladder.firstBound, "x", ladder.growth, "^",
                 ladder.bucketCount, " vs ", o.ladder.firstBound, "x",
                 o.ladder.growth, "^", o.ladder.bucketCount, ")");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  return *this;
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-th observation, 1-based; walk the cumulative counts.
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank || buckets[i] == 0) continue;
    const double hi = ladder.upperBound(i);
    if (std::isinf(hi)) {
      // Prometheus convention: quantiles cannot reach into +Inf — clamp to
      // the largest finite bound.
      return ladder.upperBound(ladder.bucketCount - 1);
    }
    const double lo = i == 0 ? 0.0 : ladder.upperBound(i - 1);
    const double frac = (rank - static_cast<double>(prev)) /
                        static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
  }
  return ladder.upperBound(ladder.bucketCount - 1);
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& o) {
  std::lock_guard<std::mutex> lock(o.mu_);
  counters_ = o.counters_;
  gauges_ = o.gauges_;
  histograms_ = o.histograms_;
  help_ = o.help_;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& o) {
  if (this == &o) return *this;
  std::map<std::string, double> counters, gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(o.mu_);
    counters = o.counters_;
    gauges = o.gauges_;
    histograms = o.histograms_;
    help = o.help_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  help_ = std::move(help);
  return *this;
}

void MetricsRegistry::addCounter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::setGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const HistogramLadder& ladder) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(ladder)).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::setHelp(const std::string& name,
                              const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = text;
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  help_.clear();
}

MetricsRegistry& MetricsRegistry::operator+=(const MetricsRegistry& o) {
  // Snapshot the source first: locking both registries at once would
  // deadlock against a concurrent merge in the opposite direction.
  const MetricsRegistry src = o.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : src.counters_) counters_[k] += v;
  for (const auto& [k, v] : src.gauges_) gauges_[k] = v;
  for (const auto& [k, v] : src.histograms_) {
    auto it = histograms_.find(k);
    if (it == histograms_.end()) {
      histograms_.emplace(k, v);
    } else {
      it->second += v;
    }
  }
  for (const auto& [k, v] : src.help_) help_[k] = v;
  return *this;
}

namespace {

/// Maps a metric name onto the Prometheus charset: [a-zA-Z_:] first, then
/// [a-zA-Z0-9_:]; anything else (dots, dashes, spaces) becomes '_'.
std::string sanitizePrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += alpha || (digit && i > 0) ? c : '_';
  }
  return out.empty() ? "_" : out;
}

void appendPrometheusValue(std::ostream& os, double value) {
  // %.17g round-trips doubles; integral values print without an exponent.
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  os << buf;
}

}  // namespace

std::string metricsToPrometheusText(const MetricsRegistry& metrics_,
                                    const std::string& prefix) {
  // Scrape from a consistent locked snapshot: the service ticks the shared
  // registry from every worker thread while the endpoint renders it, and a
  // torn read (map rebalancing mid-iteration) must not corrupt the scrape.
  const MetricsRegistry metrics = metrics_.snapshot();
  const std::string p =
      prefix.empty() ? "" : sanitizePrometheusName(prefix) + "_";
  std::ostringstream os;
  const auto header = [&](const std::string& rawName, const char* type) {
    const std::string m = p + sanitizePrometheusName(rawName);
    auto it = metrics.help().find(rawName);
    if (it != metrics.help().end()) {
      os << "# HELP " << m << " " << it->second << "\n";
    }
    os << "# TYPE " << m << " " << type << "\n";
    return m;
  };
  // std::map iteration gives each family in name order already.
  for (const auto& [name, value] : metrics.counters()) {
    const std::string m = header(name, "counter");
    os << m << " ";
    appendPrometheusValue(os, value);
    os << "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string m = header(name, "gauge");
    os << m << " ";
    appendPrometheusValue(os, value);
    os << "\n";
  }
  for (const auto& [name, h] : metrics.histograms()) {
    const std::string m = header(name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      os << m << "_bucket{le=\"";
      const double bound = h.ladder.upperBound(i);
      if (std::isinf(bound)) {
        os << "+Inf";
      } else {
        appendPrometheusValue(os, bound);
      }
      os << "\"} " << cumulative << "\n";
    }
    os << m << "_sum ";
    appendPrometheusValue(os, h.sum);
    os << "\n" << m << "_count " << h.count << "\n";
  }
  return os.str();
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceSink::record(TraceEvent event) {
  if (jobId_ != SIZE_MAX && event.jobId == SIZE_MAX) event.jobId = jobId_;
  if (event.jobId != SIZE_MAX) jobsSeen_.insert(event.jobId);
  switch (event.kind) {
    case TraceKind::ComputeSuperstep: {
      CategorySummary& s = computeSummary_[event.name];
      s.supersteps += 1;
      s.cycles += event.durationCycles;
      s.tileMeanCycles += event.tileMean;
      s.tileMinCycles += event.tileMin;
      if (event.durationCycles > s.worstCycles) {
        s.worstCycles = event.durationCycles;
        s.worstStragglerTile = event.stragglerTile;
      }
      break;
    }
    case TraceKind::ExchangeSuperstep:
      exchangeCycles_ += event.durationCycles;
      exchangeSupersteps_ += 1;
      exchangedBytes_ += event.bytes;
      break;
    case TraceKind::Sync:
      syncCycles_ += event.durationCycles;
      break;
    case TraceKind::Iteration:
      iterationCount_ += 1;
      break;
    case TraceKind::Fault:
      faultCount_ += 1;
      break;
    case TraceKind::Recovery:
      recoveryCount_ += 1;
      break;
    case TraceKind::Job:
      jobEventCount_ += 1;
      break;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    if (recorded_ == capacity_) {
      // Warn exactly once per filled ring: from here on the timeline is
      // truncated (the aggregates above stay exact). stderr, not an error —
      // a wrapped ring is a working configuration, just a lossy one.
      std::fprintf(stderr,
                   "graphene: trace ring capacity %zu reached; oldest "
                   "timeline events are being dropped (summary aggregates "
                   "remain exact)\n",
                   capacity_);
    }
    ring_[recorded_ % capacity_] = std::move(event);
  }
  recorded_ += 1;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  const std::size_t start = recorded_ > capacity_ ? recorded_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  recorded_ = 0;
  computeSummary_.clear();
  exchangeCycles_ = syncCycles_ = 0;
  exchangeSupersteps_ = exchangedBytes_ = 0;
  faultCount_ = recoveryCount_ = iterationCount_ = jobEventCount_ = 0;
  jobsSeen_.clear();
  // jobId_ survives clear() deliberately: it is the sink's configuration
  // (who is currently being traced), not recorded state.
}

double TraceSink::totalComputeCycles() const {
  double s = 0;
  for (const auto& [k, v] : computeSummary_) s += v.cycles;
  return s;
}

void recordIteration(TraceSink* sink, const std::string& solver,
                     std::size_t iteration, double residual, double cycle,
                     std::size_t superstep) {
  if (sink == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceKind::Iteration;
  ev.name = solver;
  ev.startCycle = cycle;
  ev.superstep = superstep;
  ev.iteration = iteration;
  ev.residual = residual;
  sink->record(std::move(ev));
}

void recordJobEvent(TraceSink* sink, const std::string& name,
                    std::size_t jobId, double sequence,
                    const std::string& detail) {
  if (sink == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceKind::Job;
  ev.name = name;
  ev.jobId = jobId;
  ev.startCycle = sequence;
  ev.detail = detail;
  sink->record(std::move(ev));
}

namespace {

/// Stable row (Chrome "thread") ids: compute categories first, then the
/// machine rows, then one row per solver, then the fault/recovery row.
class RowIds {
 public:
  int idFor(const std::string& rowName) {
    auto it = ids_.find(rowName);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(ids_.size()) + 1;
    ids_.emplace(rowName, id);
    order_.push_back(rowName);
    return id;
  }
  const std::vector<std::string>& order() const { return order_; }
  int lookup(const std::string& rowName) const { return ids_.at(rowName); }

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> order_;
};

std::string rowNameFor(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceKind::ComputeSuperstep: return "compute:" + ev.name;
    case TraceKind::ExchangeSuperstep: return "exchange";
    case TraceKind::Sync: return "sync";
    case TraceKind::Iteration: return "solver:" + ev.name;
    case TraceKind::Fault:
    case TraceKind::Recovery: return "faults";
    case TraceKind::Job: return "jobs";
  }
  return "other";
}

/// Chrome process id for an event: jobs map to distinct pids so interleaved
/// concurrent solves through one sink render as separate process groups.
int pidFor(const TraceEvent& ev) {
  return ev.jobId == SIZE_MAX ? 0 : static_cast<int>(ev.jobId) + 1;
}

}  // namespace

json::Value traceToChromeJson(const TraceSink& sink) {
  const std::vector<TraceEvent> events = sink.events();
  RowIds rows;
  json::Array traceEvents;

  std::set<int> pids;
  for (const TraceEvent& ev : events) {
    const int tid = rows.idFor(rowNameFor(ev));
    const int pid = pidFor(ev);
    pids.insert(pid);
    json::Object e;
    e["name"] = ev.name;
    e["cat"] = std::string(toString(ev.kind));
    e["pid"] = pid;
    e["tid"] = tid;
    e["ts"] = ev.startCycle;
    json::Object args;
    args["superstep"] = ev.superstep;
    if (ev.jobId != SIZE_MAX) args["jobId"] = ev.jobId;
    switch (ev.kind) {
      case TraceKind::ComputeSuperstep:
        e["ph"] = std::string("X");
        e["dur"] = ev.durationCycles;
        args["tileMin"] = ev.tileMin;
        args["tileMean"] = ev.tileMean;
        args["tileMax"] = ev.tileMax;
        args["stragglerTile"] = ev.stragglerTile;
        args["activeTiles"] = ev.activeTiles;
        break;
      case TraceKind::ExchangeSuperstep:
      case TraceKind::Sync:
        e["ph"] = std::string("X");
        e["dur"] = ev.durationCycles;
        if (ev.kind == TraceKind::ExchangeSuperstep) {
          args["bytes"] = ev.bytes;
        }
        break;
      case TraceKind::Iteration:
        e["ph"] = std::string("i");
        e["s"] = std::string("t");  // instant scope: thread
        args["iteration"] = ev.iteration;
        if (ev.residual >= 0) args["residual"] = ev.residual;
        break;
      case TraceKind::Fault:
      case TraceKind::Recovery:
      case TraceKind::Job:
        e["ph"] = std::string("i");
        e["s"] = std::string("p");  // instant scope: process-wide
        break;
    }
    if (!ev.detail.empty()) args["detail"] = ev.detail;
    e["args"] = std::move(args);
    traceEvents.push_back(json::Value(std::move(e)));

    // A residual counter track per solver row: Perfetto plots it as a
    // graph, which is how a fault event visually lines up with its
    // residual spike.
    if (ev.kind == TraceKind::Iteration && ev.residual >= 0) {
      json::Object c;
      c["name"] = "residual:" + ev.name;
      c["ph"] = std::string("C");
      c["pid"] = pid;
      c["ts"] = ev.startCycle;
      json::Object cargs;
      // log10 keeps the counter track readable over 10+ decades.
      cargs["log10"] = std::log10(std::max(ev.residual, 1e-300));
      c["args"] = std::move(cargs);
      traceEvents.push_back(json::Value(std::move(c)));
    }
  }

  // Name the rows and processes (metadata events, the Chrome convention).
  // Row names repeat per process: each job renders as its own pid group.
  for (const int pid : pids) {
    if (pid != 0) {
      json::Object pm;
      pm["name"] = std::string("process_name");
      pm["ph"] = std::string("M");
      pm["pid"] = pid;
      json::Object pargs;
      pargs["name"] = "job " + std::to_string(pid - 1);
      pm["args"] = std::move(pargs);
      traceEvents.push_back(json::Value(std::move(pm)));
    }
    for (const std::string& rowName : rows.order()) {
      json::Object m;
      m["name"] = std::string("thread_name");
      m["ph"] = std::string("M");
      m["pid"] = pid;
      m["tid"] = rows.lookup(rowName);
      json::Object args;
      args["name"] = rowName;
      m["args"] = std::move(args);
      traceEvents.push_back(json::Value(std::move(m)));
    }
  }

  json::Object root;
  root["traceEvents"] = json::Value(std::move(traceEvents));
  root["displayTimeUnit"] = std::string("ns");
  json::Object meta;
  meta["recordedEvents"] = sink.recorded();
  meta["droppedEvents"] = sink.dropped();
  meta["clockDomain"] = std::string("simulated-ipu-cycles");
  root["otherData"] = std::move(meta);
  return json::Value(std::move(root));
}

TextTable traceSummaryTable(const TraceSink& sink) {
  TextTable t({"Category", "Supersteps", "Cycles", "% of total",
               "Mean tile", "Imbalance", "Worst straggler"});
  const double total = sink.totalCycles();
  auto pct = [&](double v) {
    return formatSig(total > 0 ? 100.0 * v / total : 0.0, 3) + "%";
  };
  for (const auto& [category, s] : sink.computeSummary()) {
    const double mean =
        s.supersteps > 0 ? s.tileMeanCycles / static_cast<double>(s.supersteps)
                         : 0.0;
    const double imbalance =
        s.tileMeanCycles > 0 ? s.cycles / s.tileMeanCycles : 1.0;
    t.addRow({category, std::to_string(s.supersteps), formatSig(s.cycles, 6),
              pct(s.cycles), formatSig(mean, 4),
              formatSig(imbalance, 3) + "x",
              s.worstStragglerTile == SIZE_MAX
                  ? "-"
                  : "tile " + std::to_string(s.worstStragglerTile)});
  }
  t.addRow({"exchange", std::to_string(sink.exchangeSupersteps()),
            formatSig(sink.exchangeCycles(), 6), pct(sink.exchangeCycles()),
            "-", "-", "-"});
  t.addRow({"sync", "-", formatSig(sink.syncCycles(), 6),
            pct(sink.syncCycles()), "-", "-", "-"});
  if (!sink.jobsSeen().empty()) {
    // The sink merged events from service-dispatched jobs: say how many, so
    // a reader knows the per-category rows aggregate across solves.
    t.addRow({"(jobs)", std::to_string(sink.jobEventCount()) + " events",
              "-", "-", "-", "-",
              std::to_string(sink.jobsSeen().size()) + " distinct jobs"});
  }
  if (sink.dropped() > 0) {
    // A wrapped ring must not read as a complete timeline.
    t.addRow({"(dropped)", std::to_string(sink.dropped()) + " events", "-",
              "-", "-", "-", "ring wrapped"});
  }
  return t;
}

std::map<std::string, double> traceComputeCycles(const TraceSink& sink) {
  std::map<std::string, double> out;
  for (const auto& [category, s] : sink.computeSummary()) {
    out[category] = s.cycles;
  }
  return out;
}

}  // namespace graphene::support
