// Performance and energy models of the paper's comparison platforms
// (Table III): Intel Xeon Platinum 8470Q, NVIDIA H100 SXM, GraphCore M2000.
//
// The IPU numbers in the benches come from the cycle-accurate simulator; the
// CPU/GPU numbers come from these roofline-style models (no such hardware in
// this environment — see DESIGN.md §1). SpMV is bandwidth-bound; sparse
// triangular solves on the GPU additionally pay one kernel launch per
// level-set level (cuSPARSE behaviour), which is what makes the CPU
// comparatively strong in the solver benchmark (§VI-D).
#pragma once

#include <cstddef>
#include <string>

namespace graphene::baseline {

struct PlatformSpec {
  std::string name;
  double memBandwidth = 0;      // bytes/second
  double peakFlops = 0;         // FLOP/s at the precision used (FP64)
  double tdpWatts = 0;
  double launchSeconds = 0;     // per-kernel launch / per-step sync overhead
  double triSolveBwFraction = 1.0;  // achievable bandwidth in tri-solves
  bool perLevelLaunch = false;  // accelerators launch one kernel per level
};

/// Intel Xeon Platinum 8470Q: 52 cores, 8-channel DDR5-4800 (~307 GB/s),
/// 2.3 TFLOPS FP64, 350 W. HYPRE/MPI per-iteration collectives cost a few
/// microseconds; triangular solves run at a fraction of stream bandwidth
/// because of their dependency chains.
PlatformSpec xeon8470q();

/// NVIDIA H100 SXM: 3.35 TB/s HBM3, 34 TFLOPS FP64, 700 W, ~3 µs kernel
/// launch. cuSPARSE triangular solves execute one kernel per level.
PlatformSpec h100Sxm();

/// GraphCore M2000 (4×Mk2): power for the energy comparison; timing comes
/// from the simulator, not from this model. 420 W is the measured IPU-only
/// draw the paper reports.
PlatformSpec m2000();

/// Double-precision CSR SpMV time: traffic / bandwidth + launch overhead,
/// floored by the FLOP roofline. Traffic model: 12 B per nonzero
/// (value + column index; x gather mostly cached) + 20 B per row
/// (row pointer + y write + x stream share).
double spmvSeconds(const PlatformSpec& p, std::size_t rows, std::size_t nnz);

/// Sparse triangular solve (one of the two (L/U) sweeps of an ILU(0) apply):
/// traffic at the platform's tri-solve bandwidth fraction plus one launch
/// per level (GPU level-set scheduling).
double triSolveSeconds(const PlatformSpec& p, std::size_t rows,
                       std::size_t nnz, std::size_t levels);

/// One PBiCGStab(+ILU(0)) iteration: 2 SpMV + 2 preconditioner applies
/// (2 tri-solves each) + 4 dot products + ~6 AXPY-type vector ops.
double bicgstabIterationSeconds(const PlatformSpec& p, std::size_t rows,
                                std::size_t nnz, std::size_t levels,
                                bool withIlu);

/// Energy estimate: board power × time.
double energyJoules(const PlatformSpec& p, double seconds);

}  // namespace graphene::baseline
