// Plain-text table printer used by the benchmark harness to emit rows that
// mirror the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace graphene {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Renders the table with column alignment and a header separator.
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (bench output helper).
std::string formatSig(double value, int digits = 4);

/// Formats a time in seconds with an auto-selected unit (s / ms / µs / ns).
std::string formatTime(double seconds);

/// Formats a byte count with an auto-selected unit (B / kB / MB / GB).
std::string formatBytes(double bytes);

}  // namespace graphene
