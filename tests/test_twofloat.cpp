// Tests for the TwoFloat double-word arithmetic library.
//
// Strategy: double-word-over-float results are compared against host double
// arithmetic, which is more than precise enough to serve as a reference for
// the ~2^-44 error bounds of float double-word operations.
#include "twofloat/twofloat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace tf = graphene::twofloat;

using tf::DoubleWord;
using tf::Policy;

namespace {

// Unit roundoff of float squared — the magnitude scale of double-word errors.
constexpr double kU = 0x1.0p-24;
constexpr double kU2 = kU * kU;  // ~3.55e-15

template <Policy P>
double relError(DoubleWord<float, P> got, double expect) {
  if (expect == 0.0) return std::abs(got.toWide());
  return std::abs((got.toWide() - expect) / expect);
}

}  // namespace

// ---------------------------------------------------------------------------
// Error-free transforms
// ---------------------------------------------------------------------------

TEST(Eft, TwoSumIsErrorFree) {
  graphene::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    float a = static_cast<float>(rng.uniform(-1e10, 1e10));
    float b = static_cast<float>(rng.uniform(-1e-10, 1e-10));
    auto r = tf::twoSum(a, b);
    // value + error == a + b exactly in double (float ops are exact in
    // double when inputs are floats and the op is exact by construction).
    EXPECT_EQ(static_cast<double>(r.value) + static_cast<double>(r.error),
              static_cast<double>(a) + static_cast<double>(b));
  }
}

TEST(Eft, FastTwoSumMatchesTwoSumWhenOrdered) {
  graphene::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    float a = static_cast<float>(rng.uniform(-1e6, 1e6));
    float b = static_cast<float>(rng.uniform(-1.0, 1.0));
    if (std::abs(a) < std::abs(b)) std::swap(a, b);
    auto fast = tf::fastTwoSum(a, b);
    auto full = tf::twoSum(a, b);
    EXPECT_EQ(fast.value, full.value);
    EXPECT_EQ(fast.error, full.error);
  }
}

TEST(Eft, TwoProdFmaIsErrorFree) {
  graphene::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    float a = static_cast<float>(rng.uniform(-1e5, 1e5));
    float b = static_cast<float>(rng.uniform(-1e5, 1e5));
    auto r = tf::twoProdFma(a, b);
    EXPECT_EQ(static_cast<double>(r.value) + static_cast<double>(r.error),
              static_cast<double>(a) * static_cast<double>(b));
  }
}

TEST(Eft, TwoProdDekkerMatchesFma) {
  graphene::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    float a = static_cast<float>(rng.uniform(-1e4, 1e4));
    float b = static_cast<float>(rng.uniform(-1e4, 1e4));
    auto fma = tf::twoProdFma(a, b);
    auto dek = tf::twoProdDekker(a, b);
    EXPECT_EQ(fma.value, dek.value);
    EXPECT_EQ(fma.error, dek.error);
  }
}

TEST(Eft, SplitterConstants) {
  // float: 2^12+1, double: 2^27+1 (Dekker).
  EXPECT_EQ(tf::splitterConstant<float>(), 4097.0f);
  EXPECT_EQ(tf::splitterConstant<double>(), 134217729.0);
}

TEST(Eft, SplitPartsRecombineExactly) {
  graphene::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    float x = static_cast<float>(rng.uniform(-1e8, 1e8));
    auto s = tf::split(x);
    EXPECT_EQ(s.value + s.error, x);
  }
}

// ---------------------------------------------------------------------------
// Double-word arithmetic: representability
// ---------------------------------------------------------------------------

TEST(TwoFloat, RepresentsBeyondSinglePrecision) {
  // The paper's example: 1.00000001 is not representable in float32 but is
  // representable as the sum of two floats.
  auto dw = tf::Float2::fromWide(1.00000001);
  EXPECT_NE(static_cast<double>(static_cast<float>(1.00000001)), 1.00000001);
  EXPECT_NEAR(dw.toWide(), 1.00000001, 1e-15);
}

TEST(TwoFloat, FromWideSplitsExactly) {
  graphene::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.uniform(-1e6, 1e6);
    auto dw = tf::Float2::fromWide(d);
    // hi + lo recovers d to double-word precision (|err| <= ulp(lo)/2).
    EXPECT_NEAR(dw.toWide(), d, std::abs(d) * kU2 + 1e-300);
    // Normalisation: |lo| <= ulp(hi)/2.
    EXPECT_LE(std::abs(static_cast<double>(dw.lo)),
              std::abs(static_cast<double>(dw.hi)) * kU * 1.0001 + 1e-300);
  }
}

// ---------------------------------------------------------------------------
// Accurate (Joldes) arithmetic: property sweeps against double reference
// ---------------------------------------------------------------------------

class TwoFloatAccurateOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoFloatAccurateOps, AddBound) {
  graphene::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(-1e8, 1e8);
    double b = rng.uniform(-1e8, 1e8);
    auto r = tf::Float2::fromWide(a) + tf::Float2::fromWide(b);
    // Joldes bound: 3u^2 relative to the result; input representation error
    // (up to u^2 each) is absolute in max(|a|,|b|), so under cancellation the
    // bound is absolute in the input magnitude.
    double scale = std::max(std::abs(a), std::abs(b));
    EXPECT_NEAR(r.toWide(), a + b, scale * 8 * kU2) << "a=" << a << " b=" << b;
  }
}

TEST_P(TwoFloatAccurateOps, AddCancellationStaysAccurate) {
  // The accurate DW+DW algorithm keeps its bound even under heavy
  // cancellation — this is why the paper picks Joldes for MPIR.
  graphene::Rng rng(GetParam() + 100);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(1.0, 2.0);
    double b = -a * (1.0 + rng.uniform(-1e-7, 1e-7));
    auto r = tf::Float2::fromWide(a) + tf::Float2::fromWide(b);
    double expect = a + b;
    EXPECT_NEAR(r.toWide(), expect, std::abs(a) * 8 * kU2);
  }
}

TEST_P(TwoFloatAccurateOps, MulBound) {
  graphene::Rng rng(GetParam() + 200);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(-1e4, 1e4);
    double b = rng.uniform(-1e4, 1e4);
    auto r = tf::Float2::fromWide(a) * tf::Float2::fromWide(b);
    EXPECT_LE(relError(r, a * b), 10 * kU2);
  }
}

TEST_P(TwoFloatAccurateOps, DivBound) {
  graphene::Rng rng(GetParam() + 300);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(-1e4, 1e4);
    double b = rng.uniform(0.1, 1e4) * (rng.nextU64() % 2 ? 1 : -1);
    auto r = tf::Float2::fromWide(a) / tf::Float2::fromWide(b);
    EXPECT_LE(relError(r, a / b), 16 * kU2);
  }
}

TEST_P(TwoFloatAccurateOps, MixedDwFpOps) {
  graphene::Rng rng(GetParam() + 400);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(-1e4, 1e4);
    float b = static_cast<float>(rng.uniform(-1e3, 1e3));
    if (b == 0.0f) continue;
    auto x = tf::Float2::fromWide(a);
    EXPECT_LE(relError(x + b, a + static_cast<double>(b)), 8 * kU2 + 1e-9);
    EXPECT_LE(relError(x * b, a * static_cast<double>(b)), 10 * kU2);
    EXPECT_LE(relError(x / b, a / static_cast<double>(b)), 10 * kU2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoFloatAccurateOps,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Fast (Lange-Rump style) arithmetic
// ---------------------------------------------------------------------------

TEST(TwoFloatFast, SameSignAddIsAccurate) {
  graphene::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.uniform(0.1, 1e8);
    double b = rng.uniform(0.1, 1e8);
    auto r = tf::FastFloat2::fromWide(a) + tf::FastFloat2::fromWide(b);
    EXPECT_LE(relError(r, a + b), 16 * kU2);
  }
}

TEST(TwoFloatFast, MulAndDivBounds) {
  graphene::Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.uniform(-1e4, 1e4);
    double b = rng.uniform(0.1, 1e4);
    EXPECT_LE(relError(tf::FastFloat2::fromWide(a) * tf::FastFloat2::fromWide(b),
                       a * b),
              16 * kU2);
    EXPECT_LE(relError(tf::FastFloat2::fromWide(a) / tf::FastFloat2::fromWide(b),
                       a / b),
              64 * kU2);
  }
}

TEST(TwoFloatFast, AccurateBeatsFastUnderCancellation) {
  // Repeated accumulation of alternating-sign values: the sloppy addition
  // loses digits, the accurate one does not. This is the §III-D trade-off.
  double reference = 0.0;
  tf::Float2 acc{};
  tf::FastFloat2 fast{};
  graphene::Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.uniform(-1.0, 1.0);
    reference += v;
    acc = acc + tf::Float2::fromWide(v);
    fast = fast + tf::FastFloat2::fromWide(v);
  }
  double accErr = std::abs(acc.toWide() - reference);
  double fastErr = std::abs(fast.toWide() - reference);
  EXPECT_LE(accErr, 1e-9);
  EXPECT_LE(accErr, fastErr + 1e-12);
}

// ---------------------------------------------------------------------------
// Comparisons, abs, sqrt, misc
// ---------------------------------------------------------------------------

TEST(TwoFloat, ComparisonOperators) {
  auto a = tf::Float2::fromWide(1.0);
  auto b = tf::Float2::fromWide(1.0 + 1e-10);  // differs only in lo
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(TwoFloat, AbsAndNegate) {
  auto a = tf::Float2::fromWide(-3.25);
  EXPECT_DOUBLE_EQ(tf::abs(a).toWide(), 3.25);
  EXPECT_DOUBLE_EQ((-a).toWide(), 3.25);
  auto z = tf::Float2::fromWide(0.0);
  EXPECT_DOUBLE_EQ(tf::abs(z).toWide(), 0.0);
}

TEST(TwoFloat, SqrtAccuracy) {
  graphene::Rng rng(10);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.uniform(1e-6, 1e8);
    auto r = tf::sqrt(tf::Float2::fromWide(a));
    EXPECT_LE(relError(r, std::sqrt(a)), 16 * kU2);
  }
  EXPECT_DOUBLE_EQ(tf::sqrt(tf::Float2{}).toWide(), 0.0);
}

TEST(TwoFloat, DecimalDigitsMatchTableI) {
  // Table I: double-word float32 gives 13.3 to 14.0 decimal digits. Verify a
  // long dependent chain keeps at least ~13 digits.
  tf::Float2 x = tf::Float2::fromWide(1.0);
  double ref = 1.0;
  for (int i = 1; i <= 100; ++i) {
    double v = 1.0 / i;
    x = x * tf::Float2::fromWide(1.0 + v * 1e-3);
    ref = ref * (1.0 + v * 1e-3);
  }
  double digits = -std::log10(std::abs((x.toWide() - ref) / ref) + 1e-300);
  EXPECT_GE(digits, 13.0);
}

TEST(TwoFloat, FlopCountsMatchPaper) {
  auto acc = tf::flopCounts(Policy::Accurate);
  auto fast = tf::flopCounts(Policy::Fast);
  // §III-D: Joldes 20–34 flops, Lange-Rump 7–25 flops per double-word op.
  EXPECT_GE(acc.addDwDw, fast.addDwDw);
  EXPECT_GE(acc.divDwDw, fast.divDwDw);
  EXPECT_EQ(acc.addDwDw, 20);
  EXPECT_LE(fast.divDwDw, 25);
}
