#include "matrix/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace graphene::matrix {

CsrMatrix readMatrixMarket(std::istream& in) {
  std::string line;
  GRAPHENE_CHECK(static_cast<bool>(std::getline(in, line)),
                 "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw ParseError("missing %%MatrixMarket banner");
  }
  if (object != "matrix" || format != "coordinate") {
    throw ParseError("only 'matrix coordinate' MatrixMarket files supported");
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    throw ParseError("unsupported MatrixMarket field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw ParseError("unsupported MatrixMarket symmetry: " + symmetry);
  }

  // Skip comments.
  do {
    GRAPHENE_CHECK(static_cast<bool>(std::getline(in, line)),
                   "truncated MatrixMarket header");
  } while (!line.empty() && line[0] == '%');

  std::istringstream sizes(line);
  std::size_t rows = 0, cols = 0, entries = 0;
  sizes >> rows >> cols >> entries;
  if (sizes.fail()) throw ParseError("malformed MatrixMarket size line");

  std::vector<Triplet> trips;
  trips.reserve(symmetric ? 2 * entries : entries);
  for (std::size_t i = 0; i < entries; ++i) {
    GRAPHENE_CHECK(static_cast<bool>(std::getline(in, line)),
                   "truncated MatrixMarket data at entry ", i);
    std::istringstream es(line);
    std::size_t r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (!pattern) es >> v;
    if (es.fail() || r == 0 || c == 0 || r > rows || c > cols) {
      throw ParseError("malformed MatrixMarket entry: " + line);
    }
    trips.push_back(Triplet{r - 1, c - 1, v});
    if (symmetric && r != c) trips.push_back(Triplet{c - 1, r - 1, v});
  }
  return CsrMatrix::fromTriplets(rows, cols, std::move(trips));
}

CsrMatrix readMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  GRAPHENE_CHECK(in.good(), "cannot open MatrixMarket file '", path, "'");
  return readMatrixMarket(in);
}

void writeMatrixMarket(const CsrMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  out.precision(17);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      out << (r + 1) << " " << (col[k] + 1) << " " << val[k] << "\n";
    }
  }
}

void writeMatrixMarketFile(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  GRAPHENE_CHECK(out.good(), "cannot open '", path, "' for writing");
  writeMatrixMarket(a, out);
}

}  // namespace graphene::matrix
