// Worker-thread timing model — the simulated equivalent of the paper's
// open-sourced IPUTHREADING library (§V-A, reference [18]).
//
// A tile has six hardware worker threads. Poplar inserts a sync before every
// compute set; adding one compute set per level-set level made graph
// compilation unacceptably slow, so the paper spawns and synchronises worker
// threads *inside* a single compute set using the run/runall/sync
// instructions. This class models exactly that: per-worker cycle clocks, a
// `runall` spawn overhead, and `sync` barriers that advance every worker to
// the slowest one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace graphene::ipu {

class WorkerPool {
 public:
  /// Cycle cost of the supervisor issuing `runall` (spawning all workers).
  static constexpr double kRunAllCycles = 18.0;
  /// Cycle cost of a `sync` barrier across the tile's workers.
  static constexpr double kSyncCycles = 12.0;

  explicit WorkerPool(std::size_t numWorkers) : clocks_(numWorkers, 0.0) {
    GRAPHENE_CHECK(numWorkers > 0, "worker pool needs at least one worker");
  }

  std::size_t numWorkers() const { return clocks_.size(); }

  /// Charges `cycles` of work to worker `w`.
  void addCycles(std::size_t w, double cycles) {
    GRAPHENE_CHECK(w < clocks_.size(), "worker index out of range");
    clocks_[w] += cycles;
  }

  /// Models `runall`: the supervisor hands one work item per worker.
  void chargeSpawn() {
    for (double& c : clocks_) c += kRunAllCycles / static_cast<double>(clocks_.size());
  }

  /// Barrier: every worker's clock advances to the slowest worker, plus the
  /// sync instruction cost. Returns the barrier time.
  double sync() {
    double m = elapsed() + kSyncCycles;
    std::fill(clocks_.begin(), clocks_.end(), m);
    return m;
  }

  /// Max over worker clocks — the tile-visible duration so far.
  double elapsed() const {
    double m = 0;
    for (double c : clocks_) m = std::max(m, c);
    return m;
  }

  /// Sum of worker clocks — total work (for utilisation statistics).
  double totalWork() const {
    double s = 0;
    for (double c : clocks_) s += c;
    return s;
  }

  /// Fraction of issue slots doing useful work: totalWork / (workers*elapsed).
  double utilisation() const {
    double e = elapsed();
    if (e == 0) return 1.0;
    return totalWork() / (static_cast<double>(clocks_.size()) * e);
  }

 private:
  std::vector<double> clocks_;
};

}  // namespace graphene::ipu
