// Preconditioned Conjugate Gradient (for the SPD systems of Table II) and
// the Richardson iteration.
#include <cmath>

#include "solver/solvers.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void RichardsonSolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  z = Expression(0.0f);
  Tensor res = a.makeVector(DType::Float32, "rich_res");
  dsl::Repeat(iterations_, [&] {
    a.spmv(res, z);
    z = Expression(z) +
        Expression(omega_) * (Expression(r) - Expression(res));
  });
}

void CgSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  precond_->ensureSetup(a);

  x = Expression(0.0f);
  Tensor r = b;  // r0 = b - A*0
  Tensor z = a.makeVector(DType::Float32, "cg_z");
  precond_->apply(a, z, r);
  Tensor p = z;  // deep copy
  Tensor Ap = a.makeVector(DType::Float32, "cg_Ap");

  Tensor bNormSq = Dot(b, b);
  Tensor rz = Tensor(Dot(r, z));
  Tensor rzNew = Tensor::scalar(DType::Float32, "cg_rznew");
  Tensor alpha = Tensor::scalar(DType::Float32, "cg_alpha");
  Tensor beta = Tensor::scalar(DType::Float32, "cg_beta");
  Tensor denom = Tensor::scalar(DType::Float32, "cg_denom");
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "cg_iter");
  iter = Expression(0);

  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();

  Expression keepGoing =
      tolerance_ > 0.0
          ? Expression(iter) < static_cast<int>(maxIterations_) &&
                Expression(resNormSq) > Expression(tol2) * Expression(bNormSq)
          : Expression(iter) < static_cast<int>(maxIterations_);

  dsl::While(keepGoing, [&] {
    a.spmv(Ap, p);
    denom = Dot(p, Ap);
    alpha = dsl::Select(Abs(Expression(denom)) > Expression(0.0f),
                        Expression(rz) / Expression(denom), Expression(0.0f));
    x = Expression(x) + Expression(alpha) * Expression(p);
    r = Expression(r) - Expression(alpha) * Expression(Ap);
    precond_->apply(a, z, r);
    rzNew = Dot(r, z);
    beta = dsl::Select(Abs(Expression(rz)) > Expression(0.0f),
                       Expression(rzNew) / Expression(rz), Expression(0.0f));
    p = Expression(z) + Expression(beta) * Expression(p);
    rz = Expression(rzNew);
    iter = Expression(iter) + 1;
    resNormSq = Dot(r, r);
    dsl::HostCall([histPtr, resId, bId](graph::Engine& e) {
      double rr = e.readScalar(resId).toHostDouble();
      double bb = e.readScalar(bId).toHostDouble();
      histPtr->push_back(
          {histPtr->size() + 1, std::sqrt(std::abs(rr) / std::max(bb, 1e-300))});
    });
  });
}

}  // namespace graphene::solver
