// Tests for SoftDouble, the software-emulated IEEE-754 binary64 type.
//
// The host CPU has hardware binary64, so every operation can be verified
// bit-exactly against the hardware result.
#include "twofloat/softdouble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "support/rng.hpp"

using graphene::twofloat::SoftDouble;

namespace {

std::uint64_t bitsOf(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

bool sameBitsOrBothNan(SoftDouble got, double expect) {
  if (std::isnan(expect)) return got.isNan();
  return got.bits() == bitsOf(expect);
}

double randomDouble(graphene::Rng& rng) {
  // Mix of magnitudes, including values near the subnormal range.
  switch (rng.nextU64() % 4) {
    case 0: return rng.uniform(-1e3, 1e3);
    case 1: return rng.uniform(-1e300, 1e300);
    case 2: return rng.uniform(-1e-300, 1e-300);
    default: return rng.uniform(-1.0, 1.0) * std::pow(2.0, static_cast<double>(rng.nextU64() % 2000) - 1000.0);
  }
}

}  // namespace

TEST(SoftDouble, RoundTripBits) {
  graphene::Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    double d = randomDouble(rng);
    EXPECT_EQ(SoftDouble::fromDouble(d).toDouble(), d);
  }
}

TEST(SoftDouble, ClassificationPredicates) {
  EXPECT_TRUE(SoftDouble::fromDouble(0.0).isZero());
  EXPECT_TRUE(SoftDouble::fromDouble(-0.0).isZero());
  EXPECT_TRUE(
      SoftDouble::fromDouble(std::numeric_limits<double>::infinity()).isInf());
  EXPECT_TRUE(
      SoftDouble::fromDouble(std::numeric_limits<double>::quiet_NaN()).isNan());
  EXPECT_FALSE(SoftDouble::fromDouble(1.5).isNan());
  EXPECT_FALSE(SoftDouble::fromDouble(1.5).isInf());
  EXPECT_FALSE(SoftDouble::fromDouble(1.5).isZero());
}

class SoftDoubleRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftDoubleRandomOps, AddMatchesHardwareBitExactly) {
  graphene::Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    double a = randomDouble(rng);
    double b = randomDouble(rng);
    auto r = SoftDouble::fromDouble(a) + SoftDouble::fromDouble(b);
    EXPECT_TRUE(sameBitsOrBothNan(r, a + b))
        << "a=" << a << " b=" << b << " got=" << r.toDouble()
        << " want=" << (a + b);
  }
}

TEST_P(SoftDoubleRandomOps, SubMatchesHardwareBitExactly) {
  graphene::Rng rng(GetParam() + 1);
  for (int i = 0; i < 20000; ++i) {
    double a = randomDouble(rng);
    double b = randomDouble(rng);
    auto r = SoftDouble::fromDouble(a) - SoftDouble::fromDouble(b);
    EXPECT_TRUE(sameBitsOrBothNan(r, a - b)) << "a=" << a << " b=" << b;
  }
}

TEST_P(SoftDoubleRandomOps, MulMatchesHardwareBitExactly) {
  graphene::Rng rng(GetParam() + 2);
  for (int i = 0; i < 20000; ++i) {
    double a = randomDouble(rng);
    double b = randomDouble(rng);
    auto r = SoftDouble::fromDouble(a) * SoftDouble::fromDouble(b);
    EXPECT_TRUE(sameBitsOrBothNan(r, a * b))
        << "a=" << a << " b=" << b << " got=" << r.toDouble()
        << " want=" << a * b;
  }
}

TEST_P(SoftDoubleRandomOps, DivMatchesHardwareBitExactly) {
  graphene::Rng rng(GetParam() + 3);
  for (int i = 0; i < 20000; ++i) {
    double a = randomDouble(rng);
    double b = randomDouble(rng);
    auto r = SoftDouble::fromDouble(a) / SoftDouble::fromDouble(b);
    EXPECT_TRUE(sameBitsOrBothNan(r, a / b))
        << "a=" << a << " b=" << b << " got=" << r.toDouble()
        << " want=" << a / b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftDoubleRandomOps,
                         ::testing::Values(101, 202, 303));

TEST(SoftDouble, SpecialCaseTable) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  struct Case {
    double a, b;
  };
  const Case cases[] = {
      {0.0, 0.0},   {0.0, -0.0},  {-0.0, -0.0}, {inf, 1.0},  {1.0, inf},
      {inf, inf},   {inf, -inf},  {nan, 1.0},   {1.0, nan},  {nan, nan},
      {0.0, inf},   {inf, 0.0},   {1.0, 0.0},   {0.0, 1.0},  {-1.0, 0.0},
      {0.0, -1.0},  {1e308, 1e308}, {-1e308, -1e308}, {1e-308, 1e-308},
      {5e-324, 5e-324}, {5e-324, -5e-324}, {1.0, 5e-324},
  };
  for (const auto& c : cases) {
    EXPECT_TRUE(sameBitsOrBothNan(
        SoftDouble::fromDouble(c.a) + SoftDouble::fromDouble(c.b), c.a + c.b))
        << "add " << c.a << "," << c.b;
    EXPECT_TRUE(sameBitsOrBothNan(
        SoftDouble::fromDouble(c.a) * SoftDouble::fromDouble(c.b), c.a * c.b))
        << "mul " << c.a << "," << c.b;
    EXPECT_TRUE(sameBitsOrBothNan(
        SoftDouble::fromDouble(c.a) / SoftDouble::fromDouble(c.b), c.a / c.b))
        << "div " << c.a << "," << c.b;
  }
}

TEST(SoftDouble, SubnormalArithmetic) {
  graphene::Rng rng(55);
  for (int i = 0; i < 5000; ++i) {
    // Generate doubles in and around the subnormal range.
    double a = rng.uniform(-1.0, 1.0) * 1e-310;
    double b = rng.uniform(-1.0, 1.0) * 1e-310;
    EXPECT_TRUE(sameBitsOrBothNan(
        SoftDouble::fromDouble(a) + SoftDouble::fromDouble(b), a + b))
        << a << " + " << b;
    EXPECT_TRUE(sameBitsOrBothNan(
        SoftDouble::fromDouble(a) - SoftDouble::fromDouble(b), a - b))
        << a << " - " << b;
  }
}

TEST(SoftDouble, FromFloatIsExactWidening) {
  graphene::Rng rng(66);
  for (int i = 0; i < 20000; ++i) {
    float f = static_cast<float>(rng.uniform(-1e30, 1e30));
    EXPECT_EQ(SoftDouble::fromFloat(f).toDouble(), static_cast<double>(f));
  }
  // Subnormal floats widen exactly too.
  float tiny = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(SoftDouble::fromFloat(tiny).toDouble(), static_cast<double>(tiny));
  EXPECT_EQ(SoftDouble::fromFloat(-0.0f).toDouble(), 0.0);
  EXPECT_TRUE(std::signbit(SoftDouble::fromFloat(-0.0f).toDouble()));
}

TEST(SoftDouble, ToFloatMatchesHardwareNarrowing) {
  graphene::Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    double d = randomDouble(rng);
    float expect = static_cast<float>(d);
    float got = SoftDouble::fromDouble(d).toFloat();
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, expect) << "d=" << d;
    }
  }
}

TEST(SoftDouble, Comparisons) {
  auto sd = [](double d) { return SoftDouble::fromDouble(d); };
  EXPECT_TRUE(sd(1.0) < sd(2.0));
  EXPECT_TRUE(sd(-2.0) < sd(-1.0));
  EXPECT_TRUE(sd(-1.0) < sd(1.0));
  EXPECT_TRUE(sd(0.0) == sd(-0.0));
  EXPECT_FALSE(sd(0.0) < sd(-0.0));
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(sd(nan) == sd(nan));
  EXPECT_FALSE(sd(nan) < sd(1.0));
  EXPECT_FALSE(sd(1.0) <= sd(nan));
  EXPECT_TRUE(sd(1.0) != sd(nan));
  EXPECT_TRUE(sd(3.0) >= sd(3.0));
}

TEST(SoftDouble, SqrtAccuracy) {
  graphene::Rng rng(88);
  for (int i = 0; i < 2000; ++i) {
    double d = rng.uniform(1e-10, 1e10);
    double got = SoftDouble::sqrt(SoftDouble::fromDouble(d)).toDouble();
    double want = std::sqrt(d);
    EXPECT_NEAR(got, want, std::abs(want) * 1e-15) << "d=" << d;
  }
  EXPECT_TRUE(SoftDouble::sqrt(SoftDouble::fromDouble(-1.0)).isNan());
  EXPECT_TRUE(SoftDouble::sqrt(SoftDouble::fromDouble(0.0)).isZero());
}

TEST(SoftDouble, NegationAndAbs) {
  EXPECT_EQ((-SoftDouble::fromDouble(2.5)).toDouble(), -2.5);
  EXPECT_EQ(SoftDouble::abs(SoftDouble::fromDouble(-2.5)).toDouble(), 2.5);
  EXPECT_EQ(SoftDouble::abs(SoftDouble::fromDouble(2.5)).toDouble(), 2.5);
}
