// Execution profile collected by the Engine — the simulated analogue of
// Poplar's profiling feature (§VI-A: "For the IPU, we use Poplar's profiling
// feature to measure the required number of cycles").
//
// Compute cycles are attributed to the *category* of the compute set that
// spent them (e.g. "spmv", "reduce", "ilu_solve", "extended_precision"),
// which is exactly the granularity of the paper's Table IV breakdown.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace graphene::ipu {

struct Profile {
  /// Cycles per compute-set category (superstep durations, i.e. max over
  /// tiles, summed over executions).
  std::map<std::string, double> computeCycles;

  /// Cycles spent in exchange supersteps (incl. their sync).
  double exchangeCycles = 0;

  /// Cycles spent in compute-superstep BSP syncs.
  double syncCycles = 0;

  std::size_t computeSupersteps = 0;
  std::size_t exchangeSupersteps = 0;
  std::size_t exchangeInstructions = 0;
  std::size_t exchangedBytes = 0;

  double totalComputeCycles() const {
    double s = 0;
    for (const auto& [k, v] : computeCycles) s += v;
    return s;
  }

  double totalCycles() const {
    return totalComputeCycles() + exchangeCycles + syncCycles;
  }

  void clear() { *this = Profile{}; }

  Profile& operator+=(const Profile& o) {
    for (const auto& [k, v] : o.computeCycles) computeCycles[k] += v;
    exchangeCycles += o.exchangeCycles;
    syncCycles += o.syncCycles;
    computeSupersteps += o.computeSupersteps;
    exchangeSupersteps += o.exchangeSupersteps;
    exchangeInstructions += o.exchangeInstructions;
    exchangedBytes += o.exchangedBytes;
    return *this;
  }
};

}  // namespace graphene::ipu
