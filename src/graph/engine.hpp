// The Engine: loads a Graph, executes Programs on the simulated IPU, and
// collects the cycle profile.
//
// Functional semantics are exact (codelets run real arithmetic on the typed
// tensor storage); timing comes from the cost model: compute supersteps cost
// the slowest tile (BSP), exchange supersteps are priced by the fabric model.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/program.hpp"
#include "graph/storage.hpp"
#include "ipu/fault.hpp"
#include "ipu/profile.hpp"

namespace graphene::support {
class ThreadPool;
class TraceSink;
struct TileProfile;
}

namespace graphene::ipu {
class HealthMonitor;
}

namespace graphene::graph {

class Engine {
 public:
  /// `numHostThreads` controls how many host threads simulate tiles in
  /// parallel within a compute superstep: 1 executes tiles serially (the
  /// historical behaviour), 0 resolves to the GRAPHENE_TEST_HOST_THREADS
  /// environment variable when set, else std::thread::hardware_concurrency.
  /// Results, profiles and fault logs are bit-identical at every thread
  /// count: tiles are independent between BSP syncs, so the host-side
  /// schedule cannot influence what the simulated machine computes.
  explicit Engine(Graph& graph, std::size_t numHostThreads = 0);
  ~Engine();

  Graph& graph() { return graph_; }
  const ipu::IpuTarget& target() const { return graph_.target(); }

  /// Host threads used for tile-parallel compute supersteps (>= 1).
  std::size_t numHostThreads() const { return numHostThreads_; }

  /// Executes a program tree to completion. Unless disabled via
  /// setSuperstepFusion, the tree is first run through the superstep-fusion
  /// pass (cached per root, revalidated when the tree grows); semantics and
  /// profiles are identical either way.
  void run(const ProgramPtr& program);

  /// Enables/disables the superstep-fusion pass applied by run() (default
  /// on; GRAPHENE_NO_FUSION=1 disables it at construction). Results,
  /// profiles, traces and fault logs are bit-identical either way — the
  /// switch exists so tests can assert exactly that.
  void setSuperstepFusion(bool enabled) { fusionEnabled_ = enabled; }
  bool superstepFusion() const { return fusionEnabled_; }

  /// Host→device write of a whole tensor, in flat element order (the
  /// concatenation of per-tile regions).
  template <typename T>
  void writeTensor(TensorId id, std::span<const T> values) {
    auto dst = storageFor(id).as<T>();
    GRAPHENE_CHECK(values.size() == dst.size(), "write size mismatch on '",
                   graph_.tensor(id).name, "': ", values.size(), " vs ",
                   dst.size());
    std::copy(values.begin(), values.end(), dst.begin());
  }

  /// Device→host read of a whole tensor in flat element order.
  template <typename T>
  std::vector<T> readTensor(TensorId id) {
    auto src = storageFor(id).as<T>();
    return std::vector<T>(src.begin(), src.end());
  }

  /// Reads element 0 of a (replicated) scalar tensor.
  Scalar readScalar(TensorId id);

  /// Like readScalar, but throws NumericalError when the value is not finite
  /// — host convergence callbacks use it to surface NaN/Inf residuals as a
  /// typed error instead of recording garbage.
  Scalar readScalarFinite(TensorId id);

  /// Writes a scalar value into every replica of a replicated scalar tensor
  /// (or element 0 of a plain tensor).
  void writeScalar(TensorId id, const Scalar& value);

  /// Dynamically typed element access (host-side convenience).
  Scalar loadElement(TensorId id, std::size_t flatIndex);
  void storeElement(TensorId id, std::size_t flatIndex, const Scalar& value);

  TensorStorage& storageFor(TensorId id);

  const ipu::Profile& profile() const { return profile_; }
  ipu::Profile& profile() { return profile_; }

  /// Attaches a fault-injection plan (non-owning; nullptr detaches). With no
  /// plan attached every hook is a single null-pointer test, so execution is
  /// bit-identical to an engine without the fault framework.
  void setFaultPlan(ipu::FaultPlan* plan) { faultPlan_ = plan; }
  ipu::FaultPlan* faultPlan() const { return faultPlan_; }

  /// Attaches a health monitor (non-owning; nullptr detaches). Every
  /// compute superstep's per-tile cycle counts are reported to it from the
  /// serial reduction pass (deterministic at any host thread count). When
  /// the monitor confirms a tile dead and is configured to abort, run()
  /// throws ipu::HardFaultError *after* committing the superstep to the
  /// profile, trace and simulated clock. With no monitor attached the hook
  /// is a single null-pointer test.
  void setHealthMonitor(ipu::HealthMonitor* monitor) { health_ = monitor; }
  ipu::HealthMonitor* healthMonitor() const { return health_; }

  /// Removes tiles from the simulated machine (a resilience layer calls
  /// this with its blacklist after a remap). An excluded tile executes no
  /// vertices and contributes zero cycles to the BSP critical path — so the
  /// watchdog cannot re-confirm a tile whose loss has already been handled,
  /// and a dead straggler doesn't distort the timing of the remapped run.
  /// Exchanges still run: after a remap an excluded tile owns no live data,
  /// and writes *to* its stale replicas are harmless.
  void setExcludedTiles(const std::vector<std::size_t>& tiles);

  /// Cooperative cancellation: the check is called after every *committed*
  /// compute and exchange superstep and returns nullptr to keep running or a
  /// short reason token ("deadline", "cancelled", ...) to stop. On a
  /// non-null return run() throws graphene::CancelledError carrying that
  /// reason — after the superstep has been committed to profile, trace and
  /// simulated clock, so a deadline overshoot is bounded by one superstep.
  /// The robustness envelope of the solver service plugs per-job deadlines
  /// and client cancellation in here. With no check attached the hook is a
  /// single branch.
  using CancelCheck = std::function<const char*(const Engine&)>;
  void setCancelCheck(CancelCheck check) { cancel_ = std::move(check); }

  /// Attaches a trace sink (non-owning; nullptr detaches). Every compute
  /// superstep, exchange, sync, injected fault and solver recovery action is
  /// recorded as a timeline event. Pay-for-what-you-use: with no sink
  /// attached each emission site is a single null-pointer test. Events
  /// already in the profile's fault log at attach time are not re-emitted.
  void setTraceSink(support::TraceSink* sink);
  support::TraceSink* traceSink() const { return trace_; }

  /// Attaches a tile-level profile collector (non-owning; nullptr detaches).
  /// When attached, every compute superstep's per-tile cycle distribution,
  /// every exchange's tile×tile traffic and the graph's per-tile SRAM
  /// occupancy are recorded into it — all from the engine's serial reduction
  /// passes, so the report is bit-identical at every host thread count. Like
  /// the trace sink it is pay-for-what-you-use: with no collector attached
  /// each emission site is a single null-pointer test, no extra compute sets
  /// are emitted and cycle totals are unchanged. An already-populated
  /// collector may be re-attached to a successor engine (e.g. after a
  /// hard-fault remap); it accumulates across attachments.
  void setTileProfile(support::TileProfile* profile);
  support::TileProfile* tileProfile() const { return tileProfile_; }

  /// Monotonic simulated clock: cycles executed by this engine so far
  /// (compute + exchange + sync). Unlike profile().totalCycles() it is O(1)
  /// and survives profile clears — trace timestamps are drawn from it.
  double simCycles() const { return simClock_; }

  /// Simulated wall-clock seconds for everything run so far.
  double elapsedSeconds() const {
    return target().secondsFromCycles(profile_.totalCycles());
  }

 private:
  class PlanVertexContext;

  /// One codelet argument, resolved to a flat storage window at plan-build
  /// time (tile offsets are fixed when a tensor is created, so the resolved
  /// base never goes stale).
  struct PlanArg {
    TensorId tensor = kInvalidTensor;
    std::size_t base = 0;  // flat offset of the slice within its tensor
    std::size_t count = 0;
    ipu::DType dtype = ipu::DType::Float32;
  };

  /// All vertices of one tile within a compute set: a contiguous range of
  /// ExecPlan::vertexOrder. Tasks touch disjoint storage regions (vertex
  /// slices are tile-local by construction), which is what makes them safe
  /// to run on concurrent host threads.
  struct TileTask {
    std::size_t tile = 0;
    std::size_t firstVertex = 0;  // index into ExecPlan::vertexOrder
    std::size_t count = 0;
  };

  /// Compiled execution plan for one compute set: vertex order grouped by
  /// tile, with every argument's flat storage window precomputed. Built on
  /// first execution, reused until the compute set grows (vertices are only
  /// ever appended, so a vertex-count check is a complete staleness test).
  struct ExecPlan {
    std::vector<std::size_t> vertexOrder;
    std::vector<PlanArg> args;           // pooled, all vertices back to back
    std::vector<std::size_t> argStart;   // per vertexOrder entry, +1 sentinel
    std::vector<TileTask> tasks;
    std::size_t builtVertices = 0;
  };

  /// Recursive program-tree walk (run() minus the fusion-pass front door).
  void runNode(const ProgramPtr& program);
  /// Returns the cached fused form of `program`, rebuilding when the source
  /// tree grew (step-count check). Holds a reference to the source root, so
  /// cache keys can never be reused by a recycled allocation.
  const ProgramPtr& fusedFor(const ProgramPtr& program);
  void runExecute(ComputeSetId cs);
  /// Runs an ExecuteFused step. With no dynamic attachments (fault plan,
  /// health monitor, trace sink, tile profile, cancel check, excluded
  /// tiles), each tile's work for all member compute sets runs back-to-back
  /// — one host dispatch for the whole run — and the members are then
  /// committed serially in program order, reproducing runExecute's profile
  /// updates exactly. Any attachment falls back to per-member runExecute, so
  /// hooks fire in exactly the unfused order.
  void runExecuteFused(const ProgramPtr& program);
  /// Throws CancelledError when the attached cancel check requests a stop.
  /// Called after a superstep is fully committed.
  void checkCancelled();
  /// Runs one tile's vertices; returns the tile-visible elapsed cycles.
  /// When `workerBusyOut` is non-null it receives the issue slots actually
  /// used across the tile's workers (the busy half of the busy/idle split).
  double runTileTask(const ComputeSet& cs, const ExecPlan& plan,
                     TensorStorage* storage, std::size_t task,
                     double* workerBusyOut = nullptr);
  const ExecPlan& planFor(ComputeSetId cs);
  void runCopy(const ProgramPtr& program);
  void syncStorage();
  /// Refreshes the tile profile's SRAM snapshot from the graph's memory
  /// ledger and tensor table (re-run whenever the tensor count grew).
  void captureSramSnapshot();
  /// Mirrors fault-log entries appended since the last call (injected
  /// faults, solver recovery actions) into the trace as timeline events.
  void traceNewFaultEvents();

  Graph& graph_;
  std::vector<TensorStorage> storage_;
  ipu::Profile profile_;
  ipu::FaultPlan* faultPlan_ = nullptr;
  ipu::HealthMonitor* health_ = nullptr;
  CancelCheck cancel_;
  support::TraceSink* trace_ = nullptr;
  support::TileProfile* tileProfile_ = nullptr;
  std::size_t sramTensorsCaptured_ = 0;  // tensor count at last SRAM snapshot
  double simClock_ = 0;             // monotonic simulated cycles
  std::size_t tracedFaultEvents_ = 0;  // fault-log prefix already traced
  std::size_t numHostThreads_ = 1;
  std::unique_ptr<support::ThreadPool> hostPool_;  // null when single-threaded
  std::vector<ExecPlan> plans_;                    // indexed by ComputeSetId
  std::vector<double> tileCycles_;                 // per-task scratch
  std::vector<double> tileBusy_;     // per-task worker-busy scratch (profiling)
  std::vector<char> tileExcluded_;                 // empty = none excluded

  /// Per-tile worklist for one ExecuteFused step: for every tile with work,
  /// the (member, task) pairs to run back-to-back, in member order. Built
  /// from the members' ExecPlans; `builtVertices` mirrors each member plan's
  /// staleness stamp so the worklist rebuilds whenever a member plan does.
  struct FusedPlan {
    struct Part {
      std::uint32_t member = 0;  // index into Program::fusedSets
      std::uint32_t task = 0;    // index into that member's ExecPlan::tasks
    };
    struct TileWork {
      std::vector<Part> parts;
    };
    ProgramPtr node;  // pins the fused node so the cache key stays unique
    std::vector<TileWork> tiles;
    std::vector<std::size_t> builtVertices;  // per member
  };

  /// Resolved form of a Copy step: every delivered (src, dst) window plus
  /// the priced exchange stats. Both are static — segments are immutable and
  /// tile offsets are fixed at tensor creation — so with no fault plan or
  /// tile profile attached (whose hooks observe individual segments) an
  /// exchange superstep replays from here without re-walking the segments;
  /// a zero-byte exchange reduces to charging the (zero) priced cost.
  struct CopyPlan {
    struct Move {
      TensorId src = kInvalidTensor;
      TensorId dst = kInvalidTensor;
      std::size_t srcFlat = 0;
      std::size_t dstFlat = 0;
      std::size_t count = 0;
    };
    ProgramPtr node;  // pins the Copy node so the cache key stays unique
    std::vector<Move> moves;
    double cycles = 0;
    double intraCycles = 0;
    double interCycles = 0;
    std::size_t instructions = 0;
    std::size_t totalBytes = 0;
    std::size_t interIpuBytes = 0;
    std::size_t interIpuMessages = 0;
  };

  struct FusedProgram {
    ProgramPtr source;  // pins the root so the cache key stays unique
    ProgramPtr fused;
    std::size_t sourceSteps = 0;  // stepCount at fusion time (staleness)
  };

  bool fusionEnabled_ = true;
  std::unordered_map<const Program*, FusedProgram> fusedPrograms_;
  std::unordered_map<const Program*, FusedPlan> fusedPlans_;
  std::unordered_map<const Program*, CopyPlan> copyPlans_;
  std::vector<std::vector<double>> fusedCycles_;  // per-member task scratch
};

}  // namespace graphene::graph
