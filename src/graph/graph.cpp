#include "graph/graph.hpp"

namespace graphene::graph {

TensorId Graph::addTensor(TensorInfo info) {
  GRAPHENE_CHECK(info.mapping.numTiles() == target_.totalTiles(),
                 "tensor '", info.name, "' mapping covers ",
                 info.mapping.numTiles(), " tiles, target has ",
                 target_.totalTiles());
  const std::size_t elemBytes = ipu::sizeOf(info.dtype);
  for (std::size_t t = 0; t < info.mapping.numTiles(); ++t) {
    const std::size_t bytes = info.mapping.sizePerTile[t] * elemBytes;
    if (bytes > 0) ledger_.allocate(t, bytes, info.name);
  }
  tensors_.push_back(std::move(info));
  return static_cast<TensorId>(tensors_.size() - 1);
}

const TensorInfo& Graph::tensor(TensorId id) const {
  GRAPHENE_CHECK(id < tensors_.size(), "invalid tensor id");
  return tensors_[id];
}

CodeletId Graph::addCodelet(Codelet codelet) {
  codelets_.push_back(std::move(codelet));
  return static_cast<CodeletId>(codelets_.size() - 1);
}

const Codelet& Graph::codelet(CodeletId id) const {
  GRAPHENE_CHECK(id < codelets_.size(), "invalid codelet id");
  return codelets_[id];
}

ComputeSetId Graph::addComputeSet(std::string category) {
  computeSets_.push_back(ComputeSet{std::move(category), {}, {}});
  return static_cast<ComputeSetId>(computeSets_.size() - 1);
}

void Graph::addComputeSetMetric(ComputeSetId cs, std::string name,
                                double value) {
  GRAPHENE_CHECK(cs < computeSets_.size(), "invalid compute set id");
  computeSets_[cs].perExecMetrics.emplace_back(std::move(name), value);
}

void Graph::addVertex(ComputeSetId cs, Vertex v) {
  GRAPHENE_CHECK(cs < computeSets_.size(), "invalid compute set id");
  GRAPHENE_CHECK(v.codelet < codelets_.size(), "invalid codelet id");
  GRAPHENE_CHECK(v.tile < target_.totalTiles(), "vertex tile out of range");
  for (const TensorSlice& s : v.args) {
    GRAPHENE_CHECK(s.tensor < tensors_.size(), "invalid slice tensor");
    GRAPHENE_CHECK(s.tile == v.tile,
                   "codelets can only access tile-local tensor regions "
                   "(vertex on tile ", v.tile, ", slice on tile ", s.tile,
                   ")");
    const auto& info = tensors_[s.tensor];
    GRAPHENE_CHECK(s.begin + s.count <= info.mapping.sizePerTile[s.tile],
                   "slice overruns tile region of '", info.name, "'");
  }
  computeSets_[cs].vertices.push_back(std::move(v));
}

const ComputeSet& Graph::computeSet(ComputeSetId id) const {
  GRAPHENE_CHECK(id < computeSets_.size(), "invalid compute set id");
  return computeSets_[id];
}

}  // namespace graphene::graph
