// Error handling primitives for the Graphene-IPU framework.
//
// We follow a simple policy: programming errors and violated invariants throw
// graphene::Error with a formatted message. Hot paths use GRAPHENE_DCHECK,
// which compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace graphene {

/// Base exception for all framework errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when a per-tile SRAM budget or similar hardware resource is exceeded.
class ResourceError : public Error {
 public:
  using Error::Error;
};

/// Thrown when parsing external input (JSON, MatrixMarket, ...) fails.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a computation surfaces a non-finite value where a finite one
/// is required (e.g. a NaN/Inf residual read back by a host convergence
/// callback).
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Thrown by the engine when an attached cooperative-cancellation check
/// requests a stop (deadline passed, client cancelled, service shutting
/// down). The superstep that was running is fully committed to profile,
/// trace and simulated clock before the throw, so the overshoot past a
/// deadline is bounded by one superstep. `reason()` is the short token the
/// cancellation check returned ("deadline", "cancelled", ...) — the service
/// layer maps it onto a typed SolveStatus.
class CancelledError : public Error {
 public:
  CancelledError(std::string message, std::string reason)
      : Error(std::move(message)), reason_(std::move(reason)) {}

  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

namespace detail {

[[noreturn]] void throwCheckFailure(const char* kind, const char* condition,
                                    const char* file, int line,
                                    const std::string& message);

/// Streams every argument into one message string.
template <typename... Args>
std::string concatMessage(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace detail

}  // namespace graphene

/// Always-on invariant check. Throws graphene::Error on failure.
#define GRAPHENE_CHECK(cond, ...)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::graphene::detail::throwCheckFailure(                                   \
          "CHECK", #cond, __FILE__, __LINE__,                                  \
          ::graphene::detail::concatMessage(__VA_ARGS__));                     \
    }                                                                          \
  } while (false)

/// Debug-only invariant check, compiled out under NDEBUG.
#ifdef NDEBUG
#define GRAPHENE_DCHECK(cond, ...) \
  do {                             \
  } while (false)
#else
#define GRAPHENE_DCHECK(cond, ...) GRAPHENE_CHECK(cond, __VA_ARGS__)
#endif

/// Marks unreachable code paths.
#define GRAPHENE_UNREACHABLE(msg)                                             \
  ::graphene::detail::throwCheckFailure("UNREACHABLE", msg, __FILE__,         \
                                        __LINE__, "")
