#!/usr/bin/env python3
"""Perf gate: fail CI when a benchmark got much worse than the record.

Compares one or more fresh bench JSON reports against a committed baseline
and exits 1 if any matching row regressed by more than the threshold factor.
Two report kinds are understood (detected from the "bench" field):

  simspeed  (BENCH_SIMSPEED.json)  wall-clock simulator throughput; rows
            match on (solver, hostThreads) and gate on itersPerSec (higher
            is better). Noisy — the BEST rate per row across all fresh
            reports is used, and `saturated` rows (thread count above the
            machine's cores) are skipped.
  scaling   (BENCH_SCALING.json)   simulated-cycle pod sweeps from
            bench_fig5_strong_scaling / bench_fig6_weak_scaling; rows match
            on (figure, problem, ipus) and gate on totalCycles (lower is
            better). Simulated cycles are deterministic, so a tighter
            threshold than the simspeed default is appropriate (CI uses
            1.25).

Usage:
    check_bench_regression.py [--baseline BENCH_SIMSPEED.json]
                              [--threshold 2.0] fresh1.json [fresh2.json ...]

The threshold is deliberately loose: this is a ratchet against large
accidental regressions — a dropped fast path, a partitioner that stopped
being pod-aware — not a microbenchmark tracker. If a regression is
intentional, regenerate the baseline JSON and commit it.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    """Returns {key: (direction, value, label)} for comparable result rows.

    direction is "higher" (bigger value is better) or "lower".
    """
    with open(path) as f:
        report = json.load(f)
    bench = report.get("bench", "simspeed")
    rows = {}
    for row in report.get("results", []):
        if bench == "scaling":
            key = ("scaling", row["figure"], row.get("problem", ""),
                   row["ipus"])
            label = (f"{row['figure']}/{row.get('problem', '?')} "
                     f"@ {row['ipus']} IPUs totalCycles")
            rows[key] = ("lower", float(row["totalCycles"]), label)
        else:
            if row.get("saturated"):
                continue
            key = ("simspeed", row["solver"], row["hostThreads"])
            label = f"{row['solver']} @ {row['hostThreads']} threads"
            rows[key] = ("higher", float(row["itersPerSec"]), label)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="fresh bench JSON files")
    ap.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_SIMSPEED.json"),
        help="committed baseline report (default: BENCH_SIMSPEED.json at "
             "the repo root)")
    ap.add_argument(
        "--threshold", type=float, default=2.0,
        help="max allowed regression factor vs baseline (default: 2.0)")
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"error: no comparable rows in baseline {args.baseline}")
        return 1

    # Best observed value per row across all fresh reports (max for
    # higher-is-better rows, min for lower-is-better ones).
    best = {}
    for path in args.fresh:
        for key, (direction, value, _) in load_rows(path).items():
            if key not in best:
                best[key] = value
            elif direction == "higher":
                best[key] = max(best[key], value)
            else:
                best[key] = min(best[key], value)

    failed = False
    for key, (direction, base, label) in sorted(baseline.items()):
        got = best.get(key)
        if got is None:
            print(f"MISSING  {label}: row absent from fresh reports "
                  f"(baseline {base:.0f})")
            failed = True
            continue
        if direction == "higher":
            limit = base / args.threshold
            ok = got >= limit
            bound = f"floor {limit:.0f} = baseline/{args.threshold:g}"
        else:
            limit = base * args.threshold
            ok = got <= limit
            bound = f"ceiling {limit:.0f} = baseline*{args.threshold:g}"
        verdict = "ok" if ok else "REGRESSED"
        print(f"{verdict:<10}{label}: {got:.0f} vs baseline {base:.0f} "
              f"({bound})")
        if not ok:
            failed = True

    if failed:
        print(f"\nperf gate FAILED: worse than {args.threshold:g}x off the "
              f"committed baseline ({args.baseline}). If the regression is "
              f"intentional, regenerate the baseline JSON and commit it.")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
