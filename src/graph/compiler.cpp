#include "graph/compiler.hpp"

#include "graph/graph.hpp"

namespace graphene::graph {

namespace {

void analyze(const ProgramPtr& p, ProgramStats& stats) {
  if (!p) return;
  ++stats.totalSteps;
  switch (p->kind) {
    case Program::Kind::Sequence:
      ++stats.sequenceSteps;
      for (const auto& c : p->children) analyze(c, stats);
      break;
    case Program::Kind::Execute:
      ++stats.executeSteps;
      break;
    case Program::Kind::ExecuteFused:
      // Each member still runs as its own compute superstep; the fused node
      // only removes host-side dispatch boundaries.
      ++stats.fusedSteps;
      stats.executeSteps += p->fusedSets.size();
      break;
    case Program::Kind::Copy:
      ++stats.copySteps;
      stats.copySegments += p->copies.size();
      break;
    case Program::Kind::Repeat:
      ++stats.repeatSteps;
      analyze(p->body, stats);
      break;
    case Program::Kind::RepeatWhile:
      ++stats.whileSteps;
      analyze(p->condProgram, stats);
      analyze(p->body, stats);
      break;
    case Program::Kind::If:
      ++stats.ifSteps;
      analyze(p->condProgram, stats);
      analyze(p->thenBody, stats);
      analyze(p->elseBody, stats);
      break;
    case Program::Kind::HostCall:
      ++stats.hostCallSteps;
      break;
  }
}

/// Structure-preserving rewrite: applies `rewriteSequence` to every Sequence
/// node bottom-up.
template <typename Fn>
ProgramPtr rewrite(const ProgramPtr& p, const Fn& rewriteSequence) {
  if (!p) return nullptr;
  auto out = std::make_shared<Program>(*p);
  switch (p->kind) {
    case Program::Kind::Sequence: {
      out->children.clear();
      for (const auto& c : p->children) {
        out->children.push_back(rewrite(c, rewriteSequence));
      }
      rewriteSequence(*out);
      break;
    }
    case Program::Kind::Repeat:
      out->body = rewrite(p->body, rewriteSequence);
      break;
    case Program::Kind::RepeatWhile:
      out->condProgram = rewrite(p->condProgram, rewriteSequence);
      out->body = rewrite(p->body, rewriteSequence);
      break;
    case Program::Kind::If:
      out->condProgram = rewrite(p->condProgram, rewriteSequence);
      out->thenBody = rewrite(p->thenBody, rewriteSequence);
      out->elseBody = rewrite(p->elseBody, rewriteSequence);
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

ProgramStats analyzeProgram(const ProgramPtr& program) {
  ProgramStats stats;
  analyze(program, stats);
  return stats;
}

ProgramPtr coalesceCopies(const ProgramPtr& program) {
  return rewrite(program, [](Program& seq) {
    std::vector<ProgramPtr> merged;
    for (const ProgramPtr& child : seq.children) {
      if (child && child->kind == Program::Kind::Copy && !merged.empty() &&
          merged.back()->kind == Program::Kind::Copy) {
        // Merge into the previous Copy: one exchange superstep instead of
        // two (saves a BSP sync and overlaps the transfers).
        auto combined = std::make_shared<Program>(*merged.back());
        combined->copies.insert(combined->copies.end(),
                                child->copies.begin(), child->copies.end());
        merged.back() = combined;
      } else {
        merged.push_back(child);
      }
    }
    seq.children = std::move(merged);
  });
}

ProgramPtr fuseSupersteps(const ProgramPtr& program, const Graph& graph) {
  return rewrite(program, [&graph](Program& seq) {
    std::vector<ProgramPtr> out;
    std::vector<ProgramPtr> pending;  // current run of fusable Execute steps
    auto flush = [&] {
      if (pending.size() >= 2) {
        std::vector<ComputeSetId> sets;
        sets.reserve(pending.size());
        for (const ProgramPtr& p : pending) sets.push_back(p->computeSet);
        out.push_back(Program::executeFused(std::move(sets)));
      } else {
        out.insert(out.end(), pending.begin(), pending.end());
      }
      pending.clear();
    };
    for (const ProgramPtr& child : seq.children) {
      // ABFT compute sets stay unfused: their defect-flag protocol is
      // attached and polled dynamically by host guards, and keeping them as
      // standalone supersteps keeps that machinery trivially auditable.
      if (child != nullptr && child->kind == Program::Kind::Execute &&
          graph.computeSet(child->computeSet).category != "abft") {
        pending.push_back(child);
      } else {
        flush();
        out.push_back(child);
      }
    }
    flush();
    seq.children = std::move(out);
  });
}

ProgramPtr flattenSequences(const ProgramPtr& program) {
  return rewrite(program, [](Program& seq) {
    std::vector<ProgramPtr> flat;
    for (const ProgramPtr& child : seq.children) {
      if (child && child->kind == Program::Kind::Sequence) {
        flat.insert(flat.end(), child->children.begin(),
                    child->children.end());
      } else {
        flat.push_back(child);
      }
    }
    seq.children = std::move(flat);
  });
}

}  // namespace graphene::graph
