// Synthetic problem generators.
//
// Two families:
//  1. Poisson stencils on regular grids — exactly what the paper uses for
//     its strong/weak scaling experiments (§VI-A: "matrices by discretizing
//     the Poisson equation on a regular, cubic 3D grid with a 7-point
//     stencil").
//  2. SuiteSparse stand-ins — the evaluation matrices (G3_circuit, af_shell7,
//     Geo_1438, Hook_1498) cannot be downloaded in this offline environment,
//     so we generate synthetic SPD matrices of the same structural class and
//     similar nnz/row, at sizes that fit the simulation host (documented in
//     DESIGN.md §1).
//
// All generated matrices are real, symmetric positive definite with full
// nonzero diagonals (Table II: "all of which are real, symmetric, and
// positive definite").
#pragma once

#include <cstdint>
#include <string>

#include "matrix/csr.hpp"

namespace graphene::matrix {

/// A generated matrix plus the grid geometry it came from (0 = unstructured).
struct GeneratedMatrix {
  CsrMatrix matrix;
  std::string name;
  std::size_t nx = 0, ny = 0, nz = 0;
};

/// 7-point Poisson stencil on an nx × ny × nz grid (Dirichlet boundaries).
GeneratedMatrix poisson3d7(std::size_t nx, std::size_t ny, std::size_t nz);

/// 5-point Poisson stencil on an nx × ny grid.
GeneratedMatrix poisson2d5(std::size_t nx, std::size_t ny);

/// The `shiftScale` parameter of the stand-in generators multiplies the
/// diagonal shift: 1.0 gives the hardest (most realistic) conditioning;
/// larger values make the system proportionally easier. Scaled-down
/// benchmarks use larger shifts so iteration counts stay in the regime the
/// paper reports for the full-size matrices (see DESIGN.md §1).

/// G3_circuit stand-in: irregular circuit-style graph Laplacian —
/// a 2-D grid of nodes with sparse random long-range nets; ~4.8 nnz/row.
GeneratedMatrix g3CircuitLike(std::size_t targetRows, std::uint64_t seed = 1,
                              double shiftScale = 1.0);

/// af_shell7 stand-in: thin-shell FEM sheet — a 27-point stencil on an
/// (n × n × 3) slab with smooth variable stiffness; ~35 nnz/row.
GeneratedMatrix afShellLike(std::size_t targetRows, std::uint64_t seed = 2,
                            double shiftScale = 1.0);

/// Geo_1438 stand-in: 3-D geomechanical FEM — 27-point stencil on a cube
/// with strongly heterogeneous (lognormal) coefficients; ~44 nnz/row,
/// high condition number.
GeneratedMatrix geoLike(std::size_t targetRows, std::uint64_t seed = 3,
                        double shiftScale = 1.0);

/// Hook_1498 stand-in: 3-D elasticity FEM — 27-point stencil on an elongated
/// block with moderately variable coefficients; ~40 nnz/row.
GeneratedMatrix hookLike(std::size_t targetRows, std::uint64_t seed = 4,
                         double shiftScale = 1.0);

/// The four evaluation stand-ins at a common benchmark scale.
GeneratedMatrix makeBenchmarkMatrix(const std::string& name,
                                    std::size_t targetRows,
                                    double shiftScale = 1.0);

}  // namespace graphene::matrix
