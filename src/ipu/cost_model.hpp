// Worker-cycle cost model for codelet execution on a simulated tile.
//
// Calibration: paper Table I. Native float32 arithmetic costs one issue slot
// (6 cycles as seen by a worker). Double-word operations use the Joldes
// et al. algorithms (132 / 162 / 240 cycles for + / * / ÷); the Lange-Rump
// "fast" policy is priced from its flop counts. Emulated float64 uses the
// compiler-rt-style soft-float costs (~1080 / 1260 / 2520 cycles).
//
// The model also captures the IPU's two-pipeline design (§VI-D): one
// floating-point instruction and one load/store/integer instruction can issue
// simultaneously. Codelet interpreters accumulate cycles on two lanes and a
// basic block costs max(fpLane, memLane) + ctrl.
#pragma once

#include <cstdint>

#include "ipu/types.hpp"
#include "twofloat/twofloat.hpp"

namespace graphene::ipu {

/// Which of the two tile pipelines an operation occupies.
enum class Lane {
  Fp,    // floating-point pipeline
  Mem,   // load/store + integer pipeline
  Ctrl,  // serialising (branches, sync) — cannot overlap
};

struct CostModel {
  /// Issue-slot granularity in tile cycles (one worker issues every 6).
  double issue = 6.0;

  /// Double-word arithmetic policy in use (affects op costs).
  twofloat::Policy dwPolicy = twofloat::Policy::Accurate;

  /// Worker-visible cycles for one operation on elements of type `t`.
  double workerCycles(Op op, DType t) const;

  /// The pipeline lane an operation occupies.
  static Lane lane(Op op);
};

/// Accumulates the cost of a straight-line region with dual-issue overlap:
/// total = max(fp, mem) + ctrl.
class LaneCycles {
 public:
  void add(Lane lane, double cycles) {
    switch (lane) {
      case Lane::Fp: fp_ += cycles; break;
      case Lane::Mem: mem_ += cycles; break;
      case Lane::Ctrl: ctrl_ += cycles; break;
    }
  }

  void add(const CostModel& model, Op op, DType t) {
    add(CostModel::lane(op), model.workerCycles(op, t));
  }

  double total() const { return (fp_ > mem_ ? fp_ : mem_) + ctrl_; }
  double fp() const { return fp_; }
  double mem() const { return mem_; }
  double ctrl() const { return ctrl_; }

  /// Merges another region sequentially (no overlap across regions).
  void addSequential(const LaneCycles& other) { ctrl_ += other.total(); }

 private:
  double fp_ = 0;
  double mem_ = 0;
  double ctrl_ = 0;
};

}  // namespace graphene::ipu
