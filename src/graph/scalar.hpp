// Dynamically typed runtime scalar — the value domain of the DSLs.
//
// Both DSLs are dynamically typed (paper §III): at symbolic-execution time a
// Value carries one of the DType element types; at concrete-execution time
// the interpreter manipulates these Scalars. FLOAT64 values are SoftDouble
// (software emulation) and DOUBLEWORD values are TwoFloat double-words, so
// extended-precision results genuinely come from the emulated paths.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "ipu/types.hpp"
#include "support/error.hpp"
#include "twofloat/softdouble.hpp"
#include "twofloat/twofloat.hpp"

namespace graphene::graph {

using ipu::DType;

class Scalar {
 public:
  using Variant = std::variant<bool, std::int32_t, float, twofloat::SoftDouble,
                               twofloat::Float2>;

  Scalar() : v_(0.0f) {}
  Scalar(bool b) : v_(b) {}
  Scalar(std::int32_t i) : v_(i) {}
  Scalar(float f) : v_(f) {}
  Scalar(twofloat::SoftDouble d) : v_(d) {}
  Scalar(twofloat::Float2 dw) : v_(dw) {}

  DType type() const {
    switch (v_.index()) {
      case 0: return DType::Bool;
      case 1: return DType::Int32;
      case 2: return DType::Float32;
      case 3: return DType::Float64;
      default: return DType::DoubleWord;
    }
  }

  bool asBool() const { return std::get<bool>(v_); }
  std::int32_t asInt() const { return std::get<std::int32_t>(v_); }
  float asFloat() const { return std::get<float>(v_); }
  twofloat::SoftDouble asSoftDouble() const {
    return std::get<twofloat::SoftDouble>(v_);
  }
  twofloat::Float2 asDoubleWord() const {
    return std::get<twofloat::Float2>(v_);
  }

  /// Lossless-ish view as host double, for host readout and conditions.
  double toHostDouble() const {
    switch (type()) {
      case DType::Bool: return asBool() ? 1.0 : 0.0;
      case DType::Int32: return static_cast<double>(asInt());
      case DType::Float32: return static_cast<double>(asFloat());
      case DType::Float64: return asSoftDouble().toDouble();
      case DType::DoubleWord: return asDoubleWord().toWide();
    }
    GRAPHENE_UNREACHABLE("bad scalar type");
  }

  /// Truthiness for control flow: nonzero (and non-NaN-safe for bools).
  bool truthy() const {
    switch (type()) {
      case DType::Bool: return asBool();
      case DType::Int32: return asInt() != 0;
      case DType::Float32: return asFloat() != 0.0f;
      case DType::Float64: return !(asSoftDouble().isZero());
      case DType::DoubleWord: {
        auto dw = asDoubleWord();
        return dw.hi != 0.0f || dw.lo != 0.0f;
      }
    }
    GRAPHENE_UNREACHABLE("bad scalar type");
  }

  /// Converts this scalar to `target` type. Conversions through the
  /// simulated device use the same software paths the device would.
  Scalar castTo(DType target) const;

  /// Creates a zero of the given type.
  static Scalar zero(DType t);

  /// Creates a scalar of type `t` from a host double.
  static Scalar fromHostDouble(DType t, double d);

  std::string toString() const;

 private:
  Variant v_;
};

/// Numeric promotion for binary operations between mixed types
/// (bool < int32 < float32 < doubleword < float64 in "width" order; mixing
/// doubleword and float64 promotes to float64, the wider format).
DType promote(DType a, DType b);

}  // namespace graphene::graph
