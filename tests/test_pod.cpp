// Multi-IPU pod sessions and the communication-minimizing Krylov path.
//
// Covers: SessionOptions topology resolution (explicit Topology beats
// GRAPHENE_TEST_POD beats plain tiles); pipelined CG (Ghysels-style) is
// convergence-equivalent to classic CG (±1 iterations) while spending
// fewer exchange supersteps per iteration on a pod — the one global
// reduction per iteration overlaps with SpMV + preconditioner; both CG
// variants are bit-identical across host thread counts; the two-level
// (per-IPU partials, then across chips) reduction tree converges; the
// pipelined solver keeps the robustness envelope under fault injection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "graphene.hpp"

using namespace graphene;
using namespace graphene::solver;

namespace {

struct PodRun {
  SolveSession::Result result;
  double exchangeSupersteps = 0;
  double exchangeSuperstepsPerIter = 0;
};

PodRun runOnPod(const matrix::GeneratedMatrix& g, const char* config,
             const ipu::Topology& topo, std::size_t hostThreads = 0) {
  SolveSession session({.topology = topo, .hostThreads = hostThreads});
  session.load(g).configure(config);
  std::vector<double> rhs(session.matrix().rows(), 1.0);
  PodRun r;
  r.result = session.solve(rhs);
  r.exchangeSupersteps =
      static_cast<double>(session.profile().exchangeSupersteps);
  r.exchangeSuperstepsPerIter =
      r.exchangeSupersteps /
      static_cast<double>(std::max<std::size_t>(1, r.result.solve.iterations));
  return r;
}

constexpr const char* kClassicCg =
    R"({"type": "cg", "tolerance": 1e-5, "maxIterations": 400})";
constexpr const char* kPipelinedCg =
    R"({"type": "cg", "pipelined": true, "tolerance": 1e-5,
        "maxIterations": 400})";

}  // namespace

TEST(PodSession, ExplicitTopologyBeatsEnvBeatsTiles) {
  // The whole suite may run under an ambient GRAPHENE_TEST_POD (the pod CI
  // job does exactly that) — stash it so this test controls the variable.
  const char* ambientRaw = std::getenv("GRAPHENE_TEST_POD");
  const std::string ambient = ambientRaw != nullptr ? ambientRaw : "";
  ::unsetenv("GRAPHENE_TEST_POD");

  // Plain tiles: a single chip.
  ipu::Topology plain = resolveSessionTopology({.tiles = 32});
  EXPECT_EQ(plain.numIpus(), 1u);
  EXPECT_EQ(plain.totalTiles(), 32u);

  // GRAPHENE_TEST_POD=4 splits the same budget across four chips.
  ::setenv("GRAPHENE_TEST_POD", "4", 1);
  ipu::Topology env = resolveSessionTopology({.tiles = 32});
  EXPECT_EQ(env.numIpus(), 4u);
  EXPECT_EQ(env.tilesPerIpu(), 8u);
  EXPECT_EQ(env.totalTiles(), 32u);

  // An explicit topology wins over the environment.
  ipu::Topology forced = resolveSessionTopology(
      {.tiles = 32, .topology = ipu::Topology::pod(2, 8)});
  EXPECT_EQ(forced.numIpus(), 2u);
  EXPECT_EQ(forced.totalTiles(), 16u);

  // A pod size that does not divide the budget falls back to one chip.
  ::setenv("GRAPHENE_TEST_POD", "5", 1);
  ipu::Topology indivisible = resolveSessionTopology({.tiles = 32});
  EXPECT_EQ(indivisible.numIpus(), 1u);

  if (ambient.empty()) {
    ::unsetenv("GRAPHENE_TEST_POD");
  } else {
    ::setenv("GRAPHENE_TEST_POD", ambient.c_str(), 1);
  }
}

TEST(PodSession, PodSolveMatchesSingleChipSolution) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(12, 12);
  PodRun one = runOnPod(g, kClassicCg, ipu::Topology::singleIpu(16));
  PodRun pod = runOnPod(g, kClassicCg, ipu::Topology::pod(4, 4));
  ASSERT_EQ(one.result.solve.status, SolveStatus::Converged);
  ASSERT_EQ(pod.result.solve.status, SolveStatus::Converged);
  ASSERT_EQ(one.result.x.size(), pod.result.x.size());
  // Different partitions reorder float32 sums, so equality is approximate —
  // but both must solve the same system.
  for (std::size_t i = 0; i < one.result.x.size(); ++i) {
    EXPECT_NEAR(one.result.x[i], pod.result.x[i], 1e-4) << "row " << i;
  }
}

TEST(PipelinedCg, ConvergenceEquivalentToClassicCg) {
  const ipu::Topology pod = ipu::Topology::pod(2, 16);
  for (const auto& g : {matrix::poisson2d5(16, 16),
                        matrix::poisson3d7(8, 8, 8)}) {
    PodRun classic = runOnPod(g, kClassicCg, pod);
    PodRun piped = runOnPod(g, kPipelinedCg, pod);
    ASSERT_EQ(classic.result.solve.status, SolveStatus::Converged);
    ASSERT_EQ(piped.result.solve.status, SolveStatus::Converged);
    const auto a = static_cast<long>(classic.result.solve.iterations);
    const auto b = static_cast<long>(piped.result.solve.iterations);
    EXPECT_LE(std::labs(a - b), 1) << "classic " << a << " vs pipelined " << b;
    EXPECT_LT(piped.result.solve.finalResidual, 1e-5);
  }
}

TEST(PipelinedCg, FewerExchangeSuperstepsPerIterationOnPod) {
  // The point of PIPECG: one fused reduction (overlapped with SpMV + M⁻¹)
  // instead of three dependent reduction rounds per iteration, so on a pod
  // every iteration crosses the IPU-Link fabric fewer times.
  const matrix::GeneratedMatrix g = matrix::poisson3d7(10, 10, 10);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  PodRun classic = runOnPod(g, kClassicCg, pod);
  PodRun piped = runOnPod(g, kPipelinedCg, pod);
  ASSERT_EQ(classic.result.solve.status, SolveStatus::Converged);
  ASSERT_EQ(piped.result.solve.status, SolveStatus::Converged);
  EXPECT_LT(piped.exchangeSuperstepsPerIter,
            0.8 * classic.exchangeSuperstepsPerIter)
      << "pipelined " << piped.exchangeSuperstepsPerIter << "/iter vs classic "
      << classic.exchangeSuperstepsPerIter << "/iter";
}

TEST(PipelinedCg, BitIdenticalAcrossHostThreadCounts) {
  const matrix::GeneratedMatrix g = matrix::poisson2d5(14, 14);
  const ipu::Topology pod = ipu::Topology::pod(2, 8);
  for (const char* config : {kClassicCg, kPipelinedCg}) {
    PodRun t1 = runOnPod(g, config, pod, /*hostThreads=*/1);
    PodRun t8 = runOnPod(g, config, pod, /*hostThreads=*/8);
    ASSERT_EQ(t1.result.solve.status, SolveStatus::Converged);
    EXPECT_EQ(t1.result.solve.iterations, t8.result.solve.iterations);
    EXPECT_EQ(t1.result.solve.finalResidual, t8.result.solve.finalResidual);
    ASSERT_EQ(t1.result.x.size(), t8.result.x.size());
    for (std::size_t i = 0; i < t1.result.x.size(); ++i) {
      ASSERT_EQ(t1.result.x[i], t8.result.x[i])
          << "row " << i << " differs between 1 and 8 host threads";
    }
  }
}

TEST(PipelinedCg, TwoLevelReductionConverges) {
  const matrix::GeneratedMatrix g = matrix::poisson3d7(8, 8, 8);
  const ipu::Topology pod = ipu::Topology::pod(4, 8);
  PodRun flat = runOnPod(
      g,
      R"({"type": "cg", "pipelined": true, "reduction": "flat",
          "tolerance": 1e-5, "maxIterations": 400})",
      pod);
  PodRun twoLevel = runOnPod(
      g,
      R"({"type": "cg", "pipelined": true, "reduction": "two-level",
          "tolerance": 1e-5, "maxIterations": 400})",
      pod);
  ASSERT_EQ(flat.result.solve.status, SolveStatus::Converged);
  ASSERT_EQ(twoLevel.result.solve.status, SolveStatus::Converged);
  // Different summation trees: convergence-equivalent, not bit-equal.
  const auto a = static_cast<long>(flat.result.solve.iterations);
  const auto b = static_cast<long>(twoLevel.result.solve.iterations);
  EXPECT_LE(std::labs(a - b), 2);
  EXPECT_LT(twoLevel.result.solve.finalResidual, 1e-5);
}

TEST(PipelinedCg, ChaosBitflipScanOnPod) {
  // The chaos contract on a pod: a finite flip of the pipelined residual at
  // any scanned superstep must end converged-for-real — never a silently
  // wrong answer, never an endless oscillation. Silent finite corruption is
  // PIPECG's weak spot (it sits below the divergence threshold and evades
  // ABFT timing, but wrecks the direction recurrences' conjugacy); the
  // stagnation guard + checkpoint restart is the envelope that must catch
  // it, and at least one scanned flip must actually need that recovery.
  const matrix::GeneratedMatrix g = matrix::poisson2d5(12, 12);
  std::size_t recovered = 0;
  for (std::size_t superstep = 16; superstep <= 48; superstep += 4) {
    SolveSession session({.topology = ipu::Topology::pod(2, 8)});
    session.load(g)
        .configure(R"({
          "type": "cg", "pipelined": true, "tolerance": 1e-5,
          "maxIterations": 400,
          "robustness": {"abft": true, "abftTolerance": 1e-3,
                         "maxRestarts": 3, "checkpointEvery": 8}
        })")
        .withFaultPlan(json::parse(R"({"seed": )" +
                                   std::to_string(superstep) +
                                   R"(, "faults": [{"type": "bitflip",
          "tensor": "pcg_r", "bit": 22, "probability": 1.0, "count": 1,
          "superstep": )" + std::to_string(superstep) + R"(}]})"));
    std::vector<double> rhs(session.matrix().rows(), 1.0);
    auto result = session.solve(rhs);
    ASSERT_EQ(result.solve.status, SolveStatus::Converged)
        << "flip at superstep " << superstep;
    if (result.solve.restarts > 0 ||
        session.profile().metrics.counter("resilience.abft.mismatches") > 0) {
      ++recovered;
    }
    // Converged must mean converged-for-real: check on the host.
    std::vector<double> ax(g.matrix.rows());
    g.matrix.spmv(result.x, ax);
    double maxErr = 0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      maxErr = std::max(maxErr, std::abs(ax[i] - rhs[i]));
    }
    EXPECT_LT(maxErr, 1e-2) << "silently wrong answer, flip at superstep "
                            << superstep;
  }
  EXPECT_GE(recovered, 1u)
      << "no scanned flip exercised the recovery envelope";
}
