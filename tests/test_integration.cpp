// Integration sweeps: full pipeline (generator → partition → halo layout →
// device matrix → JSON-configured solver → simulated execution → host
// verification) across solver configurations, matrices, and pod shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Tensor;

namespace {

double solveAndMeasure(const matrix::GeneratedMatrix& g,
                       const ipu::IpuTarget& target,
                       const std::string& config,
                       ipu::Profile* profileOut = nullptr) {
  Context ctx(target);
  auto layout =
      partition::Partitioner(ipu::Topology::fromTarget(target)).layout(g);
  DistMatrix A(g.matrix, std::move(layout));
  Tensor x = A.makeVector(dsl::DType::Float32, "x");
  Tensor b = A.makeVector(dsl::DType::Float32, "b");
  auto solver = makeSolverFromString(config);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  Rng rng(77);
  std::vector<double> rhs(g.matrix.rows());
  for (double& v : rhs) {
    v = static_cast<double>(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());
  if (profileOut) *profileOut = engine.profile();

  std::vector<double> xh;
  if (auto* mpir = dynamic_cast<MpirSolver*>(solver.get());
      mpir && mpir->extendedSolution()) {
    xh = A.readVector(engine, *mpir->extendedSolution());
  } else {
    xh = A.readVector(engine, x);
  }
  // Verify against the float32-cast system — that is the system the device
  // stores and solves (DESIGN.md §1).
  std::vector<double> vals32(g.matrix.values().begin(),
                             g.matrix.values().end());
  for (double& v : vals32) v = static_cast<double>(static_cast<float>(v));
  matrix::CsrMatrix a32(
      g.matrix.rows(), g.matrix.cols(),
      {g.matrix.rowPtr().begin(), g.matrix.rowPtr().end()},
      {g.matrix.colIdx().begin(), g.matrix.colIdx().end()}, std::move(vals32));
  std::vector<double> Ax(xh.size());
  a32.spmv(xh, Ax);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) {
    num += (rhs[i] - Ax[i]) * (rhs[i] - Ax[i]);
    den += rhs[i] * rhs[i];
  }
  return std::sqrt(num / den);
}

}  // namespace

// ---------------------------------------------------------------------------
// Solver-config × matrix sweep: everything in the factory must converge on
// every structural class.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* label;
  const char* matrixName;
  const char* config;
  double tolerance;
};

class SolverMatrixSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SolverMatrixSweep, ConvergesOnSimulatedIpu) {
  const SweepCase& c = GetParam();
  auto g = matrix::makeBenchmarkMatrix(c.matrixName, 2500, /*shiftScale=*/300);
  double res = solveAndMeasure(g, ipu::IpuTarget::testTarget(16), c.config);
  EXPECT_LT(res, c.tolerance) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SolverMatrixSweep,
    ::testing::Values(
        SweepCase{"bicgstab_ilu_g3", "g3_circuit",
                  R"({"type":"bicgstab","maxIterations":400,"tolerance":1e-6,
                      "preconditioner":{"type":"ilu"}})",
                  1e-4},
        SweepCase{"bicgstab_dilu_shell", "af_shell7",
                  R"({"type":"bicgstab","maxIterations":600,"tolerance":1e-6,
                      "preconditioner":{"type":"dilu"}})",
                  1e-4},
        SweepCase{"bicgstab_gs_hook", "hook_1498",
                  R"({"type":"bicgstab","maxIterations":600,"tolerance":1e-6,
                      "preconditioner":{"type":"gauss-seidel","sweeps":2}})",
                  1e-4},
        SweepCase{"cg_ilu_geo", "geo_1438",
                  R"({"type":"cg","maxIterations":600,"tolerance":1e-6,
                      "preconditioner":{"type":"ilu"}})",
                  1e-4},
        SweepCase{"cg_jacobi_g3", "g3_circuit",
                  R"({"type":"cg","maxIterations":900,"tolerance":1e-6,
                      "preconditioner":{"type":"jacobi","iterations":2}})",
                  1e-4},
        SweepCase{"mpir_dw_shell", "af_shell7",
                  R"({"type":"mpir","extendedType":"doubleword",
                      "maxRefinements":40,"tolerance":1e-11,
                      "inner":{"type":"bicgstab","maxIterations":30,
                               "tolerance":0,
                               "preconditioner":{"type":"ilu"}}})",
                  1e-8},
        SweepCase{"mpir_dp_cg_geo", "geo_1438",
                  R"({"type":"mpir","extendedType":"float64",
                      "maxRefinements":40,"tolerance":1e-11,
                      "inner":{"type":"cg","maxIterations":30,"tolerance":0,
                               "preconditioner":{"type":"ilu"}}})",
                  1e-8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Pod-shape sweep: the same solve must work and stay numerically healthy
// on every decomposition, including multi-IPU pods and pods with more tiles
// than some matrices can fill evenly.
// ---------------------------------------------------------------------------

class PodShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PodShapeSweep, SolveWorksOnEveryPodShape) {
  auto [tilesPerIpu, ipus] = GetParam();
  ipu::IpuTarget target;
  target.tilesPerIpu = tilesPerIpu;
  target.numIpus = ipus;
  auto g = matrix::poisson3d7(12, 12, 12);
  double res = solveAndMeasure(
      g, target,
      R"({"type":"bicgstab","maxIterations":300,"tolerance":1e-6,
          "preconditioner":{"type":"ilu"}})");
  EXPECT_LT(res, 1e-4) << tilesPerIpu << " tiles x " << ipus << " IPUs";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PodShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{16, 1},
                      std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{3, 3}));

TEST(Integration, MultiIpuSolveExchangesOverLinks) {
  ipu::IpuTarget target;
  target.tilesPerIpu = 8;
  target.numIpus = 2;
  auto g = matrix::poisson3d7(10, 10, 10);
  ipu::Profile prof;
  double res = solveAndMeasure(
      g, target,
      R"({"type":"bicgstab","maxIterations":200,"tolerance":1e-6,
          "preconditioner":{"type":"ilu"}})",
      &prof);
  EXPECT_LT(res, 1e-4);
  EXPECT_GT(prof.exchangedBytes, 0u);
  EXPECT_GT(prof.exchangeSupersteps, 0u);
}

TEST(Integration, DeterministicCycleCounts) {
  // "Due to the determinism of the IPU ... the execution time is the same
  // for every invocation" (§VI-A) — the simulation must be bit-deterministic.
  auto run = [] {
    auto g = matrix::afShellLike(1200);
    ipu::Profile prof;
    solveAndMeasure(g, ipu::IpuTarget::testTarget(8),
                    R"({"type":"bicgstab","maxIterations":50,"tolerance":0,
                        "preconditioner":{"type":"dilu"}})",
                    &prof);
    return prof.totalCycles();
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, SramExhaustionSurfacesAsResourceError) {
  ipu::IpuTarget tiny = ipu::IpuTarget::testTarget(2);
  tiny.sramBytesPerTile = 16 * 1024;
  Context ctx(tiny);
  auto g = matrix::poisson3d7(16, 16, 16);  // ~4k rows won't fit on 2 tiny tiles
  partition::Partitioner part(ipu::Topology::fromTarget(tiny));
  EXPECT_THROW(
      {
        auto layout = part.layout(g);
        DistMatrix A(g.matrix, std::move(layout));
      },
      ResourceError);
}

TEST(Integration, RichardsonSmootherReducesResidual) {
  auto g = matrix::poisson2d5(12, 12);
  double res = solveAndMeasure(
      g, ipu::IpuTarget::testTarget(4),
      R"({"type":"bicgstab","maxIterations":200,"tolerance":1e-6,
          "preconditioner":{"type":"richardson","iterations":4,
                            "omega":0.15}})");
  EXPECT_LT(res, 1e-4);
}

TEST(Integration, CgMatchesBiCgStabOnSpdSystem) {
  auto g = matrix::poisson2d5(14, 14);
  double cg = solveAndMeasure(
      g, ipu::IpuTarget::testTarget(4),
      R"({"type":"cg","maxIterations":300,"tolerance":1e-6,
          "preconditioner":{"type":"ilu"}})");
  double bicg = solveAndMeasure(
      g, ipu::IpuTarget::testTarget(4),
      R"({"type":"bicgstab","maxIterations":300,"tolerance":1e-6,
          "preconditioner":{"type":"ilu"}})");
  EXPECT_LT(cg, 1e-4);
  EXPECT_LT(bicg, 1e-4);
}
