#include "matrix/generators.hpp"

#include <cmath>
#include <functional>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace graphene::matrix {

namespace {

/// Builds an SPD matrix from weighted undirected edges as a graph Laplacian
/// plus a diagonal shift: a_uv = -w, a_uu = Σ w + shift. Diagonally dominant
/// ⇒ SPD; smaller shift ⇒ larger condition number.
CsrMatrix laplacian(std::size_t n, const std::vector<Triplet>& edges,
                    double shift) {
  std::vector<Triplet> trips;
  trips.reserve(edges.size() * 2 + n);
  std::vector<double> diag(n, shift);
  for (const Triplet& e : edges) {
    GRAPHENE_DCHECK(e.row < n && e.col < n && e.row != e.col, "bad edge");
    GRAPHENE_DCHECK(e.value > 0, "edge weights must be positive");
    trips.push_back(Triplet{e.row, e.col, -e.value});
    trips.push_back(Triplet{e.col, e.row, -e.value});
    diag[e.row] += e.value;
    diag[e.col] += e.value;
  }
  for (std::size_t i = 0; i < n; ++i) trips.push_back(Triplet{i, i, diag[i]});
  return CsrMatrix::fromTriplets(n, n, std::move(trips));
}

std::size_t idx3(std::size_t x, std::size_t y, std::size_t z, std::size_t nx,
                 std::size_t ny) {
  return (z * ny + y) * nx + x;
}

/// 27-point-stencil FEM-style slab: edges to all <=1-offset neighbours with
/// weights from a provided coefficient field evaluated at the edge midpoint.
std::vector<Triplet> stencil27Edges(
    std::size_t nx, std::size_t ny, std::size_t nz,
    const std::function<double(double, double, double)>& coeff) {
  std::vector<Triplet> edges;
  edges.reserve(nx * ny * nz * 13);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t u = idx3(x, y, z, nx, ny);
        // Enumerate each undirected edge once: positive lexicographic offset.
        for (int dz = 0; dz <= 1; ++dz) {
          for (int dy = dz == 0 ? 0 : -1; dy <= 1; ++dy) {
            for (int dx = (dz == 0 && dy == 0) ? 1 : -1; dx <= 1; ++dx) {
              const std::ptrdiff_t xx = static_cast<std::ptrdiff_t>(x) + dx;
              const std::ptrdiff_t yy = static_cast<std::ptrdiff_t>(y) + dy;
              const std::ptrdiff_t zz = static_cast<std::ptrdiff_t>(z) + dz;
              if (xx < 0 || yy < 0 || zz < 0 ||
                  xx >= static_cast<std::ptrdiff_t>(nx) ||
                  yy >= static_cast<std::ptrdiff_t>(ny) ||
                  zz >= static_cast<std::ptrdiff_t>(nz)) {
                continue;
              }
              const std::size_t v =
                  idx3(static_cast<std::size_t>(xx), static_cast<std::size_t>(yy),
                       static_cast<std::size_t>(zz), nx, ny);
              const double dist =
                  std::sqrt(static_cast<double>(dx * dx + dy * dy + dz * dz));
              const double mx = (static_cast<double>(x) + xx * 0.5) /
                                static_cast<double>(nx);
              const double my = (static_cast<double>(y) + yy * 0.5) /
                                static_cast<double>(ny);
              const double mz = (static_cast<double>(z) + zz * 0.5) /
                                static_cast<double>(nz);
              edges.push_back(Triplet{u, v, coeff(mx, my, mz) / dist});
            }
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace

GeneratedMatrix poisson3d7(std::size_t nx, std::size_t ny, std::size_t nz) {
  GRAPHENE_CHECK(nx > 0 && ny > 0 && nz > 0, "empty grid");
  const std::size_t n = nx * ny * nz;
  std::vector<Triplet> trips;
  trips.reserve(n * 7);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t u = idx3(x, y, z, nx, ny);
        trips.push_back(Triplet{u, u, 6.0});
        if (x + 1 < nx) trips.push_back(Triplet{u, idx3(x + 1, y, z, nx, ny), -1.0});
        if (x > 0) trips.push_back(Triplet{u, idx3(x - 1, y, z, nx, ny), -1.0});
        if (y + 1 < ny) trips.push_back(Triplet{u, idx3(x, y + 1, z, nx, ny), -1.0});
        if (y > 0) trips.push_back(Triplet{u, idx3(x, y - 1, z, nx, ny), -1.0});
        if (z + 1 < nz) trips.push_back(Triplet{u, idx3(x, y, z + 1, nx, ny), -1.0});
        if (z > 0) trips.push_back(Triplet{u, idx3(x, y, z - 1, nx, ny), -1.0});
      }
    }
  }
  GeneratedMatrix g;
  g.matrix = CsrMatrix::fromTriplets(n, n, std::move(trips));
  g.name = "poisson3d_" + std::to_string(nx) + "x" + std::to_string(ny) + "x" +
           std::to_string(nz);
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;
  return g;
}

GeneratedMatrix poisson2d5(std::size_t nx, std::size_t ny) {
  GRAPHENE_CHECK(nx > 0 && ny > 0, "empty grid");
  const std::size_t n = nx * ny;
  std::vector<Triplet> trips;
  trips.reserve(n * 5);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::size_t u = y * nx + x;
      trips.push_back(Triplet{u, u, 4.0});
      if (x + 1 < nx) trips.push_back(Triplet{u, u + 1, -1.0});
      if (x > 0) trips.push_back(Triplet{u, u - 1, -1.0});
      if (y + 1 < ny) trips.push_back(Triplet{u, u + nx, -1.0});
      if (y > 0) trips.push_back(Triplet{u, u - nx, -1.0});
    }
  }
  GeneratedMatrix g;
  g.matrix = CsrMatrix::fromTriplets(n, n, std::move(trips));
  g.name = "poisson2d_" + std::to_string(nx) + "x" + std::to_string(ny);
  g.nx = nx;
  g.ny = ny;
  g.nz = 1;
  return g;
}

GeneratedMatrix g3CircuitLike(std::size_t targetRows, std::uint64_t seed,
                              double shiftScale) {
  // Circuit matrices are irregular graph Laplacians: local connectivity from
  // placement plus sparse long-range nets. nnz/row of G3_circuit is ~4.8.
  const std::size_t side =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(targetRows)));
  const std::size_t n = side * side;
  Rng rng(seed);
  std::vector<Triplet> edges;
  edges.reserve(n * 3);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const std::size_t u = y * side + x;
      // Local wiring: right/down neighbours with varying conductance, a few
      // connections dropped (irregular routing).
      if (x + 1 < side && rng.nextDouble() > 0.08) {
        edges.push_back(Triplet{u, u + 1, rng.uniform(0.5, 2.0)});
      }
      if (y + 1 < side && rng.nextDouble() > 0.08) {
        edges.push_back(Triplet{u, u + side, rng.uniform(0.5, 2.0)});
      }
      // Sparse long-range nets (~0.4 per node) to random targets.
      if (rng.nextDouble() < 0.4) {
        std::size_t v = rng.nextBelow(n);
        if (v != u) edges.push_back(Triplet{u, v, rng.uniform(0.1, 1.0)});
      }
    }
  }
  GeneratedMatrix g;
  g.matrix = laplacian(n, edges, 1e-3 * shiftScale);
  g.name = "g3_circuit_like";
  return g;
}

GeneratedMatrix afShellLike(std::size_t targetRows, std::uint64_t seed,
                            double shiftScale) {
  // Thin shell: a slab only 3 elements thick with a smooth stiffness field.
  const std::size_t side = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(targetRows) / 3.0));
  Rng rng(seed);
  const double phase = rng.uniform(0.0, 6.28);
  auto coeff = [phase](double x, double y, double z) {
    (void)z;
    return 1.0 + 0.8 * std::sin(6.0 * x + phase) * std::cos(5.0 * y);
  };
  auto edges = stencil27Edges(side, side, 3, coeff);
  GeneratedMatrix g;
  g.matrix = laplacian(side * side * 3, edges, 2e-4 * shiftScale);
  g.name = "af_shell7_like";
  g.nx = side;
  g.ny = side;
  g.nz = 3;
  return g;
}

GeneratedMatrix geoLike(std::size_t targetRows, std::uint64_t seed,
                        double shiftScale) {
  // Geomechanics: strongly heterogeneous lognormal stiffness on a cube —
  // the hardest conditioning of the four (Geo_1438 needs the most
  // iterations in the paper's Figure 9).
  const std::size_t side = static_cast<std::size_t>(
      std::cbrt(static_cast<double>(targetRows)));
  Rng rng(seed);
  // Smooth random field: sum of a few random cosines, exponentiated.
  struct Mode {
    double kx, ky, kz, phase, amp;
  };
  std::vector<Mode> modes;
  for (int i = 0; i < 6; ++i) {
    modes.push_back(Mode{rng.uniform(1.0, 9.0), rng.uniform(1.0, 9.0),
                         rng.uniform(1.0, 9.0), rng.uniform(0.0, 6.28),
                         rng.uniform(0.3, 0.9)});
  }
  auto coeff = [modes](double x, double y, double z) {
    double f = 0;
    for (const Mode& m : modes) {
      f += m.amp * std::cos(m.kx * x + m.ky * y + m.kz * z + m.phase);
    }
    return std::exp(1.8 * f);  // lognormal-like, ~3 decades of contrast
  };
  auto edges = stencil27Edges(side, side, side, coeff);
  GeneratedMatrix g;
  g.matrix = laplacian(side * side * side, edges, 1e-4 * shiftScale);
  g.name = "geo_1438_like";
  g.nx = side;
  g.ny = side;
  g.nz = side;
  return g;
}

GeneratedMatrix hookLike(std::size_t targetRows, std::uint64_t seed,
                         double shiftScale) {
  // Elasticity on an elongated block (Hook_1498 is a steel hook): moderate
  // coefficient variation, 2:1:1 aspect ratio.
  const std::size_t base = static_cast<std::size_t>(
      std::cbrt(static_cast<double>(targetRows) / 2.0));
  Rng rng(seed);
  const double phase = rng.uniform(0.0, 6.28);
  auto coeff = [phase](double x, double y, double z) {
    return 1.0 + 0.5 * std::sin(4.0 * x + phase) * std::sin(3.0 * y) *
                     std::cos(5.0 * z);
  };
  auto edges = stencil27Edges(2 * base, base, base, coeff);
  GeneratedMatrix g;
  g.matrix = laplacian(2 * base * base * base, edges, 5e-4 * shiftScale);
  g.name = "hook_1498_like";
  g.nx = 2 * base;
  g.ny = base;
  g.nz = base;
  return g;
}

GeneratedMatrix makeBenchmarkMatrix(const std::string& name,
                                    std::size_t targetRows,
                                    double shiftScale) {
  if (name == "g3_circuit") return g3CircuitLike(targetRows, 1, shiftScale);
  if (name == "af_shell7") return afShellLike(targetRows, 2, shiftScale);
  if (name == "geo_1438") return geoLike(targetRows, 3, shiftScale);
  if (name == "hook_1498") return hookLike(targetRows, 4, shiftScale);
  GRAPHENE_CHECK(false, "unknown benchmark matrix '", name, "'");
  return {};
}

}  // namespace graphene::matrix
