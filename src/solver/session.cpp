// SolveSession implementation: owns the Context → layout → DistMatrix →
// Solver → Engine choreography so callers don't have to — including the
// hard-fault recovery loop (watchdog → blacklist → repartition → migrate →
// resume) documented in the header.
#include "solver/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>

#include "dsl/context.hpp"
#include "graph/engine.hpp"
#include "ipu/health.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace graphene::solver {

ipu::Topology resolveSessionTopology(const SessionOptions& options) {
  if (options.topology) return *options.topology;
  GRAPHENE_CHECK(options.tiles > 0,
                 "SessionOptions.tiles must be >= 1 (got ", options.tiles,
                 ")");
  if (const char* env = std::getenv("GRAPHENE_TEST_POD")) {
    const long n = std::atol(env);
    if (n > 1 && options.tiles % static_cast<std::size_t>(n) == 0) {
      return ipu::Topology::pod(static_cast<std::size_t>(n),
                                options.tiles / static_cast<std::size_t>(n));
    }
  }
  return ipu::Topology::singleIpu(options.tiles);
}

SolveSession::SolveSession(SessionOptions options)
    : options_(options), trace_(std::max<std::size_t>(options.traceCapacity, 1)) {
  // Validate eagerly and by name: a bad knob should fail at construction
  // with the offending key and its valid range, not as a hang or a watchdog
  // misfire deep inside a later solve.
  GRAPHENE_CHECK(options_.tiles > 0,
                 "SessionOptions.tiles must be >= 1 (got ", options_.tiles,
                 ")");
  // Pin the machine shape for the session's lifetime: every rebuild (incl.
  // hard-fault remaps) must target the same pod, and the plan cache keys on
  // the resolved shape.
  options_.topology = resolveSessionTopology(options_);
  options_.tiles = options_.topology->totalTiles();
  GRAPHENE_CHECK(options_.watchdogCycleBudget > 0,
                 "SessionOptions.watchdogCycleBudget must be > 0 cycles (got ",
                 options_.watchdogCycleBudget,
                 "); it bounds one tile's compute per superstep");
  GRAPHENE_CHECK(options_.watchdogTrips >= 1,
                 "SessionOptions.watchdogTrips must be >= 1 (got ",
                 options_.watchdogTrips,
                 "); 0 would confirm a dead tile without evidence");
  GRAPHENE_CHECK(options_.watchdogIpuDeadFraction > 0 &&
                     options_.watchdogIpuDeadFraction <= 1.0,
                 "SessionOptions.watchdogIpuDeadFraction must be in (0, 1] "
                 "(got ", options_.watchdogIpuDeadFraction,
                 "); it is the fraction of a chip's tiles that must die "
                 "before the chip is declared dead");
}

SolveSession::~SolveSession() = default;

void SolveSession::buildPipeline() {
  // Teardown in dependency order: the engine holds pointers into the fault
  // plan and monitor, tensors and the solver hold handles into the context's
  // graph, and dsl::Context is thread-local single-active.
  engine_.reset();
  health_.reset();
  faultPlan_.reset();
  x_.reset();
  b_.reset();
  solver_.reset();
  A_.reset();
  ctx_.reset();
  emitted_ = false;

  const ipu::Topology& topo = *options_.topology;
  ctx_ = std::make_unique<dsl::Context>(topo.target());
  // Everything out of the machine: individually blacklisted tiles plus every
  // tile of a chip the topology has shrunk away.
  std::vector<std::size_t> excluded = blacklist_;
  for (std::size_t ipu : topo.deadIpus()) {
    for (std::size_t l = 0; l < topo.tilesPerIpu(); ++l) {
      excluded.push_back(ipu * topo.tilesPerIpu() + l);
    }
  }
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());
  GRAPHENE_CHECK(excluded.size() < options_.tiles,
                 "all ", options_.tiles,
                 " tiles are blacklisted or on dead chips");
  // Control state (reduction finals, loop conditions, scalar replicas the
  // host reads) must live on a surviving tile: the DSL defaults to tile 0,
  // which may be exactly the tile (or chip) that just died. `excluded` is
  // sorted, so this finds the first surviving tile.
  std::size_t control = 0;
  for (std::size_t t : excluded) {
    if (t == control) ++control;
  }
  ctx_->graph().setControlTile(control);
  // Per-IPU control state (two-level reduction leaders) must avoid dead
  // tiles too.
  ctx_->graph().setExcludedTiles(excluded);
  partition::Partitioner part(topo);
  part.setBlacklist(blacklist_);
  A_ = std::make_unique<DistMatrix>(m_.matrix, part.layout(m_));
  if (options_.perCellHalo) A_->setPerCellHalo(true);
  if (configured_) solver_ = makeSolver(solverConfig_);
}

SolveSession& SolveSession::load(const matrix::GeneratedMatrix& m) {
  GRAPHENE_CHECK(!loaded_, "SolveSession::load() may only be called once");
  m_ = m;
  loaded_ = true;
  buildPipeline();
  return *this;
}

SolveSession& SolveSession::load(const matrix::CsrMatrix& m) {
  matrix::GeneratedMatrix g;  // no geometry hints → BFS partitioning
  g.matrix = m;
  g.name = "csr";
  return load(g);
}

SolveSession& SolveSession::configure(const json::Value& solverConfig) {
  GRAPHENE_CHECK(!emitted_,
                 "SolveSession::configure() after solve(): the emitted "
                 "program is tied to the previous solver");
  solver_ = makeSolver(solverConfig);
  solverConfig_ = solverConfig;
  configured_ = true;
  return *this;
}

SolveSession& SolveSession::configure(const std::string& solverJsonText) {
  return configure(json::parse(solverJsonText));
}

SolveSession& SolveSession::updateMatrixValues(const matrix::CsrMatrix& m) {
  GRAPHENE_CHECK(A_, "SolveSession::updateMatrixValues() before load(): "
                     "no matrix");
  A_->updateValues(m);  // validates structure identity, refreshes staging
  // Keep the host-side copy in step: remap migration and the post-solve
  // verification both multiply with it.
  m_.matrix = m;
  return *this;
}

void SolveSession::bind() {
  if (ctx_) ctx_->bind();
}

void SolveSession::unbind() {
  if (ctx_) ctx_->unbind();
}

std::size_t SolveSession::sramPeakBytes() const {
  GRAPHENE_CHECK(ctx_, "SolveSession::sramPeakBytes() before load(): "
                       "no graph");
  return ctx_->graph().ledger().peakUsed();
}

SolveSession& SolveSession::withFaultPlan(const json::Value& planConfig) {
  // Validate eagerly (errors surface at attach time), but rebuild from JSON
  // for every solve attempt — FaultPlan rules are stateful.
  faultPlan_ = ipu::FaultPlan::fromJson(planConfig);
  faultPlanJson_ = planConfig;
  return *this;
}

SolveSession::Result SolveSession::solve(std::span<const double> rhs) {
  solveCycles_ = 0.0;  // before the checks: lastSolveCycles() covers *this* call
  GRAPHENE_CHECK(A_, "SolveSession::solve() before load(): no matrix");
  GRAPHENE_CHECK(solver_,
                 "SolveSession::solve() before configure(): no solver");
  GRAPHENE_CHECK(rhs.size() == A_->rows(), "rhs has ", rhs.size(),
                 " entries but the matrix has ", A_->rows(), " rows");

  trace_.clear();
  // Fresh tile-level report per solve; the same collector is re-attached to
  // every remap attempt's engine, so it spans the whole solve.
  tileProfile_ =
      tileProfileEnabled_ ? std::make_shared<support::TileProfile>() : nullptr;
  if (tileProfile_) tileProfile_->label = solver_->chainName();

  // Hard-fault recovery state for this solve. After a remap the rebuilt
  // pipeline solves the shifted system A·dx = b − A·x0, where x0 is the
  // iterate migrated out of the dying engine; the final answer is x0 + dx.
  std::vector<ipu::FaultEvent> carriedLog;
  std::vector<double> x0(rhs.size(), 0.0);
  std::vector<double> shifted(rhs.begin(), rhs.end());
  std::size_t remaps = 0;
  // solveCycles_ accumulates the simulated cycles of *earlier* attempts of
  // this solve — each fresh engine starts its clock at 0, but a deadline
  // covers the whole solve. Kept in a member (lastSolveCycles()) so the
  // total survives a throwing exit: the catch blocks below fold the final
  // engine's clock in first.

  for (;;) {
    if (!emitted_) {
      x_.emplace(A_->makeVector(DType::Float32, "session_x"));
      b_.emplace(A_->makeVector(DType::Float32, "session_b"));
      solver_->apply(*A_, *x_, *b_);
      emitted_ = true;
    }

    solver_->clearHistory();
    engine_ = std::make_unique<graph::Engine>(ctx_->graph(),
                                              options_.hostThreads);
    engine_->setExcludedTiles(blacklist_);
    health_.reset();
    if (faultPlanJson_) {
      // Rules aimed at a blacklisted tile or an excluded chip are dropped
      // for this attempt: that hardware is already out of the machine, so
      // re-injecting its death would only make the watchdog re-confirm a
      // fault that has been handled.
      json::Value planJson = *faultPlanJson_;
      const std::vector<std::size_t>& deadIpus =
          options_.topology->deadIpus();
      if (!blacklist_.empty() || !deadIpus.empty()) {
        const std::size_t tilesPerIpu = options_.topology->tilesPerIpu();
        auto chipGone = [&](std::size_t ipu) {
          return std::find(deadIpus.begin(), deadIpus.end(), ipu) !=
                 deadIpus.end();
        };
        auto keyGone = [&](const json::Value& f, const char* key) {
          return f.asObject().count(key) > 0 &&
                 chipGone(static_cast<std::size_t>(f.at(key).asNumber()));
        };
        json::Array kept;
        for (const json::Value& f : planJson.at("faults").asArray()) {
          if (f.isObject() && f.asObject().count("tile") > 0) {
            const auto tile =
                static_cast<std::size_t>(f.at("tile").asNumber());
            if (std::find(blacklist_.begin(), blacklist_.end(), tile) !=
                    blacklist_.end() ||
                chipGone(tile / tilesPerIpu)) {
              continue;
            }
          }
          if (f.isObject() && (keyGone(f, "ipu") || keyGone(f, "from") ||
                               keyGone(f, "to"))) {
            continue;
          }
          kept.push_back(f);
        }
        planJson.asObject()["faults"] = json::Value(kept);
      }
      faultPlan_.emplace(ipu::FaultPlan::fromJson(planJson));
      engine_->setFaultPlan(&*faultPlan_);
      if (faultPlan_->hasHardFaults()) {
        ipu::HealthMonitor::Options h;
        h.computeCycleBudget = options_.watchdogCycleBudget;
        h.tripsToConfirm = options_.watchdogTrips;
        if (options_.topology->isPod()) {
          h.tilesPerIpu = options_.topology->tilesPerIpu();
          h.ipuDeadFraction = options_.watchdogIpuDeadFraction;
        }
        health_ = std::make_unique<ipu::HealthMonitor>(h);
        engine_->setHealthMonitor(health_.get());
      }
    }
    // The fault log of earlier attempts (incl. the recovery:* seam events)
    // carries into this engine's profile. Assigned BEFORE the trace sink is
    // attached: setTraceSink watermarks the current log length, so carried
    // events — already mirrored into the trace — are not re-traced.
    engine_->profile().faultEvents = carriedLog;
    if (remaps > 0) {
      engine_->profile().metrics.addCounter("resilience.remaps",
                                            static_cast<double>(remaps));
      engine_->profile().metrics.addCounter(
          "resilience.blacklisted", static_cast<double>(blacklist_.size()));
    }
    if (options_.traceCapacity > 0) engine_->setTraceSink(&trace_);
    if (tileProfile_) engine_->setTileProfile(tileProfile_.get());
    if (cancel_) {
      const double carried = solveCycles_;
      engine_->setCancelCheck([this, carried](const graph::Engine& e) {
        return cancel_(carried + e.simCycles());
      });
    }

    A_->upload(*engine_);
    A_->writeVector(*engine_, *b_, shifted);
    try {
      engine_->run(ctx_->program());
      break;
    } catch (const ipu::HardFaultError& hf) {
      solveCycles_ += engine_->simCycles();
      // Out of remap budget: surface the typed error instead of attempting
      // a "degraded" run — with freshly dead tiles still in the machine a
      // run can stall forever (e.g. a dead control tile freezes every loop
      // condition), and hanging is the one thing chaos must never do.
      if (remaps >= options_.maxRemaps) throw;
      // 1. Migrate: pull the solver's best-known iterate (its checkpoint /
      // last-good tensor when it keeps one, else x) out of the dying engine
      // and fold it into x0. Non-finite entries — a dead tile's vertices may
      // never have run — contribute nothing.
      const graph::TensorId sid = solver_->stateTensor();
      std::vector<double> best = sid != graph::kInvalidTensor
                                     ? A_->readVectorById(*engine_, sid)
                                     : A_->readVector(*engine_, *x_);
      for (double& v : best) {
        if (!std::isfinite(v)) v = 0.0;
      }
      for (std::size_t i = 0; i < x0.size(); ++i) x0[i] += best[i];
      m_.matrix.spmv(x0, shifted);  // shifted = A·x0 ...
      for (std::size_t i = 0; i < shifted.size(); ++i) {
        shifted[i] = rhs[i] - shifted[i];  // ... then b − A·x0
      }

      // 2. Retire the confirmed-dead hardware and mark the seam in the
      // carried fault log and the trace timeline. Whole-chip verdicts shrink
      // the topology (new fingerprint over the surviving chips); remaining
      // tile verdicts are blacklisted individually.
      carriedLog = engine_->profile().faultEvents;
      const std::size_t atSuperstep = engine_->profile().computeSupersteps;
      const double atCycle = engine_->simCycles();
      const std::size_t seamBegin = carriedLog.size();
      const std::vector<std::size_t>& deadChips = hf.deadIpus();
      auto onDeadChip = [&](std::size_t t) {
        return std::find(deadChips.begin(), deadChips.end(),
                         t / options_.topology->tilesPerIpu()) !=
               deadChips.end();
      };
      for (std::size_t ipu : deadChips) {
        ipu::FaultEvent fe;
        fe.kind = "recovery:ipu-blacklist";
        fe.superstep = atSuperstep;
        fe.target = "ipu " + std::to_string(ipu);
        fe.detail = "chip excluded from the topology after watchdog "
                    "escalation";
        carriedLog.push_back(fe);
      }
      for (std::size_t t : hf.deadTiles()) {
        if (onDeadChip(t)) continue;  // covered by the chip verdict above
        if (std::find(blacklist_.begin(), blacklist_.end(), t) ==
            blacklist_.end()) {
          blacklist_.push_back(t);
        }
        ipu::FaultEvent fe;
        fe.kind = "recovery:blacklist";
        fe.superstep = atSuperstep;
        fe.target = "tile " + std::to_string(t);
        fe.detail = "tile excluded from the partition after watchdog "
                    "confirmation";
        carriedLog.push_back(fe);
      }
      std::sort(blacklist_.begin(), blacklist_.end());
      if (!deadChips.empty()) {
        options_.topology = options_.topology->withoutIpus(deadChips);
      }
      ++remaps;
      ipu::FaultEvent fe;
      fe.kind = "recovery:remap";
      fe.superstep = atSuperstep;
      fe.target = "session";
      fe.element = remaps;
      fe.detail =
          deadChips.empty()
              ? "repartitioned over " +
                    std::to_string(options_.tiles - blacklist_.size()) +
                    " surviving tiles; resuming from migrated iterate"
              : "topology shrunk to " +
                    std::to_string(options_.topology->numAliveIpus()) +
                    " surviving chips (" +
                    std::to_string(options_.topology->numAliveTiles()) +
                    " tiles); resuming from migrated iterate";
      carriedLog.push_back(fe);
      if (options_.traceCapacity > 0) {
        // Mirror the seam events into the trace here — the next engine's
        // sink watermark deliberately skips the carried log.
        for (std::size_t i = seamBegin; i < carriedLog.size(); ++i) {
          support::TraceEvent ev;
          ev.kind = support::TraceKind::Recovery;
          ev.name = carriedLog[i].kind;
          ev.startCycle = atCycle;
          ev.superstep = atSuperstep;
          ev.detail = carriedLog[i].target + ": " + carriedLog[i].detail;
          trace_.record(ev);
        }
      }

      // 3. Rebuild the whole pipeline over the surviving tiles and retry.
      buildPipeline();
    } catch (const Error&) {
      // CancelledError and every other engine-level error: charge this
      // attempt's cycles before surfacing, so lastSolveCycles() reports the
      // whole solve — including attempts consumed by earlier remaps.
      solveCycles_ += engine_->simCycles();
      throw;
    }
  }
  solveCycles_ += engine_->simCycles();

  Result r;
  r.solve = solver_->result();
  r.x = A_->readVector(*engine_, *x_);
  if (remaps > 0) {
    for (std::size_t i = 0; i < r.x.size(); ++i) r.x[i] += x0[i];
  }
  r.history = solver_->history();
  r.simulatedSeconds = engine_->elapsedSeconds();
  r.simCycles = solveCycles_;
  r.tileProfile = tileProfile_;

  // Safety net against silently-wrong results: with fault injection active,
  // a Converged claim is re-verified on the host against the original
  // system. The threshold is deliberately lenient — it exists to catch
  // corrupted "solutions", not to second-guess the solver's tolerance.
  if (faultPlanJson_ && r.solve.status == SolveStatus::Converged) {
    std::vector<double> ax(r.x.size(), 0.0);
    m_.matrix.spmv(r.x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const double d = rhs[i] - ax[i];
      num += d * d;
      den += rhs[i] * rhs[i];
    }
    const double rel = std::sqrt(num / std::max(den, 1e-300));
    if (!(rel <= 1e-3)) {
      r.solve.status = SolveStatus::CorruptionDetected;
      r.solve.finalResidual = rel;
    }
  }
  return r;
}

const ipu::Profile& SolveSession::profile() const {
  GRAPHENE_CHECK(engine_, "SolveSession::profile() before solve()");
  return engine_->profile();
}

Solver& SolveSession::solver() {
  GRAPHENE_CHECK(solver_, "SolveSession::solver() before configure()");
  return *solver_;
}

DistMatrix& SolveSession::matrix() {
  GRAPHENE_CHECK(A_, "SolveSession::matrix() before load()");
  return *A_;
}

graph::Engine& SolveSession::engine() {
  GRAPHENE_CHECK(engine_, "SolveSession::engine() before solve()");
  return *engine_;
}

json::Value SolveSession::healthReport() const {
  // The watchdog's view of the *last attempt* (empty when no monitor was
  // armed — e.g. after a remap filtered out every hard-fault rule), plus
  // the session-level outcome: which tiles are out and where control lives.
  json::Object report;
  if (health_) report = health_->reportJson().asObject();
  json::Array blacklisted;
  for (std::size_t t : blacklist_) {
    blacklisted.push_back(json::Value(static_cast<double>(t)));
  }
  report["blacklistedTiles"] = json::Value(blacklisted);
  // The session-level shrink verdict (the watchdog's own deadIpus only
  // covers the last attempt; the topology remembers every chip that went).
  json::Array deadIpusArr;
  for (std::size_t ipu : options_.topology->deadIpus()) {
    deadIpusArr.push_back(json::Value(static_cast<double>(ipu)));
  }
  report["deadIpus"] = json::Value(deadIpusArr);
  if (ctx_) {
    report["controlTile"] =
        json::Value(static_cast<double>(ctx_->graph().controlTile()));
  }
  return json::Value(report);
}

}  // namespace graphene::solver
