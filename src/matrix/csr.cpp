#include "matrix/csr.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace graphene::matrix {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> rowPtr,
                     std::vector<std::int32_t> col, std::vector<double> val)
    : rows_(rows), cols_(cols), rowPtr_(std::move(rowPtr)),
      col_(std::move(col)), val_(std::move(val)) {
  GRAPHENE_CHECK(rowPtr_.size() == rows_ + 1, "rowPtr must have rows+1 entries");
  GRAPHENE_CHECK(col_.size() == val_.size(), "col/val size mismatch");
  GRAPHENE_CHECK(rowPtr_.front() == 0 && rowPtr_.back() == val_.size(),
                 "rowPtr bounds invalid");
  for (std::size_t r = 0; r < rows_; ++r) {
    GRAPHENE_CHECK(rowPtr_[r] <= rowPtr_[r + 1], "rowPtr not monotone");
  }
  for (std::int32_t c : col_) {
    GRAPHENE_CHECK(c >= 0 && static_cast<std::size_t>(c) < cols_,
                   "column index out of range");
  }
}

CsrMatrix CsrMatrix::fromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<std::size_t> rowPtr(rows + 1, 0);
  std::vector<std::int32_t> col;
  std::vector<double> val;
  col.reserve(triplets.size());
  val.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    GRAPHENE_CHECK(t.row < rows && t.col < cols,
                   "triplet out of range: (", t.row, ",", t.col, ")");
    double sum = 0.0;
    std::size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col.push_back(static_cast<std::int32_t>(t.col));
      val.push_back(sum);
      ++rowPtr[t.row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) rowPtr[r + 1] += rowPtr[r];
  return CsrMatrix(rows, cols, std::move(rowPtr), std::move(col),
                   std::move(val));
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  GRAPHENE_CHECK(r < rows_ && c < cols_, "index out of range");
  auto begin = col_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  auto end = col_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  auto it = std::lower_bound(begin, end, static_cast<std::int32_t>(c));
  if (it != end && *it == static_cast<std::int32_t>(c)) {
    return val_[static_cast<std::size_t>(it - col_.begin())];
  }
  return 0.0;
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  GRAPHENE_CHECK(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      acc += val_[k] * x[static_cast<std::size_t>(col_[k])];
    }
    y[r] = acc;
  }
}

bool CsrMatrix::isSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      std::size_t c = static_cast<std::size_t>(col_[k]);
      double mirror = at(c, r);
      double scale = std::max(std::abs(val_[k]), std::abs(mirror));
      if (std::abs(val_[k] - mirror) > tol * std::max(scale, 1.0)) {
        return false;
      }
    }
  }
  return true;
}

bool CsrMatrix::hasFullDiagonal() const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (at(r, r) == 0.0) return false;
  }
  return true;
}

std::size_t CsrMatrix::bandwidth() const {
  std::size_t bw = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      std::size_t c = static_cast<std::size_t>(col_[k]);
      bw = std::max(bw, c > r ? c - r : r - c);
    }
  }
  return bw;
}

CsrMatrix CsrMatrix::permuted(std::span<const std::size_t> perm) const {
  GRAPHENE_CHECK(perm.size() == rows_ && rows_ == cols_,
                 "permutation must cover a square matrix");
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      trips.push_back(Triplet{perm[r],
                              perm[static_cast<std::size_t>(col_[k])],
                              val_[k]});
    }
  }
  return fromTriplets(rows_, cols_, std::move(trips));
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      trips.push_back(
          Triplet{static_cast<std::size_t>(col_[k]), r, val_[k]});
    }
  }
  return fromTriplets(cols_, rows_, std::move(trips));
}

ModifiedCrs ModifiedCrs::fromCsr(const CsrMatrix& a) {
  GRAPHENE_CHECK(a.rows() == a.cols(), "modified CRS needs a square matrix");
  ModifiedCrs m;
  const std::size_t n = a.rows();
  m.diag_.resize(n, 0.0);
  m.rowPtr_.assign(n + 1, 0);
  auto rowPtr = a.rowPtr();
  auto col = a.colIdx();
  auto val = a.values();
  for (std::size_t r = 0; r < n; ++r) {
    bool sawDiag = false;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      if (static_cast<std::size_t>(col[k]) == r) {
        m.diag_[r] = val[k];
        sawDiag = true;
      } else {
        m.col_.push_back(col[k]);
        m.val_.push_back(val[k]);
        ++m.rowPtr_[r + 1];
      }
    }
    GRAPHENE_CHECK(sawDiag && m.diag_[r] != 0.0,
                   "modified CRS requires nonzero diagonal (row ", r, ")");
  }
  for (std::size_t r = 0; r < n; ++r) m.rowPtr_[r + 1] += m.rowPtr_[r];
  return m;
}

CsrMatrix ModifiedCrs::toCsr() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  const std::size_t n = rows();
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back(Triplet{r, r, diag_[r]});
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      trips.push_back(Triplet{r, static_cast<std::size_t>(col_[k]), val_[k]});
    }
  }
  return CsrMatrix::fromTriplets(n, n, std::move(trips));
}

void ModifiedCrs::spmv(std::span<const double> x, std::span<double> y) const {
  const std::size_t n = rows();
  GRAPHENE_CHECK(x.size() == n && y.size() == n, "spmv size mismatch");
  for (std::size_t r = 0; r < n; ++r) {
    double acc = diag_[r] * x[r];
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      acc += val_[k] * x[static_cast<std::size_t>(col_[k])];
    }
    y[r] = acc;
  }
}

MatrixStats computeStats(const CsrMatrix& a) {
  MatrixStats s;
  s.rows = a.rows();
  s.nnz = a.nnz();
  s.avgNnzPerRow = a.rows() ? static_cast<double>(a.nnz()) /
                                  static_cast<double>(a.rows())
                            : 0.0;
  s.bandwidth = a.bandwidth();
  s.symmetric = a.isSymmetric(1e-10);
  s.fullDiagonal = a.hasFullDiagonal();
  return s;
}

}  // namespace graphene::matrix
