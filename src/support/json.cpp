#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace graphene::json {

bool Value::asBool() const {
  GRAPHENE_CHECK(isBool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::asNumber() const {
  GRAPHENE_CHECK(isNumber(), "JSON value is not a number");
  return std::get<double>(data_);
}

std::int64_t Value::asInt() const {
  double d = asNumber();
  GRAPHENE_CHECK(std::nearbyint(d) == d, "JSON number ", d,
                 " is not an integer");
  return static_cast<std::int64_t>(d);
}

const std::string& Value::asString() const {
  GRAPHENE_CHECK(isString(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::asArray() const {
  GRAPHENE_CHECK(isArray(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::asObject() const {
  GRAPHENE_CHECK(isObject(), "JSON value is not an object");
  return std::get<Object>(data_);
}

Array& Value::asArray() {
  GRAPHENE_CHECK(isArray(), "JSON value is not an array");
  return std::get<Array>(data_);
}

Object& Value::asObject() {
  GRAPHENE_CHECK(isObject(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = asObject();
  auto it = obj.find(key);
  GRAPHENE_CHECK(it != obj.end(), "missing JSON key '", key, "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return isObject() && asObject().count(key) > 0;
}

bool Value::getOr(const std::string& key, bool def) const {
  return contains(key) ? at(key).asBool() : def;
}

double Value::getOr(const std::string& key, double def) const {
  return contains(key) ? at(key).asNumber() : def;
}

std::int64_t Value::getOr(const std::string& key, std::int64_t def) const {
  return contains(key) ? at(key).asInt() : def;
}

int Value::getOr(const std::string& key, int def) const {
  return contains(key) ? static_cast<int>(at(key).asInt()) : def;
}

std::string Value::getOr(const std::string& key, const std::string& def) const {
  return contains(key) ? at(key).asString() : def;
}

namespace {

void dumpString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dumpNumber(std::ostream& os, double d) {
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    os << static_cast<std::int64_t>(d);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os << buf;
  }
}

void dumpValue(std::ostream& os, const Value& v, int indent, int depth) {
  auto newline = [&](int d) {
    if (indent >= 0) {
      os << '\n' << std::string(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (v.isNull()) {
    os << "null";
  } else if (v.isBool()) {
    os << (v.asBool() ? "true" : "false");
  } else if (v.isNumber()) {
    dumpNumber(os, v.asNumber());
  } else if (v.isString()) {
    dumpString(os, v.asString());
  } else if (v.isArray()) {
    const Array& arr = v.asArray();
    if (arr.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    bool first = true;
    for (const Value& e : arr) {
      if (!first) os << ',';
      first = false;
      newline(depth + 1);
      dumpValue(os, e, indent, depth + 1);
    }
    newline(depth);
    os << ']';
  } else {
    const Object& obj = v.asObject();
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) os << ',';
      first = false;
      newline(depth + 1);
      dumpString(os, key);
      os << (indent >= 0 ? ": " : ":");
      dumpValue(os, val, indent, depth + 1);
    }
    newline(depth);
    os << '}';
  }
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "JSON parse error at line " << line << ", column " << col << ": "
        << what;
    throw ParseError(oss.str());
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expectKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) {
      fail(std::string("expected '") + std::string(kw) + "'");
    }
    pos_ += kw.size();
  }

  Value parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Value(parseString());
      case 't': expectKeyword("true"); return Value(true);
      case 'f': expectKeyword("false"); return Value(false);
      case 'n': expectKeyword("null"); return Value(nullptr);
      default: return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Object obj;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      obj[std::move(key)] = parseValue();
      skipWhitespace();
      char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parseArray() {
    expect('[');
    Array arr;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      skipWhitespace();
      char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (surrogate pairs unsupported; BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parseNumber() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double result = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     result);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(result);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::ostringstream oss;
  dumpValue(oss, *this, indent, 0);
  return oss.str();
}

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

}  // namespace graphene::json
