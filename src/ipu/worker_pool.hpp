// Worker-thread timing model — the simulated equivalent of the paper's
// open-sourced IPUTHREADING library (§V-A, reference [18]).
//
// A tile has six hardware worker threads. Poplar inserts a sync before every
// compute set; adding one compute set per level-set level made graph
// compilation unacceptably slow, so the paper spawns and synchronises worker
// threads *inside* a single compute set using the run/runall/sync
// instructions. This class models exactly that: per-worker cycle clocks, a
// `runall` spawn overhead, and `sync` barriers that advance every worker to
// the slowest one.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>

#include "support/error.hpp"

namespace graphene::ipu {

class WorkerPool {
 public:
  /// Cycle cost of the supervisor issuing `runall` (spawning all workers).
  static constexpr double kRunAllCycles = 18.0;
  /// Cycle cost of a `sync` barrier across the tile's workers.
  static constexpr double kSyncCycles = 12.0;

  /// A pool is created per simulated tile per compute superstep (and per
  /// ParFor), so construction sits on the engine's hottest path: the worker
  /// clocks live inline for realistic worker counts (the IPU has six) and
  /// only fall back to the heap for synthetic larger pools.
  explicit WorkerPool(std::size_t numWorkers) : size_(numWorkers) {
    GRAPHENE_CHECK(numWorkers > 0, "worker pool needs at least one worker");
    if (size_ <= kInlineWorkers) {
      clocks_ = inline_.data();
    } else {
      heap_ = std::make_unique<double[]>(size_);
      clocks_ = heap_.get();
    }
    std::fill(clocks_, clocks_ + size_, 0.0);
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t numWorkers() const { return size_; }

  /// Charges `cycles` of work to worker `w`.
  void addCycles(std::size_t w, double cycles) {
    GRAPHENE_CHECK(w < size_, "worker index out of range");
    clocks_[w] += cycles;
  }

  /// Models `runall`: the supervisor hands one work item per worker.
  void chargeSpawn() {
    const double share = kRunAllCycles / static_cast<double>(size_);
    for (std::size_t w = 0; w < size_; ++w) clocks_[w] += share;
  }

  /// Barrier: every worker's clock advances to the slowest worker, plus the
  /// sync instruction cost. Returns the barrier time.
  double sync() {
    double m = elapsed() + kSyncCycles;
    std::fill(clocks_, clocks_ + size_, m);
    return m;
  }

  /// Max over worker clocks — the tile-visible duration so far.
  double elapsed() const {
    double m = 0;
    for (std::size_t w = 0; w < size_; ++w) m = std::max(m, clocks_[w]);
    return m;
  }

  /// Sum of worker clocks — total work (for utilisation statistics).
  double totalWork() const {
    double s = 0;
    for (std::size_t w = 0; w < size_; ++w) s += clocks_[w];
    return s;
  }

  /// Fraction of issue slots doing useful work: totalWork / (workers*elapsed).
  double utilisation() const {
    double e = elapsed();
    if (e == 0) return 1.0;
    return totalWork() / (static_cast<double>(size_) * e);
  }

 private:
  static constexpr std::size_t kInlineWorkers = 8;

  std::size_t size_ = 0;
  std::array<double, kInlineWorkers> inline_{};
  std::unique_ptr<double[]> heap_;
  double* clocks_ = nullptr;
};

}  // namespace graphene::ipu
