// SolveSession — the one-stop solver API.
//
// Composing a solve by hand takes five objects in the right order: an
// IpuTarget, a dsl::Context, a partition layout, a DistMatrix, a Solver and
// finally an Engine per execution. SolveSession owns that choreography
// behind three calls:
//
//   SolveSession session;
//   session.load(matrix::poisson3d7(24, 24, 24))
//          .configure(R"({"type": "cg", "tolerance": 1e-6})");
//   auto result = session.solve(rhs);
//   // result.x, result.solve.status, session.trace(), session.profile()
//
// Every solve runs on a fresh Engine with the session's TraceSink attached,
// so the merged timeline (compute/exchange/sync spans, solver iterations,
// fault and recovery events) and the cycle profile are always available
// afterwards — observability is the default here, not an opt-in.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ipu/fault.hpp"
#include "solver/solver.hpp"
#include "support/trace.hpp"

namespace graphene::dsl {
class Context;
}
namespace graphene::matrix {
struct GeneratedMatrix;
}

namespace graphene::solver {

struct SessionOptions {
  /// Tiles of the simulated IPU (IpuTarget::testTarget geometry).
  std::size_t tiles = 32;
  /// Host threads simulating tiles in parallel; 0 = Engine's default
  /// resolution (GRAPHENE_TEST_HOST_THREADS, else hardware concurrency).
  std::size_t hostThreads = 0;
  /// Ring capacity of the session's TraceSink; 0 disables tracing.
  std::size_t traceCapacity = support::TraceSink::kDefaultCapacity;
};

class SolveSession {
 public:
  explicit SolveSession(SessionOptions options = {});
  ~SolveSession();
  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  /// Builds the distributed matrix: partitions the rows (grid partitioning
  /// when geometry is available, BFS otherwise), lays out the §IV halo
  /// regions and creates the device structures. Call once, before solve().
  ///
  /// Note: a SolveSession owns the (thread-local, single-active)
  /// dsl::Context from load() until destruction — build sessions one at a
  /// time.
  SolveSession& load(const matrix::GeneratedMatrix& m);
  /// Same for a bare CSR matrix with no geometry hints (BFS partitioning).
  SolveSession& load(const matrix::CsrMatrix& m);

  /// Builds the (possibly nested) solver from its JSON config — strictly
  /// validated, see makeSolver(). Call before solve(); reconfiguring after
  /// a solve is an error (the emitted program is tied to the solver).
  SolveSession& configure(const json::Value& solverConfig);
  SolveSession& configure(const std::string& solverJsonText);
  // json::Value converts from const char* too — disambiguate string literals
  // toward the parse-then-build path.
  SolveSession& configure(const char* solverJsonText) {
    return configure(std::string(solverJsonText));
  }

  /// Attaches a fault-injection plan applied to every subsequent solve.
  SolveSession& withFaultPlan(const json::Value& planConfig);

  /// Everything a solve produces, copied out of the device state.
  struct Result {
    SolveResult solve;                     // structured outcome
    std::vector<double> x;                 // solution, global row order
    std::vector<IterationRecord> history;  // convergence samples
    double simulatedSeconds = 0.0;         // wall clock on the simulated IPU
  };

  /// Runs the configured solver on a fresh Engine. The program is emitted
  /// once (first call) and re-executed on subsequent calls; the trace sink
  /// is cleared per solve, so trace() always shows the latest one.
  Result solve(std::span<const double> rhs);

  /// The merged execution timeline of the last solve.
  const support::TraceSink& trace() const { return trace_; }
  /// Convenience: the last solve's trace in Chrome trace_event JSON
  /// (load into chrome://tracing or Perfetto).
  json::Value traceChromeJson() const { return support::traceToChromeJson(trace_); }

  /// Cycle profile of the last solve.
  const ipu::Profile& profile() const;

  Solver& solver();
  DistMatrix& matrix();
  /// Engine of the last solve (valid until the next solve()).
  graph::Engine& engine();

 private:
  SessionOptions options_;
  std::unique_ptr<dsl::Context> ctx_;
  std::unique_ptr<DistMatrix> A_;
  std::unique_ptr<Solver> solver_;
  std::unique_ptr<graph::Engine> engine_;
  std::optional<ipu::FaultPlan> faultPlan_;
  std::optional<Tensor> x_, b_;
  support::TraceSink trace_;
  bool emitted_ = false;
};

}  // namespace graphene::solver
