#include "solver/dist_matrix.hpp"

#include <cstdlib>
#include <unordered_map>

#include "support/error.hpp"

namespace graphene::solver {

using dsl::Context;
using dsl::Execute;
using dsl::ExecuteOnTiles;
using dsl::For;
using dsl::ParallelFor;
using dsl::Select;
using dsl::Value;

DistMatrix::DistMatrix(const matrix::CsrMatrix& a,
                       partition::DistributedLayout layout)
    : layout_(std::move(layout)) {
  // A/B escape hatch mirroring GRAPHENE_NO_FASTPATH: profile a run without
  // the §IV halo reordering without touching call sites.
  if (std::getenv("GRAPHENE_NO_HALO_REORDER") != nullptr) perCellHalo_ = true;
  Context& ctx = Context::current();
  const std::size_t nTiles = ctx.target().totalTiles();
  GRAPHENE_CHECK(layout_.numTiles == nTiles,
                 "layout tile count (", layout_.numTiles,
                 ") must match the target (", nTiles, ")");
  GRAPHENE_CHECK(a.rows() == layout_.rowToTile.size(), "layout size mismatch");

  // Mappings.
  std::vector<std::size_t> ownedSizes(nTiles), haloSizes(nTiles);
  for (std::size_t t = 0; t < nTiles; ++t) {
    ownedSizes[t] = layout_.tiles[t].numOwned;
    haloSizes[t] = layout_.tiles[t].numHalo;
    if (ownedSizes[t] > 0) activeTiles_.push_back(t);
  }
  ownedMapping_ = graph::TileMapping::ragged(ownedSizes);
  haloMapping_ = graph::TileMapping::ragged(haloSizes);
  ownedFlatOffset_.resize(nTiles, 0);
  for (std::size_t t = 1; t < nTiles; ++t) {
    ownedFlatOffset_[t] = ownedFlatOffset_[t - 1] + ownedSizes[t - 1];
  }

  // Host-side localisation: per tile, the owned submatrix with local column
  // indices (owned local ids < numOwned; halo copies >= numOwned).
  tileLocal_.resize(nTiles);
  auto rowPtr = a.rowPtr();
  auto colIdx = a.colIdx();
  auto values = a.values();
  std::vector<std::size_t> offRowPtrSizes(nTiles);
  for (std::size_t t = 0; t < nTiles; ++t) {
    const partition::TileLayout& tl = layout_.tiles[t];
    TileLocal& local = tileLocal_[t];
    local.numOwned = tl.numOwned;
    local.numHalo = tl.numHalo;
    std::unordered_map<std::size_t, std::int32_t> globalToLocal;
    globalToLocal.reserve(tl.localToGlobal.size());
    for (std::size_t i = 0; i < tl.localToGlobal.size(); ++i) {
      globalToLocal[tl.localToGlobal[i]] = static_cast<std::int32_t>(i);
    }
    local.rowPtr.assign(tl.numOwned + 1, 0);
    for (std::size_t i = 0; i < tl.numOwned; ++i) {
      const std::size_t g = tl.localToGlobal[i];
      // Entries sorted by local column index for merge-based factorisations.
      std::vector<std::pair<std::int32_t, double>> entries;
      for (std::size_t k = rowPtr[g]; k < rowPtr[g + 1]; ++k) {
        auto it = globalToLocal.find(static_cast<std::size_t>(colIdx[k]));
        GRAPHENE_CHECK(it != globalToLocal.end(),
                       "matrix entry references a cell outside the tile's "
                       "halo — layout is inconsistent");
        entries.emplace_back(it->second, values[k]);
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& [c, v] : entries) {
        local.col.push_back(c);
        local.val.push_back(v);
      }
      local.rowPtr[i + 1] = local.col.size();
    }
    offRowPtrSizes[t] = tl.numOwned > 0 ? tl.numOwned + 1 : 0;
  }

  // Device staging in the modified-CRS split: dense diagonal + off-diagonal
  // CRS (per-tile concatenation).
  std::vector<std::size_t> offValSizes(nTiles, 0);
  for (std::size_t t = 0; t < nTiles; ++t) {
    const TileLocal& local = tileLocal_[t];
    if (local.numOwned == 0) continue;
    std::size_t tileOff = 0;
    rowPtrHost_.push_back(0);  // per-tile CRS starts at 0
    for (std::size_t i = 0; i < local.numOwned; ++i) {
      bool sawDiag = false;
      std::int32_t ownedRun = static_cast<std::int32_t>(tileOff);
      for (std::size_t k = local.rowPtr[i]; k < local.rowPtr[i + 1]; ++k) {
        if (local.col[k] == static_cast<std::int32_t>(i)) {
          diagHost_.push_back(static_cast<float>(local.val[k]));
          sawDiag = true;
        } else {
          valHost_.push_back(static_cast<float>(local.val[k]));
          colHost_.push_back(local.col[k]);
          // Columns are sorted ascending, halo indices come last: the first
          // halo entry fixes this row's owned/halo split.
          if (static_cast<std::size_t>(local.col[k]) < local.numOwned) {
            ownedRun = static_cast<std::int32_t>(tileOff) + 1;
          }
          ++tileOff;
        }
      }
      GRAPHENE_CHECK(sawDiag && diagHost_.back() != 0.0f,
                     "modified CRS requires a nonzero diagonal");
      rowPtrHost_.push_back(static_cast<std::int32_t>(tileOff));
      splitHost_.push_back(ownedRun);
    }
    offValSizes[t] = tileOff;
  }

  diag_.emplace(DType::Float32, ownedMapping_, ctx.freshName("A_diag"));
  offVal_.emplace(DType::Float32, graph::TileMapping::ragged(offValSizes),
                  ctx.freshName("A_val"));
  offCol_.emplace(DType::Int32, graph::TileMapping::ragged(offValSizes),
                  ctx.freshName("A_col"));
  offRowPtr_.emplace(DType::Int32, graph::TileMapping::ragged(offRowPtrSizes),
                     ctx.freshName("A_rowptr"));
  offSplit_.emplace(DType::Int32, ownedMapping_, ctx.freshName("A_split"));
}

Tensor DistMatrix::makeVector(DType type, const std::string& name) const {
  return Tensor(type, ownedMapping_, name);
}

Tensor& DistMatrix::haloBuffer(DType type) {
  auto it = haloBuffers_.find(type);
  if (it == haloBuffers_.end()) {
    it = haloBuffers_
             .emplace(type, Tensor(type, haloMapping_,
                                   Context::current().freshName("halo")))
             .first;
  }
  return it->second;
}

void DistMatrix::haloExchange(const Tensor& v) {
  GRAPHENE_CHECK(v.info().mapping == ownedMapping_,
                 "halo exchange needs an owned-mapped vector");
  Tensor& halo = haloBuffer(v.type());
  const std::vector<partition::HaloTransfer>* plan = &layout_.transfers;
  if (perCellHalo_) {
    if (perCellPlan_.empty() && !layout_.transfers.empty()) {
      perCellPlan_ = partition::naivePerCellTransfers(layout_);
    }
    plan = &perCellPlan_;
  }
  std::vector<graph::CopySegment> segs;
  segs.reserve(plan->size());
  for (const partition::HaloTransfer& tr : *plan) {
    graph::CopySegment s;
    s.src = v.id();
    s.srcTile = tr.srcTile;
    s.srcBegin = tr.srcLocalOffset;
    s.dst = halo.id();
    s.count = tr.count;
    for (const partition::HaloTransfer::Dst& d : tr.dsts) {
      // Halo-local offset = layout offset minus the owned prefix.
      s.dsts.push_back(
          {d.tile, d.localOffset - layout_.tiles[d.tile].numOwned});
    }
    segs.push_back(std::move(s));
  }
  if (!segs.empty()) {
    graph::ProgramPtr copy = graph::Program::copy(std::move(segs));
    double wireBytes = 0;
    for (const graph::CopySegment& s : copy->copies) {
      wireBytes += static_cast<double>(s.count * ipu::sizeOf(v.type()));
    }
    copy->copyMetrics.emplace_back("halo.bytes", wireBytes);
    copy->copyMetrics.emplace_back("halo.exchanges", 1.0);
    Context::current().emit(std::move(copy));
  }
}

void DistMatrix::spmv(Tensor& y, const Tensor& v, bool exchange,
                      const std::string& category) {
  GRAPHENE_CHECK(y.type() == v.type(), "spmv dtype mismatch");
  if (exchange) haloExchange(v);
  Tensor& halo = haloBuffer(v.type());
  graph::ComputeSetId cs = ExecuteOnTiles(
      {y, v, halo, *diag_, *offVal_, *offCol_, *offRowPtr_, *offSplit_},
      [&](std::vector<Value>& args) {
        Value yv = args[0], xv = args[1], hv = args[2], dv = args[3],
              av = args[4], cv = args[5], rp = args[6], sp = args[7];
        Value numOwned = xv.size();
        ParallelFor(0, yv.size(), [&](Value r) {
          Value acc = Value(dv[r]) * Value(xv[r]);
          // Owned-column run, then halo run (§IV layout: no per-entry
          // branching; two tight hardware loops).
          For(rp[r], sp[r], 1, [&](Value k) {
            acc = acc + Value(av[k]) * Value(xv[cv[k]]);
          });
          For(sp[r], rp[r + 1], 1, [&](Value k) {
            acc = acc + Value(av[k]) * Value(hv[Value(cv[k]) - numOwned]);
          });
          yv[r] = acc;
        });
      },
      category, activeTiles_);
  // 1 multiply per stored coefficient (diag + off-diag) and 1 add per
  // off-diagonal entry, per execution of the emitted compute set.
  graph::Graph& g = Context::current().graph();
  g.addComputeSetMetric(
      cs, "spmv.flops",
      static_cast<double>(diagHost_.size() + 2 * valHost_.size()));
  g.addComputeSetMetric(cs, "spmv.count", 1.0);
  // The check is a separate compute set: it re-reads y after the BSP sync,
  // so corruption landing on y *between* supersteps is caught too.
  if (abftEnabled_) emitAbftCheck(y, v, nullptr);
}

void DistMatrix::residualExt(Tensor& r, const Tensor& b, const Tensor& x) {
  GRAPHENE_CHECK(r.type() == b.type() && b.type() == x.type(),
                 "residualExt dtype mismatch");
  GRAPHENE_CHECK(x.type() == DType::DoubleWord || x.type() == DType::Float64 ||
                     x.type() == DType::Float32,
                 "residualExt needs an extended (or float32) type");
  haloExchange(x);
  Tensor& halo = haloBuffer(x.type());
  ExecuteOnTiles(
      {r, b, x, halo, *diag_, *offVal_, *offCol_, *offRowPtr_, *offSplit_},
      [&](std::vector<Value>& args) {
        Value rv = args[0], bv = args[1], xv = args[2], hv = args[3],
              dv = args[4], av = args[5], cv = args[6], rp = args[7],
              sp = args[8];
        Value numOwned = xv.size();
        ParallelFor(0, rv.size(), [&](Value row) {
          // acc = A x (row), accumulated in the extended type: float32
          // coefficients times extended x use the cheap DW·FP algorithms.
          Value acc = Value(dv[row]) * Value(xv[row]);
          For(rp[row], sp[row], 1, [&](Value k) {
            acc = acc + Value(av[k]) * Value(xv[cv[k]]);
          });
          For(sp[row], rp[row + 1], 1, [&](Value k) {
            acc = acc + Value(av[k]) * Value(hv[Value(cv[k]) - numOwned]);
          });
          rv[row] = Value(bv[row]) - acc;
        });
      },
      "spmv", activeTiles_);
  if (abftEnabled_) emitAbftCheck(r, x, &b);
}

void DistMatrix::recomputeAbftColumnSums() {
  // Per-tile, per-local-column coefficient sums (diagonal included), in the
  // same float32 the device multiplies with so the checksum identity sees
  // the exact coefficients the SpMV sees. Accumulated in double: the
  // checksum must not itself be the noisiest term of the compare.
  const std::size_t nTiles = layout_.numTiles;
  std::vector<double> owned, halo;
  std::size_t ownedTotal = 0, haloTotal = 0;
  for (std::size_t t = 0; t < nTiles; ++t) {
    ownedTotal += tileLocal_[t].numOwned;
    haloTotal += tileLocal_[t].numHalo;
  }
  owned.assign(ownedTotal, 0.0);
  halo.assign(haloTotal, 0.0);
  std::size_t ownedBase = 0, haloBase = 0;
  for (std::size_t t = 0; t < nTiles; ++t) {
    const TileLocal& local = tileLocal_[t];
    for (std::size_t k = 0; k < local.col.size(); ++k) {
      const auto c = static_cast<std::size_t>(local.col[k]);
      const double v = static_cast<double>(static_cast<float>(local.val[k]));
      if (c < local.numOwned) {
        owned[ownedBase + c] += v;
      } else {
        halo[haloBase + (c - local.numOwned)] += v;
      }
    }
    ownedBase += local.numOwned;
    haloBase += local.numHalo;
  }
  abftOwnedHost_.assign(owned.begin(), owned.end());
  abftHaloHost_.assign(halo.begin(), halo.end());
}

void DistMatrix::enableAbft(double tolerance) {
  if (abftEnabled_) return;
  abftEnabled_ = true;
  abftTolerance_ = tolerance;
  recomputeAbftColumnSums();

  const std::size_t nTiles = layout_.numTiles;
  Context& ctx = Context::current();
  abftColOwned_.emplace(DType::Float32, ownedMapping_,
                        ctx.freshName("abft_colsum"));
  abftColHalo_.emplace(DType::Float32, haloMapping_,
                       ctx.freshName("abft_colsum_halo"));
  // Two elements per active tile, not one: with every tile active a
  // 1-per-tile tensor is indistinguishable from a replicated scalar, and
  // reduce() would fold it *per tile* — the defect would stay on the tile
  // that found it instead of reaching the replica the host guard reads.
  std::vector<std::size_t> relSizes(nTiles, 0);
  for (std::size_t t : activeTiles_) relSizes[t] = 2;
  abftRel_.emplace(DType::Float32, graph::TileMapping::ragged(relSizes),
                   ctx.freshName("abft_rel"));
  abftFlag_.emplace(Tensor::scalar(DType::Float32, ctx.freshName("abft_flag")));
  *abftFlag_ = dsl::Expression(0.0f);
}

graph::TensorId DistMatrix::abftFlagId() const {
  GRAPHENE_CHECK(abftFlag_.has_value(), "ABFT is not enabled");
  return abftFlag_->id();
}

void DistMatrix::emitAbftCheck(const Tensor& y, const Tensor& x,
                               const Tensor* rhs) {
  Tensor& halo = haloBuffer(x.type());
  const graph::Scalar extZero = graph::Scalar::fromHostDouble(y.type(), 0.0);
  std::vector<dsl::TensorRef> tensors = {y, x, halo, *abftColOwned_,
                                         *abftColHalo_, *abftRel_};
  if (rhs != nullptr) tensors.push_back(*rhs);
  graph::ComputeSetId cs = ExecuteOnTiles(
      tensors,
      [&](std::vector<Value>& args) {
        Value yv = args[0], xv = args[1], hv = args[2], co = args[3],
              ch = args[4], relv = args[5];
        // defect accumulates in y's dtype (extended types keep their
        // precision); scale collects |term|₁ in float32 — the compare is
        // relative, so float32 headroom is plenty.
        Value defect = Value(extZero);
        Value scale = Value(0.0f);
        For(0, yv.size(), 1, [&](Value r) {
          defect = defect + Value(yv[r]);
          scale = scale + Abs(Value(yv[r]).cast(DType::Float32));
        });
        // colsum·x enters with the sign that zeroes the identity:
        //   y = A·x      ⇒ Σy − colsum·x            == 0
        //   r = b − A·x  ⇒ Σr + colsum·x − Σb       == 0
        const bool residual = rhs != nullptr;
        auto foldTerm = [&](Value term) {
          defect = residual ? defect + term : defect - term;
          scale = scale + Abs(term.cast(DType::Float32));
        };
        For(0, xv.size(), 1,
            [&](Value c) { foldTerm(Value(co[c]) * Value(xv[c])); });
        For(0, hv.size(), 1,
            [&](Value h) { foldTerm(Value(ch[h]) * Value(hv[h])); });
        if (residual) {
          Value bv = args[6];
          For(0, bv.size(), 1, [&](Value r) {
            defect = defect - Value(bv[r]);
            scale = scale + Abs(Value(bv[r]).cast(DType::Float32));
          });
        }
        Value rel = Abs(defect.cast(DType::Float32)) /
                    Max(scale, Value(1e-30f));
        relv[0] = rel;
        relv[1] = Value(0.0f);  // padding slot (see enableAbft)
      },
      "abft", activeTiles_);
  Context::current().graph().addComputeSetMetric(cs, "resilience.abft.checks",
                                                 1.0);
  // Fold this check's worst tile into the sticky flag scalar; the host
  // guard reads it against the tolerance and writes 0 to re-arm.
  *abftFlag_ = dsl::Max(dsl::Expression(*abftFlag_),
                        abftRel_->reduce(dsl::ReduceKind::Max));
}

void DistMatrix::updateValues(const matrix::CsrMatrix& a) {
  GRAPHENE_CHECK(a.rows() == rows(), "updateValues: row count changed (",
                 a.rows(), " vs ", rows(), ")");
  auto rowPtr = a.rowPtr();
  auto colIdx = a.colIdx();
  auto values = a.values();

  // Re-run the constructor's localisation walk, values only. The entry sort
  // is by local column (unique per row), so the permutation is identical to
  // the one the structure was built with — each sorted entry must land on
  // the same local column, which is exactly the structure-identity check.
  const std::size_t nTiles = layout_.numTiles;
  for (std::size_t t = 0; t < nTiles; ++t) {
    const partition::TileLayout& tl = layout_.tiles[t];
    TileLocal& local = tileLocal_[t];
    std::unordered_map<std::size_t, std::int32_t> globalToLocal;
    globalToLocal.reserve(tl.localToGlobal.size());
    for (std::size_t i = 0; i < tl.localToGlobal.size(); ++i) {
      globalToLocal[tl.localToGlobal[i]] = static_cast<std::int32_t>(i);
    }
    std::size_t cursor = 0;  // into local.col / local.val
    for (std::size_t i = 0; i < tl.numOwned; ++i) {
      const std::size_t g = tl.localToGlobal[i];
      GRAPHENE_CHECK(
          rowPtr[g + 1] - rowPtr[g] == local.rowPtr[i + 1] - local.rowPtr[i],
          "updateValues: sparsity structure changed at row ", g,
          " — rebuild the DistMatrix instead");
      std::vector<std::pair<std::int32_t, double>> entries;
      for (std::size_t k = rowPtr[g]; k < rowPtr[g + 1]; ++k) {
        auto it = globalToLocal.find(static_cast<std::size_t>(colIdx[k]));
        GRAPHENE_CHECK(it != globalToLocal.end(),
                       "updateValues: sparsity structure changed at row ", g,
                       " — rebuild the DistMatrix instead");
        entries.emplace_back(it->second, values[k]);
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& [c, v] : entries) {
        GRAPHENE_CHECK(local.col[cursor] == c,
                       "updateValues: sparsity structure changed at row ", g,
                       " — rebuild the DistMatrix instead");
        local.val[cursor] = v;
        ++cursor;
      }
    }
  }

  // Refresh the upload() staging from the updated tile-local values (same
  // diag/off-diag split walk as the constructor; structure arrays keep).
  diagHost_.clear();
  valHost_.clear();
  for (std::size_t t = 0; t < nTiles; ++t) {
    const TileLocal& local = tileLocal_[t];
    for (std::size_t i = 0; i < local.numOwned; ++i) {
      for (std::size_t k = local.rowPtr[i]; k < local.rowPtr[i + 1]; ++k) {
        if (local.col[k] == static_cast<std::int32_t>(i)) {
          diagHost_.push_back(static_cast<float>(local.val[k]));
          GRAPHENE_CHECK(diagHost_.back() != 0.0f,
                         "modified CRS requires a nonzero diagonal");
        } else {
          valHost_.push_back(static_cast<float>(local.val[k]));
        }
      }
    }
  }
  GRAPHENE_CHECK(valHost_.size() == colHost_.size(),
                 "updateValues: staging size mismatch after refresh");

  if (abftEnabled_) recomputeAbftColumnSums();
}

void DistMatrix::upload(graph::Engine& engine) const {
  engine.writeTensor<float>(diag_->id(), diagHost_);
  engine.writeTensor<float>(offVal_->id(), valHost_);
  engine.writeTensor<std::int32_t>(offCol_->id(), colHost_);
  engine.writeTensor<std::int32_t>(offRowPtr_->id(), rowPtrHost_);
  engine.writeTensor<std::int32_t>(offSplit_->id(), splitHost_);
  if (abftColOwned_.has_value()) {
    engine.writeTensor<float>(abftColOwned_->id(), abftOwnedHost_);
    engine.writeTensor<float>(abftColHalo_->id(), abftHaloHost_);
  }
}

void DistMatrix::writeVector(graph::Engine& engine, const Tensor& v,
                             std::span<const double> globalValues) const {
  GRAPHENE_CHECK(globalValues.size() == rows(), "vector size mismatch");
  GRAPHENE_CHECK(v.info().mapping == ownedMapping_,
                 "writeVector needs an owned-mapped vector");
  const DType t = v.type();
  for (std::size_t g = 0; g < globalValues.size(); ++g) {
    const std::size_t tile = layout_.rowToTile[g];
    const std::size_t flat =
        ownedFlatOffset_[tile] + layout_.globalToLocalOwned[g];
    engine.storeElement(v.id(), flat,
                        graph::Scalar::fromHostDouble(t, globalValues[g]));
  }
}

std::vector<double> DistMatrix::readVector(graph::Engine& engine,
                                           const Tensor& v) const {
  GRAPHENE_CHECK(v.info().mapping == ownedMapping_,
                 "readVector needs an owned-mapped vector");
  return readVectorById(engine, v.id());
}

std::vector<double> DistMatrix::readVectorById(graph::Engine& engine,
                                               graph::TensorId id) const {
  std::vector<double> out(rows());
  for (std::size_t g = 0; g < out.size(); ++g) {
    const std::size_t tile = layout_.rowToTile[g];
    const std::size_t flat =
        ownedFlatOffset_[tile] + layout_.globalToLocalOwned[g];
    out[g] = engine.loadElement(id, flat).toHostDouble();
  }
  return out;
}

}  // namespace graphene::solver
